#ifndef DELREC_DISTILL_EXPORT_H_
#define DELREC_DISTILL_EXPORT_H_

#include <cstdint>
#include <vector>

#include "data/event_stream.h"
#include "serve/scorer.h"
#include "util/status.h"

namespace delrec::distill {

/// Knobs for exporting teacher supervision from a frozen serving snapshot.
struct TeacherExportOptions {
  /// Teacher list length per example: the k items the student is pulled
  /// toward, with softmax importance weights ("Distillation Matters"-style
  /// ranking distillation).
  int64_t top_k = 8;
  /// Candidate pool the teacher scores per example (target + pool-1
  /// sampled negatives). The teacher is a candidate re-scorer, not a
  /// full-catalog scorer, so supervision comes from pools, like serving.
  int64_t candidate_pool = 30;
  /// History window taken from the end of each user's training region.
  int64_t history_length = 10;
  /// Fraction of each user's timeline whose targets count as training —
  /// the export supervises the *last training target* per user, so teacher
  /// lists never peek at validation/test targets (matches the 8:1:1
  /// chronological split convention of data::MakeSplits).
  double train_fraction = 0.8;
  /// Softmax temperature over teacher scores (higher = flatter weights).
  float temperature = 1.0f;
  /// Examples per teacher ScoreBatch call. Fixed chunking (independent of
  /// thread count) plus the Scorer batch-invariance contract make the
  /// export bit-identical for every parallelism setting.
  int64_t batch_size = 32;
  /// Stop after this many users (0 = stream everything).
  int64_t max_users = 0;
  /// Seeds the per-user candidate-pool RNG (forked per user_index, so pools
  /// do not depend on chunk boundaries or arrival order).
  uint64_t seed = 17;

  /// InvalidArgument when a field is out of range.
  util::Status Validate() const;
};

/// One unit of distillation supervision: the user's history, the held-out
/// next item (ground truth for the auxiliary next-item loss), and the
/// teacher's top-k of the candidate pool with normalized importance
/// weights (best first, weights summing to 1).
struct DistillExample {
  std::vector<int64_t> history;
  int64_t target = 0;
  std::vector<int64_t> teacher_items;
  std::vector<float> teacher_weights;
};

/// The exported supervision set plus provenance counters.
struct TeacherDataset {
  std::vector<DistillExample> examples;
  int64_t top_k = 0;
  int64_t users_seen = 0;      ///< User runs the stream yielded.
  int64_t users_skipped = 0;   ///< Runs too short to form an example.
};

/// Streams user runs off `stream` (in-RAM or mmap-backed — the export is
/// out-of-core by construction, holding only the current teacher chunk and
/// the emitted examples) and scores each user's candidate pool with the
/// frozen teacher. One example per qualifying user. Deterministic given
/// (stream contents, options): candidate pools come from per-user forked
/// RNGs and teacher chunks have fixed, thread-independent boundaries, so
/// the result is bit-identical across thread counts and storage backends.
/// `num_items` is the catalog size pools are sampled from. Returns the
/// stream's sticky error if it fails mid-scan.
util::StatusOr<TeacherDataset> ExportTeacherLists(
    const serve::Scorer& teacher, data::EventStream& stream,
    int64_t num_items, const TeacherExportOptions& options);

}  // namespace delrec::distill

#endif  // DELREC_DISTILL_EXPORT_H_
