#ifndef DELREC_DISTILL_TRAINER_H_
#define DELREC_DISTILL_TRAINER_H_

#include <cstdint>
#include <string>

#include "distill/export.h"
#include "srmodels/recommender.h"
#include "util/status.h"

namespace delrec::distill {

/// Ranking-distillation training knobs. `base` carries the shared loop
/// machinery (epochs, batching, learning rate, dropout, clipping, seed, the
/// loss-anomaly guard) — the same knobs the backbone's own Train() uses.
struct DistillTrainConfig {
  srmodels::TrainConfig base;
  /// Weight of the listwise KD term: -Σ_j w_j · log softmax(z)[t_j] over
  /// the teacher's top-k list (w = exported importance weights).
  float kd_weight = 1.0f;
  /// Weight of the auxiliary next-item cross-entropy on the held-out
  /// target, kept alongside KD so the student stays grounded in observed
  /// behavior ("Distillation Matters" trains the same combination).
  float next_item_weight = 0.5f;
  /// Per-epoch resumable checkpoint (BlobFile: student state, optimizer
  /// moments, RNG state, epoch cursor). Empty = no checkpointing.
  std::string checkpoint_path;
  /// Resume from `checkpoint_path` when the file exists. A resumed run is
  /// bit-identical to the uninterrupted one (same contract as the DELRec
  /// TrainState path). NotFound is a fresh start, not an error.
  bool resume = false;
};

struct DistillResult {
  float final_loss = 0.0f;        ///< Mean combined loss, last epoch run.
  int64_t anomalies_skipped = 0;  ///< Batches the anomaly guard rejected.
  int epochs_run = 0;             ///< Epochs executed in this call.
};

/// Fine-tunes `student` on teacher supervision with the combined
/// KD-listwise + next-item loss, through the shared srmodels training loop
/// (same shuffle stream, anomaly guard, `trainer.loss` failpoint, and
/// gradient clipping as the backbone trainers). The student must be a
/// factory backbone (an nn::Module with TrainingLogits); InvalidArgument
/// otherwise. Training is single-threaded over the model and bit-identical
/// across ambient thread counts; with checkpointing on, an interrupted run
/// resumed from disk reproduces the uninterrupted parameters exactly.
util::StatusOr<DistillResult> DistillStudent(
    srmodels::SequentialRecommender& student, const TeacherDataset& teacher,
    const DistillTrainConfig& config);

}  // namespace delrec::distill

#endif  // DELREC_DISTILL_TRAINER_H_
