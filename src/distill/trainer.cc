#include "distill/trainer.h"

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "nn/module.h"
#include "nn/ops.h"
#include "nn/optimizer.h"
#include "srmodels/trainer.h"
#include "util/check.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace delrec::distill {
namespace {

constexpr char kStudentStateBlob[] = "student_state";
constexpr char kOptimizerBlob[] = "optimizer_state";
constexpr char kRngBlob[] = "rng_state";
constexpr char kCursorBlob[] = "cursor";

std::vector<float> PackWords(const std::vector<uint64_t>& words) {
  std::vector<float> packed(words.size() * 2);
  std::memcpy(packed.data(), words.data(), words.size() * sizeof(uint64_t));
  return packed;
}

util::StatusOr<std::vector<uint64_t>> UnpackWords(
    const std::vector<float>& packed) {
  if (packed.size() % 2 != 0) {
    return util::Status::DataLoss("odd packed-word blob length");
  }
  std::vector<uint64_t> words(packed.size() / 2);
  std::memcpy(words.data(), packed.data(), words.size() * sizeof(uint64_t));
  return words;
}

util::Status SaveCheckpoint(const std::string& path, const nn::Module& module,
                            const nn::Optimizer& optimizer,
                            const util::Rng& rng, int next_epoch) {
  util::BlobFile file;
  file.Put(kStudentStateBlob, module.StateDump());
  file.Put(kOptimizerBlob, optimizer.StateDump());
  file.Put(kRngBlob, PackWords(rng.StateDump()));
  file.Put(kCursorBlob, {static_cast<float>(next_epoch)});
  return util::Retry(util::RetryOptions(), [&] { return file.WriteTo(path); });
}

util::StatusOr<int> LoadCheckpoint(const std::string& path,
                                   nn::Module& module,
                                   nn::Optimizer& optimizer, util::Rng& rng) {
  DELREC_ASSIGN_OR_RETURN(util::BlobFile file, util::BlobFile::ReadFrom(path));
  DELREC_ASSIGN_OR_RETURN(std::vector<float> state,
                          file.Get(kStudentStateBlob));
  if (state.size() != module.StateDump().size()) {
    return util::Status::InvalidArgument(
        "distill checkpoint state size mismatch");
  }
  DELREC_ASSIGN_OR_RETURN(std::vector<float> optimizer_state,
                          file.Get(kOptimizerBlob));
  if (optimizer_state.size() != optimizer.StateDump().size()) {
    return util::Status::InvalidArgument(
        "distill checkpoint optimizer size mismatch");
  }
  DELREC_ASSIGN_OR_RETURN(std::vector<float> packed_rng, file.Get(kRngBlob));
  DELREC_ASSIGN_OR_RETURN(std::vector<uint64_t> rng_words,
                          UnpackWords(packed_rng));
  DELREC_ASSIGN_OR_RETURN(std::vector<float> cursor, file.Get(kCursorBlob));
  if (cursor.size() != 1 || cursor[0] < 0.0f) {
    return util::Status::DataLoss("distill checkpoint cursor corrupt");
  }
  module.LoadState(state);
  optimizer.LoadState(optimizer_state);
  rng.LoadState(rng_words);
  return static_cast<int>(cursor[0]);
}

}  // namespace

util::StatusOr<DistillResult> DistillStudent(
    srmodels::SequentialRecommender& student, const TeacherDataset& teacher,
    const DistillTrainConfig& config) {
  if (teacher.examples.empty()) {
    return util::Status::InvalidArgument("empty teacher dataset");
  }
  auto* module = dynamic_cast<nn::Module*>(&student);
  if (module == nullptr) {
    return util::Status::InvalidArgument(
        student.name() + " is not an nn::Module; cannot distill into it");
  }
  {
    // Probe the gradient path once up front so an unsupported student fails
    // with a Status instead of mid-epoch.
    util::Rng probe_rng(config.base.seed);
    nn::NoGradGuard no_grad;
    if (!student
             .TrainingLogits(teacher.examples[0].history, 0.0f, probe_rng)
             .defined()) {
      return util::Status::InvalidArgument(
          student.name() + " has no TrainingLogits gradient path");
    }
  }
  if (!(config.kd_weight >= 0.0f) || !(config.next_item_weight >= 0.0f) ||
      config.kd_weight + config.next_item_weight <= 0.0f) {
    return util::Status::InvalidArgument(
        "distill loss weights must be non-negative and not both zero");
  }

  module->SetTraining(true);
  util::Rng rng(config.base.seed);
  nn::Adam optimizer(module->Parameters(), config.base.learning_rate);
  srmodels::TrainLoopHooks hooks;
  if (!config.checkpoint_path.empty() && config.resume) {
    auto resumed = LoadCheckpoint(config.checkpoint_path, *module, optimizer,
                                  rng);
    if (resumed.ok()) {
      hooks.start_epoch = resumed.value();
    } else if (resumed.status().code() != util::Status::Code::kNotFound) {
      module->SetTraining(false);
      return resumed.status();
    }
  }
  if (!config.checkpoint_path.empty()) {
    hooks.epoch_end = [&](int epoch, float) {
      return SaveCheckpoint(config.checkpoint_path, *module, optimizer, rng,
                            epoch + 1);
    };
  }

  const auto example_loss = [&](int64_t index) {
    const DistillExample& example = teacher.examples[index];
    nn::Tensor logits =
        student.TrainingLogits(example.history, config.base.dropout, rng);
    std::vector<nn::Tensor> terms;
    if (config.kd_weight > 0.0f && !example.teacher_items.empty()) {
      // Listwise KD: cross-entropy between the teacher's importance
      // weights over its top-k list and the student's full softmax,
      // -Σ_j w_j · log p(t_j). Gathering rows of the transposed
      // log-softmax picks out the listed items differentiably.
      nn::Tensor log_probs = nn::Transpose(nn::LogSoftmax(logits));  // (V,1)
      nn::Tensor listed = nn::Rows(log_probs, example.teacher_items);
      nn::Tensor weights = nn::Tensor::FromData(
          {static_cast<int64_t>(example.teacher_weights.size()), 1},
          example.teacher_weights);
      terms.push_back(nn::MulScalar(nn::Sum(nn::Mul(listed, weights)),
                                    -config.kd_weight));
    }
    if (config.next_item_weight > 0.0f) {
      terms.push_back(
          nn::MulScalar(nn::CrossEntropyWithLogits(logits, {example.target}),
                        config.next_item_weight));
    }
    return nn::AddN(terms);
  };

  const auto loop_result = srmodels::RunTrainingLoop(
      static_cast<int64_t>(teacher.examples.size()), config.base, optimizer,
      module->Parameters(), rng, example_loss, "DistillStudent", hooks);
  module->SetTraining(false);
  DELREC_RETURN_IF_ERROR(loop_result.status());
  DistillResult result;
  result.final_loss = loop_result.value().final_loss;
  result.anomalies_skipped = loop_result.value().anomalies_skipped;
  result.epochs_run = config.base.epochs - hooks.start_epoch;
  return result;
}

}  // namespace delrec::distill
