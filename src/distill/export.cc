#include "distill/export.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "data/split.h"
#include "eval/topk.h"
#include "util/check.h"
#include "util/rng.h"

namespace delrec::distill {
namespace {

/// splitmix64 finalizer: decorrelates per-user RNG streams from the dense
/// user_index space (same mixer the sharded server uses for routing).
uint64_t MixIndex(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// An example whose pool has been built but not yet teacher-scored.
struct PendingExample {
  DistillExample example;  // teacher_items/weights filled after scoring.
  std::vector<int64_t> pool;
};

/// Scores a chunk with the teacher and converts each pool into the top-k
/// list + normalized softmax weights.
void FinalizeChunk(const serve::Scorer& teacher,
                   std::vector<PendingExample>* chunk,
                   const TeacherExportOptions& options,
                   std::vector<DistillExample>* out) {
  if (chunk->empty()) return;
  std::vector<serve::ScoreRequest> requests;
  requests.reserve(chunk->size());
  for (const PendingExample& pending : *chunk) {
    serve::ScoreRequest request;
    request.history = pending.example.history;
    request.candidates = pending.pool;
    requests.push_back(std::move(request));
  }
  const std::vector<std::vector<float>> scores = teacher.ScoreBatch(requests);
  DELREC_CHECK_EQ(scores.size(), chunk->size());
  for (size_t i = 0; i < chunk->size(); ++i) {
    PendingExample& pending = (*chunk)[i];
    const std::vector<int64_t> top =
        eval::TopKByIds(scores[i], pending.pool, options.top_k);
    pending.example.teacher_items.reserve(top.size());
    std::vector<double> exps(top.size());
    double max_score = -HUGE_VAL;
    for (int64_t position : top) {
      max_score = std::max(max_score,
                           static_cast<double>(scores[i][position]));
    }
    double total = 0.0;
    for (size_t j = 0; j < top.size(); ++j) {
      const double z =
          (static_cast<double>(scores[i][top[j]]) - max_score) /
          static_cast<double>(options.temperature);
      exps[j] = std::exp(z);
      total += exps[j];
    }
    pending.example.teacher_weights.reserve(top.size());
    for (size_t j = 0; j < top.size(); ++j) {
      pending.example.teacher_items.push_back(pending.pool[top[j]]);
      pending.example.teacher_weights.push_back(
          static_cast<float>(exps[j] / total));
    }
    out->push_back(std::move(pending.example));
  }
  chunk->clear();
}

}  // namespace

util::Status TeacherExportOptions::Validate() const {
  if (top_k < 1) {
    return util::Status::InvalidArgument(
        "TeacherExportOptions.top_k must be >= 1, got " +
        std::to_string(top_k));
  }
  if (candidate_pool < top_k) {
    return util::Status::InvalidArgument(
        "TeacherExportOptions.candidate_pool must be >= top_k");
  }
  if (history_length < 1) {
    return util::Status::InvalidArgument(
        "TeacherExportOptions.history_length must be >= 1");
  }
  if (!(train_fraction > 0.0 && train_fraction <= 1.0)) {
    return util::Status::InvalidArgument(
        "TeacherExportOptions.train_fraction must be in (0, 1]");
  }
  if (!(temperature > 0.0f)) {
    return util::Status::InvalidArgument(
        "TeacherExportOptions.temperature must be > 0");
  }
  if (batch_size < 1) {
    return util::Status::InvalidArgument(
        "TeacherExportOptions.batch_size must be >= 1");
  }
  if (max_users < 0) {
    return util::Status::InvalidArgument(
        "TeacherExportOptions.max_users must be >= 0");
  }
  return util::Status::Ok();
}

util::StatusOr<TeacherDataset> ExportTeacherLists(
    const serve::Scorer& teacher, data::EventStream& stream,
    int64_t num_items, const TeacherExportOptions& options) {
  DELREC_RETURN_IF_ERROR(options.Validate());
  if (num_items < options.candidate_pool) {
    return util::Status::InvalidArgument(
        "catalog of " + std::to_string(num_items) +
        " items cannot fill a candidate pool of " +
        std::to_string(options.candidate_pool));
  }
  TeacherDataset dataset;
  dataset.top_k = options.top_k;
  std::vector<PendingExample> chunk;
  chunk.reserve(options.batch_size);
  data::UserRun run;
  while (stream.Next(&run)) {
    if (options.max_users > 0 && dataset.users_seen >= options.max_users) {
      break;
    }
    ++dataset.users_seen;
    const int64_t n = static_cast<int64_t>(run.items.size());
    // Supervise the last target inside the training region: with t targets
    // (positions 1..n-1), the first round(train_fraction·t) are training
    // targets, matching MakeSplits' chronological routing.
    const int64_t train_targets = std::min<int64_t>(
        n - 1, std::max<int64_t>(
                   1, std::llround(options.train_fraction *
                                   static_cast<double>(n - 1))));
    if (n < 2) {
      ++dataset.users_skipped;
      continue;
    }
    const int64_t target_position = train_targets;  // items[pos] is target.
    PendingExample pending;
    pending.example.target = run.items[target_position];
    const int64_t start =
        std::max<int64_t>(0, target_position - options.history_length);
    pending.example.history.assign(run.items.begin() + start,
                                   run.items.begin() + target_position);
    // Per-user forked pool RNG: the pool depends on (seed, user_index)
    // only, never on chunking or scan order.
    util::Rng pool_rng(options.seed ^ MixIndex(
        static_cast<uint64_t>(run.user_index)));
    pending.pool = data::SampleCandidates(
        num_items, pending.example.target, options.candidate_pool, pool_rng);
    chunk.push_back(std::move(pending));
    if (static_cast<int64_t>(chunk.size()) >= options.batch_size) {
      FinalizeChunk(teacher, &chunk, options, &dataset.examples);
    }
  }
  DELREC_RETURN_IF_ERROR(stream.status());
  FinalizeChunk(teacher, &chunk, options, &dataset.examples);
  return dataset;
}

}  // namespace delrec::distill
