#include "serve/two_tier.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "eval/topk.h"
#include "util/check.h"

namespace delrec::serve {
namespace {

class TwoTierScorer : public Scorer {
 public:
  TwoTierScorer(std::shared_ptr<const Scorer> retriever,
                std::shared_ptr<const Scorer> reranker,
                const TwoTierOptions& options)
      : retriever_(std::move(retriever)),
        reranker_(std::move(reranker)),
        options_(options) {}

  std::string name() const override {
    return "two-tier(" + retriever_->name() + " -> " + reranker_->name() +
           ", h=" + std::to_string(options_.rerank_top_h) + ")";
  }

  std::vector<float> Score(const ScoreRequest& request) const override {
    return ScoreImpl({request})[0];
  }

  std::vector<std::vector<float>> ScoreBatch(
      const std::vector<ScoreRequest>& requests) const override {
    return ScoreImpl(requests);
  }

  ScorerCapabilities Capabilities() const override {
    return retriever_->Capabilities();
  }

  std::vector<float> ScoreCatalog(
      const std::vector<int64_t>& history) const override {
    ScoreRequest request;
    request.history = history;
    return Score(request);  // Empty candidates = the full catalog.
  }

  int64_t CachedPrefixLength() const override {
    // Only re-ranked requests touch the teacher's prompt path, and each of
    // them is served from its prefix cache, so the per-request skip count
    // is the re-ranker's.
    return reranker_->CachedPrefixLength();
  }

 private:
  std::vector<std::vector<float>> ScoreImpl(
      const std::vector<ScoreRequest>& requests) const;

  std::shared_ptr<const Scorer> retriever_;
  std::shared_ptr<const Scorer> reranker_;
  TwoTierOptions options_;
};

std::vector<std::vector<float>> TwoTierScorer::ScoreImpl(
    const std::vector<ScoreRequest>& requests) const {
  const size_t count = requests.size();
  // Stage 1 — retrieve: pre-rank each request's pool with the cheap tier.
  // Explicit candidate pools go through one batched retriever call; empty
  // pools mean "the full catalog" (legal here because construction
  // requires the retriever to declare full_catalog capability).
  std::vector<std::vector<float>> retriever_scores(count);
  {
    std::vector<ScoreRequest> pooled;
    std::vector<size_t> pooled_index;
    for (size_t i = 0; i < count; ++i) {
      if (requests[i].candidates.empty()) {
        retriever_scores[i] = retriever_->ScoreCatalog(requests[i].history);
      } else {
        pooled.push_back(requests[i]);
        pooled_index.push_back(i);
      }
    }
    if (!pooled.empty()) {
      std::vector<std::vector<float>> scores =
          retriever_->ScoreBatch(pooled);
      DELREC_CHECK_EQ(scores.size(), pooled.size());
      for (size_t j = 0; j < pooled.size(); ++j) {
        retriever_scores[pooled_index[j]] = std::move(scores[j]);
      }
    }
  }

  // Full retriever orderings (position indices, best first). Explicit
  // pools tie-break by item id so the re-ranked set is pool-order
  // invariant; catalog scores are indexed by item id already.
  std::vector<std::vector<int64_t>> order(count);
  std::vector<ScoreRequest> rerank_requests(count);
  for (size_t i = 0; i < count; ++i) {
    const std::vector<float>& scores = retriever_scores[i];
    const int64_t n = static_cast<int64_t>(scores.size());
    order[i] = requests[i].candidates.empty()
                   ? eval::TopK(scores, n)
                   : eval::TopKByIds(scores, requests[i].candidates, n);
    const int64_t h = std::min<int64_t>(options_.rerank_top_h, n);
    rerank_requests[i].history = requests[i].history;
    rerank_requests[i].candidates.reserve(h);
    for (int64_t j = 0; j < h; ++j) {
      rerank_requests[i].candidates.push_back(
          requests[i].candidates.empty()
              ? order[i][j]
              : requests[i].candidates[order[i][j]]);
    }
  }

  // Stage 2 — re-rank the heads with the expensive tier, one batched call.
  const std::vector<std::vector<float>> reranked =
      reranker_->ScoreBatch(rerank_requests);
  DELREC_CHECK_EQ(reranked.size(), count);

  // Compose: re-ranker scores verbatim for the head (bit-identical to
  // re-ranking the retriever's top-h directly), tail mapped strictly below
  // the head in retriever order. The tail step exceeds one ulp of the head
  // minimum, so every tail score is distinct and strictly smaller — the
  // final ranking is exactly (teacher order over top-h, then retriever
  // order) with no float absorption.
  std::vector<std::vector<float>> results(count);
  for (size_t i = 0; i < count; ++i) {
    const int64_t n = static_cast<int64_t>(retriever_scores[i].size());
    const int64_t h = static_cast<int64_t>(reranked[i].size());
    results[i].resize(n);
    float head_min = 0.0f;
    for (int64_t j = 0; j < h; ++j) {
      results[i][order[i][j]] = reranked[i][j];
      head_min = j == 0 ? reranked[i][j] : std::min(head_min, reranked[i][j]);
    }
    const double step =
        std::max(1.0, static_cast<double>(std::fabs(head_min)) * 1e-6);
    for (int64_t j = h; j < n; ++j) {
      results[i][order[i][j]] = static_cast<float>(
          static_cast<double>(head_min) -
          step * static_cast<double>(j - h + 1));
    }
  }
  return results;
}

}  // namespace

util::Status TwoTierOptions::Validate() const {
  if (rerank_top_h < 1) {
    return util::Status::InvalidArgument(
        "TwoTierOptions.rerank_top_h must be >= 1, got " +
        std::to_string(rerank_top_h));
  }
  return util::Status::Ok();
}

util::StatusOr<std::unique_ptr<Scorer>> MakeTwoTierScorer(
    std::shared_ptr<const Scorer> retriever,
    std::shared_ptr<const Scorer> reranker, const TwoTierOptions& options) {
  DELREC_RETURN_IF_ERROR(options.Validate());
  if (retriever == nullptr || reranker == nullptr) {
    return util::Status::InvalidArgument(
        "two-tier composition requires both tiers");
  }
  const ScorerCapabilities capabilities = retriever->Capabilities();
  if (!capabilities.full_catalog || capabilities.catalog_size < 1) {
    return util::Status::InvalidArgument(
        retriever->name() +
        " does not declare full-catalog capability; it cannot retrieve");
  }
  return std::unique_ptr<Scorer>(std::make_unique<TwoTierScorer>(
      std::move(retriever), std::move(reranker), options));
}

util::StatusOr<std::shared_ptr<const Scorer>> MakeSnapshotTwoTier(
    std::shared_ptr<const EngineSnapshot> snapshot,
    const TwoTierOptions& options) {
  if (snapshot == nullptr) {
    return util::Status::InvalidArgument("null snapshot");
  }
  if (!snapshot->has_student()) {
    return util::Status::InvalidArgument(
        "snapshot embeds no student blob; rebuild it with one attached");
  }
  // The retriever adapter borrows the snapshot's student; the re-ranker
  // tier IS the snapshot, and the composed scorer holds it by shared_ptr,
  // so the published artifact keeps both tiers alive and swaps them as one
  // version — there is no window where student and teacher mismatch.
  std::shared_ptr<const Scorer> retriever =
      MakeSequentialScorer(snapshot->student());
  DELREC_ASSIGN_OR_RETURN(
      std::unique_ptr<Scorer> two_tier,
      MakeTwoTierScorer(std::move(retriever), std::move(snapshot), options));
  return std::shared_ptr<const Scorer>(std::move(two_tier));
}

}  // namespace delrec::serve
