#ifndef DELREC_SERVE_SCORER_H_
#define DELREC_SERVE_SCORER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baselines/common.h"
#include "core/delrec.h"
#include "srmodels/factory.h"
#include "srmodels/recommender.h"

namespace delrec::serve {

/// One candidate-scoring request: rank `candidates` given `history` (most
/// recent interaction last).
struct ScoreRequest {
  std::vector<int64_t> history;
  std::vector<int64_t> candidates;
  /// Latency budget measured from the moment the request enters an engine's
  /// queue. 0 defers to EngineOptions::default_deadline_ms (where 0 again
  /// means "no deadline"). A request whose budget has lapsed by the time the
  /// dispatcher would score it is shed with kDeadlineExceeded instead of
  /// being scored late. Scorers themselves ignore this field — deadlines are
  /// an engine concern, so Score()/ScoreBatch() results never depend on it.
  double deadline_ms = 0.0;
};

/// What a backend can do beyond the base candidate-scoring contract
/// (DESIGN.md §16). Every Scorer can re-score an explicit candidate list;
/// only some — the conventional SR backbones and the distilled student —
/// can also score the entire catalog in one call, which is what a two-tier
/// retriever needs. Declared rather than probed so composition failures
/// (e.g. a candidate-only backend as the retriever tier) are
/// InvalidArgument at build time, not CHECK-fails under traffic.
struct ScorerCapabilities {
  /// ScoreCatalog() is implemented: one score per catalog item.
  bool full_catalog = false;
  /// Items ScoreCatalog() covers (0 when full_catalog is false).
  int64_t catalog_size = 0;
};

/// The unified serving interface every recommender in this repo sits
/// behind: DELRec itself (live or as a frozen EngineSnapshot), the four
/// baselines/ LLM paradigms, the conventional srmodels/ backbones, the
/// distilled student, and the two-tier composition of a retriever with a
/// re-ranker. A RecommendationEngine owns one Scorer and drives it from
/// its dispatcher.
///
/// Contract: Score()/ScoreBatch() must be const-thread-safe (inference
/// mutates no observable state), and ScoreBatch row i must be bit-identical
/// to Score(requests[i]) for every batch composition — this is what makes
/// the engine's micro-batching invisible to clients (DESIGN.md §11).
class Scorer {
 public:
  virtual ~Scorer() = default;

  virtual std::string name() const = 0;

  /// Scores one request (higher = better), one float per candidate.
  virtual std::vector<float> Score(const ScoreRequest& request) const = 0;

  /// Scores a micro-batch. The default loops over Score(); implementations
  /// with a genuinely batched path (EngineSnapshot) override it.
  virtual std::vector<std::vector<float>> ScoreBatch(
      const std::vector<ScoreRequest>& requests) const;

  /// What this backend declares it can do. The default is the minimum
  /// every Scorer satisfies: candidate re-scoring only.
  virtual ScorerCapabilities Capabilities() const { return {}; }

  /// Scores every catalog item for one history (index = item id). Only
  /// valid on backends whose Capabilities().full_catalog is true; the
  /// default CHECK-fails. Same determinism and thread-safety contract as
  /// Score().
  virtual std::vector<float> ScoreCatalog(
      const std::vector<int64_t>& history) const;

  /// Prompt tokens per request this scorer serves from a precomputed prefix
  /// KV cache instead of re-encoding (DESIGN.md §15). 0 — the default, and
  /// the value for every non-cached scorer — feeds the engine's
  /// prefix_tokens_skipped counter. Purely observational: scores are
  /// bit-identical with or without the cache.
  virtual int64_t CachedPrefixLength() const { return 0; }
};

/// Adapts a conventional sequential recommender. `model` must outlive the
/// scorer and be trained. Declares full-catalog capability (ScoreCatalog =
/// the model's ScoreAllItems), so these adapters can serve as the
/// retriever tier of a TwoTierScorer.
std::unique_ptr<Scorer> MakeSequentialScorer(
    const srmodels::SequentialRecommender* model);

/// The third backend family: a distilled student (srmodels::LoadedStudent,
/// typically deserialized from a snapshot's student blob) owned by the
/// scorer itself. Full-catalog capable, like MakeSequentialScorer, but
/// self-contained — the artifact travels with the scorer, which is what
/// lets a two-tier snapshot hot-swap as one version.
std::unique_ptr<Scorer> MakeStudentScorer(srmodels::LoadedStudent student);

/// Adapts any baselines/ LlmRecommender (all four paradigms implement that
/// interface). `model` must outlive the scorer and be trained.
std::unique_ptr<Scorer> MakeBaselineScorer(
    const baselines::LlmRecommender* model);

/// Adapts a live trained DelRec. Prefer EngineSnapshot for serving — this
/// adapter exists for parity testing and for scoring without a snapshot
/// build step. `model` must outlive the scorer.
std::unique_ptr<Scorer> MakeDelRecScorer(const core::DelRec* model);

}  // namespace delrec::serve

#endif  // DELREC_SERVE_SCORER_H_
