#include "serve/sharded_server.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/check.h"

namespace delrec::serve {
namespace {

/// splitmix64 finalizer: decorrelates shard assignment from dense or
/// strided user-id spaces so no shard inherits a hot arithmetic slice.
uint64_t MixUserId(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

util::Status ShardedServerOptions::Validate() const {
  if (num_shards < 1) {
    return util::Status::InvalidArgument(
        "ShardedServerOptions.num_shards must be >= 1, got " +
        std::to_string(num_shards));
  }
  return engine.Validate();
}

ShardedServer::ShardedServer(std::shared_ptr<const Scorer> initial,
                             const ShardedServerOptions& options)
    : options_(options), handle_(std::move(initial)) {
  const util::Status valid = options_.Validate();
  DELREC_CHECK(valid.ok()) << valid.ToString();
  shards_.reserve(options_.num_shards);
  for (int shard = 0; shard < options_.num_shards; ++shard) {
    shards_.push_back(
        std::make_unique<RecommendationEngine>(&handle_, options_.engine));
  }
}

ShardedServer::~ShardedServer() { Shutdown(); }

int ShardedServer::ShardFor(uint64_t user_id) const {
  return static_cast<int>(MixUserId(user_id) %
                          static_cast<uint64_t>(shards_.size()));
}

std::future<ScoreResponse> ShardedServer::ScoreAsync(uint64_t user_id,
                                                     ScoreRequest request) {
  return shards_[ShardFor(user_id)]->ScoreAsync(std::move(request));
}

ScoreResponse ShardedServer::Score(uint64_t user_id,
                                   std::vector<int64_t> history,
                                   std::vector<int64_t> candidates) {
  ScoreRequest request;
  request.history = std::move(history);
  request.candidates = std::move(candidates);
  return ScoreAsync(user_id, std::move(request)).get();
}

uint64_t ShardedServer::PublishSnapshot(std::shared_ptr<const Scorer> next) {
  return handle_.Publish(std::move(next));
}

RecommendationEngine::Stats ShardedServer::ShardStats(int shard) const {
  DELREC_CHECK_GE(shard, 0);
  DELREC_CHECK_LT(shard, static_cast<int>(shards_.size()));
  return shards_[shard]->GetStats();
}

RecommendationEngine::Stats ShardedServer::TotalStats() const {
  std::vector<RecommendationEngine::Stats> stats;
  stats.reserve(shards_.size());
  for (const auto& shard : shards_) stats.push_back(shard->GetStats());
  return MergeStats(stats);
}

void ShardedServer::Shutdown() {
  for (const auto& shard : shards_) shard->Shutdown();
}

RecommendationEngine::Stats MergeStats(
    const std::vector<RecommendationEngine::Stats>& shards) {
  RecommendationEngine::Stats total;
  for (const RecommendationEngine::Stats& shard : shards) {
    total.submitted += shard.submitted;
    total.requests += shard.requests;
    total.scored += shard.scored;
    total.batches += shard.batches;
    total.max_batch = std::max(total.max_batch, shard.max_batch);
    total.shed_queue_full += shard.shed_queue_full;
    total.shed_deadline += shard.shed_deadline;
    total.shed_shutdown += shard.shed_shutdown;
    total.scorer_failures += shard.scorer_failures;
    total.swaps_observed += shard.swaps_observed;
    total.prefix_tokens_skipped += shard.prefix_tokens_skipped;
    // Merge the per-version attribution by key, never by position: shards
    // observe hot swaps at different times, so the same window can hold
    // shards on different versions, and a positional merge would fold
    // version A's tokens into version B's. Key-wise summing keeps the
    // invariant that the map's values sum to prefix_tokens_skipped.
    for (const auto& [version, skipped] : shard.prefix_tokens_by_version) {
      total.prefix_tokens_by_version[version] += skipped;
    }
    total.snapshot_version =
        std::max(total.snapshot_version, shard.snapshot_version);
    for (int bucket = 0; bucket < RecommendationEngine::kQueueWaitBuckets;
         ++bucket) {
      total.queue_wait_histogram[bucket] += shard.queue_wait_histogram[bucket];
    }
  }
  total.mean_batch = total.batches == 0
                         ? 0.0
                         : static_cast<double>(total.requests) /
                               static_cast<double>(total.batches);
  total.queue_p50_ms = RecommendationEngine::QueueWaitPercentileMs(
      total.queue_wait_histogram, 0.50);
  total.queue_p99_ms = RecommendationEngine::QueueWaitPercentileMs(
      total.queue_wait_histogram, 0.99);
  return total;
}

}  // namespace delrec::serve
