#include "serve/scorer.h"

#include <utility>

#include "util/check.h"

namespace delrec::serve {
namespace {

// LlmRecommender and DelRec score data::Examples; serving has no target, so
// requests are wrapped in an Example whose target is never read by scoring
// (the same shim DelRec::Recommend uses).
data::Example AsExample(const ScoreRequest& request) {
  data::Example example;
  example.history = request.history;
  example.target = request.candidates.empty() ? 0 : request.candidates[0];
  return example;
}

class SequentialScorer : public Scorer {
 public:
  explicit SequentialScorer(const srmodels::SequentialRecommender* model)
      : model_(model) {
    DELREC_CHECK(model != nullptr);
  }

  std::string name() const override { return model_->name(); }

  std::vector<float> Score(const ScoreRequest& request) const override {
    return model_->ScoreCandidates(request.history, request.candidates);
  }

  std::vector<std::vector<float>> ScoreBatch(
      const std::vector<ScoreRequest>& requests) const override {
    std::vector<std::vector<int64_t>> histories;
    std::vector<std::vector<int64_t>> candidates;
    histories.reserve(requests.size());
    candidates.reserve(requests.size());
    for (const ScoreRequest& request : requests) {
      histories.push_back(request.history);
      candidates.push_back(request.candidates);
    }
    return model_->ScoreCandidatesBatch(histories, candidates);
  }

  ScorerCapabilities Capabilities() const override {
    return {/*full_catalog=*/true, model_->item_count()};
  }

  std::vector<float> ScoreCatalog(
      const std::vector<int64_t>& history) const override {
    return model_->ScoreAllItems(history);
  }

 private:
  const srmodels::SequentialRecommender* model_;
};

/// SequentialScorer that owns its model: the deserialized-student backend.
class StudentScorer : public SequentialScorer {
 public:
  explicit StudentScorer(srmodels::LoadedStudent student)
      : SequentialScorer(student.model.get()),
        student_(std::move(student)) {}

  std::string name() const override {
    return "student(" + student_.model->name() + ")";
  }

 private:
  srmodels::LoadedStudent student_;
};

class BaselineScorer : public Scorer {
 public:
  explicit BaselineScorer(const baselines::LlmRecommender* model)
      : model_(model) {
    DELREC_CHECK(model != nullptr);
  }

  std::string name() const override { return model_->name(); }

  std::vector<float> Score(const ScoreRequest& request) const override {
    return model_->ScoreCandidates(AsExample(request), request.candidates);
  }

 private:
  const baselines::LlmRecommender* model_;
};

class DelRecScorer : public Scorer {
 public:
  explicit DelRecScorer(const core::DelRec* model) : model_(model) {
    DELREC_CHECK(model != nullptr);
  }

  std::string name() const override { return model_->name(); }

  std::vector<float> Score(const ScoreRequest& request) const override {
    return model_->ScoreCandidates(AsExample(request), request.candidates);
  }

 private:
  const core::DelRec* model_;
};

}  // namespace

std::vector<std::vector<float>> Scorer::ScoreBatch(
    const std::vector<ScoreRequest>& requests) const {
  std::vector<std::vector<float>> results;
  results.reserve(requests.size());
  for (const ScoreRequest& request : requests) {
    results.push_back(Score(request));
  }
  return results;
}

std::vector<float> Scorer::ScoreCatalog(
    const std::vector<int64_t>& history) const {
  DELREC_CHECK(false) << name()
                      << " does not declare full-catalog capability";
  return {};
}

std::unique_ptr<Scorer> MakeSequentialScorer(
    const srmodels::SequentialRecommender* model) {
  return std::make_unique<SequentialScorer>(model);
}

std::unique_ptr<Scorer> MakeStudentScorer(srmodels::LoadedStudent student) {
  DELREC_CHECK(student.model != nullptr);
  return std::make_unique<StudentScorer>(std::move(student));
}

std::unique_ptr<Scorer> MakeBaselineScorer(
    const baselines::LlmRecommender* model) {
  return std::make_unique<BaselineScorer>(model);
}

std::unique_ptr<Scorer> MakeDelRecScorer(const core::DelRec* model) {
  return std::make_unique<DelRecScorer>(model);
}

}  // namespace delrec::serve
