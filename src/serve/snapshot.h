#ifndef DELREC_SERVE_SNAPSHOT_H_
#define DELREC_SERVE_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/delrec.h"
#include "data/dataset.h"
#include "llm/prompt.h"
#include "llm/tiny_lm.h"
#include "llm/verbalizer.h"
#include "llm/vocab.h"
#include "nn/tensor.h"
#include "serve/scorer.h"
#include "srmodels/factory.h"
#include "srmodels/recommender.h"
#include "util/rng.h"
#include "util/status.h"

namespace delrec::serve {

/// Snapshot build-time options (DESIGN.md §13). `quantize_int8` converts the
/// frozen TinyLm to int8 serving form after loading: adapters merged, dense
/// projections quantized per-output-channel, matmuls routed through the
/// packed int8 kernels. `quantize_embedding_table` additionally quantizes
/// the effective token table (covering the input gather and the tied LM
/// head) — the bulk of the footprint win, as the table dominates weight
/// bytes at these model sizes. Scores are no longer bit-identical to the
/// fp32 snapshot but stay within the tolerance gated by
/// tests/quant_parity_test.cc; the fp32 default is bit-for-bit unchanged.
/// (Namespace-scope rather than nested so it can be a default argument.)
struct SnapshotBuildOptions {
  bool quantize_int8 = false;
  bool quantize_embedding_table = true;
  /// Precomputes the shared prompt-prefix K/V cache (TinyLm::PrefixState)
  /// at build time so ScoreBatch encodes only each request's suffix
  /// (DESIGN.md §15). Scores are bit-identical either way — the cache is
  /// exact, on the fp32 and int8 paths alike — so this is purely a
  /// throughput/footprint trade. Off exists for the uncached baseline side
  /// of bench_serve and for bit-identity tests.
  bool enable_prefix_cache = true;
};

/// Where a snapshot's resident bytes live (asserted to sum to
/// MemoryFootprintBytes in tests/serve_test.cc).
struct SnapshotFootprint {
  size_t weight_bytes = 0;        ///< TinyLm serving weights (fp32 or int8).
  size_t soft_prompt_bytes = 0;   ///< Distilled soft-prompt rows.
  size_t token_table_bytes = 0;   ///< Materialized fp32 effective table.
  size_t prefix_cache_bytes = 0;  ///< PrefixState per-layer K/V + hidden.
  size_t student_bytes = 0;       ///< Embedded distilled student (0 if none).

  size_t total() const {
    return weight_bytes + soft_prompt_bytes + token_table_bytes +
           prefix_cache_bytes + student_bytes;
  }
};

/// An immutable, shareable inference artifact: the frozen TinyLm (base
/// weights + AdaLoRA adapters + embedding-LoRA factors), the distilled soft
/// prompts, the prompt templates, the verbalizer, and a materialized
/// effective token table — everything candidate scoring needs, with no
/// trainer state attached. Buildable from a live trained DelRec or straight
/// from SaveDelRecCheckpoint blobs; both construction paths produce
/// bit-identical scores to the live model (tests/serve_test.cc).
///
/// Scoring is const and thread-safe: the snapshot's own TinyLm is never
/// mutated after construction, inference draws no RNG, and grad mode is
/// thread-local. Score() walks the same per-sequence tensor path as
/// DelRec::ScoreCandidates; ScoreBatch() stacks prompts into one
/// row-concatenated TinyLm::EncodeBatch pass, bit-identical per row at
/// every thread count and batch composition (DESIGN.md §11).
class EngineSnapshot : public Scorer {
 public:
  /// Borrowed, immutable context the snapshot scores against. All pointers
  /// must outlive the snapshot. `sr_model` supplies the TopK hint channel
  /// of the stage-2 prompt and must be the trained backbone DELRec
  /// distilled from (it is consulted read-only).
  struct Sources {
    const data::CatalogView* catalog = nullptr;
    const llm::Vocab* vocab = nullptr;
    const srmodels::SequentialRecommender* sr_model = nullptr;
  };

  using BuildOptions = SnapshotBuildOptions;

  /// Freezes a live trained system. Copies all parameter state out of
  /// `model`/`llm` (via the checkpoint blob path, so a frozen-from-model
  /// snapshot is byte-for-byte the same artifact as one loaded from disk).
  static util::StatusOr<std::unique_ptr<EngineSnapshot>> FromModel(
      const core::DelRec& model, const llm::TinyLm& llm,
      const Sources& sources, const BuildOptions& options = BuildOptions());

  /// Builds from checkpoint blobs. `llm_config`/`config` must describe the
  /// architecture the checkpoint was trained with (blob sizes are
  /// validated; InvalidArgument on mismatch).
  static util::StatusOr<std::unique_ptr<EngineSnapshot>> FromBlobs(
      const core::DelRecBlobs& blobs, const llm::TinyLmConfig& llm_config,
      const core::DelRecConfig& config, const Sources& sources,
      const BuildOptions& options = BuildOptions());

  /// Reads a SaveDelRecCheckpoint file and builds from its blobs.
  static util::StatusOr<std::unique_ptr<EngineSnapshot>> FromCheckpoint(
      const std::string& path, const llm::TinyLmConfig& llm_config,
      const core::DelRecConfig& config, const Sources& sources,
      const BuildOptions& options = BuildOptions());

  // Scorer interface.
  std::string name() const override;
  std::vector<float> Score(const ScoreRequest& request) const override;
  std::vector<std::vector<float>> ScoreBatch(
      const std::vector<ScoreRequest>& requests) const override;

  /// Top-k recommendation over a candidate pool, best first.
  std::vector<int64_t> Recommend(const std::vector<int64_t>& history,
                                 const std::vector<int64_t>& candidate_pool,
                                 int64_t k) const;

  const core::DelRecConfig& config() const { return config_; }
  const llm::TinyLm& llm() const { return *llm_; }
  const nn::Tensor& soft_prompts() const { return soft_prompts_; }
  bool quantized() const { return llm_->quantized(); }

  /// Bytes of model state one scoring call reads: the LLM's serving weights
  /// (fp32 or packed int8), the soft prompts, the materialized fp32
  /// effective table when one is held, and the prefix KV cache when one was
  /// built. Reported by bench_serve so the ~4× int8 weight shrink is a
  /// gated, visible number.
  size_t MemoryFootprintBytes() const { return MemoryFootprint().total(); }
  /// The same bytes, broken down by where they live.
  SnapshotFootprint MemoryFootprint() const;

  /// Tokens of every request's prompt served from the prefix KV cache (0
  /// when the cache is disabled) — the engine's prefix_tokens_skipped
  /// counter multiplies this by requests scored.
  int64_t CachedPrefixLength() const override {
    return prefix_state_.length;
  }
  const llm::TinyLm::PrefixState& prefix_state() const {
    return prefix_state_;
  }

  /// Whether the checkpoint this snapshot was built from embedded a
  /// distilled student blob (DelRecBlobs::student_blob). When true, the
  /// snapshot carries the deserialized student alongside the teacher so
  /// MakeSnapshotTwoTier can publish both tiers as one atomic version.
  bool has_student() const { return student_.model != nullptr; }
  /// The embedded student (frozen, inference-only). CHECK-fails when
  /// has_student() is false.
  const srmodels::SequentialRecommender* student() const;
  /// The student's declared architecture (valid only when has_student()).
  const srmodels::StudentSpec& student_spec() const { return student_.spec; }

 private:
  EngineSnapshot(const core::DelRecConfig& config, const Sources& sources);

  Sources sources_;
  core::DelRecConfig config_;
  std::unique_ptr<llm::TinyLm> llm_;  // Owned, frozen after construction.
  nn::Tensor soft_prompts_;           // (k, model_dim), no grad.
  llm::PromptBuilder prompt_builder_;
  llm::Verbalizer verbalizer_;
  nn::Tensor effective_table_;  // MaterializeTokenTable(), shared by calls.
  // Precomputed K/V of the snapshot-constant prompt head (empty when the
  // cache is disabled). Built inside FromBlobs — after quantization, so the
  // int8 path's cache comes from the int8 projections — and immutable after
  // that, like everything else here: publishing a new snapshot is what
  // invalidates it (the old PrefixState dies with the old snapshot's
  // refcount, DESIGN.md §12/§15).
  llm::TinyLm::PrefixState prefix_state_;
  // Deserialized DelRecBlobs::student_blob (model == nullptr when the
  // checkpoint carried none). Owned and frozen like everything else here;
  // lives and dies with the snapshot so two-tier publishes are atomic.
  srmodels::LoadedStudent student_;
  // Handed to Encode() for its dropout parameter; inference never draws
  // from it (dropout 0, training off), so concurrent Score() calls are safe.
  mutable util::Rng scratch_rng_;
};

}  // namespace delrec::serve

#endif  // DELREC_SERVE_SNAPSHOT_H_
