#include "serve/engine.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <string>
#include <utility>

#include "util/check.h"
#include "util/failpoint.h"

namespace delrec::serve {
namespace {

constexpr auto kNoDeadline = std::chrono::steady_clock::time_point::max();

/// Arrival-relative budget → absolute deadline. A non-positive budget means
/// "no deadline" (never sheds).
std::chrono::steady_clock::time_point DeadlineFor(
    std::chrono::steady_clock::time_point arrival, double request_ms,
    double default_ms) {
  const double budget_ms = request_ms > 0.0 ? request_ms : default_ms;
  if (budget_ms <= 0.0) return kNoDeadline;
  return arrival + std::chrono::microseconds(
                       static_cast<int64_t>(budget_ms * 1000.0));
}

ScoreResponse Rejection(util::Status status) {
  ScoreResponse response;
  response.status = std::move(status);
  return response;
}

}  // namespace

util::Status EngineOptions::Validate() const {
  if (max_batch_size < 1) {
    return util::Status::InvalidArgument(
        "EngineOptions.max_batch_size must be >= 1, got " +
        std::to_string(max_batch_size));
  }
  if (!(batch_deadline_ms >= 0.0)) {  // Also rejects NaN.
    return util::Status::InvalidArgument(
        "EngineOptions.batch_deadline_ms must be >= 0, got " +
        std::to_string(batch_deadline_ms));
  }
  if (max_queue_depth < 0) {
    return util::Status::InvalidArgument(
        "EngineOptions.max_queue_depth must be >= 0, got " +
        std::to_string(max_queue_depth));
  }
  if (!(default_deadline_ms >= 0.0)) {
    return util::Status::InvalidArgument(
        "EngineOptions.default_deadline_ms must be >= 0, got " +
        std::to_string(default_deadline_ms));
  }
  return util::Status::Ok();
}

RecommendationEngine::RecommendationEngine(const SnapshotHandle* handle,
                                           const EngineOptions& options)
    : handle_(handle), options_(options) {
  DELREC_CHECK(handle != nullptr);
  Start();
}

RecommendationEngine::RecommendationEngine(const Scorer* scorer,
                                           const EngineOptions& options)
    : options_(options) {
  DELREC_CHECK(scorer != nullptr);
  // Non-owning: the caller guarantees the scorer outlives the engine, so the
  // handle's shared_ptr only has to keep the version tag alive.
  owned_handle_ = std::make_unique<SnapshotHandle>(
      std::shared_ptr<const Scorer>(scorer, [](const Scorer*) {}));
  handle_ = owned_handle_.get();
  Start();
}

void RecommendationEngine::Start() {
  const util::Status valid = options_.Validate();
  DELREC_CHECK(valid.ok()) << valid.ToString();
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

RecommendationEngine::~RecommendationEngine() { Shutdown(); }

std::future<ScoreResponse> RecommendationEngine::ScoreAsync(
    ScoreRequest request) {
  Pending pending;
  pending.arrival = Clock::now();
  pending.deadline = DeadlineFor(pending.arrival, request.deadline_ms,
                                 options_.default_deadline_ms);
  pending.request = std::move(request);
  std::future<ScoreResponse> future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++submitted_;
    if (stopping_) {
      ++shed_shutdown_;
      pending.promise.set_value(Rejection(
          util::Status::Unavailable("engine is shut down")));
      return future;
    }
    if (options_.max_queue_depth > 0 &&
        queue_.size() >= static_cast<size_t>(options_.max_queue_depth)) {
      ++shed_queue_full_;
      pending.promise.set_value(Rejection(util::Status::Unavailable(
          "admission queue full (depth " +
          std::to_string(options_.max_queue_depth) + ")")));
      return future;
    }
    queue_.push_back(std::move(pending));
  }
  cv_.notify_all();
  return future;
}

std::vector<float> RecommendationEngine::ScoreCandidates(
    std::vector<int64_t> history, std::vector<int64_t> candidates) {
  ScoreRequest request;
  request.history = std::move(history);
  request.candidates = std::move(candidates);
  ScoreResponse response = ScoreAsync(std::move(request)).get();
  DELREC_CHECK(response.status.ok()) << response.status.ToString();
  return std::move(response.scores);
}

void RecommendationEngine::Shutdown() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    // Claim the dispatcher under the lock so concurrent Shutdown() calls
    // cannot both join it; later callers get an empty thread.
    to_join = std::move(dispatcher_);
  }
  cv_.notify_all();
  if (to_join.joinable()) to_join.join();
}

RecommendationEngine::Stats RecommendationEngine::GetStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.submitted = submitted_;
  stats.requests = dispatched_requests_;
  stats.scored = scored_requests_;
  stats.batches = dispatched_batches_;
  stats.max_batch = max_batch_;
  stats.mean_batch =
      dispatched_batches_ == 0
          ? 0.0
          : static_cast<double>(dispatched_requests_) /
                static_cast<double>(dispatched_batches_);
  stats.shed_queue_full = shed_queue_full_;
  stats.shed_deadline = shed_deadline_;
  stats.shed_shutdown = shed_shutdown_;
  stats.scorer_failures = scorer_failures_;
  stats.swaps_observed = swaps_observed_;
  stats.snapshot_version = last_version_;
  stats.prefix_tokens_skipped = prefix_tokens_skipped_;
  stats.prefix_tokens_by_version = prefix_tokens_by_version_;
  stats.queue_wait_histogram = queue_wait_histogram_;
  stats.queue_p50_ms = QueueWaitPercentileMs(queue_wait_histogram_, 0.50);
  stats.queue_p99_ms = QueueWaitPercentileMs(queue_wait_histogram_, 0.99);
  return stats;
}

double RecommendationEngine::QueueWaitPercentileMs(
    const QueueWaitHistogram& histogram, double q) {
  uint64_t total = 0;
  for (uint64_t count : histogram) total += count;
  if (total == 0) return 0.0;
  const uint64_t rank = std::min<uint64_t>(
      total, static_cast<uint64_t>(std::ceil(q * static_cast<double>(total))));
  uint64_t seen = 0;
  for (int bucket = 0; bucket < kQueueWaitBuckets; ++bucket) {
    seen += histogram[bucket];
    if (seen >= std::max<uint64_t>(rank, 1)) {
      // Bucket upper bound: 2^bucket µs (bucket 0 = <1µs).
      return std::ldexp(1.0, bucket) * 1e-3;
    }
  }
  return std::ldexp(1.0, kQueueWaitBuckets - 1) * 1e-3;
}

void RecommendationEngine::RecordQueueWaitLocked(Clock::duration wait) {
  const int64_t us =
      std::chrono::duration_cast<std::chrono::microseconds>(wait).count();
  int bucket = 0;
  while (bucket < kQueueWaitBuckets - 1 && (int64_t{1} << bucket) <= us) {
    ++bucket;
  }
  ++queue_wait_histogram_[bucket];
}

void RecommendationEngine::DispatcherLoop() {
  const auto deadline_budget = std::chrono::microseconds(
      static_cast<int64_t>(options_.batch_deadline_ms * 1000.0));
  const size_t max_batch = static_cast<size_t>(options_.max_batch_size);
  while (true) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ and fully drained.

    // Linger for more requests so concurrent clients coalesce into one
    // batched forward — but never past the deadline, and not at all once
    // the batch is full or shutdown begins.
    if (deadline_budget.count() > 0 && queue_.size() < max_batch &&
        !stopping_) {
      const auto deadline = Clock::now() + deadline_budget;
      cv_.wait_until(lock, deadline, [this, max_batch] {
        return stopping_ || queue_.size() >= max_batch;
      });
    }

    // Form the batch in FIFO order, shedding requests whose deadline lapsed
    // while they queued — scoring them now would only return a result the
    // client has already given up on, at the expense of live requests.
    const auto now = Clock::now();
    std::vector<Pending> batch;
    std::vector<Pending> expired;
    batch.reserve(std::min(queue_.size(), max_batch));
    while (!queue_.empty() && batch.size() < max_batch) {
      Pending pending = std::move(queue_.front());
      queue_.pop_front();
      if (pending.deadline < now) {
        ++shed_deadline_;
        expired.push_back(std::move(pending));
      } else {
        RecordQueueWaitLocked(now - pending.arrival);
        batch.push_back(std::move(pending));
      }
    }
    dispatched_requests_ += batch.size();
    if (!batch.empty()) {
      dispatched_batches_ += 1;
      max_batch_ = std::max<uint64_t>(max_batch_, batch.size());
    }
    lock.unlock();

    for (Pending& pending : expired) {
      pending.promise.set_value(Rejection(util::Status::DeadlineExceeded(
          "deadline lapsed while queued")));
    }
    if (batch.empty()) continue;

    // Acquire the current snapshot once per batch: every request in the
    // batch scores on the same version, and the shared_ptr keeps that
    // version alive even if a publisher swaps mid-ScoreBatch.
    const SnapshotHandle::Tagged tagged = handle_->Acquire();
    {
      std::lock_guard<std::mutex> stats_lock(mutex_);
      if (tagged.version != last_version_) {
        if (last_version_ != 0) ++swaps_observed_;
        last_version_ = tagged.version;
      }
    }

    // Fault delivery: an injected dispatch fault or a throwing scorer fails
    // exactly this batch's promises — each pending request still resolves,
    // and the dispatcher keeps running for the next batch.
    util::Status batch_status =
        util::Failpoints::Instance().Check("serve.engine.dispatch");
    std::vector<std::vector<float>> results;
    if (batch_status.ok()) {
      std::vector<ScoreRequest> requests;
      requests.reserve(batch.size());
      for (Pending& pending : batch) requests.push_back(pending.request);
      try {
        results = tagged.scorer->ScoreBatch(requests);
        if (results.size() != batch.size()) {
          batch_status = util::Status::Internal(
              "scorer returned " + std::to_string(results.size()) +
              " results for a batch of " + std::to_string(batch.size()));
        }
      } catch (const std::exception& e) {
        batch_status =
            util::Status::Internal(std::string("scorer threw: ") + e.what());
      } catch (...) {
        batch_status = util::Status::Internal("scorer threw a non-exception");
      }
    }

    // Tally before resolving: a client that sees its future ready must also
    // see the stats that account for it.
    {
      std::lock_guard<std::mutex> stats_lock(mutex_);
      if (batch_status.ok()) {
        scored_requests_ += batch.size();
        // Count against the scorer this batch actually ran on — a hot-swap
        // can change the cached prefix length mid-stream — and attribute
        // the tokens to its version so mixed-version windows stay auditable
        // (Stats::prefix_tokens_by_version).
        const uint64_t skipped =
            batch.size() *
            static_cast<uint64_t>(tagged.scorer->CachedPrefixLength());
        prefix_tokens_skipped_ += skipped;
        prefix_tokens_by_version_[tagged.version] += skipped;
      } else {
        scorer_failures_ += batch.size();
      }
    }
    if (batch_status.ok()) {
      for (size_t i = 0; i < batch.size(); ++i) {
        ScoreResponse response;
        response.scores = std::move(results[i]);
        response.snapshot_version = tagged.version;
        batch[i].promise.set_value(std::move(response));
      }
    } else {
      for (Pending& pending : batch) {
        pending.promise.set_value(Rejection(batch_status));
      }
    }
  }
}

}  // namespace delrec::serve
