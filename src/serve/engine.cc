#include "serve/engine.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/check.h"

namespace delrec::serve {

RecommendationEngine::RecommendationEngine(const Scorer* scorer,
                                           const EngineOptions& options)
    : scorer_(scorer), options_(options) {
  DELREC_CHECK(scorer != nullptr);
  DELREC_CHECK_GE(options_.max_batch_size, 1);
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

RecommendationEngine::~RecommendationEngine() { Shutdown(); }

std::future<std::vector<float>> RecommendationEngine::ScoreAsync(
    ScoreRequest request) {
  Pending pending;
  pending.request = std::move(request);
  std::future<std::vector<float>> future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DELREC_CHECK(!stopping_);  // No submissions after Shutdown().
    queue_.push_back(std::move(pending));
  }
  cv_.notify_all();
  return future;
}

std::vector<float> RecommendationEngine::ScoreCandidates(
    std::vector<int64_t> history, std::vector<int64_t> candidates) {
  ScoreRequest request;
  request.history = std::move(history);
  request.candidates = std::move(candidates);
  return ScoreAsync(std::move(request)).get();
}

void RecommendationEngine::Shutdown() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    // Claim the dispatcher under the lock so concurrent Shutdown() calls
    // cannot both join it; later callers get an empty thread.
    to_join = std::move(dispatcher_);
  }
  cv_.notify_all();
  if (to_join.joinable()) to_join.join();
}

RecommendationEngine::Stats RecommendationEngine::GetStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.requests = dispatched_requests_;
  stats.batches = dispatched_batches_;
  stats.max_batch = max_batch_;
  stats.mean_batch =
      dispatched_batches_ == 0
          ? 0.0
          : static_cast<double>(dispatched_requests_) /
                static_cast<double>(dispatched_batches_);
  return stats;
}

void RecommendationEngine::DispatcherLoop() {
  const auto deadline_budget = std::chrono::microseconds(
      static_cast<int64_t>(options_.batch_deadline_ms * 1000.0));
  const size_t max_batch = static_cast<size_t>(options_.max_batch_size);
  while (true) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ and fully drained.

    // Linger for more requests so concurrent clients coalesce into one
    // batched forward — but never past the deadline, and not at all once
    // the batch is full or shutdown begins.
    if (deadline_budget.count() > 0 && queue_.size() < max_batch &&
        !stopping_) {
      const auto deadline = std::chrono::steady_clock::now() + deadline_budget;
      cv_.wait_until(lock, deadline, [this, max_batch] {
        return stopping_ || queue_.size() >= max_batch;
      });
    }

    const size_t take = std::min(queue_.size(), max_batch);
    std::vector<Pending> batch;
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    dispatched_requests_ += take;
    dispatched_batches_ += 1;
    max_batch_ = std::max<uint64_t>(max_batch_, take);
    lock.unlock();

    std::vector<ScoreRequest> requests;
    requests.reserve(batch.size());
    for (Pending& pending : batch) requests.push_back(pending.request);
    std::vector<std::vector<float>> results = scorer_->ScoreBatch(requests);
    DELREC_CHECK_EQ(results.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.set_value(std::move(results[i]));
    }
  }
}

}  // namespace delrec::serve
