#ifndef DELREC_SERVE_SNAPSHOT_HANDLE_H_
#define DELREC_SERVE_SNAPSHOT_HANDLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

#include "serve/scorer.h"
#include "util/check.h"

namespace delrec::serve {

/// RCU-style publication point for the scorer a serve tier runs against.
///
/// Readers (engine dispatchers) call Acquire() on every batch: one atomic
/// shared_ptr load, no mutex, never blocked by a publisher. Publishers build
/// the next EngineSnapshot off to the side and Publish() it: a single atomic
/// store. In-flight batches keep scoring on the shared_ptr they already
/// acquired — the old snapshot stays alive until its last batch drops the
/// reference — while every batch formed after the store scores on the new
/// one. No request ever observes a half-swapped state, and nothing pauses.
///
/// Every published scorer gets a monotonically increasing version (the
/// initial scorer is version 1). Engines tag each response with the version
/// it was scored against, which is what makes hot swaps auditable: responses
/// carrying the same version are bit-identical to that snapshot's
/// single-request scores, whatever swaps happened around them.
class SnapshotHandle {
 public:
  struct Tagged {
    std::shared_ptr<const Scorer> scorer;
    uint64_t version = 0;
  };

  explicit SnapshotHandle(std::shared_ptr<const Scorer> initial) {
    DELREC_CHECK(initial != nullptr);
    current_.store(
        std::make_shared<const Tagged>(Tagged{std::move(initial), 1}),
        std::memory_order_release);
  }

  SnapshotHandle(const SnapshotHandle&) = delete;
  SnapshotHandle& operator=(const SnapshotHandle&) = delete;

  /// Current scorer + version. Wait-free for readers; the returned
  /// shared_ptr keeps the snapshot alive for as long as the caller scores
  /// against it, regardless of concurrent Publish() calls.
  Tagged Acquire() const {
    return *current_.load(std::memory_order_acquire);
  }

  /// Atomically swaps in `next` and returns its version. Publishers are
  /// serialized against each other (versions stay dense and monotonic);
  /// readers are never blocked.
  uint64_t Publish(std::shared_ptr<const Scorer> next) {
    DELREC_CHECK(next != nullptr);
    std::lock_guard<std::mutex> lock(publish_mutex_);
    const uint64_t version =
        current_.load(std::memory_order_acquire)->version + 1;
    current_.store(std::make_shared<const Tagged>(Tagged{std::move(next),
                                                         version}),
                   std::memory_order_release);
    return version;
  }

  uint64_t version() const {
    return current_.load(std::memory_order_acquire)->version;
  }

 private:
  std::atomic<std::shared_ptr<const Tagged>> current_;
  std::mutex publish_mutex_;  // Serializes publishers only.
};

}  // namespace delrec::serve

#endif  // DELREC_SERVE_SNAPSHOT_HANDLE_H_
