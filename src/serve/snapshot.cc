#include "serve/snapshot.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "nn/lora.h"
#include "nn/module.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/threadpool.h"

namespace delrec::serve {

EngineSnapshot::EngineSnapshot(const core::DelRecConfig& config,
                               const Sources& sources)
    : sources_(sources),
      config_(config),
      prompt_builder_(sources.catalog, sources.vocab),
      verbalizer_(*sources.catalog, *sources.vocab),
      scratch_rng_(config.seed) {}

util::StatusOr<std::unique_ptr<EngineSnapshot>> EngineSnapshot::FromModel(
    const core::DelRec& model, const llm::TinyLm& llm, const Sources& sources,
    const BuildOptions& options) {
  // Round-trip through the checkpoint blob representation so a snapshot
  // frozen from a live model is the same artifact as one loaded from disk
  // (and the two construction paths cannot drift apart).
  return FromBlobs(core::ExtractDelRecBlobs(model, llm), llm.config(),
                   model.config(), sources, options);
}

util::StatusOr<std::unique_ptr<EngineSnapshot>> EngineSnapshot::FromCheckpoint(
    const std::string& path, const llm::TinyLmConfig& llm_config,
    const core::DelRecConfig& config, const Sources& sources,
    const BuildOptions& options) {
  core::DelRecBlobs blobs;
  DELREC_ASSIGN_OR_RETURN(blobs, core::ReadDelRecBlobs(path));
  return FromBlobs(blobs, llm_config, config, sources, options);
}

util::StatusOr<std::unique_ptr<EngineSnapshot>> EngineSnapshot::FromBlobs(
    const core::DelRecBlobs& blobs, const llm::TinyLmConfig& llm_config,
    const core::DelRecConfig& config, const Sources& sources,
    const BuildOptions& options) {
  DELREC_CHECK(sources.catalog != nullptr);
  DELREC_CHECK(sources.vocab != nullptr);
  DELREC_CHECK(sources.sr_model != nullptr);

  std::unique_ptr<EngineSnapshot> snapshot(
      new EngineSnapshot(config, sources));

  // Base weights. Validate sizes before every LoadState: LoadState aborts on
  // mismatch, and an architecture mismatch should be a recoverable error.
  auto lm = std::make_unique<llm::TinyLm>(llm_config, /*seed=*/0);
  if (static_cast<int64_t>(blobs.llm_state.size()) != lm->ParameterCount()) {
    return util::Status::InvalidArgument("LLM architecture mismatch");
  }
  lm->LoadState(blobs.llm_state);

  // AdaLoRA adapters + embedding-LoRA factors (absent when the snapshot was
  // taken before stage 2 or with adapters ablated).
  if (!blobs.adapter_states.empty()) {
    std::vector<nn::LoraLinear*> adapters =
        lm->EnableAdapters(config.lora_rank, config.lora_scale);
    if (adapters.size() != blobs.adapter_states.size()) {
      return util::Status::InvalidArgument("adapter count mismatch");
    }
    for (size_t i = 0; i < adapters.size(); ++i) {
      if (static_cast<int64_t>(blobs.adapter_states[i].size()) !=
          adapters[i]->ParameterCount()) {
        return util::Status::InvalidArgument("adapter size mismatch");
      }
      adapters[i]->LoadState(blobs.adapter_states[i]);
      const std::vector<float>& mask = blobs.adapter_masks[i];
      for (int64_t d = 0;
           d < std::min<int64_t>(adapters[i]->rank(),
                                 static_cast<int64_t>(mask.size()));
           ++d) {
        adapters[i]->SetDirectionActive(d, mask[d] > 0.5f);
      }
      adapters[i]->SetTraining(false);
      adapters[i]->SetRequiresGrad(false);
    }
    std::vector<nn::Tensor> embedding = lm->EmbeddingAdapterParameters();
    if (embedding.size() == 2 && !blobs.embedding_lora_a.empty()) {
      if (blobs.embedding_lora_a.size() != embedding[0].data().size() ||
          blobs.embedding_lora_b.size() != embedding[1].data().size()) {
        return util::Status::InvalidArgument("embedding adapter mismatch");
      }
      embedding[0].data() = blobs.embedding_lora_a;
      embedding[1].data() = blobs.embedding_lora_b;
    }
  }
  lm->SetTraining(false);
  lm->SetRequiresGrad(false);

  // Soft prompts.
  const int64_t expected =
      config.soft_prompt_count * llm_config.model_dim;
  if (static_cast<int64_t>(blobs.soft_prompts.size()) != expected) {
    return util::Status::InvalidArgument("soft-prompt size mismatch");
  }
  snapshot->soft_prompts_ = nn::Tensor::FromData(
      {config.soft_prompt_count, llm_config.model_dim}, blobs.soft_prompts);

  snapshot->llm_ = std::move(lm);
  if (options.quantize_int8) {
    snapshot->llm_->QuantizeForInference(options.quantize_embedding_table);
  }
  // Materialize the effective token table once: every request shares it
  // instead of re-deriving the embedding-LoRA delta. With a quantized table
  // the fp32 copy is deliberately never built — the gather and the LM head
  // read the packed int8 form, which is where the footprint shrink comes
  // from.
  if (!snapshot->llm_->embedding_table_quantized()) {
    snapshot->effective_table_ = snapshot->llm_->MaterializeTokenTable();
  }
  // Prefix KV cache (DESIGN.md §15), built last so it reads the final
  // serving form of the weights (post-quantization, post-materialization):
  // encode the snapshot-constant scoring-prompt head once, capture every
  // block's K/V. FromModel rides this same path, so the
  // byte-identical-construction contract covers the cache too.
  if (options.enable_prefix_cache) {
    const std::vector<llm::PromptPiece> prefix_pieces =
        core::inference::BuildScoringPrefix(config, snapshot->prompt_builder_,
                                            snapshot->soft_prompts_);
    snapshot->prefix_state_ = snapshot->llm_->BuildPrefixState(
        prefix_pieces, snapshot->effective_table_);
  }
  // Embedded distilled student (optional, DESIGN.md §16): deserialize the
  // blob into a frozen inference model. It rides the same artifact as the
  // teacher, so a two-tier publish swaps both tiers in one version flip.
  if (!blobs.student_blob.empty()) {
    DELREC_ASSIGN_OR_RETURN(snapshot->student_,
                            srmodels::DeserializeStudent(blobs.student_blob));
    if (auto* module = dynamic_cast<nn::Module*>(snapshot->student_.model.get())) {
      module->SetTraining(false);
      module->SetRequiresGrad(false);
    }
  }
  return snapshot;
}

const srmodels::SequentialRecommender* EngineSnapshot::student() const {
  DELREC_CHECK(student_.model != nullptr)
      << "snapshot embeds no student blob";
  return student_.model.get();
}

std::string EngineSnapshot::name() const {
  return "DELRec (" + sources_.sr_model->name() + ") snapshot" +
         (llm_->quantized() ? " int8" : "");
}

SnapshotFootprint EngineSnapshot::MemoryFootprint() const {
  SnapshotFootprint footprint;
  footprint.weight_bytes = llm_->InferenceWeightBytes();
  footprint.soft_prompt_bytes = soft_prompts_.data().size() * sizeof(float);
  if (effective_table_.defined()) {
    footprint.token_table_bytes =
        effective_table_.data().size() * sizeof(float);
  }
  footprint.prefix_cache_bytes = prefix_state_.MemoryBytes();
  if (student_.model != nullptr) {
    footprint.student_bytes =
        static_cast<size_t>(student_.model->ParameterCount()) * sizeof(float);
  }
  return footprint;
}

namespace {

/// Chaos hook: the "serve.scorer.score" failpoint simulates a scorer that
/// blows up mid-inference (OOM, bad weights page, poisoned input). It
/// throws — the worst-behaved failure mode a Scorer can exhibit — so the
/// engine dispatcher's catch path is what gets exercised, not a tidy
/// Status return (tests/serve_chaos_test.cc).
void MaybeInjectScorerFault() {
  const util::Status fault =
      util::Failpoints::Instance().Check("serve.scorer.score");
  if (!fault.ok()) throw std::runtime_error(fault.ToString());
}

}  // namespace

std::vector<float> EngineSnapshot::Score(const ScoreRequest& request) const {
  // A quantized snapshot's int8 kernels live only on the batched path
  // (TinyLm::Forward still reads the fp32 parameters), so route single
  // requests through ScoreBatch to keep Score ≡ ScoreBatch row-for-row.
  // The scorer failpoint fires inside ScoreBatch, exactly once.
  if (llm_->quantized()) {
    return ScoreBatch({request}).front();
  }
  MaybeInjectScorerFault();
  nn::NoGradGuard no_grad;
  const llm::Prompt prompt = core::inference::BuildScoringPrompt(
      config_, prompt_builder_, *sources_.sr_model, soft_prompts_,
      request.history, request.candidates);
  // The boundary-masked full encode — the continuous cross-check that the
  // cached ScoreBatch path below stays bit-identical to a full re-encode
  // (serve_test pins Score ≡ ScoreBatch row at every batch composition).
  const nn::Tensor hidden =
      llm_->Encode(prompt.pieces, 0.0f, scratch_rng_, prompt.prefix_length);
  const nn::Tensor token_logits = llm_->LogitsAt(hidden, prompt.mask_position);
  return verbalizer_.Scores(token_logits.data(), request.candidates);
}

std::vector<std::vector<float>> EngineSnapshot::ScoreBatch(
    const std::vector<ScoreRequest>& requests) const {
  if (requests.empty()) return {};
  MaybeInjectScorerFault();
  const int64_t n = static_cast<int64_t>(requests.size());
  std::vector<llm::Prompt> prompts;
  prompts.reserve(requests.size());
  for (const ScoreRequest& request : requests) {
    prompts.push_back(core::inference::BuildScoringPrompt(
        config_, prompt_builder_, *sources_.sr_model, soft_prompts_,
        request.history, request.candidates));
  }

  // Fan the batch out as per-thread sub-batches, each running the stacked
  // EncodeBatch pipeline — the intra-batch parallelism a one-at-a-time
  // caller cannot have. Any partition yields bit-identical scores: row r of
  // EncodeBatch depends only on its own sequence (composition invariance,
  // tests/serve_test.cc), so the thread count never shows in the results.
  // Each chunk owns its slice of `results`; the pool buffers behind the
  // forwards are mutex-guarded (util::BufferPool).
  std::vector<std::vector<float>> results(requests.size());
  const bool cached = prefix_state_.defined();
  // Suffix-only pieces (cached path): cut each prompt at its declared
  // prefix boundary; the cached PrefixState stands in for the head. Kept
  // alive outside the lambda since EncodeBatchWithPrefix reads pointers.
  std::vector<llm::SplitPrompt> splits(cached ? requests.size() : 0);
  if (cached) {
    for (int64_t i = 0; i < n; ++i) {
      // Every scoring prompt this config builds shares the one head the
      // snapshot cached — a mismatch means the prompt templates and the
      // cache drifted apart, which must never survive a publish.
      DELREC_CHECK_EQ(prompts[i].prefix_length, prefix_state_.length);
      splits[i] = llm::PromptBuilder::Split(prompts[i]);
    }
  }
  util::ParallelFor(n, [&](int64_t begin, int64_t end, int) {
    std::vector<const std::vector<llm::PromptPiece>*> pieces;
    pieces.reserve(end - begin);
    std::vector<llm::SequenceSpan> spans;
    nn::Tensor hidden;
    std::vector<int64_t> mask_rows;
    mask_rows.reserve(end - begin);
    if (cached) {
      for (int64_t i = begin; i < end; ++i) {
        pieces.push_back(&splits[i].suffix);
      }
      hidden = llm_->EncodeBatchWithPrefix(prefix_state_, pieces,
                                           effective_table_, &spans);
      // Hidden rows cover only the suffix: re-anchor the mask index.
      for (int64_t i = begin; i < end; ++i) {
        mask_rows.push_back(spans[i - begin].begin + prompts[i].mask_position -
                            prefix_state_.length);
      }
    } else {
      std::vector<int64_t> prefix_lengths;
      prefix_lengths.reserve(end - begin);
      for (int64_t i = begin; i < end; ++i) {
        pieces.push_back(&prompts[i].pieces);
        prefix_lengths.push_back(prompts[i].prefix_length);
      }
      hidden = llm_->EncodeBatch(pieces, effective_table_, &spans,
                                 &prefix_lengths);
      for (int64_t i = begin; i < end; ++i) {
        mask_rows.push_back(spans[i - begin].begin + prompts[i].mask_position);
      }
    }
    const nn::Tensor logits =
        llm_->LogitsAtRows(hidden, mask_rows, effective_table_);
    const float* rows = logits.data().data();
    const int64_t vocab = llm_->vocab_size();
    for (int64_t i = begin; i < end; ++i) {
      results[i] = verbalizer_.ScoresFromRow(rows + (i - begin) * vocab,
                                             requests[i].candidates);
    }
  });
  return results;
}

std::vector<int64_t> EngineSnapshot::Recommend(
    const std::vector<int64_t>& history,
    const std::vector<int64_t>& candidate_pool, int64_t k) const {
  ScoreRequest request;
  request.history = history;
  request.candidates = candidate_pool;
  const std::vector<float> scores = Score(request);
  const std::vector<int64_t> order =
      srmodels::TopKFromScores(scores, std::min<int64_t>(k, scores.size()));
  std::vector<int64_t> items;
  items.reserve(order.size());
  for (int64_t index : order) items.push_back(candidate_pool[index]);
  return items;
}

}  // namespace delrec::serve
