#ifndef DELREC_SERVE_SHARDED_SERVER_H_
#define DELREC_SERVE_SHARDED_SERVER_H_

#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "serve/engine.h"
#include "serve/scorer.h"
#include "serve/snapshot_handle.h"
#include "util/status.h"

namespace delrec::serve {

struct ShardedServerOptions {
  /// Number of independent RecommendationEngine shards. Each shard has its
  /// own dispatcher thread, queue, admission cap, and stats; a user's
  /// requests always land on the same shard (stable splitmix64 hash), so
  /// per-user request order is preserved end to end.
  int num_shards = 2;
  /// Per-shard engine configuration (batching, admission cap, deadlines).
  EngineOptions engine;

  /// InvalidArgument when num_shards < 1 or the engine options are invalid.
  util::Status Validate() const;
};

/// The serve tier: N RecommendationEngine shards keyed by user hash, all
/// reading from one SnapshotHandle. PublishSnapshot() atomically swaps a
/// freshly built EngineSnapshot (or any Scorer) under live traffic with
/// zero pauses — in-flight batches finish on the snapshot they acquired,
/// every batch formed after the swap scores on the new one, and each
/// response carries the snapshot version it was scored against.
///
/// Degradation contract: every submitted request resolves. Overload sheds
/// typed rejections (kUnavailable at the shard's admission cap,
/// kDeadlineExceeded for requests whose budget lapsed while queued) instead
/// of queuing without bound, and scorer faults fail only the affected
/// batch (DESIGN.md §12).
class ShardedServer {
 public:
  /// Serves `initial` (published as snapshot version 1) across
  /// options.num_shards shards. The server shares ownership of every
  /// published scorer; callers may drop their references after publishing.
  ShardedServer(std::shared_ptr<const Scorer> initial,
                const ShardedServerOptions& options);
  /// Shuts down all shards.
  ~ShardedServer();

  ShardedServer(const ShardedServer&) = delete;
  ShardedServer& operator=(const ShardedServer&) = delete;

  /// Routes the request to user_id's shard. The future resolves with scores
  /// tagged by snapshot version, or with a typed shed/failure status.
  std::future<ScoreResponse> ScoreAsync(uint64_t user_id,
                                        ScoreRequest request);

  /// Blocking convenience around ScoreAsync.
  ScoreResponse Score(uint64_t user_id, std::vector<int64_t> history,
                      std::vector<int64_t> candidates);

  /// Atomically publishes `next` to every shard and returns its version.
  /// Never pauses serving: no queue is drained, no dispatcher blocked.
  uint64_t PublishSnapshot(std::shared_ptr<const Scorer> next);

  /// Version new batches score against right now.
  uint64_t snapshot_version() const { return handle_.version(); }

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Stable user → shard mapping (splitmix64 of user_id mod num_shards).
  int ShardFor(uint64_t user_id) const;

  RecommendationEngine::Stats ShardStats(int shard) const;
  /// Aggregate across shards: counts summed, queue-wait histograms merged
  /// (percentiles recomputed from the merged histogram), snapshot_version =
  /// max observed. prefix_tokens_skipped is summed AND carried through the
  /// per-version map: because shards observe a hot swap at batch
  /// granularity, a mixed-version window has different shards skipping
  /// different per-request token counts, so the merged
  /// prefix_tokens_by_version sums entries by version key — the flat total
  /// equals the map's value sum both per shard and after the merge.
  RecommendationEngine::Stats TotalStats() const;

  /// Stops accepting requests on every shard and drains them. Idempotent.
  void Shutdown();

 private:
  ShardedServerOptions options_;
  // Keeps every published scorer alive for as long as a dispatcher might
  // hold it; the handle's shared_ptrs do the per-version lifetime work.
  SnapshotHandle handle_;
  std::vector<std::unique_ptr<RecommendationEngine>> shards_;
};

/// Merges per-shard stats as TotalStats() does (exposed for benches that
/// aggregate their own snapshots of shard stats).
RecommendationEngine::Stats MergeStats(
    const std::vector<RecommendationEngine::Stats>& shards);

}  // namespace delrec::serve

#endif  // DELREC_SERVE_SHARDED_SERVER_H_
