#ifndef DELREC_SERVE_ENGINE_H_
#define DELREC_SERVE_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/scorer.h"

namespace delrec::serve {

struct EngineOptions {
  /// Most requests coalesced into one Scorer::ScoreBatch call.
  int64_t max_batch_size = 16;
  /// How long the dispatcher lingers for more requests once it holds at
  /// least one (0 = dispatch whatever is queued immediately). Bounds p99
  /// latency under light load; under heavy load batches fill before the
  /// deadline and it never applies.
  double batch_deadline_ms = 1.0;
};

/// A thread-safe serving front-end over one Scorer: concurrent clients
/// submit ScoreRequests, a single dispatcher thread coalesces them (up to
/// max_batch_size, waiting at most batch_deadline_ms) and drives the
/// scorer's batched path.
///
/// Determinism contract: results are independent of batching. The engine
/// dispatches requests in FIFO arrival order, and the Scorer contract
/// (ScoreBatch row i ≡ Score(requests[i]), bit-identical) makes every
/// coalescing decision invisible — a request's scores do not depend on
/// which requests it shared a batch with, the dispatch timing, or the
/// thread count (DESIGN.md §11).
///
/// The dispatcher is a dedicated std::thread rather than a util::ThreadPool
/// task: the scorer's batched forward parallelizes through the global pool
/// internally, and the pool rejects nested submission from worker threads.
class RecommendationEngine {
 public:
  /// `scorer` must outlive the engine. Spawns the dispatcher thread.
  RecommendationEngine(const Scorer* scorer, const EngineOptions& options);
  /// Drains outstanding requests, then joins the dispatcher.
  ~RecommendationEngine();

  RecommendationEngine(const RecommendationEngine&) = delete;
  RecommendationEngine& operator=(const RecommendationEngine&) = delete;

  /// Enqueues a request; the future resolves when its batch completes.
  std::future<std::vector<float>> ScoreAsync(ScoreRequest request);

  /// Blocking convenience: enqueue and wait.
  std::vector<float> ScoreCandidates(std::vector<int64_t> history,
                                     std::vector<int64_t> candidates);

  /// Stops accepting requests, drains the queue, joins the dispatcher.
  /// Idempotent; the destructor calls it.
  void Shutdown();

  struct Stats {
    uint64_t requests = 0;      // Requests dispatched.
    uint64_t batches = 0;       // ScoreBatch calls issued.
    uint64_t max_batch = 0;     // Largest batch dispatched.
    double mean_batch = 0.0;    // requests / batches.
  };
  Stats GetStats() const;

 private:
  struct Pending {
    ScoreRequest request;
    std::promise<std::vector<float>> promise;
  };

  void DispatcherLoop();

  const Scorer* scorer_;
  EngineOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  uint64_t dispatched_requests_ = 0;
  uint64_t dispatched_batches_ = 0;
  uint64_t max_batch_ = 0;

  std::thread dispatcher_;  // Last member: starts in the ctor body.
};

}  // namespace delrec::serve

#endif  // DELREC_SERVE_ENGINE_H_
