#ifndef DELREC_SERVE_ENGINE_H_
#define DELREC_SERVE_ENGINE_H_

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/scorer.h"
#include "serve/snapshot_handle.h"
#include "util/status.h"

namespace delrec::serve {

struct EngineOptions {
  /// Most requests coalesced into one Scorer::ScoreBatch call.
  int64_t max_batch_size = 16;
  /// How long the dispatcher lingers for more requests once it holds at
  /// least one (0 = dispatch whatever is queued immediately). Bounds p99
  /// latency under light load; under heavy load batches fill before the
  /// deadline and it never applies.
  double batch_deadline_ms = 1.0;
  /// Admission cap: a request arriving while this many are already queued
  /// is shed immediately with kUnavailable instead of growing the queue
  /// without bound. 0 = unbounded (no admission control).
  int64_t max_queue_depth = 0;
  /// Deadline applied to requests that do not carry their own
  /// ScoreRequest::deadline_ms. Measured from arrival; a request still
  /// queued when its budget lapses is shed with kDeadlineExceeded at
  /// dispatch time. 0 = no default deadline.
  double default_deadline_ms = 0.0;

  /// InvalidArgument when any field is out of range (max_batch_size >= 1,
  /// the rest >= 0). The engine constructor CHECK-fails on invalid options;
  /// call this first when options come from configuration rather than code.
  util::Status Validate() const;
};

/// What a ScoreAsync future resolves to: either scores (status.ok(), tagged
/// with the snapshot version they were computed against) or a typed
/// rejection. Every accepted future resolves exactly once — shed requests
/// resolve with kUnavailable (queue full / engine shut down) or
/// kDeadlineExceeded (budget lapsed while queued), and scorer failures
/// (exceptions, injected faults) resolve with kInternal/kUnavailable rather
/// than crashing the dispatcher or abandoning the future.
struct ScoreResponse {
  util::Status status;
  std::vector<float> scores;        // Valid iff status.ok().
  uint64_t snapshot_version = 0;    // Snapshot the scores came from (ok only).
};

/// A thread-safe serving front-end over one Scorer: concurrent clients
/// submit ScoreRequests, a single dispatcher thread coalesces them (up to
/// max_batch_size, waiting at most batch_deadline_ms) and drives the
/// scorer's batched path.
///
/// Determinism contract: results are independent of batching. The engine
/// dispatches requests in FIFO arrival order, and the Scorer contract
/// (ScoreBatch row i ≡ Score(requests[i]), bit-identical) makes every
/// coalescing decision invisible — a request's scores do not depend on
/// which requests it shared a batch with, the dispatch timing, or the
/// thread count (DESIGN.md §11). With hot swaps the contract is versioned:
/// responses tagged with the same snapshot_version are bit-identical to
/// that snapshot's single-request scores (DESIGN.md §12).
///
/// Robustness contract (DESIGN.md §12): every accepted request resolves.
/// Over-cap and post-shutdown submissions resolve immediately with
/// kUnavailable; deadline-lapsed requests resolve with kDeadlineExceeded at
/// dispatch time; a throwing Scorer::ScoreBatch (or an armed
/// "serve.engine.dispatch" / "serve.scorer.score" failpoint) fails only the
/// affected batch's promises and the dispatcher keeps running.
///
/// The dispatcher is a dedicated std::thread rather than a util::ThreadPool
/// task: the scorer's batched forward parallelizes through the global pool
/// internally, and the pool rejects nested submission from worker threads.
class RecommendationEngine {
 public:
  /// Serves whatever `handle` currently publishes, observing hot swaps at
  /// batch granularity. `handle` must outlive the engine. Spawns the
  /// dispatcher thread.
  RecommendationEngine(const SnapshotHandle* handle,
                       const EngineOptions& options);
  /// Convenience for a fixed scorer (no hot swap): wraps `scorer` in an
  /// internal single-version handle. `scorer` must outlive the engine.
  RecommendationEngine(const Scorer* scorer, const EngineOptions& options);
  /// Drains outstanding requests, then joins the dispatcher.
  ~RecommendationEngine();

  RecommendationEngine(const RecommendationEngine&) = delete;
  RecommendationEngine& operator=(const RecommendationEngine&) = delete;

  /// Enqueues a request; the future resolves when its batch completes, or
  /// immediately with a typed rejection when the request is shed (queue
  /// full, engine shut down). Never blocks on scoring and never returns a
  /// future that cannot resolve.
  std::future<ScoreResponse> ScoreAsync(ScoreRequest request);

  /// Blocking convenience: enqueue and wait. CHECK-fails on a non-ok
  /// response, so only use it on engines without admission caps or
  /// deadlines — shed-aware callers go through ScoreAsync.
  std::vector<float> ScoreCandidates(std::vector<int64_t> history,
                                     std::vector<int64_t> candidates);

  /// Stops accepting requests, drains the queue, joins the dispatcher.
  /// Idempotent; the destructor calls it. Requests submitted afterwards
  /// resolve immediately with kUnavailable.
  void Shutdown();

  /// Queue-wait histogram: bucket 0 counts waits under 1µs, bucket i
  /// counts [2^(i-1), 2^i) µs. 40 buckets span past 9 minutes.
  static constexpr int kQueueWaitBuckets = 40;
  using QueueWaitHistogram = std::array<uint64_t, kQueueWaitBuckets>;

  struct Stats {
    uint64_t submitted = 0;       // ScoreAsync calls (accepted + shed).
    uint64_t requests = 0;        // Requests dispatched to the scorer.
    uint64_t scored = 0;          // Requests resolved with ok scores.
    uint64_t batches = 0;         // ScoreBatch calls issued.
    uint64_t max_batch = 0;       // Largest batch dispatched.
    double mean_batch = 0.0;      // requests / batches.
    // Shed and failure tallies, by reason.
    uint64_t shed_queue_full = 0;   // kUnavailable at admission.
    uint64_t shed_deadline = 0;     // kDeadlineExceeded at dispatch.
    uint64_t shed_shutdown = 0;     // kUnavailable after Shutdown().
    uint64_t scorer_failures = 0;   // Requests failed by a scorer fault.
    // Hot-swap observability.
    uint64_t swaps_observed = 0;    // Version changes seen by the dispatcher.
    uint64_t snapshot_version = 0;  // Last version scored against.
    // Prompt tokens served from the scorer's prefix KV cache instead of
    // re-encoded (scored requests × Scorer::CachedPrefixLength, per the
    // snapshot version each batch actually ran against). 0 for scorers
    // without a cache.
    uint64_t prefix_tokens_skipped = 0;
    // The same tokens attributed to the snapshot version whose cache served
    // them. A hot swap can change CachedPrefixLength mid-stream, so the flat
    // counter alone cannot say which artifact did the skipping; this map
    // can. Keys are every version that scored at least one batch (entries
    // may be 0 for cacheless versions); values always sum to
    // prefix_tokens_skipped — MergeStats preserves both properties across
    // shards.
    std::map<uint64_t, uint64_t> prefix_tokens_by_version;
    // Queue-wait latency (arrival → dispatch) for dispatched requests.
    double queue_p50_ms = 0.0;
    double queue_p99_ms = 0.0;
    QueueWaitHistogram queue_wait_histogram{};
  };
  Stats GetStats() const;

  /// Upper-bound percentile (q in [0,1]) of a queue-wait histogram, in ms.
  /// 0 when the histogram is empty.
  static double QueueWaitPercentileMs(const QueueWaitHistogram& histogram,
                                      double q);

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    ScoreRequest request;
    std::promise<ScoreResponse> promise;
    Clock::time_point arrival;
    Clock::time_point deadline;  // Clock::time_point::max() = none.
  };

  void Start();
  void DispatcherLoop();
  void RecordQueueWaitLocked(Clock::duration wait);

  const SnapshotHandle* handle_;
  std::unique_ptr<SnapshotHandle> owned_handle_;  // Fixed-scorer ctor only.
  EngineOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  uint64_t submitted_ = 0;
  uint64_t dispatched_requests_ = 0;
  uint64_t scored_requests_ = 0;
  uint64_t dispatched_batches_ = 0;
  uint64_t max_batch_ = 0;
  uint64_t shed_queue_full_ = 0;
  uint64_t shed_deadline_ = 0;
  uint64_t shed_shutdown_ = 0;
  uint64_t scorer_failures_ = 0;
  uint64_t swaps_observed_ = 0;
  uint64_t last_version_ = 0;
  uint64_t prefix_tokens_skipped_ = 0;
  std::map<uint64_t, uint64_t> prefix_tokens_by_version_;
  QueueWaitHistogram queue_wait_histogram_{};

  std::thread dispatcher_;  // Last member: starts in the ctor body.
};

}  // namespace delrec::serve

#endif  // DELREC_SERVE_ENGINE_H_
