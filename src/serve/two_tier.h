#ifndef DELREC_SERVE_TWO_TIER_H_
#define DELREC_SERVE_TWO_TIER_H_

#include <cstdint>
#include <memory>

#include "serve/scorer.h"
#include "serve/snapshot.h"
#include "util/status.h"

namespace delrec::serve {

struct TwoTierOptions {
  /// Candidates the re-ranker (teacher) re-scores after the retriever
  /// (student) pre-ranks. The quality/cost dial: h = pool size degenerates
  /// to teacher-only quality at teacher-only cost, h = 0 is rejected.
  int64_t rerank_top_h = 8;

  /// InvalidArgument when rerank_top_h < 1.
  util::Status Validate() const;
};

/// Composes a cheap full-catalog retriever with an expensive candidate
/// re-ranker behind the ordinary Scorer seam (DESIGN.md §16):
///
///  1. The retriever scores the request's candidate pool (the full catalog
///     when the request carries no explicit candidates — allowed only
///     because the retriever declares full_catalog capability, which
///     construction enforces).
///  2. The top-h of the retriever ordering (ties by item id, via
///     eval::TopKByIds, so the selected *set* is pool-order invariant) go
///     to the re-ranker in one batched call.
///  3. The response keeps the re-ranker's scores verbatim for those h
///     candidates — bit-identical to re-ranking the retriever's top-h
///     directly, the property tests/two_tier_test.cc pins — and maps the
///     remaining tail strictly below them, preserving the retriever's
///     relative order.
///
/// The result is itself a Scorer with the full batch-invariance contract,
/// so it drops into RecommendationEngine/ShardedServer untouched: a
/// two-tier artifact publishes, hot-swaps, and version-tags exactly like a
/// single-model snapshot. CachedPrefixLength forwards the re-ranker's
/// (only re-ranked requests touch the teacher's prefix cache).
///
/// Both tiers are held by shared_ptr; `MakeSnapshotTwoTier` below builds
/// the common production shape where both point into one EngineSnapshot.
util::StatusOr<std::unique_ptr<Scorer>> MakeTwoTierScorer(
    std::shared_ptr<const Scorer> retriever,
    std::shared_ptr<const Scorer> reranker, const TwoTierOptions& options);

/// Builds the atomic two-tier serving artifact from a snapshot that embeds
/// a distilled student blob: retriever = the snapshot's student, re-ranker
/// = the snapshot's teacher. The returned scorer shares ownership of the
/// snapshot, so publishing it to a SnapshotHandle swaps student and
/// teacher together as one version — no window where tiers mismatch.
/// InvalidArgument when the snapshot has no student.
util::StatusOr<std::shared_ptr<const Scorer>> MakeSnapshotTwoTier(
    std::shared_ptr<const EngineSnapshot> snapshot,
    const TwoTierOptions& options);

}  // namespace delrec::serve

#endif  // DELREC_SERVE_TWO_TIER_H_
