#include "core/workbench.h"

#include "llm/corpus.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace delrec::core {

const char* LlmSizeName(LlmSize size) {
  switch (size) {
    case LlmSize::kBase:
      return "TinyLM-Base";
    case LlmSize::kLarge:
      return "TinyLM-Large";
    case LlmSize::kXL:
      return "TinyLM-XL";
  }
  return "?";
}

Workbench::Workbench(const data::GeneratorConfig& config,
                     const Options& options)
    : options_(options) {
  dataset_ = data::FilterMinInteractions(data::GenerateDataset(config),
                                         options.min_interactions);
  DELREC_CHECK(!dataset_.sequences.empty())
      << "dataset empty after filtering: " << config.name;
  splits_ = data::MakeSplits(dataset_, options.history_length);
  vocab_ = llm::Vocab::BuildFromCatalog(dataset_.catalog);
  util::Rng corpus_rng(options.seed);
  corpus_ = llm::BuildWorldKnowledgeCorpus(
      dataset_.catalog, vocab_, options.corpus_sentences_per_item, corpus_rng);
  const std::vector<std::vector<int64_t>> interaction_sentences =
      llm::BuildInteractionFormatCorpus(
          dataset_.catalog, vocab_, splits_.train, options.history_length,
          options.corpus_interaction_sentences, corpus_rng);
  corpus_.insert(corpus_.end(), interaction_sentences.begin(),
                 interaction_sentences.end());
}

llm::TinyLmConfig Workbench::LlmConfigFor(LlmSize size) const {
  switch (size) {
    case LlmSize::kBase:
      return llm::TinyLmConfig::Base(vocab_.size());
    case LlmSize::kLarge:
      return llm::TinyLmConfig::Large(vocab_.size());
    case LlmSize::kXL:
      return llm::TinyLmConfig::XL(vocab_.size());
  }
  DELREC_CHECK(false);
}

const std::vector<float>& Workbench::PretrainedState(LlmSize size) {
  auto it = pretrained_cache_.find(size);
  if (it != pretrained_cache_.end()) return it->second;
  llm::TinyLm model(LlmConfigFor(size), options_.seed + 7);
  llm::PretrainConfig pretrain;
  pretrain.epochs = options_.pretrain_epochs;
  pretrain.tail_mask_probability = 0.35f;
  pretrain.seed = options_.seed + 13;
  pretrain.verbose = options_.verbose;
  util::WallTimer timer;
  const float loss = llm::PretrainMlm(model, corpus_, pretrain);
  if (options_.verbose) {
    DELREC_LOG(Info) << "pretrained " << LlmSizeName(size) << " on "
                     << corpus_.size() << " sentences, final loss " << loss
                     << " (" << timer.ElapsedSeconds() << "s)";
  }
  return pretrained_cache_.emplace(size, model.StateDump()).first->second;
}

std::unique_ptr<llm::TinyLm> Workbench::MakePretrainedLlm(LlmSize size) {
  auto model =
      std::make_unique<llm::TinyLm>(LlmConfigFor(size), options_.seed + 7);
  model->LoadState(PretrainedState(size));
  model->SetTraining(false);
  return model;
}

}  // namespace delrec::core
