#include "core/delrec.h"

#include <algorithm>

#include "nn/module.h"
#include "nn/ops.h"
#include "nn/optimizer.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace delrec::core {

DelRec::DelRec(const data::Catalog* catalog, const llm::Vocab* vocab,
               llm::TinyLm* llm, srmodels::SequentialRecommender* sr_model,
               const DelRecConfig& config)
    : catalog_(catalog),
      llm_(llm),
      sr_model_(sr_model),
      config_(config),
      prompt_builder_(catalog, vocab),
      verbalizer_(*catalog, *vocab),
      scratch_rng_(config.seed ^ 0xd1b54a32d192ed03ULL) {
  DELREC_CHECK(catalog != nullptr);
  DELREC_CHECK(llm != nullptr);
  DELREC_CHECK(sr_model != nullptr);
  util::Rng init_rng(config.seed);
  // Soft prompts are randomly initialized embeddings in the LLM's language
  // space (Eq. 2); stage 1 moves them toward the SR model's patterns.
  soft_prompts_ = nn::Tensor::Randn(
      {config.soft_prompt_count, llm->model_dim()}, init_rng, 0.02f,
      /*requires_grad=*/true);
}

std::string DelRec::name() const {
  return "DELRec (" + sr_model_->name() + ")";
}

std::vector<int64_t> DelRec::PromptCandidates(
    const std::vector<int64_t>& candidates) const {
  if (config_.candidates_in_prompt) return candidates;
  return {};
}

std::vector<int64_t> DelRec::Window(
    const std::vector<int64_t>& history) const {
  if (static_cast<int64_t>(history.size()) <= config_.history_length) {
    return history;
  }
  return std::vector<int64_t>(history.end() - config_.history_length,
                              history.end());
}

nn::Tensor DelRec::ActiveSoftPrompts() const {
  if (!config_.use_soft_prompts || config_.manual_prompts) return nn::Tensor();
  return soft_prompts_;
}

std::vector<int64_t> DelRec::ActiveHintTokens(
    const std::vector<int64_t>& history) const {
  std::vector<int64_t> tokens;
  if (config_.manual_prompts) {
    tokens = prompt_builder_.ManualConstructionTokens(
        util::ToLower(sr_model_->name()));
  }
  if (config_.sr_hints_in_stage2) {
    const std::vector<int64_t> top_h =
        sr_model_->TopK(history, config_.top_h);
    for (int64_t id : prompt_builder_.vocab().Encode(
             "the " + util::ToLower(sr_model_->name()) +
             " model recommends top items")) {
      tokens.push_back(id);
    }
    for (int64_t item : top_h) {
      for (int64_t id : prompt_builder_.TitleTokens(item)) {
        tokens.push_back(id);
      }
      tokens.push_back(llm::Vocab::kSep);
    }
  }
  return tokens;
}

void DelRec::DistillPattern(const std::vector<data::Example>& train_examples) {
  if (!config_.use_soft_prompts || config_.manual_prompts ||
      config_.skip_stage1) {
    stage1_done_ = true;
    return;
  }
  DELREC_CHECK(!config_.disable_temporal_analysis ||
               !config_.disable_pattern_simulating)
      << "stage 1 needs at least one distillation task";
  util::Rng rng(config_.seed + 1);
  std::vector<data::Example> examples =
      data::Subsample(train_examples, config_.stage1_max_examples, rng);
  DELREC_CHECK(!examples.empty());

  // Stage-1 parameter group: soft prompts only (Eq. 4/5: Φ0 frozen) unless
  // the w UDPSM ablation also updates the LLM.
  std::vector<nn::Tensor> parameters = {soft_prompts_};
  const bool llm_was_trainable = true;
  if (config_.update_llm_in_stage1) {
    for (const nn::Tensor& p : llm_->Parameters()) parameters.push_back(p);
  } else {
    llm_->SetRequiresGrad(false);
  }
  nn::Lion optimizer(parameters, config_.stage1_learning_rate, 0.9f, 0.99f,
                     config_.stage1_weight_decay);
  llm_->SetTraining(true);

  // Dynamic λ (Eq. 6): renormalized each batch from running task losses so
  // the harder task receives more weight.
  float ta_ema = 1.0f;
  float rps_ema = 1.0f;
  const std::string sr_name = util::ToLower(sr_model_->name());
  std::vector<int64_t> order(examples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < config_.stage1_epochs; ++epoch) {
    rng.Shuffle(order);
    float epoch_ta = 0.0f, epoch_rps = 0.0f, epoch_lambda = 0.0f;
    int64_t batches = 0;
    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const size_t end =
          std::min(order.size(), start + static_cast<size_t>(config_.batch_size));
      std::vector<nn::Tensor> ta_losses;
      std::vector<nn::Tensor> rps_losses;
      for (size_t i = start; i < end; ++i) {
        const data::Example& example = examples[order[i]];
        const std::vector<int64_t> history = Window(example.history);
        // Temporal Analysis: PMRI on histories long enough for ICL + mask.
        if (!config_.disable_temporal_analysis &&
            static_cast<int64_t>(history.size()) >= 4) {
          const int64_t label = history[history.size() - 2];
          llm::Prompt prompt = prompt_builder_.BuildTemporalAnalysis(
              history, config_.icl_alpha, {}, soft_prompts_);
          nn::Tensor hidden =
              llm_->Encode(prompt.pieces, config_.dropout, rng);
          nn::Tensor logits = verbalizer_.AllItemLogits(
              llm_->LogitsAt(hidden, prompt.mask_position));
          ta_losses.push_back(nn::CrossEntropyWithLogits(logits, {label}));
        }
        // Recommendation Pattern Simulating: predict the SR model's top-1
        // (not the ground truth) given its top-h list.
        if (!config_.disable_pattern_simulating) {
          const std::vector<int64_t> top_h =
              sr_model_->TopK(history, config_.top_h);
          const int64_t label = top_h[0];
          llm::Prompt prompt = prompt_builder_.BuildPatternSimulating(
              history, top_h, {}, soft_prompts_, sr_name);
          nn::Tensor hidden =
              llm_->Encode(prompt.pieces, config_.dropout, rng);
          nn::Tensor logits = verbalizer_.AllItemLogits(
              llm_->LogitsAt(hidden, prompt.mask_position));
          rps_losses.push_back(nn::CrossEntropyWithLogits(logits, {label}));
        }
      }
      if (ta_losses.empty() && rps_losses.empty()) continue;
      // λ from running losses; tasks that are ablated get weight 0.
      float lambda = 0.5f;
      if (config_.disable_temporal_analysis) {
        lambda = 0.0f;
      } else if (config_.disable_pattern_simulating) {
        lambda = 1.0f;
      } else {
        lambda = ta_ema / (ta_ema + rps_ema + 1e-8f);
      }
      std::vector<nn::Tensor> weighted;
      if (!ta_losses.empty() && lambda > 0.0f) {
        nn::Tensor ta = nn::MulScalar(
            nn::AddN(ta_losses), 1.0f / static_cast<float>(ta_losses.size()));
        ta_ema = 0.9f * ta_ema + 0.1f * ta.item();
        epoch_ta += ta.item();
        weighted.push_back(nn::MulScalar(ta, lambda));
      }
      if (!rps_losses.empty() && lambda < 1.0f) {
        nn::Tensor rps = nn::MulScalar(
            nn::AddN(rps_losses),
            1.0f / static_cast<float>(rps_losses.size()));
        rps_ema = 0.9f * rps_ema + 0.1f * rps.item();
        epoch_rps += rps.item();
        weighted.push_back(nn::MulScalar(rps, 1.0f - lambda));
      }
      nn::Tensor loss = nn::AddN(weighted);
      soft_prompts_.ZeroGrad();
      llm_->ZeroGrad();
      loss.Backward();
      nn::ClipGradNorm(parameters, 5.0f);
      optimizer.Step();
      epoch_lambda += lambda;
      ++batches;
    }
    if (batches > 0) {
      diagnostics_.lambda_per_epoch.push_back(epoch_lambda / batches);
      diagnostics_.ta_loss_per_epoch.push_back(epoch_ta / batches);
      diagnostics_.rps_loss_per_epoch.push_back(epoch_rps / batches);
    }
    if (config_.verbose) {
      DELREC_LOG(Info) << name() << " stage1 epoch " << epoch + 1
                       << " TA=" << (batches ? epoch_ta / batches : 0)
                       << " RPS=" << (batches ? epoch_rps / batches : 0);
    }
  }
  llm_->SetTraining(false);
  if (!config_.update_llm_in_stage1 && llm_was_trainable) {
    llm_->SetRequiresGrad(true);  // Restore for stage 2 / other users.
  }
  stage1_done_ = true;
}

void DelRec::FineTune(const std::vector<data::Example>& train_examples) {
  if (config_.skip_stage2) return;
  DELREC_CHECK(stage1_done_ || config_.skip_stage1 ||
               !config_.use_soft_prompts || config_.manual_prompts)
      << "run DistillPattern() first";
  util::Rng rng(config_.seed + 2);
  std::vector<data::Example> examples =
      data::Subsample(train_examples, config_.stage2_max_examples, rng);
  DELREC_CHECK(!examples.empty());

  // Freeze soft prompts (Eq. 8: Φ fixed) unless the w ULSR ablation updates
  // them; trainable parameters are the AdaLoRA adapters.
  soft_prompts_.set_requires_grad(config_.update_soft_in_stage2);
  llm_->SetRequiresGrad(false);
  adapters_ = llm_->EnableAdapters(config_.lora_rank, config_.lora_scale);
  std::vector<nn::Tensor> parameters;
  nn::AdaLoraAllocator allocator(
      config_.adalora_budget > 0
          ? config_.adalora_budget
          : (2 * config_.lora_rank * static_cast<int64_t>(adapters_.size())) /
                3);
  for (nn::LoraLinear* adapter : adapters_) {
    allocator.Register(adapter);
    for (const nn::Tensor& p : adapter->Parameters()) {
      parameters.push_back(p);
    }
    adapter->SetTraining(true);
  }
  if (config_.update_soft_in_stage2) parameters.push_back(soft_prompts_);
  // BitFit-style bias/LayerNorm tuning rides along with the adapters
  // (standard PEFT companion; dense weights stay frozen).
  for (nn::Tensor p : llm_->BitFitParameters()) {
    p.set_requires_grad(true);
    parameters.push_back(p);
  }
  // Embedding-LoRA factors (tied table delta) are part of the PEFT group.
  for (nn::Tensor p : llm_->EmbeddingAdapterParameters()) {
    p.set_requires_grad(true);
    parameters.push_back(p);
  }
  // modules_to_save analog: the token table (tied with the LM head) is
  // fine-tuned fully — the standard PEFT choice when the vocabulary is the
  // task's output space.
  {
    nn::Tensor table = llm_->token_table();
    table.set_requires_grad(true);
    parameters.push_back(table);
  }
  std::unique_ptr<nn::Optimizer> optimizer;
  if (config_.stage2_use_lion) {
    optimizer = std::make_unique<nn::Lion>(
        parameters, config_.stage2_learning_rate, 0.9f, 0.99f,
        config_.stage2_weight_decay);
  } else {
    optimizer = std::make_unique<nn::Adam>(
        parameters, config_.stage2_learning_rate, 0.9f, 0.999f, 1e-8f,
        config_.stage2_weight_decay);
  }
  llm_->SetTraining(true);

  std::vector<int64_t> order(examples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  int64_t batch_counter = 0;
  for (int epoch = 0; epoch < config_.stage2_epochs; ++epoch) {
    rng.Shuffle(order);
    float epoch_loss = 0.0f;
    int64_t batches = 0;
    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const size_t end =
          std::min(order.size(), start + static_cast<size_t>(config_.batch_size));
      std::vector<nn::Tensor> losses;
      for (size_t i = start; i < end; ++i) {
        const data::Example& example = examples[order[i]];
        const std::vector<int64_t> history = Window(example.history);
        llm::Prompt prompt = prompt_builder_.BuildRecommendation(
            history, {}, ActiveSoftPrompts(), ActiveHintTokens(history),
            nn::Tensor());
        nn::Tensor hidden = llm_->Encode(prompt.pieces, config_.dropout, rng);
        // Full-catalog softmax supervision through the verbalizer — the
        // same full-ranking signal conventional SR models train with.
        nn::Tensor logits = verbalizer_.AllItemLogits(
            llm_->LogitsAt(hidden, prompt.mask_position));
        losses.push_back(
            nn::CrossEntropyWithLogits(logits, {example.target}));
      }
      if (losses.empty()) continue;
      nn::Tensor loss = nn::MulScalar(
          nn::AddN(losses), 1.0f / static_cast<float>(losses.size()));
      optimizer->ZeroGrad();
      loss.Backward();
      allocator.AccumulateSensitivity();
      nn::ClipGradNorm(parameters, 5.0f);
      optimizer->Step();
      if (++batch_counter % config_.adalora_interval == 0) {
        allocator.Reallocate();
      }
      epoch_loss += loss.item();
      ++batches;
    }
    if (config_.verbose) {
      DELREC_LOG(Info) << name() << " stage2 epoch " << epoch + 1
                       << " loss=" << (batches ? epoch_loss / batches : 0);
    }
  }
  llm_->SetTraining(false);
  llm_->SetRequiresGrad(true);
  soft_prompts_.set_requires_grad(true);
}

void DelRec::Train(const std::vector<data::Example>& train_examples) {
  DistillPattern(train_examples);
  FineTune(train_examples);
}

std::vector<float> DelRec::ScoreCandidates(
    const data::Example& example,
    const std::vector<int64_t>& candidates) const {
  nn::NoGradGuard no_grad;
  const std::vector<int64_t> history = Window(example.history);
  llm::Prompt prompt = prompt_builder_.BuildRecommendation(
      history, PromptCandidates(candidates), ActiveSoftPrompts(),
      ActiveHintTokens(history), nn::Tensor());
  nn::Tensor hidden = llm_->Encode(prompt.pieces, 0.0f, scratch_rng_);
  nn::Tensor token_logits = llm_->LogitsAt(hidden, prompt.mask_position);
  return verbalizer_.Scores(token_logits.data(), candidates);
}

std::vector<int64_t> DelRec::Recommend(
    const std::vector<int64_t>& history,
    const std::vector<int64_t>& candidate_pool, int64_t k) const {
  data::Example example;
  example.history = history;
  example.target = candidate_pool.empty() ? 0 : candidate_pool[0];
  const std::vector<float> scores = ScoreCandidates(example, candidate_pool);
  const std::vector<int64_t> order =
      srmodels::TopKFromScores(scores, std::min<int64_t>(k, scores.size()));
  std::vector<int64_t> items;
  items.reserve(order.size());
  for (int64_t index : order) items.push_back(candidate_pool[index]);
  return items;
}

int64_t DelRec::SoftPromptParameterCount() const {
  return soft_prompts_.size();
}

int64_t DelRec::AdapterParameterCount() const {
  int64_t total = 0;
  for (const nn::LoraLinear* adapter : adapters_) {
    total += adapter->ParameterCount();
  }
  return total;
}

}  // namespace delrec::core
