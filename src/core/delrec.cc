#include "core/delrec.h"

#include <algorithm>
#include <cmath>

#include "core/checkpoint.h"
#include "nn/anomaly.h"
#include "nn/module.h"
#include "nn/ops.h"
#include "nn/optimizer.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace delrec::core {
namespace {

nn::LossAnomalyGuard::Options GuardOptions(const DelRecConfig& config) {
  return nn::LossAnomalyGuard::FromConfig(config.anomaly_guard);
}

// Validates the restored-state buffers against the freshly constructed
// optimizer/rng before handing them to the abort-on-mismatch loaders.
util::Status RestoreStageState(const TrainState& resume,
                               nn::Optimizer& optimizer, util::Rng& rng,
                               nn::LossAnomalyGuard& guard, int stage) {
  const std::string prefix = "stage-" + std::to_string(stage) + " ";
  if (resume.optimizer_state.size() != optimizer.StateDump().size()) {
    return util::Status::InvalidArgument(prefix +
                                         "optimizer state size mismatch");
  }
  optimizer.LoadState(resume.optimizer_state);
  if (resume.rng_state.size() != rng.StateDump().size()) {
    return util::Status::InvalidArgument(prefix + "rng state size mismatch");
  }
  rng.LoadState(resume.rng_state);
  DELREC_RETURN_IF_ERROR(guard.LoadState(resume.guard_state));
  return util::Status::Ok();
}

}  // namespace

DelRec::DelRec(const data::CatalogView* catalog, const llm::Vocab* vocab,
               llm::TinyLm* llm, srmodels::SequentialRecommender* sr_model,
               const DelRecConfig& config)
    : catalog_(catalog),
      llm_(llm),
      sr_model_(sr_model),
      config_(config),
      prompt_builder_(catalog, vocab),
      verbalizer_(*catalog, *vocab),
      scratch_rng_(config.seed ^ 0xd1b54a32d192ed03ULL) {
  DELREC_CHECK(catalog != nullptr);
  DELREC_CHECK(llm != nullptr);
  DELREC_CHECK(sr_model != nullptr);
  util::Rng init_rng(config.seed);
  // Soft prompts are randomly initialized embeddings in the LLM's language
  // space (Eq. 2); stage 1 moves them toward the SR model's patterns.
  soft_prompts_ = nn::Tensor::Randn(
      {config.soft_prompt_count, llm->model_dim()}, init_rng, 0.02f,
      /*requires_grad=*/true);
}

std::string DelRec::name() const {
  return "DELRec (" + sr_model_->name() + ")";
}

namespace inference {

std::vector<int64_t> WindowHistory(const DelRecConfig& config,
                                   const std::vector<int64_t>& history) {
  if (static_cast<int64_t>(history.size()) <= config.history_length) {
    return history;
  }
  return std::vector<int64_t>(history.end() - config.history_length,
                              history.end());
}

nn::Tensor ActiveSoftPrompts(const DelRecConfig& config,
                             const nn::Tensor& soft_prompts) {
  if (!config.use_soft_prompts || config.manual_prompts) return nn::Tensor();
  return soft_prompts;
}

std::vector<int64_t> ActiveHintTokens(
    const DelRecConfig& config, const llm::PromptBuilder& builder,
    const srmodels::SequentialRecommender& sr_model,
    const std::vector<int64_t>& history) {
  std::vector<int64_t> tokens;
  if (config.manual_prompts) {
    tokens = builder.ManualConstructionTokens(util::ToLower(sr_model.name()));
  }
  if (config.sr_hints_in_stage2) {
    const std::vector<int64_t> top_h = sr_model.TopK(history, config.top_h);
    for (int64_t id : builder.vocab().Encode(
             "the " + util::ToLower(sr_model.name()) +
             " model recommends top items")) {
      tokens.push_back(id);
    }
    for (int64_t item : top_h) {
      for (int64_t id : builder.TitleTokens(item)) {
        tokens.push_back(id);
      }
      tokens.push_back(llm::Vocab::kSep);
    }
  }
  return tokens;
}

std::vector<int64_t> PromptCandidates(const DelRecConfig& config,
                                      const std::vector<int64_t>& candidates) {
  if (config.candidates_in_prompt) return candidates;
  return {};
}

llm::Prompt BuildScoringPrompt(const DelRecConfig& config,
                               const llm::PromptBuilder& builder,
                               const srmodels::SequentialRecommender& sr_model,
                               const nn::Tensor& soft_prompts,
                               const std::vector<int64_t>& history,
                               const std::vector<int64_t>& candidates) {
  const std::vector<int64_t> window = WindowHistory(config, history);
  return builder.BuildRecommendation(
      window, PromptCandidates(config, candidates),
      ActiveSoftPrompts(config, soft_prompts),
      ActiveHintTokens(config, builder, sr_model, window), nn::Tensor());
}

std::vector<llm::PromptPiece> BuildScoringPrefix(
    const DelRecConfig& config, const llm::PromptBuilder& builder,
    const nn::Tensor& soft_prompts) {
  return builder.RecommendationPrefix(
      ActiveSoftPrompts(config, soft_prompts));
}

}  // namespace inference

std::vector<int64_t> DelRec::PromptCandidates(
    const std::vector<int64_t>& candidates) const {
  return inference::PromptCandidates(config_, candidates);
}

std::vector<int64_t> DelRec::Window(
    const std::vector<int64_t>& history) const {
  return inference::WindowHistory(config_, history);
}

nn::Tensor DelRec::ActiveSoftPrompts() const {
  return inference::ActiveSoftPrompts(config_, soft_prompts_);
}

std::vector<int64_t> DelRec::ActiveHintTokens(
    const std::vector<int64_t>& history) const {
  return inference::ActiveHintTokens(config_, prompt_builder_, *sr_model_,
                                     history);
}

util::Status DelRec::DistillPattern(
    const std::vector<data::Example>& train_examples) {
  return DistillPatternImpl(train_examples, nullptr, nullptr);
}

util::Status DelRec::DistillPatternImpl(
    const std::vector<data::Example>& train_examples,
    const std::string* checkpoint_path, const TrainState* resume) {
  if (!config_.use_soft_prompts || config_.manual_prompts ||
      config_.skip_stage1) {
    stage1_done_ = true;
    return util::Status::Ok();
  }
  DELREC_CHECK(!config_.disable_temporal_analysis ||
               !config_.disable_pattern_simulating)
      << "stage 1 needs at least one distillation task";
  util::Rng rng(config_.seed + 1);
  std::vector<data::Example> examples =
      data::Subsample(train_examples, config_.stage1_max_examples, rng);
  DELREC_CHECK(!examples.empty());

  // Stage-1 parameter group: soft prompts only (Eq. 4/5: Φ0 frozen) unless
  // the w UDPSM ablation also updates the LLM.
  std::vector<nn::Tensor> parameters = {soft_prompts_};
  if (config_.update_llm_in_stage1) {
    for (const nn::Tensor& p : llm_->Parameters()) parameters.push_back(p);
  } else {
    llm_->SetRequiresGrad(false);
  }
  nn::Lion optimizer(parameters, config_.stage1_learning_rate, 0.9f, 0.99f,
                     config_.stage1_weight_decay);
  llm_->SetTraining(true);
  const auto finish = [this] {
    llm_->SetTraining(false);
    if (!config_.update_llm_in_stage1) {
      llm_->SetRequiresGrad(true);  // Restore for stage 2 / other users.
    }
  };

  // Dynamic λ (Eq. 6): renormalized each batch from running task losses so
  // the harder task receives more weight.
  float ta_ema = 1.0f;
  float rps_ema = 1.0f;
  nn::LossAnomalyGuard guard(GuardOptions(config_));
  int start_epoch = 0;
  if (resume != nullptr) {
    util::Status restored =
        RestoreStageState(*resume, optimizer, rng, guard, /*stage=*/1);
    if (!restored.ok()) {
      finish();
      return restored;
    }
    if (resume->stage_extra.size() != 2) {
      finish();
      return util::Status::InvalidArgument("stage-1 λ state size mismatch");
    }
    ta_ema = resume->stage_extra[0];
    rps_ema = resume->stage_extra[1];
    diagnostics_ = resume->diagnostics;
    start_epoch = resume->next_epoch;
  }
  const std::string sr_name = util::ToLower(sr_model_->name());
  std::vector<int64_t> order(examples.size());

  for (int epoch = start_epoch; epoch < config_.stage1_epochs; ++epoch) {
    // Re-derived from the identity each epoch so the permutation depends
    // only on the rng state at the epoch boundary — this is what makes a
    // checkpoint-resumed run bit-identical to an uninterrupted one.
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.Shuffle(order);
    float epoch_ta = 0.0f, epoch_rps = 0.0f, epoch_lambda = 0.0f;
    int64_t batches = 0;
    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const size_t end =
          std::min(order.size(), start + static_cast<size_t>(config_.batch_size));
      std::vector<nn::Tensor> ta_losses;
      std::vector<nn::Tensor> rps_losses;
      for (size_t i = start; i < end; ++i) {
        const data::Example& example = examples[order[i]];
        const std::vector<int64_t> history = Window(example.history);
        // Temporal Analysis: PMRI on histories long enough for ICL + mask.
        if (!config_.disable_temporal_analysis &&
            static_cast<int64_t>(history.size()) >= 4) {
          const int64_t label = history[history.size() - 2];
          llm::Prompt prompt = prompt_builder_.BuildTemporalAnalysis(
              history, config_.icl_alpha, {}, soft_prompts_);
          nn::Tensor hidden = llm_->Encode(prompt.pieces, config_.dropout,
                                           rng, prompt.prefix_length);
          nn::Tensor logits = verbalizer_.AllItemLogits(
              llm_->LogitsAt(hidden, prompt.mask_position));
          ta_losses.push_back(nn::CrossEntropyWithLogits(logits, {label}));
        }
        // Recommendation Pattern Simulating: predict the SR model's top-1
        // (not the ground truth) given its top-h list.
        if (!config_.disable_pattern_simulating) {
          const std::vector<int64_t> top_h =
              sr_model_->TopK(history, config_.top_h);
          const int64_t label = top_h[0];
          llm::Prompt prompt = prompt_builder_.BuildPatternSimulating(
              history, top_h, {}, soft_prompts_, sr_name);
          nn::Tensor hidden = llm_->Encode(prompt.pieces, config_.dropout,
                                           rng, prompt.prefix_length);
          nn::Tensor logits = verbalizer_.AllItemLogits(
              llm_->LogitsAt(hidden, prompt.mask_position));
          rps_losses.push_back(nn::CrossEntropyWithLogits(logits, {label}));
        }
      }
      if (ta_losses.empty() && rps_losses.empty()) continue;
      // λ from running losses; tasks that are ablated get weight 0.
      float lambda = 0.5f;
      if (config_.disable_temporal_analysis) {
        lambda = 0.0f;
      } else if (config_.disable_pattern_simulating) {
        lambda = 1.0f;
      } else {
        lambda = ta_ema / (ta_ema + rps_ema + 1e-8f);
      }
      nn::Tensor ta, rps;
      float ta_value = 0.0f, rps_value = 0.0f, loss_value = 0.0f;
      if (!ta_losses.empty() && lambda > 0.0f) {
        ta = nn::MulScalar(nn::AddN(ta_losses),
                           1.0f / static_cast<float>(ta_losses.size()));
        ta_value = ta.item();
        loss_value += lambda * ta_value;
      }
      if (!rps_losses.empty() && lambda < 1.0f) {
        rps = nn::MulScalar(nn::AddN(rps_losses),
                            1.0f / static_cast<float>(rps_losses.size()));
        rps_value = rps.item();
        loss_value += (1.0f - lambda) * rps_value;
      }
      if (util::Failpoints::Instance().ShouldCorrupt("delrec.stage1.loss")) {
        loss_value = std::nanf("");
      }
      // The anomaly check runs before the λ EMAs absorb this batch, so one
      // NaN batch cannot poison the task weighting.
      if (guard.ShouldSkip(loss_value)) {
        ++train_stats_.stage1_anomalies;
        DELREC_LOG(Warning) << name() << " stage1 anomalous batch loss "
                            << loss_value << " — skipping step";
        if (guard.exhausted()) {
          finish();
          return guard.status();
        }
        continue;
      }
      std::vector<nn::Tensor> weighted;
      if (ta.defined()) {
        ta_ema = 0.9f * ta_ema + 0.1f * ta_value;
        epoch_ta += ta_value;
        weighted.push_back(nn::MulScalar(ta, lambda));
      }
      if (rps.defined()) {
        rps_ema = 0.9f * rps_ema + 0.1f * rps_value;
        epoch_rps += rps_value;
        weighted.push_back(nn::MulScalar(rps, 1.0f - lambda));
      }
      nn::Tensor loss = nn::AddN(weighted);
      std::vector<std::vector<float>> snapshot;
      if (config_.anomaly_guard.enabled) {
        snapshot = nn::SnapshotParameterData(parameters);
      }
      soft_prompts_.ZeroGrad();
      llm_->ZeroGrad();
      loss.Backward();
      nn::ClipGradNorm(parameters, 5.0f);
      optimizer.Step();
      if (config_.anomaly_guard.enabled && !nn::AllParametersFinite(parameters)) {
        nn::RestoreParameterData(parameters, snapshot);
        guard.ReportParameterAnomaly();
        ++train_stats_.stage1_anomalies;
        DELREC_LOG(Warning)
            << name() << " stage1 non-finite parameters after step — "
                         "restored pre-step values";
        if (guard.exhausted()) {
          finish();
          return guard.status();
        }
        continue;
      }
      epoch_lambda += lambda;
      ++batches;
    }
    if (batches > 0) {
      diagnostics_.lambda_per_epoch.push_back(epoch_lambda / batches);
      diagnostics_.ta_loss_per_epoch.push_back(epoch_ta / batches);
      diagnostics_.rps_loss_per_epoch.push_back(epoch_rps / batches);
    }
    if (config_.verbose) {
      DELREC_LOG(Info) << name() << " stage1 epoch " << epoch + 1
                       << " TA=" << (batches ? epoch_ta / batches : 0)
                       << " RPS=" << (batches ? epoch_rps / batches : 0);
    }
    if (checkpoint_path != nullptr) {
      TrainState state;
      state.stage = 1;
      state.next_epoch = epoch + 1;
      state.optimizer_state = optimizer.StateDump();
      state.rng_state = rng.StateDump();
      state.guard_state = guard.StateDump();
      state.stage_extra = {ta_ema, rps_ema};
      state.diagnostics = diagnostics_;
      util::Status saved =
          SaveTrainCheckpoint(*this, *llm_, state, *checkpoint_path);
      if (!saved.ok()) {
        finish();
        return saved;
      }
      // Crash-injection point for tests: fires after the epoch is durable.
      util::Status killed =
          util::Failpoints::Instance().Check("delrec.stage1.epoch_end");
      if (!killed.ok()) {
        finish();
        return killed;
      }
    }
  }
  finish();
  stage1_done_ = true;
  return util::Status::Ok();
}

util::Status DelRec::FineTune(
    const std::vector<data::Example>& train_examples) {
  return FineTuneImpl(train_examples, nullptr, nullptr);
}

util::Status DelRec::FineTuneImpl(
    const std::vector<data::Example>& train_examples,
    const std::string* checkpoint_path, const TrainState* resume) {
  if (config_.skip_stage2) return util::Status::Ok();
  DELREC_CHECK(stage1_done_ || config_.skip_stage1 ||
               !config_.use_soft_prompts || config_.manual_prompts)
      << "run DistillPattern() first";
  util::Rng rng(config_.seed + 2);
  std::vector<data::Example> examples =
      data::Subsample(train_examples, config_.stage2_max_examples, rng);
  DELREC_CHECK(!examples.empty());

  // Freeze soft prompts (Eq. 8: Φ fixed) unless the w ULSR ablation updates
  // them; trainable parameters are the AdaLoRA adapters.
  soft_prompts_.set_requires_grad(config_.update_soft_in_stage2);
  llm_->SetRequiresGrad(false);
  adapters_ = llm_->EnableAdapters(config_.lora_rank, config_.lora_scale);
  std::vector<nn::Tensor> parameters;
  nn::AdaLoraAllocator allocator(
      config_.adalora_budget > 0
          ? config_.adalora_budget
          : (2 * config_.lora_rank * static_cast<int64_t>(adapters_.size())) /
                3);
  for (nn::LoraLinear* adapter : adapters_) {
    allocator.Register(adapter);
    for (const nn::Tensor& p : adapter->Parameters()) {
      parameters.push_back(p);
    }
    adapter->SetTraining(true);
  }
  if (config_.update_soft_in_stage2) parameters.push_back(soft_prompts_);
  // BitFit-style bias/LayerNorm tuning rides along with the adapters
  // (standard PEFT companion; dense weights stay frozen).
  for (nn::Tensor p : llm_->BitFitParameters()) {
    p.set_requires_grad(true);
    parameters.push_back(p);
  }
  // Embedding-LoRA factors (tied table delta) are part of the PEFT group.
  for (nn::Tensor p : llm_->EmbeddingAdapterParameters()) {
    p.set_requires_grad(true);
    parameters.push_back(p);
  }
  // modules_to_save analog: the token table (tied with the LM head) is
  // fine-tuned fully — the standard PEFT choice when the vocabulary is the
  // task's output space.
  {
    nn::Tensor table = llm_->token_table();
    table.set_requires_grad(true);
    parameters.push_back(table);
  }
  std::unique_ptr<nn::Optimizer> optimizer;
  if (config_.stage2_use_lion) {
    optimizer = std::make_unique<nn::Lion>(
        parameters, config_.stage2_learning_rate, 0.9f, 0.99f,
        config_.stage2_weight_decay);
  } else {
    optimizer = std::make_unique<nn::Adam>(
        parameters, config_.stage2_learning_rate, 0.9f, 0.999f, 1e-8f,
        config_.stage2_weight_decay);
  }
  llm_->SetTraining(true);
  const auto finish = [this] {
    llm_->SetTraining(false);
    llm_->SetRequiresGrad(true);
    soft_prompts_.set_requires_grad(true);
  };

  nn::LossAnomalyGuard guard(GuardOptions(config_));
  int start_epoch = 0;
  int64_t batch_counter = 0;
  if (resume != nullptr) {
    util::Status restored =
        RestoreStageState(*resume, *optimizer, rng, guard, /*stage=*/2);
    if (!restored.ok()) {
      finish();
      return restored;
    }
    // stage_extra = {batch_counter, adapter 0 sensitivity EMA…, adapter 1…}.
    const size_t expected =
        1 + static_cast<size_t>(config_.lora_rank) * adapters_.size();
    if (resume->stage_extra.size() != expected) {
      finish();
      return util::Status::InvalidArgument(
          "stage-2 AdaLoRA state size mismatch");
    }
    batch_counter = static_cast<int64_t>(resume->stage_extra[0]);
    size_t offset = 1;
    for (nn::LoraLinear* adapter : adapters_) {
      adapter->set_sensitivity_ema(std::vector<float>(
          resume->stage_extra.begin() + offset,
          resume->stage_extra.begin() + offset + adapter->rank()));
      offset += adapter->rank();
    }
    start_epoch = resume->next_epoch;
  }

  std::vector<int64_t> order(examples.size());
  for (int epoch = start_epoch; epoch < config_.stage2_epochs; ++epoch) {
    // Identity-reset each epoch: the permutation depends only on the rng
    // state at the epoch boundary, which keeps resumed runs bit-identical.
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.Shuffle(order);
    float epoch_loss = 0.0f;
    int64_t batches = 0;
    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const size_t end =
          std::min(order.size(), start + static_cast<size_t>(config_.batch_size));
      std::vector<nn::Tensor> losses;
      for (size_t i = start; i < end; ++i) {
        const data::Example& example = examples[order[i]];
        const std::vector<int64_t> history = Window(example.history);
        llm::Prompt prompt = prompt_builder_.BuildRecommendation(
            history, {}, ActiveSoftPrompts(), ActiveHintTokens(history),
            nn::Tensor());
        nn::Tensor hidden = llm_->Encode(prompt.pieces, config_.dropout, rng,
                                         prompt.prefix_length);
        // Full-catalog softmax supervision through the verbalizer — the
        // same full-ranking signal conventional SR models train with.
        nn::Tensor logits = verbalizer_.AllItemLogits(
            llm_->LogitsAt(hidden, prompt.mask_position));
        losses.push_back(
            nn::CrossEntropyWithLogits(logits, {example.target}));
      }
      if (losses.empty()) continue;
      nn::Tensor loss = nn::MulScalar(
          nn::AddN(losses), 1.0f / static_cast<float>(losses.size()));
      float loss_value = loss.item();
      if (util::Failpoints::Instance().ShouldCorrupt("delrec.stage2.loss")) {
        loss_value = std::nanf("");
      }
      if (guard.ShouldSkip(loss_value)) {
        ++train_stats_.stage2_anomalies;
        DELREC_LOG(Warning) << name() << " stage2 anomalous batch loss "
                            << loss_value << " — skipping step";
        if (guard.exhausted()) {
          finish();
          return guard.status();
        }
        continue;
      }
      std::vector<std::vector<float>> snapshot;
      std::vector<std::vector<float>> sensitivity_snapshot;
      if (config_.anomaly_guard.enabled) {
        snapshot = nn::SnapshotParameterData(parameters);
        sensitivity_snapshot.reserve(adapters_.size());
        for (const nn::LoraLinear* adapter : adapters_) {
          sensitivity_snapshot.push_back(adapter->sensitivity_ema());
        }
      }
      optimizer->ZeroGrad();
      loss.Backward();
      allocator.AccumulateSensitivity();
      nn::ClipGradNorm(parameters, 5.0f);
      optimizer->Step();
      if (config_.anomaly_guard.enabled && !nn::AllParametersFinite(parameters)) {
        nn::RestoreParameterData(parameters, snapshot);
        for (size_t a = 0; a < adapters_.size(); ++a) {
          adapters_[a]->set_sensitivity_ema(sensitivity_snapshot[a]);
        }
        guard.ReportParameterAnomaly();
        ++train_stats_.stage2_anomalies;
        DELREC_LOG(Warning)
            << name() << " stage2 non-finite parameters after step — "
                         "restored pre-step values";
        if (guard.exhausted()) {
          finish();
          return guard.status();
        }
        continue;
      }
      if (++batch_counter % config_.adalora_interval == 0) {
        allocator.Reallocate();
      }
      epoch_loss += loss_value;
      ++batches;
    }
    if (config_.verbose) {
      DELREC_LOG(Info) << name() << " stage2 epoch " << epoch + 1
                       << " loss=" << (batches ? epoch_loss / batches : 0);
    }
    if (checkpoint_path != nullptr) {
      TrainState state;
      state.stage = 2;
      state.next_epoch = epoch + 1;
      state.optimizer_state = optimizer->StateDump();
      state.rng_state = rng.StateDump();
      state.guard_state = guard.StateDump();
      state.stage_extra.push_back(static_cast<float>(batch_counter));
      for (const nn::LoraLinear* adapter : adapters_) {
        const std::vector<float>& ema = adapter->sensitivity_ema();
        state.stage_extra.insert(state.stage_extra.end(), ema.begin(),
                                 ema.end());
      }
      state.diagnostics = diagnostics_;
      util::Status saved =
          SaveTrainCheckpoint(*this, *llm_, state, *checkpoint_path);
      if (!saved.ok()) {
        finish();
        return saved;
      }
      // Crash-injection point for tests: fires after the epoch is durable.
      util::Status killed =
          util::Failpoints::Instance().Check("delrec.stage2.epoch_end");
      if (!killed.ok()) {
        finish();
        return killed;
      }
    }
  }
  finish();
  return util::Status::Ok();
}

util::Status DelRec::Train(const std::vector<data::Example>& train_examples) {
  DELREC_RETURN_IF_ERROR(DistillPattern(train_examples));
  return FineTune(train_examples);
}

util::Status DelRec::TrainResumable(
    const std::vector<data::Example>& train_examples,
    const std::string& checkpoint_path) {
  TrainState state;
  util::Status loaded =
      LoadTrainCheckpoint(*this, *llm_, checkpoint_path, &state);
  if (loaded.ok()) {
    DELREC_LOG(Info) << name() << " resuming stage " << state.stage
                     << " at epoch " << state.next_epoch << " from "
                     << checkpoint_path;
    if (state.stage == 1 &&
        state.next_epoch < config_.stage1_epochs) {
      DELREC_RETURN_IF_ERROR(
          DistillPatternImpl(train_examples, &checkpoint_path, &state));
      return FineTuneImpl(train_examples, &checkpoint_path, nullptr);
    }
    if (state.stage == 1) {
      // Stage 1 fully checkpointed; only stage 2 remains.
      diagnostics_ = state.diagnostics;
      stage1_done_ = true;
      return FineTuneImpl(train_examples, &checkpoint_path, nullptr);
    }
    if (state.stage == 2) {
      diagnostics_ = state.diagnostics;
      stage1_done_ = true;
      if (state.next_epoch >= config_.stage2_epochs) {
        return util::Status::Ok();  // Training already completed.
      }
      return FineTuneImpl(train_examples, &checkpoint_path, &state);
    }
    return util::Status::InvalidArgument("unknown training stage " +
                                         std::to_string(state.stage));
  }
  if (loaded.code() != util::Status::Code::kNotFound) {
    // A checkpoint exists but cannot be trusted; refuse to silently retrain
    // over it. The caller decides whether to delete and start fresh.
    return loaded;
  }
  DELREC_RETURN_IF_ERROR(
      DistillPatternImpl(train_examples, &checkpoint_path, nullptr));
  return FineTuneImpl(train_examples, &checkpoint_path, nullptr);
}

std::vector<float> DelRec::ScoreCandidates(
    const data::Example& example,
    const std::vector<int64_t>& candidates) const {
  nn::NoGradGuard no_grad;
  llm::Prompt prompt = inference::BuildScoringPrompt(
      config_, prompt_builder_, *sr_model_, soft_prompts_, example.history,
      candidates);
  nn::Tensor hidden =
      llm_->Encode(prompt.pieces, 0.0f, scratch_rng_, prompt.prefix_length);
  nn::Tensor token_logits = llm_->LogitsAt(hidden, prompt.mask_position);
  return verbalizer_.Scores(token_logits.data(), candidates);
}

std::vector<int64_t> DelRec::Recommend(
    const std::vector<int64_t>& history,
    const std::vector<int64_t>& candidate_pool, int64_t k) const {
  data::Example example;
  example.history = history;
  example.target = candidate_pool.empty() ? 0 : candidate_pool[0];
  const std::vector<float> scores = ScoreCandidates(example, candidate_pool);
  const std::vector<int64_t> order =
      srmodels::TopKFromScores(scores, std::min<int64_t>(k, scores.size()));
  std::vector<int64_t> items;
  items.reserve(order.size());
  for (int64_t index : order) items.push_back(candidate_pool[index]);
  return items;
}

int64_t DelRec::SoftPromptParameterCount() const {
  return soft_prompts_.size();
}

int64_t DelRec::AdapterParameterCount() const {
  int64_t total = 0;
  for (const nn::LoraLinear* adapter : adapters_) {
    total += adapter->ParameterCount();
  }
  return total;
}

}  // namespace delrec::core
