#ifndef DELREC_CORE_WORKBENCH_H_
#define DELREC_CORE_WORKBENCH_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "data/split.h"
#include "llm/pretrain.h"
#include "llm/tiny_lm.h"
#include "llm/vocab.h"

namespace delrec::core {

/// TinyLM size presets in their paper-analog roles.
enum class LlmSize { kBase, kLarge, kXL };

const char* LlmSizeName(LlmSize size);

/// Everything a bench or example needs for one dataset: the generated +
/// filtered dataset, chronological splits, vocabulary, world-knowledge
/// corpus, and a cache of pretrained TinyLM weights per size so each
/// baseline gets an identical fresh copy of the "pretrained LLM" without
/// re-running pretraining.
class Workbench {
 public:
  struct Options {
    int64_t history_length = 10;
    int64_t min_interactions = 5;        // 5-core filtering.
    int64_t corpus_sentences_per_item = 3;
    /// Instruction-format sentences from the train split mixed into the
    /// pretraining corpus (the Flan-T5 "instruction tuned" analog).
    int64_t corpus_interaction_sentences = 250;
    int pretrain_epochs = 3;
    uint64_t seed = 33;
    bool verbose = false;
  };

  Workbench(const data::GeneratorConfig& config, const Options& options);

  const data::Dataset& dataset() const { return dataset_; }
  const data::Splits& splits() const { return splits_; }
  const llm::Vocab& vocab() const { return vocab_; }
  const Options& options() const { return options_; }
  int64_t num_items() const { return dataset_.catalog.size(); }

  /// A fresh TinyLM of the given size loaded with cached pretrained weights
  /// (pretraining runs once per size, lazily).
  std::unique_ptr<llm::TinyLm> MakePretrainedLlm(LlmSize size);

  /// Architecture config for a size (vocab already applied).
  llm::TinyLmConfig LlmConfigFor(LlmSize size) const;

 private:
  const std::vector<float>& PretrainedState(LlmSize size);

  Options options_;
  data::Dataset dataset_;
  data::Splits splits_;
  llm::Vocab vocab_;
  std::vector<std::vector<int64_t>> corpus_;
  std::map<LlmSize, std::vector<float>> pretrained_cache_;
};

}  // namespace delrec::core

#endif  // DELREC_CORE_WORKBENCH_H_
