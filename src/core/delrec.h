#ifndef DELREC_CORE_DELREC_H_
#define DELREC_CORE_DELREC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/split.h"
#include "llm/prompt.h"
#include "llm/tiny_lm.h"
#include "llm/verbalizer.h"
#include "llm/vocab.h"
#include "nn/anomaly.h"
#include "nn/lora.h"
#include "nn/tensor.h"
#include "srmodels/recommender.h"
#include "util/rng.h"
#include "util/status.h"

namespace delrec::core {

/// DELRec hyperparameters (paper §V-A3, scaled per DESIGN.md §6) plus the
/// ablation switches of Tables III & IV.
struct DelRecConfig {
  // Task shape.
  int64_t history_length = 10;   // n: most recent interactions kept.
  int64_t candidate_count = 15;  // m: 1 positive + 14 random.
  int64_t soft_prompt_count = 16;  // k (paper: 80 at full scale).
  int64_t top_h = 5;               // h: SR items shown in RPS.
  /// Whether to spell the candidate set out in the prompt text. The paper
  /// includes it so the LLM cannot hallucinate items; this repo's verbalizer
  /// restricts outputs to the candidate set structurally, so the default
  /// omits the block (3× shorter prompts — see DESIGN.md §6).
  bool candidates_in_prompt = false;
  /// Include the conventional model's top-h titles in the stage-2 prompt as
  /// the auxiliary-information channel next to the soft prompts. At paper
  /// scale the 3B LLM absorbs the SR model's behaviour through soft prompts
  /// alone; at this repo's scale k·d floats cannot encode a full transition
  /// table, so the textual channel carries the per-history part while the
  /// soft prompts carry the behavioural prior (and stage-1 RPS training
  /// transfers directly, its prompt being structurally identical).
  bool sr_hints_in_stage2 = true;
  int64_t icl_alpha = 4;           // α: ICL split in Temporal Analysis.

  // Stage 1 — Distill Pattern from Conventional SR Models (Lion optimizer).
  int stage1_epochs = 2;
  float stage1_learning_rate = 5e-3f;
  float stage1_weight_decay = 1e-5f;
  int64_t stage1_max_examples = 250;

  // Stage 2 — LLMs-based Sequential Recommendation (AdaLoRA + Lion).
  int stage2_epochs = 8;
  float stage2_learning_rate = 3e-3f;
  float stage2_weight_decay = 1e-6f;
  /// The paper uses Lion in stage 2 (1e-4 on a 3B model). At this repo's
  /// scale Lion's uniform sign steps are too coarse for the embedding-LoRA
  /// factors, so Adam is the default; set true to match the paper exactly.
  bool stage2_use_lion = false;
  int64_t stage2_max_examples = 1200;
  int64_t lora_rank = 8;
  float lora_scale = 2.0f;
  int64_t adalora_budget = 0;  // 0 ⇒ ⅔ of the total rank pool.
  int64_t adalora_interval = 8;  // Batches between budget reallocations.

  int batch_size = 16;
  float dropout = 0.1f;
  uint64_t seed = 21;
  bool verbose = false;

  // Loss-anomaly guard (nn::LossAnomalyGuard); knobs shared with
  // srmodels::TrainConfig via nn::AnomalyGuardConfig.
  nn::AnomalyGuardConfig anomaly_guard;

  // Ablation switches.
  bool use_soft_prompts = true;        // false = "w/o SP" / "w/o DPSM".
  bool manual_prompts = false;         // true  = "w MCP".
  bool skip_stage1 = false;            // true  = "w USP" (random soft).
  bool skip_stage2 = false;            // true  = "w/o LSR".
  bool disable_temporal_analysis = false;   // "w/o TA".
  bool disable_pattern_simulating = false;  // "w/o RPS".
  bool update_llm_in_stage1 = false;   // "w UDPSM".
  bool update_soft_in_stage2 = false;  // "w ULSR".
};

/// Per-epoch stage-1 diagnostics (λ trace answers RQ2-style questions).
struct Stage1Diagnostics {
  std::vector<float> lambda_per_epoch;
  std::vector<float> ta_loss_per_epoch;
  std::vector<float> rps_loss_per_epoch;
};

/// Anomaly-guard tallies across the two training stages.
struct TrainStats {
  int64_t stage1_anomalies = 0;
  int64_t stage2_anomalies = 0;
};

/// Mid-training snapshot persisted next to the model blobs after every
/// completed epoch so an interrupted run resumes from the last epoch
/// boundary — and, because it carries the optimizer moments, RNG state,
/// λ/guard bookkeeping and AdaLoRA sensitivity, resumes bit-identically.
/// stage: 1 = soft-prompt distillation, 2 = AdaLoRA fine-tuning.
/// next_epoch: first epoch of `stage` that has not completed yet.
struct TrainState {
  int stage = 1;
  int next_epoch = 0;
  std::vector<float> optimizer_state;  // nn::Optimizer::StateDump().
  std::vector<uint64_t> rng_state;     // util::Rng::StateDump().
  std::vector<float> guard_state;      // nn::LossAnomalyGuard::StateDump().
  /// Stage-specific scalars: stage 1 = {ta_ema, rps_ema}; stage 2 =
  /// {batch_counter} followed by each adapter's sensitivity EMA (rank
  /// floats per adapter, registration order).
  std::vector<float> stage_extra;
  Stage1Diagnostics diagnostics;
};

/// Stateless building blocks of the frozen scoring path, shared by the live
/// model (DelRec::ScoreCandidates) and serve::EngineSnapshot so both
/// construct bit-identical prompts from identical state. All functions are
/// pure in their inputs; `sr_model` is only consulted for TopK hints.
namespace inference {

/// Truncates a history to config.history_length (most recent kept).
std::vector<int64_t> WindowHistory(const DelRecConfig& config,
                                   const std::vector<int64_t>& history);

/// Soft-prompt rows to splice into the prompt, or an undefined Tensor when
/// the configuration ablated them away.
nn::Tensor ActiveSoftPrompts(const DelRecConfig& config,
                             const nn::Tensor& soft_prompts);

/// Auxiliary textual channel of the stage-2 prompt: the conventional
/// model's top-h titles (sr_hints_in_stage2) and/or the "w MCP" description.
std::vector<int64_t> ActiveHintTokens(
    const DelRecConfig& config, const llm::PromptBuilder& builder,
    const srmodels::SequentialRecommender& sr_model,
    const std::vector<int64_t>& history);

/// Candidate ids rendered into the prompt (empty unless configured).
std::vector<int64_t> PromptCandidates(const DelRecConfig& config,
                                      const std::vector<int64_t>& candidates);

/// The complete recommendation-scoring prompt for (history, candidates) —
/// the exact prompt DelRec::ScoreCandidates forwards through the LLM.
llm::Prompt BuildScoringPrompt(const DelRecConfig& config,
                               const llm::PromptBuilder& builder,
                               const srmodels::SequentialRecommender& sr_model,
                               const nn::Tensor& soft_prompts,
                               const std::vector<int64_t>& history,
                               const std::vector<int64_t>& candidates);

/// The snapshot-constant head of every scoring prompt the config produces
/// — identical to llm::PromptBuilder::Split(BuildScoringPrompt(...)).prefix
/// for any request. A serve snapshot feeds this to TinyLm::BuildPrefixState
/// once per publish (DESIGN.md §15).
std::vector<llm::PromptPiece> BuildScoringPrefix(
    const DelRecConfig& config, const llm::PromptBuilder& builder,
    const nn::Tensor& soft_prompts);

}  // namespace inference

/// The DELRec framework: distills a conventional SR model's behaviour into
/// soft prompts (stage 1), then AdaLoRA-fine-tunes the LLM to exploit them
/// (stage 2). The LLM and SR model are borrowed, not owned; DELRec mutates
/// the LLM's adapters but never its base weights.
class DelRec {
 public:
  /// All pointers must outlive this object. `llm` should be pretrained;
  /// `sr_model` should be trained.
  DelRec(const data::CatalogView* catalog, const llm::Vocab* vocab,
         llm::TinyLm* llm, srmodels::SequentialRecommender* sr_model,
         const DelRecConfig& config);

  /// Stage 1: multi-task soft-prompt distillation (TA + RPS, dynamic λ).
  /// Non-OK when the loss-anomaly guard trips; the soft prompts keep their
  /// last healthy values.
  util::Status DistillPattern(const std::vector<data::Example>& train_examples);

  /// Stage 2: freeze soft prompts, fine-tune the LLM with AdaLoRA + Lion.
  util::Status FineTune(const std::vector<data::Example>& train_examples);

  /// Runs both stages (honouring the ablation switches).
  util::Status Train(const std::vector<data::Example>& train_examples);

  /// Fault-tolerant Train(): persists a full TrainState checkpoint to
  /// `checkpoint_path` after every completed epoch and, when the file
  /// already holds one, resumes from it. A resumed run produces soft
  /// prompts and adapter weights bit-identical to an uninterrupted run
  /// with the same configuration and data.
  util::Status TrainResumable(const std::vector<data::Example>& train_examples,
                              const std::string& checkpoint_path);

  /// Scores a candidate list for evaluation (higher = better).
  std::vector<float> ScoreCandidates(
      const data::Example& example,
      const std::vector<int64_t>& candidates) const;

  /// Top-k recommendation over an arbitrary candidate pool.
  std::vector<int64_t> Recommend(const std::vector<int64_t>& history,
                                 const std::vector<int64_t>& candidate_pool,
                                 int64_t k) const;

  const nn::Tensor& soft_prompts() const { return soft_prompts_; }
  const Stage1Diagnostics& stage1_diagnostics() const { return diagnostics_; }
  const TrainStats& train_stats() const { return train_stats_; }
  const DelRecConfig& config() const { return config_; }
  std::string name() const;

  int64_t SoftPromptParameterCount() const;
  int64_t AdapterParameterCount() const;

  /// The AdaLoRA adapters (empty before stage 2 / checkpoint load).
  const std::vector<nn::LoraLinear*>& adapters() const { return adapters_; }
  /// Checkpoint-restore hook: records externally enabled adapters.
  void AttachAdapters(std::vector<nn::LoraLinear*> adapters) {
    adapters_ = std::move(adapters);
  }

 private:
  /// Stage implementations. When `checkpoint_path` is non-null a
  /// TrainState is saved there after every completed epoch; when `resume`
  /// is non-null the stage restores optimizer/rng/guard/λ state from it
  /// and starts at resume->next_epoch.
  util::Status DistillPatternImpl(
      const std::vector<data::Example>& train_examples,
      const std::string* checkpoint_path, const TrainState* resume);
  util::Status FineTuneImpl(const std::vector<data::Example>& train_examples,
                            const std::string* checkpoint_path,
                            const TrainState* resume);

  /// Soft-prompt tensor to insert for the current configuration (undefined
  /// tensor when soft prompts are ablated away).
  nn::Tensor ActiveSoftPrompts() const;
  /// Auxiliary textual channel for the stage-2 prompt: the conventional
  /// model's top-h (when sr_hints_in_stage2) and/or the "w MCP" description.
  std::vector<int64_t> ActiveHintTokens(
      const std::vector<int64_t>& history) const;
  /// Candidate ids to render into the prompt (empty unless configured).
  std::vector<int64_t> PromptCandidates(
      const std::vector<int64_t>& candidates) const;
  /// Truncates a history to the configured length.
  std::vector<int64_t> Window(const std::vector<int64_t>& history) const;

  const data::CatalogView* catalog_;
  llm::TinyLm* llm_;
  srmodels::SequentialRecommender* sr_model_;
  DelRecConfig config_;
  llm::PromptBuilder prompt_builder_;
  llm::Verbalizer verbalizer_;
  nn::Tensor soft_prompts_;  // (k, model_dim)
  Stage1Diagnostics diagnostics_;
  TrainStats train_stats_;
  std::vector<nn::LoraLinear*> adapters_;
  mutable util::Rng scratch_rng_;
  bool stage1_done_ = false;
};

}  // namespace delrec::core

#endif  // DELREC_CORE_DELREC_H_
