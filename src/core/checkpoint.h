#ifndef DELREC_CORE_CHECKPOINT_H_
#define DELREC_CORE_CHECKPOINT_H_

#include <string>

#include "core/delrec.h"
#include "llm/tiny_lm.h"
#include "util/status.h"

namespace delrec::core {

/// Persists a trained DELRec system: the LLM base weights, the distilled
/// soft prompts, the AdaLoRA adapter factors with their rank masks, and the
/// embedding-LoRA factors. Architecture is NOT stored — loading requires a
/// DelRec/TinyLm pair constructed with the same configuration.
util::Status SaveDelRecCheckpoint(const DelRec& model, const llm::TinyLm& llm,
                                  const std::string& path);

/// Restores a checkpoint written by SaveDelRecCheckpoint. Enables adapters
/// on the LLM if they are not present yet. Returns InvalidArgument on
/// architecture mismatch (blob size checks).
util::Status LoadDelRecCheckpoint(DelRec& model, llm::TinyLm& llm,
                                  const std::string& path);

}  // namespace delrec::core

#endif  // DELREC_CORE_CHECKPOINT_H_
