#ifndef DELREC_CORE_CHECKPOINT_H_
#define DELREC_CORE_CHECKPOINT_H_

#include <string>
#include <vector>

#include "core/delrec.h"
#include "llm/tiny_lm.h"
#include "util/status.h"

namespace delrec::core {

/// The raw parameter blobs of a saved DELRec system, decoupled from live
/// DelRec/TinyLm objects so a serving process can build an immutable
/// serve::EngineSnapshot straight from disk without a trainer in sight.
/// Architecture is not stored (see SaveDelRecCheckpoint); consumers
/// validate blob sizes against their own configuration.
struct DelRecBlobs {
  std::vector<float> llm_state;                    // TinyLm::StateDump().
  std::vector<float> soft_prompts;                 // (k · model_dim).
  std::vector<std::vector<float>> adapter_states;  // Registration order.
  std::vector<std::vector<float>> adapter_masks;   // 0/1 per direction.
  std::vector<float> embedding_lora_a;  // Empty when no embedding adapter.
  std::vector<float> embedding_lora_b;
  /// Optional distilled student (srmodels::SerializeStudent format). Empty
  /// when no student has been attached; when present, EngineSnapshot
  /// deserializes it at build time so the teacher and its student travel —
  /// and hot-swap — as one artifact (DESIGN.md §16).
  std::vector<float> student_blob;
};

/// Extracts the blob set of a live (trained) system — the exact payload
/// SaveDelRecCheckpoint writes.
DelRecBlobs ExtractDelRecBlobs(const DelRec& model, const llm::TinyLm& llm);

/// Reads the blob set back from a checkpoint written by
/// SaveDelRecCheckpoint (or SaveTrainCheckpoint — TrainState blobs are
/// ignored). NotFound/DataLoss mirror LoadDelRecCheckpoint's contract.
util::StatusOr<DelRecBlobs> ReadDelRecBlobs(const std::string& path);

/// Writes a blob set — as extracted, or augmented (e.g. with a distilled
/// student attached to DelRecBlobs::student_blob) — to a checkpoint file
/// ReadDelRecBlobs/LoadDelRecCheckpoint can consume. Same atomic-write and
/// retry behavior as SaveDelRecCheckpoint.
util::Status SaveDelRecBlobs(const DelRecBlobs& blobs,
                             const std::string& path);

/// Persists a trained DELRec system: the LLM base weights, the distilled
/// soft prompts, the AdaLoRA adapter factors with their rank masks, and the
/// embedding-LoRA factors. Architecture is NOT stored — loading requires a
/// DelRec/TinyLm pair constructed with the same configuration. Writes are
/// atomic (temp file + fsync + rename) and retried on transient failures.
util::Status SaveDelRecCheckpoint(const DelRec& model, const llm::TinyLm& llm,
                                  const std::string& path);

/// Restores a checkpoint written by SaveDelRecCheckpoint. Enables adapters
/// on the LLM if they are not present yet. Returns InvalidArgument on
/// architecture mismatch (blob size checks) and DataLoss on a corrupt or
/// truncated file.
util::Status LoadDelRecCheckpoint(DelRec& model, llm::TinyLm& llm,
                                  const std::string& path);

/// Persists a mid-training snapshot: everything SaveDelRecCheckpoint stores
/// plus the TrainState (stage/epoch cursor, optimizer moments, RNG state,
/// anomaly-guard and λ/AdaLoRA bookkeeping, per-epoch diagnostics) — the
/// complete set needed for a bit-identical resume. Guarded by the
/// `checkpoint.save` failpoint; the atomic write is retried via util::Retry.
util::Status SaveTrainCheckpoint(const DelRec& model, const llm::TinyLm& llm,
                                 const TrainState& state,
                                 const std::string& path);

/// Restores a snapshot written by SaveTrainCheckpoint into the model/LLM and
/// `*state`. Returns NotFound when no file exists at `path` (fresh start),
/// InvalidArgument when the file lacks a TrainState or mismatches the
/// architecture, and DataLoss when it is corrupt. Guarded by the
/// `checkpoint.load` failpoint.
util::Status LoadTrainCheckpoint(DelRec& model, llm::TinyLm& llm,
                                 const std::string& path, TrainState* state);

}  // namespace delrec::core

#endif  // DELREC_CORE_CHECKPOINT_H_
