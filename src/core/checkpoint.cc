#include "core/checkpoint.h"

#include <cstring>

#include "util/failpoint.h"
#include "util/retry.h"
#include "util/serialize.h"

namespace delrec::core {
namespace {

constexpr char kLlmBlob[] = "llm_state";
constexpr char kSoftBlob[] = "soft_prompts";
constexpr char kEmbeddingABlob[] = "embedding_lora_a";
constexpr char kEmbeddingBBlob[] = "embedding_lora_b";
constexpr char kStudentBlob[] = "student";

// TrainState blobs (absent in plain model checkpoints).
constexpr char kStageBlob[] = "train_state/stage";
constexpr char kOptimizerBlob[] = "train_state/optimizer";
constexpr char kRngBlob[] = "train_state/rng";
constexpr char kGuardBlob[] = "train_state/guard";
constexpr char kExtraBlob[] = "train_state/extra";
constexpr char kLambdaTraceBlob[] = "train_state/lambda_trace";
constexpr char kTaTraceBlob[] = "train_state/ta_trace";
constexpr char kRpsTraceBlob[] = "train_state/rps_trace";

std::string AdapterBlobName(size_t index) {
  return "adapter_" + std::to_string(index);
}

std::string AdapterMaskBlobName(size_t index) {
  return "adapter_mask_" + std::to_string(index);
}

// The BlobFile stores only floats; RNG words are 64-bit, so each word is
// memcpy-split into two floats (bit pattern preserved, no value conversion).
std::vector<float> PackU64(const std::vector<uint64_t>& words) {
  std::vector<float> packed(words.size() * 2);
  static_assert(sizeof(uint64_t) == 2 * sizeof(float));
  std::memcpy(packed.data(), words.data(), words.size() * sizeof(uint64_t));
  return packed;
}

util::StatusOr<std::vector<uint64_t>> UnpackU64(
    const std::vector<float>& packed) {
  if (packed.size() % 2 != 0) {
    return util::Status::InvalidArgument("odd u64 blob length");
  }
  std::vector<uint64_t> words(packed.size() / 2);
  std::memcpy(words.data(), packed.data(), packed.size() * sizeof(float));
  return words;
}

void AppendModelBlobs(const DelRec& model, const llm::TinyLm& llm,
                      util::BlobFile& file) {
  DelRecBlobs blobs = ExtractDelRecBlobs(model, llm);
  file.Put(kLlmBlob, std::move(blobs.llm_state));
  file.Put(kSoftBlob, std::move(blobs.soft_prompts));
  for (size_t i = 0; i < blobs.adapter_states.size(); ++i) {
    file.Put(AdapterBlobName(i), std::move(blobs.adapter_states[i]));
    file.Put(AdapterMaskBlobName(i), std::move(blobs.adapter_masks[i]));
  }
  if (!blobs.embedding_lora_a.empty()) {
    file.Put(kEmbeddingABlob, std::move(blobs.embedding_lora_a));
    file.Put(kEmbeddingBBlob, std::move(blobs.embedding_lora_b));
  }
}

util::Status RestoreModelBlobs(DelRec& model, llm::TinyLm& llm,
                               const util::BlobFile& file) {
  std::vector<float> llm_state;
  DELREC_ASSIGN_OR_RETURN(llm_state, file.Get(kLlmBlob));
  if (static_cast<int64_t>(llm_state.size()) != llm.ParameterCount()) {
    return util::Status::InvalidArgument("LLM architecture mismatch");
  }
  llm.LoadState(llm_state);

  std::vector<float> soft;
  DELREC_ASSIGN_OR_RETURN(soft, file.Get(kSoftBlob));
  nn::Tensor soft_prompts = model.soft_prompts();  // Shares storage.
  if (soft.size() != soft_prompts.data().size()) {
    return util::Status::InvalidArgument("soft-prompt size mismatch");
  }
  soft_prompts.data() = std::move(soft);

  if (file.Contains(AdapterBlobName(0))) {
    std::vector<nn::LoraLinear*> adapters = llm.EnableAdapters(
        model.config().lora_rank, model.config().lora_scale);
    for (size_t i = 0; i < adapters.size(); ++i) {
      std::vector<float> state;
      DELREC_ASSIGN_OR_RETURN(state, file.Get(AdapterBlobName(i)));
      if (static_cast<int64_t>(state.size()) !=
          adapters[i]->ParameterCount()) {
        return util::Status::InvalidArgument("adapter size mismatch");
      }
      adapters[i]->LoadState(state);
      std::vector<float> mask;
      DELREC_ASSIGN_OR_RETURN(mask, file.Get(AdapterMaskBlobName(i)));
      for (int64_t d = 0;
           d < std::min<int64_t>(adapters[i]->rank(),
                                 static_cast<int64_t>(mask.size()));
           ++d) {
        adapters[i]->SetDirectionActive(d, mask[d] > 0.5f);
      }
    }
    model.AttachAdapters(std::move(adapters));
    std::vector<nn::Tensor> embedding = llm.EmbeddingAdapterParameters();
    if (embedding.size() == 2 && file.Contains(kEmbeddingABlob)) {
      std::vector<float> a, b;
      DELREC_ASSIGN_OR_RETURN(a, file.Get(kEmbeddingABlob));
      DELREC_ASSIGN_OR_RETURN(b, file.Get(kEmbeddingBBlob));
      if (a.size() != embedding[0].data().size() ||
          b.size() != embedding[1].data().size()) {
        return util::Status::InvalidArgument("embedding adapter mismatch");
      }
      embedding[0].data() = std::move(a);
      embedding[1].data() = std::move(b);
    }
  }
  return util::Status::Ok();
}

util::Status WriteWithRetry(const util::BlobFile& file,
                            const std::string& path) {
  util::RetryOptions options;
  return util::Retry(options, [&] { return file.WriteTo(path); });
}

}  // namespace

DelRecBlobs ExtractDelRecBlobs(const DelRec& model, const llm::TinyLm& llm) {
  DelRecBlobs blobs;
  blobs.llm_state = llm.StateDump();
  blobs.soft_prompts = model.soft_prompts().data();
  for (const nn::LoraLinear* adapter : model.adapters()) {
    blobs.adapter_states.push_back(adapter->StateDump());
    std::vector<float> mask(adapter->rank());
    for (int64_t d = 0; d < adapter->rank(); ++d) {
      mask[d] = adapter->direction_active(d) ? 1.0f : 0.0f;
    }
    blobs.adapter_masks.push_back(std::move(mask));
  }
  std::vector<nn::Tensor> embedding = llm.EmbeddingAdapterParameters();
  if (embedding.size() == 2) {
    blobs.embedding_lora_a = embedding[0].data();
    blobs.embedding_lora_b = embedding[1].data();
  }
  return blobs;
}

util::StatusOr<DelRecBlobs> ReadDelRecBlobs(const std::string& path) {
  util::BlobFile file;
  DELREC_ASSIGN_OR_RETURN(file, util::BlobFile::ReadFrom(path));
  DelRecBlobs blobs;
  DELREC_ASSIGN_OR_RETURN(blobs.llm_state, file.Get(kLlmBlob));
  DELREC_ASSIGN_OR_RETURN(blobs.soft_prompts, file.Get(kSoftBlob));
  for (size_t i = 0; file.Contains(AdapterBlobName(i)); ++i) {
    std::vector<float> state;
    std::vector<float> mask;
    DELREC_ASSIGN_OR_RETURN(state, file.Get(AdapterBlobName(i)));
    DELREC_ASSIGN_OR_RETURN(mask, file.Get(AdapterMaskBlobName(i)));
    blobs.adapter_states.push_back(std::move(state));
    blobs.adapter_masks.push_back(std::move(mask));
  }
  if (file.Contains(kEmbeddingABlob)) {
    DELREC_ASSIGN_OR_RETURN(blobs.embedding_lora_a, file.Get(kEmbeddingABlob));
    DELREC_ASSIGN_OR_RETURN(blobs.embedding_lora_b, file.Get(kEmbeddingBBlob));
  }
  if (file.Contains(kStudentBlob)) {
    DELREC_ASSIGN_OR_RETURN(blobs.student_blob, file.Get(kStudentBlob));
  }
  return blobs;
}

util::Status SaveDelRecBlobs(const DelRecBlobs& blobs,
                             const std::string& path) {
  util::BlobFile file;
  DelRecBlobs copy = blobs;
  file.Put(kLlmBlob, std::move(copy.llm_state));
  file.Put(kSoftBlob, std::move(copy.soft_prompts));
  for (size_t i = 0; i < copy.adapter_states.size(); ++i) {
    file.Put(AdapterBlobName(i), std::move(copy.adapter_states[i]));
    file.Put(AdapterMaskBlobName(i), std::move(copy.adapter_masks[i]));
  }
  if (!copy.embedding_lora_a.empty()) {
    file.Put(kEmbeddingABlob, std::move(copy.embedding_lora_a));
    file.Put(kEmbeddingBBlob, std::move(copy.embedding_lora_b));
  }
  if (!copy.student_blob.empty()) {
    file.Put(kStudentBlob, std::move(copy.student_blob));
  }
  return WriteWithRetry(file, path);
}

util::Status SaveDelRecCheckpoint(const DelRec& model, const llm::TinyLm& llm,
                                  const std::string& path) {
  util::BlobFile file;
  AppendModelBlobs(model, llm, file);
  return WriteWithRetry(file, path);
}

util::Status LoadDelRecCheckpoint(DelRec& model, llm::TinyLm& llm,
                                  const std::string& path) {
  util::BlobFile file;
  DELREC_ASSIGN_OR_RETURN(file, util::BlobFile::ReadFrom(path));
  return RestoreModelBlobs(model, llm, file);
}

util::Status SaveTrainCheckpoint(const DelRec& model, const llm::TinyLm& llm,
                                 const TrainState& state,
                                 const std::string& path) {
  DELREC_RETURN_IF_ERROR(util::Failpoints::Instance().Check("checkpoint.save"));
  util::BlobFile file;
  AppendModelBlobs(model, llm, file);
  file.Put(kStageBlob, {static_cast<float>(state.stage),
                        static_cast<float>(state.next_epoch)});
  file.Put(kOptimizerBlob, state.optimizer_state);
  file.Put(kRngBlob, PackU64(state.rng_state));
  file.Put(kGuardBlob, state.guard_state);
  file.Put(kExtraBlob, state.stage_extra);
  file.Put(kLambdaTraceBlob, state.diagnostics.lambda_per_epoch);
  file.Put(kTaTraceBlob, state.diagnostics.ta_loss_per_epoch);
  file.Put(kRpsTraceBlob, state.diagnostics.rps_loss_per_epoch);
  return WriteWithRetry(file, path);
}

util::Status LoadTrainCheckpoint(DelRec& model, llm::TinyLm& llm,
                                 const std::string& path, TrainState* state) {
  DELREC_RETURN_IF_ERROR(util::Failpoints::Instance().Check("checkpoint.load"));
  util::BlobFile file;
  DELREC_ASSIGN_OR_RETURN(file, util::BlobFile::ReadFrom(path));
  if (!file.Contains(kStageBlob)) {
    return util::Status::InvalidArgument("no TrainState in checkpoint: " +
                                         path);
  }
  std::vector<float> stage;
  DELREC_ASSIGN_OR_RETURN(stage, file.Get(kStageBlob));
  if (stage.size() != 2) {
    return util::Status::InvalidArgument("malformed TrainState stage blob");
  }
  DELREC_RETURN_IF_ERROR(RestoreModelBlobs(model, llm, file));
  state->stage = static_cast<int>(stage[0]);
  state->next_epoch = static_cast<int>(stage[1]);
  DELREC_ASSIGN_OR_RETURN(state->optimizer_state, file.Get(kOptimizerBlob));
  std::vector<float> packed_rng;
  DELREC_ASSIGN_OR_RETURN(packed_rng, file.Get(kRngBlob));
  DELREC_ASSIGN_OR_RETURN(state->rng_state, UnpackU64(packed_rng));
  DELREC_ASSIGN_OR_RETURN(state->guard_state, file.Get(kGuardBlob));
  DELREC_ASSIGN_OR_RETURN(state->stage_extra, file.Get(kExtraBlob));
  DELREC_ASSIGN_OR_RETURN(state->diagnostics.lambda_per_epoch,
                          file.Get(kLambdaTraceBlob));
  DELREC_ASSIGN_OR_RETURN(state->diagnostics.ta_loss_per_epoch,
                          file.Get(kTaTraceBlob));
  DELREC_ASSIGN_OR_RETURN(state->diagnostics.rps_loss_per_epoch,
                          file.Get(kRpsTraceBlob));
  return util::Status::Ok();
}

}  // namespace delrec::core
