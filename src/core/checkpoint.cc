#include "core/checkpoint.h"

#include "util/serialize.h"

namespace delrec::core {
namespace {

constexpr char kLlmBlob[] = "llm_state";
constexpr char kSoftBlob[] = "soft_prompts";
constexpr char kEmbeddingABlob[] = "embedding_lora_a";
constexpr char kEmbeddingBBlob[] = "embedding_lora_b";

std::string AdapterBlobName(size_t index) {
  return "adapter_" + std::to_string(index);
}

std::string AdapterMaskBlobName(size_t index) {
  return "adapter_mask_" + std::to_string(index);
}

}  // namespace

util::Status SaveDelRecCheckpoint(const DelRec& model, const llm::TinyLm& llm,
                                  const std::string& path) {
  util::BlobFile file;
  file.Put(kLlmBlob, llm.StateDump());
  file.Put(kSoftBlob, model.soft_prompts().data());
  const std::vector<nn::LoraLinear*>& adapters = model.adapters();
  for (size_t i = 0; i < adapters.size(); ++i) {
    file.Put(AdapterBlobName(i), adapters[i]->StateDump());
    std::vector<float> mask(adapters[i]->rank());
    for (int64_t d = 0; d < adapters[i]->rank(); ++d) {
      mask[d] = adapters[i]->direction_active(d) ? 1.0f : 0.0f;
    }
    file.Put(AdapterMaskBlobName(i), std::move(mask));
  }
  std::vector<nn::Tensor> embedding = llm.EmbeddingAdapterParameters();
  if (embedding.size() == 2) {
    file.Put(kEmbeddingABlob, embedding[0].data());
    file.Put(kEmbeddingBBlob, embedding[1].data());
  }
  return file.WriteTo(path);
}

util::Status LoadDelRecCheckpoint(DelRec& model, llm::TinyLm& llm,
                                  const std::string& path) {
  auto file_or = util::BlobFile::ReadFrom(path);
  if (!file_or.ok()) return file_or.status();
  const util::BlobFile& file = file_or.value();

  auto llm_state = file.Get(kLlmBlob);
  if (!llm_state.ok()) return llm_state.status();
  if (static_cast<int64_t>(llm_state.value().size()) !=
      llm.ParameterCount()) {
    return util::Status::InvalidArgument("LLM architecture mismatch");
  }
  llm.LoadState(llm_state.value());

  auto soft = file.Get(kSoftBlob);
  if (!soft.ok()) return soft.status();
  nn::Tensor soft_prompts = model.soft_prompts();  // Shares storage.
  if (soft.value().size() != soft_prompts.data().size()) {
    return util::Status::InvalidArgument("soft-prompt size mismatch");
  }
  soft_prompts.data() = soft.value();

  if (file.Contains(AdapterBlobName(0))) {
    std::vector<nn::LoraLinear*> adapters = llm.EnableAdapters(
        model.config().lora_rank, model.config().lora_scale);
    for (size_t i = 0; i < adapters.size(); ++i) {
      auto state = file.Get(AdapterBlobName(i));
      if (!state.ok()) return state.status();
      if (static_cast<int64_t>(state.value().size()) !=
          adapters[i]->ParameterCount()) {
        return util::Status::InvalidArgument("adapter size mismatch");
      }
      adapters[i]->LoadState(state.value());
      auto mask = file.Get(AdapterMaskBlobName(i));
      if (!mask.ok()) return mask.status();
      for (int64_t d = 0;
           d < std::min<int64_t>(adapters[i]->rank(),
                                 static_cast<int64_t>(mask.value().size()));
           ++d) {
        adapters[i]->SetDirectionActive(d, mask.value()[d] > 0.5f);
      }
    }
    model.AttachAdapters(std::move(adapters));
    std::vector<nn::Tensor> embedding = llm.EmbeddingAdapterParameters();
    if (embedding.size() == 2 && file.Contains(kEmbeddingABlob)) {
      auto a = file.Get(kEmbeddingABlob);
      auto b = file.Get(kEmbeddingBBlob);
      if (!a.ok()) return a.status();
      if (!b.ok()) return b.status();
      if (a.value().size() != embedding[0].data().size() ||
          b.value().size() != embedding[1].data().size()) {
        return util::Status::InvalidArgument("embedding adapter mismatch");
      }
      embedding[0].data() = a.value();
      embedding[1].data() = b.value();
    }
  }
  return util::Status::Ok();
}

}  // namespace delrec::core
