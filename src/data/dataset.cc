#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/check.h"
#include "util/string_util.h"

namespace delrec::data {
namespace {

// Genre-specific word pools. Each genre owns a disjoint adjective/noun pool
// so a title's words identify its genre — the semantic signal an LLM can
// exploit but an ID-only SR model cannot.
constexpr int kMaxGenres = 12;
const char* const kGenreNames[kMaxGenres] = {
    "noir",    "galactic", "pastoral", "arcane",  "urban",   "abyssal",
    "vintage", "feral",    "baroque",  "cryo",    "solar",   "mythic"};
const char* const kGenreAdjectives[kMaxGenres][6] = {
    {"shadow", "smoky", "silent", "midnight", "grim", "velvet"},
    {"stellar", "cosmic", "orbital", "nebular", "lunar", "astral"},
    {"meadow", "rustic", "verdant", "harvest", "gentle", "golden"},
    {"runic", "occult", "mystic", "spectral", "enchanted", "eldritch"},
    {"neon", "concrete", "electric", "subway", "rooftop", "gritty"},
    {"deep", "sunken", "tidal", "briny", "pelagic", "drowned"},
    {"sepia", "antique", "retro", "classic", "faded", "gilded"},
    {"savage", "howling", "untamed", "prowling", "rabid", "wilder"},
    {"ornate", "gilt", "rococo", "florid", "lavish", "opulent"},
    {"frozen", "glacial", "polar", "icy", "boreal", "frosted"},
    {"radiant", "blazing", "amber", "dawn", "scorched", "zenith"},
    {"epic", "fabled", "titan", "legend", "heroic", "olympian"}};
const char* const kGenreNouns[kMaxGenres][6] = {
    {"alley", "detective", "cigarette", "dossier", "stakeout", "verdict"},
    {"voyage", "station", "comet", "armada", "satellite", "horizon"},
    {"orchard", "valley", "creek", "barn", "harvest", "shepherd"},
    {"grimoire", "ritual", "seance", "talisman", "covenant", "oracle"},
    {"district", "siren", "graffiti", "tenement", "overpass", "arcade"},
    {"trench", "leviathan", "current", "reef", "abyss", "kraken"},
    {"phonograph", "carousel", "locket", "gazette", "parlor", "waltz"},
    {"predator", "thicket", "fang", "denizen", "stampede", "howl"},
    {"palace", "minuet", "chandelier", "masquerade", "sonata", "fresco"},
    {"tundra", "floe", "aurora", "blizzard", "permafrost", "icicle"},
    {"meridian", "ember", "eclipse", "furnace", "mirage", "corona"},
    {"odyssey", "colossus", "pantheon", "saga", "labyrinth", "oath"}};

std::string MakeTitle(int genre, int64_t item_id, util::Rng& rng) {
  const int adjective = static_cast<int>(rng.UniformUint64(6));
  const int noun = static_cast<int>(rng.UniformUint64(6));
  std::string title = std::string(kGenreAdjectives[genre][adjective]) + " " +
                      kGenreNouns[genre][noun];
  // Globally unique numeric suffix — the analog of a release year in real
  // titles. It gives every item one perfectly distinctive token, which the
  // IDF verbalizer leans on (genre words are shared; the number is not).
  // Appended piecewise: `"" + std::to_string(...)` trips GCC 12's spurious
  // -Wrestrict on the rvalue operator+ (upstream bug 105651).
  title += ' ';
  title += std::to_string(item_id + 1);
  return title;
}

// Inverse-CDF draw over an inclusive prefix-sum table (prefix[0] == 0,
// prefix.back() == total). Consumes exactly one uniform — the same draw the
// linear-scan Discrete()/Zipf() consumed — so generated datasets are
// unchanged while per-event cost drops from O(n) to O(log n), which is what
// makes million-user generation tractable.
std::size_t SampleFromPrefix(const std::vector<double>& prefix,
                             util::Rng& rng) {
  const double target = rng.UniformDouble() * prefix.back();
  const auto it = std::upper_bound(prefix.begin() + 1, prefix.end(), target);
  const std::size_t index = static_cast<std::size_t>(it - prefix.begin()) - 1;
  return std::min(index, prefix.size() - 2);  // Numerical fallthrough.
}

// Samples one next item given the user's state. Implements the mixture:
// sequel-transition (sequential signal) / genre affinity (semantic signal) /
// popularity noise.
int64_t SampleNextItem(const Catalog& catalog, int64_t last_item,
                       int preferred_genre,
                       const std::vector<std::vector<int64_t>>& by_genre,
                       const std::vector<std::vector<double>>& genre_prefix,
                       const std::vector<double>& zipf_prefix,
                       const GeneratorConfig& config, util::Rng& rng) {
  const double roll = rng.UniformDouble();
  if (last_item >= 0 && roll < config.markov_strength) {
    const auto& successors = catalog.successors[last_item];
    std::vector<double> weights(Catalog::kSuccessorWeights,
                                Catalog::kSuccessorWeights + 3);
    weights.resize(successors.size());
    return successors[rng.Discrete(weights)];
  }
  if (roll < config.markov_strength + config.semantic_strength) {
    // Popularity-weighted pick within the preferred genre.
    const std::size_t pick =
        SampleFromPrefix(genre_prefix[preferred_genre], rng);
    return by_genre[preferred_genre][pick];
  }
  // Popularity noise over the whole catalog (Zipf rank == item id order).
  return static_cast<int64_t>(SampleFromPrefix(zipf_prefix, rng));
}

// Collects GenerateDatasetTo's stream back into an in-RAM Dataset.
class InMemorySink final : public DatasetSink {
 public:
  explicit InMemorySink(Dataset* dataset) : dataset_(dataset) {}

  util::Status BeginDataset(const std::string& name, const Catalog& catalog,
                            int64_t num_users) override {
    dataset_->name = name;
    dataset_->catalog = catalog;
    dataset_->sequences.reserve(static_cast<size_t>(num_users));
    return util::Status::Ok();
  }

  util::Status AddUser(int64_t user,
                       const std::vector<int64_t>& items) override {
    UserSequence sequence;
    sequence.user = user;
    sequence.items = items;
    dataset_->sequences.push_back(std::move(sequence));
    return util::Status::Ok();
  }

  util::Status Finish() override { return util::Status::Ok(); }

 private:
  Dataset* dataset_;
};

}  // namespace

DatasetStats ComputeStats(const Dataset& dataset) {
  DatasetStats stats;
  stats.num_sequences = static_cast<int64_t>(dataset.sequences.size());
  stats.num_items = dataset.catalog.size();
  for (const UserSequence& sequence : dataset.sequences) {
    stats.num_interactions += static_cast<int64_t>(sequence.items.size());
  }
  const double cells = static_cast<double>(stats.num_sequences) *
                       static_cast<double>(stats.num_items);
  stats.sparsity =
      cells > 0 ? 1.0 - static_cast<double>(stats.num_interactions) / cells
                : 0.0;
  return stats;
}

Dataset GenerateDataset(const GeneratorConfig& config) {
  Dataset dataset;
  InMemorySink sink(&dataset);
  const util::Status status = GenerateDatasetTo(config, sink);
  DELREC_CHECK(status.ok()) << "in-RAM generation cannot fail: "
                            << status.ToString();
  return dataset;
}

util::Status GenerateDatasetTo(const GeneratorConfig& config,
                               DatasetSink& sink) {
  DELREC_CHECK_GT(config.num_items, 0);
  DELREC_CHECK_GT(config.num_users, 0);
  DELREC_CHECK_LE(config.num_genres, kMaxGenres);
  DELREC_CHECK_GE(config.num_genres, 2);
  util::Rng rng(config.seed);

  Catalog catalog;
  catalog.num_genres = config.num_genres;
  for (int g = 0; g < config.num_genres; ++g) {
    catalog.genre_names.push_back(kGenreNames[g]);
  }

  // Items: round-robin genres; popularity ~ Zipf by id (id == rank).
  std::vector<int64_t> per_genre_count(config.num_genres, 0);
  std::vector<std::vector<int64_t>> by_genre(config.num_genres);
  for (int64_t i = 0; i < config.num_items; ++i) {
    Item item;
    item.id = i;
    item.genre = static_cast<int>(i % config.num_genres);
    item.title = MakeTitle(item.genre, i, rng);
    per_genre_count[item.genre]++;
    item.popularity =
        1.0f / std::pow(static_cast<float>(i + 1),
                        static_cast<float>(config.popularity_exponent));
    by_genre[item.genre].push_back(i);
    catalog.items.push_back(std::move(item));
  }
  // Successor structure: each item transitions to 3 same-genre items (the
  // cyclic "sequel" plus two pseudo-random co-consumption partners). The
  // multimodality keeps the sequential pattern learnable but not trivially
  // memorizable by ID models — like real co-watch graphs.
  catalog.sequel.resize(config.num_items);
  catalog.successors.resize(config.num_items);
  for (int g = 0; g < config.num_genres; ++g) {
    const auto& pool = by_genre[g];
    for (size_t i = 0; i < pool.size(); ++i) {
      const int64_t item = pool[i];
      catalog.sequel[item] = pool[(i + 1) % pool.size()];
      catalog.successors[item] = {catalog.sequel[item]};
      if (pool.size() > 3) {
        auto add_distinct = [&](size_t index) {
          // Advance past the item itself and past duplicates.
          for (size_t step = 0; step < pool.size(); ++step) {
            const int64_t candidate = pool[(index + step) % pool.size()];
            if (candidate == item) continue;
            auto& successors = catalog.successors[item];
            if (std::find(successors.begin(), successors.end(), candidate) !=
                successors.end()) {
              continue;
            }
            successors.push_back(candidate);
            return;
          }
        };
        add_distinct((i + 3) % pool.size());
        add_distinct((i * 7 + 5) % pool.size());
      }
    }
  }

  DELREC_RETURN_IF_ERROR(
      sink.BeginDataset(config.name, catalog, config.num_users));

  // Sampling tables: inclusive prefix sums, accumulated in the same
  // left-to-right order the linear scans summed in, so totals (and therefore
  // every draw) are bitwise unchanged.
  std::vector<std::vector<double>> genre_prefix(config.num_genres);
  for (int g = 0; g < config.num_genres; ++g) {
    const auto& pool = by_genre[g];
    auto& prefix = genre_prefix[g];
    prefix.resize(pool.size() + 1);
    prefix[0] = 0.0;
    for (size_t i = 0; i < pool.size(); ++i) {
      prefix[i + 1] =
          prefix[i] + static_cast<double>(catalog.items[pool[i]].popularity);
    }
  }
  std::vector<double> zipf_prefix(config.num_items + 1);
  zipf_prefix[0] = 0.0;
  for (std::size_t i = 1; i <= static_cast<std::size_t>(config.num_items);
       ++i) {
    zipf_prefix[i] =
        zipf_prefix[i - 1] + 1.0 / std::pow(i, config.popularity_exponent);
  }

  // Users: genre-preference Markov process with drift.
  std::vector<int64_t> events;
  events.reserve(static_cast<size_t>(config.max_sequence_length));
  for (int64_t u = 0; u < config.num_users; ++u) {
    events.clear();
    int preferred_genre =
        static_cast<int>(rng.UniformUint64(config.num_genres));
    // Sequence length: clamped geometric-like around the mean.
    const double spread = config.mean_sequence_length * 0.5;
    int64_t length = static_cast<int64_t>(std::llround(
        config.mean_sequence_length + rng.Normal(0.0, spread)));
    length = std::clamp(length, config.min_sequence_length,
                        config.max_sequence_length);
    int64_t last_item = -1;
    for (int64_t t = 0; t < length; ++t) {
      if (rng.Bernoulli(config.genre_drift_probability)) {
        // Drift to a neighbouring genre (preferences evolve gradually).
        preferred_genre = (preferred_genre + 1) % config.num_genres;
      }
      const int64_t item =
          SampleNextItem(catalog, last_item, preferred_genre, by_genre,
                         genre_prefix, zipf_prefix, config, rng);
      events.push_back(item);
      last_item = item;
    }
    DELREC_RETURN_IF_ERROR(sink.AddUser(u, events));
  }
  return sink.Finish();
}

GeneratorConfig MovieLens100KConfig() {
  GeneratorConfig config;
  config.name = "MovieLens-100K";
  config.num_users = 150;
  config.num_items = 220;
  config.num_genres = 8;
  config.mean_sequence_length = 26.0;
  config.max_sequence_length = 60;
  config.seed = 101;
  return config;
}

GeneratorConfig SteamConfig() {
  GeneratorConfig config;
  config.name = "Steam";
  config.num_users = 300;
  config.num_items = 350;
  config.num_genres = 10;
  config.mean_sequence_length = 12.0;
  config.max_sequence_length = 30;
  config.seed = 102;
  return config;
}

GeneratorConfig BeautyConfig() {
  GeneratorConfig config;
  config.name = "Beauty";
  config.num_users = 600;
  config.num_items = 400;
  config.num_genres = 10;
  config.mean_sequence_length = 7.0;
  config.max_sequence_length = 16;
  // Sparser feedback: weaker sequential signal, more noise (Amazon-style).
  config.markov_strength = 0.30;
  config.semantic_strength = 0.40;
  config.seed = 103;
  return config;
}

GeneratorConfig HomeKitchenConfig() {
  GeneratorConfig config;
  config.name = "Home & Kitchen";
  config.num_users = 800;
  config.num_items = 550;
  config.num_genres = 12;
  config.mean_sequence_length = 7.0;
  config.max_sequence_length = 16;
  config.markov_strength = 0.28;
  config.semantic_strength = 0.38;
  config.seed = 104;
  return config;
}

GeneratorConfig KuaiRecConfig() {
  GeneratorConfig config;
  config.name = "KuaiRec";
  config.num_users = 130;
  config.num_items = 110;
  config.num_genres = 6;
  config.mean_sequence_length = 18.0;
  config.max_sequence_length = 40;
  // Dense viewing logs: strong, clean signals.
  config.markov_strength = 0.45;
  config.semantic_strength = 0.40;
  config.seed = 105;
  return config;
}

std::vector<GeneratorConfig> AllPresetConfigs() {
  return {MovieLens100KConfig(), SteamConfig(), BeautyConfig(),
          HomeKitchenConfig(), KuaiRecConfig()};
}

Dataset FilterMinInteractions(const Dataset& dataset, int64_t min_count) {
  Dataset filtered = dataset;
  bool changed = true;
  while (changed) {
    changed = false;
    // Count item interactions over surviving users.
    std::unordered_map<int64_t, int64_t> item_counts;
    for (const UserSequence& sequence : filtered.sequences) {
      for (int64_t item : sequence.items) ++item_counts[item];
    }
    // Drop rare items from every sequence.
    for (UserSequence& sequence : filtered.sequences) {
      const size_t before = sequence.items.size();
      std::erase_if(sequence.items, [&](int64_t item) {
        return item_counts[item] < min_count;
      });
      if (sequence.items.size() != before) changed = true;
    }
    // Drop users that fell under the threshold.
    const size_t users_before = filtered.sequences.size();
    std::erase_if(filtered.sequences, [&](const UserSequence& sequence) {
      return static_cast<int64_t>(sequence.items.size()) < min_count;
    });
    if (filtered.sequences.size() != users_before) changed = true;
  }
  return filtered;
}

std::vector<int64_t> AppendColdStartUsers(Dataset& dataset, int64_t count,
                                          uint64_t seed) {
  util::Rng rng(seed);
  std::vector<int64_t> user_ids;
  int64_t next_user = 0;
  for (const UserSequence& sequence : dataset.sequences) {
    next_user = std::max(next_user, sequence.user + 1);
  }
  const Catalog& catalog = dataset.catalog;
  std::vector<std::vector<int64_t>> by_genre(catalog.num_genres);
  for (const Item& item : catalog.items) by_genre[item.genre].push_back(item.id);
  for (int64_t i = 0; i < count; ++i) {
    UserSequence sequence;
    sequence.user = next_user++;
    const int genre = static_cast<int>(rng.UniformUint64(catalog.num_genres));
    // 2 observed interactions; the evaluation target is sampled from the
    // same process, so a model that reads the titles can still infer genre.
    const auto& pool = by_genre[genre];
    int64_t first = pool[rng.UniformUint64(pool.size())];
    sequence.items.push_back(first);
    sequence.items.push_back(catalog.sequel[first]);
    user_ids.push_back(sequence.user);
    dataset.sequences.push_back(std::move(sequence));
  }
  return user_ids;
}

}  // namespace delrec::data
