#include "data/event_stream.h"

#include <algorithm>
#include <utility>

#include "util/check.h"
#include "util/failpoint.h"
#include "util/serialize.h"
#include "util/threadpool.h"

namespace delrec::data {
namespace {

constexpr uint64_t kFnvSeed = 1469598103934665603ULL;

// Uniform reservoir (algorithm R) that remembers arrival order so the final
// sample can be restored to stream order. cap <= 0 keeps everything.
class Reservoir {
 public:
  Reservoir(int64_t cap, util::Rng rng) : cap_(cap), rng_(std::move(rng)) {}

  void Offer(const Example& example) {
    const int64_t arrival = seen_++;
    if (cap_ <= 0 || static_cast<int64_t>(slots_.size()) < cap_) {
      slots_.emplace_back(arrival, example);
      return;
    }
    const uint64_t j =
        rng_.UniformUint64(static_cast<uint64_t>(arrival) + 1);
    if (j < static_cast<uint64_t>(cap_)) {
      slots_[j] = {arrival, example};
    }
  }

  std::vector<Example> TakeInStreamOrder() {
    std::sort(slots_.begin(), slots_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<Example> out;
    out.reserve(slots_.size());
    for (auto& [arrival, example] : slots_) out.push_back(std::move(example));
    slots_.clear();
    return out;
  }

 private:
  int64_t cap_ = 0;
  util::Rng rng_;
  int64_t seen_ = 0;
  std::vector<std::pair<int64_t, Example>> slots_;
};

}  // namespace

EventStream::EventStream(const MappedCatalog& catalog)
    : EventStream(catalog, 0, catalog.user_count()) {}

EventStream::EventStream(const Dataset& dataset)
    : EventStream(dataset, 0, static_cast<int64_t>(dataset.sequences.size())) {
}

EventStream::EventStream(const MappedCatalog& catalog, int64_t begin,
                         int64_t end)
    : mapped_(&catalog),
      begin_(begin),
      end_(end),
      next_(begin),
      released_through_(begin) {
  DELREC_CHECK_GE(begin, 0);
  DELREC_CHECK_LE(begin, end);
  DELREC_CHECK_LE(end, catalog.user_count());
}

EventStream::EventStream(const Dataset& dataset, int64_t begin, int64_t end)
    : dataset_(&dataset),
      begin_(begin),
      end_(end),
      next_(begin),
      released_through_(begin) {
  DELREC_CHECK_GE(begin, 0);
  DELREC_CHECK_LE(begin, end);
  DELREC_CHECK_LE(end, static_cast<int64_t>(dataset.sequences.size()));
}

int64_t EventStream::item_count() const {
  return mapped_ != nullptr ? mapped_->item_count() : dataset_->catalog.size();
}

void EventStream::Reset() {
  next_ = begin_;
  released_through_ = begin_;
  status_ = util::Status::Ok();
}

void EventStream::MaybeReleasePages() {
  if (mapped_ == nullptr) return;
  if (next_ - released_through_ >= kReleaseEveryUsers || next_ >= end_) {
    mapped_->ReleaseEvents(released_through_, next_);
    released_through_ = next_;
  }
}

bool EventStream::Next(UserRun* run) {
  if (!status_.ok() || next_ >= end_) return false;
  util::Failpoints& failpoints = util::Failpoints::Instance();
  status_ = failpoints.Check("data.stream.read");
  if (!status_.ok()) return false;
  const int64_t index = next_++;
  run->user_index = index;
  if (mapped_ != nullptr) {
    run->user = mapped_->user_id(index);
    status_ = mapped_->DecodeRun(index, &run->items);
    if (!status_.ok()) return false;
    MaybeReleasePages();
  } else {
    const UserSequence& sequence =
        dataset_->sequences[static_cast<size_t>(index)];
    run->user = sequence.user;
    run->items = sequence.items;
  }
  if (!run->items.empty() &&
      failpoints.ShouldCorrupt("data.stream.read.corrupt")) {
    // Simulate a decode of rotted bytes: an id outside the item universe.
    run->items[run->items.size() / 2] = item_count() + 1;
  }
  const int64_t items = item_count();
  for (int64_t item : run->items) {
    if (item < 0 || item >= items) {
      status_ = util::Status::DataLoss(
          "corrupt event run for stored user " + std::to_string(index) +
          ": item " + std::to_string(item) + " outside catalog of " +
          std::to_string(items) + " items");
      return false;
    }
  }
  return true;
}

util::StatusOr<Splits> SampleSplitsFromStream(
    EventStream& stream, const StreamSampleOptions& options) {
  DELREC_CHECK_GT(options.history_length, 0);
  DELREC_CHECK_GT(options.train_fraction, 0.0);
  DELREC_CHECK_LE(options.train_fraction + options.validation_fraction, 1.0);
  // Independent per-split generators: capping one split never shifts the
  // draws of another.
  util::Rng base(options.seed);
  Reservoir train(options.max_train, base.Fork());
  Reservoir validation(options.max_validation, base.Fork());
  Reservoir test(options.max_test, base.Fork());

  UserRun run;
  Example example;
  while (stream.Next(&run)) {
    const int64_t length = static_cast<int64_t>(run.items.size());
    for (int64_t t = 1; t < length; ++t) {
      example.user = run.user;
      const int64_t start = std::max<int64_t>(0, t - options.history_length);
      example.history.assign(run.items.begin() + start,
                             run.items.begin() + t);
      example.target = run.items[t];
      // Chronological 8:1:1 routing — identical to MakeSplits.
      const double fraction =
          static_cast<double>(t + 1) / static_cast<double>(length);
      if (fraction <= options.train_fraction) {
        train.Offer(example);
      } else if (fraction <=
                 options.train_fraction + options.validation_fraction) {
        validation.Offer(example);
      } else {
        test.Offer(example);
      }
    }
  }
  DELREC_RETURN_IF_ERROR(stream.status());

  Splits splits;
  splits.train = train.TakeInStreamOrder();
  splits.validation = validation.TakeInStreamOrder();
  splits.test = test.TakeInStreamOrder();
  return splits;
}

util::StatusOr<EventScanResult> ScanEvents(const MappedCatalog& catalog,
                                           int threads, int shard_count) {
  DELREC_CHECK_GT(shard_count, 0);
  const int64_t users = catalog.user_count();
  std::vector<uint64_t> shard_checksum(shard_count, kFnvSeed);
  std::vector<int64_t> shard_events(shard_count, 0);
  std::vector<util::Status> shard_status(shard_count);
  // Shard boundaries depend only on shard_count; threads pick up whole
  // shards by static partition and results merge in shard order below, so
  // the checksum is invariant to `threads`.
  util::ParallelForThreads(
      threads, shard_count, [&](int64_t begin, int64_t end, int) {
        UserRun run;
        for (int64_t s = begin; s < end; ++s) {
          const int64_t user_begin = users * s / shard_count;
          const int64_t user_end = users * (s + 1) / shard_count;
          EventStream stream(catalog, user_begin, user_end);
          uint64_t hash = kFnvSeed;
          int64_t count = 0;
          while (stream.Next(&run)) {
            hash = util::Fnv1a(&run.user, sizeof(run.user), hash);
            hash = util::Fnv1a(run.items.data(),
                               run.items.size() * sizeof(int64_t), hash);
            count += static_cast<int64_t>(run.items.size());
          }
          shard_status[s] = stream.status();
          shard_checksum[s] = hash;
          shard_events[s] = count;
          // Keep the scan's working set to one shard of pages.
          catalog.ReleaseEvents(user_begin, user_end);
        }
      });
  EventScanResult result;
  result.users = users;
  uint64_t combined = kFnvSeed;
  for (int s = 0; s < shard_count; ++s) {
    DELREC_RETURN_IF_ERROR(shard_status[s]);
    combined = util::Fnv1a(&shard_checksum[s], sizeof(uint64_t), combined);
    result.events += shard_events[s];
  }
  result.checksum = combined;
  return result;
}

}  // namespace delrec::data
