#ifndef DELREC_DATA_EVENT_STREAM_H_
#define DELREC_DATA_EVENT_STREAM_H_

#include <cstdint>
#include <vector>

#include "data/columnar.h"
#include "data/dataset.h"
#include "data/split.h"
#include "util/status.h"

namespace delrec::data {

/// One decoded user run yielded by an EventStream.
struct UserRun {
  int64_t user = 0;        // External user id.
  int64_t user_index = 0;  // Position in stored user order.
  std::vector<int64_t> items;  // Oldest first.
};

/// Sequential cursor over a contiguous range of stored users, backed either
/// by a MappedCatalog (out-of-core) or an in-RAM Dataset. Both backends
/// yield identical runs in identical order, which is what makes every
/// stream-fed computation (split sampling, training, eval) bit-identical
/// across storage modes by construction.
///
/// Iterator determinism contract: runs arrive in ascending user_index order
/// within [begin, end); a sharded consumer partitions users into fixed
/// ranges independent of thread count and merges per-shard results in shard
/// order, so results never depend on scheduling (see ScanEvents).
///
/// Failpoints: `data.stream.read` (fail mode) makes Next() stop with
/// kUnavailable; `data.stream.read.corrupt` (corrupt mode) injects an
/// out-of-range decoded item, which Next() converts into kDataLoss — the
/// same typed error a corrupted event run produces.
///
/// Errors are sticky: after Next() returns false, status() distinguishes
/// clean exhaustion (OK) from failure.
class EventStream {
 public:
  /// Streams all users of a mapped catalog / in-RAM dataset.
  explicit EventStream(const MappedCatalog& catalog);
  explicit EventStream(const Dataset& dataset);
  /// Streams stored users [begin, end) (a shard).
  EventStream(const MappedCatalog& catalog, int64_t begin, int64_t end);
  EventStream(const Dataset& dataset, int64_t begin, int64_t end);

  /// Advances to the next user run. Returns false at the end of the range or
  /// on error (check status()).
  bool Next(UserRun* run);

  const util::Status& status() const { return status_; }
  int64_t user_count() const { return end_ - begin_; }

  /// Rewinds to the start of the range and clears any sticky error.
  void Reset();

 private:
  // Mapped streams drop event-log pages behind the cursor every this many
  // users (and at exhaustion), so a full pass over an N-byte catalog keeps
  // only a page-window resident — the property bench_datalane's peak-RSS
  // gate measures. madvise only affects residency, never content, so this
  // is invisible to the determinism contract.
  static constexpr int64_t kReleaseEveryUsers = 4096;

  int64_t item_count() const;
  void MaybeReleasePages();

  const MappedCatalog* mapped_ = nullptr;
  const Dataset* dataset_ = nullptr;
  int64_t begin_ = 0;
  int64_t end_ = 0;
  int64_t next_ = 0;
  int64_t released_through_ = 0;
  util::Status status_;
};

/// Options for SampleSplitsFromStream. A max of 0 keeps every example (the
/// exact MakeSplits routing); a positive max reservoir-samples that split
/// down to the cap in one pass, holding O(max · history) memory however
/// large the stream is.
struct StreamSampleOptions {
  int64_t history_length = 10;
  double train_fraction = 0.8;
  double validation_fraction = 0.1;
  int64_t max_train = 0;
  int64_t max_validation = 0;
  int64_t max_test = 0;
  uint64_t seed = 1234;  // Drives the per-split reservoirs only.
};

/// Builds train/validation/test examples from a stream in one bounded-memory
/// pass. Example construction and chronological split routing match
/// MakeSplits exactly; capped splits are uniform reservoir samples restored
/// to stream order. Deterministic given (stream contents, options) — and
/// therefore identical for in-RAM and mapped backends of the same dataset.
util::StatusOr<Splits> SampleSplitsFromStream(
    EventStream& stream, const StreamSampleOptions& options);

/// Result of a full sharded scan of the event log.
struct EventScanResult {
  int64_t users = 0;
  int64_t events = 0;
  /// FNV-1a over (user id, decoded items) per shard, combined in shard
  /// order: invariant to the thread count that performed the scan.
  uint64_t checksum = 0;
};

/// Decodes every user run shard-parallel and folds a content checksum.
/// Shards are fixed ranges of stored users (shard_count of them) assigned to
/// threads by static partition; per-shard checksums are combined serially in
/// shard order, so the result is bit-identical for any `threads`. The
/// streaming-throughput probe of bench_datalane and the cheapest way to
/// verify two catalogs hold the same event log.
util::StatusOr<EventScanResult> ScanEvents(const MappedCatalog& catalog,
                                           int threads,
                                           int shard_count = 32);

}  // namespace delrec::data

#endif  // DELREC_DATA_EVENT_STREAM_H_
