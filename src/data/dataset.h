#ifndef DELREC_DATA_DATASET_H_
#define DELREC_DATA_DATASET_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace delrec::data {

/// One catalog item. Items carry textual titles (the paper's key point:
/// prompts use titles, not IDs, so LLMs can exploit semantics) and a latent
/// genre that title words correlate with.
struct Item {
  int64_t id = 0;
  std::string title;
  int genre = 0;
  float popularity = 1.0f;  // Base sampling weight (Zipf-distributed).
};

/// Read-only item-universe interface. Two implementations exist: the in-RAM
/// `Catalog` below and the mmap-backed `MappedCatalog` (data/columnar.h),
/// and every consumer (prompt building, vocab, baselines, serving) programs
/// against this so a million-item catalog never has to be materialized.
///
/// `title()` and `genre_name()` return views into storage owned by the
/// implementation: they stay valid exactly as long as the view object does.
/// Callers that outlive the view (serve snapshots, token caches) must copy.
class CatalogView {
 public:
  virtual ~CatalogView() = default;

  virtual int64_t item_count() const = 0;
  virtual int genre_count() const = 0;
  virtual std::string_view genre_name(int genre) const = 0;
  virtual std::string_view title(int64_t item) const = 0;
  virtual int genre(int64_t item) const = 0;
  virtual float popularity(int64_t item) const = 0;
  /// Primary "sequel" link (the franchise successor — also what the
  /// world-knowledge corpus teaches the LLM).
  virtual int64_t sequel_of(int64_t item) const = 0;
  /// Full successor distribution, weighted by kSuccessorWeights;
  /// successors_of(i)[0] == sequel_of(i).
  virtual std::span<const int64_t> successors_of(int64_t item) const = 0;

  static constexpr double kSuccessorWeights[3] = {0.55, 0.25, 0.20};
};

/// The in-RAM item universe of a dataset. Public members are the primary
/// representation (the generator and tests build them directly); the
/// CatalogView overrides adapt them for streaming-agnostic consumers.
struct Catalog : public CatalogView {
  std::vector<Item> items;
  int num_genres = 0;
  std::vector<std::string> genre_names;
  /// Primary "sequel" link per item.
  std::vector<int64_t> sequel;
  /// Full successor distribution per item: real transitions are multimodal,
  /// so the Markov step samples among 3 same-genre successors with weights
  /// kSuccessorWeights (successors[i][0] == sequel[i]).
  std::vector<std::vector<int64_t>> successors;

  int64_t size() const { return static_cast<int64_t>(items.size()); }

  int64_t item_count() const override { return size(); }
  int genre_count() const override { return num_genres; }
  std::string_view genre_name(int g) const override { return genre_names[g]; }
  std::string_view title(int64_t item) const override {
    return items[item].title;
  }
  int genre(int64_t item) const override { return items[item].genre; }
  float popularity(int64_t item) const override {
    return items[item].popularity;
  }
  int64_t sequel_of(int64_t item) const override { return sequel[item]; }
  std::span<const int64_t> successors_of(int64_t item) const override {
    return successors[item];
  }
};

/// One user's chronological interaction history.
struct UserSequence {
  int64_t user = 0;
  std::vector<int64_t> items;  // Item ids, oldest first.
};

/// A full dataset: catalog + user histories.
struct Dataset {
  std::string name;
  Catalog catalog;
  std::vector<UserSequence> sequences;
};

/// Table-I style statistics.
struct DatasetStats {
  int64_t num_sequences = 0;
  int64_t num_items = 0;
  int64_t num_interactions = 0;
  double sparsity = 0.0;  // 1 - interactions / (sequences · items).
};

DatasetStats ComputeStats(const Dataset& dataset);

/// Generator knobs. The defaults plant BOTH signals DELRec needs:
///  * a sequential signal (item→sequel transitions) learnable from IDs, and
///  * a semantic signal (genre drift visible through title words) learnable
///    only by a model that understands titles.
struct GeneratorConfig {
  std::string name = "synthetic";
  int64_t num_users = 200;
  int64_t num_items = 400;
  int num_genres = 8;
  int64_t min_sequence_length = 5;
  int64_t max_sequence_length = 40;
  double mean_sequence_length = 20.0;
  double popularity_exponent = 0.7;   // Zipf skew of item popularity.
  double markov_strength = 0.35;      // P(next = sequel of last item).
  double semantic_strength = 0.45;    // P(next ~ current preferred genre).
  double genre_drift_probability = 0.12;  // Preferred-genre Markov drift.
  uint64_t seed = 1;
};

/// Receives one generated dataset, piece by piece, in a fixed order:
/// BeginDataset once, AddUser once per user in ascending user order, Finish
/// once. Item columns are bounded by num_items and arrive fully built; only
/// the per-user event log streams, which is what lets a disk-backed sink
/// (data::CatalogFileWriter) write 1M+ user catalogs in bounded memory.
class DatasetSink {
 public:
  virtual ~DatasetSink() = default;

  virtual util::Status BeginDataset(const std::string& name,
                                    const Catalog& catalog,
                                    int64_t num_users) = 0;
  virtual util::Status AddUser(int64_t user,
                               const std::vector<int64_t>& items) = 0;
  virtual util::Status Finish() = 0;
};

/// Synthesizes a dataset from the latent user/item process described in
/// DESIGN.md §2. Deterministic given config.seed.
Dataset GenerateDataset(const GeneratorConfig& config);

/// Core of GenerateDataset: streams the same deterministic process into
/// `sink`. In-RAM and direct-to-disk generation share this path, so for a
/// given config they are bit-identical by construction. Holds O(num_items)
/// memory regardless of num_users.
util::Status GenerateDatasetTo(const GeneratorConfig& config,
                               DatasetSink& sink);

/// Paper-preset configs (scaled to CPU budget; relative size and sparsity
/// ordering of Table I preserved: H&K > Beauty > Steam > ML-100K; KuaiRec
/// densest).
GeneratorConfig MovieLens100KConfig();
GeneratorConfig SteamConfig();
GeneratorConfig BeautyConfig();
GeneratorConfig HomeKitchenConfig();
GeneratorConfig KuaiRecConfig();

/// All five presets in paper order.
std::vector<GeneratorConfig> AllPresetConfigs();

/// 5-core filtering: drops users and items with < min_count interactions,
/// iterating until stable (the paper filters both at 5).
Dataset FilterMinInteractions(const Dataset& dataset, int64_t min_count = 5);

/// Appends `count` cold-start users (1–2 interactions each) drawn from the
/// same latent process; used by the RQ5 cold-start experiment. Returns their
/// user ids.
std::vector<int64_t> AppendColdStartUsers(Dataset& dataset, int64_t count,
                                          uint64_t seed);

}  // namespace delrec::data

#endif  // DELREC_DATA_DATASET_H_
