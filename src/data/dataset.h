#ifndef DELREC_DATA_DATASET_H_
#define DELREC_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace delrec::data {

/// One catalog item. Items carry textual titles (the paper's key point:
/// prompts use titles, not IDs, so LLMs can exploit semantics) and a latent
/// genre that title words correlate with.
struct Item {
  int64_t id = 0;
  std::string title;
  int genre = 0;
  float popularity = 1.0f;  // Base sampling weight (Zipf-distributed).
};

/// The item universe of a dataset.
struct Catalog {
  std::vector<Item> items;
  int num_genres = 0;
  std::vector<std::string> genre_names;
  /// Primary "sequel" link per item (the franchise successor — also what
  /// the world-knowledge corpus teaches the LLM).
  std::vector<int64_t> sequel;
  /// Full successor distribution per item: real transitions are multimodal,
  /// so the Markov step samples among 3 same-genre successors with weights
  /// kSuccessorWeights (successors[i][0] == sequel[i]).
  std::vector<std::vector<int64_t>> successors;

  static constexpr double kSuccessorWeights[3] = {0.55, 0.25, 0.20};

  int64_t size() const { return static_cast<int64_t>(items.size()); }
};

/// One user's chronological interaction history.
struct UserSequence {
  int64_t user = 0;
  std::vector<int64_t> items;  // Item ids, oldest first.
};

/// A full dataset: catalog + user histories.
struct Dataset {
  std::string name;
  Catalog catalog;
  std::vector<UserSequence> sequences;
};

/// Table-I style statistics.
struct DatasetStats {
  int64_t num_sequences = 0;
  int64_t num_items = 0;
  int64_t num_interactions = 0;
  double sparsity = 0.0;  // 1 - interactions / (sequences · items).
};

DatasetStats ComputeStats(const Dataset& dataset);

/// Generator knobs. The defaults plant BOTH signals DELRec needs:
///  * a sequential signal (item→sequel transitions) learnable from IDs, and
///  * a semantic signal (genre drift visible through title words) learnable
///    only by a model that understands titles.
struct GeneratorConfig {
  std::string name = "synthetic";
  int64_t num_users = 200;
  int64_t num_items = 400;
  int num_genres = 8;
  int64_t min_sequence_length = 5;
  int64_t max_sequence_length = 40;
  double mean_sequence_length = 20.0;
  double popularity_exponent = 0.7;   // Zipf skew of item popularity.
  double markov_strength = 0.35;      // P(next = sequel of last item).
  double semantic_strength = 0.45;    // P(next ~ current preferred genre).
  double genre_drift_probability = 0.12;  // Preferred-genre Markov drift.
  uint64_t seed = 1;
};

/// Synthesizes a dataset from the latent user/item process described in
/// DESIGN.md §2. Deterministic given config.seed.
Dataset GenerateDataset(const GeneratorConfig& config);

/// Paper-preset configs (scaled to CPU budget; relative size and sparsity
/// ordering of Table I preserved: H&K > Beauty > Steam > ML-100K; KuaiRec
/// densest).
GeneratorConfig MovieLens100KConfig();
GeneratorConfig SteamConfig();
GeneratorConfig BeautyConfig();
GeneratorConfig HomeKitchenConfig();
GeneratorConfig KuaiRecConfig();

/// All five presets in paper order.
std::vector<GeneratorConfig> AllPresetConfigs();

/// 5-core filtering: drops users and items with < min_count interactions,
/// iterating until stable (the paper filters both at 5).
Dataset FilterMinInteractions(const Dataset& dataset, int64_t min_count = 5);

/// Appends `count` cold-start users (1–2 interactions each) drawn from the
/// same latent process; used by the RQ5 cold-start experiment. Returns their
/// user ids.
std::vector<int64_t> AppendColdStartUsers(Dataset& dataset, int64_t count,
                                          uint64_t seed);

}  // namespace delrec::data

#endif  // DELREC_DATA_DATASET_H_
