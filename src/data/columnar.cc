#include "data/columnar.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "util/check.h"
#include "util/failpoint.h"

namespace delrec::data {
namespace {

// Matches util::Fnv1a's default seed so chained per-chunk hashing equals a
// single whole-section call.
constexpr uint64_t kFnvSeed = 1469598103934665603ULL;

constexpr uint64_t kReleaseThresholdBytes = 4u << 20;

uint32_t ZigzagEncode(int32_t value) {
  return (static_cast<uint32_t>(value) << 1) ^
         static_cast<uint32_t>(value >> 31);
}

int32_t ZigzagDecode(uint32_t value) {
  return static_cast<int32_t>((value >> 1) ^ (~(value & 1) + 1));
}

template <typename T>
T LoadScalar(const unsigned char* bytes) {
  T value;
  std::memcpy(&value, bytes, sizeof(T));
  return value;
}

template <typename T>
void AppendScalar(std::vector<unsigned char>& buffer, T value) {
  const unsigned char* bytes = reinterpret_cast<const unsigned char*>(&value);
  buffer.insert(buffer.end(), bytes, bytes + sizeof(T));
}

// Per-user spill record: the only per-user state the writer keeps, and it
// lives on disk, not in RAM.
struct SpillRecord {
  int64_t user = 0;
  uint64_t count = 0;
};
static_assert(sizeof(SpillRecord) == 16);

// Hashes a mapped range in 1MB windows; when `release` is set, drops each
// window's pages behind the scan so verifying a multi-GB section costs a
// window of RSS, not the section size.
uint64_t ChecksumMappedRange(const util::MemoryMappedFile& file,
                             uint64_t offset, uint64_t length, bool release) {
  constexpr uint64_t kWindow = 1u << 20;
  uint64_t hash = kFnvSeed;
  uint64_t done = 0;
  while (done < length) {
    const uint64_t n = std::min(kWindow, length - done);
    hash = util::Fnv1a(file.data() + offset + done, n, hash);
    if (release) file.AdviseDontNeed(offset + done, n);
    done += n;
  }
  return hash;
}

}  // namespace

CatalogFileWriter::CatalogFileWriter(std::string path)
    : path_(std::move(path)), spill_path_(path_ + ".spill") {}

CatalogFileWriter::~CatalogFileWriter() { CloseSpill(); }

void CatalogFileWriter::CloseSpill() {
  if (spill_ != nullptr) {
    std::fclose(spill_);
    std::remove(spill_path_.c_str());
    spill_ = nullptr;
  }
}

util::Status CatalogFileWriter::BeginDataset(const std::string& name,
                                             const Catalog& catalog,
                                             int64_t num_users) {
  DELREC_CHECK(!begun_) << "BeginDataset called twice";
  begun_ = true;
  (void)num_users;  // Counts are recomputed from the stream and back-patched.
  if (catalog.size() >
      static_cast<int64_t>(std::numeric_limits<int32_t>::max())) {
    return util::Status::InvalidArgument(
        "catalog format v1 caps items at 2^31-1");
  }
  catalog_ = catalog;
  name_ = name;
  DELREC_ASSIGN_OR_RETURN(
      util::AtomicFileWriter writer,
      util::AtomicFileWriter::Create(path_, "data.catalog.write"));
  writer_.emplace(std::move(writer));
  const unsigned char zeros[kCatalogSuperblockBytes] = {};
  const util::Status superblock_status =
      writer_->Append(zeros, sizeof(zeros));
  if (!superblock_status.ok()) {
    writer_.reset();
    return superblock_status;
  }
  events_offset_ = writer_->offset();
  events_checksum_ = kFnvSeed;
  spill_ = std::fopen(spill_path_.c_str(), "wb+");
  if (spill_ == nullptr) {
    return util::Status::Unavailable("cannot open catalog spill: " +
                                     spill_path_);
  }
  return util::Status::Ok();
}

util::Status CatalogFileWriter::AddUser(int64_t user,
                                        const std::vector<int64_t>& items) {
  DELREC_CHECK(begun_ && !finished_) << "AddUser outside Begin/Finish";
  if (!writer_.has_value()) {
    return util::Status::Unavailable("catalog writer already failed: " +
                                     path_);
  }
  encode_buffer_.clear();
  encode_buffer_.reserve(items.size() * sizeof(uint32_t));
  int64_t prev = 0;
  bool first = true;
  for (int64_t item : items) {
    DELREC_CHECK_GE(item, 0);
    DELREC_CHECK_LT(item, catalog_.size());
    const int64_t delta = first ? item : item - prev;
    AppendScalar(encode_buffer_,
                 ZigzagEncode(static_cast<int32_t>(delta)));
    prev = item;
    first = false;
  }
  const util::Status append_status =
      writer_->Append(encode_buffer_.data(), encode_buffer_.size());
  if (!append_status.ok()) {
    writer_.reset();  // The underlying writer aborted; latch the failure.
    return append_status;
  }
  events_checksum_ =
      util::Fnv1a(encode_buffer_.data(), encode_buffer_.size(),
                  events_checksum_);
  const SpillRecord record{user, items.size()};
  if (std::fwrite(&record, sizeof(record), 1, spill_) != 1) {
    return util::Status::Unavailable("catalog spill write: " + spill_path_);
  }
  ++num_users_;
  num_events_ += items.size();
  return util::Status::Ok();
}

util::Status CatalogFileWriter::AlignTo8() {
  const unsigned char zeros[8] = {};
  const uint64_t pad = (8 - writer_->offset() % 8) % 8;
  if (pad > 0) DELREC_RETURN_IF_ERROR(writer_->Append(zeros, pad));
  return util::Status::Ok();
}

util::Status CatalogFileWriter::AppendSection(CatalogSection id,
                                              const void* bytes,
                                              uint64_t length) {
  SectionRecord record;
  record.id = static_cast<uint32_t>(id);
  record.offset = writer_->offset();
  record.length = length;
  record.checksum = util::Fnv1a(bytes, length);
  DELREC_RETURN_IF_ERROR(writer_->Append(bytes, length));
  sections_.push_back(record);
  return AlignTo8();
}

util::Status CatalogFileWriter::WriteUserSections() {
  constexpr size_t kChunkRecords = 4096;
  std::vector<SpillRecord> records(kChunkRecords);
  std::vector<unsigned char> column;

  // Two streaming passes over the spill: user ids, then cumulative event
  // offsets. Memory stays O(chunk) however many users were written.
  for (int pass = 0; pass < 2; ++pass) {
    if (std::fflush(spill_) != 0 || std::fseek(spill_, 0, SEEK_SET) != 0) {
      return util::Status::Unavailable("catalog spill rewind: " + spill_path_);
    }
    SectionRecord section;
    section.id = static_cast<uint32_t>(pass == 0 ? CatalogSection::kUserIds
                                                 : CatalogSection::kEventOffsets);
    section.offset = writer_->offset();
    uint64_t checksum = kFnvSeed;
    uint64_t cumulative = 0;
    int64_t remaining = num_users_;
    bool emitted_leading_zero = false;
    while (remaining > 0 || (pass == 1 && !emitted_leading_zero)) {
      const size_t n =
          std::min<size_t>(kChunkRecords, static_cast<size_t>(remaining));
      if (n > 0 &&
          std::fread(records.data(), sizeof(SpillRecord), n, spill_) != n) {
        return util::Status::Unavailable("catalog spill read: " + spill_path_);
      }
      column.clear();
      if (pass == 1 && !emitted_leading_zero) {
        AppendScalar(column, static_cast<uint64_t>(0));
        emitted_leading_zero = true;
      }
      for (size_t i = 0; i < n; ++i) {
        if (pass == 0) {
          AppendScalar(column, records[i].user);
        } else {
          cumulative += records[i].count;
          AppendScalar(column, cumulative);
        }
      }
      DELREC_RETURN_IF_ERROR(writer_->Append(column.data(), column.size()));
      checksum = util::Fnv1a(column.data(), column.size(), checksum);
      remaining -= static_cast<int64_t>(n);
    }
    section.length = writer_->offset() - section.offset;
    section.checksum = checksum;
    sections_.push_back(section);
    DELREC_RETURN_IF_ERROR(AlignTo8());
  }
  return util::Status::Ok();
}

util::Status CatalogFileWriter::WriteItemSections() {
  const int64_t n = catalog_.size();

  DELREC_RETURN_IF_ERROR(
      AppendSection(CatalogSection::kName, name_.data(), name_.size()));

  std::vector<unsigned char> genre_buffer;
  AppendScalar(genre_buffer,
               static_cast<uint32_t>(catalog_.genre_names.size()));
  for (const std::string& genre_name : catalog_.genre_names) {
    AppendScalar(genre_buffer, static_cast<uint32_t>(genre_name.size()));
    genre_buffer.insert(genre_buffer.end(), genre_name.begin(),
                        genre_name.end());
  }
  DELREC_RETURN_IF_ERROR(AppendSection(CatalogSection::kGenreNames,
                                       genre_buffer.data(),
                                       genre_buffer.size()));

  std::vector<uint64_t> offsets(n + 1, 0);
  std::string title_bytes;
  for (int64_t i = 0; i < n; ++i) {
    title_bytes += catalog_.items[i].title;
    offsets[i + 1] = title_bytes.size();
  }
  DELREC_RETURN_IF_ERROR(AppendSection(CatalogSection::kTitleOffsets,
                                       offsets.data(),
                                       offsets.size() * sizeof(uint64_t)));
  DELREC_RETURN_IF_ERROR(AppendSection(CatalogSection::kTitleBytes,
                                       title_bytes.data(),
                                       title_bytes.size()));

  std::vector<int32_t> genres(n);
  std::vector<float> popularity(n);
  for (int64_t i = 0; i < n; ++i) {
    genres[i] = catalog_.items[i].genre;
    popularity[i] = catalog_.items[i].popularity;
  }
  DELREC_RETURN_IF_ERROR(AppendSection(CatalogSection::kItemGenres,
                                       genres.data(),
                                       genres.size() * sizeof(int32_t)));
  DELREC_RETURN_IF_ERROR(AppendSection(CatalogSection::kItemPopularity,
                                       popularity.data(),
                                       popularity.size() * sizeof(float)));
  DELREC_RETURN_IF_ERROR(AppendSection(CatalogSection::kItemSequel,
                                       catalog_.sequel.data(),
                                       catalog_.sequel.size() *
                                           sizeof(int64_t)));

  std::vector<int64_t> successor_items;
  for (int64_t i = 0; i < n; ++i) {
    const auto& successors = catalog_.successors[i];
    successor_items.insert(successor_items.end(), successors.begin(),
                           successors.end());
    offsets[i + 1] = successor_items.size();
  }
  offsets[0] = 0;
  DELREC_RETURN_IF_ERROR(AppendSection(CatalogSection::kSuccessorOffsets,
                                       offsets.data(),
                                       offsets.size() * sizeof(uint64_t)));
  return AppendSection(CatalogSection::kSuccessorItems,
                       successor_items.data(),
                       successor_items.size() * sizeof(int64_t));
}

util::Status CatalogFileWriter::Finish() {
  DELREC_CHECK(begun_ && !finished_) << "Finish outside Begin/Finish";
  finished_ = true;
  if (!writer_.has_value()) {
    CloseSpill();
    return util::Status::Unavailable("catalog writer already failed: " +
                                     path_);
  }
  auto finish = [&]() -> util::Status {
    SectionRecord events;
    events.id = static_cast<uint32_t>(CatalogSection::kEvents);
    events.offset = events_offset_;
    events.length = num_events_ * sizeof(uint32_t);
    events.checksum = events_checksum_;
    sections_.push_back(events);
    DELREC_RETURN_IF_ERROR(AlignTo8());
    DELREC_RETURN_IF_ERROR(WriteUserSections());
    DELREC_RETURN_IF_ERROR(WriteItemSections());

    const uint64_t directory_offset = writer_->offset();
    uint64_t directory_checksum = kFnvSeed;
    for (const SectionRecord& section : sections_) {
      std::vector<unsigned char> record;
      AppendScalar(record, section.id);
      AppendScalar(record, section.flags);
      AppendScalar(record, section.offset);
      AppendScalar(record, section.length);
      AppendScalar(record, section.checksum);
      DELREC_CHECK_EQ(record.size(), kCatalogDirectoryRecordBytes);
      DELREC_RETURN_IF_ERROR(writer_->Append(record.data(), record.size()));
      directory_checksum =
          util::Fnv1a(record.data(), record.size(), directory_checksum);
    }
    DELREC_RETURN_IF_ERROR(
        writer_->Append(&directory_checksum, sizeof(directory_checksum)));

    std::vector<unsigned char> superblock;
    superblock.insert(superblock.end(), kCatalogMagic, kCatalogMagic + 8);
    AppendScalar(superblock, kCatalogVersion);
    AppendScalar(superblock, kCatalogEndianTag);
    AppendScalar(superblock, directory_offset);
    AppendScalar(superblock, static_cast<uint32_t>(sections_.size()));
    AppendScalar(superblock, static_cast<uint32_t>(catalog_.num_genres));
    AppendScalar(superblock, static_cast<uint64_t>(catalog_.size()));
    AppendScalar(superblock, static_cast<uint64_t>(num_users_));
    AppendScalar(superblock, num_events_);
    AppendScalar(superblock, util::Fnv1a(superblock.data(), 56));
    DELREC_CHECK_EQ(superblock.size(), kCatalogSuperblockBytes);
    DELREC_RETURN_IF_ERROR(
        writer_->PatchAt(0, superblock.data(), superblock.size()));
    return writer_->Commit();
  };
  const util::Status status = finish();
  if (!status.ok()) writer_.reset();
  CloseSpill();
  return status;
}

util::Status WriteCatalogFile(const Dataset& dataset,
                              const std::string& path) {
  CatalogFileWriter writer(path);
  DELREC_RETURN_IF_ERROR(writer.BeginDataset(
      dataset.name, dataset.catalog,
      static_cast<int64_t>(dataset.sequences.size())));
  for (const UserSequence& sequence : dataset.sequences) {
    DELREC_RETURN_IF_ERROR(writer.AddUser(sequence.user, sequence.items));
  }
  return writer.Finish();
}

util::Status GenerateCatalogFile(const GeneratorConfig& config,
                                 const std::string& path) {
  CatalogFileWriter writer(path);
  return GenerateDatasetTo(config, writer);
}

util::StatusOr<MappedCatalog> MappedCatalog::Open(const std::string& path) {
  DELREC_ASSIGN_OR_RETURN(util::MemoryMappedFile file,
                          util::MemoryMappedFile::Open(path));
  if (file.size() < kCatalogSuperblockBytes) {
    return util::Status::DataLoss("catalog truncated before superblock: " +
                                  path);
  }
  const unsigned char* superblock = file.data();
  if (std::memcmp(superblock, kCatalogMagic, sizeof(kCatalogMagic)) != 0) {
    return util::Status::InvalidArgument("not a DELREC catalog: " + path);
  }
  const uint32_t version = LoadScalar<uint32_t>(superblock + 8);
  if (version != kCatalogVersion) {
    return util::Status::InvalidArgument(
        "unsupported catalog version " + std::to_string(version) + ": " +
        path);
  }
  const uint32_t endian_tag = LoadScalar<uint32_t>(superblock + 12);
  if (endian_tag != kCatalogEndianTag) {
    return util::Status::InvalidArgument(
        "catalog written with a different byte order: " + path);
  }
  if (LoadScalar<uint64_t>(superblock + 56) !=
      util::Fnv1a(superblock, 56)) {
    return util::Status::DataLoss("catalog superblock checksum mismatch: " +
                                  path);
  }

  MappedCatalog catalog;
  const uint64_t directory_offset = LoadScalar<uint64_t>(superblock + 16);
  const uint32_t section_count = LoadScalar<uint32_t>(superblock + 24);
  catalog.num_genres_ =
      static_cast<int>(LoadScalar<uint32_t>(superblock + 28));
  catalog.num_items_ =
      static_cast<int64_t>(LoadScalar<uint64_t>(superblock + 32));
  catalog.num_users_ =
      static_cast<int64_t>(LoadScalar<uint64_t>(superblock + 40));
  catalog.num_events_ =
      static_cast<int64_t>(LoadScalar<uint64_t>(superblock + 48));
  if (catalog.num_items_ >
          static_cast<int64_t>(std::numeric_limits<int32_t>::max()) ||
      catalog.num_genres_ < 0 || catalog.num_genres_ > 4096 ||
      catalog.num_users_ < 0 || catalog.num_events_ < 0) {
    return util::Status::DataLoss("implausible catalog superblock counts: " +
                                  path);
  }

  // Directory: bounds first, then its own checksum, then per-record bounds.
  constexpr uint32_t kMaxSections = 64;
  if (section_count > kMaxSections) {
    return util::Status::DataLoss("implausible catalog section count: " +
                                  path);
  }
  const uint64_t directory_bytes =
      static_cast<uint64_t>(section_count) * kCatalogDirectoryRecordBytes;
  // The directory + trailing checksum must end exactly at EOF: a shorter
  // file is a truncation, a longer one a concatenation or partial overwrite
  // — either way not the file the writer committed.
  if (directory_offset < kCatalogSuperblockBytes ||
      directory_offset % 8 != 0 || directory_offset > file.size() ||
      directory_bytes + sizeof(uint64_t) !=
          file.size() - directory_offset) {
    return util::Status::DataLoss("catalog directory out of bounds: " + path);
  }
  const unsigned char* directory = file.data() + directory_offset;
  if (LoadScalar<uint64_t>(directory + directory_bytes) !=
      util::Fnv1a(directory, directory_bytes)) {
    return util::Status::DataLoss("catalog directory checksum mismatch: " +
                                  path);
  }

  struct Section {
    uint64_t offset = 0;
    uint64_t length = 0;
    uint64_t checksum = 0;
    bool present = false;
  };
  Section sections[static_cast<size_t>(CatalogSection::kEvents) + 1];
  for (uint32_t i = 0; i < section_count; ++i) {
    const unsigned char* record =
        directory + i * kCatalogDirectoryRecordBytes;
    const uint32_t id = LoadScalar<uint32_t>(record);
    Section section;
    section.offset = LoadScalar<uint64_t>(record + 8);
    section.length = LoadScalar<uint64_t>(record + 16);
    section.checksum = LoadScalar<uint64_t>(record + 24);
    section.present = true;
    if (section.offset < kCatalogSuperblockBytes ||
        section.offset % 8 != 0 || section.offset > directory_offset ||
        section.length > directory_offset - section.offset) {
      return util::Status::DataLoss("catalog section out of bounds: " + path);
    }
    if (id < 1 || id > static_cast<uint32_t>(CatalogSection::kEvents)) {
      continue;  // Unknown sections are skippable by design (flags/ids).
    }
    if (sections[id].present) {
      return util::Status::DataLoss("duplicate catalog section " +
                                    std::to_string(id) + ": " + path);
    }
    sections[id] = section;
  }
  auto require = [&](CatalogSection id,
                     uint64_t expected_length) -> util::StatusOr<Section> {
    const Section& section = sections[static_cast<size_t>(id)];
    if (!section.present) {
      return util::Status::DataLoss(
          "catalog missing section " +
          std::to_string(static_cast<uint32_t>(id)) + ": " + path);
    }
    if (expected_length != std::numeric_limits<uint64_t>::max() &&
        section.length != expected_length) {
      return util::Status::DataLoss(
          "catalog section " + std::to_string(static_cast<uint32_t>(id)) +
          " size mismatch: " + path);
    }
    // Verify the section checksum in a bounded-RSS streaming pass. Large
    // sections (the event log) get their pages released behind the scan.
    if (ChecksumMappedRange(file, section.offset, section.length,
                            section.length > kReleaseThresholdBytes) !=
        section.checksum) {
      return util::Status::DataLoss(
          "catalog section " + std::to_string(static_cast<uint32_t>(id)) +
          " checksum mismatch: " + path);
    }
    return section;
  };
  constexpr uint64_t kAnyLength = std::numeric_limits<uint64_t>::max();
  const uint64_t items = static_cast<uint64_t>(catalog.num_items_);
  const uint64_t users = static_cast<uint64_t>(catalog.num_users_);
  const uint64_t events = static_cast<uint64_t>(catalog.num_events_);
  DELREC_ASSIGN_OR_RETURN(const Section name_section,
                          require(CatalogSection::kName, kAnyLength));
  DELREC_ASSIGN_OR_RETURN(const Section genre_section,
                          require(CatalogSection::kGenreNames, kAnyLength));
  DELREC_ASSIGN_OR_RETURN(
      const Section title_offsets,
      require(CatalogSection::kTitleOffsets, (items + 1) * 8));
  DELREC_ASSIGN_OR_RETURN(const Section title_bytes,
                          require(CatalogSection::kTitleBytes, kAnyLength));
  DELREC_ASSIGN_OR_RETURN(const Section item_genres,
                          require(CatalogSection::kItemGenres, items * 4));
  DELREC_ASSIGN_OR_RETURN(
      const Section item_popularity,
      require(CatalogSection::kItemPopularity, items * 4));
  DELREC_ASSIGN_OR_RETURN(const Section item_sequel,
                          require(CatalogSection::kItemSequel, items * 8));
  DELREC_ASSIGN_OR_RETURN(
      const Section successor_offsets,
      require(CatalogSection::kSuccessorOffsets, (items + 1) * 8));
  DELREC_ASSIGN_OR_RETURN(
      const Section successor_items,
      require(CatalogSection::kSuccessorItems, kAnyLength));
  DELREC_ASSIGN_OR_RETURN(const Section user_ids,
                          require(CatalogSection::kUserIds, users * 8));
  DELREC_ASSIGN_OR_RETURN(
      const Section event_offsets,
      require(CatalogSection::kEventOffsets, (users + 1) * 8));
  DELREC_ASSIGN_OR_RETURN(const Section event_section,
                          require(CatalogSection::kEvents, events * 4));
  if (successor_items.length % 8 != 0) {
    return util::Status::DataLoss("catalog successor column misaligned: " +
                                  path);
  }

  catalog.name_.assign(
      reinterpret_cast<const char*>(file.data() + name_section.offset),
      name_section.length);

  // Genre names: length-prefixed strings; count must match the superblock.
  {
    const unsigned char* cursor = file.data() + genre_section.offset;
    uint64_t remaining = genre_section.length;
    if (remaining < 4) {
      return util::Status::DataLoss("catalog genre table truncated: " + path);
    }
    const uint32_t count = LoadScalar<uint32_t>(cursor);
    cursor += 4;
    remaining -= 4;
    if (count != static_cast<uint32_t>(catalog.num_genres_)) {
      return util::Status::DataLoss("catalog genre count mismatch: " + path);
    }
    catalog.genre_names_.reserve(count);
    for (uint32_t g = 0; g < count; ++g) {
      if (remaining < 4) {
        return util::Status::DataLoss("catalog genre table truncated: " +
                                      path);
      }
      const uint32_t length = LoadScalar<uint32_t>(cursor);
      cursor += 4;
      remaining -= 4;
      if (length > remaining) {
        return util::Status::DataLoss("catalog genre table truncated: " +
                                      path);
      }
      catalog.genre_names_.emplace_back(
          reinterpret_cast<const char*>(cursor), length);
      cursor += length;
      remaining -= length;
    }
    if (remaining != 0) {
      return util::Status::DataLoss("catalog genre table trailing bytes: " +
                                    path);
    }
  }

  catalog.title_offsets_ =
      reinterpret_cast<const uint64_t*>(file.data() + title_offsets.offset);
  catalog.title_bytes_ =
      reinterpret_cast<const char*>(file.data() + title_bytes.offset);
  catalog.item_genres_ =
      reinterpret_cast<const int32_t*>(file.data() + item_genres.offset);
  catalog.item_popularity_ =
      reinterpret_cast<const float*>(file.data() + item_popularity.offset);
  catalog.item_sequel_ =
      reinterpret_cast<const int64_t*>(file.data() + item_sequel.offset);
  catalog.successor_offsets_ = reinterpret_cast<const uint64_t*>(
      file.data() + successor_offsets.offset);
  catalog.successor_items_ =
      reinterpret_cast<const int64_t*>(file.data() + successor_items.offset);
  catalog.user_ids_ =
      reinterpret_cast<const int64_t*>(file.data() + user_ids.offset);
  catalog.event_offsets_ =
      reinterpret_cast<const uint64_t*>(file.data() + event_offsets.offset);
  catalog.events_ =
      reinterpret_cast<const uint32_t*>(file.data() + event_section.offset);
  catalog.events_file_offset_ = event_section.offset;
  catalog.event_offsets_file_offset_ = event_offsets.offset;
  catalog.user_ids_file_offset_ = user_ids.offset;

  // Offset tables must be monotone and land exactly on their data columns;
  // once this holds, every accessor read is in-bounds by construction.
  auto check_offsets = [&](const uint64_t* table, uint64_t count,
                           uint64_t end_value,
                           const char* what) -> util::Status {
    if (table[0] != 0) {
      return util::Status::DataLoss(std::string("catalog ") + what +
                                    " offsets corrupt: " + path);
    }
    for (uint64_t i = 0; i < count; ++i) {
      if (table[i + 1] < table[i]) {
        return util::Status::DataLoss(std::string("catalog ") + what +
                                      " offsets not monotone: " + path);
      }
    }
    if (table[count] != end_value) {
      return util::Status::DataLoss(std::string("catalog ") + what +
                                    " offsets end mismatch: " + path);
    }
    return util::Status::Ok();
  };
  DELREC_RETURN_IF_ERROR(check_offsets(catalog.title_offsets_, items,
                                       title_bytes.length, "title"));
  DELREC_RETURN_IF_ERROR(check_offsets(catalog.successor_offsets_, items,
                                       successor_items.length / 8,
                                       "successor"));
  DELREC_RETURN_IF_ERROR(
      check_offsets(catalog.event_offsets_, users, events, "event"));
  if (event_offsets.length > kReleaseThresholdBytes) {
    file.AdviseDontNeed(event_offsets.offset, event_offsets.length);
  }

  catalog.file_ = std::move(file);
  return catalog;
}

util::Status MappedCatalog::DecodeRun(int64_t user_index,
                                      std::vector<int64_t>* items) const {
  DELREC_CHECK_GE(user_index, 0);
  DELREC_CHECK_LT(user_index, num_users_);
  const uint64_t begin = event_offsets_[user_index];
  const uint64_t end = event_offsets_[user_index + 1];
  items->clear();
  items->reserve(end - begin);
  int64_t prev = 0;
  for (uint64_t i = begin; i < end; ++i) {
    const int64_t delta = ZigzagDecode(events_[i]);
    const int64_t item = (i == begin) ? delta : prev + delta;
    if (item < 0 || item >= num_items_) {
      return util::Status::DataLoss(
          "corrupt event run for stored user " + std::to_string(user_index) +
          ": decoded item " + std::to_string(item) + " outside catalog of " +
          std::to_string(num_items_) + " items");
    }
    items->push_back(item);
    prev = item;
  }
  return util::Status::Ok();
}

void MappedCatalog::ReleaseEvents(int64_t begin_user_index,
                                  int64_t end_user_index) const {
  if (begin_user_index >= end_user_index) return;
  const uint64_t begin_event = event_offsets_[begin_user_index];
  const uint64_t end_event = event_offsets_[end_user_index];
  file_.AdviseDontNeed(events_file_offset_ + begin_event * 4,
                       (end_event - begin_event) * 4);
  // The per-user columns scanned alongside the events are released too —
  // they are O(users) and would otherwise accumulate across a full scan.
  file_.AdviseDontNeed(
      event_offsets_file_offset_ + static_cast<uint64_t>(begin_user_index) * 8,
      static_cast<uint64_t>(end_user_index - begin_user_index + 1) * 8);
  file_.AdviseDontNeed(
      user_ids_file_offset_ + static_cast<uint64_t>(begin_user_index) * 8,
      static_cast<uint64_t>(end_user_index - begin_user_index) * 8);
}

Catalog MappedCatalog::Materialize() const {
  Catalog catalog;
  catalog.num_genres = num_genres_;
  for (int g = 0; g < num_genres_; ++g) {
    catalog.genre_names.emplace_back(genre_names_[g]);
  }
  catalog.items.reserve(static_cast<size_t>(num_items_));
  catalog.sequel.reserve(static_cast<size_t>(num_items_));
  catalog.successors.reserve(static_cast<size_t>(num_items_));
  for (int64_t i = 0; i < num_items_; ++i) {
    Item item;
    item.id = i;
    item.title = std::string(title(i));
    item.genre = genre(i);
    item.popularity = popularity(i);
    catalog.items.push_back(std::move(item));
    catalog.sequel.push_back(sequel_of(i));
    const std::span<const int64_t> successors = successors_of(i);
    catalog.successors.emplace_back(successors.begin(), successors.end());
  }
  return catalog;
}

}  // namespace delrec::data
