#ifndef DELREC_DATA_SPLIT_H_
#define DELREC_DATA_SPLIT_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace delrec::data {

/// One supervised SR example: predict `target` from the (≤ history_length)
/// most recent preceding interactions.
struct Example {
  int64_t user = 0;
  std::vector<int64_t> history;  // Oldest first, most recent last.
  int64_t target = 0;
};

/// Train/validation/test example sets.
struct Splits {
  std::vector<Example> train;
  std::vector<Example> validation;
  std::vector<Example> test;
};

/// Builds sliding-window examples and assigns them chronologically 8:1:1
/// (by target position within each user's timeline), matching the paper's
/// leakage-free chronological protocol: every training target precedes every
/// validation target, which precedes every test target, per user.
Splits MakeSplits(const Dataset& dataset, int64_t history_length,
                  double train_fraction = 0.8, double validation_fraction = 0.1);

/// Samples the paper's candidate set: the target plus (m-1) distinct random
/// negatives, shuffled. Deterministic given rng state.
std::vector<int64_t> SampleCandidates(int64_t num_items, int64_t target,
                                      int64_t m, util::Rng& rng);

/// Uniformly subsamples `examples` down to at most `max_count` (stable order
/// otherwise). Used to cap LLM training/eval cost.
std::vector<Example> Subsample(const std::vector<Example>& examples,
                               int64_t max_count, util::Rng& rng);

}  // namespace delrec::data

#endif  // DELREC_DATA_SPLIT_H_
