#include "data/split.h"

#include <algorithm>

#include "util/check.h"

namespace delrec::data {

Splits MakeSplits(const Dataset& dataset, int64_t history_length,
                  double train_fraction, double validation_fraction) {
  DELREC_CHECK_GT(history_length, 0);
  DELREC_CHECK_GT(train_fraction, 0.0);
  DELREC_CHECK_LE(train_fraction + validation_fraction, 1.0);
  Splits splits;
  for (const UserSequence& sequence : dataset.sequences) {
    const int64_t length = static_cast<int64_t>(sequence.items.size());
    for (int64_t t = 1; t < length; ++t) {
      Example example;
      example.user = sequence.user;
      const int64_t start = std::max<int64_t>(0, t - history_length);
      example.history.assign(sequence.items.begin() + start,
                             sequence.items.begin() + t);
      example.target = sequence.items[t];
      const double fraction =
          static_cast<double>(t + 1) / static_cast<double>(length);
      if (fraction <= train_fraction) {
        splits.train.push_back(std::move(example));
      } else if (fraction <= train_fraction + validation_fraction) {
        splits.validation.push_back(std::move(example));
      } else {
        splits.test.push_back(std::move(example));
      }
    }
  }
  return splits;
}

std::vector<int64_t> SampleCandidates(int64_t num_items, int64_t target,
                                      int64_t m, util::Rng& rng) {
  DELREC_CHECK_GE(target, 0);
  DELREC_CHECK_LT(target, num_items);
  DELREC_CHECK_GE(m, 1);
  std::vector<int64_t> candidates =
      rng.SampleDistinct(num_items, static_cast<std::size_t>(m - 1), {target});
  candidates.push_back(target);
  rng.Shuffle(candidates);
  return candidates;
}

std::vector<Example> Subsample(const std::vector<Example>& examples,
                               int64_t max_count, util::Rng& rng) {
  if (static_cast<int64_t>(examples.size()) <= max_count) return examples;
  // Reservoir-free approach: shuffle index set, keep first max_count, restore
  // chronological-ish order by sorting indices.
  std::vector<int64_t> indices(examples.size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  rng.Shuffle(indices);
  indices.resize(max_count);
  std::sort(indices.begin(), indices.end());
  std::vector<Example> out;
  out.reserve(max_count);
  for (int64_t index : indices) out.push_back(examples[index]);
  return out;
}

}  // namespace delrec::data
