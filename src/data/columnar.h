#ifndef DELREC_DATA_COLUMNAR_H_
#define DELREC_DATA_COLUMNAR_H_

#include <cstdint>
#include <cstdio>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "data/dataset.h"
#include "util/mmap_file.h"
#include "util/serialize.h"
#include "util/status.h"

namespace delrec::data {

/// On-disk columnar catalog, format v1 (DESIGN.md §14).
///
/// Layout: a 64-byte superblock, then 8-byte-aligned sections in write
/// order, then a section directory at the END of the file (so the writer
/// never needs to know section sizes up front), and a trailing directory
/// checksum. The superblock's directory offset, counts and checksum are
/// back-patched once all sections are on disk, and the whole file goes
/// through the tmp+fsync+rename path (util::AtomicFileWriter), so readers
/// only ever see complete files.
///
/// Superblock (little-endian, 64 bytes):
///   [ 0,  8) magic "DELRECD1"
///   [ 8, 12) u32 version (= 1)
///   [12, 16) u32 endian tag (= 0x01020304; reads back rotated on a
///            big-endian machine, which Open() rejects)
///   [16, 24) u64 directory offset
///   [24, 28) u32 section count
///   [28, 32) u32 num_genres
///   [32, 40) u64 num_items
///   [40, 48) u64 num_users
///   [48, 56) u64 num_events
///   [56, 64) u64 FNV-1a checksum of bytes [0, 56)
///
/// Directory: section_count records of 32 bytes — {u32 id, u32 flags,
/// u64 offset, u64 length, u64 FNV-1a checksum of the section bytes} —
/// followed by a u64 FNV-1a checksum of the record bytes.
inline constexpr char kCatalogMagic[8] = {'D', 'E', 'L', 'R', 'E', 'C',
                                          'D', '1'};
inline constexpr uint32_t kCatalogVersion = 1;
inline constexpr uint32_t kCatalogEndianTag = 0x01020304u;
inline constexpr uint64_t kCatalogSuperblockBytes = 64;
inline constexpr uint64_t kCatalogDirectoryRecordBytes = 32;

/// Section ids. Offsets columns hold element (not byte) offsets and have
/// count+1 entries; `kEvents` holds one u32 per interaction: the zigzag of
/// the delta from the previous item in the same user run (first event of a
/// run encodes the absolute item id).
enum class CatalogSection : uint32_t {
  kName = 1,
  kGenreNames = 2,  // u32 count, then per genre: u32 length + bytes.
  kTitleOffsets = 3,
  kTitleBytes = 4,
  kItemGenres = 5,       // i32 per item.
  kItemPopularity = 6,   // f32 per item.
  kItemSequel = 7,       // i64 per item.
  kSuccessorOffsets = 8,
  kSuccessorItems = 9,   // i64, concatenated successor lists.
  kUserIds = 10,         // i64 per user, in stored order.
  kEventOffsets = 11,
  kEvents = 12,
};

/// DatasetSink that streams a generated dataset straight to a catalog file.
/// Item columns (bounded by num_items) are buffered; the event log — the
/// only unbounded part — is encoded and appended as users arrive, with the
/// per-user id/length columns spilled to a scratch file, so writing a
/// million-user catalog holds O(num_items) memory. Honours the
/// `data.catalog.write*` failpoints via util::AtomicFileWriter.
class CatalogFileWriter final : public DatasetSink {
 public:
  explicit CatalogFileWriter(std::string path);
  ~CatalogFileWriter() override;
  CatalogFileWriter(const CatalogFileWriter&) = delete;
  CatalogFileWriter& operator=(const CatalogFileWriter&) = delete;

  util::Status BeginDataset(const std::string& name, const Catalog& catalog,
                            int64_t num_users) override;
  util::Status AddUser(int64_t user,
                       const std::vector<int64_t>& items) override;
  /// Writes the buffered columns, directory and superblock, then commits
  /// (fsync + rename). The file does not exist at `path` until this returns
  /// OK.
  util::Status Finish() override;

 private:
  struct SectionRecord {
    uint32_t id = 0;
    uint32_t flags = 0;
    uint64_t offset = 0;
    uint64_t length = 0;
    uint64_t checksum = 0;
  };

  // Appends one section built from `bytes`, recording offset/length/checksum
  // and re-aligning to 8 bytes afterwards.
  util::Status AppendSection(CatalogSection id, const void* bytes,
                             uint64_t length);
  util::Status AlignTo8();
  util::Status WriteUserSections();
  util::Status WriteItemSections();
  void CloseSpill();

  std::string path_;
  std::string spill_path_;
  std::optional<util::AtomicFileWriter> writer_;
  std::FILE* spill_ = nullptr;

  Catalog catalog_;
  std::string name_;
  int64_t num_users_ = 0;
  uint64_t num_events_ = 0;
  uint64_t events_offset_ = 0;
  uint64_t events_checksum_ = 0;
  std::vector<unsigned char> encode_buffer_;
  std::vector<SectionRecord> sections_;
  bool begun_ = false;
  bool finished_ = false;
};

/// Writes an in-RAM dataset to a catalog file (golden/round-trip path).
util::Status WriteCatalogFile(const Dataset& dataset, const std::string& path);

/// Direct-to-disk generation: GenerateDatasetTo through a CatalogFileWriter.
/// Bit-identical to WriteCatalogFile(GenerateDataset(config), path) while
/// holding O(num_items) memory regardless of config.num_users.
util::Status GenerateCatalogFile(const GeneratorConfig& config,
                                 const std::string& path);

/// Zero-copy CatalogView over a mapped catalog file. Open() validates
/// everything up front — magic/version/endianness, superblock and directory
/// checksums, per-section checksums, and offset-table monotonicity — in a
/// bounded-RSS streaming pass, so a truncated or bit-flipped file yields a
/// typed error (kDataLoss for damage, kInvalidArgument for a foreign or
/// unsupported file) and a successfully opened catalog can serve all
/// accessors without further validation. Titles and genre names are
/// string_views into the mapping: valid while this object lives.
class MappedCatalog final : public CatalogView {
 public:
  static util::StatusOr<MappedCatalog> Open(const std::string& path);

  MappedCatalog(MappedCatalog&&) noexcept = default;
  MappedCatalog& operator=(MappedCatalog&&) noexcept = default;

  int64_t item_count() const override { return num_items_; }
  int genre_count() const override { return num_genres_; }
  std::string_view genre_name(int g) const override { return genre_names_[g]; }
  std::string_view title(int64_t item) const override {
    return {title_bytes_ + title_offsets_[item],
            title_offsets_[item + 1] - title_offsets_[item]};
  }
  int genre(int64_t item) const override { return item_genres_[item]; }
  float popularity(int64_t item) const override {
    return item_popularity_[item];
  }
  int64_t sequel_of(int64_t item) const override { return item_sequel_[item]; }
  std::span<const int64_t> successors_of(int64_t item) const override {
    return {successor_items_ + successor_offsets_[item],
            successor_items_ + successor_offsets_[item + 1]};
  }

  const std::string& name() const { return name_; }
  int64_t user_count() const { return num_users_; }
  int64_t event_count() const { return num_events_; }

  /// External user id of the user stored at `user_index`.
  int64_t user_id(int64_t user_index) const { return user_ids_[user_index]; }
  int64_t run_length(int64_t user_index) const {
    return static_cast<int64_t>(event_offsets_[user_index + 1] -
                                event_offsets_[user_index]);
  }

  /// Delta-decodes one user's run into `items` (cleared first). Returns
  /// kDataLoss if a decoded id falls outside the item universe — the
  /// signature of event-log corruption that checksum verification cannot
  /// catch once pages are served (e.g. injected via failpoints).
  util::Status DecodeRun(int64_t user_index, std::vector<int64_t>* items) const;

  /// RSS discipline: drops the resident event-log pages covering the runs of
  /// users [begin_user_index, end_user_index). Sequential consumers call
  /// this behind themselves so a full-catalog scan stays within a
  /// page-window of resident memory.
  void ReleaseEvents(int64_t begin_user_index, int64_t end_user_index) const;

  /// Rebuilds a fully in-RAM Catalog (tests and small tools only).
  Catalog Materialize() const;

 private:
  MappedCatalog() = default;

  util::MemoryMappedFile file_;
  std::string name_;
  int64_t num_items_ = 0;
  int num_genres_ = 0;
  int64_t num_users_ = 0;
  int64_t num_events_ = 0;
  std::vector<std::string_view> genre_names_;
  const uint64_t* title_offsets_ = nullptr;
  const char* title_bytes_ = nullptr;
  const int32_t* item_genres_ = nullptr;
  const float* item_popularity_ = nullptr;
  const int64_t* item_sequel_ = nullptr;
  const uint64_t* successor_offsets_ = nullptr;
  const int64_t* successor_items_ = nullptr;
  const int64_t* user_ids_ = nullptr;
  const uint64_t* event_offsets_ = nullptr;
  const uint32_t* events_ = nullptr;
  uint64_t events_file_offset_ = 0;
  uint64_t event_offsets_file_offset_ = 0;
  uint64_t user_ids_file_offset_ = 0;
};

}  // namespace delrec::data

#endif  // DELREC_DATA_COLUMNAR_H_
