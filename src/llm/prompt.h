#ifndef DELREC_LLM_PROMPT_H_
#define DELREC_LLM_PROMPT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "llm/tiny_lm.h"
#include "llm/vocab.h"
#include "nn/tensor.h"

namespace delrec::llm {

/// A composed prompt plus the index of its [MASK] position (the slot the
/// model predicts through the verbalizer).
struct Prompt {
  std::vector<PromptPiece> pieces;
  int64_t mask_position = -1;
  /// Length of the declared frozen head (SequenceSpan::prefix semantics):
  /// the first `prefix_length` positions — [CLS], the pattern-knowledge
  /// soft block, the leading instruction run — are identical for every
  /// request built from the same config + soft prompts, and attend only
  /// among themselves, which is what lets a snapshot cache their K/V once
  /// (DESIGN.md §15). 0 means no declared prefix (full bidirectional).
  int64_t prefix_length = 0;

  int64_t length() const;
};

/// A prompt cut at its declared prefix boundary: `prefix` holds the
/// snapshot-constant head pieces, `suffix` the per-request tail.
/// Concatenating prefix ++ suffix reproduces the original pieces token for
/// token (pinned byte-for-byte by prompt_golden_test).
struct SplitPrompt {
  std::vector<PromptPiece> prefix;
  std::vector<PromptPiece> suffix;
};

/// Builds the three prompt templates of DELRec (paper Figs. 4–6). All items
/// are rendered as titles (§IV-A: "we represent all items in the prompts
/// using textual titles"), [SEP] delimits items, and the conventional SR
/// model's *name* is spelled out in the RPS template to tap the LLM's prior
/// knowledge. Slots exist for soft prompts (embedding rows), textual hints
/// (paradigm-1 baselines) and injected embeddings (paradigm-2 baselines).
class PromptBuilder {
 public:
  /// `catalog` and `vocab` must outlive the builder. Works for in-RAM
  /// catalogs and mmap-backed ones (MappedCatalog) alike — titles are read
  /// through the string_view interface and tokenized without copies.
  PromptBuilder(const data::CatalogView* catalog, const Vocab* vocab);

  /// Stage-2 / recommendation prompt (Fig. 6). The snapshot-constant head
  /// leads so it can be served from a prefix KV cache:
  ///   [CLS] reference pattern knowledge: <SOFT> [SEP]    (if soft defined)
  ///   the user watched these items in order              ← prefix ends here
  ///   <history titles> [SEP]
  ///   <hint tokens> [SEP]                                (if any)
  ///   <injected embedding rows> [SEP]                    (if defined)
  ///   candidates are: <candidate titles> [SEP]
  ///   the user will watch next [MASK] [SEP]
  Prompt BuildRecommendation(const std::vector<int64_t>& history,
                             const std::vector<int64_t>& candidates,
                             const nn::Tensor& soft_prompts,
                             const std::vector<int64_t>& hint_tokens,
                             const nn::Tensor& injected_embeddings) const;

  /// Temporal Analysis / PMRI prompt (Fig. 4). `sequence` is the user
  /// history (≥ 4 items); `alpha` the paper's ICL split point. The prompt
  /// shows the prefix as an in-context example, masks the second-to-last
  /// item and reveals the last item as "the next interaction". The caller's
  /// label is sequence[n-2].
  Prompt BuildTemporalAnalysis(const std::vector<int64_t>& sequence,
                               int64_t alpha,
                               const std::vector<int64_t>& candidates,
                               const nn::Tensor& soft_prompts) const;

  /// Recommendation Pattern Simulating prompt (Fig. 5): shows the SR model's
  /// top-h list and asks what that model predicts next (label: its top-1).
  Prompt BuildPatternSimulating(const std::vector<int64_t>& history,
                                const std::vector<int64_t>& top_h,
                                const std::vector<int64_t>& candidates,
                                const nn::Tensor& soft_prompts,
                                const std::string& sr_model_name) const;

  /// The snapshot-constant head of BuildRecommendation — [CLS], the
  /// optional pattern-knowledge soft block and the leading instruction run
  /// — exactly the pieces Split(BuildRecommendation(...)).prefix yields for
  /// any history/candidates built with the same soft prompts. This is what
  /// a serve snapshot feeds TinyLm::BuildPrefixState.
  std::vector<PromptPiece> RecommendationPrefix(
      const nn::Tensor& soft_prompts) const;

  /// Cuts `prompt` at its declared prefix_length, splitting a token piece
  /// when the boundary lands inside one (the boundary never lands inside an
  /// embeddings piece for prompts this builder produces). With a declared
  /// prefix the [MASK] must sit in the suffix — checked here.
  static SplitPrompt Split(const Prompt& prompt);

  /// "w MCP" ablation: a natural-language description of the conventional
  /// SR model's recommendation process, used in place of soft prompts.
  std::vector<int64_t> ManualConstructionTokens(
      const std::string& sr_model_name) const;

  /// Title tokens of an item.
  std::vector<int64_t> TitleTokens(int64_t item) const;

  const Vocab& vocab() const { return *vocab_; }

 private:
  const data::CatalogView* catalog_;
  const Vocab* vocab_;
};

}  // namespace delrec::llm

#endif  // DELREC_LLM_PROMPT_H_
