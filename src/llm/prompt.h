#ifndef DELREC_LLM_PROMPT_H_
#define DELREC_LLM_PROMPT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "llm/tiny_lm.h"
#include "llm/vocab.h"
#include "nn/tensor.h"

namespace delrec::llm {

/// A composed prompt plus the index of its [MASK] position (the slot the
/// model predicts through the verbalizer).
struct Prompt {
  std::vector<PromptPiece> pieces;
  int64_t mask_position = -1;

  int64_t length() const;
};

/// Builds the three prompt templates of DELRec (paper Figs. 4–6). All items
/// are rendered as titles (§IV-A: "we represent all items in the prompts
/// using textual titles"), [SEP] delimits items, and the conventional SR
/// model's *name* is spelled out in the RPS template to tap the LLM's prior
/// knowledge. Slots exist for soft prompts (embedding rows), textual hints
/// (paradigm-1 baselines) and injected embeddings (paradigm-2 baselines).
class PromptBuilder {
 public:
  /// `catalog` and `vocab` must outlive the builder. Works for in-RAM
  /// catalogs and mmap-backed ones (MappedCatalog) alike — titles are read
  /// through the string_view interface and tokenized without copies.
  PromptBuilder(const data::CatalogView* catalog, const Vocab* vocab);

  /// Stage-2 / recommendation prompt (Fig. 6):
  ///   [CLS] the user watched: <history titles> [SEP]
  ///   reference pattern knowledge: <SOFT> [SEP]          (if soft defined)
  ///   <hint tokens> [SEP]                                (if any)
  ///   <injected embedding rows> [SEP]                    (if defined)
  ///   candidates are: <candidate titles> [SEP]
  ///   the user will watch next [MASK] [SEP]
  Prompt BuildRecommendation(const std::vector<int64_t>& history,
                             const std::vector<int64_t>& candidates,
                             const nn::Tensor& soft_prompts,
                             const std::vector<int64_t>& hint_tokens,
                             const nn::Tensor& injected_embeddings) const;

  /// Temporal Analysis / PMRI prompt (Fig. 4). `sequence` is the user
  /// history (≥ 4 items); `alpha` the paper's ICL split point. The prompt
  /// shows the prefix as an in-context example, masks the second-to-last
  /// item and reveals the last item as "the next interaction". The caller's
  /// label is sequence[n-2].
  Prompt BuildTemporalAnalysis(const std::vector<int64_t>& sequence,
                               int64_t alpha,
                               const std::vector<int64_t>& candidates,
                               const nn::Tensor& soft_prompts) const;

  /// Recommendation Pattern Simulating prompt (Fig. 5): shows the SR model's
  /// top-h list and asks what that model predicts next (label: its top-1).
  Prompt BuildPatternSimulating(const std::vector<int64_t>& history,
                                const std::vector<int64_t>& top_h,
                                const std::vector<int64_t>& candidates,
                                const nn::Tensor& soft_prompts,
                                const std::string& sr_model_name) const;

  /// "w MCP" ablation: a natural-language description of the conventional
  /// SR model's recommendation process, used in place of soft prompts.
  std::vector<int64_t> ManualConstructionTokens(
      const std::string& sr_model_name) const;

  /// Title tokens of an item.
  std::vector<int64_t> TitleTokens(int64_t item) const;

  const Vocab& vocab() const { return *vocab_; }

 private:
  const data::CatalogView* catalog_;
  const Vocab* vocab_;
};

}  // namespace delrec::llm

#endif  // DELREC_LLM_PROMPT_H_
