#include "llm/prompt.h"

#include <algorithm>

#include "util/check.h"

namespace delrec::llm {
namespace {

// Incrementally assembles PromptPieces, merging consecutive hard tokens into
// one piece and tracking the global index of the [MASK] token.
class PromptAssembler {
 public:
  explicit PromptAssembler(const Vocab& vocab) : vocab_(vocab) {
    AddToken(Vocab::kCls);
  }

  void AddText(const std::string& text) {
    for (int64_t id : vocab_.Encode(text)) AddToken(id);
  }

  void AddToken(int64_t id) {
    current_tokens_.push_back(id);
    ++length_;
  }

  void AddTokens(const std::vector<int64_t>& ids) {
    for (int64_t id : ids) AddToken(id);
  }

  void AddSep() { AddToken(Vocab::kSep); }

  void AddMask() {
    DELREC_CHECK_EQ(mask_position_, -1) << "prompt already has a mask";
    mask_position_ = length_;
    AddToken(Vocab::kMask);
  }

  void AddEmbeddings(const nn::Tensor& rows) {
    FlushTokens();
    prompt_.pieces.push_back(PromptPiece::Embeddings(rows));
    length_ += rows.dim(0);
  }

  /// Declares everything assembled so far as the frozen snapshot-constant
  /// head (Prompt::prefix_length). Must precede the mask.
  void MarkPrefixEnd() {
    DELREC_CHECK_EQ(prefix_end_, 0) << "prompt prefix already marked";
    DELREC_CHECK_EQ(mask_position_, -1) << "prefix cannot contain the mask";
    prefix_end_ = length_;
  }

  Prompt Finish() {
    AddSep();
    FlushTokens();
    DELREC_CHECK_GE(mask_position_, 0) << "prompt has no mask";
    prompt_.mask_position = mask_position_;
    prompt_.prefix_length = prefix_end_;
    return std::move(prompt_);
  }

  /// The pieces assembled so far, without the Finish() trailer — used to
  /// build a bare prefix (no mask requirement).
  std::vector<PromptPiece> TakePieces() {
    FlushTokens();
    return std::move(prompt_.pieces);
  }

 private:
  void FlushTokens() {
    if (!current_tokens_.empty()) {
      prompt_.pieces.push_back(
          PromptPiece::Tokens(std::move(current_tokens_)));
      current_tokens_.clear();
    }
  }

  const Vocab& vocab_;
  Prompt prompt_;
  std::vector<int64_t> current_tokens_;
  int64_t length_ = 0;
  int64_t mask_position_ = -1;
  int64_t prefix_end_ = 0;
};

// The shared head of the recommendation template: the pattern-knowledge
// soft block (snapshot-constant — the distilled rows are frozen into the
// snapshot) then the instruction run, with the prefix boundary after it.
// Every per-request piece (history, hints, candidates, mask) comes later,
// so one cached PrefixState serves all requests.
void AddRecommendationHead(PromptAssembler& assembler,
                           const nn::Tensor& soft_prompts) {
  if (soft_prompts.defined()) {
    assembler.AddText("refer to pattern knowledge");
    assembler.AddEmbeddings(soft_prompts);
    assembler.AddSep();
  }
  assembler.AddText("the user watched these items in order");
  assembler.MarkPrefixEnd();
}

}  // namespace

int64_t Prompt::length() const {
  int64_t total = 0;
  for (const PromptPiece& piece : pieces) total += piece.length();
  return total;
}

PromptBuilder::PromptBuilder(const data::CatalogView* catalog,
                             const Vocab* vocab)
    : catalog_(catalog), vocab_(vocab) {
  DELREC_CHECK(catalog != nullptr);
  DELREC_CHECK(vocab != nullptr);
}

std::vector<int64_t> PromptBuilder::TitleTokens(int64_t item) const {
  DELREC_CHECK_GE(item, 0);
  DELREC_CHECK_LT(item, catalog_->item_count());
  return vocab_->Encode(catalog_->title(item));
}

Prompt PromptBuilder::BuildRecommendation(
    const std::vector<int64_t>& history,
    const std::vector<int64_t>& candidates, const nn::Tensor& soft_prompts,
    const std::vector<int64_t>& hint_tokens,
    const nn::Tensor& injected_embeddings) const {
  DELREC_CHECK(!history.empty());
  PromptAssembler assembler(*vocab_);
  AddRecommendationHead(assembler, soft_prompts);
  for (int64_t item : history) {
    assembler.AddTokens(TitleTokens(item));
    assembler.AddSep();
  }
  if (!hint_tokens.empty()) {
    assembler.AddTokens(hint_tokens);
    assembler.AddSep();
  }
  if (injected_embeddings.defined()) {
    assembler.AddEmbeddings(injected_embeddings);
    assembler.AddSep();
  }
  if (!candidates.empty()) {
    assembler.AddText("candidates are");
    for (int64_t item : candidates) {
      assembler.AddTokens(TitleTokens(item));
      assembler.AddSep();
    }
  }
  assembler.AddText("the user will watch next");
  assembler.AddMask();
  return assembler.Finish();
}

Prompt PromptBuilder::BuildTemporalAnalysis(
    const std::vector<int64_t>& sequence, int64_t alpha,
    const std::vector<int64_t>& candidates,
    const nn::Tensor& soft_prompts) const {
  const int64_t n = static_cast<int64_t>(sequence.size());
  DELREC_CHECK_GE(n, 4) << "Temporal Analysis needs at least 4 items";
  // Keep α valid: prefix I_1..I_{α-1} as ICL with I_α its next item, and at
  // least one unmasked item between α and the masked position n-2.
  alpha = std::clamp<int64_t>(alpha, 1, n - 3);
  PromptAssembler assembler(*vocab_);
  // Pattern-knowledge head first (prefix-cacheable), then the ICL example
  // cut from the earlier part of the same sequence (§IV-B).
  if (soft_prompts.defined()) {
    assembler.AddText("refer to pattern knowledge");
    assembler.AddEmbeddings(soft_prompts);
    assembler.AddSep();
  }
  assembler.AddText("example given");
  assembler.MarkPrefixEnd();
  for (int64_t i = 0; i < alpha; ++i) {
    assembler.AddTokens(TitleTokens(sequence[i]));
    assembler.AddSep();
  }
  assembler.AddText("the next item was");
  assembler.AddTokens(TitleTokens(sequence[alpha]));
  assembler.AddSep();
  // Main PMRI task: sequence I_α..I_{n-3}, masked most-recent item I_{n-2},
  // revealed next interaction I_{n-1}.
  assembler.AddText("given");
  for (int64_t i = alpha; i < n - 2; ++i) {
    assembler.AddTokens(TitleTokens(sequence[i]));
    assembler.AddSep();
  }
  assembler.AddText("the most recent item before");
  assembler.AddTokens(TitleTokens(sequence[n - 1]));
  assembler.AddText("was");
  assembler.AddMask();
  assembler.AddSep();
  if (!candidates.empty()) {
    assembler.AddText("candidates are");
    for (int64_t item : candidates) {
      assembler.AddTokens(TitleTokens(item));
      assembler.AddSep();
    }
  }
  return assembler.Finish();
}

Prompt PromptBuilder::BuildPatternSimulating(
    const std::vector<int64_t>& history, const std::vector<int64_t>& top_h,
    const std::vector<int64_t>& candidates, const nn::Tensor& soft_prompts,
    const std::string& sr_model_name) const {
  DELREC_CHECK(!history.empty());
  DELREC_CHECK(!top_h.empty());
  PromptAssembler assembler(*vocab_);
  AddRecommendationHead(assembler, soft_prompts);
  for (int64_t item : history) {
    assembler.AddTokens(TitleTokens(item));
    assembler.AddSep();
  }
  // Spell out the conventional model's name (§IV-A: harness the LLM's
  // pre-existing knowledge of these models).
  assembler.AddText("the " + sr_model_name + " model recommends top items");
  for (int64_t item : top_h) {
    assembler.AddTokens(TitleTokens(item));
    assembler.AddSep();
  }
  if (!candidates.empty()) {
    assembler.AddText("candidates are");
    for (int64_t item : candidates) {
      assembler.AddTokens(TitleTokens(item));
      assembler.AddSep();
    }
  }
  assembler.AddText("the " + sr_model_name + " model predicts next");
  assembler.AddMask();
  return assembler.Finish();
}

std::vector<PromptPiece> PromptBuilder::RecommendationPrefix(
    const nn::Tensor& soft_prompts) const {
  PromptAssembler assembler(*vocab_);
  AddRecommendationHead(assembler, soft_prompts);
  return assembler.TakePieces();
}

SplitPrompt PromptBuilder::Split(const Prompt& prompt) {
  DELREC_CHECK_GE(prompt.prefix_length, 0);
  if (prompt.prefix_length > 0) {
    DELREC_CHECK_GE(prompt.mask_position, prompt.prefix_length)
        << "mask inside the frozen prefix";
  }
  SplitPrompt split;
  int64_t remaining = prompt.prefix_length;
  for (const PromptPiece& piece : prompt.pieces) {
    if (remaining <= 0) {
      split.suffix.push_back(piece);
      continue;
    }
    const int64_t len = piece.length();
    if (len <= remaining) {
      split.prefix.push_back(piece);
      remaining -= len;
      continue;
    }
    // Boundary inside the piece: assembled prompts merge consecutive hard
    // tokens, so the constant instruction run and the first per-request
    // token share one piece — cut the token vector at the boundary.
    DELREC_CHECK(piece.kind == PromptPiece::Kind::kTokens)
        << "prefix boundary inside an embeddings piece";
    split.prefix.push_back(PromptPiece::Tokens(std::vector<int64_t>(
        piece.tokens.begin(), piece.tokens.begin() + remaining)));
    split.suffix.push_back(PromptPiece::Tokens(std::vector<int64_t>(
        piece.tokens.begin() + remaining, piece.tokens.end())));
    remaining = 0;
  }
  DELREC_CHECK_EQ(remaining, 0) << "prefix longer than the prompt";
  return split;
}

std::vector<int64_t> PromptBuilder::ManualConstructionTokens(
    const std::string& sr_model_name) const {
  // Hand-written description of the conventional model's behaviour — the
  // "w MCP" ablation's stand-in for distilled soft prompts.
  return vocab_->Encode(
      "the " + sr_model_name +
      " model predicts the next item from the most recent items in the "
      "sequence and prefers items similar to the most recent item");
}

}  // namespace delrec::llm
