#include "llm/prompt.h"

#include <algorithm>

#include "util/check.h"

namespace delrec::llm {
namespace {

// Incrementally assembles PromptPieces, merging consecutive hard tokens into
// one piece and tracking the global index of the [MASK] token.
class PromptAssembler {
 public:
  explicit PromptAssembler(const Vocab& vocab) : vocab_(vocab) {
    AddToken(Vocab::kCls);
  }

  void AddText(const std::string& text) {
    for (int64_t id : vocab_.Encode(text)) AddToken(id);
  }

  void AddToken(int64_t id) {
    current_tokens_.push_back(id);
    ++length_;
  }

  void AddTokens(const std::vector<int64_t>& ids) {
    for (int64_t id : ids) AddToken(id);
  }

  void AddSep() { AddToken(Vocab::kSep); }

  void AddMask() {
    DELREC_CHECK_EQ(mask_position_, -1) << "prompt already has a mask";
    mask_position_ = length_;
    AddToken(Vocab::kMask);
  }

  void AddEmbeddings(const nn::Tensor& rows) {
    FlushTokens();
    prompt_.pieces.push_back(PromptPiece::Embeddings(rows));
    length_ += rows.dim(0);
  }

  Prompt Finish() {
    AddSep();
    FlushTokens();
    DELREC_CHECK_GE(mask_position_, 0) << "prompt has no mask";
    prompt_.mask_position = mask_position_;
    return std::move(prompt_);
  }

 private:
  void FlushTokens() {
    if (!current_tokens_.empty()) {
      prompt_.pieces.push_back(
          PromptPiece::Tokens(std::move(current_tokens_)));
      current_tokens_.clear();
    }
  }

  const Vocab& vocab_;
  Prompt prompt_;
  std::vector<int64_t> current_tokens_;
  int64_t length_ = 0;
  int64_t mask_position_ = -1;
};

}  // namespace

int64_t Prompt::length() const {
  int64_t total = 0;
  for (const PromptPiece& piece : pieces) total += piece.length();
  return total;
}

PromptBuilder::PromptBuilder(const data::CatalogView* catalog,
                             const Vocab* vocab)
    : catalog_(catalog), vocab_(vocab) {
  DELREC_CHECK(catalog != nullptr);
  DELREC_CHECK(vocab != nullptr);
}

std::vector<int64_t> PromptBuilder::TitleTokens(int64_t item) const {
  DELREC_CHECK_GE(item, 0);
  DELREC_CHECK_LT(item, catalog_->item_count());
  return vocab_->Encode(catalog_->title(item));
}

Prompt PromptBuilder::BuildRecommendation(
    const std::vector<int64_t>& history,
    const std::vector<int64_t>& candidates, const nn::Tensor& soft_prompts,
    const std::vector<int64_t>& hint_tokens,
    const nn::Tensor& injected_embeddings) const {
  DELREC_CHECK(!history.empty());
  PromptAssembler assembler(*vocab_);
  assembler.AddText("the user watched these items in order");
  for (int64_t item : history) {
    assembler.AddTokens(TitleTokens(item));
    assembler.AddSep();
  }
  if (soft_prompts.defined()) {
    assembler.AddText("refer to pattern knowledge");
    assembler.AddEmbeddings(soft_prompts);
    assembler.AddSep();
  }
  if (!hint_tokens.empty()) {
    assembler.AddTokens(hint_tokens);
    assembler.AddSep();
  }
  if (injected_embeddings.defined()) {
    assembler.AddEmbeddings(injected_embeddings);
    assembler.AddSep();
  }
  if (!candidates.empty()) {
    assembler.AddText("candidates are");
    for (int64_t item : candidates) {
      assembler.AddTokens(TitleTokens(item));
      assembler.AddSep();
    }
  }
  assembler.AddText("the user will watch next");
  assembler.AddMask();
  return assembler.Finish();
}

Prompt PromptBuilder::BuildTemporalAnalysis(
    const std::vector<int64_t>& sequence, int64_t alpha,
    const std::vector<int64_t>& candidates,
    const nn::Tensor& soft_prompts) const {
  const int64_t n = static_cast<int64_t>(sequence.size());
  DELREC_CHECK_GE(n, 4) << "Temporal Analysis needs at least 4 items";
  // Keep α valid: prefix I_1..I_{α-1} as ICL with I_α its next item, and at
  // least one unmasked item between α and the masked position n-2.
  alpha = std::clamp<int64_t>(alpha, 1, n - 3);
  PromptAssembler assembler(*vocab_);
  // ICL example cut from the earlier part of the same sequence (§IV-B).
  assembler.AddText("example given");
  for (int64_t i = 0; i < alpha; ++i) {
    assembler.AddTokens(TitleTokens(sequence[i]));
    assembler.AddSep();
  }
  assembler.AddText("the next item was");
  assembler.AddTokens(TitleTokens(sequence[alpha]));
  assembler.AddSep();
  // Main PMRI task: sequence I_α..I_{n-3}, masked most-recent item I_{n-2},
  // revealed next interaction I_{n-1}.
  assembler.AddText("given");
  for (int64_t i = alpha; i < n - 2; ++i) {
    assembler.AddTokens(TitleTokens(sequence[i]));
    assembler.AddSep();
  }
  assembler.AddText("the most recent item before");
  assembler.AddTokens(TitleTokens(sequence[n - 1]));
  assembler.AddText("was");
  assembler.AddMask();
  assembler.AddSep();
  if (soft_prompts.defined()) {
    assembler.AddText("refer to pattern knowledge");
    assembler.AddEmbeddings(soft_prompts);
    assembler.AddSep();
  }
  if (!candidates.empty()) {
    assembler.AddText("candidates are");
    for (int64_t item : candidates) {
      assembler.AddTokens(TitleTokens(item));
      assembler.AddSep();
    }
  }
  return assembler.Finish();
}

Prompt PromptBuilder::BuildPatternSimulating(
    const std::vector<int64_t>& history, const std::vector<int64_t>& top_h,
    const std::vector<int64_t>& candidates, const nn::Tensor& soft_prompts,
    const std::string& sr_model_name) const {
  DELREC_CHECK(!history.empty());
  DELREC_CHECK(!top_h.empty());
  PromptAssembler assembler(*vocab_);
  assembler.AddText("the user watched these items in order");
  for (int64_t item : history) {
    assembler.AddTokens(TitleTokens(item));
    assembler.AddSep();
  }
  // Spell out the conventional model's name (§IV-A: harness the LLM's
  // pre-existing knowledge of these models).
  assembler.AddText("the " + sr_model_name + " model recommends top items");
  for (int64_t item : top_h) {
    assembler.AddTokens(TitleTokens(item));
    assembler.AddSep();
  }
  if (soft_prompts.defined()) {
    assembler.AddText("refer to pattern knowledge");
    assembler.AddEmbeddings(soft_prompts);
    assembler.AddSep();
  }
  if (!candidates.empty()) {
    assembler.AddText("candidates are");
    for (int64_t item : candidates) {
      assembler.AddTokens(TitleTokens(item));
      assembler.AddSep();
    }
  }
  assembler.AddText("the " + sr_model_name + " model predicts next");
  assembler.AddMask();
  return assembler.Finish();
}

std::vector<int64_t> PromptBuilder::ManualConstructionTokens(
    const std::string& sr_model_name) const {
  // Hand-written description of the conventional model's behaviour — the
  // "w MCP" ablation's stand-in for distilled soft prompts.
  return vocab_->Encode(
      "the " + sr_model_name +
      " model predicts the next item from the most recent items in the "
      "sequence and prefers items similar to the most recent item");
}

}  // namespace delrec::llm
