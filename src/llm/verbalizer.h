#ifndef DELREC_LLM_VERBALIZER_H_
#define DELREC_LLM_VERBALIZER_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "llm/vocab.h"
#include "nn/tensor.h"

namespace delrec::llm {

/// The paper's "simple verbalizer": converts LM-head token logits at the
/// [MASK] position into ranking scores for items. An item's score is the
/// mean logit of its title tokens; implemented as one constant (V, m)
/// projection matrix per candidate set, so it is differentiable w.r.t. the
/// token logits — the same mapping serves training (candidate cross-entropy)
/// and inference (ranking).
class Verbalizer {
 public:
  Verbalizer(const data::CatalogView& catalog, const Vocab& vocab);

  /// Title token ids of one item (no specials).
  const std::vector<int64_t>& TitleTokens(int64_t item) const;

  /// Differentiable candidate logits: (1, V) token logits → (1, m).
  nn::Tensor CandidateLogits(const nn::Tensor& token_logits,
                             const std::vector<int64_t>& candidates) const;

  /// Differentiable logits over the ENTIRE catalog: (1, V) → (1, num_items).
  /// Used as the training head (full-softmax supervision, like conventional
  /// SR models); candidate sets remain the evaluation protocol.
  nn::Tensor AllItemLogits(const nn::Tensor& token_logits) const;

  int64_t num_items() const {
    return static_cast<int64_t>(title_tokens_.size());
  }

  /// Inference-only scores (plain floats).
  std::vector<float> Scores(const std::vector<float>& token_logits,
                            const std::vector<int64_t>& candidates) const;

  /// Raw-pointer variant over one row of a batched (B, V) logits matrix, so
  /// serve-path scoring avoids a V-sized copy per request. Identical
  /// arithmetic to Scores().
  std::vector<float> ScoresFromRow(const float* token_logits,
                                   const std::vector<int64_t>& candidates)
      const;

  int64_t vocab_size() const { return vocab_size_; }

 private:
  int64_t vocab_size_;
  std::vector<std::vector<int64_t>> title_tokens_;   // Per item.
  std::vector<float> token_weights_;                 // IDF per token.
  std::vector<std::vector<float>> title_weights_;    // Normalized per item.
  nn::Tensor all_items_projection_;                  // (V, num_items), const.
};

}  // namespace delrec::llm

#endif  // DELREC_LLM_VERBALIZER_H_
