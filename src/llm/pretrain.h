#ifndef DELREC_LLM_PRETRAIN_H_
#define DELREC_LLM_PRETRAIN_H_

#include <cstdint>
#include <vector>

#include "llm/tiny_lm.h"

namespace delrec::llm {

/// MLM pretraining knobs.
struct PretrainConfig {
  int epochs = 3;
  int batch_size = 16;
  float learning_rate = 2e-3f;
  /// Probability of masking among the last few content tokens instead of
  /// uniformly. Instruction-format sentences end with the target title, so
  /// tail-biased masking teaches "predict the next item" directly.
  float tail_mask_probability = 0.0f;
  uint64_t seed = 11;
  bool verbose = false;
};

/// Masked-LM pretraining on the world-knowledge corpus: each step masks one
/// random non-special token per sentence and predicts it. Returns the final
/// epoch's mean loss. This is the substitute for the paper's pretrained LLM
/// weights — afterwards, TinyLM "knows" which titles share a genre.
float PretrainMlm(TinyLm& model,
                  const std::vector<std::vector<int64_t>>& corpus,
                  const PretrainConfig& config);

}  // namespace delrec::llm

#endif  // DELREC_LLM_PRETRAIN_H_
