#include "llm/pretrain.h"

#include <algorithm>

#include "llm/vocab.h"
#include "nn/module.h"
#include "nn/ops.h"
#include "nn/optimizer.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/rng.h"

namespace delrec::llm {

float PretrainMlm(TinyLm& model,
                  const std::vector<std::vector<int64_t>>& corpus,
                  const PretrainConfig& config) {
  DELREC_CHECK(!corpus.empty());
  util::Rng rng(config.seed);
  model.SetTraining(true);
  nn::Adam optimizer(model.Parameters(), config.learning_rate);
  std::vector<int64_t> order(corpus.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  float epoch_loss = 0.0f;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(order);
    epoch_loss = 0.0f;
    int64_t batches = 0;
    for (size_t start = 0; start < order.size();
         start += config.batch_size) {
      const size_t end = std::min(order.size(),
                                  start + config.batch_size);
      std::vector<nn::Tensor> losses;
      for (size_t i = start; i < end; ++i) {
        const std::vector<int64_t>& sentence = corpus[order[i]];
        // Pick one maskable (non-special) position.
        std::vector<int64_t> maskable;
        for (size_t p = 0; p < sentence.size(); ++p) {
          if (sentence[p] >= Vocab::kNumSpecials) {
            maskable.push_back(static_cast<int64_t>(p));
          }
        }
        if (maskable.empty()) continue;
        int64_t position;
        if (config.tail_mask_probability > 0.0f &&
            rng.Bernoulli(config.tail_mask_probability)) {
          // Mask within the trailing content tokens (the target title).
          const size_t tail = std::min<size_t>(3, maskable.size());
          position = maskable[maskable.size() - 1 - rng.UniformUint64(tail)];
        } else {
          position = maskable[rng.UniformUint64(maskable.size())];
        }
        losses.push_back(model.MlmLoss(sentence, {position}, rng));
      }
      if (losses.empty()) continue;
      nn::Tensor loss = nn::MulScalar(
          nn::AddN(losses), 1.0f / static_cast<float>(losses.size()));
      model.ZeroGrad();
      loss.Backward();
      nn::ClipGradNorm(model.Parameters(), 5.0f);
      optimizer.Step();
      epoch_loss += loss.item();
      ++batches;
    }
    epoch_loss /= static_cast<float>(std::max<int64_t>(1, batches));
    if (config.verbose) {
      DELREC_LOG(Info) << "TinyLM pretrain epoch " << epoch + 1 << "/"
                       << config.epochs << " loss=" << epoch_loss;
    }
  }
  model.SetTraining(false);
  return epoch_loss;
}

}  // namespace delrec::llm
