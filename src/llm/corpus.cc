#include "llm/corpus.h"

#include <algorithm>

#include "util/check.h"
#include "util/string_util.h"

namespace delrec::llm {
namespace {

void AppendText(const Vocab& vocab, const std::string& text,
                std::vector<int64_t>& sentence) {
  for (int64_t id : vocab.Encode(text)) sentence.push_back(id);
}

}  // namespace

std::vector<std::vector<int64_t>> BuildWorldKnowledgeCorpus(
    const data::CatalogView& catalog, const Vocab& vocab,
    int64_t sentences_per_item, util::Rng& rng) {
  DELREC_CHECK_GT(sentences_per_item, 0);
  // Genre pools as flat vectors of item ids.
  std::vector<std::vector<int64_t>> genre_items(catalog.genre_count());
  for (int64_t item = 0; item < catalog.item_count(); ++item) {
    genre_items[catalog.genre(item)].push_back(item);
  }

  std::vector<std::vector<int64_t>> corpus;
  corpus.reserve(catalog.item_count() * (sentences_per_item + 1));
  for (int64_t item = 0; item < catalog.item_count(); ++item) {
    const std::string title(catalog.title(item));
    const std::string genre(catalog.genre_name(catalog.genre(item)));
    const std::string sequel_title(catalog.title(catalog.sequel_of(item)));
    for (int64_t s = 0; s < sentences_per_item; ++s) {
      std::vector<int64_t> sentence = {Vocab::kCls};
      const int variant = static_cast<int>(rng.UniformUint64(4));
      const auto& pool = genre_items[catalog.genre(item)];
      const int64_t other = pool[rng.UniformUint64(pool.size())];
      switch (variant) {
        case 0:
          AppendText(vocab, title + " is a " + genre + " item", sentence);
          break;
        case 1:
          AppendText(vocab,
                     "fans of " + title + " also enjoy " +
                         std::string(catalog.title(other)),
                     sentence);
          break;
        case 2:
          AppendText(vocab,
                     genre + " items include " + title + " and " +
                         std::string(catalog.title(other)),
                     sentence);
          break;
        default:
          // Franchise knowledge ("the sequel of A is B") — the kind of
          // item-succession fact a web-pretrained LLM genuinely knows.
          AppendText(vocab, "after " + title + " fans watch " + sequel_title,
                     sentence);
          break;
      }
      sentence.push_back(Vocab::kSep);
      corpus.push_back(std::move(sentence));
    }
    // One guaranteed succession fact per item so the association is always
    // in the pretrained weights.
    std::vector<int64_t> sequel_sentence = {Vocab::kCls};
    AppendText(vocab, "after " + title + " fans watch " + sequel_title,
               sequel_sentence);
    sequel_sentence.push_back(Vocab::kSep);
    corpus.push_back(std::move(sequel_sentence));
  }
  return corpus;
}

std::vector<std::vector<int64_t>> BuildInteractionFormatCorpus(
    const data::CatalogView& catalog, const Vocab& vocab,
    const std::vector<data::Example>& train_examples, int64_t window,
    int64_t max_sentences, util::Rng& rng) {
  DELREC_CHECK_GT(window, 0);
  std::vector<std::vector<int64_t>> corpus;
  if (max_sentences <= 0 || train_examples.empty()) return corpus;
  // Uniform sample without replacement over the training examples.
  std::vector<int64_t> order(train_examples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  const int64_t count = std::min<int64_t>(
      max_sentences, static_cast<int64_t>(order.size()));
  for (int64_t s = 0; s < count; ++s) {
    const data::Example& example = train_examples[order[s]];
    std::vector<int64_t> sentence = {Vocab::kCls};
    AppendText(vocab, "the user watched these items in order", sentence);
    const int64_t start = std::max<int64_t>(
        0, static_cast<int64_t>(example.history.size()) - window);
    for (size_t i = start; i < example.history.size(); ++i) {
      AppendText(vocab, std::string(catalog.title(example.history[i])),
                 sentence);
      sentence.push_back(Vocab::kSep);
    }
    AppendText(vocab, "the user will watch next", sentence);
    AppendText(vocab, std::string(catalog.title(example.target)), sentence);
    sentence.push_back(Vocab::kSep);
    corpus.push_back(std::move(sentence));
  }
  return corpus;
}

}  // namespace delrec::llm
