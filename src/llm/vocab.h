#ifndef DELREC_LLM_VOCAB_H_
#define DELREC_LLM_VOCAB_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "data/dataset.h"

namespace delrec::llm {

/// Word-level vocabulary with the special tokens TinyLM needs. IDs are
/// stable: specials first, then words in insertion order.
class Vocab {
 public:
  static constexpr int64_t kPad = 0;
  static constexpr int64_t kMask = 1;
  static constexpr int64_t kSep = 2;
  static constexpr int64_t kCls = 3;
  static constexpr int64_t kUnk = 4;
  static constexpr int64_t kNumSpecials = 5;

  Vocab();

  /// Adds a word if absent; returns its id either way. Words are stored
  /// lower-cased.
  int64_t AddWord(std::string_view word);

  /// Id of a word, or kUnk if unknown.
  int64_t Lookup(std::string_view word) const;

  /// Inverse lookup (specials render as "[PAD]" etc.).
  std::string WordOf(int64_t id) const;

  int64_t size() const { return static_cast<int64_t>(words_.size()); }

  /// Tokenizes free text: lower-cases, splits on whitespace, maps words.
  /// Takes a view, so mmap-backed titles tokenize without a copy.
  std::vector<int64_t> Encode(std::string_view text) const;

  /// Builds the vocabulary for a catalog: all title words plus the fixed
  /// instruction vocabulary used by the prompt templates (PromptBuilder).
  /// Works for in-RAM and mmap-backed catalogs alike.
  static Vocab BuildFromCatalog(const data::CatalogView& catalog);

 private:
  std::vector<std::string> words_;
  std::unordered_map<std::string, int64_t> index_;
};

}  // namespace delrec::llm

#endif  // DELREC_LLM_VOCAB_H_
