#include "llm/tiny_lm.h"

#include <algorithm>
#include <cmath>

#include "llm/vocab.h"
#include "nn/gemm.h"
#include "nn/gemm_int8.h"
#include "nn/ops.h"
#include "util/check.h"
#include "util/threadpool.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DELREC_TINY_LM_X86 1
#include <immintrin.h>
#else
#define DELREC_TINY_LM_X86 0
#endif

namespace delrec::llm {

TinyLmConfig TinyLmConfig::Base(int64_t vocab_size) {
  TinyLmConfig config;
  config.vocab_size = vocab_size;
  config.model_dim = 16;
  config.num_layers = 1;
  config.num_heads = 2;
  config.ffn_dim = 32;
  return config;
}

TinyLmConfig TinyLmConfig::Large(int64_t vocab_size) {
  TinyLmConfig config;
  config.vocab_size = vocab_size;
  config.model_dim = 24;
  config.num_layers = 2;
  config.num_heads = 4;
  config.ffn_dim = 48;
  return config;
}

TinyLmConfig TinyLmConfig::XL(int64_t vocab_size) {
  TinyLmConfig config;
  config.vocab_size = vocab_size;
  config.model_dim = 32;
  config.num_layers = 2;
  config.num_heads = 4;
  config.ffn_dim = 64;
  return config;
}

PromptPiece PromptPiece::Tokens(std::vector<int64_t> tokens) {
  PromptPiece piece;
  piece.kind = Kind::kTokens;
  piece.tokens = std::move(tokens);
  return piece;
}

PromptPiece PromptPiece::Embeddings(nn::Tensor rows) {
  DELREC_CHECK(rows.defined());
  DELREC_CHECK_EQ(rows.ndim(), 2);
  PromptPiece piece;
  piece.kind = Kind::kEmbeddings;
  piece.embeddings = std::move(rows);
  return piece;
}

int64_t PromptPiece::length() const {
  return kind == Kind::kTokens ? static_cast<int64_t>(tokens.size())
                               : embeddings.dim(0);
}

TinyLmBlock::TinyLmBlock(const TinyLmConfig& config, util::Rng& rng)
    : num_heads_(config.num_heads),
      head_dim_(config.model_dim / config.num_heads),
      ln_attention_(config.model_dim),
      wq_(config.model_dim, config.model_dim, rng),
      wk_(config.model_dim, config.model_dim, rng),
      wv_(config.model_dim, config.model_dim, rng),
      wo_(config.model_dim, config.model_dim, rng),
      ln_ffn_(config.model_dim),
      ffn_in_(config.model_dim, config.ffn_dim, rng),
      ffn_out_(config.ffn_dim, config.model_dim, rng) {
  DELREC_CHECK_EQ(head_dim_ * num_heads_, config.model_dim);
  RegisterModule("ln_attention", &ln_attention_);
  RegisterModule("wq", &wq_);
  RegisterModule("wk", &wk_);
  RegisterModule("wv", &wv_);
  RegisterModule("wo", &wo_);
  RegisterModule("ln_ffn", &ln_ffn_);
  RegisterModule("ffn_in", &ffn_in_);
  RegisterModule("ffn_out", &ffn_out_);
}

nn::Tensor TinyLmBlock::Forward(const nn::Tensor& x, util::Rng& rng,
                                float dropout, int64_t prefix) const {
  const int64_t t = x.dim(0);
  DELREC_CHECK_GE(prefix, 0);
  DELREC_CHECK_LE(prefix, t);
  nn::Tensor normed = ln_attention_.Forward(x);
  nn::Tensor q = lora_wq_ ? lora_wq_->Forward(normed) : wq_.Forward(normed);
  nn::Tensor k = wk_.Forward(normed);
  nn::Tensor v = lora_wv_ ? lora_wv_->Forward(normed) : wv_.Forward(normed);
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  std::vector<nn::Tensor> heads;
  heads.reserve(num_heads_);
  for (int64_t h = 0; h < num_heads_; ++h) {
    nn::Tensor qh = nn::SliceCols(q, h * head_dim_, head_dim_);
    nn::Tensor kh = nn::SliceCols(k, h * head_dim_, head_dim_);
    nn::Tensor vh = nn::SliceCols(v, h * head_dim_, head_dim_);
    if (prefix == 0 || prefix == t) {
      // Full bidirectional (the historical path, op-for-op) — a prompt that
      // is all prefix attends within itself, which is the same computation.
      nn::Tensor attention = nn::Softmax(
          nn::MulScalar(nn::MatMul(qh, kh, false, true), scale));
      attention = nn::Dropout(attention, dropout, rng, training());
      heads.push_back(nn::MatMul(attention, vh));
      continue;
    }
    // Frozen-head boundary: prefix rows attend among themselves (their
    // hidden states never read the suffix — what makes serve-time K/V
    // caching exact), suffix rows attend over the whole sequence with the
    // prefix keys first, matching the cached path's summation order.
    nn::Tensor qp = nn::SliceRows(qh, 0, prefix);
    nn::Tensor kp = nn::SliceRows(kh, 0, prefix);
    nn::Tensor vp = nn::SliceRows(vh, 0, prefix);
    nn::Tensor attn_p = nn::Softmax(
        nn::MulScalar(nn::MatMul(qp, kp, false, true), scale));
    attn_p = nn::Dropout(attn_p, dropout, rng, training());
    nn::Tensor head_p = nn::MatMul(attn_p, vp);
    nn::Tensor qs = nn::SliceRows(qh, prefix, t - prefix);
    nn::Tensor attn_s = nn::Softmax(
        nn::MulScalar(nn::MatMul(qs, kh, false, true), scale));
    attn_s = nn::Dropout(attn_s, dropout, rng, training());
    nn::Tensor head_s = nn::MatMul(attn_s, vh);
    heads.push_back(nn::ConcatRows({head_p, head_s}));
  }
  nn::Tensor attended = wo_.Forward(nn::ConcatCols(heads));
  nn::Tensor residual = nn::Add(x, attended);
  nn::Tensor ff_in = ln_ffn_.Forward(residual);
  nn::Tensor hidden = nn::Gelu(lora_ffn_in_ ? lora_ffn_in_->Forward(ff_in)
                                            : ffn_in_.Forward(ff_in));
  hidden = nn::Dropout(hidden, dropout, rng, training());
  return nn::Add(residual, ffn_out_.Forward(hidden));
}

namespace {

// In-place row-wise softmax mirroring ops.cc's SoftmaxRows arithmetic
// exactly (row max, exp, denom accumulated in column order, multiply by the
// rounded reciprocal) so batched attention matches nn::Softmax bit-for-bit.
void SoftmaxRowsInPlace(float* x, int64_t n, int64_t c) {
  for (int64_t i = 0; i < n; ++i) {
    float* row = x + i * c;
    float mx = row[0];
    for (int64_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    float denom = 0.0f;
    for (int64_t j = 0; j < c; ++j) {
      row[j] = std::exp(row[j] - mx);
      denom += row[j];
    }
    const float inv = 1.0f / denom;
    for (int64_t j = 0; j < c; ++j) row[j] *= inv;
  }
}

// In-place tanh-approximation GELU, the same expression as nn::Gelu.
void GeluInPlace(float* x, int64_t n) {
  constexpr float kSqrt2OverPi = 0.7978845608f;
  constexpr float kCoeff = 0.044715f;
  for (int64_t i = 0; i < n; ++i) {
    const float v = x[i];
    const float inner = kSqrt2OverPi * (v + kCoeff * v * v * v);
    x[i] = 0.5f * v * (1.0f + std::tanh(inner));
  }
}

// GELU for the quantized inference path: same tanh-form expression, but the
// tanh core is the Padé(7,6) rational approximant with the argument clamped
// to ±4.97 (beyond which the approximant and tanh both read as ±1 at fp32).
// Max |gelu error| is ~1.9e-4 over the full input range — two orders of
// magnitude below the int8 activation quantization step — while replacing
// the ~25ns/element libm tanh with vectorizable float arithmetic. The fp32
// serve path keeps std::tanh (GeluInPlace) so its scores stay bit-identical
// to training-time numerics; the int8 path is tolerance-gated
// (tests/quant_parity_test.cc), which covers this approximation too.
inline float GeluPadeScalar(float v) {
  constexpr float kSqrt2OverPi = 0.7978845608f;
  constexpr float kCoeff = 0.044715f;
  float t = kSqrt2OverPi * (v + kCoeff * v * v * v);
  t = std::min(4.97f, std::max(-4.97f, t));
  const float t2 = t * t;
  const float p = t * (135135.0f + t2 * (17325.0f + t2 * (378.0f + t2)));
  const float q =
      135135.0f + t2 * (62370.0f + t2 * (3150.0f + t2 * 28.0f));
  return 0.5f * v * (1.0f + p / q);
}

#if DELREC_TINY_LM_X86
__attribute__((target("avx2,fma"))) void GeluApproxRowsAvx2(float* x,
                                                            int64_t n) {
  const __m256 ks = _mm256_set1_ps(0.7978845608f);
  const __m256 kc = _mm256_set1_ps(0.044715f);
  const __m256 clamp = _mm256_set1_ps(4.97f);
  const __m256 c0 = _mm256_set1_ps(135135.0f);
  const __m256 c1 = _mm256_set1_ps(17325.0f);
  const __m256 c2 = _mm256_set1_ps(378.0f);
  const __m256 d1 = _mm256_set1_ps(62370.0f);
  const __m256 d2 = _mm256_set1_ps(3150.0f);
  const __m256 d3 = _mm256_set1_ps(28.0f);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 one = _mm256_set1_ps(1.0f);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    __m256 t = _mm256_mul_ps(
        ks, _mm256_fmadd_ps(_mm256_mul_ps(_mm256_mul_ps(v, v), v), kc, v));
    t = _mm256_max_ps(_mm256_sub_ps(_mm256_setzero_ps(), clamp),
                      _mm256_min_ps(clamp, t));
    const __m256 t2 = _mm256_mul_ps(t, t);
    const __m256 p = _mm256_mul_ps(
        t, _mm256_fmadd_ps(
               t2, _mm256_fmadd_ps(t2, _mm256_add_ps(c2, t2), c1), c0));
    const __m256 q = _mm256_fmadd_ps(
        t2, _mm256_fmadd_ps(t2, _mm256_fmadd_ps(t2, d3, d2), d1), c0);
    _mm256_storeu_ps(
        x + i, _mm256_mul_ps(_mm256_mul_ps(half, v),
                             _mm256_add_ps(one, _mm256_div_ps(p, q))));
  }
  for (; i < n; ++i) x[i] = GeluPadeScalar(x[i]);
}
#endif  // DELREC_TINY_LM_X86

void GeluInPlaceApprox(float* x, int64_t n) {
#if DELREC_TINY_LM_X86
  static const bool avx2 =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  if (avx2) {
    GeluApproxRowsAvx2(x, n);
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) x[i] = GeluPadeScalar(x[i]);
}

// Carves an int8 activation buffer out of the fp32 arena: `floats` worth of
// rows × packed_depth bytes, rounded up to whole floats.
int8_t* AllocInt8(util::ScopedArena& arena, int64_t bytes) {
  return reinterpret_cast<int8_t*>(arena.Alloc((bytes + 3) / 4));
}

// Optional fp32 bias pointer for the int8 epilogue (Linear may be bias-free).
const float* BiasPtr(const nn::Linear& linear) {
  return linear.bias().defined() ? linear.bias().data().data() : nullptr;
}

}  // namespace

void TinyLmBlock::AttendSpans(const float* q, const float* k,
                              const float* vproj,
                              const std::vector<SequenceSpan>& spans,
                              float* attended, util::ScopedArena& arena,
                              const BlockPrefixKv* prefix_kv) const {
  const int64_t d = num_heads_ * head_dim_;
  // Attention is the one non-row-local stage: run it per sequence (the
  // batch's attention matrix is block-diagonal) with exactly the shapes and
  // op order of Forward(), head by head. Spans fan out across threads —
  // the intra-batch parallelism a one-at-a-time forward cannot have. Each
  // span's arithmetic is unchanged and writes only its own rows of
  // `attended`, so results stay bit-identical at every thread count;
  // scratch is carved out up front because the arena is not thread-safe,
  // and ParallelFor degrades to serial inside pool workers, so the GEMMs
  // below never nest a dispatch.
  //
  // Three shapes share this loop. Legacy (no boundary): one t×t pass.
  // Boundary in-span (span.prefix > 0): a p×p pass for the frozen head and
  // an s×t pass for the suffix — rows of the same GEMMs the legacy pass
  // runs, so unchanged rows stay bit-identical. Cached (prefix_kv): every
  // span is a suffix; its keys/values are the cached prefix rows followed
  // by the span's fresh rows, which is the identical s×(P+s) computation
  // the boundary pass runs for its suffix rows.
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  const int64_t cached = prefix_kv != nullptr ? prefix_kv->length : 0;
  std::vector<float*> scratch(spans.size());
  for (size_t s = 0; s < spans.size(); ++s) {
    const int64_t t = spans[s].length;
    const int64_t ctx = cached + t;
    // q + head_out over the span's rows, k + v over the full context, and
    // the span's attention logits (p·p + s·ctx ≤ t·ctx cells).
    scratch[s] = arena.Alloc(2 * t * head_dim_ + 2 * ctx * head_dim_ +
                             t * ctx);
  }
  util::ParallelFor(
      static_cast<int64_t>(spans.size()),
      [&](int64_t begin, int64_t end, int) {
        for (int64_t s = begin; s < end; ++s) {
          const SequenceSpan& span = spans[s];
          const int64_t t = span.length;
          const int64_t ctx = cached + t;
          const int64_t p = cached > 0 ? int64_t{0} : span.prefix;
          const int64_t suffix = t - p;
          float* qh = scratch[s];
          float* head_out = qh + t * head_dim_;
          float* kh = head_out + t * head_dim_;
          float* vh = kh + ctx * head_dim_;
          float* logits = vh + ctx * head_dim_;
          for (int64_t h = 0; h < num_heads_; ++h) {
            for (int64_t i = 0; i < cached; ++i) {
              const float* krow = prefix_kv->keys + i * d + h * head_dim_;
              const float* vrow = prefix_kv->values + i * d + h * head_dim_;
              std::copy(krow, krow + head_dim_, kh + i * head_dim_);
              std::copy(vrow, vrow + head_dim_, vh + i * head_dim_);
            }
            for (int64_t i = 0; i < t; ++i) {
              const float* qrow = q + (span.begin + i) * d + h * head_dim_;
              const float* krow = k + (span.begin + i) * d + h * head_dim_;
              const float* vrow =
                  vproj + (span.begin + i) * d + h * head_dim_;
              std::copy(qrow, qrow + head_dim_, qh + i * head_dim_);
              std::copy(krow, krow + head_dim_,
                        kh + (cached + i) * head_dim_);
              std::copy(vrow, vrow + head_dim_,
                        vh + (cached + i) * head_dim_);
            }
            if (p > 0) {
              // Frozen head: rows [0, p) attend among themselves.
              nn::GemmNT(qh, kh, logits, p, p, head_dim_,
                         /*accumulate=*/false);
              for (int64_t i = 0; i < p * p; ++i) logits[i] *= scale;
              SoftmaxRowsInPlace(logits, p, p);
              nn::GemmNN(logits, vh, head_out, p, head_dim_, p,
                         /*accumulate=*/false);
            }
            if (suffix > 0) {
              // Suffix rows attend over the full context (prefix keys
              // first — the cached path reproduces this column order).
              float* slogits = logits + p * p;
              nn::GemmNT(qh + p * head_dim_, kh, slogits, suffix, ctx,
                         head_dim_, /*accumulate=*/false);
              for (int64_t i = 0; i < suffix * ctx; ++i) slogits[i] *= scale;
              SoftmaxRowsInPlace(slogits, suffix, ctx);
              nn::GemmNN(slogits, vh, head_out + p * head_dim_, suffix,
                         head_dim_, ctx, /*accumulate=*/false);
            }
            for (int64_t i = 0; i < t; ++i) {
              std::copy(head_out + i * head_dim_,
                        head_out + (i + 1) * head_dim_,
                        attended + (span.begin + i) * d + h * head_dim_);
            }
          }
        }
      });
}

void TinyLmBlock::ForwardBatchInference(const float* x, int64_t total,
                                        const std::vector<SequenceSpan>& spans,
                                        float* out, util::ScopedArena& arena,
                                        const BlockPrefixKv* prefix_kv,
                                        float* capture_k,
                                        float* capture_v) const {
  if (quant_) {
    ForwardBatchInferenceQuant(x, total, spans, out, arena, prefix_kv,
                               capture_k, capture_v);
    return;
  }
  const int64_t d = num_heads_ * head_dim_;
  float* normed = arena.Alloc(total * d);
  ln_attention_.ForwardInference(x, total, normed);
  float* q = arena.Alloc(total * d);
  wq_.ForwardInference(normed, total, q);
  if (lora_wq_) lora_wq_->AddDeltaInference(normed, total, q, arena);
  float* k = arena.Alloc(total * d);
  wk_.ForwardInference(normed, total, k);
  float* vproj = arena.Alloc(total * d);
  wv_.ForwardInference(normed, total, vproj);
  if (lora_wv_) lora_wv_->AddDeltaInference(normed, total, vproj, arena);
  if (capture_k != nullptr) std::copy(k, k + total * d, capture_k);
  if (capture_v != nullptr) std::copy(vproj, vproj + total * d, capture_v);

  float* attended = arena.Alloc(total * d);
  AttendSpans(q, k, vproj, spans, attended, arena, prefix_kv);

  float* att_proj = arena.Alloc(total * d);
  wo_.ForwardInference(attended, total, att_proj);
  float* residual = arena.Alloc(total * d);
  const int64_t cells = total * d;
  for (int64_t i = 0; i < cells; ++i) residual[i] = x[i] + att_proj[i];
  float* ff_in = arena.Alloc(total * d);
  ln_ffn_.ForwardInference(residual, total, ff_in);
  const int64_t f = ffn_in_.out_features();
  float* hidden = arena.Alloc(total * f);
  ffn_in_.ForwardInference(ff_in, total, hidden);
  if (lora_ffn_in_) {
    lora_ffn_in_->AddDeltaInference(ff_in, total, hidden, arena);
  }
  GeluInPlace(hidden, total * f);
  ffn_out_.ForwardInference(hidden, total, out);
  for (int64_t i = 0; i < cells; ++i) out[i] = residual[i] + out[i];
}

void TinyLmBlock::ForwardBatchInferenceQuant(
    const float* x, int64_t total, const std::vector<SequenceSpan>& spans,
    float* out, util::ScopedArena& arena, const BlockPrefixKv* prefix_kv,
    float* capture_k, float* capture_v) const {
  // Same stage order as the fp32 path; every dense projection runs as an
  // int8 GEMM against the merged+quantized weights, with the activations
  // re-quantized per row at each projection input. LayerNorm, attention
  // (AttendSpans) and GELU stay fp32 — quantizing softmax inputs would cost
  // accuracy for no footprint win — but GELU runs the vectorized Padé
  // approximation (GeluInPlaceApprox above): at serve-scale widths libm
  // tanh would otherwise rival the projections themselves.
  const int64_t d = num_heads_ * head_dim_;
  const int64_t f = ffn_in_.out_features();
  float* normed = arena.Alloc(total * d);
  ln_attention_.ForwardInference(x, total, normed);
  const int64_t dp = quant_->wq.packed_depth();
  int8_t* act_q = AllocInt8(arena, total * dp);
  float* act_s = arena.Alloc(total);
  // One quantization of the normed input serves wq, wk and wv.
  nn::QuantizeActivationRows(normed, total, d, act_q, act_s);
  float* q = arena.Alloc(total * d);
  nn::Int8Gemm(act_q, act_s, quant_->wq, BiasPtr(wq_), q, total,
               /*accumulate=*/false);
  float* k = arena.Alloc(total * d);
  nn::Int8Gemm(act_q, act_s, quant_->wk, BiasPtr(wk_), k, total,
               /*accumulate=*/false);
  float* vproj = arena.Alloc(total * d);
  nn::Int8Gemm(act_q, act_s, quant_->wv, BiasPtr(wv_), vproj, total,
               /*accumulate=*/false);
  // Captured K/V are the fp32 int8-GEMM outputs — exactly what a stacked
  // forward would feed attention, since activation quantization is per-row.
  if (capture_k != nullptr) std::copy(k, k + total * d, capture_k);
  if (capture_v != nullptr) std::copy(vproj, vproj + total * d, capture_v);

  float* attended = arena.Alloc(total * d);
  AttendSpans(q, k, vproj, spans, attended, arena, prefix_kv);

  nn::QuantizeActivationRows(attended, total, d, act_q, act_s);
  float* att_proj = arena.Alloc(total * d);
  nn::Int8Gemm(act_q, act_s, quant_->wo, BiasPtr(wo_), att_proj, total,
               /*accumulate=*/false);
  float* residual = arena.Alloc(total * d);
  const int64_t cells = total * d;
  for (int64_t i = 0; i < cells; ++i) residual[i] = x[i] + att_proj[i];
  float* ff_in = arena.Alloc(total * d);
  ln_ffn_.ForwardInference(residual, total, ff_in);
  nn::QuantizeActivationRows(ff_in, total, d, act_q, act_s);
  float* hidden = arena.Alloc(total * f);
  nn::Int8Gemm(act_q, act_s, quant_->ffn_in, BiasPtr(ffn_in_), hidden, total,
               /*accumulate=*/false);
  GeluInPlaceApprox(hidden, total * f);
  const int64_t fp = quant_->ffn_out.packed_depth();
  int8_t* hidden_q = AllocInt8(arena, total * fp);
  nn::QuantizeActivationRows(hidden, total, f, hidden_q, act_s);
  nn::Int8Gemm(hidden_q, act_s, quant_->ffn_out, BiasPtr(ffn_out_), out,
               total, /*accumulate=*/false);
  for (int64_t i = 0; i < cells; ++i) out[i] = residual[i] + out[i];
}

void TinyLmBlock::QuantizeForInference() {
  if (quant_) return;
  const int64_t d = num_heads_ * head_dim_;
  const int64_t f = ffn_in_.out_features();
  auto from_linear = [](const nn::Linear& linear,
                        const nn::LoraLinear* adapter) {
    if (adapter != nullptr) {
      const std::vector<float> merged = adapter->MergedWeightRowMajor();
      return nn::QuantTensor::FromColumns(merged.data(),
                                          linear.in_features(),
                                          linear.out_features());
    }
    return nn::QuantTensor::FromColumns(linear.weight().data().data(),
                                        linear.in_features(),
                                        linear.out_features());
  };
  auto quant = std::make_unique<QuantWeights>();
  quant->wq = from_linear(wq_, lora_wq_.get());
  quant->wk = from_linear(wk_, nullptr);
  quant->wv = from_linear(wv_, lora_wv_.get());
  quant->wo = from_linear(wo_, nullptr);
  quant->ffn_in = from_linear(ffn_in_, lora_ffn_in_.get());
  quant->ffn_out = from_linear(ffn_out_, nullptr);
  DELREC_CHECK_EQ(quant->wq.channels(), d);
  DELREC_CHECK_EQ(quant->ffn_in.channels(), f);
  quant_ = std::move(quant);
}

size_t TinyLmBlock::InferenceWeightBytes() const {
  size_t bytes = 0;
  for (const auto& [name, tensor] : NamedParameters()) {
    bytes += tensor.data().size() * sizeof(float);
  }
  if (quant_) {
    // The six dense fp32 matrices are replaced by packed int8 + scales; the
    // adapters are merged away entirely. LN affines and biases stay fp32.
    for (const nn::Linear* linear :
         {&wq_, &wk_, &wv_, &wo_, &ffn_in_, &ffn_out_}) {
      bytes -= linear->weight().data().size() * sizeof(float);
    }
    bytes += quant_->wq.MemoryBytes() + quant_->wk.MemoryBytes() +
             quant_->wv.MemoryBytes() + quant_->wo.MemoryBytes() +
             quant_->ffn_in.MemoryBytes() + quant_->ffn_out.MemoryBytes();
  } else {
    for (const nn::LoraLinear* adapter : adapters()) {
      for (const auto& [name, tensor] : adapter->NamedParameters()) {
        bytes += tensor.data().size() * sizeof(float);
      }
    }
  }
  return bytes;
}

std::vector<nn::LoraLinear*> TinyLmBlock::EnableAdapters(int64_t rank,
                                                         float scale,
                                                         util::Rng& rng) {
  if (!lora_wq_) {
    lora_wq_ = std::make_unique<nn::LoraLinear>(&wq_, rank, scale, rng);
    lora_wv_ = std::make_unique<nn::LoraLinear>(&wv_, rank, scale, rng);
    lora_ffn_in_ =
        std::make_unique<nn::LoraLinear>(&ffn_in_, rank, scale, rng);
  }
  return adapters();
}

std::vector<nn::LoraLinear*> TinyLmBlock::adapters() const {
  std::vector<nn::LoraLinear*> out;
  if (lora_wq_) {
    out = {lora_wq_.get(), lora_wv_.get(), lora_ffn_in_.get()};
  }
  return out;
}

TinyLm::TinyLm(const TinyLmConfig& config, uint64_t seed)
    : config_(config),
      scratch_rng_(seed),
      token_embedding_(config.vocab_size, config.model_dim, scratch_rng_),
      final_norm_(config.model_dim) {
  DELREC_CHECK_GT(config.vocab_size, Vocab::kNumSpecials);
  RegisterModule("token_embedding", &token_embedding_);
  // Sinusoidal positions, scaled to the embedding init magnitude so they
  // inform but don't drown the token embeddings.
  std::vector<float> positions(config.max_positions * config.model_dim);
  for (int64_t p = 0; p < config.max_positions; ++p) {
    for (int64_t d = 0; d < config.model_dim; ++d) {
      const double rate =
          static_cast<double>(p) /
          std::pow(10000.0, 2.0 * (d / 2) / static_cast<double>(
                                                config.model_dim));
      positions[p * config.model_dim + d] =
          0.05f * static_cast<float>((d % 2 == 0) ? std::sin(rate)
                                                  : std::cos(rate));
    }
  }
  position_table_ = nn::Tensor::FromData(
      {config.max_positions, config.model_dim}, std::move(positions));
  for (int64_t b = 0; b < config.num_layers; ++b) {
    blocks_.push_back(std::make_unique<TinyLmBlock>(config_, scratch_rng_));
    RegisterModule("block" + std::to_string(b), blocks_.back().get());
  }
  RegisterModule("final_norm", &final_norm_);
  head_bias_ = nn::Tensor::Zeros({config.vocab_size}, /*requires_grad=*/true);
  RegisterParameter("head_bias", head_bias_);
}

nn::Tensor TinyLm::Encode(const std::vector<PromptPiece>& pieces,
                          float dropout, util::Rng& rng,
                          int64_t prefix_length) const {
  DELREC_CHECK(!pieces.empty());
  const nn::Tensor table = EffectiveTokenTable();
  std::vector<nn::Tensor> rows;
  rows.reserve(pieces.size());
  int64_t total_length = 0;
  for (const PromptPiece& piece : pieces) {
    if (piece.kind == PromptPiece::Kind::kTokens) {
      if (piece.tokens.empty()) continue;
      rows.push_back(nn::Rows(table, piece.tokens));
    } else {
      DELREC_CHECK_EQ(piece.embeddings.dim(1), config_.model_dim);
      rows.push_back(piece.embeddings);
    }
    total_length += piece.length();
  }
  DELREC_CHECK_GT(total_length, 0);
  DELREC_CHECK_LE(total_length, config_.max_positions)
      << "prompt longer than max_positions";
  DELREC_CHECK_GE(prefix_length, 0);
  DELREC_CHECK_LE(prefix_length, total_length);
  nn::Tensor x = rows.size() == 1 ? rows[0] : nn::ConcatRows(rows);
  x = nn::Add(x, nn::SliceRows(position_table_, 0, total_length));
  x = nn::Dropout(x, dropout, rng, training());
  for (const auto& block : blocks_) {
    x = block->Forward(x, rng, dropout, prefix_length);
  }
  return final_norm_.Forward(x);
}

nn::Tensor TinyLm::LogitsAt(const nn::Tensor& hidden, int64_t position) const {
  nn::Tensor at = nn::SliceRows(hidden, position, 1);
  return nn::AddBias(nn::MatMul(at, EffectiveTokenTable(), false, true),
                     head_bias_);
}

void TinyLm::GatherPromptRows(
    const std::vector<const std::vector<PromptPiece>*>& prompts,
    const std::vector<SequenceSpan>& spans, const float* table,
    int64_t position_offset, float* x) const {
  const int64_t d = config_.model_dim;
  const float* pos = position_table_.data().data() + position_offset * d;
  for (size_t s = 0; s < prompts.size(); ++s) {
    float* base = x + spans[s].begin * d;
    int64_t row = 0;
    for (const PromptPiece& piece : *prompts[s]) {
      if (piece.kind == PromptPiece::Kind::kTokens) {
        for (int64_t token : piece.tokens) {
          DELREC_CHECK_GE(token, 0);
          DELREC_CHECK_LT(token, config_.vocab_size);
          if (table != nullptr) {
            std::copy(table + token * d, table + (token + 1) * d,
                      base + row * d);
          } else {
            quant_table_.DequantRow(token, base + row * d);
          }
          ++row;
        }
      } else {
        DELREC_CHECK_EQ(piece.embeddings.dim(1), d);
        const std::vector<float>& rows = piece.embeddings.data();
        std::copy(rows.begin(), rows.end(), base + row * d);
        row += piece.embeddings.dim(0);
      }
    }
    // Positions restart at `position_offset` for every sequence, matching
    // Encode()'s Add(x, SliceRows(position_table_, 0, T)) — suffix-only
    // batches pass the prefix length so position rows line up with the
    // full-prompt encode.
    const int64_t cells = spans[s].length * d;
    for (int64_t i = 0; i < cells; ++i) base[i] = base[i] + pos[i];
  }
}

nn::Tensor TinyLm::EncodeBatch(
    const std::vector<const std::vector<PromptPiece>*>& prompts,
    const nn::Tensor& effective_table, std::vector<SequenceSpan>* spans,
    const std::vector<int64_t>* prefix_lengths) const {
  DELREC_CHECK(!prompts.empty());
  DELREC_CHECK(spans != nullptr);
  if (prefix_lengths != nullptr) {
    DELREC_CHECK_EQ(prefix_lengths->size(), prompts.size());
  }
  nn::NoGradGuard no_grad;
  // With a quantized token table the fp32 effective table is never built:
  // token rows are dequantized straight into the activation buffer.
  nn::Tensor table;
  const float* tv = nullptr;
  if (!quant_table_.defined()) {
    table = effective_table.defined() ? effective_table
                                      : EffectiveTokenTable();
    DELREC_CHECK_EQ(table.dim(0), config_.vocab_size);
    DELREC_CHECK_EQ(table.dim(1), config_.model_dim);
    tv = table.data().data();
  }
  const int64_t d = config_.model_dim;

  spans->clear();
  spans->reserve(prompts.size());
  int64_t total = 0;
  for (size_t i = 0; i < prompts.size(); ++i) {
    const std::vector<PromptPiece>* pieces = prompts[i];
    DELREC_CHECK(pieces != nullptr);
    DELREC_CHECK(!pieces->empty());
    int64_t length = 0;
    for (const PromptPiece& piece : *pieces) length += piece.length();
    DELREC_CHECK_GT(length, 0);
    DELREC_CHECK_LE(length, config_.max_positions)
        << "prompt longer than max_positions";
    const int64_t prefix =
        prefix_lengths != nullptr ? (*prefix_lengths)[i] : int64_t{0};
    DELREC_CHECK_GE(prefix, 0);
    DELREC_CHECK_LE(prefix, length);
    spans->push_back({total, length, prefix});
    total += length;
  }

  util::ScopedArena arena;
  float* x = arena.Alloc(total * d);
  GatherPromptRows(prompts, *spans, tv, /*position_offset=*/0, x);

  float* cur = x;
  float* next = arena.Alloc(total * d);
  for (const auto& block : blocks_) {
    block->ForwardBatchInference(cur, total, *spans, next, arena);
    std::swap(cur, next);
  }
  std::vector<float> out = util::BufferPool::Global().Acquire(total * d);
  final_norm_.ForwardInference(cur, total, out.data());
  return nn::Tensor::FromData({total, d}, std::move(out));
}

size_t TinyLm::PrefixState::MemoryBytes() const {
  size_t bytes = hidden.size() * sizeof(float);
  for (const auto& layer : keys) bytes += layer.size() * sizeof(float);
  for (const auto& layer : values) bytes += layer.size() * sizeof(float);
  return bytes;
}

TinyLm::PrefixState TinyLm::BuildPrefixState(
    const std::vector<PromptPiece>& prefix_pieces,
    const nn::Tensor& effective_table) const {
  DELREC_CHECK(!prefix_pieces.empty());
  nn::NoGradGuard no_grad;
  nn::Tensor table;
  const float* tv = nullptr;
  if (!quant_table_.defined()) {
    table = effective_table.defined() ? effective_table
                                      : EffectiveTokenTable();
    tv = table.data().data();
  }
  const int64_t d = config_.model_dim;
  int64_t length = 0;
  for (const PromptPiece& piece : prefix_pieces) length += piece.length();
  DELREC_CHECK_GT(length, 0);
  DELREC_CHECK_LE(length, config_.max_positions);

  PrefixState state;
  state.length = length;
  state.keys.resize(blocks_.size());
  state.values.resize(blocks_.size());

  // One span, entirely frozen head: the attention this runs for rows
  // [0, P) is exactly what a boundary-masked full forward computes for
  // them, so the captured K/V are the cached-path ground truth.
  const std::vector<SequenceSpan> spans = {{0, length, length}};
  const std::vector<const std::vector<PromptPiece>*> prompts = {
      &prefix_pieces};
  util::ScopedArena arena;
  float* x = arena.Alloc(length * d);
  GatherPromptRows(prompts, spans, tv, /*position_offset=*/0, x);

  float* cur = x;
  float* next = arena.Alloc(length * d);
  for (size_t b = 0; b < blocks_.size(); ++b) {
    state.keys[b].resize(length * d);
    state.values[b].resize(length * d);
    blocks_[b]->ForwardBatchInference(cur, length, spans, next, arena,
                                      /*prefix_kv=*/nullptr,
                                      state.keys[b].data(),
                                      state.values[b].data());
    std::swap(cur, next);
  }
  state.hidden.resize(length * d);
  final_norm_.ForwardInference(cur, length, state.hidden.data());
  return state;
}

nn::Tensor TinyLm::EncodeBatchWithPrefix(
    const PrefixState& prefix,
    const std::vector<const std::vector<PromptPiece>*>& suffixes,
    const nn::Tensor& effective_table,
    std::vector<SequenceSpan>* spans) const {
  DELREC_CHECK(prefix.defined());
  DELREC_CHECK_EQ(prefix.keys.size(), blocks_.size());
  DELREC_CHECK_EQ(prefix.values.size(), blocks_.size());
  DELREC_CHECK(!suffixes.empty());
  DELREC_CHECK(spans != nullptr);
  nn::NoGradGuard no_grad;
  nn::Tensor table;
  const float* tv = nullptr;
  if (!quant_table_.defined()) {
    table = effective_table.defined() ? effective_table
                                      : EffectiveTokenTable();
    tv = table.data().data();
  }
  const int64_t d = config_.model_dim;

  spans->clear();
  spans->reserve(suffixes.size());
  int64_t total = 0;
  for (const std::vector<PromptPiece>* pieces : suffixes) {
    DELREC_CHECK(pieces != nullptr);
    DELREC_CHECK(!pieces->empty());
    int64_t length = 0;
    for (const PromptPiece& piece : *pieces) length += piece.length();
    DELREC_CHECK_GT(length, 0);
    DELREC_CHECK_LE(prefix.length + length, config_.max_positions)
        << "prefix + suffix longer than max_positions";
    spans->push_back({total, length});
    total += length;
  }

  util::ScopedArena arena;
  float* x = arena.Alloc(total * d);
  GatherPromptRows(suffixes, *spans, tv,
                   /*position_offset=*/prefix.length, x);

  float* cur = x;
  float* next = arena.Alloc(total * d);
  for (size_t b = 0; b < blocks_.size(); ++b) {
    BlockPrefixKv kv;
    kv.keys = prefix.keys[b].data();
    kv.values = prefix.values[b].data();
    kv.length = prefix.length;
    blocks_[b]->ForwardBatchInference(cur, total, *spans, next, arena, &kv);
    std::swap(cur, next);
  }
  std::vector<float> out = util::BufferPool::Global().Acquire(total * d);
  final_norm_.ForwardInference(cur, total, out.data());
  return nn::Tensor::FromData({total, d}, std::move(out));
}

nn::Tensor TinyLm::LogitsAtRows(const nn::Tensor& hidden,
                                const std::vector<int64_t>& rows,
                                const nn::Tensor& effective_table) const {
  DELREC_CHECK(!rows.empty());
  nn::NoGradGuard no_grad;
  const int64_t d = config_.model_dim;
  const int64_t vocab = config_.vocab_size;
  const int64_t b = static_cast<int64_t>(rows.size());
  util::ScopedArena arena;
  float* gathered = arena.Alloc(b * d);
  const float* hv = hidden.data().data();
  for (int64_t i = 0; i < b; ++i) {
    DELREC_CHECK_GE(rows[i], 0);
    DELREC_CHECK_LT(rows[i], hidden.dim(0));
    std::copy(hv + rows[i] * d, hv + (rows[i] + 1) * d, gathered + i * d);
  }
  std::vector<float> out = util::BufferPool::Global().Acquire(b * vocab);
  if (quant_table_.defined()) {
    // Tied LM head over the quantized table: dynamic per-row activation
    // quantization, then the packed int8 kernels against all vocab channels.
    const int64_t dp = quant_table_.packed_depth();
    int8_t* gathered_q =
        reinterpret_cast<int8_t*>(arena.Alloc((b * dp + 3) / 4));
    float* gathered_s = arena.Alloc(b);
    nn::QuantizeActivationRows(gathered, b, d, gathered_q, gathered_s);
    nn::Int8Gemm(gathered_q, gathered_s, quant_table_, /*bias=*/nullptr,
                 out.data(), b, /*accumulate=*/false);
  } else {
    const nn::Tensor table =
        effective_table.defined() ? effective_table : EffectiveTokenTable();
    nn::GemmNT(gathered, table.data().data(), out.data(), b, vocab, d,
               /*accumulate=*/false);
  }
  const float* bias = head_bias_.data().data();
  for (int64_t i = 0; i < b; ++i) {
    float* row = out.data() + i * vocab;
    for (int64_t j = 0; j < vocab; ++j) row[j] = row[j] + bias[j];
  }
  return nn::Tensor::FromData({b, vocab}, std::move(out));
}

void TinyLm::QuantizeForInference(bool quantize_embedding_table) {
  for (auto& block : blocks_) block->QuantizeForInference();
  if (quantize_embedding_table && !quant_table_.defined()) {
    // Merge the embedding-LoRA delta first so the quantized table matches
    // the effective table the fp32 path gathers from.
    const nn::Tensor table = MaterializeTokenTable();
    quant_table_ = nn::QuantTensor::FromRows(
        table.data().data(), config_.vocab_size, config_.model_dim);
  }
  quantized_ = true;
}

size_t TinyLm::InferenceWeightBytes() const {
  auto tensor_bytes = [](const nn::Tensor& t) {
    return t.defined() ? t.data().size() * sizeof(float) : size_t{0};
  };
  size_t bytes = tensor_bytes(position_table_) + tensor_bytes(head_bias_);
  for (const auto& [name, tensor] : final_norm_.NamedParameters()) {
    bytes += tensor.data().size() * sizeof(float);
  }
  for (const auto& block : blocks_) bytes += block->InferenceWeightBytes();
  if (quant_table_.defined()) {
    bytes += quant_table_.MemoryBytes();
  } else {
    bytes += tensor_bytes(token_embedding_.table()) +
             tensor_bytes(embedding_lora_a_) + tensor_bytes(embedding_lora_b_);
  }
  return bytes;
}

nn::Tensor TinyLm::MaterializeTokenTable() const {
  nn::NoGradGuard no_grad;
  const nn::Tensor table = EffectiveTokenTable();
  std::vector<float> copy = table.data();
  return nn::Tensor::FromData(table.shape(), std::move(copy));
}

nn::Tensor TinyLm::EffectiveTokenTable() const {
  if (!embedding_lora_a_.defined()) return token_embedding_.table();
  return nn::Add(token_embedding_.table(),
                 nn::MulScalar(nn::MatMul(embedding_lora_a_,
                                          embedding_lora_b_),
                               embedding_lora_scale_));
}

nn::Tensor TinyLm::MlmLoss(const std::vector<int64_t>& tokens,
                           const std::vector<int64_t>& mask_positions,
                           util::Rng& rng) {
  DELREC_CHECK(!mask_positions.empty());
  std::vector<int64_t> corrupted = tokens;
  for (int64_t position : mask_positions) {
    DELREC_CHECK_GE(position, 0);
    DELREC_CHECK_LT(position, static_cast<int64_t>(tokens.size()));
    corrupted[position] = Vocab::kMask;
  }
  nn::Tensor hidden =
      Encode({PromptPiece::Tokens(corrupted)}, config_.dropout, rng);
  std::vector<nn::Tensor> losses;
  losses.reserve(mask_positions.size());
  for (int64_t position : mask_positions) {
    losses.push_back(nn::CrossEntropyWithLogits(LogitsAt(hidden, position),
                                                {tokens[position]}));
  }
  return nn::MulScalar(nn::AddN(losses),
                       1.0f / static_cast<float>(losses.size()));
}

std::vector<float> TinyLm::EmbedTokens(
    const std::vector<int64_t>& tokens) const {
  nn::NoGradGuard no_grad;
  DELREC_CHECK(!tokens.empty());
  nn::Tensor hidden =
      Encode({PromptPiece::Tokens(tokens)}, 0.0f, scratch_rng_);
  return nn::MeanRows(hidden).data();
}

std::vector<nn::LoraLinear*> TinyLm::EnableAdapters(int64_t rank,
                                                    float scale) {
  std::vector<nn::LoraLinear*> all;
  for (const auto& block : blocks_) {
    for (nn::LoraLinear* adapter :
         block->EnableAdapters(rank, scale, scratch_rng_)) {
      all.push_back(adapter);
    }
  }
  if (!embedding_lora_a_.defined()) {
    embedding_lora_a_ = nn::Tensor::Randn({config_.vocab_size, rank},
                                          scratch_rng_, 0.02f,
                                          /*requires_grad=*/true);
    embedding_lora_b_ = nn::Tensor::Zeros({rank, config_.model_dim},
                                          /*requires_grad=*/true);
    embedding_lora_scale_ = scale;
  }
  return all;
}

std::vector<nn::Tensor> TinyLm::EmbeddingAdapterParameters() const {
  if (!embedding_lora_a_.defined()) return {};
  return {embedding_lora_a_, embedding_lora_b_};
}

std::vector<nn::Tensor> TinyLm::BitFitParameters() const {
  std::vector<nn::Tensor> out;
  for (const auto& [name, tensor] : NamedParameters()) {
    const bool is_embedding_table = name.find("embedding") != std::string::npos;
    const bool is_affine = name.find("bias") != std::string::npos ||
                           name.find("gamma") != std::string::npos ||
                           name.find("beta") != std::string::npos;
    if (is_affine && !is_embedding_table) out.push_back(tensor);
  }
  return out;
}

std::vector<nn::LoraLinear*> TinyLm::adapters() const {
  std::vector<nn::LoraLinear*> all;
  for (const auto& block : blocks_) {
    for (nn::LoraLinear* adapter : block->adapters()) all.push_back(adapter);
  }
  return all;
}

}  // namespace delrec::llm
