#include "llm/tiny_lm.h"

#include <cmath>

#include "llm/vocab.h"
#include "nn/ops.h"
#include "util/check.h"

namespace delrec::llm {

TinyLmConfig TinyLmConfig::Base(int64_t vocab_size) {
  TinyLmConfig config;
  config.vocab_size = vocab_size;
  config.model_dim = 16;
  config.num_layers = 1;
  config.num_heads = 2;
  config.ffn_dim = 32;
  return config;
}

TinyLmConfig TinyLmConfig::Large(int64_t vocab_size) {
  TinyLmConfig config;
  config.vocab_size = vocab_size;
  config.model_dim = 24;
  config.num_layers = 2;
  config.num_heads = 4;
  config.ffn_dim = 48;
  return config;
}

TinyLmConfig TinyLmConfig::XL(int64_t vocab_size) {
  TinyLmConfig config;
  config.vocab_size = vocab_size;
  config.model_dim = 32;
  config.num_layers = 2;
  config.num_heads = 4;
  config.ffn_dim = 64;
  return config;
}

PromptPiece PromptPiece::Tokens(std::vector<int64_t> tokens) {
  PromptPiece piece;
  piece.kind = Kind::kTokens;
  piece.tokens = std::move(tokens);
  return piece;
}

PromptPiece PromptPiece::Embeddings(nn::Tensor rows) {
  DELREC_CHECK(rows.defined());
  DELREC_CHECK_EQ(rows.ndim(), 2);
  PromptPiece piece;
  piece.kind = Kind::kEmbeddings;
  piece.embeddings = std::move(rows);
  return piece;
}

int64_t PromptPiece::length() const {
  return kind == Kind::kTokens ? static_cast<int64_t>(tokens.size())
                               : embeddings.dim(0);
}

TinyLmBlock::TinyLmBlock(const TinyLmConfig& config, util::Rng& rng)
    : num_heads_(config.num_heads),
      head_dim_(config.model_dim / config.num_heads),
      ln_attention_(config.model_dim),
      wq_(config.model_dim, config.model_dim, rng),
      wk_(config.model_dim, config.model_dim, rng),
      wv_(config.model_dim, config.model_dim, rng),
      wo_(config.model_dim, config.model_dim, rng),
      ln_ffn_(config.model_dim),
      ffn_in_(config.model_dim, config.ffn_dim, rng),
      ffn_out_(config.ffn_dim, config.model_dim, rng) {
  DELREC_CHECK_EQ(head_dim_ * num_heads_, config.model_dim);
  RegisterModule("ln_attention", &ln_attention_);
  RegisterModule("wq", &wq_);
  RegisterModule("wk", &wk_);
  RegisterModule("wv", &wv_);
  RegisterModule("wo", &wo_);
  RegisterModule("ln_ffn", &ln_ffn_);
  RegisterModule("ffn_in", &ffn_in_);
  RegisterModule("ffn_out", &ffn_out_);
}

nn::Tensor TinyLmBlock::Forward(const nn::Tensor& x, util::Rng& rng,
                                float dropout) const {
  nn::Tensor normed = ln_attention_.Forward(x);
  nn::Tensor q = lora_wq_ ? lora_wq_->Forward(normed) : wq_.Forward(normed);
  nn::Tensor k = wk_.Forward(normed);
  nn::Tensor v = lora_wv_ ? lora_wv_->Forward(normed) : wv_.Forward(normed);
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  std::vector<nn::Tensor> heads;
  heads.reserve(num_heads_);
  for (int64_t h = 0; h < num_heads_; ++h) {
    nn::Tensor qh = nn::SliceCols(q, h * head_dim_, head_dim_);
    nn::Tensor kh = nn::SliceCols(k, h * head_dim_, head_dim_);
    nn::Tensor vh = nn::SliceCols(v, h * head_dim_, head_dim_);
    nn::Tensor attention = nn::Softmax(
        nn::MulScalar(nn::MatMul(qh, kh, false, true), scale));
    attention = nn::Dropout(attention, dropout, rng, training());
    heads.push_back(nn::MatMul(attention, vh));
  }
  nn::Tensor attended = wo_.Forward(nn::ConcatCols(heads));
  nn::Tensor residual = nn::Add(x, attended);
  nn::Tensor ff_in = ln_ffn_.Forward(residual);
  nn::Tensor hidden = nn::Gelu(lora_ffn_in_ ? lora_ffn_in_->Forward(ff_in)
                                            : ffn_in_.Forward(ff_in));
  hidden = nn::Dropout(hidden, dropout, rng, training());
  return nn::Add(residual, ffn_out_.Forward(hidden));
}

std::vector<nn::LoraLinear*> TinyLmBlock::EnableAdapters(int64_t rank,
                                                         float scale,
                                                         util::Rng& rng) {
  if (!lora_wq_) {
    lora_wq_ = std::make_unique<nn::LoraLinear>(&wq_, rank, scale, rng);
    lora_wv_ = std::make_unique<nn::LoraLinear>(&wv_, rank, scale, rng);
    lora_ffn_in_ =
        std::make_unique<nn::LoraLinear>(&ffn_in_, rank, scale, rng);
  }
  return adapters();
}

std::vector<nn::LoraLinear*> TinyLmBlock::adapters() const {
  std::vector<nn::LoraLinear*> out;
  if (lora_wq_) {
    out = {lora_wq_.get(), lora_wv_.get(), lora_ffn_in_.get()};
  }
  return out;
}

TinyLm::TinyLm(const TinyLmConfig& config, uint64_t seed)
    : config_(config),
      scratch_rng_(seed),
      token_embedding_(config.vocab_size, config.model_dim, scratch_rng_),
      final_norm_(config.model_dim) {
  DELREC_CHECK_GT(config.vocab_size, Vocab::kNumSpecials);
  RegisterModule("token_embedding", &token_embedding_);
  // Sinusoidal positions, scaled to the embedding init magnitude so they
  // inform but don't drown the token embeddings.
  std::vector<float> positions(config.max_positions * config.model_dim);
  for (int64_t p = 0; p < config.max_positions; ++p) {
    for (int64_t d = 0; d < config.model_dim; ++d) {
      const double rate =
          static_cast<double>(p) /
          std::pow(10000.0, 2.0 * (d / 2) / static_cast<double>(
                                                config.model_dim));
      positions[p * config.model_dim + d] =
          0.05f * static_cast<float>((d % 2 == 0) ? std::sin(rate)
                                                  : std::cos(rate));
    }
  }
  position_table_ = nn::Tensor::FromData(
      {config.max_positions, config.model_dim}, std::move(positions));
  for (int64_t b = 0; b < config.num_layers; ++b) {
    blocks_.push_back(std::make_unique<TinyLmBlock>(config_, scratch_rng_));
    RegisterModule("block" + std::to_string(b), blocks_.back().get());
  }
  RegisterModule("final_norm", &final_norm_);
  head_bias_ = nn::Tensor::Zeros({config.vocab_size}, /*requires_grad=*/true);
  RegisterParameter("head_bias", head_bias_);
}

nn::Tensor TinyLm::Encode(const std::vector<PromptPiece>& pieces,
                          float dropout, util::Rng& rng) const {
  DELREC_CHECK(!pieces.empty());
  const nn::Tensor table = EffectiveTokenTable();
  std::vector<nn::Tensor> rows;
  rows.reserve(pieces.size());
  int64_t total_length = 0;
  for (const PromptPiece& piece : pieces) {
    if (piece.kind == PromptPiece::Kind::kTokens) {
      if (piece.tokens.empty()) continue;
      rows.push_back(nn::Rows(table, piece.tokens));
    } else {
      DELREC_CHECK_EQ(piece.embeddings.dim(1), config_.model_dim);
      rows.push_back(piece.embeddings);
    }
    total_length += piece.length();
  }
  DELREC_CHECK_GT(total_length, 0);
  DELREC_CHECK_LE(total_length, config_.max_positions)
      << "prompt longer than max_positions";
  nn::Tensor x = rows.size() == 1 ? rows[0] : nn::ConcatRows(rows);
  x = nn::Add(x, nn::SliceRows(position_table_, 0, total_length));
  x = nn::Dropout(x, dropout, rng, training());
  for (const auto& block : blocks_) {
    x = block->Forward(x, rng, dropout);
  }
  return final_norm_.Forward(x);
}

nn::Tensor TinyLm::LogitsAt(const nn::Tensor& hidden, int64_t position) const {
  nn::Tensor at = nn::SliceRows(hidden, position, 1);
  return nn::AddBias(nn::MatMul(at, EffectiveTokenTable(), false, true),
                     head_bias_);
}

nn::Tensor TinyLm::EffectiveTokenTable() const {
  if (!embedding_lora_a_.defined()) return token_embedding_.table();
  return nn::Add(token_embedding_.table(),
                 nn::MulScalar(nn::MatMul(embedding_lora_a_,
                                          embedding_lora_b_),
                               embedding_lora_scale_));
}

nn::Tensor TinyLm::MlmLoss(const std::vector<int64_t>& tokens,
                           const std::vector<int64_t>& mask_positions,
                           util::Rng& rng) {
  DELREC_CHECK(!mask_positions.empty());
  std::vector<int64_t> corrupted = tokens;
  for (int64_t position : mask_positions) {
    DELREC_CHECK_GE(position, 0);
    DELREC_CHECK_LT(position, static_cast<int64_t>(tokens.size()));
    corrupted[position] = Vocab::kMask;
  }
  nn::Tensor hidden =
      Encode({PromptPiece::Tokens(corrupted)}, config_.dropout, rng);
  std::vector<nn::Tensor> losses;
  losses.reserve(mask_positions.size());
  for (int64_t position : mask_positions) {
    losses.push_back(nn::CrossEntropyWithLogits(LogitsAt(hidden, position),
                                                {tokens[position]}));
  }
  return nn::MulScalar(nn::AddN(losses),
                       1.0f / static_cast<float>(losses.size()));
}

std::vector<float> TinyLm::EmbedTokens(
    const std::vector<int64_t>& tokens) const {
  nn::NoGradGuard no_grad;
  DELREC_CHECK(!tokens.empty());
  nn::Tensor hidden =
      Encode({PromptPiece::Tokens(tokens)}, 0.0f, scratch_rng_);
  return nn::MeanRows(hidden).data();
}

std::vector<nn::LoraLinear*> TinyLm::EnableAdapters(int64_t rank,
                                                    float scale) {
  std::vector<nn::LoraLinear*> all;
  for (const auto& block : blocks_) {
    for (nn::LoraLinear* adapter :
         block->EnableAdapters(rank, scale, scratch_rng_)) {
      all.push_back(adapter);
    }
  }
  if (!embedding_lora_a_.defined()) {
    embedding_lora_a_ = nn::Tensor::Randn({config_.vocab_size, rank},
                                          scratch_rng_, 0.02f,
                                          /*requires_grad=*/true);
    embedding_lora_b_ = nn::Tensor::Zeros({rank, config_.model_dim},
                                          /*requires_grad=*/true);
    embedding_lora_scale_ = scale;
  }
  return all;
}

std::vector<nn::Tensor> TinyLm::EmbeddingAdapterParameters() const {
  if (!embedding_lora_a_.defined()) return {};
  return {embedding_lora_a_, embedding_lora_b_};
}

std::vector<nn::Tensor> TinyLm::BitFitParameters() const {
  std::vector<nn::Tensor> out;
  for (const auto& [name, tensor] : NamedParameters()) {
    const bool is_embedding_table = name.find("embedding") != std::string::npos;
    const bool is_affine = name.find("bias") != std::string::npos ||
                           name.find("gamma") != std::string::npos ||
                           name.find("beta") != std::string::npos;
    if (is_affine && !is_embedding_table) out.push_back(tensor);
  }
  return out;
}

std::vector<nn::LoraLinear*> TinyLm::adapters() const {
  std::vector<nn::LoraLinear*> all;
  for (const auto& block : blocks_) {
    for (nn::LoraLinear* adapter : block->adapters()) all.push_back(adapter);
  }
  return all;
}

}  // namespace delrec::llm
