#include "llm/vocab.h"

#include "util/check.h"
#include "util/string_util.h"

namespace delrec::llm {
namespace {

// Instruction words used by every prompt template plus the world-knowledge
// corpus. Registered up front so prompts never hit [UNK].
const char* const kInstructionWords[] = {
    // Recommendation instruction (Fig. 6).
    "the", "user", "watched", "these", "items", "in", "order", "candidates",
    "are", "will", "watch", "next", "is", "predict", "from", "refer", "to",
    "pattern", "knowledge", "reference", "auxiliary",
    // Temporal Analysis instruction (Fig. 4).
    "given", "that", "after", "sequence", "most", "recent", "item", "before",
    "target", "was", "example",
    // Recommendation Pattern Simulating instruction (Fig. 5).
    "model", "recommends", "top", "predicts", "simulate", "conventional",
    "sasrec", "gru4rec", "caser", "recommendation",
    // World-knowledge corpus templates.
    "a", "an", "of", "fans", "also", "enjoy", "include", "and", "genre",
    "belongs", "category", "similar", "like", "preference", "summary",
    "prefers", "mostly", "recently",
};

}  // namespace

Vocab::Vocab() {
  words_ = {"[PAD]", "[MASK]", "[SEP]", "[CLS]", "[UNK]"};
  for (int64_t i = 0; i < kNumSpecials; ++i) {
    index_[words_[i]] = i;
    index_[util::ToLower(words_[i])] = i;  // Lookup() lower-cases queries.
  }
}

int64_t Vocab::AddWord(std::string_view word) {
  const std::string key = util::ToLower(word);
  DELREC_CHECK(!key.empty());
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  const int64_t id = size();
  words_.push_back(key);
  index_[key] = id;
  return id;
}

int64_t Vocab::Lookup(std::string_view word) const {
  auto it = index_.find(util::ToLower(word));
  return it == index_.end() ? kUnk : it->second;
}

std::string Vocab::WordOf(int64_t id) const {
  DELREC_CHECK_GE(id, 0);
  DELREC_CHECK_LT(id, size());
  return words_[id];
}

std::vector<int64_t> Vocab::Encode(std::string_view text) const {
  std::vector<int64_t> ids;
  for (const std::string& word : util::Split(text, ' ')) {
    ids.push_back(Lookup(word));
  }
  return ids;
}

Vocab Vocab::BuildFromCatalog(const data::CatalogView& catalog) {
  Vocab vocab;
  for (const char* word : kInstructionWords) vocab.AddWord(word);
  for (int g = 0; g < catalog.genre_count(); ++g) {
    vocab.AddWord(catalog.genre_name(g));
  }
  for (int64_t item = 0; item < catalog.item_count(); ++item) {
    for (const std::string& word : util::Split(catalog.title(item), ' ')) {
      vocab.AddWord(word);
    }
  }
  return vocab;
}

}  // namespace delrec::llm
