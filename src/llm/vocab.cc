#include "llm/vocab.h"

#include "util/check.h"
#include "util/string_util.h"

namespace delrec::llm {
namespace {

// Instruction words used by every prompt template plus the world-knowledge
// corpus. Registered up front so prompts never hit [UNK].
const char* const kInstructionWords[] = {
    // Recommendation instruction (Fig. 6).
    "the", "user", "watched", "these", "items", "in", "order", "candidates",
    "are", "will", "watch", "next", "is", "predict", "from", "refer", "to",
    "pattern", "knowledge", "reference", "auxiliary",
    // Temporal Analysis instruction (Fig. 4).
    "given", "that", "after", "sequence", "most", "recent", "item", "before",
    "target", "was", "example",
    // Recommendation Pattern Simulating instruction (Fig. 5).
    "model", "recommends", "top", "predicts", "simulate", "conventional",
    "sasrec", "gru4rec", "caser", "recommendation",
    // World-knowledge corpus templates.
    "a", "an", "of", "fans", "also", "enjoy", "include", "and", "genre",
    "belongs", "category", "similar", "like", "preference", "summary",
    "prefers", "mostly", "recently",
};

}  // namespace

Vocab::Vocab() {
  words_ = {"[PAD]", "[MASK]", "[SEP]", "[CLS]", "[UNK]"};
  for (int64_t i = 0; i < kNumSpecials; ++i) {
    index_[words_[i]] = i;
    index_[util::ToLower(words_[i])] = i;  // Lookup() lower-cases queries.
  }
}

int64_t Vocab::AddWord(const std::string& word) {
  const std::string key = util::ToLower(word);
  DELREC_CHECK(!key.empty());
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  const int64_t id = size();
  words_.push_back(key);
  index_[key] = id;
  return id;
}

int64_t Vocab::Lookup(const std::string& word) const {
  auto it = index_.find(util::ToLower(word));
  return it == index_.end() ? kUnk : it->second;
}

std::string Vocab::WordOf(int64_t id) const {
  DELREC_CHECK_GE(id, 0);
  DELREC_CHECK_LT(id, size());
  return words_[id];
}

std::vector<int64_t> Vocab::Encode(const std::string& text) const {
  std::vector<int64_t> ids;
  for (const std::string& word : util::Split(text, ' ')) {
    ids.push_back(Lookup(word));
  }
  return ids;
}

Vocab Vocab::BuildFromCatalog(const data::Catalog& catalog) {
  Vocab vocab;
  for (const char* word : kInstructionWords) vocab.AddWord(word);
  for (const std::string& genre : catalog.genre_names) vocab.AddWord(genre);
  for (const data::Item& item : catalog.items) {
    for (const std::string& word : util::Split(item.title, ' ')) {
      vocab.AddWord(word);
    }
  }
  return vocab;
}

}  // namespace delrec::llm
