#ifndef DELREC_LLM_CORPUS_H_
#define DELREC_LLM_CORPUS_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "data/split.h"
#include "llm/vocab.h"
#include "util/rng.h"

namespace delrec::llm {

/// Generates the synthetic "world knowledge" pretraining corpus: token-id
/// sentences linking item titles to their genres and to co-preferred items.
/// Pretraining TinyLM on this corpus stands in for the web-scale pretraining
/// that gives a real LLM its knowledge of item attributes (DESIGN.md §2):
/// after pretraining, a title's tokens predict its genre context and the
/// titles of semantically related items.
///
/// Sentence templates:
///   "[CLS] <title> is a <genre> item [SEP]"
///   "[CLS] fans of <title_a> also enjoy <title_b> [SEP]"   (same genre)
///   "[CLS] <genre> items include <title_a> and <title_b> [SEP]"
std::vector<std::vector<int64_t>> BuildWorldKnowledgeCorpus(
    const data::CatalogView& catalog, const Vocab& vocab,
    int64_t sentences_per_item, util::Rng& rng);

/// Instruction-format pretraining sentences built from *training* user
/// sequences (never validation/test — no leakage):
///   "[CLS] the user watched <t1> [SEP] ... [SEP] the user will watch next
///    <t_next> [SEP]"
/// This is the analog of Flan-T5's instruction tuning: the pretrained model
/// arrives knowing the recommendation prompt *format*, while task competence
/// still comes from fine-tuning. `max_sentences` caps corpus size;
/// `window` limits shown history length.
std::vector<std::vector<int64_t>> BuildInteractionFormatCorpus(
    const data::CatalogView& catalog, const Vocab& vocab,
    const std::vector<data::Example>& train_examples, int64_t window,
    int64_t max_sentences, util::Rng& rng);

}  // namespace delrec::llm

#endif  // DELREC_LLM_CORPUS_H_
