#ifndef DELREC_LLM_TINY_LM_H_
#define DELREC_LLM_TINY_LM_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/lora.h"
#include "nn/module.h"
#include "nn/quant.h"
#include "nn/tensor.h"
#include "util/buffer_pool.h"
#include "util/rng.h"

namespace delrec::llm {

/// TinyLM architecture knobs. Three presets play the roles of the paper's
/// LLM backbones (DESIGN.md §2): kBase ≈ Bert-Large's role (small,
/// lightly pretrained MLM), kLarge ≈ Flan-T5-Large, kXL ≈ Flan-T5-XL.
struct TinyLmConfig {
  int64_t vocab_size = 0;
  int64_t model_dim = 32;
  int64_t num_layers = 2;
  int64_t num_heads = 4;
  int64_t ffn_dim = 64;
  int64_t max_positions = 192;
  float dropout = 0.1f;

  static TinyLmConfig Base(int64_t vocab_size);
  static TinyLmConfig Large(int64_t vocab_size);
  static TinyLmConfig XL(int64_t vocab_size);
};

/// A segment of a prompt: either hard tokens (looked up in the embedding
/// table) or pre-built embedding rows spliced verbatim into the input — the
/// mechanism behind both soft prompts (trainable rows) and LLaRA-style
/// injected conventional-SR embeddings.
struct PromptPiece {
  enum class Kind { kTokens, kEmbeddings };

  static PromptPiece Tokens(std::vector<int64_t> tokens);
  static PromptPiece Embeddings(nn::Tensor rows);

  int64_t length() const;

  Kind kind = Kind::kTokens;
  std::vector<int64_t> tokens;
  nn::Tensor embeddings;  // (n, model_dim) when kind == kEmbeddings.
};

/// Contiguous row range of one sequence inside a row-concatenated batch:
/// rows [begin, begin + length) of the stacked (ΣT, D) activation matrix.
/// Ragged concatenation (no padding) keeps every GEMM row a real row, which
/// is what makes the batched path bit-identical to per-sequence forwards
/// (each GEMM output row depends only on its own input row — nn/gemm.h).
///
/// `prefix` declares a frozen prompt head (PrefixLM-style boundary): rows
/// [0, prefix) of the sequence attend only among themselves, while rows
/// [prefix, length) attend over the whole sequence. prefix == 0 is full
/// bidirectional attention (the historical behavior). The boundary is what
/// makes the head's hidden states — and therefore its per-layer K/V rows —
/// independent of the suffix, so a snapshot can precompute them once
/// (TinyLm::PrefixState) and serve only the suffix, bit-identically.
struct SequenceSpan {
  int64_t begin = 0;
  int64_t length = 0;
  int64_t prefix = 0;
};

/// One layer's cached attention K/V rows for a shared frozen prefix: when
/// passed to ForwardBatchInference, every span is treated as the suffix of
/// that prefix — its rows attend over `length` cached rows followed by their
/// own span, in exactly that key order, which is the summation order the
/// uncached boundary-masked forward uses too (hence bit-identical scores).
struct BlockPrefixKv {
  const float* keys = nullptr;    // (length, model_dim), row-major.
  const float* values = nullptr;  // (length, model_dim), row-major.
  int64_t length = 0;
};

/// One pre-LN encoder block with optional AdaLoRA adapters on W_q, W_v and
/// the FFN input projection (the standard LoRA attachment points).
class TinyLmBlock : public nn::Module {
 public:
  TinyLmBlock(const TinyLmConfig& config, util::Rng& rng);

  /// `prefix` applies the SequenceSpan frozen-head boundary on the autograd
  /// path: rows [0, prefix) attend among themselves, rows [prefix, T) over
  /// everything. prefix == 0 is the historical full-bidirectional forward
  /// (identical op sequence, identical RNG draw order).
  nn::Tensor Forward(const nn::Tensor& x, util::Rng& rng, float dropout,
                     int64_t prefix = 0) const;

  /// Inference-only batched forward: `x` holds `total` row-concatenated
  /// hidden rows covering `spans`; writes the block output to `out` (same
  /// shape, must not alias x). Dense projections run as single stacked
  /// GEMMs; attention stays block-diagonal per span. Every row is
  /// bit-identical to Forward() run on that span alone (DESIGN.md §11).
  ///
  /// When `prefix_kv` is set, every span is the suffix of one shared frozen
  /// prefix whose K/V rows were captured earlier: suffix rows attend over
  /// cached-prefix-keys ++ fresh-span-keys (same summation order as the
  /// uncached boundary-masked path, so bit-identical). `capture_k` /
  /// `capture_v` (each total × model_dim) receive this block's post-adapter
  /// (or post-int8-GEMM) K/V projections — the snapshot-build hook that
  /// fills a TinyLm::PrefixState.
  void ForwardBatchInference(const float* x, int64_t total,
                             const std::vector<SequenceSpan>& spans,
                             float* out, util::ScopedArena& arena,
                             const BlockPrefixKv* prefix_kv = nullptr,
                             float* capture_k = nullptr,
                             float* capture_v = nullptr) const;

  /// Creates the adapters (rank, scale) if not present; returns them for
  /// optimizer registration. Adapter parameters are deliberately NOT part of
  /// this module's parameter tree: they form a separate parameter group.
  std::vector<nn::LoraLinear*> EnableAdapters(int64_t rank, float scale,
                                              util::Rng& rng);
  std::vector<nn::LoraLinear*> adapters() const;

  /// Builds the int8 serving weights (DESIGN.md §13): merges any adapters
  /// into their base matrices and quantizes all six dense projections
  /// per-output-channel. Idempotent; after this, ForwardBatchInference
  /// routes its dense GEMMs through nn::Int8Gemm while LayerNorm, attention
  /// and GELU stay fp32. Forward() and the fp32 batched path of an
  /// un-quantized block are unaffected.
  void QuantizeForInference();
  bool quantized() const { return quant_ != nullptr; }

  /// Bytes of weights the batched inference path reads: fp32 LN affines and
  /// biases plus either the fp32 dense matrices (+ adapter factors) or their
  /// packed int8 replacements.
  size_t InferenceWeightBytes() const;

 private:
  /// Per-block int8 serving weights, adapters already merged.
  struct QuantWeights {
    nn::QuantTensor wq, wk, wv, wo, ffn_in, ffn_out;
  };

  /// The block-diagonal per-span attention stage shared by the fp32 and int8
  /// batched paths: consumes the stacked q/k/v projections, writes the
  /// concatenated head outputs to `attended`. Arithmetic is identical to the
  /// historical inline loop (DESIGN.md §11) — the int8 path changes only how
  /// q/k/v and the surrounding projections are produced. Honors each span's
  /// frozen-prefix boundary, and with `prefix_kv` splices the shared cached
  /// K/V rows ahead of every span's fresh rows.
  void AttendSpans(const float* q, const float* k, const float* vproj,
                   const std::vector<SequenceSpan>& spans, float* attended,
                   util::ScopedArena& arena,
                   const BlockPrefixKv* prefix_kv) const;

  void ForwardBatchInferenceQuant(const float* x, int64_t total,
                                  const std::vector<SequenceSpan>& spans,
                                  float* out, util::ScopedArena& arena,
                                  const BlockPrefixKv* prefix_kv,
                                  float* capture_k, float* capture_v) const;
  int64_t num_heads_;
  int64_t head_dim_;
  nn::LayerNorm ln_attention_;
  nn::Linear wq_;
  nn::Linear wk_;
  nn::Linear wv_;
  nn::Linear wo_;
  nn::LayerNorm ln_ffn_;
  nn::Linear ffn_in_;
  nn::Linear ffn_out_;
  std::unique_ptr<nn::LoraLinear> lora_wq_;
  std::unique_ptr<nn::LoraLinear> lora_wv_;
  std::unique_ptr<nn::LoraLinear> lora_ffn_in_;
  std::unique_ptr<QuantWeights> quant_;
};

/// The miniature masked language model standing in for the paper's LLM.
/// Bidirectional transformer encoder over word tokens; the LM head is tied
/// to the token embedding table. Prompts are composed of PromptPieces so
/// soft prompts and injected embeddings ride the same path as hard tokens.
class TinyLm : public nn::Module {
 public:
  TinyLm(const TinyLmConfig& config, uint64_t seed);

  const TinyLmConfig& config() const { return config_; }

  /// Runs the encoder over a composed prompt. Returns hidden states (T, D).
  /// `prefix_length` > 0 freezes the prompt head (SequenceSpan::prefix
  /// semantics) on every block — the model-level contract that lets serving
  /// cache the head's K/V. 0 keeps full bidirectional attention.
  nn::Tensor Encode(const std::vector<PromptPiece>& pieces, float dropout,
                    util::Rng& rng, int64_t prefix_length = 0) const;

  /// LM-head logits at one position of an Encode() output: (1, vocab).
  nn::Tensor LogitsAt(const nn::Tensor& hidden, int64_t position) const;

  /// Batched inference encoder: stacks B prompts into one row-concatenated
  /// (ΣT, D) pass so the dense projections ride the blocked GEMMs once
  /// instead of B times. Row r of the result is bit-identical to the
  /// matching row of Encode(*prompts[i], 0.0f, rng) at every thread count
  /// and for every batch composition. `effective_table` is an optional
  /// precomputed MaterializeTokenTable() result (pass an undefined Tensor
  /// to recompute, as Encode does); `spans` receives each prompt's row
  /// range. No grad, no dropout, no RNG draws.
  /// `prefix_lengths`, when non-null, gives each prompt's frozen-head length
  /// (SequenceSpan::prefix); it must have one entry per prompt. This is the
  /// uncached reference for the prefix-cache contract: EncodeBatchWithPrefix
  /// suffix rows are bit-identical to the matching rows of this path.
  nn::Tensor EncodeBatch(
      const std::vector<const std::vector<PromptPiece>*>& prompts,
      const nn::Tensor& effective_table, std::vector<SequenceSpan>* spans,
      const std::vector<int64_t>* prefix_lengths = nullptr) const;

  /// Precomputed shared-prefix state (DESIGN.md §15): per-layer attention
  /// K/V rows plus the final hidden rows of a frozen prompt head, computed
  /// once per snapshot and reused by every request that shares the head.
  struct PrefixState {
    int64_t length = 0;
    std::vector<std::vector<float>> keys;    // Per layer, (length, D).
    std::vector<std::vector<float>> values;  // Per layer, (length, D).
    std::vector<float> hidden;               // (length, D), final-norm out.

    bool defined() const { return length > 0; }
    /// Bytes the cache holds resident (counted in snapshot footprints).
    size_t MemoryBytes() const;
  };

  /// Runs the encoder once over the shared prefix (as its own frozen span)
  /// and captures every block's K/V projections. The captured rows are
  /// bit-identical to what a full boundary-masked forward computes for the
  /// prefix rows, because prefix hidden states never read the suffix and
  /// each GEMM output row depends only on its own input row. Honors the
  /// int8 path when the model is quantized (per-row activation quantization
  /// makes prefix rows quantize identically alone or stacked).
  PrefixState BuildPrefixState(const std::vector<PromptPiece>& prefix_pieces,
                               const nn::Tensor& effective_table) const;

  /// Batched suffix-only encoder: each prompt holds only the per-request
  /// suffix pieces; positions continue at `prefix.length` and attention
  /// reads the cached prefix K/V. Row r is bit-identical to the matching
  /// suffix row of EncodeBatch(prefix ++ suffix, prefix_lengths) at every
  /// thread count and batch composition, fp32 and int8. Returns (Σs, D) —
  /// suffix rows only, so callers index mask positions relative to the
  /// suffix (absolute position − prefix.length).
  nn::Tensor EncodeBatchWithPrefix(
      const PrefixState& prefix,
      const std::vector<const std::vector<PromptPiece>*>& suffixes,
      const nn::Tensor& effective_table,
      std::vector<SequenceSpan>* spans) const;

  /// LM-head logits for many rows of an EncodeBatch()/Encode() output at
  /// once: output row i is bit-identical to LogitsAt(hidden, rows[i]).
  /// Returns (rows.size(), vocab).
  nn::Tensor LogitsAtRows(const nn::Tensor& hidden,
                          const std::vector<int64_t>& rows,
                          const nn::Tensor& effective_table) const;

  /// Detached materialization of the effective token table (base table plus
  /// the embedding-LoRA delta, the same values Encode gathers from): build
  /// once per frozen snapshot and share across requests instead of paying
  /// the V·r·D delta GEMM on every call.
  nn::Tensor MaterializeTokenTable() const;

  /// Convenience for pretraining: masked-LM loss on a token sentence with
  /// the tokens at `mask_positions` replaced by [MASK].
  nn::Tensor MlmLoss(const std::vector<int64_t>& tokens,
                     const std::vector<int64_t>& mask_positions,
                     util::Rng& rng);

  /// Mean-pooled final hidden state of a token sequence — the "LLM text
  /// embedding" used by LLMSEQSIM / LLM2BERT4Rec / KDA_LRD. No grad.
  std::vector<float> EmbedTokens(const std::vector<int64_t>& tokens) const;

  /// Enables AdaLoRA adapters on every block plus a low-rank delta on the
  /// (tied) token embedding table; returns the block adapters (for the
  /// stage-2 optimizer and the AdaLoraAllocator).
  std::vector<nn::LoraLinear*> EnableAdapters(int64_t rank, float scale);
  std::vector<nn::LoraLinear*> adapters() const;

  /// The embedding-delta factors (defined only after EnableAdapters): a
  /// rank-r update A·B added to the token table, reaching both the input
  /// embeddings and the tied LM head.
  std::vector<nn::Tensor> EmbeddingAdapterParameters() const;

  /// The raw token embedding table (the `modules_to_save=["embed_tokens"]`
  /// hook: PEFT setups routinely fine-tune the embedding table fully while
  /// the dense blocks get adapters).
  nn::Tensor token_table() const { return token_embedding_.table(); }

  /// The LM-head bias (BitFit-style extra PEFT parameter: cheap to tune
  /// alongside the adapters, captures token-prior shifts).
  nn::Tensor head_bias() const { return head_bias_; }

  /// BitFit parameter group: every bias and LayerNorm affine plus the LM
  /// head bias — the standard lightweight companions to LoRA adapters.
  /// (<2% of the model's parameters; the dense weight matrices stay frozen.)
  std::vector<nn::Tensor> BitFitParameters() const;

  /// Converts this (frozen) model to int8 serving form (DESIGN.md §13):
  /// every block's dense projections are merged+quantized, and — when
  /// `quantize_embedding_table` — the effective token table (base plus
  /// embedding-LoRA delta) is quantized per-row too, covering both the
  /// input gather and the tied LM head. Idempotent. Only the batched
  /// inference paths (EncodeBatch / LogitsAtRows) change; training forwards
  /// keep reading the fp32 parameters.
  void QuantizeForInference(bool quantize_embedding_table);
  bool quantized() const { return quantized_; }
  bool embedding_table_quantized() const { return quant_table_.defined(); }

  /// The quantized token table (defined only after QuantizeForInference with
  /// quantize_embedding_table) — exposed for parity tests.
  const nn::QuantTensor& quant_table() const { return quant_table_; }

  /// Bytes of weights one EncodeBatch+LogitsAtRows pass reads: blocks,
  /// final norm, position table, head bias and the token table in whichever
  /// form (fp32 or packed int8) the serve path actually touches.
  size_t InferenceWeightBytes() const;

  int64_t model_dim() const { return config_.model_dim; }
  int64_t vocab_size() const { return config_.vocab_size; }

 private:
  TinyLmConfig config_;
  mutable util::Rng scratch_rng_;
  nn::Embedding token_embedding_;
  // Fixed sinusoidal positions (T5-style non-learned scheme): prompts are
  // much longer than pretraining sentences, so learned positions would stay
  // random beyond the pretraining length and the frozen base could never
  // repair them during prompt tuning.
  nn::Tensor position_table_;
  std::vector<std::unique_ptr<TinyLmBlock>> blocks_;
  nn::LayerNorm final_norm_;
  nn::Tensor head_bias_;
  // Embedding LoRA factors (undefined until EnableAdapters).
  nn::Tensor embedding_lora_a_;  // (vocab, rank)
  nn::Tensor embedding_lora_b_;  // (rank, model_dim)
  float embedding_lora_scale_ = 0.0f;
  // Int8 serving state (set by QuantizeForInference).
  bool quantized_ = false;
  nn::QuantTensor quant_table_;  // (vocab, model_dim), LoRA delta merged.

  /// Token table with the low-rank delta applied (or the raw table).
  nn::Tensor EffectiveTokenTable() const;

  /// Gathers prompt embeddings plus position rows (positions starting at
  /// `position_offset`) into the stacked activation buffer `x`. `table` is
  /// the fp32 effective table, or nullptr to dequantize from quant_table_.
  void GatherPromptRows(
      const std::vector<const std::vector<PromptPiece>*>& prompts,
      const std::vector<SequenceSpan>& spans, const float* table,
      int64_t position_offset, float* x) const;
};

}  // namespace delrec::llm

#endif  // DELREC_LLM_TINY_LM_H_
