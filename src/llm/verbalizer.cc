#include "llm/verbalizer.h"

#include <cmath>

#include "nn/ops.h"
#include "util/check.h"

namespace delrec::llm {

Verbalizer::Verbalizer(const data::CatalogView& catalog, const Vocab& vocab)
    : vocab_size_(vocab.size()) {
  title_tokens_.reserve(catalog.item_count());
  std::vector<int64_t> document_frequency(vocab.size(), 0);
  for (int64_t item = 0; item < catalog.item_count(); ++item) {
    const std::string_view title = catalog.title(item);
    std::vector<int64_t> tokens = vocab.Encode(title);
    DELREC_CHECK(!tokens.empty()) << "empty title tokens for " << title;
    for (int64_t token : tokens) {
      DELREC_CHECK_NE(token, Vocab::kUnk)
          << "title word missing from vocab: " << title;
      ++document_frequency[token];
    }
    title_tokens_.push_back(std::move(tokens));
  }
  // IDF weights: rare title tokens identify an item far better than genre
  // words shared across a whole category, so they dominate the item score.
  const double n = static_cast<double>(catalog.item_count());
  token_weights_.assign(vocab.size(), 0.0f);
  for (int64_t t = 0; t < vocab.size(); ++t) {
    if (document_frequency[t] > 0) {
      token_weights_[t] = static_cast<float>(
          std::log(1.0 + n / static_cast<double>(document_frequency[t])));
    }
  }
  // Normalize per title so every item's weights sum to 1.
  title_weights_.reserve(title_tokens_.size());
  for (const auto& tokens : title_tokens_) {
    std::vector<float> weights;
    float total = 0.0f;
    for (int64_t token : tokens) total += token_weights_[token];
    DELREC_CHECK_GT(total, 0.0f);
    for (int64_t token : tokens) {
      weights.push_back(token_weights_[token] / total);
    }
    title_weights_.push_back(std::move(weights));
  }
  // Cached full-catalog projection for the training head.
  const int64_t num = static_cast<int64_t>(title_tokens_.size());
  std::vector<float> projection(vocab_size_ * num, 0.0f);
  for (int64_t i = 0; i < num; ++i) {
    for (size_t t = 0; t < title_tokens_[i].size(); ++t) {
      projection[title_tokens_[i][t] * num + i] += title_weights_[i][t];
    }
  }
  all_items_projection_ =
      nn::Tensor::FromData({vocab_size_, num}, std::move(projection));
}

const std::vector<int64_t>& Verbalizer::TitleTokens(int64_t item) const {
  DELREC_CHECK_GE(item, 0);
  DELREC_CHECK_LT(item, static_cast<int64_t>(title_tokens_.size()));
  return title_tokens_[item];
}

nn::Tensor Verbalizer::AllItemLogits(const nn::Tensor& token_logits) const {
  DELREC_CHECK_EQ(token_logits.dim(1), vocab_size_);
  return nn::MatMul(token_logits, all_items_projection_);
}

nn::Tensor Verbalizer::CandidateLogits(
    const nn::Tensor& token_logits,
    const std::vector<int64_t>& candidates) const {
  DELREC_CHECK_EQ(token_logits.ndim(), 2);
  DELREC_CHECK_EQ(token_logits.dim(1), vocab_size_);
  const int64_t m = static_cast<int64_t>(candidates.size());
  // Constant projection: column i averages the title tokens of candidate i.
  std::vector<float> projection(vocab_size_ * m, 0.0f);
  for (int64_t i = 0; i < m; ++i) {
    const std::vector<int64_t>& tokens = TitleTokens(candidates[i]);
    const std::vector<float>& weights = title_weights_[candidates[i]];
    for (size_t t = 0; t < tokens.size(); ++t) {
      projection[tokens[t] * m + i] += weights[t];
    }
  }
  nn::Tensor matrix =
      nn::Tensor::FromData({vocab_size_, m}, std::move(projection));
  return nn::MatMul(token_logits, matrix);  // (1, m)
}

std::vector<float> Verbalizer::Scores(
    const std::vector<float>& token_logits,
    const std::vector<int64_t>& candidates) const {
  DELREC_CHECK_EQ(static_cast<int64_t>(token_logits.size()), vocab_size_);
  return ScoresFromRow(token_logits.data(), candidates);
}

std::vector<float> Verbalizer::ScoresFromRow(
    const float* token_logits, const std::vector<int64_t>& candidates) const {
  std::vector<float> scores;
  scores.reserve(candidates.size());
  for (int64_t candidate : candidates) {
    const std::vector<int64_t>& tokens = TitleTokens(candidate);
    const std::vector<float>& weights = title_weights_[candidate];
    float total = 0.0f;
    for (size_t t = 0; t < tokens.size(); ++t) {
      total += weights[t] * token_logits[tokens[t]];
    }
    scores.push_back(total);
  }
  return scores;
}

}  // namespace delrec::llm
