#include "srmodels/trainer.h"

#include "nn/module.h"
#include "nn/ops.h"
#include "util/check.h"
#include "util/logging.h"

namespace delrec::srmodels {

float RunTrainingLoop(
    const std::vector<data::Example>& examples, const TrainConfig& config,
    nn::Optimizer& optimizer, const std::vector<nn::Tensor>& clip_parameters,
    util::Rng& rng,
    const std::function<nn::Tensor(const data::Example&)>& example_loss,
    const char* model_name) {
  DELREC_CHECK(!examples.empty()) << model_name << ": no training examples";
  std::vector<int64_t> order(examples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  float epoch_loss = 0.0f;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(order);
    epoch_loss = 0.0f;
    int64_t batches = 0;
    for (size_t start = 0; start < order.size();
         start += config.batch_size) {
      const size_t end =
          std::min(order.size(), start + config.batch_size);
      std::vector<nn::Tensor> losses;
      losses.reserve(end - start);
      for (size_t i = start; i < end; ++i) {
        losses.push_back(example_loss(examples[order[i]]));
      }
      nn::Tensor batch_loss = nn::MulScalar(
          nn::AddN(losses), 1.0f / static_cast<float>(losses.size()));
      optimizer.ZeroGrad();
      batch_loss.Backward();
      if (config.gradient_clip > 0.0f) {
        nn::ClipGradNorm(clip_parameters, config.gradient_clip);
      }
      optimizer.Step();
      epoch_loss += batch_loss.item();
      ++batches;
    }
    epoch_loss /= static_cast<float>(std::max<int64_t>(1, batches));
    if (config.verbose) {
      DELREC_LOG(Info) << model_name << " epoch " << epoch + 1 << "/"
                       << config.epochs << " loss=" << epoch_loss;
    }
  }
  return epoch_loss;
}

}  // namespace delrec::srmodels
