#include "srmodels/trainer.h"

#include <cmath>

#include "nn/anomaly.h"
#include "nn/module.h"
#include "nn/ops.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace delrec::srmodels {

util::StatusOr<TrainLoopResult> RunTrainingLoop(
    const std::vector<data::Example>& examples, const TrainConfig& config,
    nn::Optimizer& optimizer, const std::vector<nn::Tensor>& clip_parameters,
    util::Rng& rng,
    const std::function<nn::Tensor(const data::Example&)>& example_loss,
    const char* model_name, const TrainLoopHooks& hooks) {
  return RunTrainingLoop(
      static_cast<int64_t>(examples.size()), config, optimizer,
      clip_parameters, rng,
      [&](int64_t index) { return example_loss(examples[index]); },
      model_name, hooks);
}

util::StatusOr<TrainLoopResult> RunTrainingLoop(
    int64_t example_count, const TrainConfig& config, nn::Optimizer& optimizer,
    const std::vector<nn::Tensor>& clip_parameters, util::Rng& rng,
    const std::function<nn::Tensor(int64_t)>& example_loss,
    const char* model_name, const TrainLoopHooks& hooks) {
  DELREC_CHECK(example_count > 0) << model_name << ": no training examples";
  nn::LossAnomalyGuard guard(
      nn::LossAnomalyGuard::FromConfig(config.anomaly_guard));
  std::vector<int64_t> order(example_count);
  TrainLoopResult result;
  for (int epoch = hooks.start_epoch; epoch < config.epochs; ++epoch) {
    // The order is re-derived from the identity each epoch so the epoch's
    // permutation depends only on the rng state at its start — the property
    // that makes checkpoint-resumed runs bit-identical.
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.Shuffle(order);
    float epoch_loss = 0.0f;
    int64_t batches = 0;
    for (size_t start = 0; start < order.size();
         start += config.batch_size) {
      const size_t end =
          std::min(order.size(), start + config.batch_size);
      std::vector<nn::Tensor> losses;
      losses.reserve(end - start);
      for (size_t i = start; i < end; ++i) {
        losses.push_back(example_loss(order[i]));
      }
      nn::Tensor batch_loss = nn::MulScalar(
          nn::AddN(losses), 1.0f / static_cast<float>(losses.size()));
      float loss_value = batch_loss.item();
      if (util::Failpoints::Instance().ShouldCorrupt("trainer.loss")) {
        loss_value = std::nanf("");
      }
      if (guard.ShouldSkip(loss_value)) {
        ++result.anomalies_skipped;
        DELREC_LOG(Warning) << model_name << " anomalous batch loss "
                            << loss_value << " — skipping step ("
                            << guard.consecutive_anomalies() << " in a row)";
        if (guard.exhausted()) return guard.status();
        continue;
      }
      std::vector<std::vector<float>> snapshot;
      if (config.anomaly_guard.enabled) {
        snapshot = nn::SnapshotParameterData(clip_parameters);
      }
      optimizer.ZeroGrad();
      batch_loss.Backward();
      if (config.gradient_clip > 0.0f) {
        nn::ClipGradNorm(clip_parameters, config.gradient_clip);
      }
      optimizer.Step();
      if (config.anomaly_guard.enabled &&
          !nn::AllParametersFinite(clip_parameters)) {
        nn::RestoreParameterData(clip_parameters, snapshot);
        guard.ReportParameterAnomaly();
        ++result.anomalies_skipped;
        DELREC_LOG(Warning) << model_name
                            << " non-finite parameters after step — "
                               "restored pre-step values";
        if (guard.exhausted()) return guard.status();
        continue;
      }
      epoch_loss += loss_value;
      ++batches;
    }
    epoch_loss /= static_cast<float>(std::max<int64_t>(1, batches));
    result.final_loss = epoch_loss;
    if (config.verbose) {
      DELREC_LOG(Info) << model_name << " epoch " << epoch + 1 << "/"
                       << config.epochs << " loss=" << epoch_loss;
    }
    if (hooks.epoch_end) {
      DELREC_RETURN_IF_ERROR(hooks.epoch_end(epoch, epoch_loss));
    }
  }
  return result;
}

}  // namespace delrec::srmodels
