#ifndef DELREC_SRMODELS_KDA_H_
#define DELREC_SRMODELS_KDA_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"
#include "srmodels/recommender.h"
#include "util/rng.h"

namespace delrec::srmodels {

/// KDA (Wang et al., TOIS 2020), scaled reimplementation: on top of a
/// self-attentive sequence encoder, a *Fourier temporal evolution* module
/// models how item-item relation strength decays/oscillates with temporal
/// distance. score(j) = h·e_j + Σ_k w(Δ_k)·⟨p_{i_k}, q_j⟩ where
/// w(Δ) = Σ_f a_f·cos(ω_f·Δ + φ_f) has learned amplitudes/frequencies/phases
/// and Δ_k is the distance of history position k from the prediction point.
/// The KDA_LRD baseline (baselines/kda_lrd.h) augments the relation factors
/// with LLM-derived latent relations.
class Kda : public nn::Module, public SequentialRecommender {
 public:
  Kda(int64_t num_items, int64_t embedding_dim, int64_t relation_dim,
      int64_t max_length, int64_t num_frequencies, uint64_t seed);

  std::string name() const override { return "KDA"; }
  util::Status Train(const std::vector<data::Example>& examples,
                     const TrainConfig& config) override;
  std::vector<float> ScoreAllItems(
      const std::vector<int64_t>& history) const override;
  int64_t ParameterCount() const override {
    return nn::Module::ParameterCount();
  }
  int64_t item_count() const override { return num_items_; }

  /// Adds fixed (non-trainable) latent-relation vectors that are blended
  /// into the relation factors p/q — the hook LRD uses to inject relations
  /// discovered by the LLM. `vectors` has one row of width relation_dim per
  /// item; `weight` controls the blend.
  void InjectLatentRelations(const std::vector<std::vector<float>>& vectors,
                             float weight);

  int64_t relation_dim() const { return relation_dim_; }

 private:
  nn::Tensor ScoresTensor(const std::vector<int64_t>& history, float dropout,
                          util::Rng& rng) const;
  nn::Tensor RelationTable(const nn::Embedding& factors) const;

  int64_t num_items_;
  int64_t embedding_dim_;
  int64_t relation_dim_;
  int64_t max_length_;
  int64_t num_frequencies_;
  mutable util::Rng scratch_rng_;
  nn::Embedding item_embedding_;
  nn::Embedding position_embedding_;
  std::unique_ptr<nn::TransformerEncoderLayer> block_;
  nn::LayerNorm final_norm_;
  nn::Embedding relation_source_;  // p factors.
  nn::Embedding relation_target_;  // q factors.
  nn::Tensor amplitudes_;          // (num_frequencies)
  nn::Tensor frequencies_;         // (num_frequencies)
  nn::Tensor phases_;              // (num_frequencies)
  nn::Tensor item_bias_;
  // LRD injection (fixed, optional).
  std::vector<float> latent_relations_;  // num_items · relation_dim.
  float latent_weight_ = 0.0f;
};

}  // namespace delrec::srmodels

#endif  // DELREC_SRMODELS_KDA_H_
