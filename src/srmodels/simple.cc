#include "srmodels/simple.h"

#include "nn/ops.h"
#include "nn/optimizer.h"
#include "srmodels/trainer.h"
#include "util/check.h"

namespace delrec::srmodels {

PopRec::PopRec(int64_t num_items) : counts_(num_items, 0.0f) {}

util::Status PopRec::Train(const std::vector<data::Example>& examples,
                           const TrainConfig& config) {
  std::fill(counts_.begin(), counts_.end(), 0.0f);
  for (const data::Example& example : examples) {
    DELREC_CHECK_LT(example.target, static_cast<int64_t>(counts_.size()));
    counts_[example.target] += 1.0f;
    for (int64_t item : example.history) counts_[item] += 0.1f;
  }
  return util::Status::Ok();
}

std::vector<float> PopRec::ScoreAllItems(
    const std::vector<int64_t>& history) const {
  return counts_;
}

Fmc::Fmc(int64_t num_items, int64_t factor_dim, uint64_t seed)
    : num_items_(num_items),
      factor_dim_(factor_dim),
      scratch_rng_(seed),
      source_factors_(num_items, factor_dim, scratch_rng_, 0.05f),
      target_factors_(num_items, factor_dim, scratch_rng_, 0.05f) {
  item_bias_ = nn::Tensor::Zeros({num_items}, /*requires_grad=*/true);
  RegisterModule("source_factors", &source_factors_);
  RegisterModule("target_factors", &target_factors_);
  RegisterParameter("item_bias", item_bias_);
}

util::Status Fmc::Train(const std::vector<data::Example>& examples,
                        const TrainConfig& config) {
  SetTraining(true);
  util::Rng rng(config.seed);
  nn::Adam optimizer(Parameters(), config.learning_rate);
  const auto loop_result = RunTrainingLoop(
      examples, config, optimizer, Parameters(), rng,
      [&](const data::Example& example) {
        DELREC_CHECK(!example.history.empty());
        nn::Tensor source =
            source_factors_.Forward({example.history.back()});
        nn::Tensor logits = nn::AddBias(
            nn::MatMul(source, target_factors_.table(), false, true),
            item_bias_);
        return nn::CrossEntropyWithLogits(logits, {example.target});
      },
      "FMC");
  SetTraining(false);
  return loop_result.status();
}

std::vector<float> Fmc::ScoreAllItems(
    const std::vector<int64_t>& history) const {
  nn::NoGradGuard no_grad;
  DELREC_CHECK(!history.empty());
  nn::Tensor source = source_factors_.Forward({history.back()});
  nn::Tensor logits = nn::AddBias(
      nn::MatMul(source, target_factors_.table(), false, true), item_bias_);
  return logits.data();
}

}  // namespace delrec::srmodels
