#ifndef DELREC_SRMODELS_GRU4REC_H_
#define DELREC_SRMODELS_GRU4REC_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"
#include "srmodels/recommender.h"
#include "util/rng.h"

namespace delrec::srmodels {

/// GRU4Rec (Hidasi et al., ICLR 2016): a GRU consumes the interaction
/// sequence; the final hidden state scores all items against the (tied) item
/// embedding table. The paper trains it with Adagrad.
class Gru4Rec : public nn::Module, public SequentialRecommender {
 public:
  Gru4Rec(int64_t num_items, int64_t embedding_dim, uint64_t seed);

  std::string name() const override { return "GRU4Rec"; }
  util::Status Train(const std::vector<data::Example>& examples,
                     const TrainConfig& config) override;
  std::vector<float> ScoreAllItems(
      const std::vector<int64_t>& history) const override;
  /// Batched inference: equal-length histories step through the cell in
  /// lockstep as one (B, D) recurrence, amortizing per-step dispatch across
  /// the batch — the serve tier's retriever fast path. Rows stay
  /// bit-identical to the per-sequence path (the GEMMs are row-stable).
  std::vector<std::vector<float>> ScoreCandidatesBatch(
      const std::vector<std::vector<int64_t>>& histories,
      const std::vector<std::vector<int64_t>>& candidates) const override;
  nn::Tensor TrainingLogits(const std::vector<int64_t>& history,
                            float dropout, util::Rng& rng) const override;
  int64_t ParameterCount() const override {
    return nn::Module::ParameterCount();
  }
  int64_t item_count() const override { return num_items_; }

  /// Final hidden state for a history (used by LLaRA-style baselines that
  /// inject conventional-SR representations into LLMs).
  std::vector<float> EncodeHistory(
      const std::vector<int64_t>& history) const override;

  /// Item representation rows (for embedding-injection baselines).
  std::vector<float> ItemEmbedding(int64_t item) const override;
  int64_t embedding_dim() const { return embedding_dim_; }
  int64_t representation_dim() const override { return embedding_dim_; }

 private:
  nn::Tensor HiddenForHistory(const std::vector<int64_t>& history,
                              float dropout, util::Rng& rng) const;

  int64_t num_items_;
  int64_t embedding_dim_;
  // Declared before the layers so it can seed their initialization.
  mutable util::Rng scratch_rng_;
  nn::Embedding item_embedding_;
  nn::GruCell cell_;
  nn::Tensor item_bias_;
};

}  // namespace delrec::srmodels

#endif  // DELREC_SRMODELS_GRU4REC_H_
