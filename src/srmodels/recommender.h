#ifndef DELREC_SRMODELS_RECOMMENDER_H_
#define DELREC_SRMODELS_RECOMMENDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/split.h"
#include "nn/anomaly.h"
#include "nn/tensor.h"
#include "util/rng.h"
#include "util/status.h"

namespace delrec::srmodels {

/// Training knobs shared by the conventional SR models. Defaults follow the
/// paper's implementation details, with dimensions scaled to the CPU budget.
struct TrainConfig {
  int epochs = 6;
  int batch_size = 32;
  float learning_rate = 1e-3f;
  float dropout = 0.2f;
  int64_t history_length = 10;
  float gradient_clip = 5.0f;
  uint64_t seed = 7;
  bool verbose = false;

  // Loss-anomaly guard (nn::LossAnomalyGuard): non-finite or spiking batch
  // losses are skipped (parameters restored). Knobs shared with
  // core::DelRecConfig via nn::AnomalyGuardConfig.
  nn::AnomalyGuardConfig anomaly_guard;
};

/// Interface every conventional sequential recommender implements. All
/// DELRec-side consumers (pattern distillation, baselines, benches) talk to
/// this interface only.
class SequentialRecommender {
 public:
  virtual ~SequentialRecommender() = default;

  virtual std::string name() const = 0;

  /// Fits the model on training examples. Returns non-OK when training
  /// aborts recoverably (e.g. the loss-anomaly guard trips); the model is
  /// left in its last healthy state.
  virtual util::Status Train(const std::vector<data::Example>& examples,
                             const TrainConfig& config) = 0;

  /// Scores every catalog item given a history (most recent item last).
  /// Higher is better. History may be shorter than the training length.
  virtual std::vector<float> ScoreAllItems(
      const std::vector<int64_t>& history) const = 0;

  /// Scores a candidate subset (default: gather from ScoreAllItems).
  virtual std::vector<float> ScoreCandidates(
      const std::vector<int64_t>& history,
      const std::vector<int64_t>& candidates) const;

  /// Scores many (history, candidates) pairs. The default fans the
  /// per-sequence forward passes across the util::ParallelConfig thread
  /// budget; models may override with a genuinely batched forward (GRU4Rec
  /// steps equal-length histories through the cell as one (B, D) sweep).
  /// Either way, output row i is bit-identical to
  /// ScoreCandidates(histories[i], candidates[i]) for every thread count.
  /// Requires scoring to be const-thread-safe, which all bundled models
  /// satisfy (inference mutates no model state).
  virtual std::vector<std::vector<float>> ScoreCandidatesBatch(
      const std::vector<std::vector<int64_t>>& histories,
      const std::vector<std::vector<int64_t>>& candidates) const;

  /// Item ids of the k highest-scoring items, best first.
  std::vector<int64_t> TopK(const std::vector<int64_t>& history,
                            int64_t k) const;

  /// Number of trainable scalars (RQ5 reporting).
  virtual int64_t ParameterCount() const = 0;

  /// Catalog size this model scores over — the length of ScoreAllItems()'s
  /// result. 0 when unknown (no bundled model returns 0; the default exists
  /// only so external implementations keep compiling).
  virtual int64_t item_count() const { return 0; }

  /// Differentiable all-item logits for one history, shaped (1, item_count):
  /// the tensor whose values ScoreAllItems() reads out. This is the training
  /// seam shared by the model's own next-item loss and the ranking
  /// distillation trainer (src/distill/), which adds a listwise KD term over
  /// the same logits. `rng` drives dropout; pass the training-loop RNG during
  /// training and anything with dropout 0 for inference. Models without a
  /// gradient path (PopRec) return an undefined tensor, which the distill
  /// trainer rejects with InvalidArgument.
  virtual nn::Tensor TrainingLogits(const std::vector<int64_t>& history,
                                    float dropout, util::Rng& rng) const {
    (void)history;
    (void)dropout;
    (void)rng;
    return {};
  }

  /// Dense history representation (for embedding-injection baselines like
  /// LLaRA). Empty when the model has no such representation.
  virtual std::vector<float> EncodeHistory(
      const std::vector<int64_t>& history) const {
    return {};
  }

  /// Dense item representation row. Empty when unavailable.
  virtual std::vector<float> ItemEmbedding(int64_t item) const { return {}; }

  /// Width of EncodeHistory()/ItemEmbedding() vectors (0 if unsupported).
  virtual int64_t representation_dim() const { return 0; }
};

/// Ranks item ids by descending score, best first, truncated to k.
/// Delegates to eval::TopK — the repo's single top-k ordering.
std::vector<int64_t> TopKFromScores(const std::vector<float>& scores,
                                    int64_t k);

}  // namespace delrec::srmodels

#endif  // DELREC_SRMODELS_RECOMMENDER_H_
