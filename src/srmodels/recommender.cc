#include "srmodels/recommender.h"

#include <algorithm>

#include "eval/topk.h"
#include "util/check.h"
#include "util/threadpool.h"

namespace delrec::srmodels {

std::vector<float> SequentialRecommender::ScoreCandidates(
    const std::vector<int64_t>& history,
    const std::vector<int64_t>& candidates) const {
  const std::vector<float> all = ScoreAllItems(history);
  std::vector<float> out;
  out.reserve(candidates.size());
  for (int64_t candidate : candidates) {
    DELREC_CHECK_GE(candidate, 0);
    DELREC_CHECK_LT(candidate, static_cast<int64_t>(all.size()));
    out.push_back(all[candidate]);
  }
  return out;
}

std::vector<std::vector<float>> SequentialRecommender::ScoreCandidatesBatch(
    const std::vector<std::vector<int64_t>>& histories,
    const std::vector<std::vector<int64_t>>& candidates) const {
  DELREC_CHECK_EQ(histories.size(), candidates.size());
  std::vector<std::vector<float>> out(histories.size());
  util::ParallelFor(static_cast<int64_t>(histories.size()),
                    [&](int64_t begin, int64_t end, int) {
                      for (int64_t i = begin; i < end; ++i) {
                        out[i] = ScoreCandidates(histories[i], candidates[i]);
                      }
                    });
  return out;
}

std::vector<int64_t> SequentialRecommender::TopK(
    const std::vector<int64_t>& history, int64_t k) const {
  return TopKFromScores(ScoreAllItems(history), k);
}

std::vector<int64_t> TopKFromScores(const std::vector<float>& scores,
                                    int64_t k) {
  // Full-catalog scores are indexed by item id, so positional tie-breaking
  // is id tie-breaking; the shared helper keeps this ordering in one place.
  return eval::TopK(scores, k);
}

}  // namespace delrec::srmodels
