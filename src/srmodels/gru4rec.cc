#include "srmodels/gru4rec.h"

#include "nn/ops.h"
#include "nn/optimizer.h"
#include "srmodels/trainer.h"
#include "util/check.h"

namespace delrec::srmodels {

Gru4Rec::Gru4Rec(int64_t num_items, int64_t embedding_dim, uint64_t seed)
    : num_items_(num_items),
      embedding_dim_(embedding_dim),
      scratch_rng_(seed),
      item_embedding_(num_items, embedding_dim, scratch_rng_),
      cell_(embedding_dim, embedding_dim, scratch_rng_) {
  item_bias_ = nn::Tensor::Zeros({num_items}, /*requires_grad=*/true);
  RegisterModule("item_embedding", &item_embedding_);
  RegisterModule("cell", &cell_);
  RegisterParameter("item_bias", item_bias_);
}

nn::Tensor Gru4Rec::HiddenForHistory(const std::vector<int64_t>& history,
                                     float dropout, util::Rng& rng) const {
  DELREC_CHECK(!history.empty());
  nn::Tensor embedded = item_embedding_.Forward(history);  // (T, D)
  embedded = nn::Dropout(embedded, dropout, rng, training());
  nn::Tensor hidden = nn::Tensor::Zeros({1, embedding_dim_});
  for (int64_t t = 0; t < static_cast<int64_t>(history.size()); ++t) {
    hidden = cell_.Forward(nn::SliceRows(embedded, t, 1), hidden);
  }
  return hidden;  // (1, D)
}

util::Status Gru4Rec::Train(const std::vector<data::Example>& examples,
                            const TrainConfig& config) {
  SetTraining(true);
  util::Rng rng(config.seed);
  // Paper setup: Adagrad for GRU4Rec.
  nn::Adagrad optimizer(Parameters(), config.learning_rate);
  const auto loop_result = RunTrainingLoop(
      examples, config, optimizer, Parameters(), rng,
      [&](const data::Example& example) {
        nn::Tensor hidden =
            HiddenForHistory(example.history, config.dropout, rng);
        nn::Tensor logits = nn::AddBias(
            nn::MatMul(hidden, item_embedding_.table(), false, true),
            item_bias_);
        return nn::CrossEntropyWithLogits(logits, {example.target});
      },
      "GRU4Rec");
  SetTraining(false);
  return loop_result.status();
}

std::vector<float> Gru4Rec::ScoreAllItems(
    const std::vector<int64_t>& history) const {
  nn::NoGradGuard no_grad;
  nn::Tensor hidden = HiddenForHistory(history, 0.0f, scratch_rng_);
  nn::Tensor logits = nn::AddBias(
      nn::MatMul(hidden, item_embedding_.table(), false, true), item_bias_);
  return logits.data();
}

std::vector<float> Gru4Rec::EncodeHistory(
    const std::vector<int64_t>& history) const {
  nn::NoGradGuard no_grad;
  nn::Tensor hidden = HiddenForHistory(history, 0.0f, scratch_rng_);
  return hidden.data();
}

std::vector<float> Gru4Rec::ItemEmbedding(int64_t item) const {
  DELREC_CHECK_GE(item, 0);
  DELREC_CHECK_LT(item, num_items_);
  const auto& table = item_embedding_.table().data();
  return std::vector<float>(table.begin() + item * embedding_dim_,
                            table.begin() + (item + 1) * embedding_dim_);
}

}  // namespace delrec::srmodels
