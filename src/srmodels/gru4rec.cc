#include "srmodels/gru4rec.h"

#include <map>

#include "nn/ops.h"
#include "nn/optimizer.h"
#include "srmodels/trainer.h"
#include "util/check.h"

namespace delrec::srmodels {

Gru4Rec::Gru4Rec(int64_t num_items, int64_t embedding_dim, uint64_t seed)
    : num_items_(num_items),
      embedding_dim_(embedding_dim),
      scratch_rng_(seed),
      item_embedding_(num_items, embedding_dim, scratch_rng_),
      cell_(embedding_dim, embedding_dim, scratch_rng_) {
  item_bias_ = nn::Tensor::Zeros({num_items}, /*requires_grad=*/true);
  RegisterModule("item_embedding", &item_embedding_);
  RegisterModule("cell", &cell_);
  RegisterParameter("item_bias", item_bias_);
}

nn::Tensor Gru4Rec::HiddenForHistory(const std::vector<int64_t>& history,
                                     float dropout, util::Rng& rng) const {
  DELREC_CHECK(!history.empty());
  nn::Tensor embedded = item_embedding_.Forward(history);  // (T, D)
  embedded = nn::Dropout(embedded, dropout, rng, training());
  nn::Tensor hidden = nn::Tensor::Zeros({1, embedding_dim_});
  for (int64_t t = 0; t < static_cast<int64_t>(history.size()); ++t) {
    hidden = cell_.Forward(nn::SliceRows(embedded, t, 1), hidden);
  }
  return hidden;  // (1, D)
}

nn::Tensor Gru4Rec::TrainingLogits(const std::vector<int64_t>& history,
                                   float dropout, util::Rng& rng) const {
  nn::Tensor hidden = HiddenForHistory(history, dropout, rng);
  return nn::AddBias(
      nn::MatMul(hidden, item_embedding_.table(), false, true), item_bias_);
}

util::Status Gru4Rec::Train(const std::vector<data::Example>& examples,
                            const TrainConfig& config) {
  SetTraining(true);
  util::Rng rng(config.seed);
  // Paper setup: Adagrad for GRU4Rec.
  nn::Adagrad optimizer(Parameters(), config.learning_rate);
  const auto loop_result = RunTrainingLoop(
      examples, config, optimizer, Parameters(), rng,
      [&](const data::Example& example) {
        return nn::CrossEntropyWithLogits(
            TrainingLogits(example.history, config.dropout, rng),
            {example.target});
      },
      "GRU4Rec");
  SetTraining(false);
  return loop_result.status();
}

std::vector<float> Gru4Rec::ScoreAllItems(
    const std::vector<int64_t>& history) const {
  nn::NoGradGuard no_grad;
  return TrainingLogits(history, 0.0f, scratch_rng_).data();
}

std::vector<std::vector<float>> Gru4Rec::ScoreCandidatesBatch(
    const std::vector<std::vector<int64_t>>& histories,
    const std::vector<std::vector<int64_t>>& candidates) const {
  DELREC_CHECK_EQ(histories.size(), candidates.size());
  nn::NoGradGuard no_grad;
  std::vector<std::vector<float>> out(histories.size());
  // Rows of equal history length share every timestep, so the recurrence
  // runs once per group at (B, D) instead of B times at (1, D). std::map
  // keeps group order deterministic; submission order is kept within each
  // group.
  std::map<size_t, std::vector<size_t>> by_length;
  for (size_t i = 0; i < histories.size(); ++i) {
    DELREC_CHECK(!histories[i].empty());
    by_length[histories[i].size()].push_back(i);
  }
  std::vector<int64_t> step;
  for (const auto& [length, rows] : by_length) {
    const int64_t batch = static_cast<int64_t>(rows.size());
    nn::Tensor hidden = nn::Tensor::Zeros({batch, embedding_dim_});
    step.resize(rows.size());
    for (size_t t = 0; t < length; ++t) {
      for (size_t b = 0; b < rows.size(); ++b) step[b] = histories[rows[b]][t];
      hidden = cell_.Forward(item_embedding_.Forward(step), hidden);
    }
    const nn::Tensor logits = nn::AddBias(
        nn::MatMul(hidden, item_embedding_.table(), false, true), item_bias_);
    const std::vector<float>& flat = logits.data();
    for (size_t b = 0; b < rows.size(); ++b) {
      const std::vector<int64_t>& wanted = candidates[rows[b]];
      std::vector<float>& row = out[rows[b]];
      row.reserve(wanted.size());
      for (int64_t candidate : wanted) {
        DELREC_CHECK_GE(candidate, 0);
        DELREC_CHECK_LT(candidate, num_items_);
        row.push_back(flat[static_cast<size_t>(b) * num_items_ + candidate]);
      }
    }
  }
  return out;
}

std::vector<float> Gru4Rec::EncodeHistory(
    const std::vector<int64_t>& history) const {
  nn::NoGradGuard no_grad;
  nn::Tensor hidden = HiddenForHistory(history, 0.0f, scratch_rng_);
  return hidden.data();
}

std::vector<float> Gru4Rec::ItemEmbedding(int64_t item) const {
  DELREC_CHECK_GE(item, 0);
  DELREC_CHECK_LT(item, num_items_);
  const auto& table = item_embedding_.table().data();
  return std::vector<float>(table.begin() + item * embedding_dim_,
                            table.begin() + (item + 1) * embedding_dim_);
}

}  // namespace delrec::srmodels
