#ifndef DELREC_SRMODELS_SASREC_H_
#define DELREC_SRMODELS_SASREC_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"
#include "srmodels/recommender.h"
#include "util/rng.h"

namespace delrec::srmodels {

/// SASRec (Kang & McAuley, ICDM 2018): causal self-attention over the item
/// embedding sequence with learned positions; the representation at the last
/// position scores all items against the tied embedding table.
class SasRec : public nn::Module, public SequentialRecommender {
 public:
  SasRec(int64_t num_items, int64_t embedding_dim, int64_t max_length,
         int64_t num_blocks, int64_t num_heads, uint64_t seed);

  std::string name() const override { return "SASRec"; }
  util::Status Train(const std::vector<data::Example>& examples,
                     const TrainConfig& config) override;
  std::vector<float> ScoreAllItems(
      const std::vector<int64_t>& history) const override;
  nn::Tensor TrainingLogits(const std::vector<int64_t>& history,
                            float dropout, util::Rng& rng) const override;
  int64_t ParameterCount() const override {
    return nn::Module::ParameterCount();
  }
  int64_t item_count() const override { return num_items_; }

  std::vector<float> EncodeHistory(
      const std::vector<int64_t>& history) const override;
  std::vector<float> ItemEmbedding(int64_t item) const override;
  int64_t embedding_dim() const { return embedding_dim_; }
  int64_t representation_dim() const override { return embedding_dim_; }

 private:
  nn::Tensor LastHidden(const std::vector<int64_t>& history, float dropout,
                        util::Rng& rng) const;

  int64_t num_items_;
  int64_t embedding_dim_;
  int64_t max_length_;
  mutable util::Rng scratch_rng_;
  nn::Embedding item_embedding_;
  nn::Embedding position_embedding_;
  std::vector<std::unique_ptr<nn::TransformerEncoderLayer>> blocks_;
  nn::LayerNorm final_norm_;
  nn::Tensor item_bias_;
};

}  // namespace delrec::srmodels

#endif  // DELREC_SRMODELS_SASREC_H_
