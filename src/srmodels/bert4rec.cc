#include "srmodels/bert4rec.h"

#include "nn/ops.h"
#include "nn/optimizer.h"
#include "srmodels/trainer.h"
#include "util/check.h"

namespace delrec::srmodels {

Bert4Rec::Bert4Rec(int64_t num_items, int64_t embedding_dim,
                   int64_t max_length, int64_t num_blocks, int64_t num_heads,
                   uint64_t seed)
    : num_items_(num_items),
      embedding_dim_(embedding_dim),
      max_length_(max_length),
      scratch_rng_(seed),
      item_embedding_(num_items + 1, embedding_dim, scratch_rng_),
      position_embedding_(max_length + 1, embedding_dim, scratch_rng_),
      final_norm_(embedding_dim) {
  RegisterModule("item_embedding", &item_embedding_);
  RegisterModule("position_embedding", &position_embedding_);
  for (int64_t b = 0; b < num_blocks; ++b) {
    blocks_.push_back(std::make_unique<nn::TransformerEncoderLayer>(
        embedding_dim, num_heads, 2 * embedding_dim, scratch_rng_));
    RegisterModule("block" + std::to_string(b), blocks_.back().get());
  }
  RegisterModule("final_norm", &final_norm_);
  item_bias_ = nn::Tensor::Zeros({num_items}, /*requires_grad=*/true);
  RegisterParameter("item_bias", item_bias_);
}

nn::Tensor Bert4Rec::HiddenAt(const std::vector<int64_t>& tokens,
                              int64_t position, float dropout,
                              util::Rng& rng) const {
  const int64_t length = static_cast<int64_t>(tokens.size());
  DELREC_CHECK_LE(length, max_length_ + 1);
  std::vector<int64_t> positions(length);
  for (int64_t i = 0; i < length; ++i) positions[i] = i;
  nn::Tensor x = nn::Add(item_embedding_.Forward(tokens),
                         position_embedding_.Forward(positions));
  x = nn::Dropout(x, dropout, rng, training());
  for (const auto& block : blocks_) {
    // Bidirectional: no mask.
    x = block->Forward(x, nn::Tensor(), rng, dropout);
  }
  x = final_norm_.Forward(x);
  return nn::SliceRows(x, position, 1);
}

util::Status Bert4Rec::Train(const std::vector<data::Example>& examples,
                             const TrainConfig& config) {
  SetTraining(true);
  util::Rng rng(config.seed);
  nn::Adam optimizer(Parameters(), config.learning_rate);
  const auto loop_result = RunTrainingLoop(
      examples, config, optimizer, Parameters(), rng,
      [&](const data::Example& example) {
        // Cloze setup matching inference: history + [MASK]; predict target
        // at the masked position.
        std::vector<int64_t> tokens = example.history;
        if (static_cast<int64_t>(tokens.size()) > max_length_) {
          tokens.assign(example.history.end() - max_length_,
                        example.history.end());
        }
        tokens.push_back(mask_token());
        nn::Tensor hidden =
            HiddenAt(tokens, static_cast<int64_t>(tokens.size()) - 1,
                     config.dropout, rng);
        // Score only real items (exclude the [MASK] embedding row).
        nn::Tensor table =
            nn::SliceRows(item_embedding_.table(), 0, num_items_);
        nn::Tensor logits =
            nn::AddBias(nn::MatMul(hidden, table, false, true), item_bias_);
        return nn::CrossEntropyWithLogits(logits, {example.target});
      },
      "BERT4Rec");
  SetTraining(false);
  return loop_result.status();
}

std::vector<float> Bert4Rec::ScoreAllItems(
    const std::vector<int64_t>& history) const {
  nn::NoGradGuard no_grad;
  std::vector<int64_t> tokens = history;
  if (static_cast<int64_t>(tokens.size()) > max_length_) {
    tokens.assign(history.end() - max_length_, history.end());
  }
  tokens.push_back(mask_token());
  nn::Tensor hidden = HiddenAt(tokens, static_cast<int64_t>(tokens.size()) - 1,
                               0.0f, scratch_rng_);
  nn::Tensor table = nn::SliceRows(item_embedding_.table(), 0, num_items_);
  nn::Tensor logits =
      nn::AddBias(nn::MatMul(hidden, table, false, true), item_bias_);
  return logits.data();
}

void Bert4Rec::InitializeItemEmbeddings(
    const std::vector<std::vector<float>>& vectors) {
  DELREC_CHECK_EQ(static_cast<int64_t>(vectors.size()), num_items_);
  auto& table = item_embedding_.table().data();
  for (int64_t i = 0; i < num_items_; ++i) {
    DELREC_CHECK_EQ(static_cast<int64_t>(vectors[i].size()), embedding_dim_);
    std::copy(vectors[i].begin(), vectors[i].end(),
              table.begin() + i * embedding_dim_);
  }
}

}  // namespace delrec::srmodels
