#include "srmodels/factory.h"

#include <cstring>
#include <utility>

#include "nn/module.h"
#include "srmodels/caser.h"
#include "srmodels/gru4rec.h"
#include "srmodels/sasrec.h"
#include "util/check.h"

namespace delrec::srmodels {
namespace {

// Student blob layout (format 1): kStudentFormatVersion, backbone id, then
// four uint64 fields each memcpy'd across two floats (bit patterns survive
// BlobFile round-trips, which store raw float bytes), then the state dump.
constexpr float kStudentFormatVersion = 1.0f;
constexpr size_t kStudentHeaderFloats = 10;

void AppendU64(uint64_t word, std::vector<float>* out) {
  float lo = 0.0f;
  float hi = 0.0f;
  std::memcpy(&lo, &word, sizeof(lo));
  std::memcpy(&hi, reinterpret_cast<const char*>(&word) + sizeof(lo),
              sizeof(hi));
  out->push_back(lo);
  out->push_back(hi);
}

uint64_t ReadU64(const std::vector<float>& blob, size_t index) {
  uint64_t word = 0;
  std::memcpy(&word, &blob[index], sizeof(float));
  std::memcpy(reinterpret_cast<char*>(&word) + sizeof(float),
              &blob[index + 1], sizeof(float));
  return word;
}

}  // namespace

std::string BackboneName(Backbone backbone) {
  switch (backbone) {
    case Backbone::kGru4Rec:
      return "GRU4Rec";
    case Backbone::kCaser:
      return "Caser";
    case Backbone::kSasRec:
      return "SASRec";
  }
  DELREC_CHECK(false) << "unknown backbone";
}

std::unique_ptr<SequentialRecommender> MakeBackbone(Backbone backbone,
                                                    int64_t num_items,
                                                    int64_t history_length,
                                                    uint64_t seed) {
  switch (backbone) {
    case Backbone::kGru4Rec:
      // Paper: embedding size 64.
      return std::make_unique<Gru4Rec>(num_items, /*embedding_dim=*/24, seed);
    case Backbone::kCaser:
      // Paper: embedding 100, 16 horizontal filters; scaled to 32/8.
      return std::make_unique<Caser>(num_items, /*embedding_dim=*/32,
                                     /*window=*/history_length,
                                     /*horizontal_filters_per_height=*/8,
                                     /*vertical_filters=*/2, seed);
    case Backbone::kSasRec:
      // Paper: embedding 100, two self-attention blocks; scaled to 32.
      return std::make_unique<SasRec>(num_items, /*embedding_dim=*/32,
                                      /*max_length=*/history_length,
                                      /*num_blocks=*/2, /*num_heads=*/2,
                                      seed);
  }
  DELREC_CHECK(false) << "unknown backbone";
}

TrainConfig BackboneTrainConfig(Backbone backbone) {
  TrainConfig config;
  switch (backbone) {
    case Backbone::kGru4Rec:
      config.learning_rate = 0.035f;  // Adagrad.
      config.dropout = 0.15f;
      config.batch_size = 50;  // Paper batch size.
      break;
    case Backbone::kCaser:
      config.learning_rate = 2e-3f;  // Adam.
      config.dropout = 0.2f;
      config.batch_size = 64;
      break;
    case Backbone::kSasRec:
      config.learning_rate = 2e-3f;  // Adam.
      config.dropout = 0.25f;
      config.batch_size = 64;
      break;
  }
  return config;
}

std::vector<float> SerializeStudent(const StudentSpec& spec,
                                    const SequentialRecommender& model) {
  const auto* module = dynamic_cast<const nn::Module*>(&model);
  DELREC_CHECK(module != nullptr)
      << model.name() << " is not an nn::Module; cannot serialize";
  std::vector<float> state = module->StateDump();
  std::vector<float> blob;
  blob.reserve(kStudentHeaderFloats + state.size());
  blob.push_back(kStudentFormatVersion);
  blob.push_back(static_cast<float>(static_cast<int>(spec.backbone)));
  AppendU64(static_cast<uint64_t>(spec.num_items), &blob);
  AppendU64(static_cast<uint64_t>(spec.history_length), &blob);
  AppendU64(spec.seed, &blob);
  AppendU64(static_cast<uint64_t>(state.size()), &blob);
  blob.insert(blob.end(), state.begin(), state.end());
  return blob;
}

util::StatusOr<LoadedStudent> DeserializeStudent(
    const std::vector<float>& blob) {
  if (blob.size() < kStudentHeaderFloats) {
    return util::Status::InvalidArgument(
        "student blob too short for a header: " +
        std::to_string(blob.size()) + " floats");
  }
  if (blob[0] != kStudentFormatVersion) {
    return util::Status::InvalidArgument(
        "unknown student blob format version " + std::to_string(blob[0]));
  }
  const int backbone_id = static_cast<int>(blob[1]);
  if (backbone_id < static_cast<int>(Backbone::kGru4Rec) ||
      backbone_id > static_cast<int>(Backbone::kSasRec)) {
    return util::Status::InvalidArgument("unknown student backbone id " +
                                         std::to_string(backbone_id));
  }
  LoadedStudent student;
  student.spec.backbone = static_cast<Backbone>(backbone_id);
  student.spec.num_items = static_cast<int64_t>(ReadU64(blob, 2));
  student.spec.history_length = static_cast<int64_t>(ReadU64(blob, 4));
  student.spec.seed = ReadU64(blob, 6);
  const uint64_t state_size = ReadU64(blob, 8);
  if (student.spec.num_items < 1 || student.spec.history_length < 1) {
    return util::Status::InvalidArgument(
        "student blob header has non-positive dimensions");
  }
  if (blob.size() != kStudentHeaderFloats + state_size) {
    return util::Status::InvalidArgument(
        "student blob holds " +
        std::to_string(blob.size() - kStudentHeaderFloats) +
        " state floats, header says " + std::to_string(state_size));
  }
  student.model =
      MakeBackbone(student.spec.backbone, student.spec.num_items,
                   student.spec.history_length, student.spec.seed);
  auto* module = dynamic_cast<nn::Module*>(student.model.get());
  DELREC_CHECK(module != nullptr);
  if (static_cast<uint64_t>(module->StateDump().size()) != state_size) {
    return util::Status::InvalidArgument(
        "student state size mismatch: blob has " +
        std::to_string(state_size) + " floats, " +
        BackboneName(student.spec.backbone) + " with " +
        std::to_string(student.spec.num_items) + " items expects " +
        std::to_string(module->StateDump().size()));
  }
  module->LoadState(std::vector<float>(blob.begin() + kStudentHeaderFloats,
                                       blob.end()));
  return student;
}

}  // namespace delrec::srmodels
