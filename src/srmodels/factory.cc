#include "srmodels/factory.h"

#include "srmodels/caser.h"
#include "srmodels/gru4rec.h"
#include "srmodels/sasrec.h"
#include "util/check.h"

namespace delrec::srmodels {

std::string BackboneName(Backbone backbone) {
  switch (backbone) {
    case Backbone::kGru4Rec:
      return "GRU4Rec";
    case Backbone::kCaser:
      return "Caser";
    case Backbone::kSasRec:
      return "SASRec";
  }
  DELREC_CHECK(false) << "unknown backbone";
}

std::unique_ptr<SequentialRecommender> MakeBackbone(Backbone backbone,
                                                    int64_t num_items,
                                                    int64_t history_length,
                                                    uint64_t seed) {
  switch (backbone) {
    case Backbone::kGru4Rec:
      // Paper: embedding size 64.
      return std::make_unique<Gru4Rec>(num_items, /*embedding_dim=*/24, seed);
    case Backbone::kCaser:
      // Paper: embedding 100, 16 horizontal filters; scaled to 32/8.
      return std::make_unique<Caser>(num_items, /*embedding_dim=*/32,
                                     /*window=*/history_length,
                                     /*horizontal_filters_per_height=*/8,
                                     /*vertical_filters=*/2, seed);
    case Backbone::kSasRec:
      // Paper: embedding 100, two self-attention blocks; scaled to 32.
      return std::make_unique<SasRec>(num_items, /*embedding_dim=*/32,
                                      /*max_length=*/history_length,
                                      /*num_blocks=*/2, /*num_heads=*/2,
                                      seed);
  }
  DELREC_CHECK(false) << "unknown backbone";
}

TrainConfig BackboneTrainConfig(Backbone backbone) {
  TrainConfig config;
  switch (backbone) {
    case Backbone::kGru4Rec:
      config.learning_rate = 0.035f;  // Adagrad.
      config.dropout = 0.15f;
      config.batch_size = 50;  // Paper batch size.
      break;
    case Backbone::kCaser:
      config.learning_rate = 2e-3f;  // Adam.
      config.dropout = 0.2f;
      config.batch_size = 64;
      break;
    case Backbone::kSasRec:
      config.learning_rate = 2e-3f;  // Adam.
      config.dropout = 0.25f;
      config.batch_size = 64;
      break;
  }
  return config;
}

}  // namespace delrec::srmodels
