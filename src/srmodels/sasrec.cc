#include "srmodels/sasrec.h"

#include "nn/ops.h"
#include "nn/optimizer.h"
#include "srmodels/trainer.h"
#include "util/check.h"

namespace delrec::srmodels {

SasRec::SasRec(int64_t num_items, int64_t embedding_dim, int64_t max_length,
               int64_t num_blocks, int64_t num_heads, uint64_t seed)
    : num_items_(num_items),
      embedding_dim_(embedding_dim),
      max_length_(max_length),
      scratch_rng_(seed),
      item_embedding_(num_items, embedding_dim, scratch_rng_),
      position_embedding_(max_length, embedding_dim, scratch_rng_),
      final_norm_(embedding_dim) {
  RegisterModule("item_embedding", &item_embedding_);
  RegisterModule("position_embedding", &position_embedding_);
  for (int64_t b = 0; b < num_blocks; ++b) {
    blocks_.push_back(std::make_unique<nn::TransformerEncoderLayer>(
        embedding_dim, num_heads, 2 * embedding_dim, scratch_rng_));
    RegisterModule("block" + std::to_string(b), blocks_.back().get());
  }
  RegisterModule("final_norm", &final_norm_);
  item_bias_ = nn::Tensor::Zeros({num_items}, /*requires_grad=*/true);
  RegisterParameter("item_bias", item_bias_);
}

nn::Tensor SasRec::LastHidden(const std::vector<int64_t>& history,
                              float dropout, util::Rng& rng) const {
  DELREC_CHECK(!history.empty());
  // Keep the most recent max_length_ interactions.
  std::vector<int64_t> window = history;
  if (static_cast<int64_t>(window.size()) > max_length_) {
    window.assign(history.end() - max_length_, history.end());
  }
  const int64_t length = static_cast<int64_t>(window.size());
  std::vector<int64_t> positions(length);
  for (int64_t i = 0; i < length; ++i) positions[i] = i;
  nn::Tensor x = nn::Add(item_embedding_.Forward(window),
                         position_embedding_.Forward(positions));
  x = nn::Dropout(x, dropout, rng, training());
  nn::Tensor mask = nn::CausalMask(length);
  for (const auto& block : blocks_) {
    x = block->Forward(x, mask, rng, dropout);
  }
  x = final_norm_.Forward(x);
  return nn::SliceRows(x, length - 1, 1);  // (1, D)
}

nn::Tensor SasRec::TrainingLogits(const std::vector<int64_t>& history,
                                  float dropout, util::Rng& rng) const {
  nn::Tensor hidden = LastHidden(history, dropout, rng);
  return nn::AddBias(
      nn::MatMul(hidden, item_embedding_.table(), false, true), item_bias_);
}

util::Status SasRec::Train(const std::vector<data::Example>& examples,
                           const TrainConfig& config) {
  SetTraining(true);
  util::Rng rng(config.seed);
  nn::Adam optimizer(Parameters(), config.learning_rate);
  const auto loop_result = RunTrainingLoop(
      examples, config, optimizer, Parameters(), rng,
      [&](const data::Example& example) {
        return nn::CrossEntropyWithLogits(
            TrainingLogits(example.history, config.dropout, rng),
            {example.target});
      },
      "SASRec");
  SetTraining(false);
  return loop_result.status();
}

std::vector<float> SasRec::ScoreAllItems(
    const std::vector<int64_t>& history) const {
  nn::NoGradGuard no_grad;
  return TrainingLogits(history, 0.0f, scratch_rng_).data();
}

std::vector<float> SasRec::EncodeHistory(
    const std::vector<int64_t>& history) const {
  nn::NoGradGuard no_grad;
  return LastHidden(history, 0.0f, scratch_rng_).data();
}

std::vector<float> SasRec::ItemEmbedding(int64_t item) const {
  DELREC_CHECK_GE(item, 0);
  DELREC_CHECK_LT(item, num_items_);
  const auto& table = item_embedding_.table().data();
  return std::vector<float>(table.begin() + item * embedding_dim_,
                            table.begin() + (item + 1) * embedding_dim_);
}

}  // namespace delrec::srmodels
