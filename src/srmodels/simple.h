#ifndef DELREC_SRMODELS_SIMPLE_H_
#define DELREC_SRMODELS_SIMPLE_H_

#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"
#include "srmodels/recommender.h"
#include "util/rng.h"

namespace delrec::srmodels {

/// Popularity recommender: scores items by training-set frequency. The
/// classic sanity-check baseline.
class PopRec : public SequentialRecommender {
 public:
  explicit PopRec(int64_t num_items);

  std::string name() const override { return "PopRec"; }
  util::Status Train(const std::vector<data::Example>& examples,
                     const TrainConfig& config) override;
  std::vector<float> ScoreAllItems(
      const std::vector<int64_t>& history) const override;
  int64_t ParameterCount() const override { return 0; }
  int64_t item_count() const override {
    return static_cast<int64_t>(counts_.size());
  }

 private:
  std::vector<float> counts_;
};

/// Factorized first-order Markov chain (the FMC part of FPMC, Rendle et al.
/// WWW 2010): score(j | last) = ⟨e_last, f_j⟩ + b_j, trained with softmax CE.
class Fmc : public nn::Module, public SequentialRecommender {
 public:
  Fmc(int64_t num_items, int64_t factor_dim, uint64_t seed);

  std::string name() const override { return "FMC"; }
  util::Status Train(const std::vector<data::Example>& examples,
                     const TrainConfig& config) override;
  std::vector<float> ScoreAllItems(
      const std::vector<int64_t>& history) const override;
  int64_t ParameterCount() const override {
    return nn::Module::ParameterCount();
  }
  int64_t item_count() const override { return num_items_; }

 private:
  int64_t num_items_;
  int64_t factor_dim_;
  mutable util::Rng scratch_rng_;
  nn::Embedding source_factors_;
  nn::Embedding target_factors_;
  nn::Tensor item_bias_;
};

}  // namespace delrec::srmodels

#endif  // DELREC_SRMODELS_SIMPLE_H_
