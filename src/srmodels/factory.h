#ifndef DELREC_SRMODELS_FACTORY_H_
#define DELREC_SRMODELS_FACTORY_H_

#include <memory>
#include <string>

#include "srmodels/recommender.h"

namespace delrec::srmodels {

/// The three conventional SR backbones DELRec distills from.
enum class Backbone { kGru4Rec, kCaser, kSasRec };

std::string BackboneName(Backbone backbone);

/// Instantiates a backbone with the paper's architecture choices scaled to
/// this repo's CPU budget (see DESIGN.md §6).
std::unique_ptr<SequentialRecommender> MakeBackbone(Backbone backbone,
                                                    int64_t num_items,
                                                    int64_t history_length,
                                                    uint64_t seed);

/// The paper's per-model optimizer settings (§V-A3), scaled: GRU4Rec uses
/// Adagrad lr 0.01 dropout 0.3; Caser Adam lr 1e-3 dropout 0.4; SASRec Adam
/// lr 1e-3 dropout 0.5. Dropout is halved here because the synthetic
/// datasets are far smaller than the originals.
TrainConfig BackboneTrainConfig(Backbone backbone);

}  // namespace delrec::srmodels

#endif  // DELREC_SRMODELS_FACTORY_H_
