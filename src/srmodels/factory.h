#ifndef DELREC_SRMODELS_FACTORY_H_
#define DELREC_SRMODELS_FACTORY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "srmodels/recommender.h"
#include "util/status.h"

namespace delrec::srmodels {

/// The three conventional SR backbones DELRec distills from.
enum class Backbone { kGru4Rec, kCaser, kSasRec };

std::string BackboneName(Backbone backbone);

/// Instantiates a backbone with the paper's architecture choices scaled to
/// this repo's CPU budget (see DESIGN.md §6).
std::unique_ptr<SequentialRecommender> MakeBackbone(Backbone backbone,
                                                    int64_t num_items,
                                                    int64_t history_length,
                                                    uint64_t seed);

/// The paper's per-model optimizer settings (§V-A3), scaled: GRU4Rec uses
/// Adagrad lr 0.01 dropout 0.3; Caser Adam lr 1e-3 dropout 0.4; SASRec Adam
/// lr 1e-3 dropout 0.5. Dropout is halved here because the synthetic
/// datasets are far smaller than the originals.
TrainConfig BackboneTrainConfig(Backbone backbone);

/// Everything MakeBackbone needs to reconstruct a student architecture.
struct StudentSpec {
  Backbone backbone = Backbone::kGru4Rec;
  int64_t num_items = 0;
  int64_t history_length = 0;
  uint64_t seed = 0;
};

/// A student restored from a blob: the spec it was built with plus the live
/// model, parameters bit-identical to the serialized state.
struct LoadedStudent {
  StudentSpec spec;
  std::unique_ptr<SequentialRecommender> model;
};

/// Serializes a factory-built student to one float blob: a self-describing
/// header (format version, backbone, dimensions, seed — integers stored as
/// raw uint64 bit patterns across float pairs, so they survive any value
/// range) followed by the model's nn::Module::StateDump(). The blob is the
/// unit snapshots embed (core::DelRecBlobs::student_blob) and checkpoints
/// round-trip bit-identically; the layout is pinned by the committed golden
/// in tests/golden/. `model` must be the live model MakeBackbone(spec) built.
std::vector<float> SerializeStudent(const StudentSpec& spec,
                                    const SequentialRecommender& model);

/// Inverse of SerializeStudent: rebuilds the architecture via MakeBackbone
/// and restores its parameters. InvalidArgument on an unknown version,
/// unknown backbone, or a state length that mismatches the spec's
/// architecture. Scoring the result is bit-identical to scoring the model
/// that was serialized.
util::StatusOr<LoadedStudent> DeserializeStudent(
    const std::vector<float>& blob);

}  // namespace delrec::srmodels

#endif  // DELREC_SRMODELS_FACTORY_H_
