#include "srmodels/kda.h"

#include "nn/ops.h"
#include "nn/optimizer.h"
#include "srmodels/trainer.h"
#include "util/check.h"

namespace delrec::srmodels {

Kda::Kda(int64_t num_items, int64_t embedding_dim, int64_t relation_dim,
         int64_t max_length, int64_t num_frequencies, uint64_t seed)
    : num_items_(num_items),
      embedding_dim_(embedding_dim),
      relation_dim_(relation_dim),
      max_length_(max_length),
      num_frequencies_(num_frequencies),
      scratch_rng_(seed),
      item_embedding_(num_items, embedding_dim, scratch_rng_),
      position_embedding_(max_length, embedding_dim, scratch_rng_),
      final_norm_(embedding_dim),
      relation_source_(num_items, relation_dim, scratch_rng_, 0.05f),
      relation_target_(num_items, relation_dim, scratch_rng_, 0.05f) {
  block_ = std::make_unique<nn::TransformerEncoderLayer>(
      embedding_dim, 2, 2 * embedding_dim, scratch_rng_);
  amplitudes_ = nn::Tensor::Full({num_frequencies}, 0.5f,
                                 /*requires_grad=*/true);
  // Frequencies spread over [0.2, ~2]; phases at 0.
  std::vector<float> freq_init(num_frequencies);
  for (int64_t f = 0; f < num_frequencies; ++f) {
    freq_init[f] = 0.2f + 1.8f * static_cast<float>(f) /
                              static_cast<float>(std::max<int64_t>(
                                  1, num_frequencies - 1));
  }
  frequencies_ = nn::Tensor::FromData({num_frequencies}, freq_init,
                                      /*requires_grad=*/true);
  phases_ = nn::Tensor::Zeros({num_frequencies}, /*requires_grad=*/true);
  item_bias_ = nn::Tensor::Zeros({num_items}, /*requires_grad=*/true);

  RegisterModule("item_embedding", &item_embedding_);
  RegisterModule("position_embedding", &position_embedding_);
  RegisterModule("block", block_.get());
  RegisterModule("final_norm", &final_norm_);
  RegisterModule("relation_source", &relation_source_);
  RegisterModule("relation_target", &relation_target_);
  RegisterParameter("amplitudes", amplitudes_);
  RegisterParameter("frequencies", frequencies_);
  RegisterParameter("phases", phases_);
  RegisterParameter("item_bias", item_bias_);
}

nn::Tensor Kda::RelationTable(const nn::Embedding& factors) const {
  if (latent_weight_ == 0.0f) return factors.table();
  // Blend the learned factors with fixed LLM-derived latent relations.
  nn::Tensor latent = nn::Tensor::FromData({num_items_, relation_dim_},
                                           latent_relations_);
  return nn::Add(nn::MulScalar(factors.table(), 1.0f - latent_weight_),
                 nn::MulScalar(latent, latent_weight_));
}

nn::Tensor Kda::ScoresTensor(const std::vector<int64_t>& history,
                             float dropout, util::Rng& rng) const {
  DELREC_CHECK(!history.empty());
  std::vector<int64_t> window = history;
  if (static_cast<int64_t>(window.size()) > max_length_) {
    window.assign(history.end() - max_length_, history.end());
  }
  const int64_t length = static_cast<int64_t>(window.size());
  std::vector<int64_t> positions(length);
  for (int64_t i = 0; i < length; ++i) positions[i] = i;

  // Self-attentive base encoder.
  nn::Tensor x = nn::Add(item_embedding_.Forward(window),
                         position_embedding_.Forward(positions));
  x = nn::Dropout(x, dropout, rng, training());
  x = block_->Forward(x, nn::CausalMask(length), rng, dropout);
  x = final_norm_.Forward(x);
  nn::Tensor hidden = nn::SliceRows(x, length - 1, 1);
  nn::Tensor logits = nn::AddBias(
      nn::MatMul(hidden, item_embedding_.table(), false, true), item_bias_);

  // Fourier temporal relation term: Σ_k w(Δ_k) · p_{i_k} · Qᵀ.
  nn::Tensor q_table = RelationTable(relation_target_);  // (V, R)
  nn::Tensor p_rows = RelationTable(relation_source_);
  std::vector<nn::Tensor> contributions = {logits};
  for (int64_t k = 0; k < length; ++k) {
    const float delta = static_cast<float>(length - k);
    // w(Δ) = Σ_f a_f · cos(ω_f·Δ + φ_f), a differentiable scalar tensor.
    nn::Tensor argument =
        nn::Add(nn::MulScalar(frequencies_, delta), phases_);
    nn::Tensor weight =
        nn::Sum(nn::Mul(amplitudes_, nn::Cos(argument)));  // (1)
    nn::Tensor p_k = nn::Rows(p_rows, {window[k]});        // (1, R)
    nn::Tensor relation = nn::MatMul(p_k, q_table, false, true);  // (1, V)
    // Normalize by history length so long histories don't dominate.
    contributions.push_back(nn::MulScalarTensor(
        nn::MulScalar(relation, 1.0f / static_cast<float>(length)), weight));
  }
  return nn::AddN(contributions);
}

util::Status Kda::Train(const std::vector<data::Example>& examples,
                        const TrainConfig& config) {
  SetTraining(true);
  util::Rng rng(config.seed);
  nn::Adam optimizer(Parameters(), config.learning_rate);
  const auto loop_result = RunTrainingLoop(
      examples, config, optimizer, Parameters(), rng,
      [&](const data::Example& example) {
        nn::Tensor logits =
            ScoresTensor(example.history, config.dropout, rng);
        return nn::CrossEntropyWithLogits(logits, {example.target});
      },
      "KDA");
  SetTraining(false);
  return loop_result.status();
}

std::vector<float> Kda::ScoreAllItems(
    const std::vector<int64_t>& history) const {
  nn::NoGradGuard no_grad;
  return ScoresTensor(history, 0.0f, scratch_rng_).data();
}

void Kda::InjectLatentRelations(
    const std::vector<std::vector<float>>& vectors, float weight) {
  DELREC_CHECK_EQ(static_cast<int64_t>(vectors.size()), num_items_);
  DELREC_CHECK_GE(weight, 0.0f);
  DELREC_CHECK_LE(weight, 1.0f);
  latent_relations_.clear();
  latent_relations_.reserve(num_items_ * relation_dim_);
  for (const auto& row : vectors) {
    DELREC_CHECK_EQ(static_cast<int64_t>(row.size()), relation_dim_);
    latent_relations_.insert(latent_relations_.end(), row.begin(), row.end());
  }
  latent_weight_ = weight;
}

}  // namespace delrec::srmodels
