#ifndef DELREC_SRMODELS_BERT4REC_H_
#define DELREC_SRMODELS_BERT4REC_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"
#include "srmodels/recommender.h"
#include "util/rng.h"

namespace delrec::srmodels {

/// BERT4Rec (Sun et al., CIKM 2019): bidirectional transformer trained with
/// a cloze objective — mask positions, predict the masked items. At
/// inference a [MASK] token is appended and its representation scores the
/// next item. Serves as the substrate of the LLM2BERT4Rec baseline, which
/// initializes the item embedding table from (PCA-reduced) LLM title
/// embeddings — see InitializeItemEmbeddings().
class Bert4Rec : public nn::Module, public SequentialRecommender {
 public:
  Bert4Rec(int64_t num_items, int64_t embedding_dim, int64_t max_length,
           int64_t num_blocks, int64_t num_heads, uint64_t seed);

  std::string name() const override { return "BERT4Rec"; }
  util::Status Train(const std::vector<data::Example>& examples,
                     const TrainConfig& config) override;
  std::vector<float> ScoreAllItems(
      const std::vector<int64_t>& history) const override;
  int64_t ParameterCount() const override {
    return nn::Module::ParameterCount();
  }
  int64_t item_count() const override { return num_items_; }

  /// Overwrites item embedding rows with external vectors (one per item,
  /// width == embedding_dim). The LLM2BERT4Rec initialization hook.
  void InitializeItemEmbeddings(
      const std::vector<std::vector<float>>& vectors);

  int64_t mask_token() const { return num_items_; }

 private:
  nn::Tensor HiddenAt(const std::vector<int64_t>& tokens, int64_t position,
                      float dropout, util::Rng& rng) const;

  int64_t num_items_;
  int64_t embedding_dim_;
  int64_t max_length_;
  mutable util::Rng scratch_rng_;
  nn::Embedding item_embedding_;  // num_items + 1 rows; last is [MASK].
  nn::Embedding position_embedding_;
  std::vector<std::unique_ptr<nn::TransformerEncoderLayer>> blocks_;
  nn::LayerNorm final_norm_;
  nn::Tensor item_bias_;
};

}  // namespace delrec::srmodels

#endif  // DELREC_SRMODELS_BERT4REC_H_
