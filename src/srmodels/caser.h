#ifndef DELREC_SRMODELS_CASER_H_
#define DELREC_SRMODELS_CASER_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"
#include "srmodels/recommender.h"
#include "util/rng.h"

namespace delrec::srmodels {

/// Caser (Tang & Wang, WSDM 2018): treats the L×D embedding matrix of the
/// last L interactions as an image; horizontal convolutions (heights 2..4)
/// capture union-level sequential patterns, vertical filters capture
/// point-level weighted aggregation. Outputs a user vector that scores items
/// against an output embedding table.
class Caser : public nn::Module, public SequentialRecommender {
 public:
  /// `window` is L, the fixed history window (shorter histories are padded).
  Caser(int64_t num_items, int64_t embedding_dim, int64_t window,
        int64_t horizontal_filters_per_height, int64_t vertical_filters,
        uint64_t seed);

  std::string name() const override { return "Caser"; }
  util::Status Train(const std::vector<data::Example>& examples,
                     const TrainConfig& config) override;
  std::vector<float> ScoreAllItems(
      const std::vector<int64_t>& history) const override;
  nn::Tensor TrainingLogits(const std::vector<int64_t>& history,
                            float dropout, util::Rng& rng) const override;
  int64_t ParameterCount() const override {
    return nn::Module::ParameterCount();
  }
  int64_t item_count() const override { return num_items_; }

  std::vector<float> EncodeHistory(
      const std::vector<int64_t>& history) const override;
  std::vector<float> ItemEmbedding(int64_t item) const override;
  int64_t embedding_dim() const { return embedding_dim_; }
  int64_t representation_dim() const override { return embedding_dim_; }

 private:
  nn::Tensor UserVector(const std::vector<int64_t>& history, float dropout,
                        util::Rng& rng) const;
  std::vector<int64_t> PadHistory(const std::vector<int64_t>& history) const;

  int64_t num_items_;
  int64_t embedding_dim_;
  int64_t window_;
  int64_t filters_per_height_;
  int64_t vertical_filters_;
  mutable util::Rng scratch_rng_;
  nn::Embedding item_embedding_;   // Includes a padding row at index V.
  nn::Tensor horizontal_weights_[3];  // Heights 2, 3, 4.
  nn::Tensor horizontal_bias_[3];
  nn::Tensor vertical_weights_;    // (vertical_filters, window)
  std::unique_ptr<nn::Linear> fc_;
  nn::Embedding output_embedding_;
  nn::Tensor item_bias_;
};

}  // namespace delrec::srmodels

#endif  // DELREC_SRMODELS_CASER_H_
