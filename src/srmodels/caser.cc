#include "srmodels/caser.h"

#include "nn/ops.h"
#include "nn/optimizer.h"
#include "srmodels/trainer.h"
#include "util/check.h"

namespace delrec::srmodels {
namespace {
constexpr int64_t kHeights[3] = {2, 3, 4};
}  // namespace

Caser::Caser(int64_t num_items, int64_t embedding_dim, int64_t window,
             int64_t horizontal_filters_per_height, int64_t vertical_filters,
             uint64_t seed)
    : num_items_(num_items),
      embedding_dim_(embedding_dim),
      window_(window),
      filters_per_height_(horizontal_filters_per_height),
      vertical_filters_(vertical_filters),
      scratch_rng_(seed),
      // Row num_items_ is the padding embedding.
      item_embedding_(num_items + 1, embedding_dim, scratch_rng_),
      output_embedding_(num_items, embedding_dim, scratch_rng_) {
  DELREC_CHECK_GE(window, kHeights[2]);
  for (int h = 0; h < 3; ++h) {
    horizontal_weights_[h] = nn::Tensor::Randn(
        {filters_per_height_, kHeights[h] * embedding_dim}, scratch_rng_,
        0.1f, /*requires_grad=*/true);
    horizontal_bias_[h] =
        nn::Tensor::Zeros({filters_per_height_}, /*requires_grad=*/true);
  }
  vertical_weights_ = nn::Tensor::Randn({vertical_filters_, window},
                                        scratch_rng_, 0.1f,
                                        /*requires_grad=*/true);
  const int64_t conv_features =
      3 * filters_per_height_ + vertical_filters_ * embedding_dim;
  fc_ = std::make_unique<nn::Linear>(conv_features, embedding_dim,
                                     scratch_rng_);
  item_bias_ = nn::Tensor::Zeros({num_items}, /*requires_grad=*/true);

  RegisterModule("item_embedding", &item_embedding_);
  for (int h = 0; h < 3; ++h) {
    RegisterParameter("h_conv_w" + std::to_string(kHeights[h]),
                      horizontal_weights_[h]);
    RegisterParameter("h_conv_b" + std::to_string(kHeights[h]),
                      horizontal_bias_[h]);
  }
  RegisterParameter("v_conv_w", vertical_weights_);
  RegisterModule("fc", fc_.get());
  RegisterModule("output_embedding", &output_embedding_);
  RegisterParameter("item_bias", item_bias_);
}

std::vector<int64_t> Caser::PadHistory(
    const std::vector<int64_t>& history) const {
  std::vector<int64_t> padded;
  padded.reserve(window_);
  const int64_t length = static_cast<int64_t>(history.size());
  // Keep the most recent `window_` items; left-pad with the padding id.
  for (int64_t i = 0; i < window_ - std::min(window_, length); ++i) {
    padded.push_back(num_items_);  // Padding row.
  }
  const int64_t start = std::max<int64_t>(0, length - window_);
  for (int64_t i = start; i < length; ++i) padded.push_back(history[i]);
  DELREC_CHECK_EQ(static_cast<int64_t>(padded.size()), window_);
  return padded;
}

nn::Tensor Caser::UserVector(const std::vector<int64_t>& history,
                             float dropout, util::Rng& rng) const {
  nn::Tensor embedded = item_embedding_.Forward(PadHistory(history));  // (L,D)
  std::vector<nn::Tensor> features;
  // Horizontal convolutions: conv → ReLU → max-over-time.
  for (int h = 0; h < 3; ++h) {
    nn::Tensor conv = nn::Relu(nn::HorizontalConv(
        embedded, horizontal_weights_[h], horizontal_bias_[h], kHeights[h]));
    features.push_back(nn::MaxPoolRows(conv));  // (1, F)
  }
  // Vertical convolution: weighted sums over time = W_v (F_v,L) · E (L,D).
  nn::Tensor vertical = nn::MatMul(vertical_weights_, embedded);  // (F_v, D)
  features.push_back(
      nn::Reshape(vertical, {1, vertical_filters_ * embedding_dim_}));
  nn::Tensor concatenated = nn::ConcatCols(features);
  concatenated = nn::Dropout(concatenated, dropout, rng, training());
  return nn::Relu(fc_->Forward(concatenated));  // (1, D)
}

nn::Tensor Caser::TrainingLogits(const std::vector<int64_t>& history,
                                 float dropout, util::Rng& rng) const {
  nn::Tensor user = UserVector(history, dropout, rng);
  return nn::AddBias(
      nn::MatMul(user, output_embedding_.table(), false, true), item_bias_);
}

util::Status Caser::Train(const std::vector<data::Example>& examples,
                          const TrainConfig& config) {
  SetTraining(true);
  util::Rng rng(config.seed);
  nn::Adam optimizer(Parameters(), config.learning_rate);
  const auto loop_result = RunTrainingLoop(
      examples, config, optimizer, Parameters(), rng,
      [&](const data::Example& example) {
        return nn::CrossEntropyWithLogits(
            TrainingLogits(example.history, config.dropout, rng),
            {example.target});
      },
      "Caser");
  SetTraining(false);
  return loop_result.status();
}

std::vector<float> Caser::ScoreAllItems(
    const std::vector<int64_t>& history) const {
  nn::NoGradGuard no_grad;
  return TrainingLogits(history, 0.0f, scratch_rng_).data();
}

std::vector<float> Caser::EncodeHistory(
    const std::vector<int64_t>& history) const {
  nn::NoGradGuard no_grad;
  return UserVector(history, 0.0f, scratch_rng_).data();
}

std::vector<float> Caser::ItemEmbedding(int64_t item) const {
  DELREC_CHECK_GE(item, 0);
  DELREC_CHECK_LT(item, num_items_);
  const auto& table = output_embedding_.table().data();
  return std::vector<float>(table.begin() + item * embedding_dim_,
                            table.begin() + (item + 1) * embedding_dim_);
}

}  // namespace delrec::srmodels
