#ifndef DELREC_SRMODELS_TRAINER_H_
#define DELREC_SRMODELS_TRAINER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "data/split.h"
#include "nn/optimizer.h"
#include "nn/tensor.h"
#include "srmodels/recommender.h"
#include "util/rng.h"
#include "util/status.h"

namespace delrec::srmodels {

/// Resume/checkpoint hooks for RunTrainingLoop.
struct TrainLoopHooks {
  /// First epoch to run; epochs below it are assumed already completed by a
  /// restored checkpoint (callers must also restore rng/optimizer state for
  /// bit-identical resumption).
  int start_epoch = 0;
  /// Called after each completed epoch with the 0-based epoch index and its
  /// mean loss. A non-OK return aborts training with that status (used to
  /// persist per-epoch checkpoints and to propagate save failures).
  std::function<util::Status(int epoch, float mean_loss)> epoch_end;
};

struct TrainLoopResult {
  float final_loss = 0.0f;        // Mean training loss of the last epoch.
  int64_t anomalies_skipped = 0;  // Batches rejected by the anomaly guard.
};

/// Shared mini-batch training loop: shuffles examples each epoch, builds the
/// batch loss as the mean of per-example losses returned by `example_loss`,
/// clips gradients, and steps the optimizer. Batches flagged by the
/// loss-anomaly guard (TrainConfig::anomaly_guard) are skipped with
/// parameters restored; the loop aborts with a Status after
/// AnomalyGuardConfig::max_consecutive in a row. The `trainer.loss` corrupt-mode
/// failpoint forces a NaN batch loss (fault-injection tests).
util::StatusOr<TrainLoopResult> RunTrainingLoop(
    const std::vector<data::Example>& examples, const TrainConfig& config,
    nn::Optimizer& optimizer, const std::vector<nn::Tensor>& clip_parameters,
    util::Rng& rng,
    const std::function<nn::Tensor(const data::Example&)>& example_loss,
    const char* model_name, const TrainLoopHooks& hooks = {});

/// Index-based variant: the loop shuffles [0, example_count) and asks
/// `example_loss` for the loss of example i. Same shuffle stream, batching,
/// anomaly guard, and failpoints as the data::Example overload (which
/// delegates here), so trainers over other example types — the distillation
/// trainer's weighted teacher lists — share the loop and its determinism
/// and resume contracts verbatim.
util::StatusOr<TrainLoopResult> RunTrainingLoop(
    int64_t example_count, const TrainConfig& config, nn::Optimizer& optimizer,
    const std::vector<nn::Tensor>& clip_parameters, util::Rng& rng,
    const std::function<nn::Tensor(int64_t)>& example_loss,
    const char* model_name, const TrainLoopHooks& hooks = {});

}  // namespace delrec::srmodels

#endif  // DELREC_SRMODELS_TRAINER_H_
