#ifndef DELREC_SRMODELS_TRAINER_H_
#define DELREC_SRMODELS_TRAINER_H_

#include <functional>
#include <vector>

#include "data/split.h"
#include "nn/optimizer.h"
#include "nn/tensor.h"
#include "srmodels/recommender.h"
#include "util/rng.h"

namespace delrec::srmodels {

/// Shared mini-batch training loop: shuffles examples each epoch, builds the
/// batch loss as the mean of per-example losses returned by `example_loss`,
/// clips gradients, and steps the optimizer. Returns the final epoch's mean
/// training loss.
float RunTrainingLoop(
    const std::vector<data::Example>& examples, const TrainConfig& config,
    nn::Optimizer& optimizer, const std::vector<nn::Tensor>& clip_parameters,
    util::Rng& rng,
    const std::function<nn::Tensor(const data::Example&)>& example_loss,
    const char* model_name);

}  // namespace delrec::srmodels

#endif  // DELREC_SRMODELS_TRAINER_H_
