#ifndef DELREC_EVAL_PROTOCOL_H_
#define DELREC_EVAL_PROTOCOL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "data/split.h"
#include "eval/metrics.h"

namespace delrec::eval {

/// Scores a candidate list for one example; must return one score per
/// candidate (higher = better).
using CandidateScorer = std::function<std::vector<float>(
    const data::Example& example, const std::vector<int64_t>& candidates)>;

/// The paper's evaluation protocol knobs: candidate sets of m items
/// (1 positive + m-1 random negatives).
struct EvalConfig {
  int64_t candidate_count = 15;  // Paper's m.
  int64_t max_examples = 0;      // 0 = evaluate everything.
  uint64_t seed = 99;            // Candidate sampling seed: fixed so every
                                 // model ranks identical candidate sets.
  /// Threads scoring examples concurrently. 0 ⇒ the global
  /// util::ParallelConfig budget; >1 requires `scorer` to be safe for
  /// concurrent invocation (every bundled model is: inference is const and
  /// stateless). Candidate sampling always stays on one serial RNG stream
  /// and per-example ranks are merged in example order, so metrics are
  /// bit-identical for every thread count.
  int num_threads = 0;
};

/// Runs candidate-set evaluation and returns the per-example accumulator
/// (call .Result() for the metric row, keep the accumulator for t-tests).
/// Equal candidate scores are ranked stably by item id (RankOfTarget's
/// id-aware overload).
MetricsAccumulator EvaluateCandidates(
    const std::vector<data::Example>& examples, int64_t num_items,
    const CandidateScorer& scorer, const EvalConfig& config);

}  // namespace delrec::eval

#endif  // DELREC_EVAL_PROTOCOL_H_
