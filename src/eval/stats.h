#ifndef DELREC_EVAL_STATS_H_
#define DELREC_EVAL_STATS_H_

#include <string>
#include <vector>

namespace delrec::eval {

/// Paired t-test result (two-sided).
struct TTestResult {
  double t_statistic = 0.0;
  double degrees_of_freedom = 0.0;
  double p_value = 1.0;
};

/// Two-sided paired t-test on equally sized samples (a_i, b_i). Tests the
/// hypothesis mean(a - b) == 0. Used for the Table-II significance stars
/// (DELRec vs. its conventional SR backbone).
TTestResult PairedTTest(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Paper convention: "*" for p ≤ 0.01, "**" for p ≤ 0.05, "" otherwise.
std::string SignificanceStars(double p_value);

/// CDF of the Student-t distribution (via regularized incomplete beta).
double StudentTCdf(double t, double degrees_of_freedom);

/// Principal-component reduction: projects each row of `rows` (all the same
/// width) onto the top `out_dim` principal directions (power iteration with
/// deflation). Used by the LLM2BERT4Rec baseline, which shrinks LLM title
/// embeddings with PCA before initializing BERT4Rec.
std::vector<std::vector<float>> PcaReduce(
    const std::vector<std::vector<float>>& rows, int out_dim,
    int power_iterations = 60);

/// Cosine similarity between equal-length vectors (0 when either is 0).
float CosineSimilarity(const std::vector<float>& a,
                       const std::vector<float>& b);

}  // namespace delrec::eval

#endif  // DELREC_EVAL_STATS_H_
