#ifndef DELREC_EVAL_TOPK_H_
#define DELREC_EVAL_TOPK_H_

#include <cstdint>
#include <vector>

namespace delrec::eval {

/// The repo's single top-k selection: positions of the k highest scores,
/// best first, ties broken toward the smaller position. This is the exact
/// ordering srmodels::TopKFromScores has always produced (it now delegates
/// here) and the positional RankOfTarget counts against, deduplicating the
/// partial-sort-with-tie-break logic that used to live in each caller.
std::vector<int64_t> TopK(const std::vector<float>& scores, int64_t k);

/// As above over a candidate pool with explicit item ids: returns positions
/// into `scores`/`item_ids`, but ties break by the smaller *item id* rather
/// than position, matching the id-aware RankOfTarget overload. The selected
/// set (as ids) is then invariant under any permutation of the pool — the
/// property the two-tier retriever needs so the teacher re-ranks the same
/// top-h whatever order the retriever saw candidates in. `item_ids` must be
/// distinct and parallel to `scores`.
std::vector<int64_t> TopKByIds(const std::vector<float>& scores,
                               const std::vector<int64_t>& item_ids,
                               int64_t k);

}  // namespace delrec::eval

#endif  // DELREC_EVAL_TOPK_H_
