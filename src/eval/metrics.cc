#include "eval/metrics.h"

#include <cmath>

#include "util/check.h"

namespace delrec::eval {
namespace {

double MeanOf(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double NdcgAt(int64_t rank, int64_t k) {
  // Single relevant item ⇒ ideal DCG = 1; DCG = 1/log2(rank+2) if within k.
  if (rank >= k) return 0.0;
  return 1.0 / std::log2(static_cast<double>(rank) + 2.0);
}

}  // namespace

int64_t RankOfTarget(const std::vector<float>& scores, int64_t target_index) {
  DELREC_CHECK_GE(target_index, 0);
  DELREC_CHECK_LT(target_index, static_cast<int64_t>(scores.size()));
  const float target_score = scores[target_index];
  int64_t rank = 0;
  for (int64_t i = 0; i < static_cast<int64_t>(scores.size()); ++i) {
    if (i == target_index) continue;
    if (scores[i] > target_score || (scores[i] == target_score && i < target_index)) {
      ++rank;
    }
  }
  return rank;
}

int64_t RankOfTarget(const std::vector<float>& scores,
                     const std::vector<int64_t>& item_ids,
                     int64_t target_index) {
  DELREC_CHECK_EQ(scores.size(), item_ids.size());
  DELREC_CHECK_GE(target_index, 0);
  DELREC_CHECK_LT(target_index, static_cast<int64_t>(scores.size()));
  const float target_score = scores[target_index];
  const int64_t target_id = item_ids[target_index];
  int64_t rank = 0;
  for (int64_t i = 0; i < static_cast<int64_t>(scores.size()); ++i) {
    if (i == target_index) continue;
    if (scores[i] > target_score ||
        (scores[i] == target_score && item_ids[i] < target_id)) {
      ++rank;
    }
  }
  return rank;
}

void MetricsAccumulator::Add(int64_t rank) {
  DELREC_CHECK_GE(rank, 0);
  hits_at_1_.push_back(rank < 1 ? 1.0 : 0.0);
  hits_at_5_.push_back(rank < 5 ? 1.0 : 0.0);
  hits_at_10_.push_back(rank < 10 ? 1.0 : 0.0);
  ndcg_5_.push_back(NdcgAt(rank, 5));
  ndcg_10_.push_back(NdcgAt(rank, 10));
}

RankedMetrics MetricsAccumulator::Result() const {
  RankedMetrics metrics;
  metrics.hr_at_1 = MeanOf(hits_at_1_);
  metrics.hr_at_5 = MeanOf(hits_at_5_);
  metrics.ndcg_at_5 = MeanOf(ndcg_5_);
  metrics.hr_at_10 = MeanOf(hits_at_10_);
  metrics.ndcg_at_10 = MeanOf(ndcg_10_);
  metrics.count = static_cast<int64_t>(hits_at_1_.size());
  return metrics;
}

}  // namespace delrec::eval
