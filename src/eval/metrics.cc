#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "eval/topk.h"
#include "util/check.h"

namespace delrec::eval {
namespace {

double MeanOf(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double NdcgAt(int64_t rank, int64_t k) {
  // Single relevant item ⇒ ideal DCG = 1; DCG = 1/log2(rank+2) if within k.
  if (rank >= k) return 0.0;
  return 1.0 / std::log2(static_cast<double>(rank) + 2.0);
}

}  // namespace

int64_t RankOfTarget(const std::vector<float>& scores, int64_t target_index) {
  DELREC_CHECK_GE(target_index, 0);
  DELREC_CHECK_LT(target_index, static_cast<int64_t>(scores.size()));
  // The rank is the target's position in the shared TopK ordering, so
  // evaluation agrees with every top-k selection in the repo by
  // construction (same comparator, one implementation).
  const std::vector<int64_t> order =
      TopK(scores, static_cast<int64_t>(scores.size()));
  const auto it = std::find(order.begin(), order.end(), target_index);
  DELREC_CHECK(it != order.end());
  return std::distance(order.begin(), it);
}

int64_t RankOfTarget(const std::vector<float>& scores,
                     const std::vector<int64_t>& item_ids,
                     int64_t target_index) {
  DELREC_CHECK_EQ(scores.size(), item_ids.size());
  DELREC_CHECK_GE(target_index, 0);
  DELREC_CHECK_LT(target_index, static_cast<int64_t>(scores.size()));
  const std::vector<int64_t> order =
      TopKByIds(scores, item_ids, static_cast<int64_t>(scores.size()));
  const auto it = std::find(order.begin(), order.end(), target_index);
  DELREC_CHECK(it != order.end());
  return std::distance(order.begin(), it);
}

void MetricsAccumulator::Add(int64_t rank) {
  DELREC_CHECK_GE(rank, 0);
  hits_at_1_.push_back(rank < 1 ? 1.0 : 0.0);
  hits_at_5_.push_back(rank < 5 ? 1.0 : 0.0);
  hits_at_10_.push_back(rank < 10 ? 1.0 : 0.0);
  ndcg_5_.push_back(NdcgAt(rank, 5));
  ndcg_10_.push_back(NdcgAt(rank, 10));
}

RankedMetrics MetricsAccumulator::Result() const {
  RankedMetrics metrics;
  metrics.hr_at_1 = MeanOf(hits_at_1_);
  metrics.hr_at_5 = MeanOf(hits_at_5_);
  metrics.ndcg_at_5 = MeanOf(ndcg_5_);
  metrics.hr_at_10 = MeanOf(hits_at_10_);
  metrics.ndcg_at_10 = MeanOf(ndcg_10_);
  metrics.count = static_cast<int64_t>(hits_at_1_.size());
  return metrics;
}

}  // namespace delrec::eval
