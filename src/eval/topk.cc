#include "eval/topk.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace delrec::eval {

std::vector<int64_t> TopK(const std::vector<float>& scores, int64_t k) {
  std::vector<int64_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  k = std::min<int64_t>(k, static_cast<int64_t>(order.size()));
  k = std::max<int64_t>(k, 0);
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](int64_t a, int64_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  order.resize(k);
  return order;
}

std::vector<int64_t> TopKByIds(const std::vector<float>& scores,
                               const std::vector<int64_t>& item_ids,
                               int64_t k) {
  DELREC_CHECK_EQ(scores.size(), item_ids.size());
  std::vector<int64_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  k = std::min<int64_t>(k, static_cast<int64_t>(order.size()));
  k = std::max<int64_t>(k, 0);
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](int64_t a, int64_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return item_ids[a] < item_ids[b];
                    });
  order.resize(k);
  return order;
}

}  // namespace delrec::eval
