#ifndef DELREC_EVAL_METRICS_H_
#define DELREC_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

namespace delrec::eval {

/// The paper's five ranking metrics over candidate-set evaluation.
struct RankedMetrics {
  double hr_at_1 = 0.0;
  double hr_at_5 = 0.0;
  double ndcg_at_5 = 0.0;
  double hr_at_10 = 0.0;
  double ndcg_at_10 = 0.0;
  int64_t count = 0;

  /// Values in Table II column order: HR@1, HR@5, NDCG@5, HR@10, NDCG@10.
  std::vector<double> ToRow() const {
    return {hr_at_1, hr_at_5, ndcg_at_5, hr_at_10, ndcg_at_10};
  }
};

/// 0-based rank of `target_index` when candidates are sorted by descending
/// score (ties broken toward earlier indices, i.e. pessimistic for later
/// duplicates). Positional tie-breaking makes the rank depend on candidate
/// order; prefer the id-aware overload below wherever item ids are known.
int64_t RankOfTarget(const std::vector<float>& scores, int64_t target_index);

/// As above, but ties are broken deterministically by item id (the
/// equal-scoring candidate with the smaller id ranks first). The rank is
/// then invariant under any permutation of the candidate list — two
/// evaluations that present the same (item, score) set in different orders
/// agree. `item_ids` must be distinct and parallel to `scores`.
int64_t RankOfTarget(const std::vector<float>& scores,
                     const std::vector<int64_t>& item_ids,
                     int64_t target_index);

/// Streams per-example target ranks and aggregates the paper's metrics.
class MetricsAccumulator {
 public:
  /// `rank` is 0-based (0 = target scored highest).
  void Add(int64_t rank);

  RankedMetrics Result() const;

  /// Per-example HR@1 indicators in insertion order (paired t-test input).
  const std::vector<double>& hit_at_1_samples() const { return hits_at_1_; }
  /// Per-example NDCG@10 values in insertion order.
  const std::vector<double>& ndcg_at_10_samples() const { return ndcg_10_; }

 private:
  std::vector<double> hits_at_1_;
  std::vector<double> hits_at_5_;
  std::vector<double> hits_at_10_;
  std::vector<double> ndcg_5_;
  std::vector<double> ndcg_10_;
};

}  // namespace delrec::eval

#endif  // DELREC_EVAL_METRICS_H_
