#include "eval/protocol.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"

namespace delrec::eval {

MetricsAccumulator EvaluateCandidates(
    const std::vector<data::Example>& examples, int64_t num_items,
    const CandidateScorer& scorer, const EvalConfig& config) {
  DELREC_CHECK(scorer != nullptr);
  util::Rng rng(config.seed);
  std::vector<data::Example> subset = examples;
  if (config.max_examples > 0 &&
      static_cast<int64_t>(subset.size()) > config.max_examples) {
    util::Rng subsample_rng(config.seed ^ 0x5bd1e995u);
    subset = data::Subsample(subset, config.max_examples, subsample_rng);
  }
  MetricsAccumulator accumulator;
  for (const data::Example& example : subset) {
    const std::vector<int64_t> candidates = data::SampleCandidates(
        num_items, example.target, config.candidate_count, rng);
    const std::vector<float> scores = scorer(example, candidates);
    DELREC_CHECK_EQ(scores.size(), candidates.size());
    const auto target_it =
        std::find(candidates.begin(), candidates.end(), example.target);
    DELREC_CHECK(target_it != candidates.end());
    const int64_t target_index =
        std::distance(candidates.begin(), target_it);
    accumulator.Add(RankOfTarget(scores, target_index));
  }
  return accumulator;
}

}  // namespace delrec::eval
