#include "eval/protocol.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"
#include "util/threadpool.h"

namespace delrec::eval {

MetricsAccumulator EvaluateCandidates(
    const std::vector<data::Example>& examples, int64_t num_items,
    const CandidateScorer& scorer, const EvalConfig& config) {
  DELREC_CHECK(scorer != nullptr);
  util::Rng rng(config.seed);
  std::vector<data::Example> subset = examples;
  if (config.max_examples > 0 &&
      static_cast<int64_t>(subset.size()) > config.max_examples) {
    util::Rng subsample_rng(config.seed ^ 0x5bd1e995u);
    subset = data::Subsample(subset, config.max_examples, subsample_rng);
  }
  // Candidate sets are pre-sampled from the single serial RNG stream so
  // they are identical for every thread count (and to the historical
  // serial protocol) — the fair-comparison guarantee that all methods rank
  // the same sets extends to all parallelism settings.
  const int64_t count = static_cast<int64_t>(subset.size());
  std::vector<std::vector<int64_t>> candidate_sets;
  candidate_sets.reserve(subset.size());
  for (const data::Example& example : subset) {
    candidate_sets.push_back(data::SampleCandidates(
        num_items, example.target, config.candidate_count, rng));
  }
  // Scoring fans out over examples; each chunk writes disjoint rank slots,
  // which are merged below in example order regardless of scheduling.
  std::vector<int64_t> ranks(subset.size());
  const int threads =
      config.num_threads > 0 ? config.num_threads : util::ParallelThreads();
  util::ParallelForThreads(
      threads, count, [&](int64_t begin, int64_t end, int) {
        for (int64_t i = begin; i < end; ++i) {
          const std::vector<int64_t>& candidates = candidate_sets[i];
          const std::vector<float> scores = scorer(subset[i], candidates);
          DELREC_CHECK_EQ(scores.size(), candidates.size());
          const auto target_it = std::find(candidates.begin(),
                                           candidates.end(),
                                           subset[i].target);
          DELREC_CHECK(target_it != candidates.end());
          const int64_t target_index =
              std::distance(candidates.begin(), target_it);
          ranks[i] = RankOfTarget(scores, candidates, target_index);
        }
      });
  MetricsAccumulator accumulator;
  for (int64_t rank : ranks) accumulator.Add(rank);
  return accumulator;
}

}  // namespace delrec::eval
