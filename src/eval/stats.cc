#include "eval/stats.h"

#include <cmath>

#include "util/check.h"

namespace delrec::eval {
namespace {

// Regularized incomplete beta I_x(a, b) by Lentz's continued fraction.
double IncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double log_beta =
      std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
      a * std::log(x) + b * std::log(1.0 - x);
  // Use the symmetry that converges fastest.
  if (x > (a + 1.0) / (a + b + 2.0)) {
    return 1.0 - IncompleteBeta(b, a, 1.0 - x);
  }
  const double kTiny = 1e-30;
  double c = 1.0;
  double d = 1.0 - (a + b) * x / (a + 1.0);
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double result = d;
  for (int m = 1; m <= 300; ++m) {
    const double m_d = static_cast<double>(m);
    // Even step.
    double numerator = m_d * (b - m_d) * x / ((a + 2 * m_d - 1) * (a + 2 * m_d));
    d = 1.0 + numerator * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + numerator / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    result *= d * c;
    // Odd step.
    numerator = -(a + m_d) * (a + b + m_d) * x /
                ((a + 2 * m_d) * (a + 2 * m_d + 1));
    d = 1.0 + numerator * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + numerator / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    result *= delta;
    if (std::fabs(delta - 1.0) < 1e-12) break;
  }
  return std::exp(log_beta) * result / a;
}

}  // namespace

double StudentTCdf(double t, double degrees_of_freedom) {
  DELREC_CHECK_GT(degrees_of_freedom, 0.0);
  const double x =
      degrees_of_freedom / (degrees_of_freedom + t * t);
  const double tail = 0.5 * IncompleteBeta(degrees_of_freedom / 2.0, 0.5, x);
  return t > 0 ? 1.0 - tail : tail;
}

TTestResult PairedTTest(const std::vector<double>& a,
                        const std::vector<double>& b) {
  DELREC_CHECK_EQ(a.size(), b.size());
  DELREC_CHECK_GE(a.size(), 2u);
  const size_t n = a.size();
  double mean = 0.0;
  for (size_t i = 0; i < n; ++i) mean += a[i] - b[i];
  mean /= static_cast<double>(n);
  double variance = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = (a[i] - b[i]) - mean;
    variance += d * d;
  }
  variance /= static_cast<double>(n - 1);
  TTestResult result;
  result.degrees_of_freedom = static_cast<double>(n - 1);
  if (variance <= 0.0) {
    // All pairwise differences identical; degenerate but well defined.
    result.t_statistic = mean == 0.0 ? 0.0 : (mean > 0 ? 1e9 : -1e9);
    result.p_value = mean == 0.0 ? 1.0 : 0.0;
    return result;
  }
  result.t_statistic =
      mean / std::sqrt(variance / static_cast<double>(n));
  const double cdf =
      StudentTCdf(std::fabs(result.t_statistic), result.degrees_of_freedom);
  result.p_value = 2.0 * (1.0 - cdf);
  return result;
}

std::string SignificanceStars(double p_value) {
  if (p_value <= 0.01) return "*";
  if (p_value <= 0.05) return "**";
  return "";
}

std::vector<std::vector<float>> PcaReduce(
    const std::vector<std::vector<float>>& rows, int out_dim,
    int power_iterations) {
  DELREC_CHECK(!rows.empty());
  const size_t dim = rows[0].size();
  DELREC_CHECK_LE(static_cast<size_t>(out_dim), dim);
  const size_t n = rows.size();
  // Center.
  std::vector<double> mean(dim, 0.0);
  for (const auto& row : rows) {
    DELREC_CHECK_EQ(row.size(), dim);
    for (size_t j = 0; j < dim; ++j) mean[j] += row[j];
  }
  for (double& m : mean) m /= static_cast<double>(n);
  std::vector<std::vector<double>> centered(n, std::vector<double>(dim));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < dim; ++j) centered[i][j] = rows[i][j] - mean[j];
  }
  // Power iteration with deflation on X (covariance applied implicitly).
  std::vector<std::vector<double>> components;
  for (int c = 0; c < out_dim; ++c) {
    std::vector<double> v(dim, 0.0);
    v[c % dim] = 1.0;  // Deterministic start.
    for (int it = 0; it < power_iterations; ++it) {
      // w = Xᵀ (X v).
      std::vector<double> xv(n, 0.0);
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < dim; ++j) xv[i] += centered[i][j] * v[j];
      }
      std::vector<double> w(dim, 0.0);
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < dim; ++j) w[j] += centered[i][j] * xv[i];
      }
      // Deflate previously found components.
      for (const auto& prev : components) {
        double dot = 0.0;
        for (size_t j = 0; j < dim; ++j) dot += w[j] * prev[j];
        for (size_t j = 0; j < dim; ++j) w[j] -= dot * prev[j];
      }
      double norm = 0.0;
      for (double value : w) norm += value * value;
      norm = std::sqrt(norm);
      if (norm < 1e-12) break;  // Rank-deficient; keep current v.
      for (size_t j = 0; j < dim; ++j) v[j] = w[j] / norm;
    }
    components.push_back(v);
  }
  // Project.
  std::vector<std::vector<float>> projected(n, std::vector<float>(out_dim));
  for (size_t i = 0; i < n; ++i) {
    for (int c = 0; c < out_dim; ++c) {
      double dot = 0.0;
      for (size_t j = 0; j < dim; ++j) dot += centered[i][j] * components[c][j];
      projected[i][c] = static_cast<float>(dot);
    }
  }
  return projected;
}

float CosineSimilarity(const std::vector<float>& a,
                       const std::vector<float>& b) {
  DELREC_CHECK_EQ(a.size(), b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return static_cast<float>(dot / (std::sqrt(na) * std::sqrt(nb)));
}

}  // namespace delrec::eval
