#include "nn/lora.h"

#include <algorithm>
#include <cmath>

#include "nn/gemm.h"
#include "nn/ops.h"
#include "util/check.h"

namespace delrec::nn {

LoraLinear::LoraLinear(const Linear* base, int64_t rank, float scale,
                       util::Rng& rng)
    : base_(base), rank_(rank), scale_(scale) {
  DELREC_CHECK(base != nullptr);
  DELREC_CHECK_GT(rank, 0);
  a_ = Tensor::Randn({base->in_features(), rank}, rng, 0.02f,
                     /*requires_grad=*/true);
  // Λ starts at 1 so the initial delta is shaped purely by A·B; B starts at
  // zero so the adapter is a no-op before training (standard LoRA init).
  lambda_ = Tensor::Full({rank}, 1.0f, /*requires_grad=*/true);
  b_ = Tensor::Zeros({rank, base->out_features()}, /*requires_grad=*/true);
  mask_ = Tensor::Full({rank}, 1.0f);
  sensitivity_ema_.assign(rank, 0.0f);
  RegisterParameter("lora_a", a_);
  RegisterParameter("lora_lambda", lambda_);
  RegisterParameter("lora_b", b_);
}

Tensor LoraLinear::Forward(const Tensor& x) const {
  Tensor base_out = base_->Forward(x);
  // Gated diagonal: Λ ⊙ mask. mask_ carries no grad, so masked directions
  // contribute nothing forward and receive no Λ gradient.
  Tensor gated = Mul(lambda_, mask_);
  Tensor delta = MatMul(ScaleCols(MatMul(x, a_), gated), b_);
  return Add(base_out, MulScalar(delta, scale_));
}

void LoraLinear::AddDeltaInference(const float* x, int64_t rows, float* out,
                                   util::ScopedArena& arena) const {
  // Mirrors Forward() step by step: x·A, column-scale by Λ⊙mask, ·B, then
  // out += scale·delta with the same rounding points (MulScalar then Add).
  const int64_t in = base_->in_features();
  const int64_t out_features = base_->out_features();
  float* xa = arena.Alloc(rows * rank_);
  GemmNN(x, a_.data().data(), xa, rows, rank_, in, /*accumulate=*/false);
  float* gated = arena.Alloc(rank_);
  const float* lv = lambda_.data().data();
  const float* mv = mask_.data().data();
  for (int64_t j = 0; j < rank_; ++j) gated[j] = lv[j] * mv[j];
  for (int64_t i = 0; i < rows; ++i) {
    float* row = xa + i * rank_;
    for (int64_t j = 0; j < rank_; ++j) row[j] = row[j] * gated[j];
  }
  float* delta = arena.Alloc(rows * out_features);
  GemmNN(xa, b_.data().data(), delta, rows, out_features, rank_,
         /*accumulate=*/false);
  const int64_t total = rows * out_features;
  for (int64_t i = 0; i < total; ++i) {
    const float scaled = delta[i] * scale_;
    out[i] = out[i] + scaled;
  }
}

std::vector<float> LoraLinear::MergedWeightRowMajor() const {
  const int64_t in = base_->in_features();
  const int64_t out_features = base_->out_features();
  // A with columns scaled by Λ⊙mask, so the delta is one (in,r)·(r,out) GEMM.
  std::vector<float> a_gated = a_.data();
  const float* lv = lambda_.data().data();
  const float* mv = mask_.data().data();
  for (int64_t i = 0; i < in; ++i) {
    float* row = a_gated.data() + i * rank_;
    for (int64_t j = 0; j < rank_; ++j) row[j] *= lv[j] * mv[j];
  }
  std::vector<float> delta(static_cast<size_t>(in * out_features));
  GemmNN(a_gated.data(), b_.data().data(), delta.data(), in, out_features,
         rank_, /*accumulate=*/false);
  std::vector<float> merged = base_->weight().data();
  for (size_t i = 0; i < merged.size(); ++i) {
    merged[i] += scale_ * delta[i];
  }
  return merged;
}

int64_t LoraLinear::active_rank() const {
  int64_t active = 0;
  for (float m : mask_.data()) active += m > 0.5f ? 1 : 0;
  return active;
}

void LoraLinear::AccumulateSensitivity(float ema_decay) {
  if (!lambda_.has_grad()) return;
  const auto& grad = lambda_.impl()->grad;
  for (int64_t i = 0; i < rank_; ++i) {
    sensitivity_ema_[i] = ema_decay * sensitivity_ema_[i] +
                          (1.0f - ema_decay) * std::fabs(grad[i]);
  }
}

std::vector<float> LoraLinear::DirectionImportance() const {
  std::vector<float> importance(rank_);
  const auto& lv = lambda_.data();
  for (int64_t i = 0; i < rank_; ++i) {
    importance[i] = std::fabs(lv[i]) * (sensitivity_ema_[i] + 1e-8f);
  }
  return importance;
}

void LoraLinear::SetDirectionActive(int64_t direction, bool active) {
  DELREC_CHECK_GE(direction, 0);
  DELREC_CHECK_LT(direction, rank_);
  mask_.data()[direction] = active ? 1.0f : 0.0f;
}

bool LoraLinear::direction_active(int64_t direction) const {
  DELREC_CHECK_GE(direction, 0);
  DELREC_CHECK_LT(direction, rank_);
  return mask_.data()[direction] > 0.5f;
}

void LoraLinear::set_sensitivity_ema(std::vector<float> ema) {
  DELREC_CHECK_EQ(static_cast<int64_t>(ema.size()), rank_);
  sensitivity_ema_ = std::move(ema);
}

void AdaLoraAllocator::Register(LoraLinear* adapter) {
  DELREC_CHECK(adapter != nullptr);
  adapters_.push_back(adapter);
}

void AdaLoraAllocator::AccumulateSensitivity() {
  for (LoraLinear* adapter : adapters_) adapter->AccumulateSensitivity();
}

void AdaLoraAllocator::Reallocate() {
  if (adapters_.empty()) return;
  struct Direction {
    float importance;
    size_t adapter;
    int64_t index;
  };
  std::vector<Direction> directions;
  for (size_t a = 0; a < adapters_.size(); ++a) {
    const std::vector<float> importance = adapters_[a]->DirectionImportance();
    for (int64_t i = 0; i < adapters_[a]->rank(); ++i) {
      directions.push_back({importance[i], a, i});
    }
  }
  std::sort(directions.begin(), directions.end(),
            [](const Direction& x, const Direction& y) {
              return x.importance > y.importance;
            });
  const int64_t budget =
      std::min<int64_t>(total_budget_, static_cast<int64_t>(directions.size()));
  for (size_t d = 0; d < directions.size(); ++d) {
    adapters_[directions[d].adapter]->SetDirectionActive(
        directions[d].index, static_cast<int64_t>(d) < budget);
  }
}

int64_t AdaLoraAllocator::TotalActiveRank() const {
  int64_t total = 0;
  for (const LoraLinear* adapter : adapters_) total += adapter->active_rank();
  return total;
}

}  // namespace delrec::nn
