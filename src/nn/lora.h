#ifndef DELREC_NN_LORA_H_
#define DELREC_NN_LORA_H_

#include <cstdint>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"
#include "nn/tensor.h"
#include "util/buffer_pool.h"
#include "util/rng.h"

namespace delrec::nn {

/// Low-rank adapter around a frozen Linear, parameterized AdaLoRA-style as
/// P·Λ·Q:  y = base(x) + scale · ((x·A) ⊙ Λ) · B, with Λ a learned diagonal
/// whose directions can be masked off by the budget allocator.
///
/// Only A, Λ (lambda) and B are registered as parameters; the wrapped base
/// Linear stays in its own module tree and is typically frozen.
class LoraLinear : public Module {
 public:
  /// `base` must outlive this adapter. `rank` is the maximum rank; the
  /// allocator may deactivate directions below that.
  LoraLinear(const Linear* base, int64_t rank, float scale, util::Rng& rng);

  /// x: (N, in) → (N, out); base output plus the (masked) low-rank delta.
  Tensor Forward(const Tensor& x) const;

  /// Inference-only raw forward over row-major buffers: `out` (rows × out)
  /// must already hold the base Linear's output; adds the masked low-rank
  /// delta in place with the exact arithmetic order of Forward(), so the
  /// result is bit-identical per row for any row count. Builds no tape;
  /// scratch comes from `arena`.
  void AddDeltaInference(const float* x, int64_t rows, float* out,
                         util::ScopedArena& arena) const;

  int64_t rank() const { return rank_; }
  int64_t active_rank() const;

  /// Row-major (in, out) copy of the base weight with the masked low-rank
  /// delta folded in: W + scale·A·diag(Λ⊙mask)·B. Used by the int8 snapshot
  /// quantizer (DESIGN.md §13) to merge frozen adapters before per-channel
  /// quantization; neither the base Linear nor the adapter is modified.
  std::vector<float> MergedWeightRowMajor() const;

  /// Importance of direction i: |Λ_i| · EMA(|∂L/∂Λ_i|) — the sensitivity
  /// proxy AdaLoRA uses for budget allocation. Call AccumulateSensitivity()
  /// after each backward pass (before ZeroGrad) to maintain the EMA.
  void AccumulateSensitivity(float ema_decay = 0.85f);
  std::vector<float> DirectionImportance() const;

  /// Activates/deactivates a direction (allocator API).
  void SetDirectionActive(int64_t direction, bool active);
  bool direction_active(int64_t direction) const;

  /// Resume support: the sensitivity EMA feeds budget reallocation, so it
  /// rides in the training checkpoint alongside the adapter weights.
  const std::vector<float>& sensitivity_ema() const {
    return sensitivity_ema_;
  }
  void set_sensitivity_ema(std::vector<float> ema);

 private:
  const Linear* base_;
  int64_t rank_;
  float scale_;
  Tensor a_;        // (in, rank)
  Tensor lambda_;   // (rank) — the Λ diagonal
  Tensor b_;        // (rank, out)
  Tensor mask_;     // (rank) constant 0/1 gate, not a parameter
  std::vector<float> sensitivity_ema_;
};

/// Global AdaLoRA rank-budget allocator: every Reallocate() call ranks all
/// directions across the registered adapters by importance and keeps only the
/// top `total_budget`, emulating AdaLoRA's adaptive parameter allocation
/// ("more parameters to important weight matrices").
class AdaLoraAllocator {
 public:
  explicit AdaLoraAllocator(int64_t total_budget)
      : total_budget_(total_budget) {}

  void Register(LoraLinear* adapter);

  /// Updates sensitivity EMAs from current gradients (call post-backward).
  void AccumulateSensitivity();

  /// Re-distributes the global rank budget by importance.
  void Reallocate();

  int64_t total_budget() const { return total_budget_; }
  int64_t TotalActiveRank() const;

 private:
  int64_t total_budget_;
  std::vector<LoraLinear*> adapters_;
};

}  // namespace delrec::nn

#endif  // DELREC_NN_LORA_H_
