#ifndef DELREC_NN_GEMM_H_
#define DELREC_NN_GEMM_H_

#include <cstdint>
#include <string>

namespace delrec::nn {

/// Cache-blocked, register-tiled GEMM kernels (DESIGN.md §10).
///
/// All three variants produce results bit-identical to the retained naive
/// reference kernels below — and therefore to the historical serial kernels
/// of DESIGN.md §9 — at every thread count. The invariant that makes this
/// hold: per output element, partial products are accumulated in ascending
/// `p` (the contraction index) into a single accumulator chain, with the
/// same start value (0 or the prior C element) and the same `a == 0.0f`
/// skip behaviour as the reference. Register tiling only changes *which*
/// independent accumulator chains run interleaved, never the order within
/// one chain; spilling an accumulator to memory and reloading it is exact
/// in IEEE arithmetic, so cache blocking is free too.
///
/// Threading: rows of C are statically partitioned across
/// util::ParallelConfig threads exactly as before (each row is written by
/// one chunk; see DESIGN.md §9); the microkernels run inside each chunk.
///
/// The microkernel geometry is kGemmRowTile × kGemmColTile accumulators
/// held live across the full k loop. For GemmNN/GemmTN, B is repacked into
/// contiguous kGemmColTile-wide panels (one pack per GEMM call, pooled via
/// util::BufferPool, shared read-only by every row chunk) whenever the
/// output has enough rows to amortize the pack; GemmNT transpose-packs B so
/// its tiles get the same lane-parallel shape while keeping the reference's
/// dot-then-combine association.
///
/// The full tiles are hand-written intrinsic kernels (AVX-512F, AVX2, plus
/// a portable scalar fallback) selected once per GEMM call via
/// __builtin_cpu_supports. Lane-parallel mul/add is IEEE-identical per lane
/// to scalar, and the GEMM translation unit is built with -ffp-contract=off
/// so no FMA contraction can split blocked and reference numerics — the ISA
/// choice never changes results.

inline constexpr int kGemmRowTile = 4;   // MR: C rows per microkernel tile.
inline constexpr int kGemmColTile = 16;  // NR: C columns per microkernel tile.
/// Minimum M at which GemmNN/GemmTN pack B (below it the pack's extra pass
/// over B costs more than it saves).
inline constexpr int64_t kGemmPackMinRows = 8;

/// C (M,N) = A (M,K) · B (K,N); accumulate adds into C instead of storing.
void GemmNN(const float* a, const float* b, float* c, int64_t m, int64_t n,
            int64_t k, bool accumulate);
/// C (M,N) = A (M,K) · Bᵀ with B stored (N,K).
void GemmNT(const float* a, const float* b, float* c, int64_t m, int64_t n,
            int64_t k, bool accumulate);
/// C (M,N) = Aᵀ · B with A stored (K,M), B stored (K,N).
void GemmTN(const float* a, const float* b, float* c, int64_t m, int64_t n,
            int64_t k, bool accumulate);

/// Naive serial reference kernels — the exact historical loop nests, kept
/// as the bit-identity oracle for tests and the perf baseline for benches.
/// Single-threaded regardless of util::ParallelConfig.
void GemmNNRef(const float* a, const float* b, float* c, int64_t m, int64_t n,
               int64_t k, bool accumulate);
void GemmNTRef(const float* a, const float* b, float* c, int64_t m, int64_t n,
               int64_t k, bool accumulate);
void GemmTNRef(const float* a, const float* b, float* c, int64_t m, int64_t n,
               int64_t k, bool accumulate);

/// Human-readable summary of the compiled kernel configuration (tile sizes,
/// packing threshold, whether -march=native was enabled). Printed at bench
/// startup and recorded in BENCH_*.json.
std::string GemmKernelConfig();

/// The dispatched fp32 tile's ISA tier alone ("avx512", "avx2", "sse2", or
/// "portable") — recorded as config.isa in BENCH_*.json so baselines gate
/// only against like-for-like hardware runs.
std::string GemmKernelIsa();

}  // namespace delrec::nn

#endif  // DELREC_NN_GEMM_H_
