#include "nn/tensor.h"

#include <sstream>
#include <unordered_set>

#include "util/buffer_pool.h"
#include "util/check.h"

namespace delrec::nn {

namespace {
thread_local bool g_grad_mode = true;
}  // namespace

bool GradModeEnabled() { return g_grad_mode; }

NoGradGuard::NoGradGuard() : previous_(g_grad_mode) { g_grad_mode = false; }

NoGradGuard::~NoGradGuard() { g_grad_mode = previous_; }

int64_t NumElements(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    DELREC_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

TensorImpl::~TensorImpl() {
  util::BufferPool& pool = util::BufferPool::Global();
  pool.Release(std::move(data));
  pool.Release(std::move(grad));
}

std::vector<float>& TensorImpl::EnsureGrad() {
  if (grad.size() != data.size()) {
    util::BufferPool& pool = util::BufferPool::Global();
    pool.Release(std::move(grad));
    grad = pool.AcquireZeroed(data.size());
  }
  return grad;
}

Tensor Tensor::Zeros(std::vector<int64_t> shape, bool requires_grad) {
  auto impl = std::make_shared<TensorImpl>();
  impl->data = util::BufferPool::Global().AcquireZeroed(NumElements(shape));
  impl->shape = std::move(shape);
  impl->requires_grad = requires_grad;
  return FromImpl(std::move(impl));
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value,
                    bool requires_grad) {
  Tensor t = Zeros(std::move(shape), requires_grad);
  for (float& v : t.data()) v = value;
  return t;
}

Tensor Tensor::FromData(std::vector<int64_t> shape, std::vector<float> data,
                        bool requires_grad) {
  DELREC_CHECK_EQ(NumElements(shape), static_cast<int64_t>(data.size()));
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  impl->requires_grad = requires_grad;
  return FromImpl(std::move(impl));
}

Tensor Tensor::Randn(std::vector<int64_t> shape, util::Rng& rng, float stddev,
                     bool requires_grad) {
  Tensor t = Zeros(std::move(shape), requires_grad);
  for (float& v : t.data()) {
    v = static_cast<float>(rng.Normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::RandUniform(std::vector<int64_t> shape, util::Rng& rng,
                           float bound, bool requires_grad) {
  Tensor t = Zeros(std::move(shape), requires_grad);
  for (float& v : t.data()) v = rng.UniformFloat(-bound, bound);
  return t;
}

Tensor Tensor::FromImpl(std::shared_ptr<TensorImpl> impl) {
  Tensor t;
  t.impl_ = std::move(impl);
  return t;
}

const std::vector<int64_t>& Tensor::shape() const {
  DELREC_CHECK(defined());
  return impl_->shape;
}

int Tensor::ndim() const { return static_cast<int>(shape().size()); }

int64_t Tensor::dim(int index) const {
  const auto& s = shape();
  if (index < 0) index += static_cast<int>(s.size());
  DELREC_CHECK_GE(index, 0);
  DELREC_CHECK_LT(static_cast<size_t>(index), s.size());
  return s[index];
}

int64_t Tensor::size() const {
  DELREC_CHECK(defined());
  return impl_->size();
}

bool Tensor::requires_grad() const {
  DELREC_CHECK(defined());
  return impl_->requires_grad;
}

void Tensor::set_requires_grad(bool requires_grad) {
  DELREC_CHECK(defined());
  impl_->requires_grad = requires_grad;
}

std::vector<float>& Tensor::data() {
  DELREC_CHECK(defined());
  return impl_->data;
}

const std::vector<float>& Tensor::data() const {
  DELREC_CHECK(defined());
  return impl_->data;
}

std::vector<float>& Tensor::grad() {
  DELREC_CHECK(defined());
  return impl_->EnsureGrad();
}

bool Tensor::has_grad() const {
  DELREC_CHECK(defined());
  return impl_->grad.size() == impl_->data.size();
}

float Tensor::item() const {
  DELREC_CHECK_EQ(size(), 1);
  return impl_->data[0];
}

float Tensor::at(std::initializer_list<int64_t> index) const {
  DELREC_CHECK(defined());
  DELREC_CHECK_EQ(index.size(), impl_->shape.size());
  int64_t flat = 0;
  int i = 0;
  for (int64_t idx : index) {
    DELREC_CHECK_GE(idx, 0);
    DELREC_CHECK_LT(idx, impl_->shape[i]);
    flat = flat * impl_->shape[i] + idx;
    ++i;
  }
  return impl_->data[flat];
}

void Tensor::Backward() {
  DELREC_CHECK(defined());
  DELREC_CHECK_EQ(size(), 1) << "Backward() requires a scalar loss";
  // Topological order by iterative DFS over the tape.
  std::vector<TensorImpl*> order;
  std::unordered_set<TensorImpl*> visited;
  std::vector<std::pair<TensorImpl*, size_t>> stack;
  stack.emplace_back(impl_.get(), 0);
  visited.insert(impl_.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      TensorImpl* child = node->parents[next_child].impl();
      ++next_child;
      if (child != nullptr && visited.insert(child).second) {
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  // Seed and run the tape in reverse topological order.
  impl_->EnsureGrad()[0] = 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backward_fn) {
      node->EnsureGrad();
      node->backward_fn(*node);
    }
  }
  // Release tape edges of interior nodes so activations free promptly. Leaf
  // parameters have no edges and keep their grads for the optimizer.
  for (TensorImpl* node : order) {
    if (node->backward_fn) {
      node->backward_fn = nullptr;
      node->parents.clear();
    }
  }
}

void Tensor::ZeroGrad() {
  DELREC_CHECK(defined());
  if (!impl_->grad.empty()) {
    std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
  }
}

Tensor Tensor::DetachCopy() const {
  DELREC_CHECK(defined());
  return FromData(impl_->shape, util::BufferPool::Global().AcquireCopy(impl_->data),
                  /*requires_grad=*/false);
}

std::string Tensor::ShapeString() const {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape().size(); ++i) {
    if (i > 0) out << ", ";
    out << shape()[i];
  }
  out << "]";
  return out.str();
}

}  // namespace delrec::nn
