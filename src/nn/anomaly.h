#ifndef DELREC_NN_ANOMALY_H_
#define DELREC_NN_ANOMALY_H_

#include <cstdint>
#include <vector>

#include "nn/tensor.h"
#include "util/status.h"

namespace delrec::nn {

/// The user-facing anomaly-guard knobs shared by every training
/// configuration (core::DelRecConfig, srmodels::TrainConfig) so the
/// semantics and defaults live in exactly one place. ToOptions() expands to
/// a full LossAnomalyGuard::Options; the EMA decay and warmup keep the
/// guard's internal defaults, which no training loop overrides.
struct AnomalyGuardConfig {
  /// Skip anomalous batches (parameters untouched); abort the run with a
  /// Status after `max_consecutive` anomalous batches in a row.
  bool enabled = true;
  float spike_factor = 25.0f;
  int max_consecutive = 5;
};

/// Watchdog for training loops: flags non-finite or spiking batch losses so
/// the caller can skip the optimizer step instead of poisoning the model,
/// and escalates to a Status error once too many consecutive batches are
/// anomalous (a diverged run should abort cleanly, not CHECK-fail).
///
/// A loss is anomalous when it is non-finite, or — after `warmup_steps`
/// healthy batches — exceeds `spike_factor` times the running loss EMA.
class LossAnomalyGuard {
 public:
  struct Options {
    bool enabled = true;
    float spike_factor = 25.0f;
    float ema_decay = 0.9f;
    int max_consecutive = 5;
    int warmup_steps = 5;
  };

  explicit LossAnomalyGuard(const Options& options) : options_(options) {}

  /// Expands the shared user-facing knobs into full Options.
  static Options FromConfig(const AnomalyGuardConfig& config) {
    Options options;
    options.enabled = config.enabled;
    options.spike_factor = config.spike_factor;
    options.max_consecutive = config.max_consecutive;
    return options;
  }

  /// Returns true when this batch's loss is anomalous and the step must be
  /// skipped; otherwise folds the loss into the running EMA.
  bool ShouldSkip(float loss);

  /// Reports a post-step blow-up (non-finite parameter values after an
  /// apparently healthy loss). Counts like a skipped step.
  void ReportParameterAnomaly();

  /// True once max_consecutive anomalies have occurred in a row.
  bool exhausted() const {
    return options_.enabled && consecutive_ >= options_.max_consecutive;
  }

  /// kInternal describing the divergence when exhausted, OK otherwise.
  util::Status status() const;

  int64_t anomaly_count() const { return total_; }
  int64_t consecutive_anomalies() const { return consecutive_; }

  /// Resume support: the guard's state rides in the TrainState blob so a
  /// resumed run observes exactly what an uninterrupted one would.
  std::vector<float> StateDump() const;
  util::Status LoadState(const std::vector<float>& state);

 private:
  Options options_;
  float ema_ = 0.0f;
  int64_t healthy_steps_ = 0;
  int64_t consecutive_ = 0;
  int64_t total_ = 0;
};

/// True when every parameter value in the set is finite.
bool AllParametersFinite(const std::vector<Tensor>& parameters);

/// Pre-step snapshot of parameter values, for restoring after a step that
/// produced non-finite parameters.
std::vector<std::vector<float>> SnapshotParameterData(
    const std::vector<Tensor>& parameters);
void RestoreParameterData(const std::vector<Tensor>& parameters,
                          const std::vector<std::vector<float>>& snapshot);

}  // namespace delrec::nn

#endif  // DELREC_NN_ANOMALY_H_
