#include "nn/module.h"

#include <cmath>

#include "util/check.h"

namespace delrec::nn {

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> out;
  for (const auto& [name, tensor] : NamedParameters()) out.push_back(tensor);
  return out;
}

std::vector<std::pair<std::string, Tensor>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, Tensor>> out;
  CollectNamed("", out);
  return out;
}

void Module::CollectNamed(
    const std::string& prefix,
    std::vector<std::pair<std::string, Tensor>>& out) const {
  for (const auto& [name, tensor] : parameters_) {
    out.emplace_back(prefix + name, tensor);
  }
  for (const auto& [name, child] : children_) {
    child->CollectNamed(prefix + name + ".", out);
  }
}

int64_t Module::ParameterCount() const {
  int64_t total = 0;
  for (const Tensor& p : Parameters()) total += p.size();
  return total;
}

std::vector<float> Module::StateDump() const {
  std::vector<float> state;
  for (const Tensor& p : Parameters()) {
    state.insert(state.end(), p.data().begin(), p.data().end());
  }
  return state;
}

void Module::LoadState(const std::vector<float>& state) {
  size_t offset = 0;
  for (Tensor p : Parameters()) {
    DELREC_CHECK_LE(offset + p.data().size(), state.size());
    std::copy(state.begin() + offset, state.begin() + offset + p.data().size(),
              p.data().begin());
    offset += p.data().size();
  }
  DELREC_CHECK_EQ(offset, state.size()) << "state size mismatch";
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->SetTraining(training);
}

void Module::ZeroGrad() {
  for (Tensor p : Parameters()) p.ZeroGrad();
}

void Module::SetRequiresGrad(bool requires_grad) {
  for (Tensor p : Parameters()) p.set_requires_grad(requires_grad);
}

void Module::RegisterParameter(std::string name, Tensor parameter) {
  DELREC_CHECK(parameter.defined());
  parameters_.emplace_back(std::move(name), std::move(parameter));
}

void Module::RegisterModule(std::string name, Module* child) {
  DELREC_CHECK(child != nullptr);
  children_.emplace_back(std::move(name), child);
}

float ClipGradNorm(const std::vector<Tensor>& parameters, float max_norm) {
  double total_sq = 0.0;
  for (const Tensor& p : parameters) {
    if (!p.has_grad()) continue;
    for (float g : p.impl()->grad) total_sq += static_cast<double>(g) * g;
  }
  const float norm = static_cast<float>(std::sqrt(total_sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (Tensor p : parameters) {
      if (!p.has_grad()) continue;
      for (float& g : p.grad()) g *= scale;
    }
  }
  return norm;
}

}  // namespace delrec::nn
