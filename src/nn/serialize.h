#ifndef DELREC_NN_SERIALIZE_H_
#define DELREC_NN_SERIALIZE_H_

#include <string>

#include "nn/module.h"
#include "util/status.h"

namespace delrec::nn {

/// Saves a module's named parameters to a BlobFile checkpoint, one blob per
/// parameter (qualified name → values). Works for any Module tree: the SR
/// models, TinyLM, adapters.
util::Status SaveModuleState(const Module& module, const std::string& path);

/// Restores parameters by name. Every parameter of `module` must be present
/// in the file with a matching element count; extra blobs in the file are
/// ignored (forward compatibility).
util::Status LoadModuleState(Module& module, const std::string& path);

}  // namespace delrec::nn

#endif  // DELREC_NN_SERIALIZE_H_
