#include "nn/serialize.h"

#include "util/serialize.h"

namespace delrec::nn {

util::Status SaveModuleState(const Module& module, const std::string& path) {
  util::BlobFile file;
  for (const auto& [name, tensor] : module.NamedParameters()) {
    file.Put(name, tensor.data());
  }
  return file.WriteTo(path);
}

util::Status LoadModuleState(Module& module, const std::string& path) {
  auto file_or = util::BlobFile::ReadFrom(path);
  if (!file_or.ok()) return file_or.status();
  const util::BlobFile& file = file_or.value();
  for (auto& [name, tensor] : module.NamedParameters()) {
    auto values = file.Get(name);
    if (!values.ok()) return values.status();
    if (values.value().size() != tensor.data().size()) {
      return util::Status::InvalidArgument("size mismatch for " + name);
    }
    nn::Tensor target = tensor;  // Shares storage with the module.
    target.data() = values.value();
  }
  return util::Status::Ok();
}

}  // namespace delrec::nn
