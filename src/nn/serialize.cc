#include "nn/serialize.h"

#include "util/serialize.h"

namespace delrec::nn {

util::Status SaveModuleState(const Module& module, const std::string& path) {
  util::BlobFile file;
  for (const auto& [name, tensor] : module.NamedParameters()) {
    file.Put(name, tensor.data());
  }
  return file.WriteTo(path);
}

util::Status LoadModuleState(Module& module, const std::string& path) {
  DELREC_ASSIGN_OR_RETURN(const util::BlobFile file,
                          util::BlobFile::ReadFrom(path));
  for (auto& [name, tensor] : module.NamedParameters()) {
    DELREC_ASSIGN_OR_RETURN(std::vector<float> values, file.Get(name));
    if (values.size() != tensor.data().size()) {
      return util::Status::InvalidArgument("size mismatch for " + name);
    }
    nn::Tensor target = tensor;  // Shares storage with the module.
    target.data() = std::move(values);
  }
  return util::Status::Ok();
}

}  // namespace delrec::nn
