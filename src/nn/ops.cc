#include "nn/ops.h"

#include <algorithm>
#include <cmath>

#include "nn/gemm.h"
#include "util/buffer_pool.h"
#include "util/check.h"

namespace delrec::nn {
namespace {

util::BufferPool& Pool() { return util::BufferPool::Global(); }

using SharedBuffer = std::shared_ptr<std::vector<float>>;

bool AnyRequiresGrad(const std::vector<Tensor>& tensors) {
  if (!GradModeEnabled()) return false;
  for (const Tensor& t : tensors) {
    if (t.defined() && t.requires_grad()) return true;
  }
  return false;
}

// Builds a tape node. If no parent requires gradients, returns a plain leaf.
Tensor MakeNode(std::vector<int64_t> shape, std::vector<float> data,
                std::vector<Tensor> parents,
                std::function<void(TensorImpl&)> backward_fn) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  if (AnyRequiresGrad(parents)) {
    impl->requires_grad = true;
    impl->parents = std::move(parents);
    impl->backward_fn = std::move(backward_fn);
  }
  return Tensor::FromImpl(std::move(impl));
}

// The dense GEMM kernels (blocked microkernels + thread partitioning) live
// in nn/gemm.{h,cc}; MatMul below calls GemmNN/GemmNT/GemmTN directly.

using UnaryForward = float (*)(float);

Tensor ElementwiseBinary(const Tensor& a, const Tensor& b, float sign_b,
                         bool multiply) {
  DELREC_CHECK(a.shape() == b.shape())
      << a.ShapeString() << " vs " << b.ShapeString();
  std::vector<float> out = Pool().Acquire(a.size());
  const auto& av = a.data();
  const auto& bv = b.data();
  if (multiply) {
    for (int64_t i = 0; i < a.size(); ++i) out[i] = av[i] * bv[i];
  } else {
    for (int64_t i = 0; i < a.size(); ++i) out[i] = av[i] + sign_b * bv[i];
  }
  Tensor a_copy = a;
  Tensor b_copy = b;
  return MakeNode(
      a.shape(), std::move(out), {a, b},
      [a_copy, b_copy, sign_b, multiply](TensorImpl& self) mutable {
        const auto& g = self.grad;
        if (a_copy.requires_grad()) {
          auto& ga = a_copy.grad();
          if (multiply) {
            const auto& bv = b_copy.data();
            for (size_t i = 0; i < g.size(); ++i) ga[i] += g[i] * bv[i];
          } else {
            for (size_t i = 0; i < g.size(); ++i) ga[i] += g[i];
          }
        }
        if (b_copy.requires_grad()) {
          auto& gb = b_copy.grad();
          if (multiply) {
            const auto& av = a_copy.data();
            for (size_t i = 0; i < g.size(); ++i) gb[i] += g[i] * av[i];
          } else {
            for (size_t i = 0; i < g.size(); ++i) gb[i] += sign_b * g[i];
          }
        }
      });
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(a, b, +1.0f, /*multiply=*/false);
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(a, b, -1.0f, /*multiply=*/false);
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(a, b, 0.0f, /*multiply=*/true);
}

Tensor AddScalar(const Tensor& a, float s) {
  std::vector<float> out = Pool().AcquireCopy(a.data());
  for (float& v : out) v += s;
  Tensor a_copy = a;
  return MakeNode(a.shape(), std::move(out), {a},
                  [a_copy](TensorImpl& self) mutable {
                    if (!a_copy.requires_grad()) return;
                    auto& ga = a_copy.grad();
                    for (size_t i = 0; i < self.grad.size(); ++i) {
                      ga[i] += self.grad[i];
                    }
                  });
}

Tensor MulScalar(const Tensor& a, float s) {
  std::vector<float> out = Pool().AcquireCopy(a.data());
  for (float& v : out) v *= s;
  Tensor a_copy = a;
  return MakeNode(a.shape(), std::move(out), {a},
                  [a_copy, s](TensorImpl& self) mutable {
                    if (!a_copy.requires_grad()) return;
                    auto& ga = a_copy.grad();
                    for (size_t i = 0; i < self.grad.size(); ++i) {
                      ga[i] += s * self.grad[i];
                    }
                  });
}

Tensor AddN(const std::vector<Tensor>& tensors) {
  DELREC_CHECK(!tensors.empty());
  std::vector<float> out = Pool().AcquireCopy(tensors[0].data());
  for (size_t t = 1; t < tensors.size(); ++t) {
    DELREC_CHECK(tensors[t].shape() == tensors[0].shape());
    const auto& v = tensors[t].data();
    for (size_t i = 0; i < out.size(); ++i) out[i] += v[i];
  }
  std::vector<Tensor> parents = tensors;
  return MakeNode(tensors[0].shape(), std::move(out), tensors,
                  [parents](TensorImpl& self) mutable {
                    for (Tensor& p : parents) {
                      if (!p.requires_grad()) continue;
                      auto& gp = p.grad();
                      for (size_t i = 0; i < self.grad.size(); ++i) {
                        gp[i] += self.grad[i];
                      }
                    }
                  });
}

Tensor Cos(const Tensor& x) {
  const auto& xv = x.data();
  std::vector<float> out = Pool().Acquire(xv.size());
  for (size_t i = 0; i < xv.size(); ++i) out[i] = std::cos(xv[i]);
  Tensor x_copy = x;
  return MakeNode(x.shape(), std::move(out), {x},
                  [x_copy](TensorImpl& self) mutable {
                    if (!x_copy.requires_grad()) return;
                    auto& gx = x_copy.grad();
                    const auto& xv = x_copy.data();
                    for (size_t i = 0; i < self.grad.size(); ++i) {
                      gx[i] -= self.grad[i] * std::sin(xv[i]);
                    }
                  });
}

Tensor MulScalarTensor(const Tensor& x, const Tensor& s) {
  DELREC_CHECK_EQ(s.size(), 1);
  const float scale = s.data()[0];
  std::vector<float> out = Pool().AcquireCopy(x.data());
  for (float& v : out) v *= scale;
  Tensor x_copy = x;
  Tensor s_copy = s;
  return MakeNode(x.shape(), std::move(out), {x, s},
                  [x_copy, s_copy](TensorImpl& self) mutable {
                    const float scale = s_copy.data()[0];
                    if (x_copy.requires_grad()) {
                      auto& gx = x_copy.grad();
                      for (size_t i = 0; i < self.grad.size(); ++i) {
                        gx[i] += self.grad[i] * scale;
                      }
                    }
                    if (s_copy.requires_grad()) {
                      const auto& xv = x_copy.data();
                      float total = 0.0f;
                      for (size_t i = 0; i < self.grad.size(); ++i) {
                        total += self.grad[i] * xv[i];
                      }
                      s_copy.grad()[0] += total;
                    }
                  });
}

Tensor Relu(const Tensor& x) {
  std::vector<float> out = Pool().AcquireCopy(x.data());
  for (float& v : out) v = v > 0.0f ? v : 0.0f;
  Tensor x_copy = x;
  return MakeNode(x.shape(), std::move(out), {x},
                  [x_copy](TensorImpl& self) mutable {
                    if (!x_copy.requires_grad()) return;
                    auto& gx = x_copy.grad();
                    const auto& xv = x_copy.data();
                    for (size_t i = 0; i < self.grad.size(); ++i) {
                      if (xv[i] > 0.0f) gx[i] += self.grad[i];
                    }
                  });
}

Tensor Gelu(const Tensor& x) {
  constexpr float kSqrt2OverPi = 0.7978845608f;
  constexpr float kCoeff = 0.044715f;
  const auto& xv = x.data();
  std::vector<float> out = Pool().Acquire(xv.size());
  for (size_t i = 0; i < xv.size(); ++i) {
    const float v = xv[i];
    const float inner = kSqrt2OverPi * (v + kCoeff * v * v * v);
    out[i] = 0.5f * v * (1.0f + std::tanh(inner));
  }
  Tensor x_copy = x;
  return MakeNode(
      x.shape(), std::move(out), {x}, [x_copy](TensorImpl& self) mutable {
        if (!x_copy.requires_grad()) return;
        auto& gx = x_copy.grad();
        const auto& xv = x_copy.data();
        for (size_t i = 0; i < self.grad.size(); ++i) {
          const float v = xv[i];
          const float inner = kSqrt2OverPi * (v + kCoeff * v * v * v);
          const float t = std::tanh(inner);
          const float sech2 = 1.0f - t * t;
          const float d_inner = kSqrt2OverPi * (1.0f + 3.0f * kCoeff * v * v);
          const float d = 0.5f * (1.0f + t) + 0.5f * v * sech2 * d_inner;
          gx[i] += self.grad[i] * d;
        }
      });
}

Tensor Sigmoid(const Tensor& x) {
  const auto& xv = x.data();
  std::vector<float> out = Pool().Acquire(xv.size());
  for (size_t i = 0; i < xv.size(); ++i) {
    out[i] = 1.0f / (1.0f + std::exp(-xv[i]));
  }
  Tensor x_copy = x;
  // Capture forward values: σ' = σ(1-σ). Pooled shared buffer so the copy
  // held by the backward closure recycles on tape release.
  SharedBuffer saved = Pool().AcquireSharedCopy(out);
  return MakeNode(x.shape(), std::move(out), {x},
                  [x_copy, saved](TensorImpl& self) mutable {
                    if (!x_copy.requires_grad()) return;
                    auto& gx = x_copy.grad();
                    const auto& s = *saved;
                    for (size_t i = 0; i < self.grad.size(); ++i) {
                      gx[i] += self.grad[i] * s[i] * (1.0f - s[i]);
                    }
                  });
}

Tensor Tanh(const Tensor& x) {
  const auto& xv = x.data();
  std::vector<float> out = Pool().Acquire(xv.size());
  for (size_t i = 0; i < xv.size(); ++i) out[i] = std::tanh(xv[i]);
  Tensor x_copy = x;
  SharedBuffer saved = Pool().AcquireSharedCopy(out);
  return MakeNode(x.shape(), std::move(out), {x},
                  [x_copy, saved](TensorImpl& self) mutable {
                    if (!x_copy.requires_grad()) return;
                    auto& gx = x_copy.grad();
                    const auto& s = *saved;
                    for (size_t i = 0; i < self.grad.size(); ++i) {
                      gx[i] += self.grad[i] * (1.0f - s[i] * s[i]);
                    }
                  });
}

Tensor Dropout(const Tensor& x, float p, util::Rng& rng, bool training) {
  if (!training || p <= 0.0f) return x;
  DELREC_CHECK_LT(p, 1.0f);
  const float scale = 1.0f / (1.0f - p);
  SharedBuffer mask = Pool().AcquireShared(x.size());
  for (float& m : *mask) m = rng.Bernoulli(p) ? 0.0f : scale;
  const auto& xv = x.data();
  const auto& mv = *mask;
  std::vector<float> out = Pool().Acquire(xv.size());
  for (size_t i = 0; i < xv.size(); ++i) out[i] = xv[i] * mv[i];
  Tensor x_copy = x;
  return MakeNode(x.shape(), std::move(out), {x},
                  [x_copy, mask](TensorImpl& self) mutable {
                    if (!x_copy.requires_grad()) return;
                    auto& gx = x_copy.grad();
                    const auto& mv = *mask;
                    for (size_t i = 0; i < self.grad.size(); ++i) {
                      gx[i] += self.grad[i] * mv[i];
                    }
                  });
}

Tensor MatMul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  DELREC_CHECK(!(trans_a && trans_b)) << "MatMul: TT variant unsupported";
  DELREC_CHECK_EQ(a.ndim(), 2);
  DELREC_CHECK_EQ(b.ndim(), 2);
  const int64_t m = trans_a ? a.dim(1) : a.dim(0);
  const int64_t k = trans_a ? a.dim(0) : a.dim(1);
  const int64_t k2 = trans_b ? b.dim(1) : b.dim(0);
  const int64_t n = trans_b ? b.dim(0) : b.dim(1);
  DELREC_CHECK_EQ(k, k2) << "MatMul inner dims: " << a.ShapeString() << " · "
                         << b.ShapeString();
  std::vector<float> out = Pool().Acquire(m * n);
  const float* av = a.data().data();
  const float* bv = b.data().data();
  if (!trans_a && !trans_b) {
    GemmNN(av, bv, out.data(), m, n, k, false);
  } else if (!trans_a && trans_b) {
    GemmNT(av, bv, out.data(), m, n, k, false);
  } else {
    GemmTN(av, bv, out.data(), m, n, k, false);
  }
  Tensor a_copy = a;
  Tensor b_copy = b;
  return MakeNode(
      {m, n}, std::move(out), {a, b},
      [a_copy, b_copy, trans_a, trans_b, m, n, k](TensorImpl& self) mutable {
        const float* g = self.grad.data();
        if (a_copy.requires_grad()) {
          float* ga = a_copy.grad().data();
          const float* bv = b_copy.data().data();
          if (!trans_a && !trans_b) {
            // dA (m,k) += dC (m,n) · B^T; B is (k,n).
            GemmNT(g, bv, ga, m, k, n, true);
          } else if (!trans_a && trans_b) {
            // C = A·B^T with B (n,k): dA (m,k) += dC (m,n) · B (n,k).
            GemmNN(g, bv, ga, m, k, n, true);
          } else {
            // C = A^T·B with A (k,m): dA (k,m) += B (k,n) · dC^T (n,m).
            GemmNT(bv, g, ga, k, m, n, true);
          }
        }
        if (b_copy.requires_grad()) {
          float* gb = b_copy.grad().data();
          const float* av = a_copy.data().data();
          if (!trans_a && !trans_b) {
            // dB (k,n) += A^T (k,m) · dC (m,n); A stored (m,k).
            GemmTN(av, g, gb, k, n, m, true);
          } else if (!trans_a && trans_b) {
            // C = A·B^T: dB (n,k) += dC^T (n,m) · A (m,k).
            GemmTN(g, av, gb, n, k, m, true);
          } else {
            // C = A^T·B: dB (k,n) += A (k,m) · dC (m,n).
            GemmNN(av, g, gb, k, n, m, true);
          }
        }
      });
}

Tensor AddBias(const Tensor& x, const Tensor& bias) {
  DELREC_CHECK_EQ(x.ndim(), 2);
  DELREC_CHECK_EQ(bias.size(), x.dim(1));
  const int64_t n = x.dim(0);
  const int64_t d = x.dim(1);
  std::vector<float> out = Pool().AcquireCopy(x.data());
  const auto& bv = bias.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) out[i * d + j] += bv[j];
  }
  Tensor x_copy = x;
  Tensor b_copy = bias;
  return MakeNode(x.shape(), std::move(out), {x, bias},
                  [x_copy, b_copy, n, d](TensorImpl& self) mutable {
                    if (x_copy.requires_grad()) {
                      auto& gx = x_copy.grad();
                      for (size_t i = 0; i < self.grad.size(); ++i) {
                        gx[i] += self.grad[i];
                      }
                    }
                    if (b_copy.requires_grad()) {
                      auto& gb = b_copy.grad();
                      for (int64_t i = 0; i < n; ++i) {
                        for (int64_t j = 0; j < d; ++j) {
                          gb[j] += self.grad[i * d + j];
                        }
                      }
                    }
                  });
}

Tensor Rows(const Tensor& table, const std::vector<int64_t>& indices) {
  DELREC_CHECK_EQ(table.ndim(), 2);
  const int64_t v = table.dim(0);
  const int64_t d = table.dim(1);
  std::vector<float> out = Pool().Acquire(indices.size() * d);
  const auto& tv = table.data();
  for (size_t i = 0; i < indices.size(); ++i) {
    DELREC_CHECK_GE(indices[i], 0);
    DELREC_CHECK_LT(indices[i], v);
    std::copy(tv.begin() + indices[i] * d, tv.begin() + (indices[i] + 1) * d,
              out.begin() + i * d);
  }
  Tensor table_copy = table;
  std::vector<int64_t> idx = indices;
  return MakeNode({static_cast<int64_t>(indices.size()), d}, std::move(out),
                  {table},
                  [table_copy, idx, d](TensorImpl& self) mutable {
                    if (!table_copy.requires_grad()) return;
                    auto& gt = table_copy.grad();
                    for (size_t i = 0; i < idx.size(); ++i) {
                      for (int64_t j = 0; j < d; ++j) {
                        gt[idx[i] * d + j] += self.grad[i * d + j];
                      }
                    }
                  });
}

Tensor ScaleCols(const Tensor& x, const Tensor& scales) {
  DELREC_CHECK_EQ(x.ndim(), 2);
  const int64_t n = x.dim(0);
  const int64_t d = x.dim(1);
  DELREC_CHECK_EQ(scales.size(), d);
  std::vector<float> out = Pool().Acquire(n * d);
  const auto& xv = x.data();
  const auto& sv = scales.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) out[i * d + j] = xv[i * d + j] * sv[j];
  }
  Tensor x_copy = x;
  Tensor s_copy = scales;
  return MakeNode(x.shape(), std::move(out), {x, scales},
                  [x_copy, s_copy, n, d](TensorImpl& self) mutable {
                    if (x_copy.requires_grad()) {
                      auto& gx = x_copy.grad();
                      const auto& sv = s_copy.data();
                      for (int64_t i = 0; i < n; ++i) {
                        for (int64_t j = 0; j < d; ++j) {
                          gx[i * d + j] += self.grad[i * d + j] * sv[j];
                        }
                      }
                    }
                    if (s_copy.requires_grad()) {
                      auto& gs = s_copy.grad();
                      const auto& xv = x_copy.data();
                      for (int64_t i = 0; i < n; ++i) {
                        for (int64_t j = 0; j < d; ++j) {
                          gs[j] += self.grad[i * d + j] * xv[i * d + j];
                        }
                      }
                    }
                  });
}

Tensor SliceRows(const Tensor& x, int64_t start, int64_t count) {
  DELREC_CHECK_EQ(x.ndim(), 2);
  DELREC_CHECK_GE(start, 0);
  DELREC_CHECK_LE(start + count, x.dim(0));
  const int64_t d = x.dim(1);
  std::vector<float> out = Pool().Acquire(count * d);
  std::copy(x.data().begin() + start * d,
            x.data().begin() + (start + count) * d, out.begin());
  Tensor x_copy = x;
  return MakeNode({count, d}, std::move(out), {x},
                  [x_copy, start, d](TensorImpl& self) mutable {
                    if (!x_copy.requires_grad()) return;
                    auto& gx = x_copy.grad();
                    for (size_t i = 0; i < self.grad.size(); ++i) {
                      gx[start * d + i] += self.grad[i];
                    }
                  });
}

Tensor SliceCols(const Tensor& x, int64_t start, int64_t count) {
  DELREC_CHECK_EQ(x.ndim(), 2);
  DELREC_CHECK_GE(start, 0);
  DELREC_CHECK_LE(start + count, x.dim(1));
  const int64_t n = x.dim(0);
  const int64_t d = x.dim(1);
  std::vector<float> out = Pool().Acquire(n * count);
  const auto& xv = x.data();
  for (int64_t i = 0; i < n; ++i) {
    std::copy(xv.begin() + i * d + start, xv.begin() + i * d + start + count,
              out.begin() + i * count);
  }
  Tensor x_copy = x;
  return MakeNode({n, count}, std::move(out), {x},
                  [x_copy, start, n, d, count](TensorImpl& self) mutable {
                    if (!x_copy.requires_grad()) return;
                    auto& gx = x_copy.grad();
                    for (int64_t i = 0; i < n; ++i) {
                      for (int64_t j = 0; j < count; ++j) {
                        gx[i * d + start + j] += self.grad[i * count + j];
                      }
                    }
                  });
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  DELREC_CHECK(!parts.empty());
  const int64_t d = parts[0].dim(1);
  int64_t total = 0;
  for (const Tensor& p : parts) {
    DELREC_CHECK_EQ(p.ndim(), 2);
    DELREC_CHECK_EQ(p.dim(1), d);
    total += p.dim(0);
  }
  std::vector<float> out = Pool().Acquire(total * d);
  auto write = out.begin();
  for (const Tensor& p : parts) {
    write = std::copy(p.data().begin(), p.data().end(), write);
  }
  std::vector<Tensor> parents = parts;
  return MakeNode({total, d}, std::move(out), parts,
                  [parents](TensorImpl& self) mutable {
                    size_t offset = 0;
                    for (Tensor& p : parents) {
                      const size_t len = p.data().size();
                      if (p.requires_grad()) {
                        auto& gp = p.grad();
                        for (size_t i = 0; i < len; ++i) {
                          gp[i] += self.grad[offset + i];
                        }
                      }
                      offset += len;
                    }
                  });
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  DELREC_CHECK(!parts.empty());
  const int64_t n = parts[0].dim(0);
  int64_t total = 0;
  for (const Tensor& p : parts) {
    DELREC_CHECK_EQ(p.ndim(), 2);
    DELREC_CHECK_EQ(p.dim(0), n);
    total += p.dim(1);
  }
  std::vector<float> out = Pool().Acquire(n * total);
  int64_t col_offset = 0;
  for (const Tensor& p : parts) {
    const int64_t d = p.dim(1);
    const auto& pv = p.data();
    for (int64_t i = 0; i < n; ++i) {
      std::copy(pv.begin() + i * d, pv.begin() + (i + 1) * d,
                out.begin() + i * total + col_offset);
    }
    col_offset += d;
  }
  std::vector<Tensor> parents = parts;
  return MakeNode({n, total}, std::move(out), parts,
                  [parents, n, total](TensorImpl& self) mutable {
                    int64_t col_offset = 0;
                    for (Tensor& p : parents) {
                      const int64_t d = p.dim(1);
                      if (p.requires_grad()) {
                        auto& gp = p.grad();
                        for (int64_t i = 0; i < n; ++i) {
                          for (int64_t j = 0; j < d; ++j) {
                            gp[i * d + j] +=
                                self.grad[i * total + col_offset + j];
                          }
                        }
                      }
                      col_offset += d;
                    }
                  });
}

Tensor Reshape(const Tensor& x, std::vector<int64_t> shape) {
  DELREC_CHECK_EQ(NumElements(shape), x.size());
  std::vector<float> out = Pool().AcquireCopy(x.data());
  Tensor x_copy = x;
  return MakeNode(std::move(shape), std::move(out), {x},
                  [x_copy](TensorImpl& self) mutable {
                    if (!x_copy.requires_grad()) return;
                    auto& gx = x_copy.grad();
                    for (size_t i = 0; i < self.grad.size(); ++i) {
                      gx[i] += self.grad[i];
                    }
                  });
}

Tensor Transpose(const Tensor& x) {
  DELREC_CHECK_EQ(x.ndim(), 2);
  const int64_t m = x.dim(0);
  const int64_t n = x.dim(1);
  std::vector<float> out = Pool().Acquire(m * n);
  const auto& xv = x.data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) out[j * m + i] = xv[i * n + j];
  }
  Tensor x_copy = x;
  return MakeNode({n, m}, std::move(out), {x},
                  [x_copy, m, n](TensorImpl& self) mutable {
                    if (!x_copy.requires_grad()) return;
                    auto& gx = x_copy.grad();
                    for (int64_t i = 0; i < m; ++i) {
                      for (int64_t j = 0; j < n; ++j) {
                        gx[i * n + j] += self.grad[j * m + i];
                      }
                    }
                  });
}

Tensor Mean(const Tensor& x) {
  const int64_t n = x.size();
  DELREC_CHECK_GT(n, 0);
  float total = 0.0f;
  for (float v : x.data()) total += v;
  Tensor x_copy = x;
  return MakeNode({1}, {total / static_cast<float>(n)}, {x},
                  [x_copy, n](TensorImpl& self) mutable {
                    if (!x_copy.requires_grad()) return;
                    auto& gx = x_copy.grad();
                    const float g = self.grad[0] / static_cast<float>(n);
                    for (float& v : gx) v += g;
                  });
}

Tensor Sum(const Tensor& x) {
  float total = 0.0f;
  for (float v : x.data()) total += v;
  Tensor x_copy = x;
  return MakeNode({1}, {total}, {x}, [x_copy](TensorImpl& self) mutable {
    if (!x_copy.requires_grad()) return;
    auto& gx = x_copy.grad();
    for (float& v : gx) v += self.grad[0];
  });
}

Tensor MeanRows(const Tensor& x) {
  DELREC_CHECK_EQ(x.ndim(), 2);
  const int64_t n = x.dim(0);
  const int64_t d = x.dim(1);
  DELREC_CHECK_GT(n, 0);
  std::vector<float> out = Pool().AcquireZeroed(d);
  const auto& xv = x.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) out[j] += xv[i * d + j];
  }
  for (float& v : out) v /= static_cast<float>(n);
  Tensor x_copy = x;
  return MakeNode({1, d}, std::move(out), {x},
                  [x_copy, n, d](TensorImpl& self) mutable {
                    if (!x_copy.requires_grad()) return;
                    auto& gx = x_copy.grad();
                    for (int64_t i = 0; i < n; ++i) {
                      for (int64_t j = 0; j < d; ++j) {
                        gx[i * d + j] += self.grad[j] / static_cast<float>(n);
                      }
                    }
                  });
}

Tensor MaxPoolRows(const Tensor& x) {
  DELREC_CHECK_EQ(x.ndim(), 2);
  const int64_t n = x.dim(0);
  const int64_t d = x.dim(1);
  DELREC_CHECK_GT(n, 0);
  std::vector<float> out = Pool().Acquire(d);
  std::vector<int64_t> argmax(d, 0);
  const auto& xv = x.data();
  for (int64_t j = 0; j < d; ++j) {
    float best = xv[j];
    int64_t best_i = 0;
    for (int64_t i = 1; i < n; ++i) {
      if (xv[i * d + j] > best) {
        best = xv[i * d + j];
        best_i = i;
      }
    }
    out[j] = best;
    argmax[j] = best_i;
  }
  Tensor x_copy = x;
  return MakeNode({1, d}, std::move(out), {x},
                  [x_copy, argmax, d](TensorImpl& self) mutable {
                    if (!x_copy.requires_grad()) return;
                    auto& gx = x_copy.grad();
                    for (int64_t j = 0; j < d; ++j) {
                      gx[argmax[j] * d + j] += self.grad[j];
                    }
                  });
}

namespace {

// Row-wise softmax into `out`; returns nothing. Stable via row max.
void SoftmaxRows(const std::vector<float>& in, std::vector<float>& out,
                 int64_t n, int64_t c) {
  for (int64_t i = 0; i < n; ++i) {
    const float* row = in.data() + i * c;
    float* orow = out.data() + i * c;
    float mx = row[0];
    for (int64_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    float denom = 0.0f;
    for (int64_t j = 0; j < c; ++j) {
      orow[j] = std::exp(row[j] - mx);
      denom += orow[j];
    }
    const float inv = 1.0f / denom;
    for (int64_t j = 0; j < c; ++j) orow[j] *= inv;
  }
}

}  // namespace

Tensor Softmax(const Tensor& x) {
  DELREC_CHECK_EQ(x.ndim(), 2);
  const int64_t n = x.dim(0);
  const int64_t c = x.dim(1);
  std::vector<float> out = Pool().Acquire(n * c);
  SoftmaxRows(x.data(), out, n, c);
  Tensor x_copy = x;
  SharedBuffer saved = Pool().AcquireSharedCopy(out);
  return MakeNode(
      x.shape(), std::move(out), {x},
      [x_copy, saved, n, c](TensorImpl& self) mutable {
        if (!x_copy.requires_grad()) return;
        auto& gx = x_copy.grad();
        for (int64_t i = 0; i < n; ++i) {
          const float* s = saved->data() + i * c;
          const float* g = self.grad.data() + i * c;
          float dot = 0.0f;
          for (int64_t j = 0; j < c; ++j) dot += s[j] * g[j];
          for (int64_t j = 0; j < c; ++j) {
            gx[i * c + j] += s[j] * (g[j] - dot);
          }
        }
      });
}

Tensor LogSoftmax(const Tensor& x) {
  DELREC_CHECK_EQ(x.ndim(), 2);
  const int64_t n = x.dim(0);
  const int64_t c = x.dim(1);
  SharedBuffer softmax = Pool().AcquireShared(n * c);
  SoftmaxRows(x.data(), *softmax, n, c);
  std::vector<float> out = Pool().Acquire(n * c);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = std::log(std::max((*softmax)[i], 1e-30f));
  }
  Tensor x_copy = x;
  return MakeNode(
      x.shape(), std::move(out), {x},
      [x_copy, softmax, n, c](TensorImpl& self) mutable {
        if (!x_copy.requires_grad()) return;
        auto& gx = x_copy.grad();
        for (int64_t i = 0; i < n; ++i) {
          const float* s = softmax->data() + i * c;
          const float* g = self.grad.data() + i * c;
          float gsum = 0.0f;
          for (int64_t j = 0; j < c; ++j) gsum += g[j];
          for (int64_t j = 0; j < c; ++j) {
            gx[i * c + j] += g[j] - s[j] * gsum;
          }
        }
      });
}

Tensor CrossEntropyWithLogits(const Tensor& logits,
                              const std::vector<int64_t>& targets) {
  DELREC_CHECK_EQ(logits.ndim(), 2);
  const int64_t n = logits.dim(0);
  const int64_t c = logits.dim(1);
  DELREC_CHECK_EQ(static_cast<int64_t>(targets.size()), n);
  SharedBuffer softmax = Pool().AcquireShared(n * c);
  SoftmaxRows(logits.data(), *softmax, n, c);
  float loss = 0.0f;
  int64_t active = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (targets[i] < 0) continue;  // Masked row.
    DELREC_CHECK_LT(targets[i], c);
    loss -= std::log(std::max((*softmax)[i * c + targets[i]], 1e-30f));
    ++active;
  }
  DELREC_CHECK_GT(active, 0) << "all rows masked in CrossEntropyWithLogits";
  loss /= static_cast<float>(active);
  Tensor logits_copy = logits;
  std::vector<int64_t> tgt = targets;
  return MakeNode(
      {1}, {loss}, {logits},
      [logits_copy, tgt, softmax, n, c, active](TensorImpl& self) mutable {
        if (!logits_copy.requires_grad()) return;
        auto& gx = logits_copy.grad();
        const float g = self.grad[0] / static_cast<float>(active);
        for (int64_t i = 0; i < n; ++i) {
          if (tgt[i] < 0) continue;
          const float* s = softmax->data() + i * c;
          for (int64_t j = 0; j < c; ++j) {
            gx[i * c + j] += g * (s[j] - (j == tgt[i] ? 1.0f : 0.0f));
          }
        }
      });
}

Tensor LayerNormOp(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float epsilon) {
  DELREC_CHECK_EQ(x.ndim(), 2);
  const int64_t n = x.dim(0);
  const int64_t d = x.dim(1);
  DELREC_CHECK_EQ(gamma.size(), d);
  DELREC_CHECK_EQ(beta.size(), d);
  SharedBuffer normalized = Pool().AcquireShared(n * d);
  SharedBuffer inv_std = Pool().AcquireShared(n);
  const auto& xv = x.data();
  const auto& gv = gamma.data();
  const auto& bv = beta.data();
  std::vector<float> out = Pool().Acquire(n * d);
  for (int64_t i = 0; i < n; ++i) {
    const float* row = xv.data() + i * d;
    float mean = 0.0f;
    for (int64_t j = 0; j < d; ++j) mean += row[j];
    mean /= static_cast<float>(d);
    float var = 0.0f;
    for (int64_t j = 0; j < d; ++j) {
      const float c = row[j] - mean;
      var += c * c;
    }
    var /= static_cast<float>(d);
    const float istd = 1.0f / std::sqrt(var + epsilon);
    (*inv_std)[i] = istd;
    for (int64_t j = 0; j < d; ++j) {
      const float nrm = (row[j] - mean) * istd;
      (*normalized)[i * d + j] = nrm;
      out[i * d + j] = nrm * gv[j] + bv[j];
    }
  }
  Tensor x_copy = x;
  Tensor g_copy = gamma;
  Tensor b_copy = beta;
  return MakeNode(
      x.shape(), std::move(out), {x, gamma, beta},
      [x_copy, g_copy, b_copy, normalized, inv_std, n,
       d](TensorImpl& self) mutable {
        const auto& gv = g_copy.data();
        if (g_copy.requires_grad()) {
          auto& gg = g_copy.grad();
          for (int64_t i = 0; i < n; ++i) {
            for (int64_t j = 0; j < d; ++j) {
              gg[j] += self.grad[i * d + j] * (*normalized)[i * d + j];
            }
          }
        }
        if (b_copy.requires_grad()) {
          auto& gb = b_copy.grad();
          for (int64_t i = 0; i < n; ++i) {
            for (int64_t j = 0; j < d; ++j) gb[j] += self.grad[i * d + j];
          }
        }
        if (x_copy.requires_grad()) {
          auto& gx = x_copy.grad();
          for (int64_t i = 0; i < n; ++i) {
            const float* g = self.grad.data() + i * d;
            const float* nrm = normalized->data() + i * d;
            // dL/dnorm_j = g_j * gamma_j; standard layernorm backward.
            float sum_dn = 0.0f;
            float sum_dn_nrm = 0.0f;
            for (int64_t j = 0; j < d; ++j) {
              const float dn = g[j] * gv[j];
              sum_dn += dn;
              sum_dn_nrm += dn * nrm[j];
            }
            const float inv_d = 1.0f / static_cast<float>(d);
            for (int64_t j = 0; j < d; ++j) {
              const float dn = g[j] * gv[j];
              gx[i * d + j] += (*inv_std)[i] * (dn - inv_d * sum_dn -
                                                inv_d * nrm[j] * sum_dn_nrm);
            }
          }
        }
      });
}

Tensor HorizontalConv(const Tensor& embeddings, const Tensor& filters,
                      const Tensor& bias, int64_t height) {
  DELREC_CHECK_EQ(embeddings.ndim(), 2);
  DELREC_CHECK_EQ(filters.ndim(), 2);
  const int64_t t = embeddings.dim(0);
  const int64_t d = embeddings.dim(1);
  const int64_t f = filters.dim(0);
  DELREC_CHECK_EQ(filters.dim(1), height * d);
  DELREC_CHECK_EQ(bias.size(), f);
  DELREC_CHECK_GE(t, height);
  const int64_t windows = t - height + 1;
  std::vector<float> out = Pool().Acquire(windows * f);
  const auto& ev = embeddings.data();
  const auto& fv = filters.data();
  const auto& bv = bias.data();
  for (int64_t w = 0; w < windows; ++w) {
    const float* window = ev.data() + w * d;  // h*d contiguous values.
    for (int64_t q = 0; q < f; ++q) {
      const float* filter = fv.data() + q * height * d;
      float dot = bv[q];
      for (int64_t p = 0; p < height * d; ++p) dot += window[p] * filter[p];
      out[w * f + q] = dot;
    }
  }
  Tensor e_copy = embeddings;
  Tensor f_copy = filters;
  Tensor b_copy = bias;
  return MakeNode(
      {windows, f}, std::move(out), {embeddings, filters, bias},
      [e_copy, f_copy, b_copy, height, windows, f, d](
          TensorImpl& self) mutable {
        const auto& ev = e_copy.data();
        const auto& fv = f_copy.data();
        for (int64_t w = 0; w < windows; ++w) {
          for (int64_t q = 0; q < f; ++q) {
            const float g = self.grad[w * f + q];
            if (g == 0.0f) continue;
            if (b_copy.requires_grad()) b_copy.grad()[q] += g;
            const float* filter = fv.data() + q * height * d;
            const float* window = ev.data() + w * d;
            if (e_copy.requires_grad()) {
              auto& ge = e_copy.grad();
              for (int64_t p = 0; p < height * d; ++p) {
                ge[w * d + p] += g * filter[p];
              }
            }
            if (f_copy.requires_grad()) {
              auto& gf = f_copy.grad();
              for (int64_t p = 0; p < height * d; ++p) {
                gf[q * height * d + p] += g * window[p];
              }
            }
          }
        }
      });
}

}  // namespace delrec::nn
