#ifndef DELREC_NN_OPS_H_
#define DELREC_NN_OPS_H_

#include <cstdint>
#include <vector>

#include "nn/tensor.h"
#include "util/rng.h"

namespace delrec::nn {

// Differentiable tensor operations. All ops build tape nodes only when some
// input requires gradients; otherwise they return plain leaves (fast
// inference path). Shapes are validated with DELREC_CHECK.
//
// The GEMM kernels behind MatMul (forward and backward) are row-partitioned
// across util::ParallelConfig{num_threads} (util/threadpool.h; default 1 =
// serial reference, env override DELREC_NUM_THREADS via the benches).
// Outputs are bit-identical for every thread count — see DESIGN.md §9 for
// the determinism contract.

// -- Elementwise --------------------------------------------------------------

/// c = a + b (same shape).
Tensor Add(const Tensor& a, const Tensor& b);
/// c = a - b (same shape).
Tensor Sub(const Tensor& a, const Tensor& b);
/// c = a ⊙ b (same shape).
Tensor Mul(const Tensor& a, const Tensor& b);
/// c = a + s.
Tensor AddScalar(const Tensor& a, float s);
/// c = s · a.
Tensor MulScalar(const Tensor& a, float s);
/// Sum of any number of same-shape tensors.
Tensor AddN(const std::vector<Tensor>& tensors);

/// Elementwise cosine (KDA's Fourier temporal module).
Tensor Cos(const Tensor& x);
/// y = x · s[0] where s is a single-element tensor (differentiable in both).
Tensor MulScalarTensor(const Tensor& x, const Tensor& s);

Tensor Relu(const Tensor& x);
/// tanh-approximation GELU.
Tensor Gelu(const Tensor& x);
Tensor Sigmoid(const Tensor& x);
Tensor Tanh(const Tensor& x);

/// Inverted dropout; identity when !training or p == 0.
Tensor Dropout(const Tensor& x, float p, util::Rng& rng, bool training);

// -- Linear algebra -----------------------------------------------------------

/// Matrix product with optional transposes: (M,K)·(K,N) → (M,N).
/// trans_a interprets a as stored transposed (K,M); likewise trans_b.
/// trans_a && trans_b is unsupported (never needed here).
Tensor MatMul(const Tensor& a, const Tensor& b, bool trans_a = false,
              bool trans_b = false);

/// Adds a length-D bias row to every row of x (N,D).
Tensor AddBias(const Tensor& x, const Tensor& bias);

/// Gathers rows of `table` (V,D) at `indices` → (n,D). Backward scatter-adds.
Tensor Rows(const Tensor& table, const std::vector<int64_t>& indices);

/// Scales column j of x (N,D) by scales[j] (length-D vector). Used for the
/// diagonal Λ factor in the AdaLoRA parametrization.
Tensor ScaleCols(const Tensor& x, const Tensor& scales);

// -- Shape --------------------------------------------------------------------

/// Contiguous row slice [start, start+count) of x (N,D) → (count,D).
Tensor SliceRows(const Tensor& x, int64_t start, int64_t count);
/// Contiguous column slice of x (N,D) → (N,count).
Tensor SliceCols(const Tensor& x, int64_t start, int64_t count);
/// Vertical concatenation of (n_i, D) blocks.
Tensor ConcatRows(const std::vector<Tensor>& parts);
/// Horizontal concatenation of (N, d_i) blocks.
Tensor ConcatCols(const std::vector<Tensor>& parts);
/// Reinterprets x with a new shape of equal element count (copying node).
Tensor Reshape(const Tensor& x, std::vector<int64_t> shape);
/// (M,N) → (N,M).
Tensor Transpose(const Tensor& x);

// -- Reductions & losses --------------------------------------------------------

/// Mean over all elements → scalar.
Tensor Mean(const Tensor& x);
/// Sum over all elements → scalar.
Tensor Sum(const Tensor& x);
/// Mean over rows: (N,D) → (1,D).
Tensor MeanRows(const Tensor& x);
/// Column-wise max over rows: (N,D) → (1,D); backward routes to the argmax.
Tensor MaxPoolRows(const Tensor& x);

/// Row-wise softmax over the last dimension of a 2-D tensor.
Tensor Softmax(const Tensor& x);
/// Row-wise log-softmax (numerically stable).
Tensor LogSoftmax(const Tensor& x);

/// Mean negative log-likelihood of `targets` under row-wise softmax of
/// `logits` (N,C). Fused, numerically stable. targets.size() == N; a target
/// of -1 masks that row out of the loss.
Tensor CrossEntropyWithLogits(const Tensor& logits,
                              const std::vector<int64_t>& targets);

// -- Normalization ----------------------------------------------------------------

/// Row-wise layer normalization with affine parameters gamma/beta (D).
Tensor LayerNormOp(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float epsilon = 1e-5f);

// -- Sequence convolutions (Caser) ----------------------------------------------

/// Horizontal convolution for Caser: slides a height-h window over the
/// (T,D) embedding matrix with F filters of shape (h·D) → (T-h+1, F).
Tensor HorizontalConv(const Tensor& embeddings, const Tensor& filters,
                      const Tensor& bias, int64_t height);

}  // namespace delrec::nn

#endif  // DELREC_NN_OPS_H_
