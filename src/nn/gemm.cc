#include "nn/gemm.h"

#include <algorithm>
#include <functional>

#include "util/buffer_pool.h"
#include "util/threadpool.h"

// This translation unit is compiled with -ffp-contract=off (set in
// src/nn/CMakeLists.txt): the blocked kernels stay bit-identical to the
// scalar reference kernels only because every multiply and add rounds
// separately — a contracted FMA would round once and break the oracle,
// including under -DDELREC_NATIVE=ON. The AVX2/AVX-512 paths use explicit
// mul/add intrinsics, which map to fixed instructions and are never
// contracted either.

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DELREC_GEMM_X86 1
#include <immintrin.h>
#else
#define DELREC_GEMM_X86 0
#endif

namespace delrec::nn {
namespace {

constexpr int MR = kGemmRowTile;
constexpr int NR = kGemmColTile;
constexpr int kNtScalarColTile = 4;  // Unpacked NT keeps 4×4 dot chains.
static_assert(NR == 16, "microkernels assume one 16-lane (or two 8-lane) "
                        "vector of C columns per row");

// Row-partitioned dispatch over C across util::ParallelConfig threads.
// Determinism contract (DESIGN.md §9): every C row is written by exactly one
// chunk of a static partition, and each element's accumulation order over k
// is fixed (ascending p) regardless of the chunking — so all kernels are
// bit-identical to their serial (num_threads = 1) reference for any thread
// count, and need no synchronisation or float atomics. GEMMs whose m·n·k
// falls below ParallelMinWork() skip dispatch and run serially, which by the
// same argument cannot change results.
void GemmRows(int64_t m, int64_t n, int64_t k,
              const std::function<void(int64_t, int64_t)>& rows) {
  if (util::ParallelThreads() > 1 && m * n * k >= util::ParallelMinWork()) {
    util::ParallelFor(
        m, [&rows](int64_t begin, int64_t end, int) { rows(begin, end); });
  } else {
    rows(0, m);
  }
}

// -- Microkernel tiles --------------------------------------------------------
// All full tiles share one signature so the ISA is picked once per GEMM call
// (function-pointer dispatch via __builtin_cpu_supports); the drivers and
// edge tiles are ISA-agnostic scalar code. Per output element every variant
// accumulates ascending p into a single chain from the same start value, so
// lane width never changes results — vector lanes are distinct C columns.
//
// NN/TN tiles come in two zero-handling flavours with reference semantics:
// `skip` replicates the reference's per-(row, p) `a == 0.0f` skip (it is
// semantically observable — it avoids 0·inf → NaN and signed-zero flips);
// `dense` drops the branch and is only chosen after a prescan proves the A
// tile zero-free, where skipping and not-skipping are the same program.
// NT tiles start each accumulator at 0 and combine with C at the end — the
// reference's dot-then-combine association, distinct from NN/TN which seed
// the accumulator from C.

using TileFn = void (*)(const float* a, int64_t a_i_stride,
                        int64_t a_p_stride, const float* bpanel,
                        int64_t b_p_stride, float* c, int64_t n, int64_t k,
                        int64_t i0, int64_t j0, bool accumulate);
using NtTileFn = void (*)(const float* a, const float* bpanel, float* c,
                          int64_t n, int64_t k, int64_t i0, int64_t j0,
                          bool accumulate);
using ZeroScanFn = bool (*)(const float* a, int64_t a_i_stride,
                            int64_t a_p_stride, int64_t i0, int64_t k);

// ---- Portable scalar tiles (and the only path off x86-64) ----

void TileDenseScalar(const float* a, int64_t a_i_stride, int64_t a_p_stride,
                     const float* bpanel, int64_t b_p_stride, float* c,
                     int64_t n, int64_t k, int64_t i0, int64_t j0,
                     bool accumulate) {
  for (int r = 0; r < MR; ++r) {
    const float* ar = a + (i0 + r) * a_i_stride;
    float* cr = c + (i0 + r) * n + j0;
    float acc[NR];
    for (int jr = 0; jr < NR; ++jr) acc[jr] = accumulate ? cr[jr] : 0.0f;
    for (int64_t p = 0; p < k; ++p) {
      const float av = ar[p * a_p_stride];
      const float* bp = bpanel + p * b_p_stride;
      for (int jr = 0; jr < NR; ++jr) acc[jr] += av * bp[jr];
    }
    for (int jr = 0; jr < NR; ++jr) cr[jr] = acc[jr];
  }
}

void TileSkipScalar(const float* a, int64_t a_i_stride, int64_t a_p_stride,
                    const float* bpanel, int64_t b_p_stride, float* c,
                    int64_t n, int64_t k, int64_t i0, int64_t j0,
                    bool accumulate) {
  for (int r = 0; r < MR; ++r) {
    const float* ar = a + (i0 + r) * a_i_stride;
    float* cr = c + (i0 + r) * n + j0;
    float acc[NR];
    for (int jr = 0; jr < NR; ++jr) acc[jr] = accumulate ? cr[jr] : 0.0f;
    for (int64_t p = 0; p < k; ++p) {
      const float av = ar[p * a_p_stride];
      if (av == 0.0f) continue;
      const float* bp = bpanel + p * b_p_stride;
      for (int jr = 0; jr < NR; ++jr) acc[jr] += av * bp[jr];
    }
    for (int jr = 0; jr < NR; ++jr) cr[jr] = acc[jr];
  }
}

void NtTileScalar(const float* a, const float* bpanel, float* c, int64_t n,
                  int64_t k, int64_t i0, int64_t j0, bool accumulate) {
  for (int r = 0; r < MR; ++r) {
    const float* ar = a + (i0 + r) * k;
    float* cr = c + (i0 + r) * n + j0;
    float acc[NR];
    for (int jr = 0; jr < NR; ++jr) acc[jr] = 0.0f;
    for (int64_t p = 0; p < k; ++p) {
      const float av = ar[p];
      const float* bp = bpanel + p * NR;
      for (int jr = 0; jr < NR; ++jr) acc[jr] += av * bp[jr];
    }
    for (int jr = 0; jr < NR; ++jr) {
      cr[jr] = accumulate ? cr[jr] + acc[jr] : acc[jr];
    }
  }
}

// Dense-tile eligibility prescan: true iff any A element in the MR-row tile
// compares == 0.0f (matches ±0, never NaN — the exact predicate the skip
// tile applies per element). This runs once per 4-row tile over 4×k floats,
// so on small GEMMs it is a visible fraction of the whole product; the
// vector variants below evaluate the same predicate 8/16 lanes at a time
// (_CMP_EQ_OQ is the ordered quiet ==, identical to the scalar compare).
bool TileHasZeroScalar(const float* a, int64_t a_i_stride, int64_t a_p_stride,
                       int64_t i0, int64_t k) {
  for (int r = 0; r < MR; ++r) {
    const float* ar = a + (i0 + r) * a_i_stride;
    for (int64_t p = 0; p < k; ++p) {
      if (ar[p * a_p_stride] == 0.0f) return true;
    }
  }
  return false;
}

#if DELREC_GEMM_X86

// ---- AVX2 tiles: NR = two 8-lane registers per row, 8 accumulators ----

__attribute__((target("avx2"))) void TileDenseAvx2(
    const float* a, int64_t a_i_stride, int64_t a_p_stride,
    const float* bpanel, int64_t b_p_stride, float* c, int64_t n, int64_t k,
    int64_t i0, int64_t j0, bool accumulate) {
  const float* a0 = a + (i0 + 0) * a_i_stride;
  const float* a1 = a + (i0 + 1) * a_i_stride;
  const float* a2 = a + (i0 + 2) * a_i_stride;
  const float* a3 = a + (i0 + 3) * a_i_stride;
  float* c0 = c + (i0 + 0) * n + j0;
  float* c1 = c + (i0 + 1) * n + j0;
  float* c2 = c + (i0 + 2) * n + j0;
  float* c3 = c + (i0 + 3) * n + j0;
  __m256 x0, y0, x1, y1, x2, y2, x3, y3;
  if (accumulate) {
    x0 = _mm256_loadu_ps(c0);
    y0 = _mm256_loadu_ps(c0 + 8);
    x1 = _mm256_loadu_ps(c1);
    y1 = _mm256_loadu_ps(c1 + 8);
    x2 = _mm256_loadu_ps(c2);
    y2 = _mm256_loadu_ps(c2 + 8);
    x3 = _mm256_loadu_ps(c3);
    y3 = _mm256_loadu_ps(c3 + 8);
  } else {
    x0 = y0 = x1 = y1 = x2 = y2 = x3 = y3 = _mm256_setzero_ps();
  }
  for (int64_t p = 0; p < k; ++p) {
    const float* bp = bpanel + p * b_p_stride;
    const __m256 blo = _mm256_loadu_ps(bp);
    const __m256 bhi = _mm256_loadu_ps(bp + 8);
    const int64_t pa = p * a_p_stride;
    __m256 av;
    av = _mm256_set1_ps(a0[pa]);
    x0 = _mm256_add_ps(x0, _mm256_mul_ps(av, blo));
    y0 = _mm256_add_ps(y0, _mm256_mul_ps(av, bhi));
    av = _mm256_set1_ps(a1[pa]);
    x1 = _mm256_add_ps(x1, _mm256_mul_ps(av, blo));
    y1 = _mm256_add_ps(y1, _mm256_mul_ps(av, bhi));
    av = _mm256_set1_ps(a2[pa]);
    x2 = _mm256_add_ps(x2, _mm256_mul_ps(av, blo));
    y2 = _mm256_add_ps(y2, _mm256_mul_ps(av, bhi));
    av = _mm256_set1_ps(a3[pa]);
    x3 = _mm256_add_ps(x3, _mm256_mul_ps(av, blo));
    y3 = _mm256_add_ps(y3, _mm256_mul_ps(av, bhi));
  }
  _mm256_storeu_ps(c0, x0);
  _mm256_storeu_ps(c0 + 8, y0);
  _mm256_storeu_ps(c1, x1);
  _mm256_storeu_ps(c1 + 8, y1);
  _mm256_storeu_ps(c2, x2);
  _mm256_storeu_ps(c2 + 8, y2);
  _mm256_storeu_ps(c3, x3);
  _mm256_storeu_ps(c3 + 8, y3);
}

__attribute__((target("avx2"))) void TileSkipAvx2(
    const float* a, int64_t a_i_stride, int64_t a_p_stride,
    const float* bpanel, int64_t b_p_stride, float* c, int64_t n, int64_t k,
    int64_t i0, int64_t j0, bool accumulate) {
  const float* a0 = a + (i0 + 0) * a_i_stride;
  const float* a1 = a + (i0 + 1) * a_i_stride;
  const float* a2 = a + (i0 + 2) * a_i_stride;
  const float* a3 = a + (i0 + 3) * a_i_stride;
  float* c0 = c + (i0 + 0) * n + j0;
  float* c1 = c + (i0 + 1) * n + j0;
  float* c2 = c + (i0 + 2) * n + j0;
  float* c3 = c + (i0 + 3) * n + j0;
  __m256 x0, y0, x1, y1, x2, y2, x3, y3;
  if (accumulate) {
    x0 = _mm256_loadu_ps(c0);
    y0 = _mm256_loadu_ps(c0 + 8);
    x1 = _mm256_loadu_ps(c1);
    y1 = _mm256_loadu_ps(c1 + 8);
    x2 = _mm256_loadu_ps(c2);
    y2 = _mm256_loadu_ps(c2 + 8);
    x3 = _mm256_loadu_ps(c3);
    y3 = _mm256_loadu_ps(c3 + 8);
  } else {
    x0 = y0 = x1 = y1 = x2 = y2 = x3 = y3 = _mm256_setzero_ps();
  }
  for (int64_t p = 0; p < k; ++p) {
    const float* bp = bpanel + p * b_p_stride;
    const __m256 blo = _mm256_loadu_ps(bp);
    const __m256 bhi = _mm256_loadu_ps(bp + 8);
    const int64_t pa = p * a_p_stride;
    const float s0 = a0[pa];
    if (s0 != 0.0f) {
      const __m256 av = _mm256_set1_ps(s0);
      x0 = _mm256_add_ps(x0, _mm256_mul_ps(av, blo));
      y0 = _mm256_add_ps(y0, _mm256_mul_ps(av, bhi));
    }
    const float s1 = a1[pa];
    if (s1 != 0.0f) {
      const __m256 av = _mm256_set1_ps(s1);
      x1 = _mm256_add_ps(x1, _mm256_mul_ps(av, blo));
      y1 = _mm256_add_ps(y1, _mm256_mul_ps(av, bhi));
    }
    const float s2 = a2[pa];
    if (s2 != 0.0f) {
      const __m256 av = _mm256_set1_ps(s2);
      x2 = _mm256_add_ps(x2, _mm256_mul_ps(av, blo));
      y2 = _mm256_add_ps(y2, _mm256_mul_ps(av, bhi));
    }
    const float s3 = a3[pa];
    if (s3 != 0.0f) {
      const __m256 av = _mm256_set1_ps(s3);
      x3 = _mm256_add_ps(x3, _mm256_mul_ps(av, blo));
      y3 = _mm256_add_ps(y3, _mm256_mul_ps(av, bhi));
    }
  }
  _mm256_storeu_ps(c0, x0);
  _mm256_storeu_ps(c0 + 8, y0);
  _mm256_storeu_ps(c1, x1);
  _mm256_storeu_ps(c1 + 8, y1);
  _mm256_storeu_ps(c2, x2);
  _mm256_storeu_ps(c2 + 8, y2);
  _mm256_storeu_ps(c3, x3);
  _mm256_storeu_ps(c3 + 8, y3);
}

__attribute__((target("avx2"))) void NtTileAvx2(const float* a,
                                                const float* bpanel, float* c,
                                                int64_t n, int64_t k,
                                                int64_t i0, int64_t j0,
                                                bool accumulate) {
  const float* a0 = a + (i0 + 0) * k;
  const float* a1 = a + (i0 + 1) * k;
  const float* a2 = a + (i0 + 2) * k;
  const float* a3 = a + (i0 + 3) * k;
  __m256 x0, y0, x1, y1, x2, y2, x3, y3;
  x0 = y0 = x1 = y1 = x2 = y2 = x3 = y3 = _mm256_setzero_ps();
  for (int64_t p = 0; p < k; ++p) {
    const float* bp = bpanel + p * NR;
    const __m256 blo = _mm256_loadu_ps(bp);
    const __m256 bhi = _mm256_loadu_ps(bp + 8);
    __m256 av;
    av = _mm256_set1_ps(a0[p]);
    x0 = _mm256_add_ps(x0, _mm256_mul_ps(av, blo));
    y0 = _mm256_add_ps(y0, _mm256_mul_ps(av, bhi));
    av = _mm256_set1_ps(a1[p]);
    x1 = _mm256_add_ps(x1, _mm256_mul_ps(av, blo));
    y1 = _mm256_add_ps(y1, _mm256_mul_ps(av, bhi));
    av = _mm256_set1_ps(a2[p]);
    x2 = _mm256_add_ps(x2, _mm256_mul_ps(av, blo));
    y2 = _mm256_add_ps(y2, _mm256_mul_ps(av, bhi));
    av = _mm256_set1_ps(a3[p]);
    x3 = _mm256_add_ps(x3, _mm256_mul_ps(av, blo));
    y3 = _mm256_add_ps(y3, _mm256_mul_ps(av, bhi));
  }
  float* c0 = c + (i0 + 0) * n + j0;
  float* c1 = c + (i0 + 1) * n + j0;
  float* c2 = c + (i0 + 2) * n + j0;
  float* c3 = c + (i0 + 3) * n + j0;
  if (accumulate) {
    // C first, dot second — the reference's `c += dot` operand order.
    x0 = _mm256_add_ps(_mm256_loadu_ps(c0), x0);
    y0 = _mm256_add_ps(_mm256_loadu_ps(c0 + 8), y0);
    x1 = _mm256_add_ps(_mm256_loadu_ps(c1), x1);
    y1 = _mm256_add_ps(_mm256_loadu_ps(c1 + 8), y1);
    x2 = _mm256_add_ps(_mm256_loadu_ps(c2), x2);
    y2 = _mm256_add_ps(_mm256_loadu_ps(c2 + 8), y2);
    x3 = _mm256_add_ps(_mm256_loadu_ps(c3), x3);
    y3 = _mm256_add_ps(_mm256_loadu_ps(c3 + 8), y3);
  }
  _mm256_storeu_ps(c0, x0);
  _mm256_storeu_ps(c0 + 8, y0);
  _mm256_storeu_ps(c1, x1);
  _mm256_storeu_ps(c1 + 8, y1);
  _mm256_storeu_ps(c2, x2);
  _mm256_storeu_ps(c2 + 8, y2);
  _mm256_storeu_ps(c3, x3);
  _mm256_storeu_ps(c3 + 8, y3);
}

// ---- AVX-512 tiles: NR = one 16-lane register per row, 4 accumulators ----

__attribute__((target("avx512f"))) void TileDenseAvx512(
    const float* a, int64_t a_i_stride, int64_t a_p_stride,
    const float* bpanel, int64_t b_p_stride, float* c, int64_t n, int64_t k,
    int64_t i0, int64_t j0, bool accumulate) {
  const float* a0 = a + (i0 + 0) * a_i_stride;
  const float* a1 = a + (i0 + 1) * a_i_stride;
  const float* a2 = a + (i0 + 2) * a_i_stride;
  const float* a3 = a + (i0 + 3) * a_i_stride;
  float* c0 = c + (i0 + 0) * n + j0;
  float* c1 = c + (i0 + 1) * n + j0;
  float* c2 = c + (i0 + 2) * n + j0;
  float* c3 = c + (i0 + 3) * n + j0;
  __m512 r0, r1, r2, r3;
  if (accumulate) {
    r0 = _mm512_loadu_ps(c0);
    r1 = _mm512_loadu_ps(c1);
    r2 = _mm512_loadu_ps(c2);
    r3 = _mm512_loadu_ps(c3);
  } else {
    r0 = r1 = r2 = r3 = _mm512_setzero_ps();
  }
  for (int64_t p = 0; p < k; ++p) {
    const __m512 b = _mm512_loadu_ps(bpanel + p * b_p_stride);
    const int64_t pa = p * a_p_stride;
    r0 = _mm512_add_ps(r0, _mm512_mul_ps(_mm512_set1_ps(a0[pa]), b));
    r1 = _mm512_add_ps(r1, _mm512_mul_ps(_mm512_set1_ps(a1[pa]), b));
    r2 = _mm512_add_ps(r2, _mm512_mul_ps(_mm512_set1_ps(a2[pa]), b));
    r3 = _mm512_add_ps(r3, _mm512_mul_ps(_mm512_set1_ps(a3[pa]), b));
  }
  _mm512_storeu_ps(c0, r0);
  _mm512_storeu_ps(c1, r1);
  _mm512_storeu_ps(c2, r2);
  _mm512_storeu_ps(c3, r3);
}

__attribute__((target("avx512f"))) void TileSkipAvx512(
    const float* a, int64_t a_i_stride, int64_t a_p_stride,
    const float* bpanel, int64_t b_p_stride, float* c, int64_t n, int64_t k,
    int64_t i0, int64_t j0, bool accumulate) {
  const float* a0 = a + (i0 + 0) * a_i_stride;
  const float* a1 = a + (i0 + 1) * a_i_stride;
  const float* a2 = a + (i0 + 2) * a_i_stride;
  const float* a3 = a + (i0 + 3) * a_i_stride;
  float* c0 = c + (i0 + 0) * n + j0;
  float* c1 = c + (i0 + 1) * n + j0;
  float* c2 = c + (i0 + 2) * n + j0;
  float* c3 = c + (i0 + 3) * n + j0;
  __m512 r0, r1, r2, r3;
  if (accumulate) {
    r0 = _mm512_loadu_ps(c0);
    r1 = _mm512_loadu_ps(c1);
    r2 = _mm512_loadu_ps(c2);
    r3 = _mm512_loadu_ps(c3);
  } else {
    r0 = r1 = r2 = r3 = _mm512_setzero_ps();
  }
  for (int64_t p = 0; p < k; ++p) {
    const __m512 b = _mm512_loadu_ps(bpanel + p * b_p_stride);
    const int64_t pa = p * a_p_stride;
    const float s0 = a0[pa];
    if (s0 != 0.0f) r0 = _mm512_add_ps(r0, _mm512_mul_ps(_mm512_set1_ps(s0), b));
    const float s1 = a1[pa];
    if (s1 != 0.0f) r1 = _mm512_add_ps(r1, _mm512_mul_ps(_mm512_set1_ps(s1), b));
    const float s2 = a2[pa];
    if (s2 != 0.0f) r2 = _mm512_add_ps(r2, _mm512_mul_ps(_mm512_set1_ps(s2), b));
    const float s3 = a3[pa];
    if (s3 != 0.0f) r3 = _mm512_add_ps(r3, _mm512_mul_ps(_mm512_set1_ps(s3), b));
  }
  _mm512_storeu_ps(c0, r0);
  _mm512_storeu_ps(c1, r1);
  _mm512_storeu_ps(c2, r2);
  _mm512_storeu_ps(c3, r3);
}

__attribute__((target("avx512f"))) void NtTileAvx512(
    const float* a, const float* bpanel, float* c, int64_t n, int64_t k,
    int64_t i0, int64_t j0, bool accumulate) {
  const float* a0 = a + (i0 + 0) * k;
  const float* a1 = a + (i0 + 1) * k;
  const float* a2 = a + (i0 + 2) * k;
  const float* a3 = a + (i0 + 3) * k;
  __m512 r0, r1, r2, r3;
  r0 = r1 = r2 = r3 = _mm512_setzero_ps();
  for (int64_t p = 0; p < k; ++p) {
    const __m512 b = _mm512_loadu_ps(bpanel + p * NR);
    r0 = _mm512_add_ps(r0, _mm512_mul_ps(_mm512_set1_ps(a0[p]), b));
    r1 = _mm512_add_ps(r1, _mm512_mul_ps(_mm512_set1_ps(a1[p]), b));
    r2 = _mm512_add_ps(r2, _mm512_mul_ps(_mm512_set1_ps(a2[p]), b));
    r3 = _mm512_add_ps(r3, _mm512_mul_ps(_mm512_set1_ps(a3[p]), b));
  }
  float* c0 = c + (i0 + 0) * n + j0;
  float* c1 = c + (i0 + 1) * n + j0;
  float* c2 = c + (i0 + 2) * n + j0;
  float* c3 = c + (i0 + 3) * n + j0;
  if (accumulate) {
    // C first, dot second — the reference's `c += dot` operand order.
    r0 = _mm512_add_ps(_mm512_loadu_ps(c0), r0);
    r1 = _mm512_add_ps(_mm512_loadu_ps(c1), r1);
    r2 = _mm512_add_ps(_mm512_loadu_ps(c2), r2);
    r3 = _mm512_add_ps(_mm512_loadu_ps(c3), r3);
  }
  _mm512_storeu_ps(c0, r0);
  _mm512_storeu_ps(c1, r1);
  _mm512_storeu_ps(c2, r2);
  _mm512_storeu_ps(c3, r3);
}

// Vector zero scans: only the contiguous-row layout (NN path, a_p_stride ==
// 1) vectorizes; the strided TN layout falls back to the scalar scan. A
// prescan is a pure predicate — speeding it up cannot change any result.

__attribute__((target("avx2"))) bool TileHasZeroAvx2(
    const float* a, int64_t a_i_stride, int64_t a_p_stride, int64_t i0,
    int64_t k) {
  if (a_p_stride != 1) {
    return TileHasZeroScalar(a, a_i_stride, a_p_stride, i0, k);
  }
  const __m256 zero = _mm256_setzero_ps();
  for (int r = 0; r < MR; ++r) {
    const float* ar = a + (i0 + r) * a_i_stride;
    int64_t p = 0;
    for (; p + 8 <= k; p += 8) {
      const __m256 eq =
          _mm256_cmp_ps(_mm256_loadu_ps(ar + p), zero, _CMP_EQ_OQ);
      if (_mm256_movemask_ps(eq) != 0) return true;
    }
    for (; p < k; ++p) {
      if (ar[p] == 0.0f) return true;
    }
  }
  return false;
}

__attribute__((target("avx512f"))) bool TileHasZeroAvx512(
    const float* a, int64_t a_i_stride, int64_t a_p_stride, int64_t i0,
    int64_t k) {
  if (a_p_stride != 1) {
    return TileHasZeroScalar(a, a_i_stride, a_p_stride, i0, k);
  }
  const __m512 zero = _mm512_setzero_ps();
  for (int r = 0; r < MR; ++r) {
    const float* ar = a + (i0 + r) * a_i_stride;
    int64_t p = 0;
    for (; p + 16 <= k; p += 16) {
      if (_mm512_cmp_ps_mask(_mm512_loadu_ps(ar + p), zero, _CMP_EQ_OQ)) {
        return true;
      }
    }
    if (p < k) {
      // Masked tail load: lanes past k are never touched (no OOB read) and
      // zeroed lanes are excluded from the compare by the same mask.
      const __mmask16 tail = static_cast<__mmask16>((1u << (k - p)) - 1);
      if (_mm512_mask_cmp_ps_mask(tail, _mm512_maskz_loadu_ps(tail, ar + p),
                                  zero, _CMP_EQ_OQ)) {
        return true;
      }
    }
  }
  return false;
}

#endif  // DELREC_GEMM_X86

struct TileSet {
  TileFn dense;
  TileFn skip;
  NtTileFn nt;
  ZeroScanFn has_zero;
  const char* isa;
};

const TileSet& PickTiles() {
  static const TileSet tiles = [] {
#if DELREC_GEMM_X86
    if (__builtin_cpu_supports("avx512f")) {
      return TileSet{TileDenseAvx512, TileSkipAvx512, NtTileAvx512,
                     TileHasZeroAvx512, "avx512"};
    }
    if (__builtin_cpu_supports("avx2")) {
      return TileSet{TileDenseAvx2, TileSkipAvx2, NtTileAvx2, TileHasZeroAvx2,
                     "avx2"};
    }
    return TileSet{TileDenseScalar, TileSkipScalar, NtTileScalar,
                   TileHasZeroScalar, "sse2"};
#else
    return TileSet{TileDenseScalar, TileSkipScalar, NtTileScalar,
                   TileHasZeroScalar, "portable"};
#endif
  }();
  return tiles;
}

// -- Blocked NN / TN ----------------------------------------------------------
// Both contract C(i,j) = Σ_p A(i,p)·B(p,j) with B stored row-major (K,N);
// they differ only in how A is addressed: A(i,p) = a[i·a_i_stride +
// p·a_p_stride] (NN: strides (k,1); TN with A stored (K,M): strides (1,m)).

// Remainder tile (mr < MR and/or nr < NR): same accumulation structure with
// runtime bounds; always uses the skip form (identical on zero-free data).
void MicroTileEdge(const float* a, int64_t a_i_stride, int64_t a_p_stride,
                   const float* bpanel, int64_t b_p_stride, float* c,
                   int64_t n, int64_t k, int64_t i0, int mr, int64_t j0,
                   int nr, bool accumulate) {
  for (int r = 0; r < mr; ++r) {
    const float* ar = a + (i0 + r) * a_i_stride;
    float* cr = c + (i0 + r) * n + j0;
    float acc[NR];
    for (int jr = 0; jr < nr; ++jr) acc[jr] = accumulate ? cr[jr] : 0.0f;
    for (int64_t p = 0; p < k; ++p) {
      const float av = ar[p * a_p_stride];
      if (av == 0.0f) continue;
      const float* bp = bpanel + p * b_p_stride;
      for (int jr = 0; jr < nr; ++jr) acc[jr] += av * bp[jr];
    }
    for (int jr = 0; jr < nr; ++jr) cr[jr] = acc[jr];
  }
}

struct AxBContext {
  const float* a;
  int64_t a_i_stride;
  int64_t a_p_stride;
  const float* b;       // Unpacked row-major (K,N) view.
  const float* packed;  // NR-wide panels, or nullptr when unpacked.
  float* c;
  int64_t n;
  int64_t k;
  int64_t num_panels;
  bool accumulate;
  TileFn dense;
  TileFn skip;
  ZeroScanFn has_zero;
};

void AxBRows(const AxBContext& ctx, int64_t row_begin, int64_t row_end) {
  for (int64_t i = row_begin; i < row_end; i += MR) {
    const int mr = static_cast<int>(std::min<int64_t>(MR, row_end - i));
    const bool dense =
        mr == MR && ctx.n >= NR &&
        !ctx.has_zero(ctx.a, ctx.a_i_stride, ctx.a_p_stride, i, ctx.k);
    for (int64_t jb = 0; jb < ctx.num_panels; ++jb) {
      const int64_t j0 = jb * NR;
      const int nr = static_cast<int>(std::min<int64_t>(NR, ctx.n - j0));
      const float* bpanel =
          ctx.packed != nullptr ? ctx.packed + jb * ctx.k * NR : ctx.b + j0;
      const int64_t b_p_stride = ctx.packed != nullptr ? NR : ctx.n;
      if (mr == MR && nr == NR) {
        (dense ? ctx.dense : ctx.skip)(ctx.a, ctx.a_i_stride, ctx.a_p_stride,
                                       bpanel, b_p_stride, ctx.c, ctx.n,
                                       ctx.k, i, j0, ctx.accumulate);
      } else {
        MicroTileEdge(ctx.a, ctx.a_i_stride, ctx.a_p_stride, bpanel,
                      b_p_stride, ctx.c, ctx.n, ctx.k, i, mr, j0, nr,
                      ctx.accumulate);
      }
    }
  }
}

void BlockedAxB(const float* a, int64_t a_i_stride, int64_t a_p_stride,
                const float* b, float* c, int64_t m, int64_t n, int64_t k,
                bool accumulate) {
  if (m == 0 || n == 0) return;
  const int64_t num_panels = (n + NR - 1) / NR;
  const TileSet& tiles = PickTiles();
  // Pack B into contiguous NR-wide panels once per call when enough row
  // tiles will reuse it (the pack is one extra pass over B; with few rows
  // the in-place panel view is cheaper). Edge-panel tail lanes are left
  // unwritten — only MicroTileEdge touches edge panels and it reads nr
  // valid lanes. The pack buffer is pooled scratch shared read-only by all
  // row chunks; ParallelFor joins before the arena releases it.
  util::ScopedArena arena;
  AxBContext ctx{a,           a_i_stride, a_p_stride, b, nullptr,       c,
                 n,           k,          num_panels, accumulate,
                 tiles.dense, tiles.skip, tiles.has_zero};
  if (m >= kGemmPackMinRows && n > NR) {
    float* pack = arena.Alloc(static_cast<size_t>(num_panels) * k * NR);
    for (int64_t jb = 0; jb < num_panels; ++jb) {
      const int nr = static_cast<int>(std::min<int64_t>(NR, n - jb * NR));
      float* panel = pack + jb * k * NR;
      const float* bsrc = b + jb * NR;
      for (int64_t p = 0; p < k; ++p) {
        for (int jr = 0; jr < nr; ++jr) {
          panel[p * NR + jr] = bsrc[p * n + jr];
        }
      }
    }
    ctx.packed = pack;
  }
  GemmRows(m, n, k, [&ctx](int64_t row_begin, int64_t row_end) {
    AxBRows(ctx, row_begin, row_end);
  });
}

// -- Blocked NT ---------------------------------------------------------------
// C(i,j) = Σ_p A(i,p)·B(j,p), both operands stored contiguous along k. With
// enough rows B is transpose-packed into NR-wide panels (panel[p·NR + jr] =
// B(j0+jr, p)), which turns the inner update into the same lane-parallel
// shape as NN — lanes are distinct output columns, each lane still a single
// ascending-p chain with the reference's dot-then-combine association.
// Small-m calls skip the pack and use MR×4 independent scalar dot chains.

void NtPanelEdge(const float* a, const float* bpanel, float* c, int64_t n,
                 int64_t k, int64_t i0, int mr, int64_t j0, int nr,
                 bool accumulate) {
  for (int r = 0; r < mr; ++r) {
    const float* ar = a + (i0 + r) * k;
    float* cr = c + (i0 + r) * n + j0;
    float acc[NR];
    for (int jr = 0; jr < nr; ++jr) acc[jr] = 0.0f;
    for (int64_t p = 0; p < k; ++p) {
      const float av = ar[p];
      const float* bp = bpanel + p * NR;
      for (int jr = 0; jr < nr; ++jr) acc[jr] += av * bp[jr];
    }
    for (int jr = 0; jr < nr; ++jr) {
      cr[jr] = accumulate ? cr[jr] + acc[jr] : acc[jr];
    }
  }
}

struct NtContext {
  const float* a;
  const float* b;       // (N,K) rows, used by the unpacked path.
  const float* packed;  // Transpose-packed NR-wide panels, or nullptr.
  float* c;
  int64_t n;
  int64_t k;
  int64_t num_panels;
  bool accumulate;
  NtTileFn tile;
};

void NtPackedRows(const NtContext& ctx, int64_t row_begin, int64_t row_end) {
  for (int64_t i = row_begin; i < row_end; i += MR) {
    const int mr = static_cast<int>(std::min<int64_t>(MR, row_end - i));
    for (int64_t jb = 0; jb < ctx.num_panels; ++jb) {
      const int64_t j0 = jb * NR;
      const int nr = static_cast<int>(std::min<int64_t>(NR, ctx.n - j0));
      const float* bpanel = ctx.packed + jb * ctx.k * NR;
      if (mr == MR && nr == NR) {
        ctx.tile(ctx.a, bpanel, ctx.c, ctx.n, ctx.k, i, j0, ctx.accumulate);
      } else {
        NtPanelEdge(ctx.a, bpanel, ctx.c, ctx.n, ctx.k, i, mr, j0, nr,
                    ctx.accumulate);
      }
    }
  }
}

// Unpacked small-m NT: MR×4 independent scalar dot chains.
void NtDotTile(const float* a, const float* b, float* c, int64_t n, int64_t k,
               int64_t i0, int64_t j0, bool accumulate) {
  const float* arow[MR];
  const float* brow[kNtScalarColTile];
  for (int r = 0; r < MR; ++r) arow[r] = a + (i0 + r) * k;
  for (int jj = 0; jj < kNtScalarColTile; ++jj) brow[jj] = b + (j0 + jj) * k;
  float acc[MR][kNtScalarColTile] = {};
  for (int64_t p = 0; p < k; ++p) {
    float av[MR], bv[kNtScalarColTile];
    for (int r = 0; r < MR; ++r) av[r] = arow[r][p];
    for (int jj = 0; jj < kNtScalarColTile; ++jj) bv[jj] = brow[jj][p];
    for (int r = 0; r < MR; ++r) {
      for (int jj = 0; jj < kNtScalarColTile; ++jj) {
        acc[r][jj] += av[r] * bv[jj];
      }
    }
  }
  for (int r = 0; r < MR; ++r) {
    float* cr = c + (i0 + r) * n + j0;
    for (int jj = 0; jj < kNtScalarColTile; ++jj) {
      cr[jj] = accumulate ? cr[jj] + acc[r][jj] : acc[r][jj];
    }
  }
}

void NtDotEdge(const float* a, const float* b, float* c, int64_t n, int64_t k,
               int64_t i0, int mr, int64_t j0, int nr, bool accumulate) {
  for (int r = 0; r < mr; ++r) {
    const float* ar = a + (i0 + r) * k;
    float* cr = c + (i0 + r) * n + j0;
    for (int jj = 0; jj < nr; ++jj) {
      const float* br = b + (j0 + jj) * k;
      float dot = 0.0f;
      for (int64_t p = 0; p < k; ++p) dot += ar[p] * br[p];
      cr[jj] = accumulate ? cr[jj] + dot : dot;
    }
  }
}

void NtDotRows(const NtContext& ctx, int64_t row_begin, int64_t row_end) {
  for (int64_t i = row_begin; i < row_end; i += MR) {
    const int mr = static_cast<int>(std::min<int64_t>(MR, row_end - i));
    for (int64_t j0 = 0; j0 < ctx.n; j0 += kNtScalarColTile) {
      const int nr =
          static_cast<int>(std::min<int64_t>(kNtScalarColTile, ctx.n - j0));
      if (mr == MR && nr == kNtScalarColTile) {
        NtDotTile(ctx.a, ctx.b, ctx.c, ctx.n, ctx.k, i, j0, ctx.accumulate);
      } else {
        NtDotEdge(ctx.a, ctx.b, ctx.c, ctx.n, ctx.k, i, mr, j0, nr,
                  ctx.accumulate);
      }
    }
  }
}

}  // namespace

void GemmNN(const float* a, const float* b, float* c, int64_t m, int64_t n,
            int64_t k, bool accumulate) {
  BlockedAxB(a, /*a_i_stride=*/k, /*a_p_stride=*/1, b, c, m, n, k,
             accumulate);
}

void GemmTN(const float* a, const float* b, float* c, int64_t m, int64_t n,
            int64_t k, bool accumulate) {
  // A stored (K,M): A(i,p) = a[p·m + i].
  BlockedAxB(a, /*a_i_stride=*/1, /*a_p_stride=*/m, b, c, m, n, k,
             accumulate);
}

void GemmNT(const float* a, const float* b, float* c, int64_t m, int64_t n,
            int64_t k, bool accumulate) {
  if (m == 0 || n == 0) return;
  const int64_t num_panels = (n + NR - 1) / NR;
  util::ScopedArena arena;
  NtContext ctx{a, b, nullptr, c, n, k, num_panels, accumulate,
                PickTiles().nt};
  if (m >= kGemmPackMinRows) {
    // Transpose-pack B so the microkernel reads NR output columns per load;
    // the pack costs one pass over B, amortized across m/MR row tiles.
    float* pack = arena.Alloc(static_cast<size_t>(num_panels) * k * NR);
    for (int64_t jb = 0; jb < num_panels; ++jb) {
      const int nr = static_cast<int>(std::min<int64_t>(NR, n - jb * NR));
      float* panel = pack + jb * k * NR;
      for (int jr = 0; jr < nr; ++jr) {
        const float* bcol = b + (jb * NR + jr) * k;
        for (int64_t p = 0; p < k; ++p) panel[p * NR + jr] = bcol[p];
      }
    }
    ctx.packed = pack;
    GemmRows(m, n, k, [&ctx](int64_t row_begin, int64_t row_end) {
      NtPackedRows(ctx, row_begin, row_end);
    });
  } else {
    GemmRows(m, n, k, [&ctx](int64_t row_begin, int64_t row_end) {
      NtDotRows(ctx, row_begin, row_end);
    });
  }
}

// -- Reference kernels --------------------------------------------------------
// The exact historical serial loop nests (pre-blocking), kept as the
// bit-identity oracle and the perf baseline.

void GemmNNRef(const float* a, const float* b, float* c, int64_t m, int64_t n,
               int64_t k, bool accumulate) {
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    if (!accumulate) std::fill(c_row, c_row + n, 0.0f);
    for (int64_t p = 0; p < k; ++p) {
      const float a_val = a_row[p];
      if (a_val == 0.0f) continue;
      const float* b_row = b + p * n;
      for (int64_t j = 0; j < n; ++j) c_row[j] += a_val * b_row[j];
    }
  }
}

void GemmNTRef(const float* a, const float* b, float* c, int64_t m, int64_t n,
               int64_t k, bool accumulate) {
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* b_row = b + j * k;
      float dot = 0.0f;
      for (int64_t p = 0; p < k; ++p) dot += a_row[p] * b_row[p];
      if (accumulate) {
        c_row[j] += dot;
      } else {
        c_row[j] = dot;
      }
    }
  }
}

void GemmTNRef(const float* a, const float* b, float* c, int64_t m, int64_t n,
               int64_t k, bool accumulate) {
  for (int64_t i = 0; i < m; ++i) {
    float* c_row = c + i * n;
    if (!accumulate) std::fill(c_row, c_row + n, 0.0f);
    for (int64_t p = 0; p < k; ++p) {
      const float a_val = a[p * m + i];
      if (a_val == 0.0f) continue;
      const float* b_row = b + p * n;
      for (int64_t j = 0; j < n; ++j) c_row[j] += a_val * b_row[j];
    }
  }
}

std::string GemmKernelConfig() {
#ifdef DELREC_NATIVE_BUILD
  const char* native = "on";
#else
  const char* native = "off";
#endif
  return "blocked " + std::to_string(kGemmRowTile) + "x" +
         std::to_string(kGemmColTile) + " microkernel, packed-B (m>=" +
         std::to_string(kGemmPackMinRows) + "), isa=" +
         PickTiles().isa + ", fp-contract=off, pool-backed pack buffers, "
         "march=native " + native;
}

std::string GemmKernelIsa() { return PickTiles().isa; }

}  // namespace delrec::nn
