#include "nn/gemm_int8.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"
#include "util/threadpool.h"

// Compiled with -ffp-contract=off (src/nn/CMakeLists.txt), matching
// nn/gemm.cc: the de-scale epilogue is the one floating-point stage of the
// int8 path and every kernel funnels through the same scalar function, so no
// contraction decision can split SIMD and reference numerics.

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DELREC_GEMM_INT8_X86 1
#include <immintrin.h>
#else
#define DELREC_GEMM_INT8_X86 0
#endif

namespace delrec::nn {
namespace {

constexpr int MR = kInt8RowTile;
constexpr int NR = kInt8ChannelTile;
constexpr int KQ = kInt8KQuad;
static_assert(NR == 16 && KQ == 4,
              "int8 tiles assume 16-channel panels of 4-deep k-quads "
              "(two 32-byte vpdpbusd operand rows per quad)");

// -- Tiles --------------------------------------------------------------------
// A tile fills acc[MR][NR] with the exact int32 dot products of MR packed
// activation rows against one 16-channel panel over the full padded depth.
// Activation bytes are biased (stored byte = code + 128, nn/quant.h); signed
// tiles subtract the bias per byte, the vpdpbusd tile instead subtracts the
// panel's precomputed corrections 128·Σ codes once at the end — both recover
// the same signed dot. Padded k lanes multiply zero weight codes, so summing
// kp instead of K is identity. All tiles produce the same int32s (integer
// arithmetic is associative and exact here), so the ISA choice can never
// change results.

using Int8TileFn = void (*)(const int8_t* a, int64_t a_stride,
                            const int8_t* bpanel, const int32_t* corr,
                            int64_t kp, int32_t* acc);

// Signed activation code recovered from the biased storage byte.
inline int32_t UnbiasByte(int8_t byte) {
  return static_cast<int32_t>(static_cast<uint8_t>(byte)) - 128;
}

void Int8TileScalar(const int8_t* a, int64_t a_stride, const int8_t* bpanel,
                    const int32_t* /*corr*/, int64_t kp, int32_t* acc) {
  for (int r = 0; r < MR; ++r) {
    const int8_t* ar = a + r * a_stride;
    int32_t* accr = acc + r * NR;
    for (int jr = 0; jr < NR; ++jr) accr[jr] = 0;
    for (int64_t k = 0; k < kp; ++k) {
      const int32_t av = UnbiasByte(ar[k]);
      const int8_t* bk = bpanel + (k / KQ) * (NR * KQ) + (k % KQ);
      for (int jr = 0; jr < NR; ++jr) {
        accr[jr] += av * static_cast<int32_t>(bk[jr * KQ]);
      }
    }
  }
}

// Partial tile (mr < MR and/or nr < NR): same accumulation with runtime
// bounds. acc rows are laid out with the full NR stride so the shared
// epilogue indexes identically for full and edge tiles.
void Int8TileEdge(const int8_t* a, int64_t a_stride, const int8_t* bpanel,
                  int64_t kp, int mr, int nr, int32_t* acc) {
  for (int r = 0; r < mr; ++r) {
    const int8_t* ar = a + r * a_stride;
    int32_t* accr = acc + r * NR;
    for (int jr = 0; jr < nr; ++jr) accr[jr] = 0;
    for (int64_t k = 0; k < kp; ++k) {
      const int32_t av = UnbiasByte(ar[k]);
      const int8_t* bk = bpanel + (k / KQ) * (NR * KQ) + (k % KQ);
      for (int jr = 0; jr < nr; ++jr) {
        accr[jr] += av * static_cast<int32_t>(bk[jr * KQ]);
      }
    }
  }
}

#if DELREC_GEMM_INT8_X86

// One biased activation k-quad as the u32 every vpdpbusd lane multiplies.
inline int32_t QuadBroadcastU8(const int8_t* a, int64_t k) {
  int32_t v;
  std::memcpy(&v, a + k, sizeof(v));
  return v;
}

// One unbiased activation k-quad as four int16s (a0,a1,a2,a3) for the
// pmaddwd tiles: set1_epi64 of this value lines each weight lane pair
// (k0,k1) / (k2,k3) up with the matching activation pair.
inline long long QuadBroadcastS16(const int8_t* a, int64_t k) {
  uint64_t v = 0;
  for (int t = 0; t < KQ; ++t) {
    const uint16_t s = static_cast<uint16_t>(
        static_cast<int16_t>(UnbiasByte(a[k + t])));
    v |= static_cast<uint64_t>(s) << (16 * t);
  }
  return static_cast<long long>(v);
}

// ---- AVX-VNNI: vpdpbusd on biased u8 activations, 8 accumulators ----
// Each dpbusd consumes 8 channels × one k-quad per operand row; the biased
// sums are corrected with the panel's precomputed 128·Σ codes at the end.
// (256-bit VEX form — present without AVX-512 on e.g. Alder Lake, and on
// AVX512-VNNI parts via the same CPUID avxvnni bit being set by the OS/CPU
// only when the VEX encoding exists; dispatch checks avx2+avxvnni.)

__attribute__((target("avx2,avxvnni"))) void Int8TileAvxVnni(
    const int8_t* a, int64_t a_stride, const int8_t* bpanel,
    const int32_t* corr, int64_t kp, int32_t* acc) {
  const int8_t* a0 = a;
  const int8_t* a1 = a + a_stride;
  const int8_t* a2 = a + 2 * a_stride;
  const int8_t* a3 = a + 3 * a_stride;
  __m256i lo0 = _mm256_setzero_si256(), hi0 = _mm256_setzero_si256();
  __m256i lo1 = _mm256_setzero_si256(), hi1 = _mm256_setzero_si256();
  __m256i lo2 = _mm256_setzero_si256(), hi2 = _mm256_setzero_si256();
  __m256i lo3 = _mm256_setzero_si256(), hi3 = _mm256_setzero_si256();
  for (int64_t k = 0; k < kp; k += KQ) {
    const int8_t* bk = bpanel + (k / KQ) * (NR * KQ);
    // Channels 0-7 and 8-15 of this k-quad, one s8 quad per dword lane.
    const __m256i blo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bk));
    const __m256i bhi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bk + 32));
    __m256i av;
    av = _mm256_set1_epi32(QuadBroadcastU8(a0, k));
    lo0 = _mm256_dpbusd_avx_epi32(lo0, av, blo);
    hi0 = _mm256_dpbusd_avx_epi32(hi0, av, bhi);
    av = _mm256_set1_epi32(QuadBroadcastU8(a1, k));
    lo1 = _mm256_dpbusd_avx_epi32(lo1, av, blo);
    hi1 = _mm256_dpbusd_avx_epi32(hi1, av, bhi);
    av = _mm256_set1_epi32(QuadBroadcastU8(a2, k));
    lo2 = _mm256_dpbusd_avx_epi32(lo2, av, blo);
    hi2 = _mm256_dpbusd_avx_epi32(hi2, av, bhi);
    av = _mm256_set1_epi32(QuadBroadcastU8(a3, k));
    lo3 = _mm256_dpbusd_avx_epi32(lo3, av, blo);
    hi3 = _mm256_dpbusd_avx_epi32(hi3, av, bhi);
  }
  const __m256i clo =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(corr));
  const __m256i chi =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(corr + 8));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 0 * NR),
                      _mm256_sub_epi32(lo0, clo));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 0 * NR + 8),
                      _mm256_sub_epi32(hi0, chi));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 1 * NR),
                      _mm256_sub_epi32(lo1, clo));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 1 * NR + 8),
                      _mm256_sub_epi32(hi1, chi));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 2 * NR),
                      _mm256_sub_epi32(lo2, clo));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 2 * NR + 8),
                      _mm256_sub_epi32(hi2, chi));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 3 * NR),
                      _mm256_sub_epi32(lo3, clo));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 3 * NR + 8),
                      _mm256_sub_epi32(hi3, chi));
}

// ---- AVX-512 (no VNNI): pmaddwd over sign-extended k-quads ----
// madd of a (a0,a1,a2,a3) int16 broadcast against a cvt'd quad row yields
// channel-pair partial sums in adjacent int32 lanes ([ch p01, ch p23, ...]);
// the pairs are reduced scalar at tile end, outside the k loop.
// madd_epi16/cvtepi8_epi16 at 512 bits need AVX512BW (checked at dispatch).

__attribute__((target("avx512f,avx512bw"))) void Int8TileAvx512(
    const int8_t* a, int64_t a_stride, const int8_t* bpanel,
    const int32_t* /*corr*/, int64_t kp, int32_t* acc) {
  const int8_t* a0 = a;
  const int8_t* a1 = a + a_stride;
  const int8_t* a2 = a + 2 * a_stride;
  const int8_t* a3 = a + 3 * a_stride;
  // p{lo,hi}R hold channels 0-7 / 8-15 of row R as 16 paired int32 lanes.
  __m512i plo0 = _mm512_setzero_si512(), phi0 = _mm512_setzero_si512();
  __m512i plo1 = _mm512_setzero_si512(), phi1 = _mm512_setzero_si512();
  __m512i plo2 = _mm512_setzero_si512(), phi2 = _mm512_setzero_si512();
  __m512i plo3 = _mm512_setzero_si512(), phi3 = _mm512_setzero_si512();
  for (int64_t k = 0; k < kp; k += KQ) {
    const int8_t* bk = bpanel + (k / KQ) * (NR * KQ);
    const __m512i blo = _mm512_cvtepi8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bk)));
    const __m512i bhi = _mm512_cvtepi8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bk + 32)));
    __m512i av;
    av = _mm512_set1_epi64(QuadBroadcastS16(a0, k));
    plo0 = _mm512_add_epi32(plo0, _mm512_madd_epi16(av, blo));
    phi0 = _mm512_add_epi32(phi0, _mm512_madd_epi16(av, bhi));
    av = _mm512_set1_epi64(QuadBroadcastS16(a1, k));
    plo1 = _mm512_add_epi32(plo1, _mm512_madd_epi16(av, blo));
    phi1 = _mm512_add_epi32(phi1, _mm512_madd_epi16(av, bhi));
    av = _mm512_set1_epi64(QuadBroadcastS16(a2, k));
    plo2 = _mm512_add_epi32(plo2, _mm512_madd_epi16(av, blo));
    phi2 = _mm512_add_epi32(phi2, _mm512_madd_epi16(av, bhi));
    av = _mm512_set1_epi64(QuadBroadcastS16(a3, k));
    plo3 = _mm512_add_epi32(plo3, _mm512_madd_epi16(av, blo));
    phi3 = _mm512_add_epi32(phi3, _mm512_madd_epi16(av, bhi));
  }
  alignas(64) int32_t tmp[2 * NR];
  const __m512i* paired[MR][2] = {
      {&plo0, &phi0}, {&plo1, &phi1}, {&plo2, &phi2}, {&plo3, &phi3}};
  for (int r = 0; r < MR; ++r) {
    _mm512_store_si512(tmp, *paired[r][0]);
    _mm512_store_si512(tmp + NR, *paired[r][1]);
    int32_t* accr = acc + r * NR;
    for (int jr = 0; jr < NR; ++jr) {
      accr[jr] = tmp[2 * jr] + tmp[2 * jr + 1];
    }
  }
}

// ---- AVX2 (no VNNI): pmaddwd quads, two-row sub-blocks ----
// Same paired-lane scheme at 256 bits: four quarter-panel registers of
// 4 channels each; rows go in blocks of two so accumulators + operands fit
// the 16-register file.

__attribute__((target("avx2"))) void Int8TileAvx2(const int8_t* a,
                                                  int64_t a_stride,
                                                  const int8_t* bpanel,
                                                  const int32_t* /*corr*/,
                                                  int64_t kp, int32_t* acc) {
  for (int rb = 0; rb < MR; rb += 2) {
    const int8_t* a0 = a + rb * a_stride;
    const int8_t* a1 = a + (rb + 1) * a_stride;
    __m256i p0[4] = {_mm256_setzero_si256(), _mm256_setzero_si256(),
                     _mm256_setzero_si256(), _mm256_setzero_si256()};
    __m256i p1[4] = {_mm256_setzero_si256(), _mm256_setzero_si256(),
                     _mm256_setzero_si256(), _mm256_setzero_si256()};
    for (int64_t k = 0; k < kp; k += KQ) {
      const int8_t* bk = bpanel + (k / KQ) * (NR * KQ);
      const __m256i av0 = _mm256_set1_epi64x(QuadBroadcastS16(a0, k));
      const __m256i av1 = _mm256_set1_epi64x(QuadBroadcastS16(a1, k));
      for (int q = 0; q < 4; ++q) {
        const __m256i b = _mm256_cvtepi8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(bk + q * NR)));
        p0[q] = _mm256_add_epi32(p0[q], _mm256_madd_epi16(av0, b));
        p1[q] = _mm256_add_epi32(p1[q], _mm256_madd_epi16(av1, b));
      }
    }
    alignas(32) int32_t tmp[8];
    for (int q = 0; q < 4; ++q) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), p0[q]);
      int32_t* accr = acc + rb * NR + q * 4;
      for (int jr = 0; jr < 4; ++jr) accr[jr] = tmp[2 * jr] + tmp[2 * jr + 1];
      _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), p1[q]);
      accr = acc + (rb + 1) * NR + q * 4;
      for (int jr = 0; jr < 4; ++jr) accr[jr] = tmp[2 * jr] + tmp[2 * jr + 1];
    }
  }
}

#endif  // DELREC_GEMM_INT8_X86

struct Int8Tiles {
  Int8TileFn tile;
  const char* isa;
  const char* family;
};

const Int8Tiles& PickInt8Tiles() {
  static const Int8Tiles tiles = [] {
#if DELREC_GEMM_INT8_X86
    if (__builtin_cpu_supports("avx2") &&
        __builtin_cpu_supports("avxvnni")) {
      return Int8Tiles{Int8TileAvxVnni, "avxvnni", "vpdpbusd"};
    }
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw")) {
      return Int8Tiles{Int8TileAvx512, "avx512", "pmaddwd"};
    }
    if (__builtin_cpu_supports("avx2")) {
      return Int8Tiles{Int8TileAvx2, "avx2", "pmaddwd"};
    }
#endif
    return Int8Tiles{Int8TileScalar, "scalar", "scalar"};
  }();
  return tiles;
}

// -- Shared de-scale epilogue -------------------------------------------------
// The single floating-point stage: every kernel (SIMD and reference) calls
// this same scalar function per tile, so the fp rounding sequence per C
// element is fixed — cast, one multiply by the pre-combined scale, optional
// bias add, optional accumulate.

void DescaleTile(const int32_t* acc, const float* a_scales, int64_t i0,
                 int mr, const float* b_scales, int64_t j0, int nr,
                 const float* bias, float* c, int64_t n, bool accumulate) {
  for (int r = 0; r < mr; ++r) {
    const float sa = a_scales[i0 + r];
    const int32_t* accr = acc + r * NR;
    float* cr = c + (i0 + r) * n + j0;
    for (int jr = 0; jr < nr; ++jr) {
      float v = static_cast<float>(accr[jr]) * (sa * b_scales[j0 + jr]);
      if (bias != nullptr) v = v + bias[j0 + jr];
      cr[jr] = accumulate ? cr[jr] + v : v;
    }
  }
}

void Int8Rows(const int8_t* aq, const float* a_scales, const QuantTensor& b,
              const float* bias, float* c, bool accumulate, Int8TileFn tile,
              int64_t row_begin, int64_t row_end) {
  const int64_t n = b.channels();
  const int64_t kp = b.packed_depth();
  const int64_t num_panels = (n + NR - 1) / NR;
  const int8_t* packed = b.packed();
  const float* b_scales = b.scales();
  const int32_t* corrections = b.corrections();
  alignas(64) int32_t acc[MR * NR];
  for (int64_t i = row_begin; i < row_end; i += MR) {
    const int mr = static_cast<int>(std::min<int64_t>(MR, row_end - i));
    const int8_t* arow = aq + i * kp;
    for (int64_t jb = 0; jb < num_panels; ++jb) {
      const int64_t j0 = jb * NR;
      const int nr = static_cast<int>(std::min<int64_t>(NR, n - j0));
      const int8_t* bpanel = packed + jb * kp * NR;
      if (mr == MR && nr == NR) {
        tile(arow, kp, bpanel, corrections + j0, kp, acc);
      } else {
        Int8TileEdge(arow, kp, bpanel, kp, mr, nr, acc);
      }
      DescaleTile(acc, a_scales, i, mr, b_scales, j0, nr, bias, c, n,
                  accumulate);
    }
  }
}

}  // namespace

void Int8Gemm(const int8_t* aq, const float* a_scales, const QuantTensor& b,
              const float* bias, float* c, int64_t m, bool accumulate) {
  DELREC_CHECK(b.defined());
  if (m == 0 || b.channels() == 0) return;
  const Int8TileFn tile = PickInt8Tiles().tile;
  // Same static row partition and serial-below-threshold rule as GemmRows
  // (nn/gemm.cc); chunk boundaries only decide which rows use edge tiles,
  // and edge vs full tiles compute identical int32s.
  if (util::ParallelThreads() > 1 &&
      m * b.channels() * b.packed_depth() >= util::ParallelMinWork()) {
    util::ParallelFor(m, [&](int64_t begin, int64_t end, int) {
      Int8Rows(aq, a_scales, b, bias, c, accumulate, tile, begin, end);
    });
  } else {
    Int8Rows(aq, a_scales, b, bias, c, accumulate, tile, 0, m);
  }
}

void Int8GemmRef(const int8_t* aq, const float* a_scales,
                 const QuantTensor& b, const float* bias, float* c, int64_t m,
                 bool accumulate) {
  DELREC_CHECK(b.defined());
  if (m == 0 || b.channels() == 0) return;
  Int8Rows(aq, a_scales, b, bias, c, accumulate, Int8TileScalar, 0, m);
}

std::string Int8KernelIsa() { return PickInt8Tiles().isa; }

std::string Int8GemmKernelConfig() {
  const Int8Tiles& tiles = PickInt8Tiles();
  return "int8 " + std::to_string(kInt8RowTile) + "x" +
         std::to_string(kInt8ChannelTile) + " " + tiles.family +
         " microkernel, packed k-quad panels, isa=" + tiles.isa +
         ", fp-contract=off";
}

}  // namespace delrec::nn
