#ifndef DELREC_NN_OPTIMIZER_H_
#define DELREC_NN_OPTIMIZER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/tensor.h"

namespace delrec::nn {

/// Base optimizer over an explicit parameter list. Freezing a parameter group
/// (soft prompts in stage 2, the LLM in stage 1) is expressed by simply not
/// listing it — this mirrors the paper's "only the parameters of the soft
/// prompts are updated" / "freeze the parameters of soft prompts" setup.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> parameters)
      : parameters_(std::move(parameters)) {}
  virtual ~Optimizer() = default;

  /// Applies one update using the parameters' accumulated gradients.
  virtual void Step() = 0;

  /// Clears gradients of the managed parameters.
  void ZeroGrad();

  /// Flattened optimizer slot state (moments, accumulators, step counters)
  /// for checkpointing; LoadState restores a dump from an optimizer built
  /// over an identically shaped parameter list. Aborts on size mismatch —
  /// validate sizes against StateDump().size() before calling with
  /// untrusted data.
  virtual std::vector<float> StateDump() const = 0;
  virtual void LoadState(const std::vector<float>& state) = 0;

  const std::vector<Tensor>& parameters() const { return parameters_; }

 protected:
  std::vector<Tensor> parameters_;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> parameters, float learning_rate,
      float momentum = 0.0f);
  void Step() override;
  std::vector<float> StateDump() const override;
  void LoadState(const std::vector<float>& state) override;

 private:
  float learning_rate_;
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

/// Adagrad (the paper trains GRU4Rec with it).
class Adagrad : public Optimizer {
 public:
  Adagrad(std::vector<Tensor> parameters, float learning_rate,
          float epsilon = 1e-10f);
  void Step() override;
  std::vector<float> StateDump() const override;
  void LoadState(const std::vector<float>& state) override;

 private:
  float learning_rate_;
  float epsilon_;
  std::vector<std::vector<float>> accumulated_;
};

/// Adam / AdamW (decoupled weight decay when weight_decay > 0).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> parameters, float learning_rate,
       float beta1 = 0.9f, float beta2 = 0.999f, float epsilon = 1e-8f,
       float weight_decay = 0.0f);
  void Step() override;
  std::vector<float> StateDump() const override;
  void LoadState(const std::vector<float>& state) override;

 private:
  float learning_rate_;
  float beta1_;
  float beta2_;
  float epsilon_;
  float weight_decay_;
  int64_t step_count_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

/// Lion (Chen et al. 2023): sign of the interpolated momentum, decoupled
/// weight decay. The paper uses Lion for both DELRec stages.
class Lion : public Optimizer {
 public:
  Lion(std::vector<Tensor> parameters, float learning_rate,
       float beta1 = 0.9f, float beta2 = 0.99f, float weight_decay = 0.0f);
  void Step() override;
  std::vector<float> StateDump() const override;
  void LoadState(const std::vector<float>& state) override;

 private:
  float learning_rate_;
  float beta1_;
  float beta2_;
  float weight_decay_;
  std::vector<std::vector<float>> momentum_;
};

}  // namespace delrec::nn

#endif  // DELREC_NN_OPTIMIZER_H_
