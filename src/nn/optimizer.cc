#include "nn/optimizer.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace delrec::nn {
namespace {

// Allocates one per-parameter state buffer set, zero-initialized.
std::vector<std::vector<float>> MakeState(const std::vector<Tensor>& params) {
  std::vector<std::vector<float>> state;
  state.reserve(params.size());
  for (const Tensor& p : params) {
    state.emplace_back(p.data().size(), 0.0f);
  }
  return state;
}

// Flattens slot buffers (optionally prefixed by scalar extras) into one
// checkpointable vector.
std::vector<float> DumpSlots(
    const std::vector<float>& extras,
    std::initializer_list<const std::vector<std::vector<float>>*> slot_sets) {
  std::vector<float> out = extras;
  for (const auto* slots : slot_sets) {
    for (const auto& buffer : *slots) {
      out.insert(out.end(), buffer.begin(), buffer.end());
    }
  }
  return out;
}

// Inverse of DumpSlots; aborts when the dump does not match the layout.
void LoadSlots(
    const std::vector<float>& state, std::vector<float*> extras,
    std::initializer_list<std::vector<std::vector<float>>*> slot_sets) {
  size_t offset = 0;
  for (float* extra : extras) {
    DELREC_CHECK_LT(offset, state.size()) << "optimizer state too short";
    *extra = state[offset++];
  }
  for (auto* slots : slot_sets) {
    for (auto& buffer : *slots) {
      DELREC_CHECK_LE(offset + buffer.size(), state.size())
          << "optimizer state too short";
      std::copy(state.begin() + offset, state.begin() + offset + buffer.size(),
                buffer.begin());
      offset += buffer.size();
    }
  }
  DELREC_CHECK_EQ(offset, state.size()) << "optimizer state too long";
}

}  // namespace

void Optimizer::ZeroGrad() {
  for (Tensor p : parameters_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<Tensor> parameters, float learning_rate, float momentum)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      momentum_(momentum),
      velocity_(MakeState(parameters_)) {}

void Sgd::Step() {
  for (size_t i = 0; i < parameters_.size(); ++i) {
    Tensor p = parameters_[i];
    if (!p.has_grad()) continue;
    auto& data = p.data();
    const auto& grad = p.impl()->grad;
    auto& vel = velocity_[i];
    for (size_t j = 0; j < data.size(); ++j) {
      if (momentum_ > 0.0f) {
        vel[j] = momentum_ * vel[j] + grad[j];
        data[j] -= learning_rate_ * vel[j];
      } else {
        data[j] -= learning_rate_ * grad[j];
      }
    }
  }
}

std::vector<float> Sgd::StateDump() const { return DumpSlots({}, {&velocity_}); }

void Sgd::LoadState(const std::vector<float>& state) {
  LoadSlots(state, {}, {&velocity_});
}

Adagrad::Adagrad(std::vector<Tensor> parameters, float learning_rate,
                 float epsilon)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      epsilon_(epsilon),
      accumulated_(MakeState(parameters_)) {}

void Adagrad::Step() {
  for (size_t i = 0; i < parameters_.size(); ++i) {
    Tensor p = parameters_[i];
    if (!p.has_grad()) continue;
    auto& data = p.data();
    const auto& grad = p.impl()->grad;
    auto& acc = accumulated_[i];
    for (size_t j = 0; j < data.size(); ++j) {
      acc[j] += grad[j] * grad[j];
      data[j] -= learning_rate_ * grad[j] / (std::sqrt(acc[j]) + epsilon_);
    }
  }
}

std::vector<float> Adagrad::StateDump() const {
  return DumpSlots({}, {&accumulated_});
}

void Adagrad::LoadState(const std::vector<float>& state) {
  LoadSlots(state, {}, {&accumulated_});
}

Adam::Adam(std::vector<Tensor> parameters, float learning_rate, float beta1,
           float beta2, float epsilon, float weight_decay)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      weight_decay_(weight_decay),
      m_(MakeState(parameters_)),
      v_(MakeState(parameters_)) {}

void Adam::Step() {
  ++step_count_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t i = 0; i < parameters_.size(); ++i) {
    Tensor p = parameters_[i];
    if (!p.has_grad()) continue;
    auto& data = p.data();
    const auto& grad = p.impl()->grad;
    auto& m = m_[i];
    auto& v = v_[i];
    for (size_t j = 0; j < data.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad[j] * grad[j];
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      data[j] -= learning_rate_ *
                 (m_hat / (std::sqrt(v_hat) + epsilon_) +
                  weight_decay_ * data[j]);
    }
  }
}

std::vector<float> Adam::StateDump() const {
  return DumpSlots({static_cast<float>(step_count_)}, {&m_, &v_});
}

void Adam::LoadState(const std::vector<float>& state) {
  float step_count = 0.0f;
  LoadSlots(state, {&step_count}, {&m_, &v_});
  step_count_ = static_cast<int64_t>(step_count);
}

Lion::Lion(std::vector<Tensor> parameters, float learning_rate, float beta1,
           float beta2, float weight_decay)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      weight_decay_(weight_decay),
      momentum_(MakeState(parameters_)) {}

void Lion::Step() {
  for (size_t i = 0; i < parameters_.size(); ++i) {
    Tensor p = parameters_[i];
    if (!p.has_grad()) continue;
    auto& data = p.data();
    const auto& grad = p.impl()->grad;
    auto& m = momentum_[i];
    for (size_t j = 0; j < data.size(); ++j) {
      // Update direction: sign(β1·m + (1-β1)·g); momentum tracked with β2.
      const float update = beta1_ * m[j] + (1.0f - beta1_) * grad[j];
      const float sign = update > 0.0f ? 1.0f : (update < 0.0f ? -1.0f : 0.0f);
      data[j] -= learning_rate_ * (sign + weight_decay_ * data[j]);
      m[j] = beta2_ * m[j] + (1.0f - beta2_) * grad[j];
    }
  }
}

std::vector<float> Lion::StateDump() const { return DumpSlots({}, {&momentum_}); }

void Lion::LoadState(const std::vector<float>& state) {
  LoadSlots(state, {}, {&momentum_});
}

}  // namespace delrec::nn
