#include "nn/optimizer.h"

#include <cmath>

#include "util/check.h"

namespace delrec::nn {
namespace {

// Allocates one per-parameter state buffer set, zero-initialized.
std::vector<std::vector<float>> MakeState(const std::vector<Tensor>& params) {
  std::vector<std::vector<float>> state;
  state.reserve(params.size());
  for (const Tensor& p : params) {
    state.emplace_back(p.data().size(), 0.0f);
  }
  return state;
}

}  // namespace

void Optimizer::ZeroGrad() {
  for (Tensor p : parameters_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<Tensor> parameters, float learning_rate, float momentum)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      momentum_(momentum),
      velocity_(MakeState(parameters_)) {}

void Sgd::Step() {
  for (size_t i = 0; i < parameters_.size(); ++i) {
    Tensor p = parameters_[i];
    if (!p.has_grad()) continue;
    auto& data = p.data();
    const auto& grad = p.impl()->grad;
    auto& vel = velocity_[i];
    for (size_t j = 0; j < data.size(); ++j) {
      if (momentum_ > 0.0f) {
        vel[j] = momentum_ * vel[j] + grad[j];
        data[j] -= learning_rate_ * vel[j];
      } else {
        data[j] -= learning_rate_ * grad[j];
      }
    }
  }
}

Adagrad::Adagrad(std::vector<Tensor> parameters, float learning_rate,
                 float epsilon)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      epsilon_(epsilon),
      accumulated_(MakeState(parameters_)) {}

void Adagrad::Step() {
  for (size_t i = 0; i < parameters_.size(); ++i) {
    Tensor p = parameters_[i];
    if (!p.has_grad()) continue;
    auto& data = p.data();
    const auto& grad = p.impl()->grad;
    auto& acc = accumulated_[i];
    for (size_t j = 0; j < data.size(); ++j) {
      acc[j] += grad[j] * grad[j];
      data[j] -= learning_rate_ * grad[j] / (std::sqrt(acc[j]) + epsilon_);
    }
  }
}

Adam::Adam(std::vector<Tensor> parameters, float learning_rate, float beta1,
           float beta2, float epsilon, float weight_decay)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      weight_decay_(weight_decay),
      m_(MakeState(parameters_)),
      v_(MakeState(parameters_)) {}

void Adam::Step() {
  ++step_count_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t i = 0; i < parameters_.size(); ++i) {
    Tensor p = parameters_[i];
    if (!p.has_grad()) continue;
    auto& data = p.data();
    const auto& grad = p.impl()->grad;
    auto& m = m_[i];
    auto& v = v_[i];
    for (size_t j = 0; j < data.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad[j] * grad[j];
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      data[j] -= learning_rate_ *
                 (m_hat / (std::sqrt(v_hat) + epsilon_) +
                  weight_decay_ * data[j]);
    }
  }
}

Lion::Lion(std::vector<Tensor> parameters, float learning_rate, float beta1,
           float beta2, float weight_decay)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      weight_decay_(weight_decay),
      momentum_(MakeState(parameters_)) {}

void Lion::Step() {
  for (size_t i = 0; i < parameters_.size(); ++i) {
    Tensor p = parameters_[i];
    if (!p.has_grad()) continue;
    auto& data = p.data();
    const auto& grad = p.impl()->grad;
    auto& m = momentum_[i];
    for (size_t j = 0; j < data.size(); ++j) {
      // Update direction: sign(β1·m + (1-β1)·g); momentum tracked with β2.
      const float update = beta1_ * m[j] + (1.0f - beta1_) * grad[j];
      const float sign = update > 0.0f ? 1.0f : (update < 0.0f ? -1.0f : 0.0f);
      data[j] -= learning_rate_ * (sign + weight_decay_ * data[j]);
      m[j] = beta2_ * m[j] + (1.0f - beta2_) * grad[j];
    }
  }
}

}  // namespace delrec::nn
