#include "nn/quant.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DELREC_QUANT_X86 1
#include <immintrin.h>
#else
#define DELREC_QUANT_X86 0
#endif

namespace delrec::nn {

namespace {

/// Biased storage byte for a signed code in [-127, 127]: code + 128 as the
/// unsigned byte vpdpbusd reads, reinterpreted into the int8_t buffer.
inline int8_t BiasedByte(long code) {
  return static_cast<int8_t>(static_cast<uint8_t>(code + 128));
}

/// Shared code path for both weight layouts: `element(j, k)` reads the fp32
/// value of channel j at depth k. Two passes per channel — maxabs for the
/// scale, then quantize — writing into the packed layout and accumulating
/// the per-channel bias correction 128·Σ codes.
template <typename ElementFn>
void QuantizeChannels(std::vector<int8_t>* data, std::vector<float>* scales,
                      std::vector<int32_t>* corrections, int64_t channels,
                      int64_t depth, int64_t packed_depth,
                      const ElementFn& element) {
  for (int64_t j = 0; j < channels; ++j) {
    float maxabs = 0.0f;
    for (int64_t k = 0; k < depth; ++k) {
      maxabs = std::max(maxabs, std::fabs(element(j, k)));
    }
    const float scale = maxabs / 127.0f;
    (*scales)[j] = scale;
    if (scale == 0.0f) continue;  // Codes stay 0 from the zero-init.
    const float inv = 1.0f / scale;
    int64_t code_sum = 0;
    for (int64_t k = 0; k < depth; ++k) {
      const long code = std::clamp<long>(
          std::lrintf(element(j, k) * inv), -127, 127);
      (*data)[PackedInt8Index(j, k, packed_depth)] =
          static_cast<int8_t>(code);
      code_sum += code;
    }
    (*corrections)[j] = static_cast<int32_t>(128 * code_sum);
  }
}

void QuantizeRowScalar(const float* row, int64_t depth, float inv,
                       int8_t* orow) {
  for (int64_t k = 0; k < depth; ++k) {
    const long code =
        std::clamp<long>(std::lrintf(row[k] * inv), -127, 127);
    orow[k] = BiasedByte(code);
  }
}

#if DELREC_QUANT_X86

__attribute__((target("avx2"))) float RowMaxAbsAvx2(const float* row,
                                                    int64_t depth) {
  const __m256 absmask =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  __m256 mx = _mm256_setzero_ps();
  int64_t k = 0;
  for (; k + 8 <= depth; k += 8) {
    mx = _mm256_max_ps(mx, _mm256_and_ps(absmask, _mm256_loadu_ps(row + k)));
  }
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, mx);
  float maxabs = 0.0f;
  for (float lane : lanes) maxabs = std::max(maxabs, lane);
  for (; k < depth; ++k) maxabs = std::max(maxabs, std::fabs(row[k]));
  return maxabs;
}

// 16 floats -> 16 biased bytes. mul + cvtps2dq (round-to-nearest-even under
// the default MXCSR — the same rounding std::lrintf performs), clamp to
// ±127, saturating packs down to int8, then xor 0x80 to add the +128 bias.
// The 2x128 permutes pre-arrange the two dwords vectors so the in-lane packs
// emit bytes in linear k order.
__attribute__((target("avx2"))) void QuantizeRowAvx2(const float* row,
                                                     int64_t depth, float inv,
                                                     int8_t* orow) {
  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256i lo_clamp = _mm256_set1_epi32(-127);
  const __m256i hi_clamp = _mm256_set1_epi32(127);
  const __m256i bias = _mm256_set1_epi8(static_cast<char>(0x80));
  int64_t k = 0;
  for (; k + 16 <= depth; k += 16) {
    __m256i v0 = _mm256_cvtps_epi32(
        _mm256_mul_ps(_mm256_loadu_ps(row + k), vinv));
    __m256i v1 = _mm256_cvtps_epi32(
        _mm256_mul_ps(_mm256_loadu_ps(row + k + 8), vinv));
    v0 = _mm256_min_epi32(hi_clamp, _mm256_max_epi32(lo_clamp, v0));
    v1 = _mm256_min_epi32(hi_clamp, _mm256_max_epi32(lo_clamp, v1));
    const __m256i x = _mm256_permute2x128_si256(v0, v1, 0x20);
    const __m256i y = _mm256_permute2x128_si256(v0, v1, 0x31);
    const __m256i p16 = _mm256_packs_epi32(x, y);
    const __m256i p8 = _mm256_xor_si256(_mm256_packs_epi16(p16, p16), bias);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(orow + k),
                     _mm256_castsi256_si128(p8));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(orow + k + 8),
                     _mm256_extracti128_si256(p8, 1));
  }
  if (k < depth) QuantizeRowScalar(row + k, depth - k, inv, orow + k);
}

#endif  // DELREC_QUANT_X86

bool UseAvx2Quantizer() {
#if DELREC_QUANT_X86
  static const bool use = __builtin_cpu_supports("avx2");
  return use;
#else
  return false;
#endif
}

}  // namespace

QuantTensor::QuantTensor(int64_t channels, int64_t depth)
    : channels_(channels), depth_(depth) {
  DELREC_CHECK_GT(channels, 0);
  DELREC_CHECK_GE(depth, 0);
  DELREC_CHECK_LE(depth, kInt8MaxDepth)
      << "depth exceeds the int32 accumulator overflow bound";
  const int64_t panels =
      (channels + kInt8ChannelTile - 1) / kInt8ChannelTile;
  // Zero-init: padded channels and padded k contribute 0 to every dot.
  data_.assign(static_cast<size_t>(panels * packed_depth() *
                                   kInt8ChannelTile),
               0);
  scales_.assign(static_cast<size_t>(channels), 0.0f);
  corrections_.assign(static_cast<size_t>(panels * kInt8ChannelTile), 0);
}

QuantTensor QuantTensor::FromColumns(const float* w, int64_t in, int64_t out) {
  QuantTensor q(out, in);
  QuantizeChannels(&q.data_, &q.scales_, &q.corrections_, out, in,
                   q.packed_depth(),
                   [w, out](int64_t j, int64_t k) { return w[k * out + j]; });
  return q;
}

QuantTensor QuantTensor::FromRows(const float* w, int64_t rows, int64_t cols) {
  QuantTensor q(rows, cols);
  QuantizeChannels(&q.data_, &q.scales_, &q.corrections_, rows, cols,
                   q.packed_depth(),
                   [w, cols](int64_t j, int64_t k) { return w[j * cols + k]; });
  return q;
}

void QuantTensor::DequantRow(int64_t channel, float* out) const {
  DELREC_CHECK_GE(channel, 0);
  DELREC_CHECK_LT(channel, channels_);
  const float scale = scales_[channel];
  const int64_t kp = packed_depth();
  for (int64_t k = 0; k < depth_; ++k) {
    out[k] = scale * static_cast<float>(
                         data_[PackedInt8Index(channel, k, kp)]);
  }
}

void QuantizeActivationRows(const float* x, int64_t rows, int64_t depth,
                            int8_t* out, float* scales) {
  DELREC_CHECK_LE(depth, kInt8MaxDepth);
  const int64_t kp = (depth + kInt8KQuad - 1) & ~int64_t{kInt8KQuad - 1};
  const bool avx2 = UseAvx2Quantizer();
  const int8_t biased_zero = BiasedByte(0);
  for (int64_t i = 0; i < rows; ++i) {
    const float* row = x + i * depth;
    int8_t* orow = out + i * kp;
    float maxabs = 0.0f;
#if DELREC_QUANT_X86
    if (avx2) {
      maxabs = RowMaxAbsAvx2(row, depth);
    } else {
      for (int64_t k = 0; k < depth; ++k) {
        maxabs = std::max(maxabs, std::fabs(row[k]));
      }
    }
#else
    for (int64_t k = 0; k < depth; ++k) {
      maxabs = std::max(maxabs, std::fabs(row[k]));
    }
#endif
    const float scale = maxabs / 127.0f;
    scales[i] = scale;
    if (scale == 0.0f) {
      std::fill(orow, orow + kp, biased_zero);
      continue;
    }
    const float inv = 1.0f / scale;
#if DELREC_QUANT_X86
    if (avx2) {
      QuantizeRowAvx2(row, depth, inv, orow);
    } else {
      QuantizeRowScalar(row, depth, inv, orow);
    }
#else
    QuantizeRowScalar(row, depth, inv, orow);
#endif
    for (int64_t k = depth; k < kp; ++k) orow[k] = biased_zero;
  }
}

}  // namespace delrec::nn
