#include "nn/layers.h"

#include <cmath>

#include "nn/gemm.h"
#include "util/check.h"

namespace delrec::nn {

Linear::Linear(int64_t in_features, int64_t out_features, util::Rng& rng,
               bool use_bias)
    : in_features_(in_features), out_features_(out_features) {
  // Xavier-uniform keeps activations stable across the small dims used here.
  const float bound =
      std::sqrt(6.0f / static_cast<float>(in_features + out_features));
  weight_ = Tensor::RandUniform({in_features, out_features}, rng, bound,
                                /*requires_grad=*/true);
  RegisterParameter("weight", weight_);
  if (use_bias) {
    bias_ = Tensor::Zeros({out_features}, /*requires_grad=*/true);
    RegisterParameter("bias", bias_);
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  DELREC_CHECK_EQ(x.dim(1), in_features_);
  Tensor y = MatMul(x, weight_);
  if (bias_.defined()) y = AddBias(y, bias_);
  return y;
}

void Linear::ForwardInference(const float* x, int64_t rows,
                              float* out) const {
  GemmNN(x, weight_.data().data(), out, rows, out_features_, in_features_,
         /*accumulate=*/false);
  if (!bias_.defined()) return;
  const float* bv = bias_.data().data();
  for (int64_t i = 0; i < rows; ++i) {
    float* orow = out + i * out_features_;
    for (int64_t j = 0; j < out_features_; ++j) orow[j] = orow[j] + bv[j];
  }
}

Embedding::Embedding(int64_t count, int64_t dim, util::Rng& rng, float stddev)
    : count_(count), dim_(dim) {
  table_ = Tensor::Randn({count, dim}, rng, stddev, /*requires_grad=*/true);
  RegisterParameter("table", table_);
}

Tensor Embedding::Forward(const std::vector<int64_t>& indices) const {
  return Rows(table_, indices);
}

LayerNorm::LayerNorm(int64_t dim) {
  gamma_ = Tensor::Full({dim}, 1.0f, /*requires_grad=*/true);
  beta_ = Tensor::Zeros({dim}, /*requires_grad=*/true);
  RegisterParameter("gamma", gamma_);
  RegisterParameter("beta", beta_);
}

Tensor LayerNorm::Forward(const Tensor& x) const {
  return LayerNormOp(x, gamma_, beta_);
}

void LayerNorm::ForwardInference(const float* x, int64_t rows,
                                 float* out) const {
  // Mirrors LayerNormOp exactly: same accumulation order, same epsilon.
  const int64_t d = gamma_.size();
  const float* gv = gamma_.data().data();
  const float* bv = beta_.data().data();
  for (int64_t i = 0; i < rows; ++i) {
    const float* row = x + i * d;
    float mean = 0.0f;
    for (int64_t j = 0; j < d; ++j) mean += row[j];
    mean /= static_cast<float>(d);
    float var = 0.0f;
    for (int64_t j = 0; j < d; ++j) {
      const float c = row[j] - mean;
      var += c * c;
    }
    var /= static_cast<float>(d);
    const float istd = 1.0f / std::sqrt(var + 1e-5f);
    float* orow = out + i * d;
    for (int64_t j = 0; j < d; ++j) {
      const float nrm = (row[j] - mean) * istd;
      orow[j] = nrm * gv[j] + bv[j];
    }
  }
}

GruCell::GruCell(int64_t input_dim, int64_t hidden_dim, util::Rng& rng)
    : hidden_dim_(hidden_dim) {
  const float bx = std::sqrt(6.0f / static_cast<float>(input_dim + hidden_dim));
  const float bh = std::sqrt(3.0f / static_cast<float>(hidden_dim));
  w_x_ = Tensor::RandUniform({input_dim, 3 * hidden_dim}, rng, bx,
                             /*requires_grad=*/true);
  w_h_ = Tensor::RandUniform({hidden_dim, 3 * hidden_dim}, rng, bh,
                             /*requires_grad=*/true);
  bias_ = Tensor::Zeros({3 * hidden_dim}, /*requires_grad=*/true);
  RegisterParameter("w_x", w_x_);
  RegisterParameter("w_h", w_h_);
  RegisterParameter("bias", bias_);
}

Tensor GruCell::Forward(const Tensor& x, const Tensor& h) const {
  DELREC_CHECK_EQ(h.dim(1), hidden_dim_);
  // Gates from the input path (z|r|h blocks share one matmul).
  Tensor gx = AddBias(MatMul(x, w_x_), bias_);  // (N, 3H)
  Tensor gh = MatMul(h, w_h_);                  // (N, 3H)
  Tensor z = Sigmoid(Add(SliceCols(gx, 0, hidden_dim_),
                         SliceCols(gh, 0, hidden_dim_)));
  Tensor r = Sigmoid(Add(SliceCols(gx, hidden_dim_, hidden_dim_),
                         SliceCols(gh, hidden_dim_, hidden_dim_)));
  // Candidate uses the reset-gated hidden state: x·W_h + (r⊙h)·U_h. The U_h
  // block of gh was computed from un-gated h, so recompute it from r⊙h.
  Tensor rh = Mul(r, h);
  Tensor u_h = SliceCols(w_h_, 2 * hidden_dim_, hidden_dim_);
  Tensor candidate = Tanh(Add(SliceCols(gx, 2 * hidden_dim_, hidden_dim_),
                              MatMul(rh, u_h)));
  // h' = (1-z)⊙h + z⊙ĥ.
  Tensor one_minus_z = AddScalar(MulScalar(z, -1.0f), 1.0f);
  return Add(Mul(one_minus_z, h), Mul(z, candidate));
}

MultiHeadAttention::MultiHeadAttention(int64_t model_dim, int64_t num_heads,
                                       util::Rng& rng)
    : model_dim_(model_dim),
      num_heads_(num_heads),
      head_dim_(model_dim / num_heads),
      wq_(model_dim, model_dim, rng),
      wk_(model_dim, model_dim, rng),
      wv_(model_dim, model_dim, rng),
      wo_(model_dim, model_dim, rng) {
  DELREC_CHECK_EQ(head_dim_ * num_heads, model_dim)
      << "model_dim must be divisible by num_heads";
  RegisterModule("wq", &wq_);
  RegisterModule("wk", &wk_);
  RegisterModule("wv", &wv_);
  RegisterModule("wo", &wo_);
}

Tensor MultiHeadAttention::Forward(const Tensor& query,
                                   const Tensor& keys_values,
                                   const Tensor& additive_mask,
                                   util::Rng& rng, float dropout_p) const {
  DELREC_CHECK_EQ(query.dim(1), model_dim_);
  DELREC_CHECK_EQ(keys_values.dim(1), model_dim_);
  Tensor q = wq_.Forward(query);        // (Tq, D)
  Tensor k = wk_.Forward(keys_values);  // (Tk, D)
  Tensor v = wv_.Forward(keys_values);  // (Tk, D)
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  std::vector<Tensor> head_outputs;
  head_outputs.reserve(num_heads_);
  for (int64_t h = 0; h < num_heads_; ++h) {
    Tensor qh = SliceCols(q, h * head_dim_, head_dim_);
    Tensor kh = SliceCols(k, h * head_dim_, head_dim_);
    Tensor vh = SliceCols(v, h * head_dim_, head_dim_);
    Tensor scores = MulScalar(MatMul(qh, kh, false, /*trans_b=*/true), scale);
    if (additive_mask.defined()) scores = Add(scores, additive_mask);
    Tensor attention = Softmax(scores);
    attention = Dropout(attention, dropout_p, rng, training());
    head_outputs.push_back(MatMul(attention, vh));  // (Tq, head_dim)
  }
  return wo_.Forward(ConcatCols(head_outputs));
}

FeedForward::FeedForward(int64_t model_dim, int64_t hidden_dim, util::Rng& rng)
    : in_(model_dim, hidden_dim, rng), out_(hidden_dim, model_dim, rng) {
  RegisterModule("in", &in_);
  RegisterModule("out", &out_);
}

Tensor FeedForward::Forward(const Tensor& x, util::Rng& rng, float dropout_p,
                            bool training) const {
  Tensor hidden = Gelu(in_.Forward(x));
  hidden = Dropout(hidden, dropout_p, rng, training);
  return out_.Forward(hidden);
}

TransformerEncoderLayer::TransformerEncoderLayer(int64_t model_dim,
                                                 int64_t num_heads,
                                                 int64_t ffn_dim,
                                                 util::Rng& rng)
    : ln_attention_(model_dim),
      attention_(model_dim, num_heads, rng),
      ln_ffn_(model_dim),
      ffn_(model_dim, ffn_dim, rng) {
  RegisterModule("ln_attention", &ln_attention_);
  RegisterModule("attention", &attention_);
  RegisterModule("ln_ffn", &ln_ffn_);
  RegisterModule("ffn", &ffn_);
}

Tensor TransformerEncoderLayer::Forward(const Tensor& x,
                                        const Tensor& additive_mask,
                                        util::Rng& rng,
                                        float dropout_p) const {
  Tensor normed = ln_attention_.Forward(x);
  Tensor attended =
      attention_.Forward(normed, normed, additive_mask, rng, dropout_p);
  Tensor residual = Add(x, attended);
  Tensor ff = ffn_.Forward(ln_ffn_.Forward(residual), rng, dropout_p,
                           training());
  return Add(residual, ff);
}

Tensor CausalMask(int64_t length) {
  std::vector<float> mask(length * length, 0.0f);
  for (int64_t i = 0; i < length; ++i) {
    for (int64_t j = i + 1; j < length; ++j) mask[i * length + j] = -1e9f;
  }
  return Tensor::FromData({length, length}, std::move(mask));
}

}  // namespace delrec::nn
