#ifndef DELREC_NN_LAYERS_H_
#define DELREC_NN_LAYERS_H_

#include <cstdint>
#include <vector>

#include "nn/module.h"
#include "nn/ops.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace delrec::nn {

/// Affine layer y = x·W + b with W stored (in, out).
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, util::Rng& rng,
         bool use_bias = true);

  /// x: (N, in) → (N, out).
  Tensor Forward(const Tensor& x) const;

  /// Inference-only raw forward over row-major buffers: writes x·W + b into
  /// `out` (rows × out_features, must not alias x). Bit-identical per row to
  /// Forward() for any row count (the GEMM contract in nn/gemm.h makes each
  /// output row depend only on its input row), builds no autograd tape.
  void ForwardInference(const float* x, int64_t rows, float* out) const;

  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }
  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Tensor weight_;
  Tensor bias_;  // Undefined when use_bias == false.
};

/// Lookup table (V, D) with scatter-add gradients.
class Embedding : public Module {
 public:
  Embedding(int64_t count, int64_t dim, util::Rng& rng, float stddev = 0.02f);

  /// indices → (n, D).
  Tensor Forward(const std::vector<int64_t>& indices) const;

  Tensor table() const { return table_; }
  int64_t count() const { return count_; }
  int64_t dim() const { return dim_; }

 private:
  int64_t count_;
  int64_t dim_;
  Tensor table_;
};

/// Row-wise layer normalization with learned affine.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim);

  Tensor Forward(const Tensor& x) const;

  /// Inference-only raw row-wise forward (same arithmetic order and epsilon
  /// as LayerNormOp, so bit-identical to Forward()); `out` may alias x.
  void ForwardInference(const float* x, int64_t rows, float* out) const;

 private:
  Tensor gamma_;
  Tensor beta_;
};

/// Gated recurrent unit cell (GRU4Rec substrate). Gates follow Cho et al.:
///   z = σ(x·W_z + h·U_z + b_z), r = σ(x·W_r + h·U_r + b_r)
///   ĥ = tanh(x·W_h + (r⊙h)·U_h + b_h),  h' = (1-z)⊙h + z⊙ĥ
class GruCell : public Module {
 public:
  GruCell(int64_t input_dim, int64_t hidden_dim, util::Rng& rng);

  /// x: (N, input_dim), h: (N, hidden_dim) → new hidden (N, hidden_dim).
  Tensor Forward(const Tensor& x, const Tensor& h) const;

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  int64_t hidden_dim_;
  Tensor w_x_;  // (input_dim, 3·hidden) — z | r | h blocks.
  Tensor w_h_;  // (hidden_dim, 3·hidden)
  Tensor bias_;  // (3·hidden)
};

/// Multi-head self/cross attention over a single sequence (no batch dim).
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(int64_t model_dim, int64_t num_heads, util::Rng& rng);

  /// query: (Tq, D), key/value source: (Tk, D). `additive_mask` is an
  /// optional (Tq, Tk) tensor added to the attention logits (use -1e9 to
  /// block positions); pass an undefined Tensor for no mask.
  Tensor Forward(const Tensor& query, const Tensor& keys_values,
                 const Tensor& additive_mask, util::Rng& rng,
                 float dropout_p) const;

  int64_t num_heads() const { return num_heads_; }

 private:
  int64_t model_dim_;
  int64_t num_heads_;
  int64_t head_dim_;
  Linear wq_;
  Linear wk_;
  Linear wv_;
  Linear wo_;
};

/// Two-layer position-wise feed-forward block with GELU.
class FeedForward : public Module {
 public:
  FeedForward(int64_t model_dim, int64_t hidden_dim, util::Rng& rng);

  Tensor Forward(const Tensor& x, util::Rng& rng, float dropout_p,
                 bool training) const;

 private:
  Linear in_;
  Linear out_;
};

/// Pre-LN transformer encoder block: x + MHA(LN(x)); x + FF(LN(x)).
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(int64_t model_dim, int64_t num_heads,
                          int64_t ffn_dim, util::Rng& rng);

  /// x: (T, D); additive_mask optional (T, T).
  Tensor Forward(const Tensor& x, const Tensor& additive_mask,
                 util::Rng& rng, float dropout_p) const;

 private:
  LayerNorm ln_attention_;
  MultiHeadAttention attention_;
  LayerNorm ln_ffn_;
  FeedForward ffn_;
};

/// Builds a causal additive mask (T,T): 0 on/below diagonal, -1e9 above.
Tensor CausalMask(int64_t length);

}  // namespace delrec::nn

#endif  // DELREC_NN_LAYERS_H_
