#ifndef DELREC_NN_QUANT_H_
#define DELREC_NN_QUANT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace delrec::nn {

/// Per-output-channel symmetric int8 quantization (DESIGN.md §13).
///
/// A QuantTensor holds one weight matrix as R output channels of depth K:
/// channel j stores round(w / scale[j]) clamped to [-127, 127], with
/// scale[j] = maxabs(channel j) / 127 (scale 0 for an all-zero channel, whose
/// codes are all 0). Symmetric scales keep the int8 GEMM a pure integer
/// dot — no zero-point cross terms — so the SIMD kernels can be bit-identical
/// to the scalar reference (nn/gemm_int8.h).
///
/// Storage is the packed layout the int8 microkernels read directly:
/// channels are grouped into kInt8ChannelTile-wide panels and, within a
/// panel, each channel's next four depth values sit in one 32-bit lane
/// (panel-major, then k/4, then channel lane, then k%4). One 32-byte load
/// therefore yields 8 channels × 4 depth values with each dword lane holding
/// one channel's k-quad — exactly the operand shape of vpdpbusd, and (after
/// sign-extension to int16) also consumable by pmaddwd-style tiles as two
/// k-pairs per lane. K is padded to a multiple of 4 and the last panel's
/// missing channels are zero-filled; padded codes are 0 so they contribute
/// nothing to any dot product.
///
/// Alongside the codes, the tensor precomputes per-channel bias corrections
/// corr[j] = 128·Σ_k code(j,k). Activations are stored biased
/// (byte = code + 128, see QuantizeActivationRows), so an unsigned×signed
/// dot over the stored bytes equals the true signed dot plus corr[j]; the
/// vpdpbusd tile subtracts corr[j] once per tile to recover the exact signed
/// int32, and the signed tiles (which subtract the bias per byte instead)
/// never read it.

/// Channels per packed panel (the int8 kernels' NR).
inline constexpr int kInt8ChannelTile = 16;

/// Depth values per packed lane group (the vpdpbusd quad).
inline constexpr int kInt8KQuad = 4;

/// Maximum supported depth K. The widest intermediate any tile holds is the
/// biased unsigned×signed accumulation Σ_k (code+128)·bcode, bounded by
/// K·255·127 = K·32385; that must stay below 2^31, so K ≤ 66321. 65536 keeps
/// a round power-of-two bound and is far beyond any matrix in this codebase.
inline constexpr int64_t kInt8MaxDepth = 65536;

/// Byte offset of (channel, k) inside the packed buffer, given the padded
/// depth (packed_depth = K rounded up to a multiple of 4). Shared by the
/// pack routine, the scalar reference kernel, and tests.
inline int64_t PackedInt8Index(int64_t channel, int64_t k,
                               int64_t packed_depth) {
  const int64_t panel = channel / kInt8ChannelTile;
  const int64_t lane = channel % kInt8ChannelTile;
  return panel * packed_depth * kInt8ChannelTile +
         (k / kInt8KQuad) * (kInt8ChannelTile * kInt8KQuad) +
         lane * kInt8KQuad + (k % kInt8KQuad);
}

class QuantTensor {
 public:
  QuantTensor() = default;

  /// Quantizes a Linear weight stored (in, out) row-major — output channel j
  /// is column j (depth = in, channels = out), matching y = x·W.
  static QuantTensor FromColumns(const float* w, int64_t in, int64_t out);

  /// Quantizes a matrix stored (rows, cols) row-major with output channel i
  /// = row i (depth = cols, channels = rows) — the (V, D) token table shape
  /// used by the tied LM head's logits = hidden · tableᵀ.
  static QuantTensor FromRows(const float* w, int64_t rows, int64_t cols);

  bool defined() const { return channels_ > 0; }
  int64_t channels() const { return channels_; }
  int64_t depth() const { return depth_; }
  /// Depth rounded up to a multiple of 4 — the packed k extent and the row
  /// stride QuantizeActivationRows emits for the A operand.
  int64_t packed_depth() const {
    return (depth_ + kInt8KQuad - 1) & ~int64_t{kInt8KQuad - 1};
  }

  const int8_t* packed() const { return data_.data(); }
  const float* scales() const { return scales_.data(); }
  float scale(int64_t channel) const { return scales_[channel]; }

  /// Per-channel bias corrections 128·Σ_k code(channel, k), padded with
  /// zeros to whole panels so the vpdpbusd tile can load full vectors.
  const int32_t* corrections() const { return corrections_.data(); }

  /// Unpacked code at (channel, k) — test/debug accessor.
  int8_t At(int64_t channel, int64_t k) const {
    return data_[PackedInt8Index(channel, k, packed_depth())];
  }

  /// Dequantizes one channel: out[k] = scale(channel) · code(channel, k) for
  /// k < depth(). Used by the embedding gather when the token table is
  /// quantized.
  void DequantRow(int64_t channel, float* out) const;

  /// Bytes held by the packed codes, the fp32 scales, and the int32 bias
  /// corrections — the serving footprint of this matrix.
  size_t MemoryBytes() const {
    return data_.size() * sizeof(int8_t) + scales_.size() * sizeof(float) +
           corrections_.size() * sizeof(int32_t);
  }

 private:
  QuantTensor(int64_t channels, int64_t depth);

  int64_t channels_ = 0;
  int64_t depth_ = 0;
  std::vector<int8_t> data_;          // Packed panels, zero-padded.
  std::vector<float> scales_;         // One fp32 scale per channel.
  std::vector<int32_t> corrections_;  // 128·Σ codes, panel-padded.
};

/// Dynamic per-row symmetric quantization of activations: row i of `x`
/// (row-major, `depth` floats) becomes biased int8 codes at
/// out + i·packed_depth (packed_depth = depth rounded up to a multiple of 4)
/// with scales[i] = maxabs(row)/127. Each stored byte is code + 128
/// reinterpreted as int8 — the unsigned form vpdpbusd consumes — so a code
/// of 0 is the byte 0x80; padded tail bytes are 0x80 (biased zero) and an
/// all-zero row gets scale 0 and all-0x80 codes. Rounding is
/// round-to-nearest-even on v·(1/scale) (std::lrintf in the scalar path,
/// cvtps2dq under the default MXCSR in the SIMD path — the same rounding),
/// clamped to [-127, 127]; the two paths produce identical bytes and are
/// cross-checked by tests/gemm_kernel_test.cc.
void QuantizeActivationRows(const float* x, int64_t rows, int64_t depth,
                            int8_t* out, float* scales);

}  // namespace delrec::nn

#endif  // DELREC_NN_QUANT_H_
