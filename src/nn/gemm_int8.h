#ifndef DELREC_NN_GEMM_INT8_H_
#define DELREC_NN_GEMM_INT8_H_

#include <cstdint>
#include <string>

#include "nn/quant.h"

namespace delrec::nn {

/// Packed int8×int8→int32 GEMM with fp32 de-scale (DESIGN.md §13).
///
/// Computes, for quantized activations A (m rows, per-row scales) against a
/// QuantTensor B (N output channels, per-channel scales):
///
///   C(i,j) (+)= float(Σ_k Aq(i,k)·Bq(j,k)) · (a_scale[i]·b_scale[j])
///               [+ bias[j]]
///
/// The integer dot is exact — every kernel computes the same int32 regardless
/// of lane width or summation order — so the SIMD paths are bit-identical to
/// the scalar reference by construction, a stronger guarantee than the fp32
/// kernels need. The only floating-point arithmetic is the de-scale epilogue,
/// which all kernels share (one scalar function, compiled with
/// -ffp-contract=off like nn/gemm.cc): cast, multiply by the combined scale,
/// optional bias add, optional accumulate into C — in that fixed order.
///
/// The fast tile is AVX-VNNI vpdpbusd: activations are stored biased
/// (byte = code + 128, the unsigned operand vpdpbusd requires) and the
/// biased sums are corrected with the QuantTensor's precomputed per-channel
/// 128·Σ codes — an exact integer identity, so bit-exactness survives. The
/// fallback SIMD tiles use sign-extended pmaddwd (madd_epi16) rather than
/// maddubs: maddubs saturates its int16 pair sums (2·255·127 overflows),
/// which would break exactness; madd_epi16 pair sums are at most 2·127·127
/// and every int32 accumulator stays exact for any depth ≤ kInt8MaxDepth
/// (nn/quant.h). Dispatch follows nn/gemm.cc: __builtin_cpu_supports picks
/// AVX-VNNI (avx2+avxvnni), AVX-512 (avx512f+avx512bw), AVX2, or the
/// portable scalar tile once per process.
///
/// Threading mirrors GemmRows: C rows are statically partitioned across
/// util::ParallelConfig threads when m·N·K clears ParallelMinWork(); exact
/// integer accumulation plus the per-element epilogue make the result
/// bit-identical at every thread count and chunking.

/// Activation rows per microkernel tile (the int8 MR).
inline constexpr int kInt8RowTile = 4;

/// C (m, b.channels()) = descale(Aq · Bqᵀ). `aq` holds m packed rows of
/// stride b.packed_depth() with per-row scales `a_scales` (both as produced
/// by QuantizeActivationRows against depth == b.depth()). `bias` is an
/// optional fp32 vector of b.channels() added before the accumulate step
/// (nullptr for none).
void Int8Gemm(const int8_t* aq, const float* a_scales, const QuantTensor& b,
              const float* bias, float* c, int64_t m, bool accumulate);

/// Serial scalar reference — the exactness oracle for the SIMD tiles, always
/// single-threaded and ISA-independent.
void Int8GemmRef(const int8_t* aq, const float* a_scales,
                 const QuantTensor& b, const float* bias, float* c, int64_t m,
                 bool accumulate);

/// The dispatched int8 tile's ISA tier: "avxvnni", "avx512", "avx2", or
/// "scalar".
std::string Int8KernelIsa();

/// Human-readable kernel summary (tile geometry, ISA, instruction family)
/// printed at bench startup alongside GemmKernelConfig().
std::string Int8GemmKernelConfig();

}  // namespace delrec::nn

#endif  // DELREC_NN_GEMM_INT8_H_
