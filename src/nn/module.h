#ifndef DELREC_NN_MODULE_H_
#define DELREC_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "nn/tensor.h"

namespace delrec::nn {

/// Base class for trainable components. Parameters and child modules are
/// registered explicitly (no reflection); Parameters() flattens the tree in
/// registration order, which also defines the StateDump()/LoadState() layout.
class Module {
 public:
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  virtual ~Module() = default;

  /// All parameters of this module and its children, registration order.
  std::vector<Tensor> Parameters() const;

  /// (qualified-name, tensor) pairs, e.g. "encoder.layer0.wq.weight".
  std::vector<std::pair<std::string, Tensor>> NamedParameters() const;

  /// Total scalar parameter count.
  int64_t ParameterCount() const;

  /// Serializes every parameter's values (registration order).
  std::vector<float> StateDump() const;
  /// Restores parameter values from a StateDump of an identically shaped
  /// module. Aborts on size mismatch.
  void LoadState(const std::vector<float>& state);

  /// Recursively toggles training mode (controls dropout).
  void SetTraining(bool training);
  bool training() const { return training_; }

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  /// Recursively sets requires_grad on every parameter (freeze/unfreeze).
  void SetRequiresGrad(bool requires_grad);

 protected:
  /// Registers a parameter (the tensor should have requires_grad = true).
  void RegisterParameter(std::string name, Tensor parameter);
  /// Registers a child; `child` must outlive this module (usually a member).
  void RegisterModule(std::string name, Module* child);

 private:
  void CollectNamed(const std::string& prefix,
                    std::vector<std::pair<std::string, Tensor>>& out) const;

  std::vector<std::pair<std::string, Tensor>> parameters_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

/// L2-norm gradient clipping over a parameter set; returns the pre-clip norm.
float ClipGradNorm(const std::vector<Tensor>& parameters, float max_norm);

}  // namespace delrec::nn

#endif  // DELREC_NN_MODULE_H_
