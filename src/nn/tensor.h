#ifndef DELREC_NN_TENSOR_H_
#define DELREC_NN_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"

namespace delrec::nn {

class Tensor;

/// Reference-counted tensor storage plus the autodiff tape node.
///
/// DELRec uses a define-by-run tape: every differentiable op allocates a new
/// TensorImpl whose `backward_fn` scatters the node's gradient into its
/// parents. `Tensor::Backward()` topologically sorts the reachable graph and
/// runs the tape in reverse. Ops short-circuit tape construction when no
/// parent requires gradients, so inference builds no graph at all.
struct TensorImpl {
  TensorImpl() = default;
  TensorImpl(const TensorImpl&) = delete;
  TensorImpl& operator=(const TensorImpl&) = delete;
  /// Returns data and grad to util::BufferPool::Global(), so tape-scoped
  /// activations recycle their buffers as soon as the tape releases them.
  ~TensorImpl();

  std::vector<int64_t> shape;
  std::vector<float> data;
  std::vector<float> grad;  // Lazily allocated to data.size().
  bool requires_grad = false;
  std::vector<Tensor> parents;
  // Propagates this->grad into parents' grads. Null for leaves.
  std::function<void(TensorImpl&)> backward_fn;

  int64_t size() const { return static_cast<int64_t>(data.size()); }
  /// Ensures grad is allocated (zero-filled) and returns it.
  std::vector<float>& EnsureGrad();
};

/// Value-semantics handle to a TensorImpl (cheap to copy, shared storage).
class Tensor {
 public:
  /// Null handle; defined() is false.
  Tensor() = default;

  // -- Factories ------------------------------------------------------------

  static Tensor Zeros(std::vector<int64_t> shape, bool requires_grad = false);
  static Tensor Full(std::vector<int64_t> shape, float value,
                     bool requires_grad = false);
  static Tensor FromData(std::vector<int64_t> shape, std::vector<float> data,
                         bool requires_grad = false);
  /// Gaussian init with given stddev (used for parameter initialization).
  static Tensor Randn(std::vector<int64_t> shape, util::Rng& rng, float stddev,
                      bool requires_grad = false);
  /// Uniform init in [-bound, bound].
  static Tensor RandUniform(std::vector<int64_t> shape, util::Rng& rng,
                            float bound, bool requires_grad = false);
  /// Internal: wraps a freshly built node (used by ops).
  static Tensor FromImpl(std::shared_ptr<TensorImpl> impl);

  // -- Introspection ---------------------------------------------------------

  bool defined() const { return impl_ != nullptr; }
  const std::vector<int64_t>& shape() const;
  int ndim() const;
  int64_t dim(int index) const;
  int64_t size() const;
  bool requires_grad() const;
  void set_requires_grad(bool requires_grad);

  std::vector<float>& data();
  const std::vector<float>& data() const;
  /// Gradient buffer; allocates on first access.
  std::vector<float>& grad();
  /// True once a gradient buffer exists.
  bool has_grad() const;

  /// Value of a single-element tensor.
  float item() const;
  float at(std::initializer_list<int64_t> index) const;

  // -- Autodiff ---------------------------------------------------------------

  /// Runs reverse-mode autodiff from this scalar node. Accumulates into the
  /// .grad() of every reachable tensor with requires_grad. After the pass the
  /// tape edges of interior nodes are released so activation memory is freed
  /// even if the caller keeps the loss tensor alive.
  void Backward();

  /// Zeroes this tensor's gradient buffer if allocated.
  void ZeroGrad();

  /// Detaches from the tape: returns a leaf sharing NO storage (deep copy).
  Tensor DetachCopy() const;

  TensorImpl* impl() const { return impl_.get(); }
  const std::shared_ptr<TensorImpl>& impl_ptr() const { return impl_; }

  std::string ShapeString() const;

 private:
  std::shared_ptr<TensorImpl> impl_;
};

/// Total element count implied by a shape.
int64_t NumElements(const std::vector<int64_t>& shape);

/// True when ops should record tape nodes (default). Inference paths disable
/// recording with a NoGradGuard, making every op a plain leaf computation.
bool GradModeEnabled();

/// RAII guard that disables tape recording in its scope (nestable).
class NoGradGuard {
 public:
  NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;
  ~NoGradGuard();

 private:
  bool previous_;
};

}  // namespace delrec::nn

#endif  // DELREC_NN_TENSOR_H_
