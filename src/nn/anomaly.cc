#include "nn/anomaly.h"

#include <cmath>

#include "util/check.h"

namespace delrec::nn {

bool LossAnomalyGuard::ShouldSkip(float loss) {
  if (!options_.enabled) return false;
  const bool non_finite = !std::isfinite(loss);
  const bool spike = healthy_steps_ >= options_.warmup_steps &&
                     loss > options_.spike_factor * (ema_ + 1e-3f);
  if (non_finite || spike) {
    ++consecutive_;
    ++total_;
    return true;
  }
  consecutive_ = 0;
  ema_ = healthy_steps_ == 0
             ? loss
             : options_.ema_decay * ema_ + (1.0f - options_.ema_decay) * loss;
  ++healthy_steps_;
  return false;
}

void LossAnomalyGuard::ReportParameterAnomaly() {
  if (!options_.enabled) return;
  ++consecutive_;
  ++total_;
}

util::Status LossAnomalyGuard::status() const {
  if (!exhausted()) return util::Status::Ok();
  return util::Status::Internal(
      "training diverged: " + std::to_string(consecutive_) +
      " consecutive anomalous batches (" + std::to_string(total_) +
      " total)");
}

std::vector<float> LossAnomalyGuard::StateDump() const {
  return {ema_, static_cast<float>(healthy_steps_),
          static_cast<float>(consecutive_), static_cast<float>(total_)};
}

util::Status LossAnomalyGuard::LoadState(const std::vector<float>& state) {
  if (state.size() != 4) {
    return util::Status::InvalidArgument("bad LossAnomalyGuard state size");
  }
  ema_ = state[0];
  healthy_steps_ = static_cast<int64_t>(state[1]);
  consecutive_ = static_cast<int64_t>(state[2]);
  total_ = static_cast<int64_t>(state[3]);
  return util::Status::Ok();
}

bool AllParametersFinite(const std::vector<Tensor>& parameters) {
  for (const Tensor& parameter : parameters) {
    for (float value : parameter.data()) {
      if (!std::isfinite(value)) return false;
    }
  }
  return true;
}

std::vector<std::vector<float>> SnapshotParameterData(
    const std::vector<Tensor>& parameters) {
  std::vector<std::vector<float>> snapshot;
  snapshot.reserve(parameters.size());
  for (const Tensor& parameter : parameters) {
    snapshot.push_back(parameter.data());
  }
  return snapshot;
}

void RestoreParameterData(const std::vector<Tensor>& parameters,
                          const std::vector<std::vector<float>>& snapshot) {
  DELREC_CHECK_EQ(parameters.size(), snapshot.size());
  for (size_t i = 0; i < parameters.size(); ++i) {
    Tensor parameter = parameters[i];
    parameter.data() = snapshot[i];
  }
}

}  // namespace delrec::nn
