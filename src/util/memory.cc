#include "util/memory.h"

#include <cstdio>
#include <cstring>

namespace delrec::util {
namespace {

int64_t ReadStatusField(const char* field) {
  FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return 0;
  char line[256];
  int64_t kib = 0;
  const size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0) {
      long long value = 0;
      if (std::sscanf(line + field_len, " %lld", &value) == 1) kib = value;
      break;
    }
  }
  std::fclose(file);
  return kib * 1024;
}

}  // namespace

int64_t PeakRssBytes() { return ReadStatusField("VmHWM:"); }

int64_t CurrentRssBytes() { return ReadStatusField("VmRSS:"); }

}  // namespace delrec::util
