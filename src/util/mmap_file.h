#ifndef DELREC_UTIL_MMAP_FILE_H_
#define DELREC_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace delrec::util {

/// Read-only memory-mapped file: the zero-copy substrate of the on-disk data
/// plane (data/columnar.h). The mapping is private and read-only; all
/// accessors are bounds-checked and return typed errors instead of touching
/// memory past the file, so a truncated file can never fault — callers see
/// kDataLoss from View() (or from their own length validation) instead.
///
/// Out-of-core discipline: resident pages of a mapping count toward the
/// process RSS once touched. Sequential consumers (checksum verification,
/// EventStream scans) call Advise*() to release consumed windows so peak RSS
/// stays bounded by the window size, not the file size. Both advise calls are
/// best-effort performance hints — correctness never depends on them.
class MemoryMappedFile {
 public:
  /// Maps `path` read-only. NotFound when the file does not exist,
  /// kUnavailable on transient open/map failures (and from the
  /// `data.mmap.open` failpoint). Empty files map successfully with
  /// size() == 0.
  static StatusOr<MemoryMappedFile> Open(const std::string& path);

  MemoryMappedFile() = default;
  ~MemoryMappedFile();
  MemoryMappedFile(MemoryMappedFile&& other) noexcept;
  MemoryMappedFile& operator=(MemoryMappedFile&& other) noexcept;
  MemoryMappedFile(const MemoryMappedFile&) = delete;
  MemoryMappedFile& operator=(const MemoryMappedFile&) = delete;

  const unsigned char* data() const { return data_; }
  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }
  bool mapped() const { return data_ != nullptr || size_ == 0; }

  /// Pointer to `length` bytes at `offset`, or kDataLoss when the range runs
  /// past the end of the file (the truncation signature).
  StatusOr<const unsigned char*> View(uint64_t offset, uint64_t length) const;

  /// Declares the access pattern sequential (readahead hint).
  void AdviseSequential() const;

  /// Releases the resident pages fully covered by [offset, offset+length):
  /// the range is shrunk to page boundaries and MADV_DONTNEED'd. Re-reading
  /// released pages refaults them transparently.
  void AdviseDontNeed(uint64_t offset, uint64_t length) const;

 private:
  const unsigned char* data_ = nullptr;
  uint64_t size_ = 0;
  std::string path_;
};

}  // namespace delrec::util

#endif  // DELREC_UTIL_MMAP_FILE_H_
