#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace delrec::util {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> pieces;
  std::string current;
  for (char c : text) {
    if (c == delimiter) {
      if (!current.empty()) pieces.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) pieces.push_back(current);
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces,
                 const std::string& separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += separator;
    out += pieces[i];
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(c));
  return out;
}

std::string FormatFixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace delrec::util
