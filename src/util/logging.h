#ifndef DELREC_UTIL_LOGGING_H_
#define DELREC_UTIL_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace delrec::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Returns the process-wide minimum level below which log lines are dropped.
LogLevel MinLogLevel();

/// Sets the process-wide minimum log level (e.g. silence training chatter in
/// benchmarks with SetMinLogLevel(LogLevel::kWarning)).
void SetMinLogLevel(LogLevel level);

namespace internal {

// One log line; flushes to stderr (with level prefix) on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace delrec::util

#define DELREC_LOG(level)                                       \
  ::delrec::util::internal::LogLine(                            \
      ::delrec::util::LogLevel::k##level, __FILE__, __LINE__)

#endif  // DELREC_UTIL_LOGGING_H_
