#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "util/check.h"

namespace delrec::util {

Json Json::Bool(bool value) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = value;
  return j;
}

Json Json::Number(double value) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = value;
  return j;
}

Json Json::Str(std::string value) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(value);
  return j;
}

Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::bool_value() const {
  DELREC_CHECK(type_ == Type::kBool);
  return bool_;
}

double Json::number() const {
  DELREC_CHECK(type_ == Type::kNumber);
  return number_;
}

const std::string& Json::str() const {
  DELREC_CHECK(type_ == Type::kString);
  return string_;
}

void Json::Append(Json value) {
  DELREC_CHECK(type_ == Type::kArray);
  array_.push_back(std::move(value));
}

size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

const Json& Json::at(size_t index) const {
  DELREC_CHECK(type_ == Type::kArray);
  DELREC_CHECK_LT(index, array_.size());
  return array_[index];
}

void Json::Set(const std::string& key, Json value) {
  DELREC_CHECK(type_ == Type::kObject);
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(key, std::move(value));
}

const Json* Json::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void AppendNumber(std::string& out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no inf/nan; record null (compare treats it as missing).
    out += "null";
    return;
  }
  if (value == static_cast<int64_t>(value) && std::fabs(value) < 1e15) {
    out += std::to_string(static_cast<int64_t>(value));
    return;
  }
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  out += buffer;
}

void Indent(std::string& out, int indent) {
  out.append(static_cast<size_t>(indent) * 2, ' ');
}

}  // namespace

void Json::DumpTo(std::string& out, int indent) const {
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kNumber: AppendNumber(out, number_); return;
    case Type::kString: AppendEscaped(out, string_); return;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out += "[\n";
      for (size_t i = 0; i < array_.size(); ++i) {
        Indent(out, indent + 1);
        array_[i].DumpTo(out, indent + 1);
        if (i + 1 < array_.size()) out += ",";
        out += "\n";
      }
      Indent(out, indent);
      out += "]";
      return;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      for (size_t i = 0; i < object_.size(); ++i) {
        Indent(out, indent + 1);
        AppendEscaped(out, object_[i].first);
        out += ": ";
        object_[i].second.DumpTo(out, indent + 1);
        if (i + 1 < object_.size()) out += ",";
        out += "\n";
      }
      Indent(out, indent);
      out += "}";
      return;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(out, 0);
  out += "\n";
  return out;
}

namespace {

/// Recursive-descent parser over the emitted JSON subset (plus numbers in
/// scientific notation, nested containers, escaped strings).
class Parser {
 public:
  Parser(const std::string& text) : text_(text) {}

  Status Parse(Json* out) {
    Status status = ParseValue(out);
    if (!status.ok()) return status;
    SkipWhitespace();
    if (pos_ != text_.size()) return Error("trailing content");
    return Status::Ok();
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t len = std::string_view(literal).size();
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
            // Non-ASCII escapes are preserved as '?' — the bench schema
            // never emits them.
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += h - '0';
              else if (h >= 'a' && h <= 'f') code += h - 'a' + 10;
              else if (h >= 'A' && h <= 'F') code += h - 'A' + 10;
              else return Error("bad \\u escape");
            }
            out->push_back(code < 0x80 ? static_cast<char>(code) : '?');
            break;
          }
          default: return Error("unknown escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return Error("unterminated string");
  }

  Status ParseValue(Json* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      std::string s;
      Status status = ParseString(&s);
      if (!status.ok()) return status;
      *out = Json::Str(std::move(s));
      return Status::Ok();
    }
    if (ConsumeLiteral("true")) {
      *out = Json::Bool(true);
      return Status::Ok();
    }
    if (ConsumeLiteral("false")) {
      *out = Json::Bool(false);
      return Status::Ok();
    }
    if (ConsumeLiteral("null")) {
      *out = Json::Null();
      return Status::Ok();
    }
    return ParseNumber(out);
  }

  Status ParseNumber(Json* out) {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("bad number " + token);
    *out = Json::Number(value);
    return Status::Ok();
  }

  Status ParseArray(Json* out) {
    if (!Consume('[')) return Error("expected [");
    *out = Json::Array();
    if (Consume(']')) return Status::Ok();
    while (true) {
      Json element;
      Status status = ParseValue(&element);
      if (!status.ok()) return status;
      out->Append(std::move(element));
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Error("expected , or ]");
    }
  }

  Status ParseObject(Json* out) {
    if (!Consume('{')) return Error("expected {");
    *out = Json::Object();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipWhitespace();
      std::string key;
      Status status = ParseString(&key);
      if (!status.ok()) return status;
      if (!Consume(':')) return Error("expected :");
      Json value;
      status = ParseValue(&value);
      if (!status.ok()) return status;
      out->Set(key, std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Error("expected , or }");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Status Json::Parse(const std::string& text, Json* out) {
  return Parser(text).Parse(out);
}

}  // namespace delrec::util
