#include "util/buffer_pool.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string_view>

namespace delrec::util {

namespace {

bool PoolEnabledFromEnv() {
  const char* env = std::getenv("DELREC_BUFFER_POOL");
  return env == nullptr || std::string_view(env) != "0";
}

}  // namespace

BufferPool& BufferPool::Global() {
  // Leaky singleton: TensorImpl destructors may run during static teardown
  // and must still find a live pool.
  static BufferPool* pool = [] {
    auto* p = new BufferPool();
    p->SetEnabled(PoolEnabledFromEnv());
    return p;
  }();
  return *pool;
}

BufferPool::BufferPool() = default;

int BufferPool::CeilBucket(size_t n) {
  size_t capacity = kMinBucketFloats;
  int bucket = 6;  // log2(kMinBucketFloats).
  while (capacity < n && bucket < kNumBuckets - 1) {
    capacity <<= 1;
    ++bucket;
  }
  return bucket;
}

int BufferPool::FloorBucket(size_t capacity) {
  if (capacity < kMinBucketFloats) return -1;
  int bucket = 6;
  size_t threshold = kMinBucketFloats;
  while ((threshold << 1) <= capacity && bucket < kNumBuckets - 1) {
    threshold <<= 1;
    ++bucket;
  }
  return bucket;
}

std::vector<float> BufferPool::Acquire(size_t n) {
  if (n == 0) return {};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (enabled_) {
      const int bucket = CeilBucket(n);
      // The ceil bucket guarantees fit; peeking one bucket up recycles
      // slightly-larger buffers instead of allocating.
      for (int b = bucket; b < std::min(bucket + 2, kNumBuckets); ++b) {
        if (!buckets_[b].empty()) {
          std::vector<float> buffer = std::move(buckets_[b].back());
          buckets_[b].pop_back();
          cached_bytes_ -= buffer.capacity() * sizeof(float);
          ++stats_.pool_hits;
          buffer.resize(n);
          return buffer;
        }
      }
    }
    ++stats_.fresh_allocations;
  }
  std::vector<float> buffer;
  // Reserve the full bucket capacity so the buffer re-enters the same
  // bucket on release whatever size it was used at.
  buffer.reserve(size_t{1} << CeilBucket(n));
  buffer.resize(n);
  return buffer;
}

std::vector<float> BufferPool::AcquireZeroed(size_t n) {
  std::vector<float> buffer = Acquire(n);
  std::fill(buffer.begin(), buffer.end(), 0.0f);
  return buffer;
}

std::vector<float> BufferPool::AcquireCopy(const std::vector<float>& src) {
  std::vector<float> buffer = Acquire(src.size());
  std::copy(src.begin(), src.end(), buffer.begin());
  return buffer;
}

std::shared_ptr<std::vector<float>> BufferPool::AcquireShared(size_t n) {
  auto* box = new std::vector<float>(Acquire(n));
  return std::shared_ptr<std::vector<float>>(
      box, [this](std::vector<float>* b) {
        Release(std::move(*b));
        delete b;
      });
}

std::shared_ptr<std::vector<float>> BufferPool::AcquireSharedCopy(
    const std::vector<float>& src) {
  auto shared = AcquireShared(src.size());
  std::copy(src.begin(), src.end(), shared->begin());
  return shared;
}

void BufferPool::Release(std::vector<float>&& buffer) {
  if (buffer.capacity() == 0) return;
  const size_t bytes = buffer.capacity() * sizeof(float);
  std::lock_guard<std::mutex> lock(mutex_);
  const int bucket = FloorBucket(buffer.capacity());
  if (!enabled_ || bucket < 0 || cached_bytes_ + bytes > max_cached_bytes_) {
    ++stats_.releases_dropped;
    // buffer frees on scope exit.
    std::vector<float> dropped = std::move(buffer);
    return;
  }
  cached_bytes_ += bytes;
  ++stats_.releases_cached;
  buckets_[bucket].push_back(std::move(buffer));
}

BufferPool::Stats BufferPool::GetStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats = stats_;
  stats.cached_bytes = cached_bytes_;
  stats.cached_buffers = 0;
  for (const auto& bucket : buckets_) stats.cached_buffers += bucket.size();
  return stats;
}

void BufferPool::ResetStatCounters() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.pool_hits = 0;
  stats_.fresh_allocations = 0;
  stats_.releases_cached = 0;
  stats_.releases_dropped = 0;
}

void BufferPool::Trim() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& bucket : buckets_) {
    bucket.clear();
    bucket.shrink_to_fit();
  }
  cached_bytes_ = 0;
}

void BufferPool::SetEnabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_ = enabled;
}

bool BufferPool::enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return enabled_;
}

void BufferPool::SetMaxCachedBytes(size_t max_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  max_cached_bytes_ = max_bytes;
}

ScopedArena::ScopedArena(BufferPool* pool) : pool_(pool) {}

ScopedArena::~ScopedArena() {
  for (auto& chunk : chunks_) pool_->Release(std::move(chunk));
}

float* ScopedArena::Alloc(size_t n) {
  if (n == 0) n = 1;
  while (current_chunk_ < chunks_.size()) {
    std::vector<float>& chunk = chunks_[current_chunk_];
    if (offset_ + n <= chunk.size()) {
      float* out = chunk.data() + offset_;
      offset_ += n;
      allocated_floats_ += n;
      return out;
    }
    ++current_chunk_;
    offset_ = 0;
  }
  // Grow geometrically so long-lived arenas settle into few chunks.
  const size_t last = chunks_.empty() ? 0 : chunks_.back().size();
  chunks_.push_back(pool_->Acquire(std::max({n, 2 * last, size_t{1024}})));
  current_chunk_ = chunks_.size() - 1;
  offset_ = n;
  allocated_floats_ += n;
  return chunks_.back().data();
}

void ScopedArena::Reset() {
  current_chunk_ = 0;
  offset_ = 0;
  allocated_floats_ = 0;
}

}  // namespace delrec::util
