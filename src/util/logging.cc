#include "util/logging.h"

#include <atomic>

namespace delrec::util {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

LogLevel MinLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level));
}

namespace internal {

LogLine::LogLine(LogLevel level, const char* file, int line)
    : enabled_(level >= MinLogLevel()) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogLine::~LogLine() {
  if (enabled_) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
}

}  // namespace internal
}  // namespace delrec::util
