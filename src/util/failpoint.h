#ifndef DELREC_UTIL_FAILPOINT_H_
#define DELREC_UTIL_FAILPOINT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace delrec::util {

/// Fault-injection registry. Code threads named failpoints through its I/O
/// and training paths (`Failpoints::Instance().Check("blobfile.write")`);
/// tests — or the `DELREC_FAILPOINTS` environment variable — arm them to
/// simulate crashes, transient I/O errors, and silent data corruption.
///
/// Modes:
///  - kFail:    Check() returns kUnavailable while armed.
///  - kCorrupt: Check() stays OK but ShouldCorrupt() reports true while
///              armed; the call site is responsible for corrupting its own
///              bytes (e.g. BlobFile flips a payload byte).
///
/// Each armed point fires `count` times and then disarms itself; a count of
/// -1 means "fire forever". All firings are tallied in hits() even after the
/// point disarms.
///
/// Environment syntax (comma-separated, parsed once at first Instance() use):
///   DELREC_FAILPOINTS="blobfile.write=fail:2,blobfile.read.corrupt=corrupt"
/// i.e. `name=fail[:count]` or `name=corrupt[:count]`.
class Failpoints {
 public:
  enum class Mode { kFail, kCorrupt };

  /// Process-wide registry (thread-safe). Loads DELREC_FAILPOINTS on first
  /// use.
  static Failpoints& Instance();

  /// Arms a failpoint. count = -1 fires forever, count = N fires N times.
  void Arm(const std::string& name, Mode mode, int count = -1);
  /// Disarms one failpoint (no-op when not armed).
  void Disarm(const std::string& name);
  /// Disarms everything and resets hit counters (test teardown).
  void Reset();

  /// Consults a kFail point: returns kUnavailable while armed, OK otherwise
  /// (including for points armed in kCorrupt mode).
  Status Check(const std::string& name);

  /// Consults a kCorrupt point: true while armed in corrupt mode.
  bool ShouldCorrupt(const std::string& name);

  /// Total times the named point has fired (across arm/disarm cycles).
  int64_t hits(const std::string& name) const;

  /// Parses a DELREC_FAILPOINTS-style spec and arms the listed points.
  /// InvalidArgument on malformed syntax (nothing is armed in that case).
  Status ArmFromSpec(const std::string& spec);

 private:
  Failpoints();

  struct Armed {
    Mode mode = Mode::kFail;
    int remaining = -1;  // -1 = unbounded.
  };

  // Returns true when the point fires; consumes one count.
  bool Fire(const std::string& name, Mode mode);

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Armed> armed_;
  std::unordered_map<std::string, int64_t> hits_;
};

}  // namespace delrec::util

#endif  // DELREC_UTIL_FAILPOINT_H_
