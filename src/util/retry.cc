#include "util/retry.h"

#include <chrono>
#include <thread>

#include "util/check.h"
#include "util/logging.h"

namespace delrec::util {

bool IsRetryableError(const Status& status) {
  return status.code() == Status::Code::kUnavailable ||
         status.code() == Status::Code::kInternal;
}

Status Retry(const RetryOptions& options,
             const std::function<Status()>& operation) {
  DELREC_CHECK_GE(options.max_attempts, 1);
  double backoff_ms = options.base_backoff_ms;
  Status status = Status::Ok();
  for (int attempt = 1; attempt <= options.max_attempts; ++attempt) {
    if (attempt > 1 && backoff_ms >= 1.0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<int64_t>(backoff_ms)));
      backoff_ms *= options.backoff_multiplier;
    }
    status = operation();
    if (status.ok() || !IsRetryableError(status)) return status;
    if (attempt < options.max_attempts) {
      DELREC_LOG(Warning) << "retrying (attempt " << attempt + 1 << "/"
                          << options.max_attempts
                          << ") after: " << status.ToString();
    }
  }
  return status;
}

}  // namespace delrec::util
