#ifndef DELREC_UTIL_BUFFER_POOL_H_
#define DELREC_UTIL_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace delrec::util {

/// Size-bucketed recycling pool for float buffers (DESIGN.md §10).
///
/// Every tensor in the tape allocates a data buffer, most ops allocate a
/// gradient buffer, and GEMMs allocate pack panels — at steady state a
/// training epoch churns through the same buffer sizes over and over. The
/// pool keeps released `std::vector<float>`s on per-size free lists and
/// hands them back by move, so a warm epoch performs near-zero heap
/// allocations on the tensor hot path.
///
/// Ownership rules:
///  * `Acquire*` transfers ownership to the caller; returning the buffer via
///    `Release` is optional (a dropped buffer just frees normally).
///  * `TensorImpl` releases its data/grad buffers from its destructor, which
///    is how tape-scoped reuse happens without any explicit scoping.
///  * `AcquireShared` wraps the buffer in a shared_ptr whose deleter releases
///    back to the pool — used for saved activations / dropout masks captured
///    inside backward closures (std::function requires copyable captures).
///
/// Buckets are powers of two, with capacities rounded up to at least
/// `kMinBucketFloats` so even scalar tensors recycle. A released buffer with
/// capacity c lands in bucket floor(log2(c)); an acquire of n elements takes
/// from bucket ceil(log2(max(n, kMinBucketFloats))), so every pooled buffer
/// is guaranteed to fit its request without reallocating.
///
/// Thread-safe: a single mutex guards the free lists. The release→acquire
/// handoff across threads is sequenced by that mutex, so reading recycled
/// (unspecified) contents after a full overwrite is race-free under TSan.
class BufferPool {
 public:
  /// Smallest pooled capacity (floats). Requests below this are rounded up.
  static constexpr size_t kMinBucketFloats = 64;

  /// Process-wide pool (never destroyed, so TensorImpl destructors running
  /// during static teardown stay safe). DELREC_BUFFER_POOL=0 in the
  /// environment disables recycling (every acquire allocates fresh).
  static BufferPool& Global();

  BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Buffer of size n with unspecified contents — callers must fully
  /// overwrite before reading.
  std::vector<float> Acquire(size_t n);
  /// Buffer of size n, zero-filled.
  std::vector<float> AcquireZeroed(size_t n);
  /// Buffer holding a copy of src.
  std::vector<float> AcquireCopy(const std::vector<float>& src);

  /// Shared-ownership variants: the deleter returns the buffer to this pool.
  std::shared_ptr<std::vector<float>> AcquireShared(size_t n);
  std::shared_ptr<std::vector<float>> AcquireSharedCopy(
      const std::vector<float>& src);

  /// Returns a buffer to the free lists (no-op for empty buffers; frees
  /// instead of caching when disabled or over the cache cap).
  void Release(std::vector<float>&& buffer);

  struct Stats {
    uint64_t pool_hits = 0;          // Acquires served from a free list.
    uint64_t fresh_allocations = 0;  // Acquires that had to heap-allocate.
    uint64_t releases_cached = 0;
    uint64_t releases_dropped = 0;   // Freed (disabled / over cap / empty).
    size_t cached_buffers = 0;
    size_t cached_bytes = 0;
  };
  Stats GetStats() const;
  /// Zeroes the monotonic counters (cached_buffers/bytes are live values).
  void ResetStatCounters();

  /// Frees every cached buffer.
  void Trim();

  void SetEnabled(bool enabled);
  bool enabled() const;
  /// Cache cap in bytes; releases beyond it are freed (default 512 MiB).
  void SetMaxCachedBytes(size_t max_bytes);

 private:
  static constexpr int kNumBuckets = 40;

  static int CeilBucket(size_t n);
  static int FloorBucket(size_t capacity);

  mutable std::mutex mutex_;
  std::vector<std::vector<float>> buckets_[kNumBuckets];
  bool enabled_ = true;
  size_t max_cached_bytes_ = size_t{512} << 20;
  size_t cached_bytes_ = 0;
  Stats stats_;
};

/// Bump allocator over pooled chunks for call-scoped scratch (GEMM pack
/// panels, temporary workspaces). Alloc() hands out uninitialized float
/// spans; Reset() rewinds to empty while keeping the chunks for reuse; the
/// destructor releases every chunk back to the pool. Not thread-safe — one
/// arena per thread/scope.
class ScopedArena {
 public:
  explicit ScopedArena(BufferPool* pool = &BufferPool::Global());
  ~ScopedArena();
  ScopedArena(const ScopedArena&) = delete;
  ScopedArena& operator=(const ScopedArena&) = delete;

  /// n floats of uninitialized scratch, valid until Reset() or destruction.
  float* Alloc(size_t n);
  /// Rewinds all allocations; retained chunks are reused by later Alloc()s.
  void Reset();

  size_t allocated_floats() const { return allocated_floats_; }
  size_t chunk_count() const { return chunks_.size(); }

 private:
  BufferPool* pool_;
  std::vector<std::vector<float>> chunks_;
  size_t current_chunk_ = 0;  // Chunk serving the next Alloc.
  size_t offset_ = 0;         // Floats used in the current chunk.
  size_t allocated_floats_ = 0;
};

}  // namespace delrec::util

#endif  // DELREC_UTIL_BUFFER_POOL_H_
