#include "util/table.h"

#include <algorithm>
#include <iostream>
#include <sstream>

#include "util/check.h"
#include "util/string_util.h"

namespace delrec::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  DELREC_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  DELREC_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddMetricRow(const std::string& label,
                                const std::vector<double>& values,
                                const std::vector<std::string>& suffixes) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (size_t i = 0; i < values.size(); ++i) {
    std::string cell = FormatFixed(values[i], 4);
    if (i < suffixes.size()) cell += suffixes[i];
    row.push_back(cell);
  }
  AddRow(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::ostringstream line;
    for (size_t c = 0; c < row.size(); ++c) {
      line << "| " << row[c] << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    line << "|\n";
    return line.str();
  };
  std::ostringstream out;
  out << render_row(header_);
  std::ostringstream rule;
  for (size_t c = 0; c < header_.size(); ++c) {
    rule << "|" << std::string(widths[c] + 2, '-');
  }
  rule << "|\n";
  out << rule.str();
  for (const auto& row : rows_) out << render_row(row);
  return out.str();
}

void TablePrinter::Print() const { std::cout << ToString() << std::flush; }

}  // namespace delrec::util
