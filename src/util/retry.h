#ifndef DELREC_UTIL_RETRY_H_
#define DELREC_UTIL_RETRY_H_

#include <functional>

#include "util/status.h"

namespace delrec::util {

/// Bounded retry with exponential backoff for transient failures (injected
/// faults, busy file systems). Only kUnavailable and kInternal are
/// considered transient; other codes (kDataLoss, kInvalidArgument, ...) are
/// permanent and returned immediately.
struct RetryOptions {
  int max_attempts = 3;
  /// Sleep before attempt k (k >= 2) is base_backoff_ms · multiplier^(k-2).
  /// Zero disables sleeping (useful in tests).
  int base_backoff_ms = 1;
  double backoff_multiplier = 2.0;
};

/// True for codes worth retrying.
bool IsRetryableError(const Status& status);

/// Runs `operation` up to options.max_attempts times, backing off between
/// attempts. Returns the first success, the first permanent error, or the
/// final transient error once attempts are exhausted.
Status Retry(const RetryOptions& options,
             const std::function<Status()>& operation);

}  // namespace delrec::util

#endif  // DELREC_UTIL_RETRY_H_
