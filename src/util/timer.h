#ifndef DELREC_UTIL_TIMER_H_
#define DELREC_UTIL_TIMER_H_

#include <chrono>

namespace delrec::util {

/// Monotonic wall-clock stopwatch used by the RQ5 efficiency benchmarks.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace delrec::util

#endif  // DELREC_UTIL_TIMER_H_
