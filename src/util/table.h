#ifndef DELREC_UTIL_TABLE_H_
#define DELREC_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace delrec::util {

/// Renders paper-style result tables (fixed-width columns, header rule).
/// Used by every bench binary so outputs line up with the paper's tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: label + metric values formatted to 4 decimals.
  void AddMetricRow(const std::string& label,
                    const std::vector<double>& values,
                    const std::vector<std::string>& suffixes = {});

  /// Renders the full table.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace delrec::util

#endif  // DELREC_UTIL_TABLE_H_
