#ifndef DELREC_UTIL_THREADPOOL_H_
#define DELREC_UTIL_THREADPOOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace delrec::util {

/// Fixed-worker thread pool. No work stealing, no task priorities: tasks run
/// in submission order as workers free up. DELRec's parallelism model keeps
/// all nondeterminism out of the *results* (see ParallelFor below), so the
/// pool itself can stay this simple.
///
/// Submitting from one of this pool's own workers is rejected with
/// std::logic_error: a fixed pool can deadlock on nested submission (every
/// worker blocked waiting on a task that no free worker exists to run), and
/// DELRec's layers nest (eval → model forward → GEMM). Nested parallel
/// sections must instead degrade to serial execution, which ParallelFor does
/// automatically via InWorker().
class ThreadPool {
 public:
  /// Spawns `num_workers` (>= 1) threads immediately.
  explicit ThreadPool(int num_workers);
  /// Drains every queued task, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task and returns a future that rethrows any exception the
  /// task throws. Throws std::logic_error when called from one of this
  /// pool's own worker threads (see class comment).
  std::future<void> Submit(std::function<void()> fn);

  /// True when the calling thread is a worker of any ThreadPool.
  static bool InWorker();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide parallelism knobs. num_threads defaults to 1 so the serial
/// reference path is what runs unless a caller (or DELREC_NUM_THREADS) opts
/// in; min_work_per_dispatch is the flop/element-count floor below which
/// parallel kernels skip dispatch overhead and run serially. Neither knob
/// may change results: the determinism contract (DESIGN.md §9) makes every
/// parallel path bit-identical to serial for any setting.
struct ParallelConfig {
  int num_threads = 1;
  int64_t min_work_per_dispatch = 32 * 1024;
};

/// Current global thread budget (>= 1).
int ParallelThreads();
/// Current dispatch-work floor.
int64_t ParallelMinWork();
/// Sets the global thread budget (clamped to >= 1). Not safe to call
/// concurrently with in-flight ParallelFor dispatches.
void SetParallelism(int num_threads);
/// Sets the dispatch-work floor (clamped to >= 1).
void SetParallelMinWork(int64_t min_work);
/// Reads DELREC_NUM_THREADS from the environment (unset/invalid ⇒ leave the
/// current setting) and returns the resulting thread budget.
int InitParallelismFromEnv();

/// Deterministic static partition of [0, total) into
/// min(num_chunks, total) contiguous, near-equal chunks. Boundaries depend
/// only on (total, num_chunks) — never on scheduling — which is half of the
/// determinism contract (the other half is per-element accumulation order
/// inside each chunk).
std::vector<std::pair<int64_t, int64_t>> StaticPartition(int64_t total,
                                                         int num_chunks);

/// Runs fn(begin, end, chunk_index) over StaticPartition(total, num_threads)
/// using the shared pool; the calling thread runs chunk 0 itself. Chunks
/// write to disjoint outputs by construction (the caller's fn must honour
/// that), so no synchronisation — and in particular no atomics on float
/// paths — is needed. Falls back to a single inline fn(0, total, 0) call
/// when num_threads <= 1, total <= 1, or the caller is already inside a
/// parallel section (a pool worker, or the calling thread executing chunk 0
/// of an outer ParallelFor — nested dispatch from either would queue behind
/// the busy workers). Exceptions from chunks are rethrown in ascending
/// chunk order.
void ParallelFor(int64_t total,
                 const std::function<void(int64_t, int64_t, int)>& fn);
/// As ParallelFor but with an explicit thread count (ignores the global
/// num_threads; still honours the InWorker() serial fallback).
void ParallelForThreads(int num_threads, int64_t total,
                        const std::function<void(int64_t, int64_t, int)>& fn);

/// RAII override of the global ParallelConfig for tests and benches.
class ScopedParallelism {
 public:
  explicit ScopedParallelism(int num_threads);
  ScopedParallelism(int num_threads, int64_t min_work_per_dispatch);
  ScopedParallelism(const ScopedParallelism&) = delete;
  ScopedParallelism& operator=(const ScopedParallelism&) = delete;
  ~ScopedParallelism();

 private:
  int previous_threads_;
  int64_t previous_min_work_;
};

}  // namespace delrec::util

#endif  // DELREC_UTIL_THREADPOOL_H_
