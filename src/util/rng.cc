#include "util/rng.h"

#include <cmath>
#include <cstring>
#include <unordered_set>

#include "util/check.h"

namespace delrec::util {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformUint64(uint64_t bound) {
  DELREC_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  DELREC_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  UniformUint64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

float Rng::UniformFloat(float lo, float hi) {
  return lo + static_cast<float>(UniformDouble()) * (hi - lo);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  const double u2 = UniformDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

std::size_t Rng::Discrete(const std::vector<double>& weights) {
  DELREC_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    DELREC_CHECK_GE(w, 0.0);
    total += w;
  }
  DELREC_CHECK_GT(total, 0.0) << "Discrete() needs a positive weight";
  double target = UniformDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // Numerical fallthrough.
}

std::size_t Rng::Zipf(std::size_t n, double exponent) {
  DELREC_CHECK_GT(n, 0u);
  // Inverse-CDF on the harmonic weights; cached normalization would matter at
  // scale but n is small in this project.
  double total = 0.0;
  for (std::size_t i = 1; i <= n; ++i) total += 1.0 / std::pow(i, exponent);
  double target = UniformDouble() * total;
  for (std::size_t i = 1; i <= n; ++i) {
    target -= 1.0 / std::pow(i, exponent);
    if (target < 0.0) return i - 1;
  }
  return n - 1;
}

std::vector<int64_t> Rng::SampleDistinct(
    int64_t bound, std::size_t count, const std::vector<int64_t>& excluded) {
  DELREC_CHECK_GE(bound, 0);
  DELREC_CHECK_LE(count + excluded.size(), static_cast<std::size_t>(bound))
      << "not enough values to sample from";
  std::unordered_set<int64_t> taken(excluded.begin(), excluded.end());
  std::vector<int64_t> out;
  out.reserve(count);
  while (out.size() < count) {
    int64_t candidate =
        static_cast<int64_t>(UniformUint64(static_cast<uint64_t>(bound)));
    if (taken.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

std::vector<uint64_t> Rng::StateDump() const {
  uint64_t cached_bits = 0;
  static_assert(sizeof(cached_bits) == sizeof(cached_normal_));
  std::memcpy(&cached_bits, &cached_normal_, sizeof(cached_bits));
  return {state_[0], state_[1], state_[2], state_[3],
          has_cached_normal_ ? 1ULL : 0ULL, cached_bits};
}

void Rng::LoadState(const std::vector<uint64_t>& words) {
  DELREC_CHECK_EQ(words.size(), 6u) << "bad Rng state";
  for (int i = 0; i < 4; ++i) state_[i] = words[i];
  has_cached_normal_ = words[4] != 0;
  std::memcpy(&cached_normal_, &words[5], sizeof(cached_normal_));
}

}  // namespace delrec::util
