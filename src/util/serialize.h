#ifndef DELREC_UTIL_SERIALIZE_H_
#define DELREC_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/status.h"

namespace delrec::util {

/// Crash-safe streaming file writer: bytes go to `path + ".tmp"`, and
/// Commit() fsyncs then renames over `path`, so a crash at any point leaves
/// either the previous file or the complete new file — never a partial mix.
/// This is the single write path for every durable artifact (BlobFile
/// checkpoints, columnar catalogs); unlike BlobFile's original in-memory
/// assembly it streams, so writers of multi-hundred-MB files never hold
/// their payload in RAM.
///
/// Fault injection: `failpoint_prefix + ".open"` fails Create,
/// `failpoint_prefix` fails the next Append (the writer then stays failed —
/// one consumed count per doomed write attempt, like the historical
/// whole-file check), and `failpoint_prefix + ".rename"` fails Commit after
/// the temp file is durable. All failures remove the temp file and return
/// kUnavailable (retryable); the rename failpoint leaves the durable temp
/// file in place, exactly like a crash between write and commit.
class AtomicFileWriter {
 public:
  static StatusOr<AtomicFileWriter> Create(const std::string& path,
                                           const std::string& failpoint_prefix);

  AtomicFileWriter(AtomicFileWriter&& other) noexcept;
  AtomicFileWriter& operator=(AtomicFileWriter&& other) noexcept;
  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;
  /// Uncommitted writers clean up their temp file.
  ~AtomicFileWriter();

  /// Appends raw bytes at the current offset.
  Status Append(const void* bytes, uint64_t size);

  /// Bytes appended so far (the offset the next Append writes at).
  uint64_t offset() const { return offset_; }

  /// Overwrites `size` bytes at `patch_offset` (which must already have been
  /// appended), leaving the append position unchanged. Used to back-patch
  /// headers whose fields (directory offset, checksums) are only known once
  /// the streamed sections are on disk.
  Status PatchAt(uint64_t patch_offset, const void* bytes, uint64_t size);

  /// Flushes, fsyncs, closes and renames the temp file over `path`. The
  /// writer is consumed: further Append/Commit calls are invalid.
  Status Commit();

 private:
  AtomicFileWriter() = default;

  void Abort();

  std::FILE* file_ = nullptr;
  std::string path_;
  std::string tmp_path_;
  std::string failpoint_prefix_;
  uint64_t offset_ = 0;
  bool failed_ = false;
};

/// Minimal tagged binary container for model checkpoints: a magic header, a
/// format version, and named float blobs. Written/read atomically from a
/// single file; integrity is protected by length checks and a trailing
/// FNV-1a digest of the payload.
class BlobFile {
 public:
  /// Adds (or replaces) a named float blob.
  void Put(const std::string& name, std::vector<float> values);

  /// Looks up a blob; NotFound if missing.
  StatusOr<std::vector<float>> Get(const std::string& name) const;

  bool Contains(const std::string& name) const;
  std::vector<std::string> Names() const;

  /// Serializes to disk atomically: writes `path + ".tmp"`, fsyncs, then
  /// renames over `path`. A crash mid-save leaves the previous file intact.
  /// Transient failures return kUnavailable (retryable via util::Retry).
  /// Honours the `blobfile.write*` failpoints (see util/failpoint.h).
  Status WriteTo(const std::string& path) const;

  /// Parses from disk, validating magic, version and checksum. Corrupt or
  /// truncated data returns kDataLoss; honours the `blobfile.read*`
  /// failpoints.
  static StatusOr<BlobFile> ReadFrom(const std::string& path);

 private:
  std::vector<std::pair<std::string, std::vector<float>>> blobs_;
};

/// FNV-1a 64-bit over raw bytes (checkpoint integrity).
uint64_t Fnv1a(const void* data, size_t size, uint64_t seed = 1469598103934665603ULL);

}  // namespace delrec::util

#endif  // DELREC_UTIL_SERIALIZE_H_
