#ifndef DELREC_UTIL_SERIALIZE_H_
#define DELREC_UTIL_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace delrec::util {

/// Minimal tagged binary container for model checkpoints: a magic header, a
/// format version, and named float blobs. Written/read atomically from a
/// single file; integrity is protected by length checks and a trailing
/// FNV-1a digest of the payload.
class BlobFile {
 public:
  /// Adds (or replaces) a named float blob.
  void Put(const std::string& name, std::vector<float> values);

  /// Looks up a blob; NotFound if missing.
  StatusOr<std::vector<float>> Get(const std::string& name) const;

  bool Contains(const std::string& name) const;
  std::vector<std::string> Names() const;

  /// Serializes to disk atomically: writes `path + ".tmp"`, fsyncs, then
  /// renames over `path`. A crash mid-save leaves the previous file intact.
  /// Transient failures return kUnavailable (retryable via util::Retry).
  /// Honours the `blobfile.write*` failpoints (see util/failpoint.h).
  Status WriteTo(const std::string& path) const;

  /// Parses from disk, validating magic, version and checksum. Corrupt or
  /// truncated data returns kDataLoss; honours the `blobfile.read*`
  /// failpoints.
  static StatusOr<BlobFile> ReadFrom(const std::string& path);

 private:
  std::vector<std::pair<std::string, std::vector<float>>> blobs_;
};

/// FNV-1a 64-bit over raw bytes (checkpoint integrity).
uint64_t Fnv1a(const void* data, size_t size, uint64_t seed = 1469598103934665603ULL);

}  // namespace delrec::util

#endif  // DELREC_UTIL_SERIALIZE_H_
