#include "util/threadpool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>

#include "util/check.h"

namespace delrec::util {
namespace {

// Which pool (if any) owns the calling thread. Used both for nested-submit
// rejection and for ParallelFor's serial fallback inside workers.
thread_local const ThreadPool* g_worker_pool = nullptr;

// True while the calling thread is executing chunk 0 of a ParallelFor it
// dispatched itself. Workers already fall back to serial via InWorker();
// without this flag the calling thread's chunk would still nested-dispatch,
// queueing its subtasks behind the busy workers and serialising chunk 0
// after chunks 1..N-1. Serial fallback is bit-identical (DESIGN.md §9), so
// this is scheduling-only.
thread_local bool g_in_dispatched_chunk = false;

std::atomic<int> g_num_threads{1};
std::atomic<int64_t> g_min_work{32 * 1024};

// Shared pool backing ParallelFor. Grown (never shrunk) to the largest
// chunk fan-out requested so far; guarded by a mutex because dispatches can
// originate from any non-worker thread.
std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;

ThreadPool* PoolWithAtLeast(int num_workers) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (g_pool == nullptr || g_pool->num_workers() < num_workers) {
    g_pool = std::make_unique<ThreadPool>(num_workers);
  }
  return g_pool.get();
}

}  // namespace

ThreadPool::ThreadPool(int num_workers) {
  DELREC_CHECK_GE(num_workers, 1);
  workers_.reserve(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  if (g_worker_pool == this) {
    throw std::logic_error(
        "ThreadPool: nested Submit from a worker of the same pool "
        "(would deadlock a fixed-worker pool)");
  }
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

bool ThreadPool::InWorker() { return g_worker_pool != nullptr; }

void ThreadPool::WorkerLoop() {
  g_worker_pool = this;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // Exceptions land in the task's future, never escape here.
  }
}

int ParallelThreads() { return g_num_threads.load(std::memory_order_relaxed); }

int64_t ParallelMinWork() {
  return g_min_work.load(std::memory_order_relaxed);
}

void SetParallelism(int num_threads) {
  g_num_threads.store(num_threads < 1 ? 1 : num_threads,
                      std::memory_order_relaxed);
}

void SetParallelMinWork(int64_t min_work) {
  g_min_work.store(min_work < 1 ? 1 : min_work, std::memory_order_relaxed);
}

int InitParallelismFromEnv() {
  const char* value = std::getenv("DELREC_NUM_THREADS");
  if (value != nullptr && *value != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end != nullptr && *end == '\0' && parsed >= 1) {
      SetParallelism(static_cast<int>(parsed));
    }
  }
  return ParallelThreads();
}

std::vector<std::pair<int64_t, int64_t>> StaticPartition(int64_t total,
                                                         int num_chunks) {
  std::vector<std::pair<int64_t, int64_t>> chunks;
  if (total <= 0 || num_chunks < 1) return chunks;
  const int64_t n = std::min<int64_t>(num_chunks, total);
  const int64_t base = total / n;
  const int64_t remainder = total % n;
  chunks.reserve(n);
  int64_t begin = 0;
  for (int64_t c = 0; c < n; ++c) {
    const int64_t size = base + (c < remainder ? 1 : 0);
    chunks.emplace_back(begin, begin + size);
    begin += size;
  }
  return chunks;
}

void ParallelForThreads(
    int num_threads, int64_t total,
    const std::function<void(int64_t, int64_t, int)>& fn) {
  if (total <= 0) return;
  if (num_threads <= 1 || total <= 1 || ThreadPool::InWorker() ||
      g_in_dispatched_chunk) {
    fn(0, total, 0);
    return;
  }
  const auto chunks = StaticPartition(total, num_threads);
  ThreadPool* pool = PoolWithAtLeast(static_cast<int>(chunks.size()) - 1);
  std::vector<std::future<void>> futures;
  futures.reserve(chunks.size() - 1);
  for (size_t c = 1; c < chunks.size(); ++c) {
    futures.push_back(pool->Submit([&fn, &chunks, c] {
      fn(chunks[c].first, chunks[c].second, static_cast<int>(c));
    }));
  }
  // The calling thread takes chunk 0; exceptions rethrow in chunk order so
  // the surfaced error is deterministic too.
  std::exception_ptr first_error;
  g_in_dispatched_chunk = true;
  try {
    fn(chunks[0].first, chunks[0].second, 0);
  } catch (...) {
    first_error = std::current_exception();
  }
  g_in_dispatched_chunk = false;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

void ParallelFor(int64_t total,
                 const std::function<void(int64_t, int64_t, int)>& fn) {
  ParallelForThreads(ParallelThreads(), total, fn);
}

ScopedParallelism::ScopedParallelism(int num_threads)
    : previous_threads_(ParallelThreads()),
      previous_min_work_(ParallelMinWork()) {
  SetParallelism(num_threads);
}

ScopedParallelism::ScopedParallelism(int num_threads,
                                     int64_t min_work_per_dispatch)
    : previous_threads_(ParallelThreads()),
      previous_min_work_(ParallelMinWork()) {
  SetParallelism(num_threads);
  SetParallelMinWork(min_work_per_dispatch);
}

ScopedParallelism::~ScopedParallelism() {
  SetParallelism(previous_threads_);
  SetParallelMinWork(previous_min_work_);
}

}  // namespace delrec::util
