#include "util/failpoint.h"

#include <cstdlib>

#include "util/logging.h"
#include "util/string_util.h"

namespace delrec::util {
namespace {

// Parses "fail", "fail:3", "corrupt", "corrupt:1" into (mode, count).
Status ParseModeSpec(const std::string& text, Failpoints::Mode* mode,
                     int* count) {
  std::string mode_text = text;
  *count = -1;
  const size_t colon = text.find(':');
  if (colon != std::string::npos) {
    mode_text = text.substr(0, colon);
    const std::string count_text = text.substr(colon + 1);
    if (count_text.empty()) {
      return Status::InvalidArgument("failpoint spec has empty count: " +
                                     text);
    }
    char* end = nullptr;
    const long parsed = std::strtol(count_text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || parsed <= 0) {
      return Status::InvalidArgument("failpoint spec has bad count: " + text);
    }
    *count = static_cast<int>(parsed);
  }
  if (mode_text == "fail") {
    *mode = Failpoints::Mode::kFail;
  } else if (mode_text == "corrupt") {
    *mode = Failpoints::Mode::kCorrupt;
  } else {
    return Status::InvalidArgument("unknown failpoint mode: " + mode_text);
  }
  return Status::Ok();
}

}  // namespace

Failpoints& Failpoints::Instance() {
  static Failpoints* instance = new Failpoints();
  return *instance;
}

Failpoints::Failpoints() {
  const char* env = std::getenv("DELREC_FAILPOINTS");
  if (env != nullptr && env[0] != '\0') {
    Status status = ArmFromSpec(env);
    if (!status.ok()) {
      DELREC_LOG(Warning) << "ignoring DELREC_FAILPOINTS: "
                          << status.ToString();
    }
  }
}

void Failpoints::Arm(const std::string& name, Mode mode, int count) {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_[name] = Armed{mode, count};
}

void Failpoints::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_.erase(name);
}

void Failpoints::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_.clear();
  hits_.clear();
}

bool Failpoints::Fire(const std::string& name, Mode mode) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = armed_.find(name);
  if (it == armed_.end() || it->second.mode != mode) return false;
  ++hits_[name];
  if (it->second.remaining > 0 && --it->second.remaining == 0) {
    armed_.erase(it);
  }
  return true;
}

Status Failpoints::Check(const std::string& name) {
  if (Fire(name, Mode::kFail)) {
    DELREC_LOG(Warning) << "failpoint fired: " << name;
    return Status::Unavailable("failpoint fired: " + name);
  }
  return Status::Ok();
}

bool Failpoints::ShouldCorrupt(const std::string& name) {
  if (Fire(name, Mode::kCorrupt)) {
    DELREC_LOG(Warning) << "failpoint corrupting: " << name;
    return true;
  }
  return false;
}

int64_t Failpoints::hits(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = hits_.find(name);
  return it == hits_.end() ? 0 : it->second;
}

Status Failpoints::ArmFromSpec(const std::string& spec) {
  // Validate the whole spec before arming anything.
  struct Parsed {
    std::string name;
    Mode mode;
    int count;
  };
  std::vector<Parsed> parsed;
  for (const std::string& entry : Split(spec, ',')) {
    if (entry.empty()) continue;
    const size_t equals = entry.find('=');
    if (equals == std::string::npos || equals == 0) {
      return Status::InvalidArgument("failpoint entry needs name=mode: " +
                                     entry);
    }
    Parsed p;
    p.name = entry.substr(0, equals);
    DELREC_RETURN_IF_ERROR(
        ParseModeSpec(entry.substr(equals + 1), &p.mode, &p.count));
    parsed.push_back(std::move(p));
  }
  for (const Parsed& p : parsed) Arm(p.name, p.mode, p.count);
  return Status::Ok();
}

}  // namespace delrec::util
