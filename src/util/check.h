#ifndef DELREC_UTIL_CHECK_H_
#define DELREC_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

// Contract-violation macros. DELRec follows the no-exceptions convention:
// programmer errors abort with a diagnostic; recoverable conditions use
// util::Status. DELREC_DCHECK compiles away in release builds.

namespace delrec::util::internal {

// Streams the failure message and aborts. Marked noreturn so CHECK macros can
// be used in functions with return values without spurious warnings.
[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const std::string& condition,
                                   const std::string& message) {
  std::cerr << "[DELREC CHECK FAILED] " << file << ":" << line << ": "
            << condition;
  if (!message.empty()) std::cerr << " — " << message;
  std::cerr << std::endl;
  std::abort();
}

// Helper so `DELREC_CHECK(x) << "detail"` works: collects the streamed detail
// and aborts in the destructor.
class CheckMessageSink {
 public:
  CheckMessageSink(const char* file, int line, const char* condition)
      : file_(file), line_(line), condition_(condition) {}
  CheckMessageSink(const CheckMessageSink&) = delete;
  CheckMessageSink& operator=(const CheckMessageSink&) = delete;
  [[noreturn]] ~CheckMessageSink() {
    CheckFail(file_, line_, condition_, stream_.str());
  }
  template <typename T>
  CheckMessageSink& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::string condition_;
  std::ostringstream stream_;
};

}  // namespace delrec::util::internal

#define DELREC_CHECK(condition)                                      \
  if (condition) {                                                   \
  } else                                                             \
    ::delrec::util::internal::CheckMessageSink(__FILE__, __LINE__,   \
                                               #condition)

#define DELREC_CHECK_OP(op, a, b)                                           \
  if ((a)op(b)) {                                                           \
  } else                                                                    \
    ::delrec::util::internal::CheckMessageSink(__FILE__, __LINE__,          \
                                               #a " " #op " " #b)           \
        << "(" << (a) << " vs " << (b) << ") "

#define DELREC_CHECK_EQ(a, b) DELREC_CHECK_OP(==, a, b)
#define DELREC_CHECK_NE(a, b) DELREC_CHECK_OP(!=, a, b)
#define DELREC_CHECK_LT(a, b) DELREC_CHECK_OP(<, a, b)
#define DELREC_CHECK_LE(a, b) DELREC_CHECK_OP(<=, a, b)
#define DELREC_CHECK_GT(a, b) DELREC_CHECK_OP(>, a, b)
#define DELREC_CHECK_GE(a, b) DELREC_CHECK_OP(>=, a, b)

#ifdef NDEBUG
#define DELREC_DCHECK(condition) \
  if (true) {                    \
  } else                         \
    ::delrec::util::internal::CheckMessageSink(__FILE__, __LINE__, #condition)
#else
#define DELREC_DCHECK(condition) DELREC_CHECK(condition)
#endif

#endif  // DELREC_UTIL_CHECK_H_
