#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/failpoint.h"

namespace delrec::util {

StatusOr<MemoryMappedFile> MemoryMappedFile::Open(const std::string& path) {
  DELREC_RETURN_IF_ERROR(Failpoints::Instance().Check("data.mmap.open"));
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::Unavailable("cannot open for mapping: " + path + ": " +
                               std::strerror(errno));
  }
  struct stat info;
  if (::fstat(fd, &info) != 0) {
    ::close(fd);
    return Status::Unavailable("cannot stat: " + path);
  }
  MemoryMappedFile file;
  file.path_ = path;
  file.size_ = static_cast<uint64_t>(info.st_size);
  if (file.size_ > 0) {
    void* mapping =
        ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapping == MAP_FAILED) {
      ::close(fd);
      return Status::Unavailable("mmap failed: " + path + ": " +
                                 std::strerror(errno));
    }
    file.data_ = static_cast<const unsigned char*>(mapping);
  }
  // The mapping keeps its own reference to the file; the descriptor is no
  // longer needed.
  ::close(fd);
  return file;
}

MemoryMappedFile::~MemoryMappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(data_), size_);
  }
}

MemoryMappedFile::MemoryMappedFile(MemoryMappedFile&& other) noexcept
    : data_(other.data_), size_(other.size_), path_(std::move(other.path_)) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MemoryMappedFile& MemoryMappedFile::operator=(
    MemoryMappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<unsigned char*>(data_), size_);
    }
    data_ = other.data_;
    size_ = other.size_;
    path_ = std::move(other.path_);
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

StatusOr<const unsigned char*> MemoryMappedFile::View(uint64_t offset,
                                                      uint64_t length) const {
  // Overflow-safe: offset + length could wrap, so compare via subtraction.
  if (offset > size_ || length > size_ - offset) {
    return Status::DataLoss("mapped range [" + std::to_string(offset) + ", +" +
                            std::to_string(length) + ") past end of " + path_ +
                            " (" + std::to_string(size_) + " bytes)");
  }
  return data_ + offset;
}

void MemoryMappedFile::AdviseSequential() const {
  if (data_ == nullptr) return;
  ::madvise(const_cast<unsigned char*>(data_), size_, MADV_SEQUENTIAL);
}

void MemoryMappedFile::AdviseDontNeed(uint64_t offset, uint64_t length) const {
  if (data_ == nullptr) return;
  if (offset > size_ || length > size_ - offset) return;
  const uint64_t page = static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
  // Shrink to the pages fully inside the range so neighbours stay resident.
  const uint64_t begin = (offset + page - 1) / page * page;
  const uint64_t end = (offset + length) / page * page;
  if (end <= begin) return;
  ::madvise(const_cast<unsigned char*>(data_) + begin, end - begin,
            MADV_DONTNEED);
}

}  // namespace delrec::util
