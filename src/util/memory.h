#ifndef DELREC_UTIL_MEMORY_H_
#define DELREC_UTIL_MEMORY_H_

#include <cstdint>

namespace delrec::util {

/// Peak resident set size of this process in bytes (Linux VmHWM), or 0 if
/// unavailable. Used by the RQ5 memory-footprint benchmark.
int64_t PeakRssBytes();

/// Current resident set size in bytes (Linux VmRSS), or 0 if unavailable.
int64_t CurrentRssBytes();

}  // namespace delrec::util

#endif  // DELREC_UTIL_MEMORY_H_
