#ifndef DELREC_UTIL_STRING_UTIL_H_
#define DELREC_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace delrec::util {

/// Splits `text` on `delimiter`, dropping empty pieces. Takes a view so
/// mmap-backed titles (data/columnar.h) split without an up-front copy.
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Joins pieces with `separator`.
std::string Join(const std::vector<std::string>& pieces,
                 const std::string& separator);

/// ASCII lower-casing (titles/tokens are ASCII in this project).
std::string ToLower(std::string_view text);

/// Formats a double with fixed precision (paper tables use 4 decimals).
std::string FormatFixed(double value, int digits);

/// True if `text` starts with `prefix`.
bool StartsWith(const std::string& text, const std::string& prefix);

}  // namespace delrec::util

#endif  // DELREC_UTIL_STRING_UTIL_H_
