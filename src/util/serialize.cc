#include "util/serialize.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "util/check.h"
#include "util/failpoint.h"

namespace delrec::util {
namespace {

constexpr char kMagic[8] = {'D', 'E', 'L', 'R', 'E', 'C', 'B', '1'};
constexpr uint32_t kVersion = 1;

// Appends a POD value to a byte buffer.
template <typename T>
void Append(std::vector<unsigned char>& buffer, const T& value) {
  const unsigned char* bytes =
      reinterpret_cast<const unsigned char*>(&value);
  buffer.insert(buffer.end(), bytes, bytes + sizeof(T));
}

template <typename T>
bool Read(const std::vector<unsigned char>& buffer, size_t& offset,
          T* value) {
  if (offset + sizeof(T) > buffer.size()) return false;
  std::memcpy(value, buffer.data() + offset, sizeof(T));
  offset += sizeof(T);
  return true;
}

}  // namespace

uint64_t Fnv1a(const void* data, size_t size, uint64_t seed) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

StatusOr<AtomicFileWriter> AtomicFileWriter::Create(
    const std::string& path, const std::string& failpoint_prefix) {
  DELREC_RETURN_IF_ERROR(
      Failpoints::Instance().Check(failpoint_prefix + ".open"));
  AtomicFileWriter writer;
  writer.path_ = path;
  writer.tmp_path_ = path + ".tmp";
  writer.failpoint_prefix_ = failpoint_prefix;
  writer.file_ = std::fopen(writer.tmp_path_.c_str(), "wb");
  if (writer.file_ == nullptr) {
    return Status::Unavailable("cannot open for writing: " + writer.tmp_path_);
  }
  return writer;
}

AtomicFileWriter::AtomicFileWriter(AtomicFileWriter&& other) noexcept
    : file_(other.file_),
      path_(std::move(other.path_)),
      tmp_path_(std::move(other.tmp_path_)),
      failpoint_prefix_(std::move(other.failpoint_prefix_)),
      offset_(other.offset_),
      failed_(other.failed_) {
  other.file_ = nullptr;
}

AtomicFileWriter& AtomicFileWriter::operator=(
    AtomicFileWriter&& other) noexcept {
  if (this != &other) {
    Abort();
    file_ = other.file_;
    path_ = std::move(other.path_);
    tmp_path_ = std::move(other.tmp_path_);
    failpoint_prefix_ = std::move(other.failpoint_prefix_);
    offset_ = other.offset_;
    failed_ = other.failed_;
    other.file_ = nullptr;
  }
  return *this;
}

AtomicFileWriter::~AtomicFileWriter() { Abort(); }

void AtomicFileWriter::Abort() {
  if (file_ != nullptr) {
    std::fclose(file_);
    std::remove(tmp_path_.c_str());
    file_ = nullptr;
  }
}

Status AtomicFileWriter::Append(const void* bytes, uint64_t size) {
  DELREC_CHECK(file_ != nullptr) << "Append on a committed/moved-from writer";
  if (size == 0) return Status::Ok();  // fwrite(nullptr, ...) is UB.
  if (!failed_) {
    // Latch the injected failure: one armed count dooms this whole write
    // attempt (further appends skip the registry, so a `fail:N` spec fails N
    // write attempts, not N buffers).
    failed_ = !Failpoints::Instance().Check(failpoint_prefix_).ok();
  }
  const bool written =
      !failed_ && std::fwrite(bytes, 1, size, file_) == size;
  if (!written) {
    Abort();
    return Status::Unavailable("short write: " + tmp_path_);
  }
  offset_ += size;
  return Status::Ok();
}

Status AtomicFileWriter::PatchAt(uint64_t patch_offset, const void* bytes,
                                 uint64_t size) {
  DELREC_CHECK(file_ != nullptr) << "PatchAt on a committed/moved-from writer";
  DELREC_CHECK_LE(patch_offset + size, offset_) << "patch past appended bytes";
  bool ok = std::fseek(file_, static_cast<long>(patch_offset), SEEK_SET) == 0;
  ok = ok && std::fwrite(bytes, 1, size, file_) == size;
  ok = ok && std::fseek(file_, static_cast<long>(offset_), SEEK_SET) == 0;
  if (!ok) {
    Abort();
    return Status::Unavailable("short patch write: " + tmp_path_);
  }
  return Status::Ok();
}

Status AtomicFileWriter::Commit() {
  DELREC_CHECK(file_ != nullptr) << "Commit on a committed/moved-from writer";
  bool ok = std::fflush(file_) == 0;
  ok = ok && ::fsync(::fileno(file_)) == 0;
  const bool closed = std::fclose(file_) == 0;
  file_ = nullptr;
  if (!ok || !closed) {
    std::remove(tmp_path_.c_str());
    return Status::Unavailable("short write: " + tmp_path_);
  }
  // Firing here simulates a crash between write and commit: the temp file
  // exists and is durable, but `path_` still holds the previous version.
  DELREC_RETURN_IF_ERROR(
      Failpoints::Instance().Check(failpoint_prefix_ + ".rename"));
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    return Status::Unavailable("cannot commit: " + tmp_path_ + " -> " + path_);
  }
  return Status::Ok();
}

void BlobFile::Put(const std::string& name, std::vector<float> values) {
  for (auto& [existing_name, existing_values] : blobs_) {
    if (existing_name == name) {
      existing_values = std::move(values);
      return;
    }
  }
  blobs_.emplace_back(name, std::move(values));
}

StatusOr<std::vector<float>> BlobFile::Get(const std::string& name) const {
  for (const auto& [existing_name, values] : blobs_) {
    if (existing_name == name) return values;
  }
  return Status::NotFound("blob not found: " + name);
}

bool BlobFile::Contains(const std::string& name) const {
  for (const auto& [existing_name, values] : blobs_) {
    if (existing_name == name) return true;
  }
  return false;
}

std::vector<std::string> BlobFile::Names() const {
  std::vector<std::string> names;
  names.reserve(blobs_.size());
  for (const auto& [name, values] : blobs_) names.push_back(name);
  return names;
}

Status BlobFile::WriteTo(const std::string& path) const {
  Failpoints& failpoints = Failpoints::Instance();

  std::vector<unsigned char> payload;
  Append(payload, static_cast<uint64_t>(blobs_.size()));
  for (const auto& [name, values] : blobs_) {
    Append(payload, static_cast<uint64_t>(name.size()));
    payload.insert(payload.end(), name.begin(), name.end());
    Append(payload, static_cast<uint64_t>(values.size()));
    const unsigned char* bytes =
        reinterpret_cast<const unsigned char*>(values.data());
    payload.insert(payload.end(), bytes,
                   bytes + values.size() * sizeof(float));
  }
  // The digest covers the intended payload; an injected corruption below is
  // therefore detectable on read, exactly like real bit rot.
  const uint64_t digest = Fnv1a(payload.data(), payload.size());
  if (!payload.empty() && failpoints.ShouldCorrupt("blobfile.write.corrupt")) {
    payload[payload.size() / 2] ^= 0x5a;
  }

  DELREC_ASSIGN_OR_RETURN(AtomicFileWriter writer,
                          AtomicFileWriter::Create(path, "blobfile.write"));
  DELREC_RETURN_IF_ERROR(writer.Append(kMagic, sizeof(kMagic)));
  DELREC_RETURN_IF_ERROR(writer.Append(&kVersion, sizeof(kVersion)));
  const uint64_t payload_size = payload.size();
  DELREC_RETURN_IF_ERROR(writer.Append(&payload_size, sizeof(payload_size)));
  DELREC_RETURN_IF_ERROR(writer.Append(payload.data(), payload.size()));
  DELREC_RETURN_IF_ERROR(writer.Append(&digest, sizeof(digest)));
  return writer.Commit();
}

StatusOr<BlobFile> BlobFile::ReadFrom(const std::string& path) {
  Failpoints& failpoints = Failpoints::Instance();
  DELREC_RETURN_IF_ERROR(failpoints.Check("blobfile.read.open"));
  FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::NotFound("cannot open: " + path);
  char magic[sizeof(kMagic)];
  uint32_t version = 0;
  uint64_t payload_size = 0;
  bool ok = failpoints.Check("blobfile.read").ok();
  ok = ok && std::fread(magic, 1, sizeof(magic), file) == sizeof(magic);
  ok = ok && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
  ok = ok && std::fread(&version, sizeof(version), 1, file) == 1;
  ok = ok && version == kVersion;
  ok = ok && std::fread(&payload_size, sizeof(payload_size), 1, file) == 1;
  if (!ok) {
    std::fclose(file);
    return Status::InvalidArgument("bad checkpoint header: " + path);
  }
  std::vector<unsigned char> payload(payload_size);
  ok = std::fread(payload.data(), 1, payload_size, file) == payload_size;
  uint64_t digest = 0;
  ok = ok && std::fread(&digest, sizeof(digest), 1, file) == 1;
  std::fclose(file);
  if (!payload.empty() && failpoints.ShouldCorrupt("blobfile.read.corrupt")) {
    payload[payload.size() / 2] ^= 0x5a;
  }
  if (!ok || digest != Fnv1a(payload.data(), payload.size())) {
    return Status::DataLoss("corrupt checkpoint: " + path);
  }
  BlobFile blob_file;
  size_t offset = 0;
  uint64_t count = 0;
  if (!Read(payload, offset, &count)) {
    return Status::DataLoss("truncated checkpoint: " + path);
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_size = 0;
    if (!Read(payload, offset, &name_size) ||
        offset + name_size > payload.size()) {
      return Status::DataLoss("truncated blob name: " + path);
    }
    std::string name(reinterpret_cast<const char*>(payload.data()) + offset,
                     name_size);
    offset += name_size;
    uint64_t value_count = 0;
    if (!Read(payload, offset, &value_count) ||
        value_count > (payload.size() - offset) / sizeof(float)) {
      return Status::DataLoss("truncated blob data: " + path);
    }
    std::vector<float> values(value_count);
    std::memcpy(values.data(), payload.data() + offset,
                value_count * sizeof(float));
    offset += value_count * sizeof(float);
    blob_file.Put(name, std::move(values));
  }
  return blob_file;
}

}  // namespace delrec::util
