#include "util/serialize.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "util/failpoint.h"

namespace delrec::util {
namespace {

constexpr char kMagic[8] = {'D', 'E', 'L', 'R', 'E', 'C', 'B', '1'};
constexpr uint32_t kVersion = 1;

// Appends a POD value to a byte buffer.
template <typename T>
void Append(std::vector<unsigned char>& buffer, const T& value) {
  const unsigned char* bytes =
      reinterpret_cast<const unsigned char*>(&value);
  buffer.insert(buffer.end(), bytes, bytes + sizeof(T));
}

template <typename T>
bool Read(const std::vector<unsigned char>& buffer, size_t& offset,
          T* value) {
  if (offset + sizeof(T) > buffer.size()) return false;
  std::memcpy(value, buffer.data() + offset, sizeof(T));
  offset += sizeof(T);
  return true;
}

}  // namespace

uint64_t Fnv1a(const void* data, size_t size, uint64_t seed) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

void BlobFile::Put(const std::string& name, std::vector<float> values) {
  for (auto& [existing_name, existing_values] : blobs_) {
    if (existing_name == name) {
      existing_values = std::move(values);
      return;
    }
  }
  blobs_.emplace_back(name, std::move(values));
}

StatusOr<std::vector<float>> BlobFile::Get(const std::string& name) const {
  for (const auto& [existing_name, values] : blobs_) {
    if (existing_name == name) return values;
  }
  return Status::NotFound("blob not found: " + name);
}

bool BlobFile::Contains(const std::string& name) const {
  for (const auto& [existing_name, values] : blobs_) {
    if (existing_name == name) return true;
  }
  return false;
}

std::vector<std::string> BlobFile::Names() const {
  std::vector<std::string> names;
  names.reserve(blobs_.size());
  for (const auto& [name, values] : blobs_) names.push_back(name);
  return names;
}

Status BlobFile::WriteTo(const std::string& path) const {
  Failpoints& failpoints = Failpoints::Instance();
  DELREC_RETURN_IF_ERROR(failpoints.Check("blobfile.write.open"));

  std::vector<unsigned char> payload;
  Append(payload, static_cast<uint64_t>(blobs_.size()));
  for (const auto& [name, values] : blobs_) {
    Append(payload, static_cast<uint64_t>(name.size()));
    payload.insert(payload.end(), name.begin(), name.end());
    Append(payload, static_cast<uint64_t>(values.size()));
    const unsigned char* bytes =
        reinterpret_cast<const unsigned char*>(values.data());
    payload.insert(payload.end(), bytes,
                   bytes + values.size() * sizeof(float));
  }
  // The digest covers the intended payload; an injected corruption below is
  // therefore detectable on read, exactly like real bit rot.
  const uint64_t digest = Fnv1a(payload.data(), payload.size());
  if (!payload.empty() && failpoints.ShouldCorrupt("blobfile.write.corrupt")) {
    payload[payload.size() / 2] ^= 0x5a;
  }

  // Write-to-temp + fsync + rename: a crash at any point leaves either the
  // old file or the new file at `path`, never a partial mix.
  const std::string tmp_path = path + ".tmp";
  FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Unavailable("cannot open for writing: " + tmp_path);
  }
  bool ok = failpoints.Check("blobfile.write").ok();
  ok = ok && std::fwrite(kMagic, 1, sizeof(kMagic), file) == sizeof(kMagic);
  ok = ok && std::fwrite(&kVersion, sizeof(kVersion), 1, file) == 1;
  const uint64_t payload_size = payload.size();
  ok = ok && std::fwrite(&payload_size, sizeof(payload_size), 1, file) == 1;
  ok = ok &&
       std::fwrite(payload.data(), 1, payload.size(), file) == payload.size();
  ok = ok && std::fwrite(&digest, sizeof(digest), 1, file) == 1;
  ok = ok && std::fflush(file) == 0;
  ok = ok && ::fsync(::fileno(file)) == 0;
  const bool closed = std::fclose(file) == 0;
  if (!ok || !closed) {
    std::remove(tmp_path.c_str());
    return Status::Unavailable("short write: " + tmp_path);
  }
  // Firing here simulates a crash between write and commit: the temp file
  // exists but `path` still holds the previous checkpoint.
  DELREC_RETURN_IF_ERROR(failpoints.Check("blobfile.write.rename"));
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::Unavailable("cannot commit: " + tmp_path + " -> " + path);
  }
  return Status::Ok();
}

StatusOr<BlobFile> BlobFile::ReadFrom(const std::string& path) {
  Failpoints& failpoints = Failpoints::Instance();
  DELREC_RETURN_IF_ERROR(failpoints.Check("blobfile.read.open"));
  FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::NotFound("cannot open: " + path);
  char magic[sizeof(kMagic)];
  uint32_t version = 0;
  uint64_t payload_size = 0;
  bool ok = failpoints.Check("blobfile.read").ok();
  ok = ok && std::fread(magic, 1, sizeof(magic), file) == sizeof(magic);
  ok = ok && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
  ok = ok && std::fread(&version, sizeof(version), 1, file) == 1;
  ok = ok && version == kVersion;
  ok = ok && std::fread(&payload_size, sizeof(payload_size), 1, file) == 1;
  if (!ok) {
    std::fclose(file);
    return Status::InvalidArgument("bad checkpoint header: " + path);
  }
  std::vector<unsigned char> payload(payload_size);
  ok = std::fread(payload.data(), 1, payload_size, file) == payload_size;
  uint64_t digest = 0;
  ok = ok && std::fread(&digest, sizeof(digest), 1, file) == 1;
  std::fclose(file);
  if (!payload.empty() && failpoints.ShouldCorrupt("blobfile.read.corrupt")) {
    payload[payload.size() / 2] ^= 0x5a;
  }
  if (!ok || digest != Fnv1a(payload.data(), payload.size())) {
    return Status::DataLoss("corrupt checkpoint: " + path);
  }
  BlobFile blob_file;
  size_t offset = 0;
  uint64_t count = 0;
  if (!Read(payload, offset, &count)) {
    return Status::DataLoss("truncated checkpoint: " + path);
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_size = 0;
    if (!Read(payload, offset, &name_size) ||
        offset + name_size > payload.size()) {
      return Status::DataLoss("truncated blob name: " + path);
    }
    std::string name(reinterpret_cast<const char*>(payload.data()) + offset,
                     name_size);
    offset += name_size;
    uint64_t value_count = 0;
    if (!Read(payload, offset, &value_count) ||
        value_count > (payload.size() - offset) / sizeof(float)) {
      return Status::DataLoss("truncated blob data: " + path);
    }
    std::vector<float> values(value_count);
    std::memcpy(values.data(), payload.data() + offset,
                value_count * sizeof(float));
    offset += value_count * sizeof(float);
    blob_file.Put(name, std::move(values));
  }
  return blob_file;
}

}  // namespace delrec::util
