#include "util/serialize.h"

#include <cstdio>
#include <cstring>

namespace delrec::util {
namespace {

constexpr char kMagic[8] = {'D', 'E', 'L', 'R', 'E', 'C', 'B', '1'};
constexpr uint32_t kVersion = 1;

// Appends a POD value to a byte buffer.
template <typename T>
void Append(std::vector<unsigned char>& buffer, const T& value) {
  const unsigned char* bytes =
      reinterpret_cast<const unsigned char*>(&value);
  buffer.insert(buffer.end(), bytes, bytes + sizeof(T));
}

template <typename T>
bool Read(const std::vector<unsigned char>& buffer, size_t& offset,
          T* value) {
  if (offset + sizeof(T) > buffer.size()) return false;
  std::memcpy(value, buffer.data() + offset, sizeof(T));
  offset += sizeof(T);
  return true;
}

}  // namespace

uint64_t Fnv1a(const void* data, size_t size, uint64_t seed) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

void BlobFile::Put(const std::string& name, std::vector<float> values) {
  for (auto& [existing_name, existing_values] : blobs_) {
    if (existing_name == name) {
      existing_values = std::move(values);
      return;
    }
  }
  blobs_.emplace_back(name, std::move(values));
}

StatusOr<std::vector<float>> BlobFile::Get(const std::string& name) const {
  for (const auto& [existing_name, values] : blobs_) {
    if (existing_name == name) return values;
  }
  return Status::NotFound("blob not found: " + name);
}

bool BlobFile::Contains(const std::string& name) const {
  for (const auto& [existing_name, values] : blobs_) {
    if (existing_name == name) return true;
  }
  return false;
}

std::vector<std::string> BlobFile::Names() const {
  std::vector<std::string> names;
  names.reserve(blobs_.size());
  for (const auto& [name, values] : blobs_) names.push_back(name);
  return names;
}

Status BlobFile::WriteTo(const std::string& path) const {
  std::vector<unsigned char> payload;
  Append(payload, static_cast<uint64_t>(blobs_.size()));
  for (const auto& [name, values] : blobs_) {
    Append(payload, static_cast<uint64_t>(name.size()));
    payload.insert(payload.end(), name.begin(), name.end());
    Append(payload, static_cast<uint64_t>(values.size()));
    const unsigned char* bytes =
        reinterpret_cast<const unsigned char*>(values.data());
    payload.insert(payload.end(), bytes,
                   bytes + values.size() * sizeof(float));
  }
  FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot open for writing: " + path);
  }
  bool ok = std::fwrite(kMagic, 1, sizeof(kMagic), file) == sizeof(kMagic);
  ok = ok && std::fwrite(&kVersion, sizeof(kVersion), 1, file) == 1;
  const uint64_t payload_size = payload.size();
  ok = ok && std::fwrite(&payload_size, sizeof(payload_size), 1, file) == 1;
  ok = ok &&
       std::fwrite(payload.data(), 1, payload.size(), file) == payload.size();
  const uint64_t digest = Fnv1a(payload.data(), payload.size());
  ok = ok && std::fwrite(&digest, sizeof(digest), 1, file) == 1;
  const bool closed = std::fclose(file) == 0;
  if (!ok || !closed) return Status::Internal("short write: " + path);
  return Status::Ok();
}

StatusOr<BlobFile> BlobFile::ReadFrom(const std::string& path) {
  FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::NotFound("cannot open: " + path);
  char magic[sizeof(kMagic)];
  uint32_t version = 0;
  uint64_t payload_size = 0;
  bool ok = std::fread(magic, 1, sizeof(magic), file) == sizeof(magic);
  ok = ok && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
  ok = ok && std::fread(&version, sizeof(version), 1, file) == 1;
  ok = ok && version == kVersion;
  ok = ok && std::fread(&payload_size, sizeof(payload_size), 1, file) == 1;
  if (!ok) {
    std::fclose(file);
    return Status::InvalidArgument("bad checkpoint header: " + path);
  }
  std::vector<unsigned char> payload(payload_size);
  ok = std::fread(payload.data(), 1, payload_size, file) == payload_size;
  uint64_t digest = 0;
  ok = ok && std::fread(&digest, sizeof(digest), 1, file) == 1;
  std::fclose(file);
  if (!ok || digest != Fnv1a(payload.data(), payload.size())) {
    return Status::InvalidArgument("corrupt checkpoint: " + path);
  }
  BlobFile blob_file;
  size_t offset = 0;
  uint64_t count = 0;
  if (!Read(payload, offset, &count)) {
    return Status::InvalidArgument("truncated checkpoint: " + path);
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_size = 0;
    if (!Read(payload, offset, &name_size) ||
        offset + name_size > payload.size()) {
      return Status::InvalidArgument("truncated blob name: " + path);
    }
    std::string name(reinterpret_cast<const char*>(payload.data()) + offset,
                     name_size);
    offset += name_size;
    uint64_t value_count = 0;
    if (!Read(payload, offset, &value_count) ||
        offset + value_count * sizeof(float) > payload.size()) {
      return Status::InvalidArgument("truncated blob data: " + path);
    }
    std::vector<float> values(value_count);
    std::memcpy(values.data(), payload.data() + offset,
                value_count * sizeof(float));
    offset += value_count * sizeof(float);
    blob_file.Put(name, std::move(values));
  }
  return blob_file;
}

}  // namespace delrec::util
