#ifndef DELREC_UTIL_STATUS_H_
#define DELREC_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/check.h"

namespace delrec::util {

/// Minimal absl-style Status for recoverable errors (file I/O, parsing).
/// Contract violations use DELREC_CHECK instead.
class Status {
 public:
  enum class Code { kOk = 0, kInvalidArgument, kNotFound, kInternal };

  Status() : code_(Code::kOk) {}
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(Code::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(Code::kNotFound, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(Code::kInternal, std::move(message));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return message_;
  }

 private:
  Code code_;
  std::string message_;
};

/// Value-or-error holder for functions that can fail recoverably.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    DELREC_CHECK(!status_.ok()) << "StatusOr(Status) requires an error";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DELREC_CHECK(ok()) << status_.ToString();
    return value_;
  }
  T& value() & {
    DELREC_CHECK(ok()) << status_.ToString();
    return value_;
  }
  T&& value() && {
    DELREC_CHECK(ok()) << status_.ToString();
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace delrec::util

#endif  // DELREC_UTIL_STATUS_H_
