#ifndef DELREC_UTIL_STATUS_H_
#define DELREC_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace delrec::util {

/// Minimal absl-style Status for recoverable errors (file I/O, parsing).
/// Contract violations use DELREC_CHECK instead.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kInternal,
    /// Stored data is unrecoverably lost or corrupted (checksum mismatch,
    /// truncated checkpoint). Retrying will not help.
    kDataLoss,
    /// A transient condition (injected fault, busy file system, full
    /// admission queue). The operation may succeed if retried —
    /// util::Retry treats this as retryable.
    kUnavailable,
    /// The request's deadline passed before the work could run (serve-tier
    /// load shedding). Retrying with a fresh deadline may succeed.
    kDeadlineExceeded,
  };

  Status() : code_(Code::kOk) {}
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(Code::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(Code::kNotFound, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(Code::kInternal, std::move(message));
  }
  static Status DataLoss(std::string message) {
    return Status(Code::kDataLoss, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(Code::kUnavailable, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(Code::kDeadlineExceeded, std::move(message));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

  static const char* CodeName(Code code) {
    switch (code) {
      case Code::kOk: return "OK";
      case Code::kInvalidArgument: return "INVALID_ARGUMENT";
      case Code::kNotFound: return "NOT_FOUND";
      case Code::kInternal: return "INTERNAL";
      case Code::kDataLoss: return "DATA_LOSS";
      case Code::kUnavailable: return "UNAVAILABLE";
      case Code::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    }
    return "UNKNOWN";
  }

 private:
  Code code_;
  std::string message_;
};

/// Value-or-error holder for functions that can fail recoverably. The payload
/// lives in a std::optional so T need not be default-constructible, and
/// move-only payloads work.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    DELREC_CHECK(!status_.ok()) << "StatusOr(Status) requires an error";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DELREC_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    DELREC_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    DELREC_CHECK(ok()) << status_.ToString();
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace delrec::util

/// Early-returns the enclosing function with the evaluated Status when it is
/// not OK.
#define DELREC_RETURN_IF_ERROR(expr)                          \
  do {                                                        \
    ::delrec::util::Status _delrec_status_ = (expr);          \
    if (!_delrec_status_.ok()) return _delrec_status_;        \
  } while (0)

#define DELREC_STATUS_CONCAT_INNER_(x, y) x##y
#define DELREC_STATUS_CONCAT_(x, y) DELREC_STATUS_CONCAT_INNER_(x, y)

/// Evaluates a StatusOr expression; on success moves the value into `lhs`
/// (which may declare a new variable), on error early-returns the status.
#define DELREC_ASSIGN_OR_RETURN(lhs, expr)                                  \
  DELREC_ASSIGN_OR_RETURN_IMPL_(                                            \
      DELREC_STATUS_CONCAT_(_delrec_statusor_, __LINE__), lhs, expr)

#define DELREC_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                                  \
  if (!var.ok()) return var.status();                 \
  lhs = std::move(var).value()

#endif  // DELREC_UTIL_STATUS_H_
