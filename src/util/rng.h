#ifndef DELREC_UTIL_RNG_H_
#define DELREC_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace delrec::util {

/// Deterministic xoshiro256** pseudo-random generator seeded via splitmix64.
/// All stochastic components in DELRec (data generation, initialization,
/// sampling, dropout) draw from an explicitly passed Rng so experiments are
/// reproducible bit-for-bit given a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t UniformUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform float in [lo, hi).
  float UniformFloat(float lo, float hi);

  /// Standard normal (Box–Muller).
  double Normal();

  /// Normal with given mean / stddev.
  double Normal(double mean, double stddev);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Samples an index from unnormalized non-negative weights.
  /// Requires at least one strictly positive weight.
  std::size_t Discrete(const std::vector<double>& weights);

  /// Geometric-like popularity rank sampler: Zipf(s) over [0, n).
  std::size_t Zipf(std::size_t n, double exponent);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = UniformUint64(i);
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Draws `count` distinct values from [0, bound), excluding `excluded`.
  /// Requires count + excluded.size() <= bound (checked).
  std::vector<int64_t> SampleDistinct(int64_t bound, std::size_t count,
                                      const std::vector<int64_t>& excluded);

  /// Derives an independent child generator (for per-worker streams).
  Rng Fork();

  /// Serializes the full generator state (xoshiro words plus the Box–Muller
  /// cache) so training can resume bit-identically: 6 words —
  /// state[0..3], has_cached flag, bit pattern of the cached normal.
  std::vector<uint64_t> StateDump() const;
  /// Restores a StateDump(). Requires exactly 6 words.
  void LoadState(const std::vector<uint64_t>& words);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace delrec::util

#endif  // DELREC_UTIL_RNG_H_
