#ifndef DELREC_UTIL_JSON_H_
#define DELREC_UTIL_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace delrec::util {

/// Minimal JSON document model — just enough for the machine-readable bench
/// records (BENCH_*.json) and their baseline comparison. Objects preserve
/// insertion order so emitted files diff cleanly across runs. No external
/// dependencies; numbers are doubles; strings support the standard escapes.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}

  static Json Null() { return Json(); }
  static Json Bool(bool value);
  static Json Number(double value);
  static Json Str(std::string value);
  static Json Array();
  static Json Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }

  bool bool_value() const;
  double number() const;
  const std::string& str() const;

  // -- Array ------------------------------------------------------------------
  void Append(Json value);
  size_t size() const;
  const Json& at(size_t index) const;

  // -- Object (insertion-ordered) ---------------------------------------------
  void Set(const std::string& key, Json value);
  /// Null when absent.
  const Json* Find(const std::string& key) const;

  /// Pretty-prints with 2-space indentation and a trailing newline.
  std::string Dump() const;

  /// Parses `text`; on failure returns InvalidArgument with a position.
  static Status Parse(const std::string& text, Json* out);

 private:
  void DumpTo(std::string& out, int indent) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace delrec::util

#endif  // DELREC_UTIL_JSON_H_
