#ifndef DELREC_BASELINES_PARADIGM1_H_
#define DELREC_BASELINES_PARADIGM1_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/common.h"
#include "srmodels/recommender.h"

namespace delrec::baselines {

/// Paradigm 1 — *textual information from conventional SR models in the
/// prompt*. All three methods fine-tune the LLM with the shared PEFT budget;
/// they differ in what text they add.

/// RecRanker (Luo et al. 2023): importance-aware sampling of training users
/// (longer histories weigh more) and the conventional model's top-3
/// recommendations written into the prompt as text.
class RecRanker : public LlmRecommender {
 public:
  RecRanker(llm::TinyLm* model, srmodels::SequentialRecommender* sr_model,
            const data::CatalogView* catalog, const llm::Vocab* vocab,
            const LlmRecConfig& config);

  std::string name() const override { return "RecRanker"; }
  util::Status Train(const std::vector<data::Example>& examples) override;
  std::vector<float> ScoreCandidates(
      const data::Example& example,
      const std::vector<int64_t>& candidates) const override;

 private:
  std::vector<int64_t> HintTokens(const std::vector<int64_t>& history) const;

  llm::TinyLm* model_;
  srmodels::SequentialRecommender* sr_model_;
  const data::CatalogView* catalog_;
  llm::PromptBuilder prompt_builder_;
  llm::Verbalizer verbalizer_;
  LlmRecConfig config_;
  mutable util::Rng scratch_rng_;
};

/// LLMSEQPROMPT (Harte et al., RecSys 2023): injects domain knowledge by
/// fine-tuning the LLM on session → next-item prompts (no conventional-SR
/// information at all).
class LlmSeqPrompt : public LlmRecommender {
 public:
  LlmSeqPrompt(llm::TinyLm* model, const data::CatalogView* catalog,
               const llm::Vocab* vocab, const LlmRecConfig& config);

  std::string name() const override { return "LLMSEQPROMPT"; }
  util::Status Train(const std::vector<data::Example>& examples) override;
  std::vector<float> ScoreCandidates(
      const data::Example& example,
      const std::vector<int64_t>& candidates) const override;

 private:
  llm::TinyLm* model_;
  const data::CatalogView* catalog_;
  llm::PromptBuilder prompt_builder_;
  llm::Verbalizer verbalizer_;
  LlmRecConfig config_;
  mutable util::Rng scratch_rng_;
};

/// LLM-TRSR (Zheng et al., WWW 2024): builds a textual *preference summary*
/// of the user's history (dominant genres, recency-weighted) and prompts
/// with summary + recent interactions + candidates, then fine-tunes.
class LlmTrsr : public LlmRecommender {
 public:
  LlmTrsr(llm::TinyLm* model, const data::CatalogView* catalog,
          const llm::Vocab* vocab, const LlmRecConfig& config);

  std::string name() const override { return "LLM-TRSR"; }
  util::Status Train(const std::vector<data::Example>& examples) override;
  std::vector<float> ScoreCandidates(
      const data::Example& example,
      const std::vector<int64_t>& candidates) const override;

  /// Recurrent preference summary as tokens (exposed for tests): genre with
  /// the highest recency-weighted mass in the history.
  std::vector<int64_t> SummaryTokens(
      const std::vector<int64_t>& history) const;

 private:
  llm::TinyLm* model_;
  const data::CatalogView* catalog_;
  const llm::Vocab* vocab_;
  llm::PromptBuilder prompt_builder_;
  llm::Verbalizer verbalizer_;
  LlmRecConfig config_;
  mutable util::Rng scratch_rng_;
};

}  // namespace delrec::baselines

#endif  // DELREC_BASELINES_PARADIGM1_H_
