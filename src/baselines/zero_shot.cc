#include "baselines/zero_shot.h"

#include "nn/ops.h"

namespace delrec::baselines {

ZeroShotLlm::ZeroShotLlm(std::string display_name, llm::TinyLm* model,
                         const data::CatalogView* catalog,
                         const llm::Vocab* vocab, int64_t history_length)
    : display_name_(std::move(display_name)),
      model_(model),
      prompt_builder_(catalog, vocab),
      verbalizer_(*catalog, *vocab),
      history_length_(history_length),
      scratch_rng_(17) {}

std::vector<float> ZeroShotLlm::ScoreCandidates(
    const data::Example& example,
    const std::vector<int64_t>& candidates) const {
  nn::NoGradGuard no_grad;
  llm::Prompt prompt = prompt_builder_.BuildRecommendation(
      WindowHistory(example.history, history_length_), candidates,
      nn::Tensor(), {}, nn::Tensor());
  nn::Tensor hidden = model_->Encode(prompt.pieces, 0.0f, scratch_rng_);
  return verbalizer_.Scores(
      model_->LogitsAt(hidden, prompt.mask_position).data(), candidates);
}

}  // namespace delrec::baselines
