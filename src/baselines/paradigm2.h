#ifndef DELREC_BASELINES_PARADIGM2_H_
#define DELREC_BASELINES_PARADIGM2_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/common.h"
#include "nn/layers.h"
#include "srmodels/bert4rec.h"
#include "srmodels/recommender.h"

namespace delrec::baselines {

/// Paradigm 2 — *embeddings from conventional SR models fed to the LLM*.

/// LLaRA (Liao et al. 2023): the conventional model's history encoding and
/// item embeddings are mapped through a learned linear projector into the
/// LLM's embedding space and spliced into the prompt; the projector and the
/// LLM's PEFT group are trained jointly. The projector is exactly the
/// information bottleneck the DELRec paper criticizes.
class Llara : public LlmRecommender {
 public:
  Llara(llm::TinyLm* model, srmodels::SequentialRecommender* sr_model,
        const data::CatalogView* catalog, const llm::Vocab* vocab,
        const LlmRecConfig& config);

  std::string name() const override { return "LLaRA"; }
  util::Status Train(const std::vector<data::Example>& examples) override;
  std::vector<float> ScoreCandidates(
      const data::Example& example,
      const std::vector<int64_t>& candidates) const override;

 private:
  /// Projects the SR history encoding into one LLM-space embedding row.
  nn::Tensor InjectedRows(const std::vector<int64_t>& history) const;

  llm::TinyLm* model_;
  srmodels::SequentialRecommender* sr_model_;
  const data::CatalogView* catalog_;
  llm::PromptBuilder prompt_builder_;
  llm::Verbalizer verbalizer_;
  LlmRecConfig config_;
  std::unique_ptr<nn::Linear> projector_;
  mutable util::Rng scratch_rng_;
};

/// LLM2BERT4Rec (Harte et al., RecSys 2023): initializes BERT4Rec's item
/// embedding table from PCA-reduced LLM title embeddings, then trains
/// BERT4Rec with its usual masked protocol. The LLM is used only as an
/// embedding source.
class Llm2Bert4Rec : public LlmRecommender {
 public:
  Llm2Bert4Rec(llm::TinyLm* llm_for_embeddings, const data::CatalogView* catalog,
               const llm::Vocab* vocab, const LlmRecConfig& config);

  std::string name() const override { return "LLM2BERT4Rec"; }
  util::Status Train(const std::vector<data::Example>& examples) override;
  std::vector<float> ScoreCandidates(
      const data::Example& example,
      const std::vector<int64_t>& candidates) const override;

 private:
  LlmRecConfig config_;
  std::unique_ptr<srmodels::Bert4Rec> bert_;
};

}  // namespace delrec::baselines

#endif  // DELREC_BASELINES_PARADIGM2_H_
