#include "baselines/paradigm3.h"

#include <algorithm>
#include <cmath>

#include "eval/stats.h"
#include "nn/ops.h"
#include "util/check.h"

namespace delrec::baselines {
namespace {

int64_t FindIndex(const std::vector<int64_t>& candidates, int64_t target) {
  const auto it = std::find(candidates.begin(), candidates.end(), target);
  DELREC_CHECK(it != candidates.end());
  return std::distance(candidates.begin(), it);
}

}  // namespace

// ------------------------------------------------------------------ LlamaRec

LlamaRec::LlamaRec(llm::TinyLm* model,
                   srmodels::SequentialRecommender* sr_model,
                   const data::CatalogView* catalog, const llm::Vocab* vocab,
                   const LlmRecConfig& config, int64_t shortlist_size)
    : model_(model),
      sr_model_(sr_model),
      catalog_(catalog),
      prompt_builder_(catalog, vocab),
      verbalizer_(*catalog, *vocab),
      config_(config),
      shortlist_size_(shortlist_size),
      scratch_rng_(config.seed ^ 0x3c3c) {}

util::Status LlamaRec::Train(const std::vector<data::Example>& examples) {
  // Fine-tune the ranker on shortlists recalled by the conventional model
  // (only examples whose target survives recall supervise the ranker, as in
  // the original's two-stage setup).
  return FineTunePromptModel(
      *model_, verbalizer_, examples, config_,
      [&](const data::Example& example, util::Rng& rng) {
        PromptExample unit;
        const std::vector<int64_t> history =
            WindowHistory(example.history, config_.history_length);
        std::vector<int64_t> pool = data::SampleCandidates(
            catalog_->item_count(), example.target, config_.candidate_count,
            rng);
        // Recall stage: conventional-model top shortlist within the pool.
        const std::vector<float> sr_scores =
            sr_model_->ScoreCandidates(history, pool);
        std::vector<int64_t> order = srmodels::TopKFromScores(
            sr_scores, static_cast<int64_t>(pool.size()));
        std::vector<int64_t> shortlist;
        for (int64_t index : order) {
          if (static_cast<int64_t>(shortlist.size()) >= shortlist_size_) break;
          shortlist.push_back(pool[index]);
        }
        // Ensure the target is present so the loss is defined (standard
        // teacher-forcing in retrieve-then-rank training).
        if (std::find(shortlist.begin(), shortlist.end(), example.target) ==
            shortlist.end()) {
          shortlist.back() = example.target;
        }
        unit.candidates = shortlist;
        unit.prompt = prompt_builder_.BuildRecommendation(
            history, shortlist, nn::Tensor(), {}, nn::Tensor());
        unit.target_index = FindIndex(shortlist, example.target);
        return unit;
      },
      "LlamaRec");
}

std::vector<float> LlamaRec::ScoreCandidates(
    const data::Example& example,
    const std::vector<int64_t>& candidates) const {
  nn::NoGradGuard no_grad;
  const std::vector<int64_t> history =
      WindowHistory(example.history, config_.history_length);
  const std::vector<float> sr_scores =
      sr_model_->ScoreCandidates(history, candidates);
  // Recall: indices of the conventional model's shortlist.
  std::vector<int64_t> order = srmodels::TopKFromScores(
      sr_scores, std::min<int64_t>(shortlist_size_,
                                   static_cast<int64_t>(candidates.size())));
  std::vector<int64_t> shortlist;
  for (int64_t index : order) shortlist.push_back(candidates[index]);
  llm::Prompt prompt = prompt_builder_.BuildRecommendation(
      history, shortlist, nn::Tensor(), {}, nn::Tensor());
  nn::Tensor hidden = model_->Encode(prompt.pieces, 0.0f, scratch_rng_);
  const std::vector<float> llm_scores = verbalizer_.Scores(
      model_->LogitsAt(hidden, prompt.mask_position).data(), shortlist);
  // Shortlisted candidates are ranked by the LLM above everything else;
  // the rest keep conventional scores shifted below the shortlist range.
  float min_llm = llm_scores.empty() ? 0.0f : llm_scores[0];
  for (float s : llm_scores) min_llm = std::min(min_llm, s);
  float max_sr = sr_scores[0];
  for (float s : sr_scores) max_sr = std::max(max_sr, s);
  std::vector<float> final_scores(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    final_scores[i] = sr_scores[i] - max_sr + min_llm - 1.0f;
  }
  for (size_t s = 0; s < shortlist.size(); ++s) {
    final_scores[order[s]] = llm_scores[s];
  }
  return final_scores;
}

// ----------------------------------------------------------------- LlmSeqSim

LlmSeqSim::LlmSeqSim(llm::TinyLm* model, const data::CatalogView* catalog,
                     const llm::Vocab* vocab, int64_t history_length,
                     float recency_decay)
    : history_length_(history_length), recency_decay_(recency_decay) {
  item_embeddings_.reserve(catalog->item_count());
  for (int64_t item = 0; item < catalog->item_count(); ++item) {
    item_embeddings_.push_back(
        model->EmbedTokens(vocab->Encode(catalog->title(item))));
  }
}

std::vector<float> LlmSeqSim::ScoreCandidates(
    const data::Example& example,
    const std::vector<int64_t>& candidates) const {
  const std::vector<int64_t> history =
      WindowHistory(example.history, history_length_);
  DELREC_CHECK(!history.empty());
  // Session embedding: recency-weighted mean of item embeddings.
  std::vector<float> session(item_embeddings_[0].size(), 0.0f);
  float weight = 1.0f;
  float total = 0.0f;
  for (auto it = history.rbegin(); it != history.rend(); ++it) {
    const auto& embedding = item_embeddings_[*it];
    for (size_t d = 0; d < session.size(); ++d) {
      session[d] += weight * embedding[d];
    }
    total += weight;
    weight *= recency_decay_;
  }
  for (float& v : session) v /= total;
  std::vector<float> scores;
  scores.reserve(candidates.size());
  for (int64_t candidate : candidates) {
    scores.push_back(
        eval::CosineSimilarity(session, item_embeddings_[candidate]));
  }
  return scores;
}

// ------------------------------------------------------------------- KdaLrd

KdaLrd::KdaLrd(llm::TinyLm* model, const data::CatalogView* catalog,
               const llm::Vocab* vocab, const LlmRecConfig& config,
               float latent_weight)
    : config_(config) {
  const int64_t relation_dim = 12;
  kda_ = std::make_unique<srmodels::Kda>(
      catalog->item_count(), /*embedding_dim=*/32, relation_dim,
      config.history_length, /*num_frequencies=*/4, config.seed + 23);
  // Latent Relation Discovery: LLM title embeddings, PCA-reduced to the
  // relation width, become fixed latent-relation factors blended into KDA.
  std::vector<std::vector<float>> llm_embeddings;
  llm_embeddings.reserve(catalog->item_count());
  for (int64_t item = 0; item < catalog->item_count(); ++item) {
    llm_embeddings.push_back(
        model->EmbedTokens(vocab->Encode(catalog->title(item))));
  }
  std::vector<std::vector<float>> reduced =
      eval::PcaReduce(llm_embeddings, static_cast<int>(relation_dim));
  // Row-normalize so relation dot products stay bounded.
  for (auto& row : reduced) {
    double norm = 0.0;
    for (float v : row) norm += static_cast<double>(v) * v;
    norm = std::sqrt(norm);
    if (norm > 1e-9) {
      for (float& v : row) v = static_cast<float>(v / norm) * 0.3f;
    }
  }
  kda_->InjectLatentRelations(reduced, latent_weight);
}

util::Status KdaLrd::Train(const std::vector<data::Example>& examples) {
  srmodels::TrainConfig train;
  train.epochs = std::max(4, config_.epochs);
  train.learning_rate = 2e-3f;
  train.dropout = 0.2f;
  train.history_length = config_.history_length;
  train.seed = config_.seed;
  train.verbose = config_.verbose;
  return kda_->Train(examples, train);
}

std::vector<float> KdaLrd::ScoreCandidates(
    const data::Example& example,
    const std::vector<int64_t>& candidates) const {
  return kda_->ScoreCandidates(example.history, candidates);
}

}  // namespace delrec::baselines
