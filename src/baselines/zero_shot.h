#ifndef DELREC_BASELINES_ZERO_SHOT_H_
#define DELREC_BASELINES_ZERO_SHOT_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/common.h"

namespace delrec::baselines {

/// Raw open-source LLM baseline (the paper's Bert-Large / Flan-T5-Large /
/// Flan-T5-XL rows): the pretrained TinyLM scores the recommendation prompt
/// zero-shot, with no recommendation-task training at all.
class ZeroShotLlm : public LlmRecommender {
 public:
  /// `model`, `catalog`, `vocab` must outlive this object.
  ZeroShotLlm(std::string display_name, llm::TinyLm* model,
              const data::CatalogView* catalog, const llm::Vocab* vocab,
              int64_t history_length);

  std::string name() const override { return display_name_; }
  util::Status Train(const std::vector<data::Example>& examples) override {
    return util::Status::Ok();
  }
  std::vector<float> ScoreCandidates(
      const data::Example& example,
      const std::vector<int64_t>& candidates) const override;

 private:
  std::string display_name_;
  llm::TinyLm* model_;
  llm::PromptBuilder prompt_builder_;
  llm::Verbalizer verbalizer_;
  int64_t history_length_;
  mutable util::Rng scratch_rng_;
};

}  // namespace delrec::baselines

#endif  // DELREC_BASELINES_ZERO_SHOT_H_
