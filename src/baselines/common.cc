#include "baselines/common.h"

#include <algorithm>
#include <cmath>

#include "nn/anomaly.h"
#include "nn/module.h"
#include "nn/ops.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace delrec::baselines {

std::vector<nn::Tensor> CollectPeftParameters(
    llm::TinyLm& model, int64_t rank, float scale,
    std::vector<nn::LoraLinear*>* adapters_out) {
  model.SetRequiresGrad(false);
  std::vector<nn::LoraLinear*> adapters = model.EnableAdapters(rank, scale);
  std::vector<nn::Tensor> parameters;
  for (nn::LoraLinear* adapter : adapters) {
    adapter->SetTraining(true);
    for (const nn::Tensor& p : adapter->Parameters()) parameters.push_back(p);
  }
  for (nn::Tensor p : model.BitFitParameters()) {
    p.set_requires_grad(true);
    parameters.push_back(p);
  }
  for (nn::Tensor p : model.EmbeddingAdapterParameters()) {
    p.set_requires_grad(true);
    parameters.push_back(p);
  }
  nn::Tensor table = model.token_table();
  table.set_requires_grad(true);
  parameters.push_back(table);
  if (adapters_out != nullptr) *adapters_out = adapters;
  return parameters;
}

util::Status FineTunePromptModel(
    llm::TinyLm& model, const llm::Verbalizer& verbalizer,
    const std::vector<data::Example>& examples, const LlmRecConfig& config,
    const std::function<PromptExample(const data::Example&, util::Rng&)>&
        make_example,
    const char* name, const std::vector<nn::Tensor>& extra_parameters) {
  DELREC_CHECK(!examples.empty()) << name << ": no training examples";
  nn::LossAnomalyGuard guard({});
  util::Rng rng(config.seed);
  std::vector<data::Example> subset =
      data::Subsample(examples, config.max_examples, rng);
  std::vector<nn::LoraLinear*> adapters;
  std::vector<nn::Tensor> parameters = CollectPeftParameters(
      model, config.lora_rank, config.lora_scale, &adapters);
  for (const nn::Tensor& p : extra_parameters) parameters.push_back(p);
  nn::AdaLoraAllocator allocator(
      (2 * config.lora_rank * static_cast<int64_t>(adapters.size())) / 3);
  for (nn::LoraLinear* adapter : adapters) allocator.Register(adapter);
  nn::Adam optimizer(parameters, config.learning_rate);
  model.SetTraining(true);
  std::vector<int64_t> order(subset.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  int64_t batch_counter = 0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(order);
    float epoch_loss = 0.0f;
    int64_t batches = 0;
    for (size_t start = 0; start < order.size();
         start += config.batch_size) {
      const size_t end =
          std::min(order.size(), start + static_cast<size_t>(config.batch_size));
      std::vector<nn::Tensor> losses;
      for (size_t i = start; i < end; ++i) {
        PromptExample unit = make_example(subset[order[i]], rng);
        nn::Tensor hidden =
            model.Encode(unit.prompt.pieces, config.dropout, rng);
        nn::Tensor mask_logits =
            model.LogitsAt(hidden, unit.prompt.mask_position);
        if (unit.candidates.empty()) {
          losses.push_back(nn::CrossEntropyWithLogits(
              verbalizer.AllItemLogits(mask_logits), {unit.target_item}));
        } else {
          losses.push_back(nn::CrossEntropyWithLogits(
              verbalizer.CandidateLogits(mask_logits, unit.candidates),
              {unit.target_index}));
        }
      }
      if (losses.empty()) continue;
      nn::Tensor loss = nn::MulScalar(
          nn::AddN(losses), 1.0f / static_cast<float>(losses.size()));
      float loss_value = loss.item();
      if (util::Failpoints::Instance().ShouldCorrupt("baseline.loss")) {
        loss_value = std::nanf("");
      }
      if (guard.ShouldSkip(loss_value)) {
        DELREC_LOG(Warning) << name << " anomalous batch loss " << loss_value
                            << " — skipping step";
        if (guard.exhausted()) {
          model.SetTraining(false);
          model.SetRequiresGrad(true);
          return guard.status();
        }
        continue;
      }
      std::vector<std::vector<float>> snapshot =
          nn::SnapshotParameterData(parameters);
      optimizer.ZeroGrad();
      loss.Backward();
      allocator.AccumulateSensitivity();
      nn::ClipGradNorm(parameters, 5.0f);
      optimizer.Step();
      if (!nn::AllParametersFinite(parameters)) {
        nn::RestoreParameterData(parameters, snapshot);
        guard.ReportParameterAnomaly();
        DELREC_LOG(Warning) << name
                            << " non-finite parameters after step — "
                               "restored pre-step values";
        if (guard.exhausted()) {
          model.SetTraining(false);
          model.SetRequiresGrad(true);
          return guard.status();
        }
        continue;
      }
      if (++batch_counter % 8 == 0) allocator.Reallocate();
      epoch_loss += loss_value;
      ++batches;
    }
    if (config.verbose) {
      DELREC_LOG(Info) << name << " epoch " << epoch + 1 << "/"
                       << config.epochs
                       << " loss=" << (batches ? epoch_loss / batches : 0);
    }
  }
  model.SetTraining(false);
  model.SetRequiresGrad(true);
  return util::Status::Ok();
}

std::vector<int64_t> WindowHistory(const std::vector<int64_t>& history,
                                   int64_t limit) {
  if (static_cast<int64_t>(history.size()) <= limit) return history;
  return std::vector<int64_t>(history.end() - limit, history.end());
}

}  // namespace delrec::baselines
