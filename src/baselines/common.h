#ifndef DELREC_BASELINES_COMMON_H_
#define DELREC_BASELINES_COMMON_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/split.h"
#include "llm/prompt.h"
#include "llm/tiny_lm.h"
#include "llm/verbalizer.h"
#include "llm/vocab.h"
#include "nn/lora.h"
#include "nn/optimizer.h"
#include "util/rng.h"
#include "util/status.h"

namespace delrec::baselines {

/// Shared fine-tuning knobs for the LLM-based baselines. Matched to
/// DELRec's stage-2 budget so comparisons are fair.
struct LlmRecConfig {
  int64_t history_length = 10;
  int64_t candidate_count = 15;
  int epochs = 5;
  float learning_rate = 1e-3f;
  int64_t max_examples = 700;
  /// See DelRecConfig::candidates_in_prompt.
  bool candidates_in_prompt = false;
  int batch_size = 16;
  float dropout = 0.1f;
  int64_t lora_rank = 8;
  float lora_scale = 2.0f;
  uint64_t seed = 41;
  bool verbose = false;
};

/// Interface shared by every LLM-based recommender baseline.
class LlmRecommender {
 public:
  virtual ~LlmRecommender() = default;
  virtual std::string name() const = 0;
  /// Non-OK when training diverged (loss-anomaly guard) or an underlying
  /// component failed; the model keeps its last healthy parameters.
  virtual util::Status Train(const std::vector<data::Example>& examples) = 0;
  virtual std::vector<float> ScoreCandidates(
      const data::Example& example,
      const std::vector<int64_t>& candidates) const = 0;
};

/// Assembles the PEFT parameter group used by every fine-tuned baseline and
/// by DELRec stage 2: AdaLoRA adapters, BitFit biases/LN, embedding-LoRA
/// factors, and the fully-tuned token table (modules_to_save analog).
/// Base dense weights are frozen as a side effect.
std::vector<nn::Tensor> CollectPeftParameters(
    llm::TinyLm& model, int64_t rank, float scale,
    std::vector<nn::LoraLinear*>* adapters_out);

/// One fine-tuning unit of work: the composed prompt, the candidate list it
/// scores, and the index of the supervised target within the candidates.
struct PromptExample {
  llm::Prompt prompt;
  /// Non-empty: supervise with candidate cross-entropy over this list using
  /// target_index (LlamaRec's shortlist ranking). Empty: supervise with the
  /// full-catalog softmax head on target_item (the default — the same
  /// full-ranking supervision conventional SR models get).
  std::vector<int64_t> candidates;
  int64_t target_index = 0;
  int64_t target_item = -1;
};

/// Shared fine-tuning loop: Adam over the PEFT group, batch-mean candidate
/// cross-entropy through the verbalizer. `make_example` rebuilds the prompt
/// each epoch (so candidate sampling and dropout re-randomize). Batches with
/// anomalous losses (nn::LossAnomalyGuard) are skipped with parameters
/// restored; returns Internal after too many consecutive anomalies. The
/// `baseline.loss` corrupt-mode failpoint forces a NaN batch loss.
util::Status FineTunePromptModel(
    llm::TinyLm& model, const llm::Verbalizer& verbalizer,
    const std::vector<data::Example>& examples, const LlmRecConfig& config,
    const std::function<PromptExample(const data::Example&, util::Rng&)>&
        make_example,
    const char* name,
    const std::vector<nn::Tensor>& extra_parameters = {});

/// Truncates a history to its most recent `limit` items.
std::vector<int64_t> WindowHistory(const std::vector<int64_t>& history,
                                   int64_t limit);

}  // namespace delrec::baselines

#endif  // DELREC_BASELINES_COMMON_H_
