#ifndef DELREC_BASELINES_PARADIGM3_H_
#define DELREC_BASELINES_PARADIGM3_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/common.h"
#include "srmodels/kda.h"
#include "srmodels/recommender.h"

namespace delrec::baselines {

/// Paradigm 3 — *combining embeddings/outputs of LLMs and conventional SR
/// models* (the LLM is not the final recommender, or works in tandem).

/// LlamaRec (Yue et al. 2023): two-stage retrieve-then-rank. The
/// conventional model recalls a shortlist from the candidate set; the LLM
/// re-ranks the shortlist through its verbalizer. Candidates outside the
/// shortlist keep (offset) conventional scores.
class LlamaRec : public LlmRecommender {
 public:
  LlamaRec(llm::TinyLm* model, srmodels::SequentialRecommender* sr_model,
           const data::CatalogView* catalog, const llm::Vocab* vocab,
           const LlmRecConfig& config, int64_t shortlist_size = 8);

  std::string name() const override { return "LlamaRec"; }
  util::Status Train(const std::vector<data::Example>& examples) override;
  std::vector<float> ScoreCandidates(
      const data::Example& example,
      const std::vector<int64_t>& candidates) const override;

 private:
  llm::TinyLm* model_;
  srmodels::SequentialRecommender* sr_model_;
  const data::CatalogView* catalog_;
  llm::PromptBuilder prompt_builder_;
  llm::Verbalizer verbalizer_;
  LlmRecConfig config_;
  int64_t shortlist_size_;
  mutable util::Rng scratch_rng_;
};

/// LLMSEQSIM (Harte et al., RecSys 2023): training-free. Items get LLM
/// title embeddings; a session embedding is the recency-weighted mean of the
/// history's item embeddings; candidates are ranked by cosine similarity.
class LlmSeqSim : public LlmRecommender {
 public:
  LlmSeqSim(llm::TinyLm* model, const data::CatalogView* catalog,
            const llm::Vocab* vocab, int64_t history_length,
            float recency_decay = 0.8f);

  std::string name() const override { return "LLMSEQSIM"; }
  util::Status Train(const std::vector<data::Example>& examples) override {
    return util::Status::Ok();
  }
  std::vector<float> ScoreCandidates(
      const data::Example& example,
      const std::vector<int64_t>& candidates) const override;

 private:
  int64_t history_length_;
  float recency_decay_;
  std::vector<std::vector<float>> item_embeddings_;
};

/// KDA_LRD (Yang et al. 2024): the KDA backbone augmented with Latent
/// Relation Discovery — latent item relations derived from LLM title
/// embeddings are blended into KDA's relation factors before training.
class KdaLrd : public LlmRecommender {
 public:
  KdaLrd(llm::TinyLm* model, const data::CatalogView* catalog,
         const llm::Vocab* vocab, const LlmRecConfig& config,
         float latent_weight = 0.4f);

  std::string name() const override { return "KDA_LRD"; }
  util::Status Train(const std::vector<data::Example>& examples) override;
  std::vector<float> ScoreCandidates(
      const data::Example& example,
      const std::vector<int64_t>& candidates) const override;

 private:
  LlmRecConfig config_;
  std::unique_ptr<srmodels::Kda> kda_;
};

}  // namespace delrec::baselines

#endif  // DELREC_BASELINES_PARADIGM3_H_
