#include "baselines/paradigm1.h"

#include <algorithm>

#include "nn/ops.h"
#include "util/check.h"
#include "util/string_util.h"

namespace delrec::baselines {

// ---------------------------------------------------------------- RecRanker

RecRanker::RecRanker(llm::TinyLm* model,
                     srmodels::SequentialRecommender* sr_model,
                     const data::CatalogView* catalog, const llm::Vocab* vocab,
                     const LlmRecConfig& config)
    : model_(model),
      sr_model_(sr_model),
      catalog_(catalog),
      prompt_builder_(catalog, vocab),
      verbalizer_(*catalog, *vocab),
      config_(config),
      scratch_rng_(config.seed ^ 0xabcd) {}

std::vector<int64_t> RecRanker::HintTokens(
    const std::vector<int64_t>& history) const {
  // Textual SR output: "the <model> model recommends top <t1> <t2> <t3>".
  const std::vector<int64_t> top = sr_model_->TopK(history, 3);
  std::vector<int64_t> tokens = prompt_builder_.vocab().Encode(
      "the " + util::ToLower(sr_model_->name()) + " model recommends top");
  for (int64_t item : top) {
    for (int64_t token : prompt_builder_.TitleTokens(item)) {
      tokens.push_back(token);
    }
  }
  return tokens;
}

util::Status RecRanker::Train(const std::vector<data::Example>& examples) {
  // Importance-aware sampling: longer histories carry more signal, so weight
  // examples by history length when drawing the training subset.
  std::vector<data::Example> weighted;
  util::Rng sample_rng(config_.seed + 3);
  std::vector<double> weights;
  weights.reserve(examples.size());
  for (const data::Example& example : examples) {
    weights.push_back(static_cast<double>(example.history.size()));
  }
  const int64_t want = std::min<int64_t>(
      config_.max_examples, static_cast<int64_t>(examples.size()));
  for (int64_t i = 0; i < want; ++i) {
    weighted.push_back(examples[sample_rng.Discrete(weights)]);
  }
  LlmRecConfig config = config_;
  config.max_examples = want;  // Already sampled.
  return FineTunePromptModel(
      *model_, verbalizer_, weighted, config,
      [&](const data::Example& example, util::Rng& rng) {
        PromptExample unit;
        const std::vector<int64_t> history =
            WindowHistory(example.history, config_.history_length);
        unit.prompt = prompt_builder_.BuildRecommendation(
            history, {}, nn::Tensor(), HintTokens(history), nn::Tensor());
        unit.target_item = example.target;
        return unit;
      },
      "RecRanker");
}

std::vector<float> RecRanker::ScoreCandidates(
    const data::Example& example,
    const std::vector<int64_t>& candidates) const {
  nn::NoGradGuard no_grad;
  const std::vector<int64_t> history =
      WindowHistory(example.history, config_.history_length);
  llm::Prompt prompt = prompt_builder_.BuildRecommendation(
      history,
      config_.candidates_in_prompt ? candidates : std::vector<int64_t>{}, nn::Tensor(), HintTokens(history), nn::Tensor());
  nn::Tensor hidden = model_->Encode(prompt.pieces, 0.0f, scratch_rng_);
  return verbalizer_.Scores(
      model_->LogitsAt(hidden, prompt.mask_position).data(), candidates);
}

// ------------------------------------------------------------- LlmSeqPrompt

LlmSeqPrompt::LlmSeqPrompt(llm::TinyLm* model, const data::CatalogView* catalog,
                           const llm::Vocab* vocab,
                           const LlmRecConfig& config)
    : model_(model),
      catalog_(catalog),
      prompt_builder_(catalog, vocab),
      verbalizer_(*catalog, *vocab),
      config_(config),
      scratch_rng_(config.seed ^ 0xbcde) {}

util::Status LlmSeqPrompt::Train(
    const std::vector<data::Example>& examples) {
  return FineTunePromptModel(
      *model_, verbalizer_, examples, config_,
      [&](const data::Example& example, util::Rng& rng) {
        PromptExample unit;
        unit.prompt = prompt_builder_.BuildRecommendation(
            WindowHistory(example.history, config_.history_length), {},
            nn::Tensor(), {}, nn::Tensor());
        unit.target_item = example.target;
        return unit;
      },
      "LLMSEQPROMPT");
}

std::vector<float> LlmSeqPrompt::ScoreCandidates(
    const data::Example& example,
    const std::vector<int64_t>& candidates) const {
  nn::NoGradGuard no_grad;
  llm::Prompt prompt = prompt_builder_.BuildRecommendation(
      WindowHistory(example.history, config_.history_length),
      config_.candidates_in_prompt ? candidates : std::vector<int64_t>{},
      nn::Tensor(), {}, nn::Tensor());
  nn::Tensor hidden = model_->Encode(prompt.pieces, 0.0f, scratch_rng_);
  return verbalizer_.Scores(
      model_->LogitsAt(hidden, prompt.mask_position).data(), candidates);
}

// ------------------------------------------------------------------ LlmTrsr

LlmTrsr::LlmTrsr(llm::TinyLm* model, const data::CatalogView* catalog,
                 const llm::Vocab* vocab, const LlmRecConfig& config)
    : model_(model),
      catalog_(catalog),
      vocab_(vocab),
      prompt_builder_(catalog, vocab),
      verbalizer_(*catalog, *vocab),
      config_(config),
      scratch_rng_(config.seed ^ 0xcdef) {}

std::vector<int64_t> LlmTrsr::SummaryTokens(
    const std::vector<int64_t>& history) const {
  // Recurrent summarization, condensed: recency-weighted genre histogram;
  // the dominant genre becomes the textual preference summary.
  std::vector<double> mass(catalog_->genre_count(), 0.0);
  double weight = 1.0;
  for (auto it = history.rbegin(); it != history.rend(); ++it) {
    mass[catalog_->genre(*it)] += weight;
    weight *= 0.8;  // Older interactions matter less.
  }
  const int64_t dominant =
      std::max_element(mass.begin(), mass.end()) - mass.begin();
  return vocab_->Encode("the user prefers mostly " +
                        std::string(catalog_->genre_name(dominant)) +
                        " items recently");
}

util::Status LlmTrsr::Train(const std::vector<data::Example>& examples) {
  return FineTunePromptModel(
      *model_, verbalizer_, examples, config_,
      [&](const data::Example& example, util::Rng& rng) {
        PromptExample unit;
        const std::vector<int64_t> history =
            WindowHistory(example.history, config_.history_length);
        unit.prompt = prompt_builder_.BuildRecommendation(
            history, {}, nn::Tensor(), SummaryTokens(history), nn::Tensor());
        unit.target_item = example.target;
        return unit;
      },
      "LLM-TRSR");
}

std::vector<float> LlmTrsr::ScoreCandidates(
    const data::Example& example,
    const std::vector<int64_t>& candidates) const {
  nn::NoGradGuard no_grad;
  const std::vector<int64_t> history =
      WindowHistory(example.history, config_.history_length);
  llm::Prompt prompt = prompt_builder_.BuildRecommendation(
      history,
      config_.candidates_in_prompt ? candidates : std::vector<int64_t>{}, nn::Tensor(), SummaryTokens(history),
      nn::Tensor());
  nn::Tensor hidden = model_->Encode(prompt.pieces, 0.0f, scratch_rng_);
  return verbalizer_.Scores(
      model_->LogitsAt(hidden, prompt.mask_position).data(), candidates);
}

}  // namespace delrec::baselines
