#include "baselines/paradigm2.h"

#include <algorithm>
#include <cmath>

#include "eval/stats.h"
#include "nn/ops.h"
#include "util/check.h"

namespace delrec::baselines {

// --------------------------------------------------------------------- LLaRA

Llara::Llara(llm::TinyLm* model, srmodels::SequentialRecommender* sr_model,
             const data::CatalogView* catalog, const llm::Vocab* vocab,
             const LlmRecConfig& config)
    : model_(model),
      sr_model_(sr_model),
      catalog_(catalog),
      prompt_builder_(catalog, vocab),
      verbalizer_(*catalog, *vocab),
      config_(config),
      scratch_rng_(config.seed ^ 0x1a2a) {
  DELREC_CHECK_GT(sr_model->representation_dim(), 0)
      << "LLaRA needs an SR model that exposes embeddings";
  util::Rng init_rng(config.seed + 9);
  projector_ = std::make_unique<nn::Linear>(sr_model->representation_dim(),
                                            model->model_dim(), init_rng);
}

nn::Tensor Llara::InjectedRows(const std::vector<int64_t>& history) const {
  // Two injected rows: the SR model's history encoding and its embedding of
  // the most recent item, both through the (trainable) projector.
  const std::vector<float> encoded = sr_model_->EncodeHistory(history);
  const std::vector<float> last_item =
      sr_model_->ItemEmbedding(history.back());
  const int64_t sr_dim = sr_model_->representation_dim();
  std::vector<float> raw;
  raw.insert(raw.end(), encoded.begin(), encoded.end());
  raw.insert(raw.end(), last_item.begin(), last_item.end());
  nn::Tensor source = nn::Tensor::FromData({2, sr_dim}, std::move(raw));
  return projector_->Forward(source);  // (2, model_dim)
}

util::Status Llara::Train(const std::vector<data::Example>& examples) {
  return FineTunePromptModel(
      *model_, verbalizer_, examples, config_,
      [&](const data::Example& example, util::Rng& rng) {
        PromptExample unit;
        const std::vector<int64_t> history =
            WindowHistory(example.history, config_.history_length);
        unit.prompt = prompt_builder_.BuildRecommendation(
            history, {}, nn::Tensor(), {}, InjectedRows(history));
        unit.target_item = example.target;
        return unit;
      },
      "LLaRA", projector_->Parameters());
}

std::vector<float> Llara::ScoreCandidates(
    const data::Example& example,
    const std::vector<int64_t>& candidates) const {
  nn::NoGradGuard no_grad;
  const std::vector<int64_t> history =
      WindowHistory(example.history, config_.history_length);
  llm::Prompt prompt = prompt_builder_.BuildRecommendation(
      history,
      config_.candidates_in_prompt ? candidates : std::vector<int64_t>{}, nn::Tensor(), {}, InjectedRows(history));
  nn::Tensor hidden = model_->Encode(prompt.pieces, 0.0f, scratch_rng_);
  return verbalizer_.Scores(
      model_->LogitsAt(hidden, prompt.mask_position).data(), candidates);
}

// -------------------------------------------------------------- LLM2BERT4Rec

Llm2Bert4Rec::Llm2Bert4Rec(llm::TinyLm* llm_for_embeddings,
                           const data::CatalogView* catalog,
                           const llm::Vocab* vocab,
                           const LlmRecConfig& config)
    : config_(config) {
  // LLM title embeddings → PCA to the BERT4Rec width → scaled init.
  const int64_t bert_dim =
      std::max<int64_t>(8, llm_for_embeddings->model_dim() / 2);
  std::vector<std::vector<float>> llm_embeddings;
  llm_embeddings.reserve(catalog->item_count());
  for (int64_t item = 0; item < catalog->item_count(); ++item) {
    llm_embeddings.push_back(
        llm_for_embeddings->EmbedTokens(vocab->Encode(catalog->title(item))));
  }
  std::vector<std::vector<float>> reduced =
      eval::PcaReduce(llm_embeddings, static_cast<int>(bert_dim));
  // Rescale to a healthy init std so downstream training is stable.
  double sq = 0.0;
  int64_t count = 0;
  for (const auto& row : reduced) {
    for (float v : row) {
      sq += static_cast<double>(v) * v;
      ++count;
    }
  }
  const float std_now =
      static_cast<float>(std::sqrt(sq / std::max<int64_t>(1, count)));
  const float scale = std_now > 1e-12f ? 0.05f / std_now : 1.0f;
  for (auto& row : reduced) {
    for (float& v : row) v *= scale;
  }
  bert_ = std::make_unique<srmodels::Bert4Rec>(
      catalog->item_count(), bert_dim, config.history_length,
      /*num_blocks=*/2,
      /*num_heads=*/2, config.seed + 17);
  bert_->InitializeItemEmbeddings(reduced);
}

util::Status Llm2Bert4Rec::Train(
    const std::vector<data::Example>& examples) {
  srmodels::TrainConfig train;
  train.epochs = std::max(4, config_.epochs);
  train.learning_rate = 2e-3f;
  train.dropout = 0.2f;
  train.history_length = config_.history_length;
  train.seed = config_.seed;
  train.verbose = config_.verbose;
  return bert_->Train(examples, train);
}

std::vector<float> Llm2Bert4Rec::ScoreCandidates(
    const data::Example& example,
    const std::vector<int64_t>& candidates) const {
  return bert_->ScoreCandidates(example.history, candidates);
}

}  // namespace delrec::baselines
