// Perf smoke bench (ctest -L perf_smoke): emits the machine-readable RQ5
// record BENCH_rq5.json and gates it against the committed baseline.
//
// Three sections, all sized to finish in seconds:
//  1. Op-level GEMM GFLOP/s for the blocked kernels on repo-model shapes,
//     plus blocked-vs-reference speedups on the canonical 256³ shape with a
//     hard floor assert (the PR's ≥2× acceptance criterion on AVX2+ hosts).
//  2. A tiny end-to-end train/eval through DatasetHarness, which records
//     stage1_distill_s / stage2_finetune_s / eval_s via the harness hooks.
//  3. Warm-pool allocation counts for a repeated fixed eval workload —
//     deterministic at one thread, so they gate hard in the baseline
//     comparison (allocation regressions fail CI even on noisy machines).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "nn/gemm.h"
#include "util/buffer_pool.h"
#include "util/check.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/threadpool.h"
#include "util/timer.h"

namespace delrec {
namespace {

using GemmFn = void (*)(const float*, const float*, float*, int64_t, int64_t,
                        int64_t, bool);

struct Shape {
  const char* label;  // Where the shape shows up in this repo's models.
  int64_t m, n, k;
};

// Embedding/hidden dims of the repo's backbones and TinyLM (see srmodels/
// and llm/): these are the GEMMs training actually issues, plus the
// canonical square used for the acceptance criterion.
const Shape kShapes[] = {
    {"gru4rec_64x24x24", 64, 24, 24},
    {"sasrec_64x32x32", 64, 32, 32},
    {"tinylm_ffn_128x128x32", 128, 128, 32},
    {"square_256x256x256", 256, 256, 256},
};

/// Seconds per call, best of `rounds` timed runs of `reps` calls each. Small
/// fixed budgets: this is a smoke probe, not a rigorous microbenchmark.
double TimeGemm(GemmFn fn, const std::vector<float>& a,
                const std::vector<float>& b, std::vector<float>& c, int64_t m,
                int64_t n, int64_t k, int reps, int rounds) {
  fn(a.data(), b.data(), c.data(), m, n, k, /*accumulate=*/false);  // Warm-up.
  double best = 1e300;
  for (int round = 0; round < rounds; ++round) {
    util::WallTimer timer;
    for (int rep = 0; rep < reps; ++rep) {
      fn(a.data(), b.data(), c.data(), m, n, k, /*accumulate=*/false);
    }
    best = std::min(best, timer.ElapsedSeconds() / reps);
  }
  return best;
}

double Gflops(int64_t m, int64_t n, int64_t k, double seconds) {
  return 2.0 * static_cast<double>(m) * n * k / seconds * 1e-9;
}

void BenchGemmShapes(bench::BenchRecorder& recorder) {
  util::Rng rng(41);
  const struct {
    const char* name;
    GemmFn blocked;
    GemmFn reference;
  } kVariants[] = {
      {"nn", nn::GemmNN, nn::GemmNNRef},
      {"nt", nn::GemmNT, nn::GemmNTRef},
      {"tn", nn::GemmTN, nn::GemmTNRef},
  };
  for (const Shape& shape : kShapes) {
    std::vector<float> a(shape.m * shape.k), b(shape.k * shape.n);
    std::vector<float> c(shape.m * shape.n);
    for (float& v : a) v = rng.UniformFloat(-1.0f, 1.0f);
    for (float& v : b) v = rng.UniformFloat(-1.0f, 1.0f);
    const bool canonical = shape.m == 256;
    // ~40 MFLOP per timed round on the canonical shape, less on the rest.
    const int reps = canonical ? 3 : 50;
    for (const auto& variant : kVariants) {
      const double blocked_s =
          TimeGemm(variant.blocked, a, b, c, shape.m, shape.n, shape.k, reps,
                   /*rounds=*/3);
      const double blocked_gflops = Gflops(shape.m, shape.n, shape.k, blocked_s);
      recorder.Record(std::string("gemm_") + variant.name + "_" + shape.label +
                          "_gflops",
                      blocked_gflops, "GFLOP/s", bench::MetricKind::kThroughput);
      if (!canonical) continue;
      const double ref_s = TimeGemm(variant.reference, a, b, c, shape.m,
                                    shape.n, shape.k, reps, /*rounds=*/3);
      const double speedup = ref_s / blocked_s;
      recorder.Record(std::string("gemm_") + variant.name + "_" + shape.label +
                          "_ref_gflops",
                      Gflops(shape.m, shape.n, shape.k, ref_s), "GFLOP/s",
                      bench::MetricKind::kThroughput);
      recorder.Record(std::string("gemm_") + variant.name +
                          "_speedup_vs_ref",
                      speedup, "x", bench::MetricKind::kRatio);
      std::printf("[perf_smoke] gemm_%s %s: blocked %.2f GFLOP/s, ref %.2f, "
                  "speedup %.2fx\n",
                  variant.name, shape.label, blocked_gflops,
                  Gflops(shape.m, shape.n, shape.k, ref_s), speedup);
      if (std::string(variant.name) == "nn") {
        // Acceptance floor: ≥2× over the naive kernel on 256³ GemmNN. The
        // scalar fallback (pre-AVX2 hosts) reorganizes the same arithmetic,
        // so it only has to not regress there.
        const bool scalar_isa =
            nn::GemmKernelConfig().find("isa=scalar") != std::string::npos;
        const double floor = scalar_isa ? 0.8 : 2.0;
        DELREC_CHECK_GE(speedup, floor)
            << "blocked GemmNN speedup below floor (" << speedup << " < "
            << floor << ") with kernel " << nn::GemmKernelConfig();
      }
    }
  }
}

/// Tiny end-to-end train + eval. The harness hooks populate the stage and
/// eval timing metrics; this adds eval throughput and the deterministic
/// warm-pool allocation counts.
void BenchTrainEval(bench::BenchRecorder& recorder) {
  bench::HarnessOptions options = bench::OptionsFromEnv();
  options.fast = true;
  options.eval_examples = 30;
  options.pretrain_epochs = 1;
  options.stage1_examples = 24;
  options.stage1_epochs = 1;
  options.stage2_examples = 40;
  options.stage2_epochs = 1;
  options.baseline_examples = 20;
  options.baseline_epochs = 1;
  options.sr_epochs = 1;
  bench::DatasetHarness harness(data::MovieLens100KConfig(), options);
  auto trained =
      harness.TrainDelRec(srmodels::Backbone::kSasRec, harness.DelRecDefaults());

  util::WallTimer timer;
  const eval::MetricsAccumulator metrics =
      harness.EvaluateDelRec(*trained.model);
  const double eval_s = timer.ElapsedSeconds();
  const double examples =
      static_cast<double>(metrics.hit_at_1_samples().size());
  recorder.Record("eval_throughput_eps", examples / eval_s, "examples/s",
                  bench::MetricKind::kThroughput);

  // Second, identical eval against a now-warm pool: at one thread the
  // acquire/release trace is deterministic, so these counts are stable and
  // the baseline comparison hard-gates them.
  util::BufferPool& pool = util::BufferPool::Global();
  pool.ResetStatCounters();
  harness.EvaluateDelRec(*trained.model);
  const util::BufferPool::Stats stats = pool.GetStats();
  const bool stable = util::ParallelThreads() == 1 && pool.enabled();
  const double acquires =
      static_cast<double>(stats.pool_hits + stats.fresh_allocations);
  recorder.Record("eval_warm_fresh_allocations",
                  static_cast<double>(stats.fresh_allocations), "allocs",
                  bench::MetricKind::kCount, stable);
  recorder.Record("eval_warm_pool_hit_ratio",
                  acquires > 0 ? stats.pool_hits / acquires : 1.0, "ratio",
                  bench::MetricKind::kRatio, stable);
  std::printf("[perf_smoke] warm eval: %llu pool hits, %llu fresh allocs\n",
              static_cast<unsigned long long>(stats.pool_hits),
              static_cast<unsigned long long>(stats.fresh_allocations));
}

/// Re-reads the emitted file and structurally validates it — the smoke test
/// covers the emitter, not just the in-memory document.
void ValidateEmittedJson(const std::string& path) {
  std::ifstream in(path);
  DELREC_CHECK(static_cast<bool>(in)) << "missing bench JSON " << path;
  std::ostringstream text;
  text << in.rdbuf();
  util::Json doc;
  const util::Status parsed = util::Json::Parse(text.str(), &doc);
  DELREC_CHECK(parsed.ok()) << parsed.ToString();
  const util::Status valid = bench::BenchRecorder::ValidateSchema(doc);
  DELREC_CHECK(valid.ok()) << valid.ToString();
  DELREC_CHECK(doc.Find("bench")->str() == "rq5");
  const util::Json* metrics = doc.Find("metrics");
  bool has_gemm = false, has_stage = false;
  for (size_t i = 0; i < metrics->size(); ++i) {
    const std::string& name = metrics->at(i).Find("name")->str();
    has_gemm = has_gemm || name == "gemm_nn_square_256x256x256_gflops";
    has_stage = has_stage || name == "stage2_finetune_s";
  }
  DELREC_CHECK(has_gemm) << "GEMM metrics missing from " << path;
  DELREC_CHECK(has_stage) << "stage timing metrics missing from " << path;
  std::printf("[perf_smoke] %s: schema valid (%zu metrics)\n", path.c_str(),
              metrics->size());
}

}  // namespace
}  // namespace delrec

int main() {
  using namespace delrec;
  bench::BeginBench("rq5");
  bench::BenchRecorder& recorder = bench::BenchRecorder::Global();
  BenchGemmShapes(recorder);
  BenchTrainEval(recorder);
  const int rc = bench::FinishBench();
  const std::string path = bench::BenchRecorder::OutputPath("rq5");
  if (!path.empty()) ValidateEmittedJson(path);
  return rc;
}
