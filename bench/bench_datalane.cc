// Out-of-core data-plane bench (DESIGN.md §14): generates a columnar event
// catalog DIRECT to disk, then runs the complete streaming loop over the
// mmap-backed file — full sharded scan, one-pass reservoir split sampling,
// one SASRec training epoch, candidate-set eval — without ever holding the
// event log in RAM.
//
// Default (full) mode sizes the catalog at two million users (~78M events,
// ~340 MB on disk) and hard-gates peak RSS at 1/4 of the file size: the run
// exits non-zero if any stage materializes the log. The budget has to cover
// the process baseline plus SASRec's pooled training buffers (~55 MB
// together), so the gate only discriminates once the file is a few hundred
// MB — which is exactly the scale the data plane exists for. DELREC_FAST=1 (the
// `datalane_smoke` ctest) runs the same loop on a small catalog in seconds
// and gates the stable metrics (file size, event counts, scan checksum,
// split sizes, eval accuracy) against the committed baseline; the RSS gate
// is skipped there because the process baseline dwarfs a tiny file.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/harness.h"
#include "data/columnar.h"
#include "data/dataset.h"
#include "data/event_stream.h"
#include "data/split.h"
#include "eval/metrics.h"
#include "eval/protocol.h"
#include "srmodels/factory.h"
#include "srmodels/recommender.h"
#include "util/status.h"
#include "util/timer.h"

namespace delrec {
namespace {

int64_t FileSizeBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return -1;
  return static_cast<int64_t>(in.tellg());
}

int Run() {
  bench::BeginBench("datalane");
  const bench::HarnessOptions options = bench::OptionsFromEnv();
  bench::BenchRecorder& recorder = bench::BenchRecorder::Global();

  data::GeneratorConfig config;
  config.name = options.fast ? "datalane-smoke" : "datalane-2m";
  config.num_users = options.fast ? 20'000 : 2'000'000;
  config.num_items = options.fast ? 2'000 : 10'000;
  config.num_genres = 12;
  config.min_sequence_length = 8;
  config.max_sequence_length = 60;
  config.mean_sequence_length = 40.0;
  config.seed = 20260809;

  const std::string path = "BENCH_datalane_catalog.bin";

  // Phase 1: direct-to-disk generation (O(num_items) memory however many
  // users are asked for).
  {
    bench::ScopedPhaseTimer timer("generate");
    const util::Status status = data::GenerateCatalogFile(config, path);
    if (!status.ok()) {
      std::fprintf(stderr, "generate failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }
  const int64_t file_size = FileSizeBytes(path);
  if (file_size < 0) {
    std::fprintf(stderr, "catalog file missing after generation\n");
    return 1;
  }
  recorder.Record("catalog_bytes", static_cast<double>(file_size), "bytes",
                  bench::MetricKind::kCount, /*stable=*/true);

  // Phase 2: zero-copy open with full superblock/checksum validation.
  util::StatusOr<data::MappedCatalog> mapped =
      [&]() -> util::StatusOr<data::MappedCatalog> {
    bench::ScopedPhaseTimer timer("open");
    return data::MappedCatalog::Open(path);
  }();
  if (!mapped.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 mapped.status().ToString().c_str());
    return 1;
  }
  const data::MappedCatalog& catalog = mapped.value();
  recorder.Record("catalog_users", static_cast<double>(catalog.user_count()),
                  "users", bench::MetricKind::kCount, /*stable=*/true);
  recorder.Record("catalog_events",
                  static_cast<double>(catalog.event_count()), "events",
                  bench::MetricKind::kCount, /*stable=*/true);

  // Phase 3: full sharded decode of every run, folding the thread-invariant
  // content checksum. This is the raw streaming-throughput probe.
  {
    bench::ScopedPhaseTimer timer("scan");
    util::WallTimer scan_timer;
    util::StatusOr<data::EventScanResult> scan =
        data::ScanEvents(catalog, options.num_threads);
    if (!scan.ok()) {
      std::fprintf(stderr, "scan failed: %s\n",
                   scan.status().ToString().c_str());
      return 1;
    }
    const double seconds = scan_timer.ElapsedSeconds();
    recorder.Record("scan_events_per_s",
                    static_cast<double>(scan.value().events) /
                        (seconds > 0 ? seconds : 1e-9),
                    "events/s", bench::MetricKind::kThroughput);
    recorder.Record(
        "scan_checksum_mod",
        static_cast<double>(scan.value().checksum % 1'000'000'000ULL),
        "checksum", bench::MetricKind::kCount, /*stable=*/true);
    if (scan.value().events != catalog.event_count()) {
      std::fprintf(stderr, "scan counted %lld events, superblock says %lld\n",
                   static_cast<long long>(scan.value().events),
                   static_cast<long long>(catalog.event_count()));
      return 1;
    }
  }

  // Phase 4: one-pass reservoir-capped split sampling — O(cap · history)
  // memory regardless of stream length.
  data::StreamSampleOptions sample_options;
  sample_options.history_length = 10;
  sample_options.max_train = options.fast ? 3'000 : 6'000;
  sample_options.max_validation = 500;
  sample_options.max_test = options.fast ? 400 : 1'000;
  sample_options.seed = 4242;
  data::Splits splits;
  {
    bench::ScopedPhaseTimer timer("sample");
    data::EventStream stream(catalog);
    util::StatusOr<data::Splits> sampled =
        data::SampleSplitsFromStream(stream, sample_options);
    if (!sampled.ok()) {
      std::fprintf(stderr, "sampling failed: %s\n",
                   sampled.status().ToString().c_str());
      return 1;
    }
    splits = std::move(sampled).value();
  }
  recorder.Record("train_examples", static_cast<double>(splits.train.size()),
                  "examples", bench::MetricKind::kCount, /*stable=*/true);
  recorder.Record("test_examples", static_cast<double>(splits.test.size()),
                  "examples", bench::MetricKind::kCount, /*stable=*/true);

  // Phase 5: one SASRec epoch on the streamed train split. The model never
  // sees the file — only the bounded reservoir sample.
  std::unique_ptr<srmodels::SequentialRecommender> model =
      srmodels::MakeBackbone(srmodels::Backbone::kSasRec,
                             catalog.item_count(),
                             sample_options.history_length, /*seed=*/7);
  {
    bench::ScopedPhaseTimer timer("train");
    srmodels::TrainConfig train_config =
        srmodels::BackboneTrainConfig(srmodels::Backbone::kSasRec);
    train_config.epochs = 1;
    train_config.history_length = sample_options.history_length;
    const util::Status status = model->Train(splits.train, train_config);
    if (!status.ok()) {
      std::fprintf(stderr, "train failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  // Phase 6: candidate-set eval on the streamed test split. HR@1/NDCG@10
  // are deterministic for the fixed workload and gate against the baseline.
  {
    bench::ScopedPhaseTimer timer("eval");
    eval::EvalConfig eval_config;
    eval_config.max_examples = options.fast ? 300 : 600;
    eval_config.num_threads = options.num_threads;
    const eval::MetricsAccumulator accumulator = eval::EvaluateCandidates(
        splits.test, catalog.item_count(),
        [&](const data::Example& example,
            const std::vector<int64_t>& candidates) {
          return model->ScoreCandidates(example.history, candidates);
        },
        eval_config);
    const eval::RankedMetrics metrics = accumulator.Result();
    recorder.Record("eval_examples",
                    static_cast<double>(accumulator.hit_at_1_samples().size()),
                    "examples", bench::MetricKind::kCount, /*stable=*/true);
    recorder.Record("eval_hr_at_1", metrics.hr_at_1, "ratio",
                    bench::MetricKind::kRatio, /*stable=*/true);
    recorder.Record("eval_ndcg_at_10", metrics.ndcg_at_10, "ratio",
                    bench::MetricKind::kRatio, /*stable=*/true);
  }

  // The out-of-core gate: the whole pass above — scan, sample, train, eval —
  // must fit in a quarter of the file it processed. Only meaningful at full
  // scale; in fast mode the binary + model baseline dwarfs the small file,
  // so we record the peak without gating.
  bool rss_gate_failed = false;
  if (options.fast) {
    bench::RecordPeakRss();
  } else {
    const util::Status rss =
        bench::AssertPeakRssUnder(file_size / 4, "out-of-core datalane pass");
    if (!rss.ok()) {
      std::fprintf(stderr, "%s\n", rss.ToString().c_str());
      rss_gate_failed = true;
    }
  }

  std::remove(path.c_str());
  const int rc = bench::FinishBench();
  return rss_gate_failed ? 1 : rc;
}

}  // namespace
}  // namespace delrec

int main() { return delrec::Run(); }
