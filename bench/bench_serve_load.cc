// Serve-tier traffic simulator (ctest -L serve): emits BENCH_serve_load.json.
//
// Drives a serve::ShardedServer (admission caps + deadlines + user-hash
// sharding, DESIGN.md §12) with the traffic a million-user front-end
// actually sees: Zipf-skewed user popularity and bursty arrivals. Three
// phases over the same frozen snapshot:
//  1. Closed loop — concurrent clients with no think time measure the
//     tier's capacity (requests/s) and client-observed p50/p99.
//  2. Open loop below capacity — a generator thread submits on a Poisson
//     schedule with periodic bursts at ~40% of measured capacity. Gate:
//     the admission layer must be invisible (shed rate exactly 0).
//  3. Open loop overload — the same schedule at ~4× capacity. Gate: the
//     tier degrades instead of collapsing — requests shed with typed
//     statuses (shed rate > 0) and the p99 of *successful* requests stays
//     bounded (queue cap + deadline bound the wait, so p99 cannot grow
//     with run length the way an unbounded queue's would).
//
// Latency/throughput numbers are wall-clock and unstable (no baseline
// gating); the shed-rate gates and the p99 bound are the hard asserts.
// Deadlines and the p99 bound are derived from the measured capacity so
// the gates track machine speed instead of hard-coding one host's timings.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/harness.h"
#include "data/split.h"
#include "serve/engine.h"
#include "serve/scorer.h"
#include "serve/sharded_server.h"
#include "serve/snapshot.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/timer.h"

namespace delrec {
namespace {

constexpr int kShards = 2;
constexpr int64_t kBatchSize = 16;
// Per shard: two full batches of backlog. Tight on purpose — the overload
// phase must hit the cap even though a saturated dispatcher serves ~2x the
// closed-loop probe's rate (full 16-batches vs the probe's 4 clients).
constexpr int64_t kQueueCap = 2 * kBatchSize;
constexpr int kClosedClients = 4;
// Every kBurstEvery-th arrival is a burst of kBurstSize simultaneous
// requests (a hot homepage module, a push-notification fan-in).
constexpr int kBurstEvery = 12;
constexpr int kBurstSize = 4;

struct LoadRequest {
  uint64_t user_id = 0;
  serve::ScoreRequest request;
};

/// Zipf-skewed request stream: user (and their history) drawn by popularity
/// rank over the test split, candidates re-sampled per request.
std::vector<LoadRequest> MakeLoadRequests(bench::DatasetHarness& harness,
                                          size_t count, uint64_t seed) {
  const auto& test = harness.workbench().splits().test;
  util::Rng rng(seed);
  std::vector<LoadRequest> requests;
  requests.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const size_t rank = rng.Zipf(test.size(), 1.05);
    const data::Example& example = test[rank];
    LoadRequest load;
    load.user_id = static_cast<uint64_t>(rank);
    load.request.history = example.history;
    load.request.candidates =
        data::SampleCandidates(harness.num_items(), example.target, 15, rng);
    requests.push_back(std::move(load));
  }
  return requests;
}

double Percentile(std::vector<double> values, double fraction) {
  DELREC_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  const size_t index = std::min(
      values.size() - 1,
      static_cast<size_t>(fraction * static_cast<double>(values.size())));
  return values[index];
}

struct PhaseResult {
  double rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double shed_rate = 0.0;
  uint64_t completed = 0;
  uint64_t shed = 0;
};

void RecordPhase(bench::BenchRecorder& recorder, const std::string& phase,
                 const PhaseResult& result) {
  recorder.Record("serve_load_" + phase + "_rps", result.rps, "requests/s",
                  bench::MetricKind::kThroughput);
  recorder.Record("serve_load_" + phase + "_p50_ms", result.p50_ms, "ms",
                  bench::MetricKind::kTime);
  recorder.Record("serve_load_" + phase + "_p99_ms", result.p99_ms, "ms",
                  bench::MetricKind::kTime);
  recorder.Record("serve_load_" + phase + "_shed_rate", result.shed_rate,
                  "fraction", bench::MetricKind::kRatio);
  std::printf("[serve_load] %-8s %7.1f req/s  p50 %7.2f ms  p99 %7.2f ms  "
              "shed %5.1f%% (%llu/%llu)\n",
              phase.c_str(), result.rps, result.p50_ms, result.p99_ms,
              result.shed_rate * 100.0,
              static_cast<unsigned long long>(result.shed),
              static_cast<unsigned long long>(result.shed + result.completed));
}

/// Phase 1: closed-loop clients, no admission control — the capacity probe.
PhaseResult RunClosedLoop(serve::ShardedServer& server,
                          const std::vector<LoadRequest>& requests) {
  std::vector<std::vector<double>> latencies(kClosedClients);
  util::WallTimer wall;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClosedClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = c; i < requests.size(); i += kClosedClients) {
        util::WallTimer latency;
        const serve::ScoreResponse response =
            server.Score(requests[i].user_id, requests[i].request.history,
                         requests[i].request.candidates);
        DELREC_CHECK(response.status.ok()) << response.status.ToString();
        latencies[c].push_back(latency.ElapsedSeconds());
      }
    });
  }
  for (std::thread& client : clients) client.join();
  const double wall_s = wall.ElapsedSeconds();

  std::vector<double> all;
  for (const auto& client : latencies) {
    all.insert(all.end(), client.begin(), client.end());
  }
  PhaseResult result;
  result.completed = all.size();
  result.rps = static_cast<double>(all.size()) / wall_s;
  result.p50_ms = Percentile(all, 0.50) * 1e3;
  result.p99_ms = Percentile(all, 0.99) * 1e3;
  return result;
}

/// Phases 2/3: one generator thread submits on a precomputed bursty Poisson
/// schedule; the main thread drains futures in submission order, measuring
/// latency from each request's *scheduled* arrival (so queueing delay the
/// schedule mandates is not hidden — no coordinated omission).
PhaseResult RunOpenLoop(serve::ShardedServer& server,
                        const std::vector<LoadRequest>& requests,
                        double target_rps, uint64_t seed) {
  using Clock = std::chrono::steady_clock;
  // Burst events inflate the per-event request count, so the base Poisson
  // rate is scaled down to keep the aggregate at target_rps.
  const double events_per_base =
      static_cast<double>(kBurstEvery - 1 + kBurstSize) /
      static_cast<double>(kBurstEvery);
  const double base_rate = target_rps / events_per_base;
  util::Rng rng(seed);
  std::vector<double> offsets_s;  // Scheduled offset of each request.
  offsets_s.reserve(requests.size());
  double t = 0.0;
  for (size_t i = 0; i < requests.size();) {
    t += -std::log(1.0 - rng.UniformDouble()) / base_rate;
    const size_t fan =
        (offsets_s.size() % kBurstEvery == 0) ? kBurstSize : size_t{1};
    for (size_t b = 0; b < fan && i < requests.size(); ++b, ++i) {
      offsets_s.push_back(t);
    }
  }

  struct InFlight {
    Clock::time_point scheduled;
    std::future<serve::ScoreResponse> future;
  };
  std::vector<InFlight> in_flight(requests.size());
  const Clock::time_point start = Clock::now();
  std::thread generator([&] {
    for (size_t i = 0; i < requests.size(); ++i) {
      const Clock::time_point due =
          start + std::chrono::microseconds(
                      static_cast<int64_t>(offsets_s[i] * 1e6));
      std::this_thread::sleep_until(due);
      in_flight[i].scheduled = due;
      in_flight[i].future =
          server.ScoreAsync(requests[i].user_id, requests[i].request);
    }
  });
  generator.join();

  PhaseResult result;
  std::vector<double> ok_latencies;
  Clock::time_point last_done = start;
  for (InFlight& flight : in_flight) {
    const serve::ScoreResponse response = flight.future.get();
    const Clock::time_point done = Clock::now();
    if (response.status.ok()) {
      ++result.completed;
      last_done = std::max(last_done, done);
      ok_latencies.push_back(
          std::chrono::duration<double>(done - flight.scheduled).count());
    } else {
      DELREC_CHECK(response.status.code() ==
                       util::Status::Code::kUnavailable ||
                   response.status.code() ==
                       util::Status::Code::kDeadlineExceeded)
          << response.status.ToString();
      ++result.shed;
    }
  }
  const double wall_s =
      std::chrono::duration<double>(last_done - start).count();
  result.rps = wall_s > 0.0 ? static_cast<double>(result.completed) / wall_s
                            : 0.0;
  if (!ok_latencies.empty()) {
    result.p50_ms = Percentile(ok_latencies, 0.50) * 1e3;
    result.p99_ms = Percentile(ok_latencies, 0.99) * 1e3;
  }
  result.shed_rate =
      static_cast<double>(result.shed) /
      static_cast<double>(result.completed + result.shed);
  return result;
}

}  // namespace
}  // namespace delrec

int main() {
  using namespace delrec;
  bench::BeginBench("serve_load");
  bench::BenchRecorder& recorder = bench::BenchRecorder::Global();

  bench::HarnessOptions options = bench::OptionsFromEnv();
  options.fast = true;
  options.eval_examples = 30;
  options.pretrain_epochs = 1;
  options.stage1_examples = 24;
  options.stage1_epochs = 1;
  options.stage2_examples = 40;
  options.stage2_epochs = 1;
  options.sr_epochs = 1;
  bench::DatasetHarness harness(data::MovieLens100KConfig(), options);
  // Same serve-smoke shape as bench_serve: short scoring prompt, the
  // regime micro-batching amortizes.
  core::DelRecConfig config = harness.DelRecDefaults();
  config.history_length = 1;
  config.soft_prompt_count = 4;
  config.sr_hints_in_stage2 = false;
  auto trained = harness.TrainDelRec(srmodels::Backbone::kSasRec, config);

  serve::EngineSnapshot::Sources sources;
  sources.catalog = &harness.workbench().dataset().catalog;
  sources.vocab = &harness.workbench().vocab();
  sources.sr_model = harness.Backbone(srmodels::Backbone::kSasRec);
  auto built = serve::EngineSnapshot::FromModel(*trained.model, *trained.llm,
                                                sources);
  DELREC_CHECK(built.ok()) << built.status().ToString();
  std::shared_ptr<const serve::EngineSnapshot> snapshot(
      std::move(built).value());

  const bool fast = std::getenv("DELREC_FAST") != nullptr;
  const size_t closed_requests = fast ? 120 : 240;
  const size_t open_requests = fast ? 150 : 400;
  recorder.Record("serve_load_requests_closed",
                  static_cast<double>(closed_requests), "requests",
                  bench::MetricKind::kCount, /*stable=*/true);
  recorder.Record("serve_load_requests_open",
                  static_cast<double>(open_requests), "requests",
                  bench::MetricKind::kCount, /*stable=*/true);

  // Phase 1: capacity probe — no admission control, closed loop.
  serve::ShardedServerOptions probe_options;
  probe_options.num_shards = kShards;
  probe_options.engine.max_batch_size = kBatchSize;
  probe_options.engine.batch_deadline_ms = 1.0;
  PhaseResult closed;
  {
    serve::ShardedServer server(snapshot, probe_options);
    closed = RunClosedLoop(server,
                           MakeLoadRequests(harness, closed_requests, 11));
    const serve::RecommendationEngine::Stats stats = server.TotalStats();
    DELREC_CHECK_EQ(stats.shed_queue_full + stats.shed_deadline +
                        stats.scorer_failures,
                    0u);
    server.Shutdown();
  }
  RecordPhase(recorder, "closed", closed);

  // Admission policy derived from measured capacity: the deadline covers ~8
  // full batches of queue wait, so below-capacity traffic (waits of ~1-2
  // batches) never brushes it, while overload (cap-bounded waits of ~2
  // batches) sheds at the queue cap first and the deadline backstops.
  const double service_per_request_ms = 1e3 / closed.rps;
  const double deadline_ms =
      std::max(100.0, 8.0 * static_cast<double>(kBatchSize) *
                          service_per_request_ms);
  serve::ShardedServerOptions serve_options = probe_options;
  serve_options.engine.max_queue_depth = kQueueCap;
  serve_options.engine.default_deadline_ms = deadline_ms;

  // Phase 2: open loop below capacity — admission control must be invisible.
  PhaseResult below;
  {
    serve::ShardedServer server(snapshot, serve_options);
    below = RunOpenLoop(server, MakeLoadRequests(harness, open_requests, 23),
                        /*target_rps=*/0.4 * closed.rps, /*seed=*/31);
    server.Shutdown();
  }
  RecordPhase(recorder, "below", below);
  recorder.Record("serve_load_below_shed", static_cast<double>(below.shed),
                  "requests", bench::MetricKind::kCount, /*stable=*/true);
  DELREC_CHECK_EQ(below.shed, 0u)
      << "admission control shed below the cap (rate "
      << below.shed_rate << ")";

  // Phase 3: open loop at ~8x the probed rate (comfortably past even the
  // saturated full-batch service rate) — graceful degradation, not
  // collapse: typed sheds, and successful-request p99 bounded by the
  // queue-cap/deadline budget instead of growing with the backlog.
  PhaseResult over;
  {
    serve::ShardedServer server(snapshot, serve_options);
    over = RunOpenLoop(server, MakeLoadRequests(harness, open_requests, 47),
                       /*target_rps=*/8.0 * closed.rps, /*seed=*/53);
    server.Shutdown();
  }
  RecordPhase(recorder, "overload", over);
  DELREC_CHECK_GT(over.shed, 0u)
      << "8x overload shed nothing — admission control is not engaging";
  const double p99_bound_ms =
      deadline_ms +
      2.0 * static_cast<double>(kBatchSize) * service_per_request_ms + 100.0;
  recorder.Record("serve_load_overload_p99_bound_ms", p99_bound_ms, "ms",
                  bench::MetricKind::kTime);
  DELREC_CHECK_LE(over.p99_ms, p99_bound_ms)
      << "overload p99 exceeds the shedding bound — queue growth is leaking "
         "into served latency";

  return bench::FinishBench();
}
