// Serve-throughput bench (ctest -L serve): emits BENCH_serve.json.
//
// Trains a small DELRec at a serve-smoke config (short prompt: history
// window 1, 4 soft prompts, no SR hint text — serving amortization matters
// most when per-request GEMMs are small, and quality is not this bench's
// object), freezes it into a serve::EngineSnapshot, then measures the
// serving layer two ways:
//  1. Batched snapshot scoring vs the pre-PR one-at-a-time path (the live
//     model's ScoreCandidates through the DelRecScorer adapter) on the same
//     fixed request set. The serve layer must win by ≥1.5× (the PR's
//     acceptance floor; relaxed on pre-AVX2 hosts where the scalar GEMM
//     fallback flattens the gap). Both sides take the best of five
//     interleaved passes so a scheduling hiccup cannot decide the gate.
//  2. A RecommendationEngine under N concurrent client threads: sustained
//     requests/s plus client-observed p50/p99 latency and the dispatcher's
//     mean coalesced batch size.
// All metrics are wall-clock and therefore unstable (no baseline gating);
// the JSON record exists for tracking, the floor assert is the hard gate.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "data/split.h"
#include "nn/gemm.h"
#include "serve/engine.h"
#include "serve/scorer.h"
#include "serve/snapshot.h"
#include "util/check.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/timer.h"

namespace delrec {
namespace {

constexpr int64_t kBatchSize = 16;
constexpr int kClientThreads = 4;
constexpr int kRequestsPerClient = 48;

std::vector<serve::ScoreRequest> MakeRequests(bench::DatasetHarness& harness,
                                              size_t count) {
  const auto& test = harness.workbench().splits().test;
  util::Rng rng(97);
  std::vector<serve::ScoreRequest> requests;
  requests.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const data::Example& example = test[i % test.size()];
    serve::ScoreRequest request;
    request.history = example.history;
    request.candidates =
        data::SampleCandidates(harness.num_items(), example.target, 15, rng);
    requests.push_back(std::move(request));
  }
  return requests;
}

double Percentile(std::vector<double> sorted_ascending, double fraction) {
  DELREC_CHECK(!sorted_ascending.empty());
  const size_t index = std::min(
      sorted_ascending.size() - 1,
      static_cast<size_t>(fraction *
                          static_cast<double>(sorted_ascending.size())));
  return sorted_ascending[index];
}

/// Section 1: the same request set scored one-at-a-time through the live
/// model (the pre-PR serving path) and via snapshot ScoreBatch chunks.
/// Results are bit-identical (serve_test proves it); here we time the two
/// paths and gate the batched speedup.
void BenchBatchedVsSingle(bench::BenchRecorder& recorder,
                          const serve::Scorer& live_scorer,
                          const serve::EngineSnapshot& snapshot,
                          const std::vector<serve::ScoreRequest>& requests) {
  constexpr int kPasses = 5;
  // Warm-up both paths (first-touch pool allocations).
  live_scorer.Score(requests[0]);
  snapshot.ScoreBatch({requests[0], requests[1]});

  // Passes interleave the two sides so a slow stretch of the machine (this
  // is a wall-clock bench on a shared host) degrades the same pass of both,
  // and the min picks a matched-conditions pass for each side.
  double single_s = std::numeric_limits<double>::infinity();
  double batched_s = std::numeric_limits<double>::infinity();
  for (int pass = 0; pass < kPasses; ++pass) {
    util::WallTimer single_timer;
    for (const serve::ScoreRequest& request : requests) {
      live_scorer.Score(request);
    }
    single_s = std::min(single_s, single_timer.ElapsedSeconds());

    util::WallTimer batched_timer;
    for (size_t begin = 0; begin < requests.size();
         begin += static_cast<size_t>(kBatchSize)) {
      const size_t end =
          std::min(begin + static_cast<size_t>(kBatchSize), requests.size());
      snapshot.ScoreBatch(std::vector<serve::ScoreRequest>(
          requests.begin() + begin, requests.begin() + end));
    }
    batched_s = std::min(batched_s, batched_timer.ElapsedSeconds());
  }

  const double n = static_cast<double>(requests.size());
  const double speedup = single_s / batched_s;
  recorder.Record("serve_requests", n, "requests", bench::MetricKind::kCount,
                  /*stable=*/true);
  recorder.Record("serve_single_rps", n / single_s, "requests/s",
                  bench::MetricKind::kThroughput);
  recorder.Record("serve_batched_rps", n / batched_s, "requests/s",
                  bench::MetricKind::kThroughput);
  recorder.Record("serve_batch_speedup_vs_single", speedup, "x",
                  bench::MetricKind::kRatio);
  std::printf("[serve] single %.1f req/s, batched(%lld) %.1f req/s, "
              "speedup %.2fx\n",
              n / single_s, static_cast<long long>(kBatchSize), n / batched_s,
              speedup);

  // Acceptance floor: the batched serve path must be ≥1.5× the pre-PR
  // one-at-a-time path on these shapes. The scalar GEMM fallback
  // reorganizes the same arithmetic without wider registers, so it only has
  // to not regress.
  const bool scalar_isa =
      nn::GemmKernelConfig().find("isa=scalar") != std::string::npos;
  const double floor = scalar_isa ? 1.0 : 1.5;
  DELREC_CHECK_GE(speedup, floor)
      << "batched serve speedup below floor (" << speedup << " < " << floor
      << ") with kernel " << nn::GemmKernelConfig();
}

/// Section 2: concurrent clients against the micro-batching engine.
void BenchEngineThroughput(bench::BenchRecorder& recorder,
                           const serve::EngineSnapshot& snapshot,
                           const std::vector<serve::ScoreRequest>& requests) {
  serve::EngineOptions options;
  options.max_batch_size = kBatchSize;
  options.batch_deadline_ms = 1.0;
  serve::RecommendationEngine engine(&snapshot, options);

  std::vector<std::vector<double>> latencies(kClientThreads);
  util::WallTimer wall;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const serve::ScoreRequest& request =
            requests[(c + i * kClientThreads) % requests.size()];
        util::WallTimer latency;
        engine.ScoreCandidates(request.history, request.candidates);
        latencies[c].push_back(latency.ElapsedSeconds());
      }
    });
  }
  for (std::thread& client : clients) client.join();
  const double wall_s = wall.ElapsedSeconds();
  engine.Shutdown();

  std::vector<double> all;
  for (const std::vector<double>& client : latencies) {
    all.insert(all.end(), client.begin(), client.end());
  }
  std::sort(all.begin(), all.end());
  const double total = static_cast<double>(all.size());
  const serve::RecommendationEngine::Stats stats = engine.GetStats();
  DELREC_CHECK_EQ(stats.requests, all.size());

  // Stable counts: the workload is fixed, so these gate against the
  // committed baseline (a drift means the bench silently changed shape).
  recorder.Record("serve_engine_requests", total, "requests",
                  bench::MetricKind::kCount, /*stable=*/true);
  recorder.Record("serve_engine_shed",
                  static_cast<double>(stats.shed_queue_full +
                                      stats.shed_deadline +
                                      stats.shed_shutdown +
                                      stats.scorer_failures),
                  "requests", bench::MetricKind::kCount, /*stable=*/true);
  recorder.Record("serve_engine_rps", total / wall_s, "requests/s",
                  bench::MetricKind::kThroughput);
  recorder.Record("serve_engine_p50_latency_ms", Percentile(all, 0.50) * 1e3,
                  "ms", bench::MetricKind::kTime);
  recorder.Record("serve_engine_p99_latency_ms", Percentile(all, 0.99) * 1e3,
                  "ms", bench::MetricKind::kTime);
  recorder.Record("serve_engine_mean_batch", stats.mean_batch, "requests",
                  bench::MetricKind::kRatio);
  std::printf("[serve] engine: %d clients, %.1f req/s, p50 %.2f ms, "
              "p99 %.2f ms, mean batch %.2f (max %llu over %llu batches)\n",
              kClientThreads, total / wall_s, Percentile(all, 0.50) * 1e3,
              Percentile(all, 0.99) * 1e3, stats.mean_batch,
              static_cast<unsigned long long>(stats.max_batch),
              static_cast<unsigned long long>(stats.batches));
}

void ValidateEmittedJson(const std::string& path) {
  std::ifstream in(path);
  DELREC_CHECK(static_cast<bool>(in)) << "missing bench JSON " << path;
  std::ostringstream text;
  text << in.rdbuf();
  util::Json doc;
  const util::Status parsed = util::Json::Parse(text.str(), &doc);
  DELREC_CHECK(parsed.ok()) << parsed.ToString();
  const util::Status valid = bench::BenchRecorder::ValidateSchema(doc);
  DELREC_CHECK(valid.ok()) << valid.ToString();
  DELREC_CHECK(doc.Find("bench")->str() == "serve");
  const util::Json* metrics = doc.Find("metrics");
  bool has_rps = false, has_speedup = false;
  for (size_t i = 0; i < metrics->size(); ++i) {
    const std::string& name = metrics->at(i).Find("name")->str();
    has_rps = has_rps || name == "serve_engine_rps";
    has_speedup = has_speedup || name == "serve_batch_speedup_vs_single";
  }
  DELREC_CHECK(has_rps) << "engine throughput missing from " << path;
  DELREC_CHECK(has_speedup) << "batched speedup missing from " << path;
  std::printf("[serve] %s: schema valid (%zu metrics)\n", path.c_str(),
              metrics->size());
}

}  // namespace
}  // namespace delrec

int main() {
  using namespace delrec;
  bench::BeginBench("serve");
  bench::BenchRecorder& recorder = bench::BenchRecorder::Global();

  bench::HarnessOptions options = bench::OptionsFromEnv();
  options.fast = true;
  options.eval_examples = 30;
  options.pretrain_epochs = 1;
  options.stage1_examples = 24;
  options.stage1_epochs = 1;
  options.stage2_examples = 40;
  options.stage2_epochs = 1;
  options.sr_epochs = 1;
  bench::DatasetHarness harness(data::MovieLens100KConfig(), options);
  // Serve-smoke shape: a short scoring prompt (the regime where batching
  // pays — per-request GEMMs too small to saturate the kernel alone).
  core::DelRecConfig config = harness.DelRecDefaults();
  config.history_length = 1;
  config.soft_prompt_count = 4;
  config.sr_hints_in_stage2 = false;
  auto trained = harness.TrainDelRec(srmodels::Backbone::kSasRec, config);

  serve::EngineSnapshot::Sources sources;
  sources.catalog = &harness.workbench().dataset().catalog;
  sources.vocab = &harness.workbench().vocab();
  sources.sr_model = harness.Backbone(srmodels::Backbone::kSasRec);
  auto snapshot = serve::EngineSnapshot::FromModel(*trained.model,
                                                   *trained.llm, sources);
  DELREC_CHECK(snapshot.ok()) << snapshot.status().ToString();
  const std::unique_ptr<serve::Scorer> live_scorer =
      serve::MakeDelRecScorer(trained.model.get());

  const std::vector<serve::ScoreRequest> requests =
      MakeRequests(harness, 96);
  BenchBatchedVsSingle(recorder, *live_scorer, *snapshot.value(), requests);
  BenchEngineThroughput(recorder, *snapshot.value(), requests);

  const int rc = bench::FinishBench();
  const std::string path = bench::BenchRecorder::OutputPath("serve");
  if (!path.empty()) ValidateEmittedJson(path);
  return rc;
}
