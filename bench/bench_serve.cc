// Serve-throughput bench (ctest -L serve): emits BENCH_serve.json.
//
// Trains a small DELRec at a serve-smoke config (short prompt: history
// window 1, 4 soft prompts, no SR hint text — serving amortization matters
// most when per-request GEMMs are small, and quality is not this bench's
// object), freezes it into a serve::EngineSnapshot, then measures the
// serving layer two ways:
//  1. Batched snapshot scoring vs the pre-PR one-at-a-time path (the live
//     model's ScoreCandidates through the DelRecScorer adapter) on the same
//     fixed request set. The serve layer must win by ≥1.5× (the PR's
//     acceptance floor; relaxed on pre-AVX2 hosts where the scalar GEMM
//     fallback flattens the gap). Both sides take the best of five
//     interleaved passes so a scheduling hiccup cannot decide the gate.
//  2. A RecommendationEngine under N concurrent client threads: sustained
//     requests/s plus client-observed p50/p99 latency and the dispatcher's
//     mean coalesced batch size.
//  3. The batched workload through an int8-quantized snapshot vs the fp32
//     one: serve throughput (no-regression floor — the serve-smoke prompt
//     is attention-dominated at model_dim 32, so the GEMM win is diluted
//     here) and the weight footprint shrink (≥3× floor, deterministic and
//     baseline-gated).
//  4. A serve-scale TinyLm (model_dim 256 — the width class quantized
//     serving exists for; the trained stand-in above is deliberately tiny)
//     measured straight through EncodeBatch+LogitsAtRows, fp32 vs
//     QuantizeForInference. This is the committed shape for the int8
//     tentpole's ≥2× serve-throughput floor, gated where the vpdpbusd tile
//     dispatches (nn/gemm_int8.h).
//  5. Prefix-KV-cached vs uncached snapshots across a prompt-shape sweep
//     (three prefix:suffix ratios). Scores are asserted bit-identical;
//     the long-prefix shape carries this PR's ≥1.5× cached-vs-uncached
//     throughput floor and records engine prefix_tokens_skipped.
//  6. The two-tier backend sweep (DESIGN.md §16): the teacher is distilled
//     into a GRU4Rec student through the real export+trainer path, the
//     student blob is embedded into a rebuilt snapshot, and the same
//     request set is served teacher-only, student-only, and two-tier at
//     several re-rank depths h. Gates: student batched throughput ≥5× the
//     teacher's (this PR's acceptance floor — the reason the tier exists)
//     and two-tier HR@5/NDCG@5 within tolerance of teacher-only quality.
// Wall-clock metrics are unstable (no baseline gating); the JSON record
// exists for tracking, the floor asserts are the hard gates. Footprint
// metrics are deterministic and baseline-gated.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "core/checkpoint.h"
#include "data/event_stream.h"
#include "data/split.h"
#include "distill/export.h"
#include "distill/trainer.h"
#include "eval/protocol.h"
#include "llm/tiny_lm.h"
#include "nn/gemm.h"
#include "nn/gemm_int8.h"
#include "serve/engine.h"
#include "serve/scorer.h"
#include "serve/snapshot.h"
#include "serve/two_tier.h"
#include "srmodels/factory.h"
#include "util/check.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/timer.h"

namespace delrec {
namespace {

constexpr int64_t kBatchSize = 16;
constexpr int kClientThreads = 4;
constexpr int kRequestsPerClient = 48;

std::vector<serve::ScoreRequest> MakeRequests(bench::DatasetHarness& harness,
                                              size_t count) {
  const auto& test = harness.workbench().splits().test;
  util::Rng rng(97);
  std::vector<serve::ScoreRequest> requests;
  requests.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const data::Example& example = test[i % test.size()];
    serve::ScoreRequest request;
    request.history = example.history;
    request.candidates =
        data::SampleCandidates(harness.num_items(), example.target, 15, rng);
    requests.push_back(std::move(request));
  }
  return requests;
}

double Percentile(std::vector<double> sorted_ascending, double fraction) {
  DELREC_CHECK(!sorted_ascending.empty());
  const size_t index = std::min(
      sorted_ascending.size() - 1,
      static_cast<size_t>(fraction *
                          static_cast<double>(sorted_ascending.size())));
  return sorted_ascending[index];
}

/// Section 1: the same request set scored one-at-a-time through the live
/// model (the pre-PR serving path) and via snapshot ScoreBatch chunks.
/// Results are bit-identical (serve_test proves it); here we time the two
/// paths and gate the batched speedup.
void BenchBatchedVsSingle(bench::BenchRecorder& recorder,
                          const serve::Scorer& live_scorer,
                          const serve::EngineSnapshot& snapshot,
                          const std::vector<serve::ScoreRequest>& requests) {
  constexpr int kPasses = 5;
  // Warm-up both paths (first-touch pool allocations).
  live_scorer.Score(requests[0]);
  snapshot.ScoreBatch({requests[0], requests[1]});

  // Passes interleave the two sides so a slow stretch of the machine (this
  // is a wall-clock bench on a shared host) degrades the same pass of both,
  // and the min picks a matched-conditions pass for each side.
  double single_s = std::numeric_limits<double>::infinity();
  double batched_s = std::numeric_limits<double>::infinity();
  for (int pass = 0; pass < kPasses; ++pass) {
    util::WallTimer single_timer;
    for (const serve::ScoreRequest& request : requests) {
      live_scorer.Score(request);
    }
    single_s = std::min(single_s, single_timer.ElapsedSeconds());

    util::WallTimer batched_timer;
    for (size_t begin = 0; begin < requests.size();
         begin += static_cast<size_t>(kBatchSize)) {
      const size_t end =
          std::min(begin + static_cast<size_t>(kBatchSize), requests.size());
      snapshot.ScoreBatch(std::vector<serve::ScoreRequest>(
          requests.begin() + begin, requests.begin() + end));
    }
    batched_s = std::min(batched_s, batched_timer.ElapsedSeconds());
  }

  const double n = static_cast<double>(requests.size());
  const double speedup = single_s / batched_s;
  recorder.Record("serve_requests", n, "requests", bench::MetricKind::kCount,
                  /*stable=*/true);
  recorder.Record("serve_single_rps", n / single_s, "requests/s",
                  bench::MetricKind::kThroughput);
  recorder.Record("serve_batched_rps", n / batched_s, "requests/s",
                  bench::MetricKind::kThroughput);
  recorder.Record("serve_batch_speedup_vs_single", speedup, "x",
                  bench::MetricKind::kRatio);
  std::printf("[serve] single %.1f req/s, batched(%lld) %.1f req/s, "
              "speedup %.2fx\n",
              n / single_s, static_cast<long long>(kBatchSize), n / batched_s,
              speedup);

  // Acceptance floor: the batched serve path must be ≥1.5× the pre-PR
  // one-at-a-time path on these shapes. The scalar GEMM fallback
  // reorganizes the same arithmetic without wider registers, so it only has
  // to not regress.
  const bool scalar_isa =
      nn::GemmKernelConfig().find("isa=scalar") != std::string::npos;
  const double floor = scalar_isa ? 1.0 : 1.5;
  DELREC_CHECK_GE(speedup, floor)
      << "batched serve speedup below floor (" << speedup << " < " << floor
      << ") with kernel " << nn::GemmKernelConfig();
}

/// Section 3: the same batched workload through an int8-quantized snapshot
/// vs the fp32 one (DESIGN.md §13). Times interleave like section 1. At
/// this serve-smoke shape (model_dim 32, short prompts) the per-span
/// attention loop — identical in both snapshots — dominates the pass, so
/// the gate here is no-regression; the tentpole's ≥2× floor binds in
/// section 4 at serve-scale width. The weight footprint shrink is recorded
/// as a stable (deterministic) metric so a packing regression cannot land
/// silently.
void BenchInt8VsFp32(bench::BenchRecorder& recorder,
                     const serve::EngineSnapshot& fp32_snapshot,
                     const serve::EngineSnapshot& int8_snapshot,
                     const std::vector<serve::ScoreRequest>& requests) {
  constexpr int kPasses = 5;
  fp32_snapshot.ScoreBatch({requests[0], requests[1]});
  int8_snapshot.ScoreBatch({requests[0], requests[1]});

  auto timed_batched = [&](const serve::EngineSnapshot& snapshot) {
    util::WallTimer timer;
    for (size_t begin = 0; begin < requests.size();
         begin += static_cast<size_t>(kBatchSize)) {
      const size_t end =
          std::min(begin + static_cast<size_t>(kBatchSize), requests.size());
      snapshot.ScoreBatch(std::vector<serve::ScoreRequest>(
          requests.begin() + begin, requests.begin() + end));
    }
    return timer.ElapsedSeconds();
  };
  double fp32_s = std::numeric_limits<double>::infinity();
  double int8_s = std::numeric_limits<double>::infinity();
  for (int pass = 0; pass < kPasses; ++pass) {
    fp32_s = std::min(fp32_s, timed_batched(fp32_snapshot));
    int8_s = std::min(int8_s, timed_batched(int8_snapshot));
  }

  const double n = static_cast<double>(requests.size());
  const double speedup = fp32_s / int8_s;
  const double fp32_bytes =
      static_cast<double>(fp32_snapshot.MemoryFootprintBytes());
  const double int8_bytes =
      static_cast<double>(int8_snapshot.MemoryFootprintBytes());
  recorder.Record("serve_int8_rps", n / int8_s, "requests/s",
                  bench::MetricKind::kThroughput);
  recorder.Record("serve_int8_speedup_vs_fp32", speedup, "x",
                  bench::MetricKind::kRatio);
  recorder.Record("serve_fp32_footprint_bytes", fp32_bytes, "bytes",
                  bench::MetricKind::kCount, /*stable=*/true);
  recorder.Record("serve_int8_footprint_bytes", int8_bytes, "bytes",
                  bench::MetricKind::kCount, /*stable=*/true);
  recorder.Record("serve_int8_footprint_shrink", fp32_bytes / int8_bytes, "x",
                  bench::MetricKind::kRatio, /*stable=*/true);
  std::printf("[serve] int8 %.1f req/s vs fp32 %.1f req/s (%.2fx), "
              "footprint %.0f -> %.0f bytes (%.2fx)\n",
              n / int8_s, n / fp32_s, speedup, fp32_bytes, int8_bytes,
              fp32_bytes / int8_bytes);

  // Acceptance floors: the quantized snapshot must shrink serve-path weight
  // bytes by ≥3× (the table and dense matrices go 4×; fp32 LN/bias/position
  // state dilutes it). The ratio is taken with the prefix KV cache excluded:
  // the cache is deliberately fp32 on both snapshots (identical absolute
  // bytes each side), so including it would let a larger soft-prompt config
  // dilute a gate that measures quantization packing. The full-footprint
  // shrink is still recorded (stable) above. Throughput on this
  // attention-dominated shape must not regress where the vpdpbusd tile
  // dispatches (measured ~2× there — the 1.3 floor leaves headroom for a
  // noisy shared host); the weaker tiles only have to keep the comparison
  // recorded.
  const serve::SnapshotFootprint fp32_parts = fp32_snapshot.MemoryFootprint();
  const serve::SnapshotFootprint int8_parts = int8_snapshot.MemoryFootprint();
  const double cache_free_shrink =
      static_cast<double>(fp32_parts.total() - fp32_parts.prefix_cache_bytes) /
      static_cast<double>(int8_parts.total() - int8_parts.prefix_cache_bytes);
  DELREC_CHECK_GE(cache_free_shrink, 3.0)
      << "int8 snapshot footprint shrink below floor";
  if (nn::Int8KernelIsa() == "avxvnni") {
    DELREC_CHECK_GE(speedup, 1.3)
        << "int8 serve speedup below no-regression floor (" << speedup
        << ") with kernel " << nn::Int8GemmKernelConfig();
  }
}

/// Section 4: the committed shape for the int8 tentpole's ≥2× floor. The
/// trained serve-smoke model above is deliberately tiny (model_dim 32) and
/// its serve pass is attention-bound; production LLM backbones live at
/// hundreds-to-thousands of hidden dims where the dense projections are the
/// pass. This section builds the same TinyLm at serve-scale width (raw
/// seeded weights — GEMM wall-clock is data-independent, so no training is
/// needed to measure throughput), quantizes a twin via
/// TinyLm::QuantizeForInference (the exact transform EngineSnapshot's
/// quantize_int8 option applies), and drives both through the
/// EncodeBatch+LogitsAtRows serve tier.
void BenchServeScaleInt8(bench::BenchRecorder& recorder) {
  llm::TinyLmConfig config;
  config.vocab_size = 1740;
  config.model_dim = 256;
  config.num_layers = 2;
  config.num_heads = 4;
  config.ffn_dim = 512;
  config.max_positions = 64;
  config.dropout = 0.0f;
  constexpr int64_t kSeqLen = 8;
  constexpr uint64_t kSeed = 7;

  // Twin models from the same seed: identical weights, one quantized.
  llm::TinyLm fp32_lm(config, kSeed);
  fp32_lm.SetTraining(false);
  fp32_lm.SetRequiresGrad(false);
  llm::TinyLm int8_lm(config, kSeed);
  int8_lm.SetTraining(false);
  int8_lm.SetRequiresGrad(false);
  int8_lm.QuantizeForInference(/*quantize_embedding_table=*/true);

  util::Rng rng(131);
  std::vector<std::vector<llm::PromptPiece>> prompts;
  for (int64_t b = 0; b < kBatchSize; ++b) {
    std::vector<int64_t> tokens;
    for (int64_t t = 0; t < kSeqLen; ++t) {
      tokens.push_back(rng.UniformInt(0, config.vocab_size - 1));
    }
    prompts.push_back({llm::PromptPiece::Tokens(std::move(tokens))});
  }
  std::vector<const std::vector<llm::PromptPiece>*> ptrs;
  for (const auto& prompt : prompts) ptrs.push_back(&prompt);
  std::vector<int64_t> head_rows;
  for (int64_t b = 0; b < kBatchSize; ++b) {
    head_rows.push_back(b * kSeqLen + kSeqLen - 1);
  }

  const nn::Tensor fp32_table = fp32_lm.MaterializeTokenTable();
  const nn::Tensor int8_table;  // Quantized model gathers from its own codes.
  auto timed_pass = [&](const llm::TinyLm& lm, const nn::Tensor& table) {
    std::vector<llm::SequenceSpan> spans;
    util::WallTimer timer;
    const nn::Tensor hidden = lm.EncodeBatch(ptrs, table, &spans);
    lm.LogitsAtRows(hidden, head_rows, table);
    return timer.ElapsedSeconds();
  };
  timed_pass(fp32_lm, fp32_table);  // Warm-up (pool first-touch).
  timed_pass(int8_lm, int8_table);

  constexpr int kPasses = 5;
  double fp32_s = std::numeric_limits<double>::infinity();
  double int8_s = std::numeric_limits<double>::infinity();
  for (int pass = 0; pass < kPasses; ++pass) {
    fp32_s = std::min(fp32_s, timed_pass(fp32_lm, fp32_table));
    int8_s = std::min(int8_s, timed_pass(int8_lm, int8_table));
  }

  const double sequences = static_cast<double>(kBatchSize);
  const double speedup = fp32_s / int8_s;
  const double fp32_bytes = static_cast<double>(fp32_lm.InferenceWeightBytes());
  const double int8_bytes = static_cast<double>(int8_lm.InferenceWeightBytes());
  recorder.Record("serve_scale_fp32_sps", sequences / fp32_s, "sequences/s",
                  bench::MetricKind::kThroughput);
  recorder.Record("serve_scale_int8_sps", sequences / int8_s, "sequences/s",
                  bench::MetricKind::kThroughput);
  recorder.Record("serve_scale_int8_speedup", speedup, "x",
                  bench::MetricKind::kRatio);
  recorder.Record("serve_scale_fp32_weight_bytes", fp32_bytes, "bytes",
                  bench::MetricKind::kCount, /*stable=*/true);
  recorder.Record("serve_scale_int8_weight_bytes", int8_bytes, "bytes",
                  bench::MetricKind::kCount, /*stable=*/true);
  std::printf("[serve] serve-scale(d=%lld): int8 %.1f seq/s vs fp32 %.1f "
              "seq/s (%.2fx), weights %.1f MB -> %.1f MB\n",
              static_cast<long long>(config.model_dim), sequences / int8_s,
              sequences / fp32_s, speedup, fp32_bytes / 1e6, int8_bytes / 1e6);

  // The tentpole floor: ≥2× serve throughput where the vpdpbusd tile
  // dispatches (measured ~3.5× on the reference host — the floor leaves a
  // wide noise margin). The pmaddwd fallbacks win less per instruction and
  // gate no-regression; the scalar tile trades a byte-unpack per MAC for no
  // register-width win, so it carries no throughput promise. The ~4× weight
  // shrink is deterministic and gates everywhere.
  const std::string isa = nn::Int8KernelIsa();
  if (isa == "avxvnni") {
    DELREC_CHECK_GE(speedup, 2.0)
        << "serve-scale int8 speedup below the 2x tentpole floor ("
        << speedup << ") with kernel " << nn::Int8GemmKernelConfig();
  } else if (isa != "scalar") {
    DELREC_CHECK_GE(speedup, 1.0)
        << "serve-scale int8 speedup regressed (" << speedup
        << ") with kernel " << nn::Int8GemmKernelConfig();
  }
  DELREC_CHECK_GE(fp32_bytes / int8_bytes, 3.5)
      << "serve-scale weight shrink below floor";
}

/// Section 5: the prefix KV cache (DESIGN.md §15) across three prompt
/// shapes — prefix:suffix ratios from suffix-heavy to prefix-heavy, steered
/// by soft_prompt_count (prefix length) and history_length (suffix length).
/// Each shape freezes two snapshots of the same untrained model (wall-clock
/// is weight-independent, like section 4) differing only in
/// enable_prefix_cache, asserts their scores are bit-identical on the full
/// request set, and times batched serving both ways. Counts (prefix length,
/// engine tokens skipped) are deterministic and baseline-gated; timings are
/// advisory except the long-prefix shape, which carries this PR's ≥1.5×
/// cached-vs-uncached acceptance floor — that is the shape the cache exists
/// for (a shared instruction+pattern-knowledge head dominating the prompt).
void BenchPrefixCache(bench::BenchRecorder& recorder,
                      bench::DatasetHarness& harness,
                      const serve::EngineSnapshot::Sources& sources,
                      const std::vector<serve::ScoreRequest>& requests) {
  struct PrefixShape {
    const char* name;
    int64_t soft_prompts;  // Prefix driver: pattern-knowledge rows.
    int64_t history;       // Suffix driver: items rendered per request.
    bool gated;            // Carries the ≥1.5× acceptance floor.
  };
  const PrefixShape shapes[] = {
      {"short", 4, 8, false},    // Suffix-heavy: cache saves little.
      {"balanced", 16, 4, false},
      {"long", 48, 1, true},     // Prefix-heavy: the cache's home turf.
  };
  auto llm = harness.workbench().MakePretrainedLlm(core::LlmSize::kBase);
  constexpr int kPasses = 5;

  for (const PrefixShape& shape : shapes) {
    core::DelRecConfig config = harness.DelRecDefaults();
    config.soft_prompt_count = shape.soft_prompts;
    config.history_length = shape.history;
    config.sr_hints_in_stage2 = false;
    core::DelRec model(&harness.workbench().dataset().catalog,
                       &harness.workbench().vocab(), llm.get(),
                       harness.Backbone(srmodels::Backbone::kSasRec), config);
    auto cached =
        serve::EngineSnapshot::FromModel(model, *llm, sources);
    DELREC_CHECK(cached.ok()) << cached.status().ToString();
    serve::EngineSnapshot::BuildOptions off;
    off.enable_prefix_cache = false;
    auto uncached =
        serve::EngineSnapshot::FromModel(model, *llm, sources, off);
    DELREC_CHECK(uncached.ok()) << uncached.status().ToString();
    const int64_t prefix_tokens = cached.value()->CachedPrefixLength();
    DELREC_CHECK_GT(prefix_tokens, 0);
    DELREC_CHECK_EQ(uncached.value()->CachedPrefixLength(), 0);

    // The cache must be invisible in the output: bit-identical scores on
    // the full request set before any timing is trusted.
    DELREC_CHECK(cached.value()->ScoreBatch(requests) ==
                 uncached.value()->ScoreBatch(requests))
        << "cached scores diverged from uncached at shape " << shape.name;

    auto timed_batched = [&](const serve::EngineSnapshot& snapshot) {
      util::WallTimer timer;
      for (size_t begin = 0; begin < requests.size();
           begin += static_cast<size_t>(kBatchSize)) {
        const size_t end = std::min(begin + static_cast<size_t>(kBatchSize),
                                    requests.size());
        snapshot.ScoreBatch(std::vector<serve::ScoreRequest>(
            requests.begin() + begin, requests.begin() + end));
      }
      return timer.ElapsedSeconds();
    };
    timed_batched(*cached.value());  // Warm-up.
    timed_batched(*uncached.value());
    double cached_s = std::numeric_limits<double>::infinity();
    double uncached_s = std::numeric_limits<double>::infinity();
    for (int pass = 0; pass < kPasses; ++pass) {
      uncached_s = std::min(uncached_s, timed_batched(*uncached.value()));
      cached_s = std::min(cached_s, timed_batched(*cached.value()));
    }

    const double n = static_cast<double>(requests.size());
    const double speedup = uncached_s / cached_s;
    const std::string prefix = std::string("serve_prefix_") + shape.name;
    recorder.Record(prefix + "_prefix_tokens",
                    static_cast<double>(prefix_tokens), "tokens",
                    bench::MetricKind::kCount, /*stable=*/true);
    recorder.Record(prefix + "_uncached_rps", n / uncached_s, "requests/s",
                    bench::MetricKind::kThroughput);
    recorder.Record(prefix + "_cached_rps", n / cached_s, "requests/s",
                    bench::MetricKind::kThroughput);
    recorder.Record(prefix + "_cached_speedup", speedup, "x",
                    bench::MetricKind::kRatio);
    std::printf("[serve] prefix-cache(%s, prefix=%lld): cached %.1f req/s "
                "vs uncached %.1f req/s (%.2fx)\n",
                shape.name, static_cast<long long>(prefix_tokens),
                n / cached_s, n / uncached_s, speedup);

    if (!shape.gated) continue;

    // End-to-end stat wiring at the gated shape: an engine pass over the
    // cached snapshot must account prefix_tokens_skipped = scored × prefix
    // length — deterministic, so it gates against the committed baseline.
    serve::EngineOptions engine_options;
    engine_options.max_batch_size = kBatchSize;
    engine_options.batch_deadline_ms = 0.0;
    serve::RecommendationEngine engine(cached.value().get(), engine_options);
    for (const serve::ScoreRequest& request : requests) {
      engine.ScoreCandidates(request.history, request.candidates);
    }
    engine.Shutdown();
    const serve::RecommendationEngine::Stats stats = engine.GetStats();
    DELREC_CHECK_EQ(stats.prefix_tokens_skipped,
                    stats.scored * static_cast<uint64_t>(prefix_tokens));
    recorder.Record("serve_prefix_tokens_skipped",
                    static_cast<double>(stats.prefix_tokens_skipped),
                    "tokens", bench::MetricKind::kCount, /*stable=*/true);
    recorder.Record("serve_cached_speedup_vs_uncached", speedup, "x",
                    bench::MetricKind::kRatio);

    // The PR's acceptance floor: at the long-prefix serve shape the cached
    // path must win ≥1.5× (measured well above that on the reference host —
    // the uncached side re-encodes a 48-row soft block plus the instruction
    // run per request, the cached side only each request's short tail). The
    // scalar GEMM fallback reorganizes the same arithmetic without wider
    // registers, so there it only has to not regress.
    const bool scalar_isa =
        nn::GemmKernelConfig().find("isa=scalar") != std::string::npos;
    const double floor = scalar_isa ? 1.0 : 1.5;
    DELREC_CHECK_GE(speedup, floor)
        << "cached-vs-uncached serve speedup below floor (" << speedup
        << " < " << floor << ") with kernel " << nn::GemmKernelConfig();
  }
}

/// Section 2: concurrent clients against the micro-batching engine.
void BenchEngineThroughput(bench::BenchRecorder& recorder,
                           const serve::EngineSnapshot& snapshot,
                           const std::vector<serve::ScoreRequest>& requests) {
  serve::EngineOptions options;
  options.max_batch_size = kBatchSize;
  options.batch_deadline_ms = 1.0;
  serve::RecommendationEngine engine(&snapshot, options);

  std::vector<std::vector<double>> latencies(kClientThreads);
  util::WallTimer wall;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const serve::ScoreRequest& request =
            requests[(c + i * kClientThreads) % requests.size()];
        util::WallTimer latency;
        engine.ScoreCandidates(request.history, request.candidates);
        latencies[c].push_back(latency.ElapsedSeconds());
      }
    });
  }
  for (std::thread& client : clients) client.join();
  const double wall_s = wall.ElapsedSeconds();
  engine.Shutdown();

  std::vector<double> all;
  for (const std::vector<double>& client : latencies) {
    all.insert(all.end(), client.begin(), client.end());
  }
  std::sort(all.begin(), all.end());
  const double total = static_cast<double>(all.size());
  const serve::RecommendationEngine::Stats stats = engine.GetStats();
  DELREC_CHECK_EQ(stats.requests, all.size());

  // Stable counts: the workload is fixed, so these gate against the
  // committed baseline (a drift means the bench silently changed shape).
  recorder.Record("serve_engine_requests", total, "requests",
                  bench::MetricKind::kCount, /*stable=*/true);
  recorder.Record("serve_engine_shed",
                  static_cast<double>(stats.shed_queue_full +
                                      stats.shed_deadline +
                                      stats.shed_shutdown +
                                      stats.scorer_failures),
                  "requests", bench::MetricKind::kCount, /*stable=*/true);
  recorder.Record("serve_engine_rps", total / wall_s, "requests/s",
                  bench::MetricKind::kThroughput);
  recorder.Record("serve_engine_p50_latency_ms", Percentile(all, 0.50) * 1e3,
                  "ms", bench::MetricKind::kTime);
  recorder.Record("serve_engine_p99_latency_ms", Percentile(all, 0.99) * 1e3,
                  "ms", bench::MetricKind::kTime);
  recorder.Record("serve_engine_mean_batch", stats.mean_batch, "requests",
                  bench::MetricKind::kRatio);
  std::printf("[serve] engine: %d clients, %.1f req/s, p50 %.2f ms, "
              "p99 %.2f ms, mean batch %.2f (max %llu over %llu batches)\n",
              kClientThreads, total / wall_s, Percentile(all, 0.50) * 1e3,
              Percentile(all, 0.99) * 1e3, stats.mean_batch,
              static_cast<unsigned long long>(stats.max_batch),
              static_cast<unsigned long long>(stats.batches));
}

/// Section 6: the two-tier quality/throughput frontier (DESIGN.md §16).
/// Runs the real distillation pipeline — teacher-list export off an
/// EventStream, ranking-distillation fine-tune of a GRU4Rec student, blob
/// embedding through core::DelRecBlobs::student_blob — then sweeps the
/// serving backends on one request set and one candidate-eval protocol.
void BenchTwoTier(bench::BenchRecorder& recorder,
                  bench::DatasetHarness& harness,
                  const core::DelRec& model, const llm::TinyLm& llm,
                  const serve::EngineSnapshot::Sources& sources,
                  const std::vector<serve::ScoreRequest>& requests) {
  // Distill: export teacher lists from the frozen artifact (the snapshot the
  // blob path below rebuilds scores bit-identically to this one). The other
  // sections run the deliberately tiny hl=1 smoke prompt (the batching
  // regime); the frontier claim is about real serving, so this section
  // rebuilds the same weights behind a serve-realistic prompt window — the
  // same window the student is distilled on.
  core::DelRecBlobs blobs = core::ExtractDelRecBlobs(model, llm);
  core::DelRecConfig serve_config = model.config();
  serve_config.history_length = 8;
  auto teacher_only = serve::EngineSnapshot::FromBlobs(
      blobs, llm.config(), serve_config, sources);
  DELREC_CHECK(teacher_only.ok()) << teacher_only.status().ToString();

  distill::TeacherExportOptions export_options;
  export_options.top_k = 4;
  export_options.candidate_pool = 20;
  export_options.history_length = 8;
  export_options.batch_size = 16;
  export_options.max_users = 96;
  data::EventStream stream(harness.workbench().dataset());
  auto exported = distill::ExportTeacherLists(
      *teacher_only.value(), stream, harness.num_items(), export_options);
  DELREC_CHECK(exported.ok()) << exported.status().ToString();
  recorder.Record("serve_two_tier_distill_examples",
                  static_cast<double>(exported.value().examples.size()),
                  "examples", bench::MetricKind::kCount, /*stable=*/true);

  srmodels::StudentSpec spec;
  spec.backbone = srmodels::Backbone::kGru4Rec;
  spec.num_items = harness.num_items();
  spec.history_length = export_options.history_length;
  spec.seed = 23;
  auto student = srmodels::MakeBackbone(spec.backbone, spec.num_items,
                                        spec.history_length, spec.seed);
  distill::DistillTrainConfig train_config;
  train_config.base = srmodels::BackboneTrainConfig(spec.backbone);
  train_config.base.epochs = 2;
  train_config.base.history_length = spec.history_length;
  auto distilled =
      distill::DistillStudent(*student, exported.value(), train_config);
  DELREC_CHECK(distilled.ok()) << distilled.status().ToString();

  // Embed: attach the student blob and rebuild — one artifact now carries
  // both tiers, the shape PublishSnapshot hot-swaps atomically.
  blobs.student_blob = srmodels::SerializeStudent(spec, *student);
  auto built = serve::EngineSnapshot::FromBlobs(blobs, llm.config(),
                                                serve_config, sources);
  DELREC_CHECK(built.ok()) << built.status().ToString();
  std::shared_ptr<const serve::EngineSnapshot> two_tier_snapshot(
      std::move(built.value()));
  DELREC_CHECK(two_tier_snapshot->has_student());
  recorder.Record(
      "serve_two_tier_student_params",
      static_cast<double>(two_tier_snapshot->student()->ParameterCount()),
      "params", bench::MetricKind::kCount, /*stable=*/true);

  const std::unique_ptr<serve::Scorer> student_scorer =
      serve::MakeSequentialScorer(two_tier_snapshot->student());
  constexpr int64_t kRerankDepths[] = {2, 4, 8};
  std::vector<std::shared_ptr<const serve::Scorer>> two_tier;
  for (const int64_t h : kRerankDepths) {
    serve::TwoTierOptions options;
    options.rerank_top_h = h;
    auto composed = serve::MakeSnapshotTwoTier(two_tier_snapshot, options);
    DELREC_CHECK(composed.ok()) << composed.status().ToString();
    two_tier.push_back(std::move(composed.value()));
  }

  // Throughput: the same batched pass as section 1 over every backend.
  auto timed_batched = [&](const serve::Scorer& scorer) {
    constexpr int kPasses = 3;
    double best = std::numeric_limits<double>::infinity();
    for (int pass = 0; pass <= kPasses; ++pass) {  // Pass 0 is warm-up.
      util::WallTimer timer;
      for (size_t begin = 0; begin < requests.size();
           begin += static_cast<size_t>(kBatchSize)) {
        const size_t end =
            std::min(begin + static_cast<size_t>(kBatchSize), requests.size());
        scorer.ScoreBatch(std::vector<serve::ScoreRequest>(
            requests.begin() + begin, requests.begin() + end));
      }
      if (pass > 0) best = std::min(best, timer.ElapsedSeconds());
    }
    return best;
  };
  const double n = static_cast<double>(requests.size());
  const double teacher_s = timed_batched(*two_tier_snapshot);
  const double student_s = timed_batched(*student_scorer);
  recorder.Record("serve_two_tier_teacher_rps", n / teacher_s, "requests/s",
                  bench::MetricKind::kThroughput);
  recorder.Record("serve_two_tier_student_rps", n / student_s, "requests/s",
                  bench::MetricKind::kThroughput);
  const double student_speedup = teacher_s / student_s;
  recorder.Record("serve_two_tier_student_speedup", student_speedup, "x",
                  bench::MetricKind::kRatio);

  // Quality: the harness protocol (fixed candidate sets — every backend
  // ranks identical pools) per backend.
  auto evaluate = [&](const serve::Scorer& scorer) {
    return harness
        .Evaluate([&](const data::Example& example,
                      const std::vector<int64_t>& candidates) {
          serve::ScoreRequest request;
          request.history = example.history;
          request.candidates = candidates;
          return scorer.Score(request);
        })
        .Result();
  };
  const eval::RankedMetrics teacher_quality = evaluate(*two_tier_snapshot);
  const eval::RankedMetrics student_quality = evaluate(*student_scorer);
  recorder.Record("serve_two_tier_teacher_hr5", teacher_quality.hr_at_5, "",
                  bench::MetricKind::kRatio);
  recorder.Record("serve_two_tier_teacher_ndcg5", teacher_quality.ndcg_at_5,
                  "", bench::MetricKind::kRatio);
  recorder.Record("serve_two_tier_student_hr5", student_quality.hr_at_5, "",
                  bench::MetricKind::kRatio);
  std::printf("[serve] two-tier: teacher %.1f req/s (HR@5 %.3f), student "
              "%.1f req/s (HR@5 %.3f, %.1fx)\n",
              n / teacher_s, teacher_quality.hr_at_5, n / student_s,
              student_quality.hr_at_5, student_speedup);

  double frontier_hr5 = 0.0;
  double frontier_ndcg5 = 0.0;
  for (size_t i = 0; i < two_tier.size(); ++i) {
    const double tier_s = timed_batched(*two_tier[i]);
    const eval::RankedMetrics quality = evaluate(*two_tier[i]);
    const std::string prefix =
        "serve_two_tier_h" + std::to_string(kRerankDepths[i]);
    recorder.Record(prefix + "_rps", n / tier_s, "requests/s",
                    bench::MetricKind::kThroughput);
    recorder.Record(prefix + "_hr5", quality.hr_at_5, "",
                    bench::MetricKind::kRatio);
    recorder.Record(prefix + "_ndcg5", quality.ndcg_at_5, "",
                    bench::MetricKind::kRatio);
    std::printf("[serve] two-tier h=%lld: %.1f req/s, HR@5 %.3f, "
                "NDCG@5 %.3f\n",
                static_cast<long long>(kRerankDepths[i]), n / tier_s,
                quality.hr_at_5, quality.ndcg_at_5);
    frontier_hr5 = std::max(frontier_hr5, quality.hr_at_5);
    frontier_ndcg5 = std::max(frontier_ndcg5, quality.ndcg_at_5);
  }

  // Acceptance floors. (1) The student must be ≥5× the teacher on batched
  // throughput — a lockstep batched GRU sweep over 15-item pools vs a
  // transformer prompt encode; measured ~13× on the reference host, and the
  // gap is architectural (layers of GEMMs over prompt tokens vs one (B, D)
  // recurrence), so the floor holds on every ISA. (2) The best two-tier point must hold teacher-class quality:
  // HR@5/NDCG@5 within an absolute 0.15 of teacher-only on this smoke-sized
  // eval (30 examples ⇒ one example moves HR@5 by 0.033; the tolerance
  // allows a few boundary flips, not a collapse to student-only quality).
  DELREC_CHECK_GE(student_speedup, 5.0)
      << "student throughput below the 5x floor (" << student_speedup
      << "x) with kernel " << nn::GemmKernelConfig();
  DELREC_CHECK_GE(frontier_hr5, teacher_quality.hr_at_5 - 0.15)
      << "two-tier HR@5 fell outside tolerance (" << frontier_hr5 << " vs "
      << teacher_quality.hr_at_5 << ")";
  DELREC_CHECK_GE(frontier_ndcg5, teacher_quality.ndcg_at_5 - 0.15)
      << "two-tier NDCG@5 fell outside tolerance (" << frontier_ndcg5
      << " vs " << teacher_quality.ndcg_at_5 << ")";
}

void ValidateEmittedJson(const std::string& path) {
  std::ifstream in(path);
  DELREC_CHECK(static_cast<bool>(in)) << "missing bench JSON " << path;
  std::ostringstream text;
  text << in.rdbuf();
  util::Json doc;
  const util::Status parsed = util::Json::Parse(text.str(), &doc);
  DELREC_CHECK(parsed.ok()) << parsed.ToString();
  const util::Status valid = bench::BenchRecorder::ValidateSchema(doc);
  DELREC_CHECK(valid.ok()) << valid.ToString();
  DELREC_CHECK(doc.Find("bench")->str() == "serve");
  const util::Json* metrics = doc.Find("metrics");
  bool has_rps = false, has_speedup = false, has_int8 = false,
       has_scale = false, has_cached = false, has_skipped = false,
       has_sweep = false, has_student = false, has_frontier = false;
  for (size_t i = 0; i < metrics->size(); ++i) {
    const std::string& name = metrics->at(i).Find("name")->str();
    has_rps = has_rps || name == "serve_engine_rps";
    has_speedup = has_speedup || name == "serve_batch_speedup_vs_single";
    has_int8 = has_int8 || name == "serve_int8_speedup_vs_fp32";
    has_scale = has_scale || name == "serve_scale_int8_speedup";
    has_cached = has_cached || name == "serve_cached_speedup_vs_uncached";
    has_skipped = has_skipped || name == "serve_prefix_tokens_skipped";
    has_sweep = has_sweep || name == "serve_prefix_short_prefix_tokens";
    has_student = has_student || name == "serve_two_tier_student_speedup";
    has_frontier = has_frontier || name == "serve_two_tier_h8_hr5";
  }
  DELREC_CHECK(has_rps) << "engine throughput missing from " << path;
  DELREC_CHECK(has_speedup) << "batched speedup missing from " << path;
  DELREC_CHECK(has_int8) << "int8 comparison missing from " << path;
  DELREC_CHECK(has_scale) << "serve-scale int8 section missing from " << path;
  DELREC_CHECK(has_cached) << "prefix-cache comparison missing from " << path;
  DELREC_CHECK(has_skipped) << "prefix_tokens_skipped missing from " << path;
  DELREC_CHECK(has_sweep) << "prompt-shape sweep missing from " << path;
  DELREC_CHECK(has_student) << "two-tier student sweep missing from " << path;
  DELREC_CHECK(has_frontier) << "two-tier frontier missing from " << path;
  std::printf("[serve] %s: schema valid (%zu metrics)\n", path.c_str(),
              metrics->size());
}

}  // namespace
}  // namespace delrec

int main() {
  using namespace delrec;
  bench::BeginBench("serve");
  bench::BenchRecorder& recorder = bench::BenchRecorder::Global();

  bench::HarnessOptions options = bench::OptionsFromEnv();
  options.fast = true;
  options.eval_examples = 30;
  options.pretrain_epochs = 1;
  options.stage1_examples = 24;
  options.stage1_epochs = 1;
  options.stage2_examples = 40;
  options.stage2_epochs = 1;
  options.sr_epochs = 1;
  bench::DatasetHarness harness(data::MovieLens100KConfig(), options);
  // Serve-smoke shape: a short scoring prompt (the regime where batching
  // pays — per-request GEMMs too small to saturate the kernel alone).
  core::DelRecConfig config = harness.DelRecDefaults();
  config.history_length = 1;
  config.soft_prompt_count = 4;
  config.sr_hints_in_stage2 = false;
  auto trained = harness.TrainDelRec(srmodels::Backbone::kSasRec, config);

  serve::EngineSnapshot::Sources sources;
  sources.catalog = &harness.workbench().dataset().catalog;
  sources.vocab = &harness.workbench().vocab();
  sources.sr_model = harness.Backbone(srmodels::Backbone::kSasRec);
  auto snapshot = serve::EngineSnapshot::FromModel(*trained.model,
                                                   *trained.llm, sources);
  DELREC_CHECK(snapshot.ok()) << snapshot.status().ToString();
  serve::EngineSnapshot::BuildOptions quant_options;
  quant_options.quantize_int8 = true;
  auto int8_snapshot = serve::EngineSnapshot::FromModel(
      *trained.model, *trained.llm, sources, quant_options);
  DELREC_CHECK(int8_snapshot.ok()) << int8_snapshot.status().ToString();
  std::printf("[serve] int8 kernel: %s\n",
              nn::Int8GemmKernelConfig().c_str());
  const std::unique_ptr<serve::Scorer> live_scorer =
      serve::MakeDelRecScorer(trained.model.get());

  const std::vector<serve::ScoreRequest> requests =
      MakeRequests(harness, 96);
  BenchBatchedVsSingle(recorder, *live_scorer, *snapshot.value(), requests);
  BenchInt8VsFp32(recorder, *snapshot.value(), *int8_snapshot.value(),
                  requests);
  BenchServeScaleInt8(recorder);
  BenchPrefixCache(recorder, harness, sources, requests);
  BenchEngineThroughput(recorder, *snapshot.value(), requests);
  BenchTwoTier(recorder, harness, *trained.model, *trained.llm, sources,
               requests);

  const int rc = bench::FinishBench();
  const std::string path = bench::BenchRecorder::OutputPath("serve");
  if (!path.empty()) ValidateEmittedJson(path);
  return rc;
}
