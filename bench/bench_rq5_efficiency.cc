// Reproduces §V-F (RQ5): memory footprint, inference time / real-time
// response (google-benchmark micro-timings of per-request scoring), and the
// cold-start comparison (users with <3 interactions) on Home & Kitchen.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "baselines/paradigm3.h"
#include "baselines/zero_shot.h"
#include "bench/harness.h"
#include "data/dataset.h"
#include "nn/ops.h"
#include "nn/tensor.h"
#include "util/check.h"
#include "util/memory.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/threadpool.h"

namespace delrec::bench {
namespace {

struct Rq5State {
  std::unique_ptr<DatasetHarness> harness;
  std::unique_ptr<llm::TinyLm> raw_llm;
  DatasetHarness::TrainedDelRec delrec;
  std::unique_ptr<baselines::KdaLrd> kda_lrd;
  std::unique_ptr<llm::TinyLm> kda_llm;
  std::vector<data::Example> cold_examples;
};

Rq5State* g_state = nullptr;

void BenchDelRecInference(benchmark::State& state) {
  util::Rng rng(1);
  const auto& test = g_state->harness->workbench().splits().test;
  int64_t i = 0;
  for (auto _ : state) {
    const data::Example& example = test[i++ % test.size()];
    auto candidates = data::SampleCandidates(
        g_state->harness->num_items(), example.target, 15, rng);
    benchmark::DoNotOptimize(
        g_state->delrec.model->ScoreCandidates(example, candidates));
  }
}
BENCHMARK(BenchDelRecInference)->Unit(benchmark::kMillisecond);

void BenchRawLlmInference(benchmark::State& state) {
  // The LLM backbone alone (paper: Flan-T5-XL is only ~21ms faster than
  // DELRec per request — soft prompts add little latency).
  util::Rng rng(1);
  baselines::ZeroShotLlm raw("raw", g_state->raw_llm.get(),
                             &g_state->harness->workbench().dataset().catalog,
                             &g_state->harness->workbench().vocab(), 10);
  const auto& test = g_state->harness->workbench().splits().test;
  int64_t i = 0;
  for (auto _ : state) {
    const data::Example& example = test[i++ % test.size()];
    auto candidates = data::SampleCandidates(
        g_state->harness->num_items(), example.target, 15, rng);
    benchmark::DoNotOptimize(raw.ScoreCandidates(example, candidates));
  }
}
BENCHMARK(BenchRawLlmInference)->Unit(benchmark::kMillisecond);

void BenchSasRecInference(benchmark::State& state) {
  util::Rng rng(1);
  auto* sasrec = g_state->harness->Backbone(srmodels::Backbone::kSasRec);
  const auto& test = g_state->harness->workbench().splits().test;
  int64_t i = 0;
  for (auto _ : state) {
    const data::Example& example = test[i++ % test.size()];
    auto candidates = data::SampleCandidates(
        g_state->harness->num_items(), example.target, 15, rng);
    benchmark::DoNotOptimize(
        sasrec->ScoreCandidates(example.history, candidates));
  }
}
BENCHMARK(BenchSasRecInference)->Unit(benchmark::kMillisecond);

eval::MetricsAccumulator EvaluateCold(
    const eval::CandidateScorer& scorer) {
  eval::EvalConfig config;
  return eval::EvaluateCandidates(g_state->cold_examples,
                                  g_state->harness->num_items(), scorer,
                                  config);
}

// -- Parallel-execution timings (DESIGN.md §9) --------------------------------
// GEMM-dominated kernel and batch-eval timings at 1 vs N threads; results
// are bit-identical across the thread axis, so the only delta is wall time.

void BenchGemmNN(benchmark::State& state) {
  util::ScopedParallelism parallel(static_cast<int>(state.range(0)));
  util::Rng rng(11);
  const nn::Tensor a = nn::Tensor::Randn({256, 256}, rng, 1.0f);
  const nn::Tensor b = nn::Tensor::Randn({256, 256}, rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMul(a, b));
  }
}
BENCHMARK(BenchGemmNN)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BenchGemmNT(benchmark::State& state) {
  util::ScopedParallelism parallel(static_cast<int>(state.range(0)));
  util::Rng rng(11);
  const nn::Tensor a = nn::Tensor::Randn({256, 256}, rng, 1.0f);
  const nn::Tensor b = nn::Tensor::Randn({256, 256}, rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMul(a, b, false, true));
  }
}
BENCHMARK(BenchGemmNT)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BenchSasRecBatchEval(benchmark::State& state) {
  util::ScopedParallelism parallel(static_cast<int>(state.range(0)));
  auto* sasrec = g_state->harness->Backbone(srmodels::Backbone::kSasRec);
  const auto& test = g_state->harness->workbench().splits().test;
  util::Rng rng(1);
  std::vector<std::vector<int64_t>> histories, candidates;
  for (size_t i = 0; i < std::min<size_t>(64, test.size()); ++i) {
    histories.push_back(test[i].history);
    candidates.push_back(data::SampleCandidates(
        g_state->harness->num_items(), test[i].target, 15, rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sasrec->ScoreCandidatesBatch(histories, candidates));
  }
}
BENCHMARK(BenchSasRecBatchEval)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace delrec::bench

int main(int argc, char** argv) {
  using namespace delrec;
  bench::HarnessOptions options = bench::OptionsFromEnv();
  bench::BeginBench("rq5_efficiency");
  std::printf("== RQ5: efficiency, real-time response, cold start ==\n");
  std::printf("(dataset: Home & Kitchen — the paper's scalability probe)\n\n");

  bench::Rq5State state;
  bench::g_state = &state;
  state.harness = std::make_unique<bench::DatasetHarness>(
      data::HomeKitchenConfig(), options);

  // Train once; record the training-phase peak RSS afterwards.
  state.raw_llm = state.harness->Llm(core::LlmSize::kXL);
  state.delrec = state.harness->TrainDelRec(srmodels::Backbone::kSasRec,
                                            state.harness->DelRecDefaults());
  state.kda_llm = state.harness->Llm(core::LlmSize::kXL);
  state.kda_lrd = std::make_unique<baselines::KdaLrd>(
      state.kda_llm.get(), &state.harness->workbench().dataset().catalog,
      &state.harness->workbench().vocab(), state.harness->BaselineDefaults());
  const util::Status kda_trained =
      state.kda_lrd->Train(state.harness->workbench().splits().train);
  DELREC_CHECK(kda_trained.ok()) << kda_trained.ToString();
  const int64_t peak_training_rss = util::PeakRssBytes();

  // Memory-footprint table.
  {
    util::TablePrinter table({"Component", "Value"});
    table.AddRow({"LLM backbone (TinyLM-XL) parameters",
                  std::to_string(state.raw_llm->ParameterCount())});
    table.AddRow({"Soft prompt parameters",
                  std::to_string(
                      state.delrec.model->SoftPromptParameterCount())});
    table.AddRow({"AdaLoRA adapter parameters",
                  std::to_string(
                      state.delrec.model->AdapterParameterCount())});
    table.AddRow(
        {"SASRec backbone parameters",
         std::to_string(state.harness->Backbone(srmodels::Backbone::kSasRec)
                            ->ParameterCount())});
    table.AddRow({"Peak RSS through training",
                  util::FormatFixed(peak_training_rss / (1024.0 * 1024.0), 1) +
                      " MiB"});
    table.AddRow({"Current RSS (inference-ready)",
                  util::FormatFixed(
                      util::CurrentRssBytes() / (1024.0 * 1024.0), 1) +
                      " MiB"});
    std::printf("-- Memory footprint --\n");
    table.Print();
  }

  // Inference-latency micro-benchmarks.
  std::printf("\n-- Inference time (per request, 15 candidates) --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Cold-start comparison (users with < 3 interactions).
  {
    data::Dataset cold_dataset = state.harness->workbench().dataset();
    auto ids = data::AppendColdStartUsers(cold_dataset, 120, 555);
    for (const data::UserSequence& sequence : cold_dataset.sequences) {
      if (std::find(ids.begin(), ids.end(), sequence.user) == ids.end()) {
        continue;
      }
      data::Example example;
      example.user = sequence.user;
      example.history.assign(sequence.items.begin(),
                             sequence.items.end() - 1);
      example.target = sequence.items.back();
      state.cold_examples.push_back(std::move(example));
    }
    std::printf("\n-- Cold start (users with <3 interactions, n=%zu) --\n",
                state.cold_examples.size());
    util::TablePrinter table(
        {"Model", "HR@1", "HR@5", "NDCG@5", "HR@10", "NDCG@10"});
    table.AddMetricRow(
        "SASRec",
        bench::EvaluateCold([&](const data::Example& e,
                                const std::vector<int64_t>& c) {
          return state.harness->Backbone(srmodels::Backbone::kSasRec)
              ->ScoreCandidates(e.history, c);
        }).Result().ToRow());
    table.AddMetricRow(
        "KDA_LRD",
        bench::EvaluateCold([&](const data::Example& e,
                                const std::vector<int64_t>& c) {
          return state.kda_lrd->ScoreCandidates(e, c);
        }).Result().ToRow());
    table.AddMetricRow(
        "DELRec",
        bench::EvaluateCold([&](const data::Example& e,
                                const std::vector<int64_t>& c) {
          return state.delrec.model->ScoreCandidates(e, c);
        }).Result().ToRow());
    table.Print();
  }
  benchmark::Shutdown();
  bench::g_state = nullptr;
  return bench::FinishBench();
}
