// Reproduces Table IV (Ablation II, RQ3): component ablations of DELRec
// (SASRec backbone) — w/o DPSM, w/o LSR, w/o TA, w/o RPS, w UDPSM, w ULSR,
// and the smaller TinyLM-Large backbone — on all four datasets.
#include <cstdio>
#include <functional>

#include "bench/harness.h"
#include "util/check.h"
#include "util/table.h"
#include "util/timer.h"

namespace delrec::bench {
namespace {

void RunDataset(const data::GeneratorConfig& config,
                const HarnessOptions& options) {
  util::WallTimer timer;
  std::printf("\n== Table IV — %s (SASRec backbone) ==\n",
              config.name.c_str());
  DatasetHarness harness(config, options);
  util::TablePrinter table(
      {"Variant", "HR@1", "HR@5", "NDCG@5", "HR@10", "NDCG@10"});

  struct Variant {
    const char* label;
    std::function<void(core::DelRecConfig&)> apply;
    core::LlmSize size = core::LlmSize::kXL;
  };
  const std::vector<Variant> kVariants = {
      {"w/o DPSM",
       [](core::DelRecConfig& c) { c.use_soft_prompts = false; }},
      {"w/o LSR", [](core::DelRecConfig& c) { c.skip_stage2 = true; }},
      {"w/o TA",
       [](core::DelRecConfig& c) { c.disable_temporal_analysis = true; }},
      {"w/o RPS",
       [](core::DelRecConfig& c) { c.disable_pattern_simulating = true; }},
      {"w UDPSM",
       [](core::DelRecConfig& c) { c.update_llm_in_stage1 = true; }},
      {"w ULSR",
       [](core::DelRecConfig& c) { c.update_soft_in_stage2 = true; }},
      {"w TinyLM-Large", [](core::DelRecConfig& c) {},
       core::LlmSize::kLarge},
      {"Default", [](core::DelRecConfig& c) {}},
  };
  for (const Variant& variant : kVariants) {
    core::DelRecConfig config_variant = harness.DelRecDefaults();
    variant.apply(config_variant);
    auto llm = harness.Llm(variant.size);
    core::DelRec model(&harness.workbench().dataset().catalog,
                       &harness.workbench().vocab(), llm.get(),
                       harness.Backbone(srmodels::Backbone::kSasRec),
                       config_variant);
    const util::Status trained =
        model.Train(harness.workbench().splits().train);
    DELREC_CHECK(trained.ok()) << variant.label << ": " << trained.ToString();
    table.AddMetricRow(variant.label,
                       harness.EvaluateDelRec(model).Result().ToRow());
  }
  table.Print();
  std::printf("[%s finished in %.1fs]\n", config.name.c_str(),
              timer.ElapsedSeconds());
}

}  // namespace
}  // namespace delrec::bench

int main() {
  using namespace delrec;
  bench::HarnessOptions options = bench::OptionsFromEnv();
  if (!options.fast) {
    // Ablation-sized budgets (many variants × 4 datasets); deltas between
    // variants remain visible at this scale.
    options.stage1_examples = 150;
    options.stage2_examples = 500;
    options.stage2_epochs = 4;
    options.eval_examples = 200;
  }
  bench::BeginBench("table4_ablation2");
  std::printf("== Table IV: Ablation II — DELRec components ==\n");
  for (const data::GeneratorConfig& config :
       {data::MovieLens100KConfig(), data::SteamConfig(),
        data::BeautyConfig(), data::HomeKitchenConfig()}) {
    bench::RunDataset(config, options);
  }
  return bench::FinishBench();
}
