// Reproduces Figure 8 (RQ4): HR@1 vs the number h of conventional-SR
// recommended items shown during Recommendation Pattern Simulating. Paper
// shape: helps up to a point, then dips (too many items mislead the LLM and
// stretch the prompt).
#include <cstdio>

#include "bench/harness.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace delrec;
  bench::HarnessOptions options = bench::OptionsFromEnv();
  if (!options.fast) {
    options.stage1_examples = 120;
    options.stage2_examples = 300;
    options.stage2_epochs = 3;
    options.eval_examples = 200;
  }
  bench::BeginBench("fig8_rec_items");
  const std::vector<int64_t> kSweep = {1, 3, 5, 10, 15};
  std::printf("== Figure 8: HR@1 vs recommended-items size h ==\n");
  util::TablePrinter table(
      {"Dataset", "h=1", "h=3", "h=5", "h=10", "h=15"});
  for (const data::GeneratorConfig& config :
       {data::MovieLens100KConfig(), data::SteamConfig(),
        data::BeautyConfig(), data::HomeKitchenConfig()}) {
    util::WallTimer timer;
    bench::DatasetHarness harness(config, options);
    std::vector<double> row;
    for (int64_t h : kSweep) {
      core::DelRecConfig delrec_config = harness.DelRecDefaults();
      delrec_config.top_h = h;
      auto trained =
          harness.TrainDelRec(srmodels::Backbone::kSasRec, delrec_config);
      row.push_back(
          harness.EvaluateDelRec(*trained.model).Result().hr_at_1);
    }
    table.AddMetricRow(config.name, row);
    std::printf("[%s swept in %.1fs]\n", config.name.c_str(),
                timer.ElapsedSeconds());
  }
  table.Print();
  return bench::FinishBench();
}
