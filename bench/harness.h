#ifndef DELREC_BENCH_HARNESS_H_
#define DELREC_BENCH_HARNESS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/common.h"
#include "core/delrec.h"
#include "core/workbench.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "eval/protocol.h"
#include "srmodels/factory.h"

namespace delrec::bench {

/// Global bench scaling. DELREC_FAST=1 in the environment cuts training and
/// evaluation budgets ~4× for quick smoke runs; default reproduces the
/// paper-shaped tables. DELREC_NUM_THREADS=N fans candidate scoring, batch
/// inference and the GEMM kernels across N threads — tables are
/// bit-identical to the serial run (DESIGN.md §9), only faster.
struct HarnessOptions {
  bool fast = false;
  int num_threads = 1;
  int64_t eval_examples = 250;
  int pretrain_epochs = 3;
  // DELRec budgets.
  int64_t stage1_examples = 200;
  int stage1_epochs = 2;
  int64_t stage2_examples = 1200;
  int stage2_epochs = 8;
  // Baseline fine-tuning budgets.
  int64_t baseline_examples = 600;
  int baseline_epochs = 4;
  // Conventional SR model budget.
  int sr_epochs = 6;
};

/// Reads DELREC_FAST from the environment and scales budgets.
HarnessOptions OptionsFromEnv();

/// One dataset's full experimental context: generated data, splits, cached
/// pretrained LLM weights and lazily trained conventional backbones. Every
/// method evaluated on this harness sees identical candidate sets.
class DatasetHarness {
 public:
  DatasetHarness(const data::GeneratorConfig& config,
                 const HarnessOptions& options);

  core::Workbench& workbench() { return *workbench_; }
  const data::GeneratorConfig& config() const { return config_; }
  const HarnessOptions& options() const { return options_; }
  int64_t num_items() const { return workbench_->num_items(); }

  /// Trained conventional backbone (trained once, cached).
  srmodels::SequentialRecommender* Backbone(srmodels::Backbone backbone);

  /// Fresh pretrained LLM copy.
  std::unique_ptr<llm::TinyLm> Llm(core::LlmSize size);

  /// Candidate-set evaluation on the test split (fixed seed: all methods
  /// rank the same sets).
  eval::MetricsAccumulator Evaluate(const eval::CandidateScorer& scorer) const;
  eval::MetricsAccumulator EvaluateRecommender(
      const srmodels::SequentialRecommender& model) const;
  eval::MetricsAccumulator EvaluateLlmBaseline(
      const baselines::LlmRecommender& model) const;
  eval::MetricsAccumulator EvaluateDelRec(const core::DelRec& model) const;

  /// Paper-matched default configs, scaled by the harness options. α is 4
  /// for MovieLens-100K/Beauty and 6 for Steam/Home & Kitchen (§V-A3).
  core::DelRecConfig DelRecDefaults() const;
  baselines::LlmRecConfig BaselineDefaults() const;
  srmodels::TrainConfig SrTrainConfig(srmodels::Backbone backbone) const;

  /// Trains a DELRec instance end-to-end on a fresh LLM and returns it
  /// (with the LLM it owns via the returned pair).
  struct TrainedDelRec {
    std::unique_ptr<llm::TinyLm> llm;
    std::unique_ptr<core::DelRec> model;
  };
  TrainedDelRec TrainDelRec(srmodels::Backbone backbone,
                            const core::DelRecConfig& config);

 private:
  data::GeneratorConfig config_;
  HarnessOptions options_;
  std::unique_ptr<core::Workbench> workbench_;
  std::map<srmodels::Backbone,
           std::unique_ptr<srmodels::SequentialRecommender>>
      backbones_;
};

/// "0.3701*" style cell: metric plus significance stars from a paired t-test
/// of per-example HR@1 between `method` and `reference`.
std::vector<std::string> SignificanceSuffixes(
    const eval::MetricsAccumulator& method,
    const eval::MetricsAccumulator& reference);

}  // namespace delrec::bench

#endif  // DELREC_BENCH_HARNESS_H_
