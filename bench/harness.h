#ifndef DELREC_BENCH_HARNESS_H_
#define DELREC_BENCH_HARNESS_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "baselines/common.h"
#include "core/delrec.h"
#include "core/workbench.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "eval/protocol.h"
#include "srmodels/factory.h"
#include "util/json.h"
#include "util/status.h"
#include "util/timer.h"

namespace delrec::bench {

// -- Machine-readable bench records (BENCH_*.json) ---------------------------

/// How a metric's value should be interpreted when comparing runs: for
/// kThroughput and kRatio higher is better, for kTime and kCount lower is
/// better.
enum class MetricKind { kThroughput, kTime, kCount, kRatio };

/// One recorded measurement. `stable` marks metrics that are deterministic
/// for a fixed workload and thread count (allocation counts, hit ratios);
/// the baseline comparison hard-gates those, while noisy wall-clock metrics
/// gate only under DELREC_BENCH_STRICT=1 so shared-machine CI stays green.
struct BenchMetric {
  std::string name;
  double value = 0.0;
  std::string unit;
  MetricKind kind = MetricKind::kCount;
  bool stable = false;
};

/// Collects metrics for one bench binary and emits/compares BENCH_*.json.
///
/// Every bench main() calls BeginBench(name) first — which prints the
/// effective GEMM kernel/thread configuration and resets pool counters —
/// and returns FinishBench(), which appends pool statistics, writes the
/// JSON record to $DELREC_BENCH_JSON (default BENCH_<name>.json; set the
/// variable to an empty string to skip writing), compares against
/// $DELREC_BENCH_BASELINE when set, and yields the process exit code
/// (non-zero on a >15% regression of a gated metric).
class BenchRecorder {
 public:
  static BenchRecorder& Global();

  void Begin(const std::string& bench_name);
  /// True once Begin() ran; harness instrumentation is inert otherwise, so
  /// linking the harness into tests records nothing.
  bool active() const;

  /// Records a metric, overwriting any prior value of the same name.
  void Record(const std::string& name, double value, const std::string& unit,
              MetricKind kind, bool stable = false);
  /// Adds `value` into the named metric, creating it at zero. Used for
  /// phase times accumulated across several calls (e.g. eval_s).
  void Accumulate(const std::string& name, double value,
                  const std::string& unit, MetricKind kind,
                  bool stable = false);

  /// Serializes the run: {schema_version, bench, config{threads, fast,
  /// kernel, native}, metrics[{name, value, unit, kind, stable}]}.
  /// Non-finite values are emitted as null.
  util::Json ToJson() const;

  int Finish();

  /// Structural check of a BENCH_*.json document (used on our own output
  /// and on baselines before comparing).
  static util::Status ValidateSchema(const util::Json& doc);
  /// Fails when a gated metric regresses more than `tolerance` (fractional)
  /// in its bad direction, or when a stable baseline metric is missing from
  /// `current`. Gated = stable metrics always, every metric when `strict`.
  static util::Status Compare(const util::Json& baseline,
                              const util::Json& current, double tolerance,
                              bool strict);

  /// Output path Finish() writes to for a given bench name (after applying
  /// the DELREC_BENCH_JSON override). Empty means "do not write".
  static std::string OutputPath(const std::string& bench_name);

 private:
  mutable std::mutex mutex_;
  std::string bench_name_;
  std::vector<BenchMetric> metrics_;
  util::WallTimer run_timer_;
};

/// Convenience wrappers used by every bench main().
void BeginBench(const std::string& name);
int FinishBench();

/// Records the process peak RSS (VmHWM from /proc/self/status) as
/// "<name>_bytes" in the bench record and returns it. Peak RSS includes
/// binary, heap, and resident mapped pages — exactly what an out-of-core
/// budget has to hold.
int64_t RecordPeakRss(const std::string& name = "peak_rss");

/// The out-of-core gate: records peak_rss_bytes, rss_budget_bytes and the
/// stable rss_within_budget flag, and returns an error when the peak
/// exceeds `budget_bytes`. bench_datalane fails its run on this status.
util::Status AssertPeakRssUnder(int64_t budget_bytes,
                                const std::string& what);

/// RAII wall-clock phase timer: destructor accumulates "<name>_s" into the
/// global recorder (no-op when no bench is active).
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(std::string name);
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;
  ~ScopedPhaseTimer();

 private:
  std::string name_;
  util::WallTimer timer_;
};

/// Global bench scaling. DELREC_FAST=1 in the environment cuts training and
/// evaluation budgets ~4× for quick smoke runs; default reproduces the
/// paper-shaped tables. DELREC_NUM_THREADS=N fans candidate scoring, batch
/// inference and the GEMM kernels across N threads — tables are
/// bit-identical to the serial run (DESIGN.md §9), only faster.
struct HarnessOptions {
  bool fast = false;
  int num_threads = 1;
  int64_t eval_examples = 250;
  int pretrain_epochs = 3;
  // DELRec budgets.
  int64_t stage1_examples = 200;
  int stage1_epochs = 2;
  int64_t stage2_examples = 1200;
  int stage2_epochs = 8;
  // Baseline fine-tuning budgets.
  int64_t baseline_examples = 600;
  int baseline_epochs = 4;
  // Conventional SR model budget.
  int sr_epochs = 6;
};

/// Reads DELREC_FAST from the environment and scales budgets.
HarnessOptions OptionsFromEnv();

/// One dataset's full experimental context: generated data, splits, cached
/// pretrained LLM weights and lazily trained conventional backbones. Every
/// method evaluated on this harness sees identical candidate sets.
class DatasetHarness {
 public:
  DatasetHarness(const data::GeneratorConfig& config,
                 const HarnessOptions& options);

  core::Workbench& workbench() { return *workbench_; }
  const data::GeneratorConfig& config() const { return config_; }
  const HarnessOptions& options() const { return options_; }
  int64_t num_items() const { return workbench_->num_items(); }

  /// Trained conventional backbone (trained once, cached).
  srmodels::SequentialRecommender* Backbone(srmodels::Backbone backbone);

  /// Fresh pretrained LLM copy.
  std::unique_ptr<llm::TinyLm> Llm(core::LlmSize size);

  /// Candidate-set evaluation on the test split (fixed seed: all methods
  /// rank the same sets).
  eval::MetricsAccumulator Evaluate(const eval::CandidateScorer& scorer) const;
  eval::MetricsAccumulator EvaluateRecommender(
      const srmodels::SequentialRecommender& model) const;
  eval::MetricsAccumulator EvaluateLlmBaseline(
      const baselines::LlmRecommender& model) const;
  eval::MetricsAccumulator EvaluateDelRec(const core::DelRec& model) const;

  /// Paper-matched default configs, scaled by the harness options. α is 4
  /// for MovieLens-100K/Beauty and 6 for Steam/Home & Kitchen (§V-A3).
  core::DelRecConfig DelRecDefaults() const;
  baselines::LlmRecConfig BaselineDefaults() const;
  srmodels::TrainConfig SrTrainConfig(srmodels::Backbone backbone) const;

  /// Trains a DELRec instance end-to-end on a fresh LLM and returns it
  /// (with the LLM it owns via the returned pair).
  struct TrainedDelRec {
    std::unique_ptr<llm::TinyLm> llm;
    std::unique_ptr<core::DelRec> model;
  };
  TrainedDelRec TrainDelRec(srmodels::Backbone backbone,
                            const core::DelRecConfig& config);

 private:
  data::GeneratorConfig config_;
  HarnessOptions options_;
  std::unique_ptr<core::Workbench> workbench_;
  std::map<srmodels::Backbone,
           std::unique_ptr<srmodels::SequentialRecommender>>
      backbones_;
};

/// "0.3701*" style cell: metric plus significance stars from a paired t-test
/// of per-example HR@1 between `method` and `reference`.
std::vector<std::string> SignificanceSuffixes(
    const eval::MetricsAccumulator& method,
    const eval::MetricsAccumulator& reference);

}  // namespace delrec::bench

#endif  // DELREC_BENCH_HARNESS_H_
