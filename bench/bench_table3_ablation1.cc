// Reproduces Table III (Ablation I, RQ2): what do the learned soft prompts
// carry? Compares full DELRec (SASRec backbone) against w/o SP (no soft
// prompts), w MCP (hand-written natural-language description instead) and
// w USP (untrained random soft prompts), on all four datasets.
#include <cstdio>

#include "bench/harness.h"
#include "util/table.h"
#include "util/timer.h"

namespace delrec::bench {
namespace {

void RunDataset(const data::GeneratorConfig& config,
                const HarnessOptions& options) {
  util::WallTimer timer;
  std::printf("\n== Table III — %s (SASRec backbone) ==\n",
              config.name.c_str());
  DatasetHarness harness(config, options);
  util::TablePrinter table(
      {"Variant", "HR@1", "HR@5", "NDCG@5", "HR@10", "NDCG@10"});

  struct Variant {
    const char* label;
    void (*apply)(core::DelRecConfig&);
  };
  const Variant kVariants[] = {
      {"w/o SP", [](core::DelRecConfig& c) { c.use_soft_prompts = false; }},
      {"w MCP", [](core::DelRecConfig& c) { c.manual_prompts = true; }},
      {"w USP", [](core::DelRecConfig& c) { c.skip_stage1 = true; }},
      {"Default", [](core::DelRecConfig& c) {}},
  };
  for (const Variant& variant : kVariants) {
    core::DelRecConfig config_variant = harness.DelRecDefaults();
    variant.apply(config_variant);
    auto trained =
        harness.TrainDelRec(srmodels::Backbone::kSasRec, config_variant);
    table.AddMetricRow(variant.label,
                       harness.EvaluateDelRec(*trained.model).Result().ToRow());
  }
  table.Print();
  std::printf("[%s finished in %.1fs]\n", config.name.c_str(),
              timer.ElapsedSeconds());
}

}  // namespace
}  // namespace delrec::bench

int main() {
  using namespace delrec;
  bench::HarnessOptions options = bench::OptionsFromEnv();
  if (!options.fast) {
    // Ablation-sized budgets (many variants × 4 datasets); deltas between
    // variants remain visible at this scale.
    options.stage1_examples = 150;
    options.stage2_examples = 500;
    options.stage2_epochs = 4;
    options.eval_examples = 200;
  }
  bench::BeginBench("table3_ablation1");
  std::printf("== Table III: Ablation I — learned soft prompts ==\n");
  for (const data::GeneratorConfig& config :
       {data::MovieLens100KConfig(), data::SteamConfig(),
        data::BeautyConfig(), data::HomeKitchenConfig()}) {
    bench::RunDataset(config, options);
  }
  return bench::FinishBench();
}
