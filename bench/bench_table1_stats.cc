// Reproduces Table I: statistics of the (synthetic stand-in) datasets after
// 5-core filtering, in the paper's column layout.
#include <cstdio>

#include "bench/harness.h"
#include "data/dataset.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace delrec;
  bench::BeginBench("table1_stats");
  std::printf("== Table I: statistics of datasets ==\n");
  util::TablePrinter table(
      {"Dataset", "sequence", "item", "interaction", "sparsity"});
  for (const data::GeneratorConfig& config : data::AllPresetConfigs()) {
    const data::Dataset dataset =
        data::FilterMinInteractions(data::GenerateDataset(config), 5);
    const data::DatasetStats stats = data::ComputeStats(dataset);
    table.AddRow({config.name, std::to_string(stats.num_sequences),
                  std::to_string(stats.num_items),
                  std::to_string(stats.num_interactions),
                  util::FormatFixed(stats.sparsity * 100.0, 2) + "%"});
  }
  table.Print();
  std::printf(
      "\n(Synthetic stand-ins scaled to CPU budget; the paper's relative\n"
      " size ordering and sparsity ordering are preserved — see DESIGN.md.)\n");
  return bench::FinishBench();
}
