// Ablation bench for the scale-forced design choices documented in
// DESIGN.md §6 — each deviation from the paper-exact configuration is a
// switch; this bench measures what flipping each one back costs on
// MovieLens-100K (SASRec backbone).
#include <cstdio>
#include <functional>

#include "bench/harness.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace delrec;
  const bench::HarnessOptions options = bench::OptionsFromEnv();
  bench::BeginBench("ablation_design");
  std::printf("== Design-choice ablations (DESIGN.md §6) — %s ==\n",
              "MovieLens-100K, SASRec backbone");
  bench::DatasetHarness harness(data::MovieLens100KConfig(), options);

  struct Variant {
    const char* label;
    std::function<void(core::DelRecConfig&)> apply;
  };
  const std::vector<Variant> kVariants = {
      {"Default (repo configuration)", [](core::DelRecConfig&) {}},
      {"+ candidates spelled out in prompt (paper-exact prompt)",
       [](core::DelRecConfig& c) { c.candidates_in_prompt = true; }},
      {"- SR top-h textual channel (soft prompts only, paper-exact)",
       [](core::DelRecConfig& c) { c.sr_hints_in_stage2 = false; }},
      {"Lion in stage 2 (paper-exact optimizer)",
       [](core::DelRecConfig& c) {
         c.stage2_use_lion = true;
         c.stage2_learning_rate = 5e-3f;
       }},
      // Isolating the soft prompts: with the hint channel off, the soft
      // prompts are the ONLY auxiliary information (paper-exact roles), so
      // the delta between these two rows is their clean contribution.
      {"- hints, + distilled soft prompts",
       [](core::DelRecConfig& c) { c.sr_hints_in_stage2 = false; }},
      {"- hints, - soft prompts",
       [](core::DelRecConfig& c) {
         c.sr_hints_in_stage2 = false;
         c.use_soft_prompts = false;
       }},
  };
  util::TablePrinter table(
      {"Variant", "HR@1", "HR@5", "NDCG@5", "HR@10", "NDCG@10"});
  for (const Variant& variant : kVariants) {
    util::WallTimer timer;
    core::DelRecConfig config = harness.DelRecDefaults();
    variant.apply(config);
    auto trained = harness.TrainDelRec(srmodels::Backbone::kSasRec, config);
    table.AddMetricRow(variant.label,
                       harness.EvaluateDelRec(*trained.model).Result().ToRow());
    std::printf("[%s: %.1fs]\n", variant.label, timer.ElapsedSeconds());
  }
  table.Print();
  std::printf(
      "\nReading: each paper-exact setting is *worse at this scale* — that\n"
      "is precisely why DESIGN.md §6 deviates. At paper scale (3B backbone)\n"
      "the trade-offs invert; the switches restore the exact configuration.\n");
  return bench::FinishBench();
}
