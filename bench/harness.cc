#include "bench/harness.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "eval/stats.h"
#include "nn/gemm.h"
#include "util/buffer_pool.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/memory.h"
#include "util/string_util.h"
#include "util/threadpool.h"

namespace delrec::bench {

namespace {

constexpr double kRegressionTolerance = 0.15;

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kThroughput: return "throughput";
    case MetricKind::kTime: return "time";
    case MetricKind::kCount: return "count";
    case MetricKind::kRatio: return "ratio";
  }
  return "count";
}

bool ParseKind(const std::string& name, MetricKind* kind) {
  for (MetricKind k : {MetricKind::kThroughput, MetricKind::kTime,
                       MetricKind::kCount, MetricKind::kRatio}) {
    if (name == KindName(k)) {
      *kind = k;
      return true;
    }
  }
  return false;
}

bool HigherIsBetter(MetricKind kind) {
  return kind == MetricKind::kThroughput || kind == MetricKind::kRatio;
}

bool EnvFlagSet(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && std::string(value) != "" &&
         std::string(value) != "0";
}

/// Pulls one metric entry apart; assumes the document passed ValidateSchema.
struct MetricView {
  std::string name;
  bool has_value = false;  // False when the value serialized as null.
  double value = 0.0;
  MetricKind kind = MetricKind::kCount;
  bool stable = false;
};

MetricView ViewMetric(const util::Json& entry) {
  MetricView view;
  view.name = entry.Find("name")->str();
  const util::Json* value = entry.Find("value");
  if (value->is_number()) {
    view.has_value = true;
    view.value = value->number();
  }
  ParseKind(entry.Find("kind")->str(), &view.kind);
  view.stable = entry.Find("stable")->bool_value();
  return view;
}

}  // namespace

BenchRecorder& BenchRecorder::Global() {
  static BenchRecorder* recorder = new BenchRecorder();
  return *recorder;
}

void BenchRecorder::Begin(const std::string& bench_name) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    bench_name_ = bench_name;
    metrics_.clear();
    run_timer_.Restart();
  }
  // Pool counters from here on cover exactly this bench run.
  util::BufferPool::Global().ResetStatCounters();
  std::printf("[bench %s] kernel: %s | threads=%d%s\n", bench_name.c_str(),
              nn::GemmKernelConfig().c_str(), util::ParallelThreads(),
              EnvFlagSet("DELREC_FAST") ? " | fast" : "");
}

bool BenchRecorder::active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !bench_name_.empty();
}

void BenchRecorder::Record(const std::string& name, double value,
                           const std::string& unit, MetricKind kind,
                           bool stable) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (bench_name_.empty()) return;
  for (BenchMetric& metric : metrics_) {
    if (metric.name == name) {
      metric = BenchMetric{name, value, unit, kind, stable};
      return;
    }
  }
  metrics_.push_back(BenchMetric{name, value, unit, kind, stable});
}

void BenchRecorder::Accumulate(const std::string& name, double value,
                               const std::string& unit, MetricKind kind,
                               bool stable) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (bench_name_.empty()) return;
  for (BenchMetric& metric : metrics_) {
    if (metric.name == name) {
      metric.value += value;
      return;
    }
  }
  metrics_.push_back(BenchMetric{name, value, unit, kind, stable});
}

util::Json BenchRecorder::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  util::Json doc = util::Json::Object();
  doc.Set("schema_version", util::Json::Number(1));
  doc.Set("bench", util::Json::Str(bench_name_));
  util::Json config = util::Json::Object();
  config.Set("threads", util::Json::Number(util::ParallelThreads()));
  config.Set("fast", util::Json::Bool(EnvFlagSet("DELREC_FAST")));
  config.Set("kernel", util::Json::Str(nn::GemmKernelConfig()));
  // The dispatched ISA tier alone ("avx512" / "avx2" / ...): Compare() uses
  // it to gate perf baselines only against like-for-like hardware.
  config.Set("isa", util::Json::Str(nn::GemmKernelIsa()));
#ifdef DELREC_NATIVE_BUILD
  config.Set("native", util::Json::Bool(true));
#else
  config.Set("native", util::Json::Bool(false));
#endif
  doc.Set("config", std::move(config));
  util::Json metrics = util::Json::Array();
  for (const BenchMetric& metric : metrics_) {
    util::Json entry = util::Json::Object();
    entry.Set("name", util::Json::Str(metric.name));
    entry.Set("value", std::isfinite(metric.value)
                           ? util::Json::Number(metric.value)
                           : util::Json::Null());
    entry.Set("unit", util::Json::Str(metric.unit));
    entry.Set("kind", util::Json::Str(KindName(metric.kind)));
    entry.Set("stable", util::Json::Bool(metric.stable));
    metrics.Append(std::move(entry));
  }
  doc.Set("metrics", std::move(metrics));
  return doc;
}

std::string BenchRecorder::OutputPath(const std::string& bench_name) {
  const char* override_path = std::getenv("DELREC_BENCH_JSON");
  if (override_path != nullptr) return override_path;
  return "BENCH_" + bench_name + ".json";
}

int BenchRecorder::Finish() {
  std::string bench_name;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    bench_name = bench_name_;
  }
  DELREC_CHECK(!bench_name.empty()) << "FinishBench() without BeginBench()";
  Record("total_s", run_timer_.ElapsedSeconds(), "s", MetricKind::kTime);
  // Pool counters are timing-dependent in general (benches with adaptive
  // repetition counts); they are recorded as unstable context here, and
  // benches that measure a fixed workload record their own stable counts.
  const util::BufferPool::Stats stats = util::BufferPool::Global().GetStats();
  Record("pool_hits", static_cast<double>(stats.pool_hits), "acquires",
         MetricKind::kCount);
  Record("pool_fresh_allocations", static_cast<double>(stats.fresh_allocations),
         "allocs", MetricKind::kCount);
  Record("pool_cached_bytes", static_cast<double>(stats.cached_bytes), "bytes",
         MetricKind::kCount);

  const util::Json doc = ToJson();
  const util::Status valid = ValidateSchema(doc);
  DELREC_CHECK(valid.ok()) << "bench emitted invalid JSON: "
                           << valid.ToString();

  const std::string path = OutputPath(bench_name);
  if (!path.empty()) {
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      DELREC_LOG(Error) << "cannot write bench JSON to " << path;
      return 1;
    }
    out << doc.Dump();
    out.close();
    if (!out) {
      DELREC_LOG(Error) << "failed writing bench JSON to " << path;
      return 1;
    }
    std::printf("[bench %s] wrote %s\n", bench_name.c_str(), path.c_str());
  }

  const char* baseline_path = std::getenv("DELREC_BENCH_BASELINE");
  if (baseline_path != nullptr && *baseline_path != '\0') {
    std::ifstream in(baseline_path);
    if (!in) {
      DELREC_LOG(Error) << "cannot read bench baseline " << baseline_path;
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    util::Json baseline;
    const util::Status parsed = util::Json::Parse(text.str(), &baseline);
    if (!parsed.ok()) {
      DELREC_LOG(Error) << "bad baseline " << baseline_path << ": "
                        << parsed.ToString();
      return 1;
    }
    const util::Status compared = Compare(
        baseline, doc, kRegressionTolerance, EnvFlagSet("DELREC_BENCH_STRICT"));
    if (!compared.ok()) {
      DELREC_LOG(Error) << "perf regression vs " << baseline_path << ":\n"
                        << compared.message();
      return 1;
    }
    std::printf("[bench %s] no regression vs %s\n", bench_name.c_str(),
                baseline_path);
  }
  return 0;
}

util::Status BenchRecorder::ValidateSchema(const util::Json& doc) {
  auto invalid = [](const std::string& what) {
    return util::Status::InvalidArgument("bench JSON schema: " + what);
  };
  if (!doc.is_object()) return invalid("document is not an object");
  const util::Json* version = doc.Find("schema_version");
  if (version == nullptr || !version->is_number() || version->number() != 1) {
    return invalid("schema_version must be the number 1");
  }
  const util::Json* bench = doc.Find("bench");
  if (bench == nullptr || !bench->is_string() || bench->str().empty()) {
    return invalid("bench must be a non-empty string");
  }
  const util::Json* config = doc.Find("config");
  if (config == nullptr || !config->is_object()) {
    return invalid("config must be an object");
  }
  for (const char* key : {"threads", "fast", "kernel", "native", "isa"}) {
    if (config->Find(key) == nullptr) {
      return invalid(std::string("config.") + key + " is missing");
    }
  }
  if (!config->Find("threads")->is_number() ||
      !config->Find("kernel")->is_string() ||
      !config->Find("isa")->is_string()) {
    return invalid(
        "config.threads must be a number, config.kernel/isa strings");
  }
  const util::Json* metrics = doc.Find("metrics");
  if (metrics == nullptr || !metrics->is_array()) {
    return invalid("metrics must be an array");
  }
  for (size_t i = 0; i < metrics->size(); ++i) {
    const util::Json& entry = metrics->at(i);
    const std::string where = "metrics[" + std::to_string(i) + "]";
    if (!entry.is_object()) return invalid(where + " is not an object");
    const util::Json* name = entry.Find("name");
    if (name == nullptr || !name->is_string() || name->str().empty()) {
      return invalid(where + ".name must be a non-empty string");
    }
    const util::Json* value = entry.Find("value");
    if (value == nullptr || (!value->is_number() && !value->is_null())) {
      return invalid(where + ".value must be a number or null");
    }
    const util::Json* unit = entry.Find("unit");
    if (unit == nullptr || !unit->is_string()) {
      return invalid(where + ".unit must be a string");
    }
    const util::Json* kind = entry.Find("kind");
    MetricKind parsed_kind;
    if (kind == nullptr || !kind->is_string() ||
        !ParseKind(kind->str(), &parsed_kind)) {
      return invalid(where +
                     ".kind must be throughput, time, count, or ratio");
    }
    const util::Json* stable = entry.Find("stable");
    if (stable == nullptr || stable->type() != util::Json::Type::kBool) {
      return invalid(where + ".stable must be a bool");
    }
  }
  return util::Status::Ok();
}

util::Status BenchRecorder::Compare(const util::Json& baseline,
                                    const util::Json& current,
                                    double tolerance, bool strict) {
  DELREC_RETURN_IF_ERROR(ValidateSchema(baseline));
  DELREC_RETURN_IF_ERROR(ValidateSchema(current));
  // Perf numbers only transfer between like-for-like runs: a baseline taken
  // on an AVX-512 box says nothing about a scalar-dispatch container, and
  // thread count scales every throughput metric. On a mismatch, skip gating
  // entirely (loudly) rather than emit false regressions.
  const util::Json* base_config = baseline.Find("config");
  const util::Json* cur_config = current.Find("config");
  const std::string base_isa = base_config->Find("isa")->str();
  const std::string cur_isa = cur_config->Find("isa")->str();
  const double base_threads = base_config->Find("threads")->number();
  const double cur_threads = cur_config->Find("threads")->number();
  if (base_isa != cur_isa || base_threads != cur_threads) {
    DELREC_LOG(Warning) << "baseline comparison skipped: baseline isa="
                        << base_isa << " threads=" << base_threads
                        << " vs current isa=" << cur_isa
                        << " threads=" << cur_threads
                        << " (not like-for-like hardware)";
    return util::Status::Ok();
  }
  const util::Json* base_metrics = baseline.Find("metrics");
  const util::Json* cur_metrics = current.Find("metrics");
  std::vector<std::string> failures;
  int gated = 0;
  for (size_t i = 0; i < base_metrics->size(); ++i) {
    const MetricView base = ViewMetric(base_metrics->at(i));
    if (!(base.stable || strict)) continue;
    const util::Json* cur_entry = nullptr;
    for (size_t j = 0; j < cur_metrics->size(); ++j) {
      if (cur_metrics->at(j).Find("name")->str() == base.name) {
        cur_entry = &cur_metrics->at(j);
        break;
      }
    }
    if (cur_entry == nullptr) {
      // A vanished stable metric means the workload silently changed; a
      // vanished timing metric under strict mode just means the bench
      // evolved, which the baseline refresh workflow handles.
      if (base.stable) {
        failures.push_back(base.name + ": stable metric missing from run");
      }
      continue;
    }
    const MetricView cur = ViewMetric(*cur_entry);
    if (!base.has_value || !cur.has_value) continue;
    ++gated;
    const bool regressed =
        HigherIsBetter(base.kind)
            ? cur.value < base.value * (1.0 - tolerance)
            : cur.value > base.value * (1.0 + tolerance);
    if (regressed) {
      std::ostringstream line;
      line << base.name << ": " << cur.value << " vs baseline " << base.value
           << " (" << (HigherIsBetter(base.kind) ? "min " : "max ")
           << (HigherIsBetter(base.kind) ? base.value * (1.0 - tolerance)
                                         : base.value * (1.0 + tolerance))
           << ")";
      failures.push_back(line.str());
    }
  }
  if (!failures.empty()) {
    std::string message = std::to_string(failures.size()) +
                          " metric(s) regressed beyond " +
                          std::to_string(static_cast<int>(tolerance * 100)) +
                          "%:";
    for (const std::string& failure : failures) message += "\n  " + failure;
    return util::Status::Internal(message);
  }
  DELREC_LOG(Info) << "baseline comparison passed (" << gated
                   << " gated metric(s), strict=" << (strict ? 1 : 0) << ")";
  return util::Status::Ok();
}

void BeginBench(const std::string& name) { BenchRecorder::Global().Begin(name); }

int FinishBench() { return BenchRecorder::Global().Finish(); }

int64_t RecordPeakRss(const std::string& name) {
  const int64_t peak = util::PeakRssBytes();
  BenchRecorder::Global().Record(name + "_bytes",
                                 static_cast<double>(peak), "bytes",
                                 MetricKind::kCount);
  return peak;
}

util::Status AssertPeakRssUnder(int64_t budget_bytes,
                                const std::string& what) {
  const int64_t peak = RecordPeakRss("peak_rss");
  BenchRecorder::Global().Record("rss_budget_bytes",
                                 static_cast<double>(budget_bytes), "bytes",
                                 MetricKind::kCount);
  BenchRecorder::Global().Record(
      "rss_within_budget", peak <= budget_bytes ? 1.0 : 0.0, "bool",
      MetricKind::kRatio, /*stable=*/true);
  if (peak > budget_bytes) {
    return util::Status::Internal(
        what + ": peak RSS " + std::to_string(peak) + " bytes exceeds the " +
        std::to_string(budget_bytes) + "-byte budget");
  }
  return util::Status::Ok();
}

ScopedPhaseTimer::ScopedPhaseTimer(std::string name)
    : name_(std::move(name)) {}

ScopedPhaseTimer::~ScopedPhaseTimer() {
  BenchRecorder::Global().Accumulate(name_ + "_s", timer_.ElapsedSeconds(),
                                     "s", MetricKind::kTime);
}

HarnessOptions OptionsFromEnv() {
  HarnessOptions options;
  // Candidate sampling stays on one serial util::Rng stream however many
  // threads score, so every bench table is bit-identical to its serial run.
  options.num_threads = util::InitParallelismFromEnv();
  const char* fast = std::getenv("DELREC_FAST");
  if (fast != nullptr && std::string(fast) != "0") {
    options.fast = true;
    options.eval_examples = 100;
    options.pretrain_epochs = 2;
    options.stage1_examples = 80;
    options.stage1_epochs = 1;
    options.stage2_examples = 150;
    options.stage2_epochs = 2;
    options.baseline_examples = 120;
    options.baseline_epochs = 1;
    options.sr_epochs = 3;
  }
  return options;
}

DatasetHarness::DatasetHarness(const data::GeneratorConfig& config,
                               const HarnessOptions& options)
    : config_(config), options_(options) {
  core::Workbench::Options workbench_options;
  workbench_options.pretrain_epochs = options.pretrain_epochs;
  workbench_ = std::make_unique<core::Workbench>(config, workbench_options);
}

srmodels::SequentialRecommender* DatasetHarness::Backbone(
    srmodels::Backbone backbone) {
  auto it = backbones_.find(backbone);
  if (it != backbones_.end()) return it->second.get();
  auto model = srmodels::MakeBackbone(backbone, num_items(),
                                      /*history_length=*/10, /*seed=*/5);
  util::WallTimer timer;
  const util::Status trained =
      model->Train(workbench_->splits().train, SrTrainConfig(backbone));
  DELREC_CHECK(trained.ok()) << trained.ToString();
  BenchRecorder::Global().Accumulate("backbone_train_s",
                                     timer.ElapsedSeconds(), "s",
                                     MetricKind::kTime);
  return backbones_.emplace(backbone, std::move(model))
      .first->second.get();
}

std::unique_ptr<llm::TinyLm> DatasetHarness::Llm(core::LlmSize size) {
  return workbench_->MakePretrainedLlm(size);
}

eval::MetricsAccumulator DatasetHarness::Evaluate(
    const eval::CandidateScorer& scorer) const {
  eval::EvalConfig config;
  config.max_examples = options_.eval_examples;
  config.num_threads = options_.num_threads;
  util::WallTimer timer;
  eval::MetricsAccumulator accumulator = eval::EvaluateCandidates(
      workbench_->splits().test, num_items(), scorer, config);
  BenchRecorder& recorder = BenchRecorder::Global();
  recorder.Accumulate("eval_s", timer.ElapsedSeconds(), "s",
                      MetricKind::kTime);
  recorder.Accumulate("eval_examples",
                      static_cast<double>(accumulator.hit_at_1_samples().size()),
                      "examples", MetricKind::kCount);
  return accumulator;
}

eval::MetricsAccumulator DatasetHarness::EvaluateRecommender(
    const srmodels::SequentialRecommender& model) const {
  return Evaluate([&](const data::Example& example,
                      const std::vector<int64_t>& candidates) {
    return model.ScoreCandidates(example.history, candidates);
  });
}

eval::MetricsAccumulator DatasetHarness::EvaluateLlmBaseline(
    const baselines::LlmRecommender& model) const {
  return Evaluate([&](const data::Example& example,
                      const std::vector<int64_t>& candidates) {
    return model.ScoreCandidates(example, candidates);
  });
}

eval::MetricsAccumulator DatasetHarness::EvaluateDelRec(
    const core::DelRec& model) const {
  return Evaluate([&](const data::Example& example,
                      const std::vector<int64_t>& candidates) {
    return model.ScoreCandidates(example, candidates);
  });
}

core::DelRecConfig DatasetHarness::DelRecDefaults() const {
  core::DelRecConfig config;
  // α = 4 for MovieLens-100K and Beauty, 6 for Steam and Home & Kitchen
  // (paper §V-A3); other datasets default to 4.
  config.icl_alpha =
      (config_.name == "Steam" || config_.name == "Home & Kitchen") ? 6 : 4;
  config.stage1_max_examples = options_.stage1_examples;
  config.stage1_epochs = options_.stage1_epochs;
  config.stage2_max_examples = options_.stage2_examples;
  config.stage2_epochs = options_.stage2_epochs;
  return config;
}

baselines::LlmRecConfig DatasetHarness::BaselineDefaults() const {
  baselines::LlmRecConfig config;
  config.max_examples = options_.baseline_examples;
  config.epochs = options_.baseline_epochs;
  return config;
}

srmodels::TrainConfig DatasetHarness::SrTrainConfig(
    srmodels::Backbone backbone) const {
  srmodels::TrainConfig config = srmodels::BackboneTrainConfig(backbone);
  config.epochs = options_.sr_epochs;
  return config;
}

DatasetHarness::TrainedDelRec DatasetHarness::TrainDelRec(
    srmodels::Backbone backbone, const core::DelRecConfig& config) {
  TrainedDelRec result;
  result.llm = Llm(core::LlmSize::kXL);
  result.model = std::make_unique<core::DelRec>(
      &workbench_->dataset().catalog, &workbench_->vocab(), result.llm.get(),
      Backbone(backbone), config);
  // Train() is exactly DistillPattern() followed by FineTune(); calling the
  // stages directly lets the recorder attribute wall-clock per stage.
  util::WallTimer timer;
  const util::Status distilled =
      result.model->DistillPattern(workbench_->splits().train);
  DELREC_CHECK(distilled.ok()) << distilled.ToString();
  BenchRecorder::Global().Accumulate("stage1_distill_s",
                                     timer.ElapsedSeconds(), "s",
                                     MetricKind::kTime);
  timer.Restart();
  const util::Status tuned = result.model->FineTune(workbench_->splits().train);
  DELREC_CHECK(tuned.ok()) << tuned.ToString();
  BenchRecorder::Global().Accumulate("stage2_finetune_s",
                                     timer.ElapsedSeconds(), "s",
                                     MetricKind::kTime);
  return result;
}

std::vector<std::string> SignificanceSuffixes(
    const eval::MetricsAccumulator& method,
    const eval::MetricsAccumulator& reference) {
  // Paired t-test over per-example HR@1 and NDCG@10 samples; the paper
  // attaches stars per column, we derive HR columns from the HR@1 pairing
  // and NDCG columns from the NDCG@10 pairing.
  const auto hr = eval::PairedTTest(method.hit_at_1_samples(),
                                    reference.hit_at_1_samples());
  const auto ndcg = eval::PairedTTest(method.ndcg_at_10_samples(),
                                      reference.ndcg_at_10_samples());
  // Stars mark significant *improvements* only (positive mean difference).
  const std::string hr_stars =
      hr.t_statistic > 0 ? eval::SignificanceStars(hr.p_value) : "";
  const std::string ndcg_stars =
      ndcg.t_statistic > 0 ? eval::SignificanceStars(ndcg.p_value) : "";
  // Column order: HR@1, HR@5, NDCG@5, HR@10, NDCG@10.
  return {hr_stars, hr_stars, ndcg_stars, hr_stars, ndcg_stars};
}

}  // namespace delrec::bench
