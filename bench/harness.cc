#include "bench/harness.h"

#include <cstdlib>

#include "eval/stats.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/threadpool.h"

namespace delrec::bench {

HarnessOptions OptionsFromEnv() {
  HarnessOptions options;
  // Candidate sampling stays on one serial util::Rng stream however many
  // threads score, so every bench table is bit-identical to its serial run.
  options.num_threads = util::InitParallelismFromEnv();
  const char* fast = std::getenv("DELREC_FAST");
  if (fast != nullptr && std::string(fast) != "0") {
    options.fast = true;
    options.eval_examples = 100;
    options.pretrain_epochs = 2;
    options.stage1_examples = 80;
    options.stage1_epochs = 1;
    options.stage2_examples = 150;
    options.stage2_epochs = 2;
    options.baseline_examples = 120;
    options.baseline_epochs = 1;
    options.sr_epochs = 3;
  }
  return options;
}

DatasetHarness::DatasetHarness(const data::GeneratorConfig& config,
                               const HarnessOptions& options)
    : config_(config), options_(options) {
  core::Workbench::Options workbench_options;
  workbench_options.pretrain_epochs = options.pretrain_epochs;
  workbench_ = std::make_unique<core::Workbench>(config, workbench_options);
}

srmodels::SequentialRecommender* DatasetHarness::Backbone(
    srmodels::Backbone backbone) {
  auto it = backbones_.find(backbone);
  if (it != backbones_.end()) return it->second.get();
  auto model = srmodels::MakeBackbone(backbone, num_items(),
                                      /*history_length=*/10, /*seed=*/5);
  const util::Status trained =
      model->Train(workbench_->splits().train, SrTrainConfig(backbone));
  DELREC_CHECK(trained.ok()) << trained.ToString();
  return backbones_.emplace(backbone, std::move(model))
      .first->second.get();
}

std::unique_ptr<llm::TinyLm> DatasetHarness::Llm(core::LlmSize size) {
  return workbench_->MakePretrainedLlm(size);
}

eval::MetricsAccumulator DatasetHarness::Evaluate(
    const eval::CandidateScorer& scorer) const {
  eval::EvalConfig config;
  config.max_examples = options_.eval_examples;
  config.num_threads = options_.num_threads;
  return eval::EvaluateCandidates(workbench_->splits().test, num_items(),
                                  scorer, config);
}

eval::MetricsAccumulator DatasetHarness::EvaluateRecommender(
    const srmodels::SequentialRecommender& model) const {
  return Evaluate([&](const data::Example& example,
                      const std::vector<int64_t>& candidates) {
    return model.ScoreCandidates(example.history, candidates);
  });
}

eval::MetricsAccumulator DatasetHarness::EvaluateLlmBaseline(
    const baselines::LlmRecommender& model) const {
  return Evaluate([&](const data::Example& example,
                      const std::vector<int64_t>& candidates) {
    return model.ScoreCandidates(example, candidates);
  });
}

eval::MetricsAccumulator DatasetHarness::EvaluateDelRec(
    const core::DelRec& model) const {
  return Evaluate([&](const data::Example& example,
                      const std::vector<int64_t>& candidates) {
    return model.ScoreCandidates(example, candidates);
  });
}

core::DelRecConfig DatasetHarness::DelRecDefaults() const {
  core::DelRecConfig config;
  // α = 4 for MovieLens-100K and Beauty, 6 for Steam and Home & Kitchen
  // (paper §V-A3); other datasets default to 4.
  config.icl_alpha =
      (config_.name == "Steam" || config_.name == "Home & Kitchen") ? 6 : 4;
  config.stage1_max_examples = options_.stage1_examples;
  config.stage1_epochs = options_.stage1_epochs;
  config.stage2_max_examples = options_.stage2_examples;
  config.stage2_epochs = options_.stage2_epochs;
  return config;
}

baselines::LlmRecConfig DatasetHarness::BaselineDefaults() const {
  baselines::LlmRecConfig config;
  config.max_examples = options_.baseline_examples;
  config.epochs = options_.baseline_epochs;
  return config;
}

srmodels::TrainConfig DatasetHarness::SrTrainConfig(
    srmodels::Backbone backbone) const {
  srmodels::TrainConfig config = srmodels::BackboneTrainConfig(backbone);
  config.epochs = options_.sr_epochs;
  return config;
}

DatasetHarness::TrainedDelRec DatasetHarness::TrainDelRec(
    srmodels::Backbone backbone, const core::DelRecConfig& config) {
  TrainedDelRec result;
  result.llm = Llm(core::LlmSize::kXL);
  result.model = std::make_unique<core::DelRec>(
      &workbench_->dataset().catalog, &workbench_->vocab(), result.llm.get(),
      Backbone(backbone), config);
  const util::Status trained = result.model->Train(workbench_->splits().train);
  DELREC_CHECK(trained.ok()) << trained.ToString();
  return result;
}

std::vector<std::string> SignificanceSuffixes(
    const eval::MetricsAccumulator& method,
    const eval::MetricsAccumulator& reference) {
  // Paired t-test over per-example HR@1 and NDCG@10 samples; the paper
  // attaches stars per column, we derive HR columns from the HR@1 pairing
  // and NDCG columns from the NDCG@10 pairing.
  const auto hr = eval::PairedTTest(method.hit_at_1_samples(),
                                    reference.hit_at_1_samples());
  const auto ndcg = eval::PairedTTest(method.ndcg_at_10_samples(),
                                      reference.ndcg_at_10_samples());
  // Stars mark significant *improvements* only (positive mean difference).
  const std::string hr_stars =
      hr.t_statistic > 0 ? eval::SignificanceStars(hr.p_value) : "";
  const std::string ndcg_stars =
      ndcg.t_statistic > 0 ? eval::SignificanceStars(ndcg.p_value) : "";
  // Column order: HR@1, HR@5, NDCG@5, HR@10, NDCG@10.
  return {hr_stars, hr_stars, ndcg_stars, hr_stars, ndcg_stars};
}

}  // namespace delrec::bench
