// Reproduces Table II: overall performance of conventional SR models, raw
// LLMs, LLM-based baselines from all three paradigms, and DELRec with three
// conventional backbones, on the four datasets. Stars mark paired-t-test
// significance of DELRec vs. its conventional backbone (* p≤.01, ** p≤.05).
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "baselines/paradigm1.h"
#include "baselines/paradigm2.h"
#include "baselines/paradigm3.h"
#include "baselines/zero_shot.h"
#include "bench/harness.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/table.h"
#include "util/timer.h"

namespace delrec::bench {
namespace {

void RunDataset(const data::GeneratorConfig& config,
                const HarnessOptions& options) {
  util::WallTimer timer;
  std::printf("\n== Table II — %s ==\n", config.name.c_str());
  DatasetHarness harness(config, options);
  util::TablePrinter table(
      {"Model", "HR@1", "HR@5", "NDCG@5", "HR@10", "NDCG@10"});

  // Conventional SR models.
  std::map<srmodels::Backbone, eval::MetricsAccumulator> sr_metrics;
  for (srmodels::Backbone backbone :
       {srmodels::Backbone::kCaser, srmodels::Backbone::kGru4Rec,
        srmodels::Backbone::kSasRec}) {
    auto acc = harness.EvaluateRecommender(*harness.Backbone(backbone));
    table.AddMetricRow(srmodels::BackboneName(backbone), acc.Result().ToRow());
    sr_metrics.emplace(backbone, std::move(acc));
  }

  // Raw open-source LLMs (zero-shot; paper rows Bert-Large / Flan-T5-*).
  const struct {
    core::LlmSize size;
    const char* label;
  } kRawLlms[] = {{core::LlmSize::kBase, "TinyLM-Base (Bert-Large role)"},
                  {core::LlmSize::kLarge, "TinyLM-Large (Flan-T5-Large role)"},
                  {core::LlmSize::kXL, "TinyLM-XL (Flan-T5-XL role)"}};
  for (const auto& raw : kRawLlms) {
    auto llm = harness.Llm(raw.size);
    baselines::ZeroShotLlm model(raw.label, llm.get(),
                                 &harness.workbench().dataset().catalog,
                                 &harness.workbench().vocab(), 10);
    table.AddMetricRow(raw.label,
                       harness.EvaluateLlmBaseline(model).Result().ToRow());
  }

  // LLM-based baselines (all three paradigms; SASRec is the conventional
  // companion where one is needed, matching the paper's best-backbone use).
  const auto& catalog = harness.workbench().dataset().catalog;
  const auto& vocab = harness.workbench().vocab();
  srmodels::SequentialRecommender* sasrec =
      harness.Backbone(srmodels::Backbone::kSasRec);
  const baselines::LlmRecConfig baseline_config = harness.BaselineDefaults();
  const auto& train = harness.workbench().splits().train;

  using Factory = std::function<std::unique_ptr<baselines::LlmRecommender>(
      llm::TinyLm*)>;
  const std::vector<std::pair<const char*, Factory>> kBaselines = {
      {"LlamaRec",
       [&](llm::TinyLm* m) {
         return std::make_unique<baselines::LlamaRec>(m, sasrec, &catalog,
                                                      &vocab, baseline_config);
       }},
      {"RecRanker",
       [&](llm::TinyLm* m) {
         return std::make_unique<baselines::RecRanker>(m, sasrec, &catalog,
                                                       &vocab,
                                                       baseline_config);
       }},
      {"LLaRA",
       [&](llm::TinyLm* m) {
         return std::make_unique<baselines::Llara>(m, sasrec, &catalog,
                                                   &vocab, baseline_config);
       }},
      {"LLMSEQPROMPT",
       [&](llm::TinyLm* m) {
         return std::make_unique<baselines::LlmSeqPrompt>(m, &catalog, &vocab,
                                                          baseline_config);
       }},
      {"LLM2BERT4Rec",
       [&](llm::TinyLm* m) {
         return std::make_unique<baselines::Llm2Bert4Rec>(m, &catalog, &vocab,
                                                          baseline_config);
       }},
      {"LLMSEQSIM",
       [&](llm::TinyLm* m) {
         return std::make_unique<baselines::LlmSeqSim>(m, &catalog, &vocab,
                                                       10);
       }},
      {"LLM-TRSR",
       [&](llm::TinyLm* m) {
         return std::make_unique<baselines::LlmTrsr>(m, &catalog, &vocab,
                                                     baseline_config);
       }},
      {"KDA_LRD",
       [&](llm::TinyLm* m) {
         return std::make_unique<baselines::KdaLrd>(m, &catalog, &vocab,
                                                    baseline_config);
       }},
  };
  for (const auto& [label, factory] : kBaselines) {
    auto llm = harness.Llm(core::LlmSize::kXL);
    auto model = factory(llm.get());
    const util::Status trained = model->Train(train);
    DELREC_CHECK(trained.ok()) << label << ": " << trained.ToString();
    table.AddMetricRow(label,
                       harness.EvaluateLlmBaseline(*model).Result().ToRow());
    DELREC_LOG(Info) << config.name << ": " << label << " done ("
                     << timer.ElapsedSeconds() << "s elapsed)";
  }

  // DELRec with three conventional backbones.
  for (srmodels::Backbone backbone :
       {srmodels::Backbone::kCaser, srmodels::Backbone::kGru4Rec,
        srmodels::Backbone::kSasRec}) {
    auto trained = harness.TrainDelRec(backbone, harness.DelRecDefaults());
    auto acc = harness.EvaluateDelRec(*trained.model);
    table.AddMetricRow(
        "DELRec (" + srmodels::BackboneName(backbone) + ")",
        acc.Result().ToRow(),
        SignificanceSuffixes(acc, sr_metrics.at(backbone)));
    DELREC_LOG(Info) << config.name << ": DELRec("
                     << srmodels::BackboneName(backbone) << ") done ("
                     << timer.ElapsedSeconds() << "s elapsed)";
  }

  table.Print();
  std::printf("[%s finished in %.1fs]\n", config.name.c_str(),
              timer.ElapsedSeconds());
}

}  // namespace
}  // namespace delrec::bench

int main() {
  using namespace delrec;
  const bench::HarnessOptions options = bench::OptionsFromEnv();
  bench::BeginBench("table2_overall");
  std::printf("== Table II: overall performance (m=15 candidates) ==\n");
  for (const data::GeneratorConfig& config :
       {data::MovieLens100KConfig(), data::SteamConfig(),
        data::BeautyConfig(), data::HomeKitchenConfig()}) {
    bench::RunDataset(config, options);
  }
  return bench::FinishBench();
}
