// Reproduces Table V (RQ4, dataset sparsity): SASRec vs KDA_LRD vs DELRec on
// Beauty (sparsest), MovieLens-100K, and KuaiRec (densest). The paper's
// shape: every model improves as sparsity falls, and DELRec stays on top.
#include <cstdio>

#include "baselines/paradigm3.h"
#include "bench/harness.h"
#include "data/dataset.h"
#include "util/check.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace delrec;
  const bench::HarnessOptions options = bench::OptionsFromEnv();
  bench::BeginBench("table5_sparsity");
  std::printf("== Table V: dataset sparsity impact ==\n");
  for (const data::GeneratorConfig& config :
       {data::BeautyConfig(), data::MovieLens100KConfig(),
        data::KuaiRecConfig()}) {
    util::WallTimer timer;
    bench::DatasetHarness harness(config, options);
    const data::DatasetStats stats =
        data::ComputeStats(harness.workbench().dataset());
    std::printf("\n== Table V — %s (sparsity %s%%) ==\n", config.name.c_str(),
                util::FormatFixed(stats.sparsity * 100.0, 2).c_str());
    util::TablePrinter table(
        {"Model", "HR@1", "HR@5", "NDCG@5", "HR@10", "NDCG@10"});

    table.AddMetricRow(
        "SASRec",
        harness.EvaluateRecommender(
                  *harness.Backbone(srmodels::Backbone::kSasRec))
            .Result()
            .ToRow());

    {
      auto llm = harness.Llm(core::LlmSize::kXL);
      baselines::KdaLrd kda_lrd(llm.get(),
                                &harness.workbench().dataset().catalog,
                                &harness.workbench().vocab(),
                                harness.BaselineDefaults());
      const util::Status trained =
          kda_lrd.Train(harness.workbench().splits().train);
      DELREC_CHECK(trained.ok()) << trained.ToString();
      table.AddMetricRow("KDA_LRD",
                         harness.EvaluateLlmBaseline(kda_lrd).Result().ToRow());
    }

    {
      auto trained = harness.TrainDelRec(srmodels::Backbone::kSasRec,
                                         harness.DelRecDefaults());
      table.AddMetricRow(
          "DELRec", harness.EvaluateDelRec(*trained.model).Result().ToRow());
    }
    table.Print();
    std::printf("[%s finished in %.1fs]\n", config.name.c_str(),
                timer.ElapsedSeconds());
  }
  return bench::FinishBench();
}
