// Reproduces Figure 7 (RQ4): HR@1 vs soft-prompt count k on the four
// datasets. Paper shape: rises with k, then plateaus (the paper plateaus at
// k≈80 on a 3B model; this scaled reproduction sweeps k = 2..48).
// Budgets are reduced relative to Table II so the sweep stays tractable.
#include <cstdio>

#include "bench/harness.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace delrec;
  bench::HarnessOptions options = bench::OptionsFromEnv();
  if (!options.fast) {
    // Sweep-sized budgets (6 points × 4 datasets).
    options.stage1_examples = 120;
    options.stage2_examples = 300;
    options.stage2_epochs = 3;
    options.eval_examples = 200;
  }
  bench::BeginBench("fig7_softprompt_size");
  const std::vector<int64_t> kSweep = {2, 4, 8, 16, 32, 48};
  std::printf("== Figure 7: HR@1 vs soft-prompt size k ==\n");
  util::TablePrinter table({"Dataset", "k=2", "k=4", "k=8", "k=16", "k=32",
                            "k=48"});
  for (const data::GeneratorConfig& config :
       {data::MovieLens100KConfig(), data::SteamConfig(),
        data::BeautyConfig(), data::HomeKitchenConfig()}) {
    util::WallTimer timer;
    bench::DatasetHarness harness(config, options);
    std::vector<double> row;
    for (int64_t k : kSweep) {
      core::DelRecConfig delrec_config = harness.DelRecDefaults();
      delrec_config.soft_prompt_count = k;
      auto trained =
          harness.TrainDelRec(srmodels::Backbone::kSasRec, delrec_config);
      row.push_back(
          harness.EvaluateDelRec(*trained.model).Result().hr_at_1);
    }
    table.AddMetricRow(config.name, row);
    std::printf("[%s swept in %.1fs]\n", config.name.c_str(),
                timer.ElapsedSeconds());
  }
  table.Print();
  return bench::FinishBench();
}
