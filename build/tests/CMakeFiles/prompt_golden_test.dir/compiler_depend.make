# Empty compiler generated dependencies file for prompt_golden_test.
# This may be replaced when dependencies are built.
