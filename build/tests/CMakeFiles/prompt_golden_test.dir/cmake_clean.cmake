file(REMOVE_RECURSE
  "CMakeFiles/prompt_golden_test.dir/prompt_golden_test.cc.o"
  "CMakeFiles/prompt_golden_test.dir/prompt_golden_test.cc.o.d"
  "prompt_golden_test"
  "prompt_golden_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prompt_golden_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
