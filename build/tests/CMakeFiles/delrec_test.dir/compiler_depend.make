# Empty compiler generated dependencies file for delrec_test.
# This may be replaced when dependencies are built.
