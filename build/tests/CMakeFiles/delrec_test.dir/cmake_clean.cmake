file(REMOVE_RECURSE
  "CMakeFiles/delrec_test.dir/delrec_test.cc.o"
  "CMakeFiles/delrec_test.dir/delrec_test.cc.o.d"
  "delrec_test"
  "delrec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delrec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
