file(REMOVE_RECURSE
  "CMakeFiles/srmodels_test.dir/srmodels_test.cc.o"
  "CMakeFiles/srmodels_test.dir/srmodels_test.cc.o.d"
  "srmodels_test"
  "srmodels_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srmodels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
