# Empty compiler generated dependencies file for srmodels_test.
# This may be replaced when dependencies are built.
