
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/llm/corpus.cc" "src/llm/CMakeFiles/delrec_llm.dir/corpus.cc.o" "gcc" "src/llm/CMakeFiles/delrec_llm.dir/corpus.cc.o.d"
  "/root/repo/src/llm/pretrain.cc" "src/llm/CMakeFiles/delrec_llm.dir/pretrain.cc.o" "gcc" "src/llm/CMakeFiles/delrec_llm.dir/pretrain.cc.o.d"
  "/root/repo/src/llm/prompt.cc" "src/llm/CMakeFiles/delrec_llm.dir/prompt.cc.o" "gcc" "src/llm/CMakeFiles/delrec_llm.dir/prompt.cc.o.d"
  "/root/repo/src/llm/tiny_lm.cc" "src/llm/CMakeFiles/delrec_llm.dir/tiny_lm.cc.o" "gcc" "src/llm/CMakeFiles/delrec_llm.dir/tiny_lm.cc.o.d"
  "/root/repo/src/llm/verbalizer.cc" "src/llm/CMakeFiles/delrec_llm.dir/verbalizer.cc.o" "gcc" "src/llm/CMakeFiles/delrec_llm.dir/verbalizer.cc.o.d"
  "/root/repo/src/llm/vocab.cc" "src/llm/CMakeFiles/delrec_llm.dir/vocab.cc.o" "gcc" "src/llm/CMakeFiles/delrec_llm.dir/vocab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/delrec_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/delrec_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/delrec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
