# Empty compiler generated dependencies file for delrec_llm.
# This may be replaced when dependencies are built.
