file(REMOVE_RECURSE
  "libdelrec_llm.a"
)
