file(REMOVE_RECURSE
  "CMakeFiles/delrec_llm.dir/corpus.cc.o"
  "CMakeFiles/delrec_llm.dir/corpus.cc.o.d"
  "CMakeFiles/delrec_llm.dir/pretrain.cc.o"
  "CMakeFiles/delrec_llm.dir/pretrain.cc.o.d"
  "CMakeFiles/delrec_llm.dir/prompt.cc.o"
  "CMakeFiles/delrec_llm.dir/prompt.cc.o.d"
  "CMakeFiles/delrec_llm.dir/tiny_lm.cc.o"
  "CMakeFiles/delrec_llm.dir/tiny_lm.cc.o.d"
  "CMakeFiles/delrec_llm.dir/verbalizer.cc.o"
  "CMakeFiles/delrec_llm.dir/verbalizer.cc.o.d"
  "CMakeFiles/delrec_llm.dir/vocab.cc.o"
  "CMakeFiles/delrec_llm.dir/vocab.cc.o.d"
  "libdelrec_llm.a"
  "libdelrec_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delrec_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
