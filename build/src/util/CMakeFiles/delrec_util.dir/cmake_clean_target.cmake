file(REMOVE_RECURSE
  "libdelrec_util.a"
)
