# Empty compiler generated dependencies file for delrec_util.
# This may be replaced when dependencies are built.
