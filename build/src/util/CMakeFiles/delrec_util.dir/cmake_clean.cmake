file(REMOVE_RECURSE
  "CMakeFiles/delrec_util.dir/logging.cc.o"
  "CMakeFiles/delrec_util.dir/logging.cc.o.d"
  "CMakeFiles/delrec_util.dir/memory.cc.o"
  "CMakeFiles/delrec_util.dir/memory.cc.o.d"
  "CMakeFiles/delrec_util.dir/rng.cc.o"
  "CMakeFiles/delrec_util.dir/rng.cc.o.d"
  "CMakeFiles/delrec_util.dir/serialize.cc.o"
  "CMakeFiles/delrec_util.dir/serialize.cc.o.d"
  "CMakeFiles/delrec_util.dir/string_util.cc.o"
  "CMakeFiles/delrec_util.dir/string_util.cc.o.d"
  "CMakeFiles/delrec_util.dir/table.cc.o"
  "CMakeFiles/delrec_util.dir/table.cc.o.d"
  "libdelrec_util.a"
  "libdelrec_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delrec_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
