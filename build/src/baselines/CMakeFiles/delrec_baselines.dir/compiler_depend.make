# Empty compiler generated dependencies file for delrec_baselines.
# This may be replaced when dependencies are built.
