file(REMOVE_RECURSE
  "CMakeFiles/delrec_baselines.dir/common.cc.o"
  "CMakeFiles/delrec_baselines.dir/common.cc.o.d"
  "CMakeFiles/delrec_baselines.dir/paradigm1.cc.o"
  "CMakeFiles/delrec_baselines.dir/paradigm1.cc.o.d"
  "CMakeFiles/delrec_baselines.dir/paradigm2.cc.o"
  "CMakeFiles/delrec_baselines.dir/paradigm2.cc.o.d"
  "CMakeFiles/delrec_baselines.dir/paradigm3.cc.o"
  "CMakeFiles/delrec_baselines.dir/paradigm3.cc.o.d"
  "CMakeFiles/delrec_baselines.dir/zero_shot.cc.o"
  "CMakeFiles/delrec_baselines.dir/zero_shot.cc.o.d"
  "libdelrec_baselines.a"
  "libdelrec_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delrec_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
