file(REMOVE_RECURSE
  "libdelrec_baselines.a"
)
