# Empty dependencies file for delrec_data.
# This may be replaced when dependencies are built.
