file(REMOVE_RECURSE
  "libdelrec_data.a"
)
