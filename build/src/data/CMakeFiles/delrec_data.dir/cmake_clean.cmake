file(REMOVE_RECURSE
  "CMakeFiles/delrec_data.dir/dataset.cc.o"
  "CMakeFiles/delrec_data.dir/dataset.cc.o.d"
  "CMakeFiles/delrec_data.dir/split.cc.o"
  "CMakeFiles/delrec_data.dir/split.cc.o.d"
  "libdelrec_data.a"
  "libdelrec_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delrec_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
