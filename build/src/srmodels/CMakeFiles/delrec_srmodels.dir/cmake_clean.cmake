file(REMOVE_RECURSE
  "CMakeFiles/delrec_srmodels.dir/bert4rec.cc.o"
  "CMakeFiles/delrec_srmodels.dir/bert4rec.cc.o.d"
  "CMakeFiles/delrec_srmodels.dir/caser.cc.o"
  "CMakeFiles/delrec_srmodels.dir/caser.cc.o.d"
  "CMakeFiles/delrec_srmodels.dir/factory.cc.o"
  "CMakeFiles/delrec_srmodels.dir/factory.cc.o.d"
  "CMakeFiles/delrec_srmodels.dir/gru4rec.cc.o"
  "CMakeFiles/delrec_srmodels.dir/gru4rec.cc.o.d"
  "CMakeFiles/delrec_srmodels.dir/kda.cc.o"
  "CMakeFiles/delrec_srmodels.dir/kda.cc.o.d"
  "CMakeFiles/delrec_srmodels.dir/recommender.cc.o"
  "CMakeFiles/delrec_srmodels.dir/recommender.cc.o.d"
  "CMakeFiles/delrec_srmodels.dir/sasrec.cc.o"
  "CMakeFiles/delrec_srmodels.dir/sasrec.cc.o.d"
  "CMakeFiles/delrec_srmodels.dir/simple.cc.o"
  "CMakeFiles/delrec_srmodels.dir/simple.cc.o.d"
  "CMakeFiles/delrec_srmodels.dir/trainer.cc.o"
  "CMakeFiles/delrec_srmodels.dir/trainer.cc.o.d"
  "libdelrec_srmodels.a"
  "libdelrec_srmodels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delrec_srmodels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
