
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/srmodels/bert4rec.cc" "src/srmodels/CMakeFiles/delrec_srmodels.dir/bert4rec.cc.o" "gcc" "src/srmodels/CMakeFiles/delrec_srmodels.dir/bert4rec.cc.o.d"
  "/root/repo/src/srmodels/caser.cc" "src/srmodels/CMakeFiles/delrec_srmodels.dir/caser.cc.o" "gcc" "src/srmodels/CMakeFiles/delrec_srmodels.dir/caser.cc.o.d"
  "/root/repo/src/srmodels/factory.cc" "src/srmodels/CMakeFiles/delrec_srmodels.dir/factory.cc.o" "gcc" "src/srmodels/CMakeFiles/delrec_srmodels.dir/factory.cc.o.d"
  "/root/repo/src/srmodels/gru4rec.cc" "src/srmodels/CMakeFiles/delrec_srmodels.dir/gru4rec.cc.o" "gcc" "src/srmodels/CMakeFiles/delrec_srmodels.dir/gru4rec.cc.o.d"
  "/root/repo/src/srmodels/kda.cc" "src/srmodels/CMakeFiles/delrec_srmodels.dir/kda.cc.o" "gcc" "src/srmodels/CMakeFiles/delrec_srmodels.dir/kda.cc.o.d"
  "/root/repo/src/srmodels/recommender.cc" "src/srmodels/CMakeFiles/delrec_srmodels.dir/recommender.cc.o" "gcc" "src/srmodels/CMakeFiles/delrec_srmodels.dir/recommender.cc.o.d"
  "/root/repo/src/srmodels/sasrec.cc" "src/srmodels/CMakeFiles/delrec_srmodels.dir/sasrec.cc.o" "gcc" "src/srmodels/CMakeFiles/delrec_srmodels.dir/sasrec.cc.o.d"
  "/root/repo/src/srmodels/simple.cc" "src/srmodels/CMakeFiles/delrec_srmodels.dir/simple.cc.o" "gcc" "src/srmodels/CMakeFiles/delrec_srmodels.dir/simple.cc.o.d"
  "/root/repo/src/srmodels/trainer.cc" "src/srmodels/CMakeFiles/delrec_srmodels.dir/trainer.cc.o" "gcc" "src/srmodels/CMakeFiles/delrec_srmodels.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/delrec_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/delrec_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/delrec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
