file(REMOVE_RECURSE
  "libdelrec_srmodels.a"
)
