# Empty dependencies file for delrec_srmodels.
# This may be replaced when dependencies are built.
