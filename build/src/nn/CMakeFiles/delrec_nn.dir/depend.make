# Empty dependencies file for delrec_nn.
# This may be replaced when dependencies are built.
