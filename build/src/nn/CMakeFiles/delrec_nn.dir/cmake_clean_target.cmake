file(REMOVE_RECURSE
  "libdelrec_nn.a"
)
