file(REMOVE_RECURSE
  "CMakeFiles/delrec_nn.dir/layers.cc.o"
  "CMakeFiles/delrec_nn.dir/layers.cc.o.d"
  "CMakeFiles/delrec_nn.dir/lora.cc.o"
  "CMakeFiles/delrec_nn.dir/lora.cc.o.d"
  "CMakeFiles/delrec_nn.dir/module.cc.o"
  "CMakeFiles/delrec_nn.dir/module.cc.o.d"
  "CMakeFiles/delrec_nn.dir/ops.cc.o"
  "CMakeFiles/delrec_nn.dir/ops.cc.o.d"
  "CMakeFiles/delrec_nn.dir/optimizer.cc.o"
  "CMakeFiles/delrec_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/delrec_nn.dir/serialize.cc.o"
  "CMakeFiles/delrec_nn.dir/serialize.cc.o.d"
  "CMakeFiles/delrec_nn.dir/tensor.cc.o"
  "CMakeFiles/delrec_nn.dir/tensor.cc.o.d"
  "libdelrec_nn.a"
  "libdelrec_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delrec_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
