file(REMOVE_RECURSE
  "CMakeFiles/delrec_eval.dir/metrics.cc.o"
  "CMakeFiles/delrec_eval.dir/metrics.cc.o.d"
  "CMakeFiles/delrec_eval.dir/protocol.cc.o"
  "CMakeFiles/delrec_eval.dir/protocol.cc.o.d"
  "CMakeFiles/delrec_eval.dir/stats.cc.o"
  "CMakeFiles/delrec_eval.dir/stats.cc.o.d"
  "libdelrec_eval.a"
  "libdelrec_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delrec_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
