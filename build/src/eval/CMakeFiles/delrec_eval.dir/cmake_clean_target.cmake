file(REMOVE_RECURSE
  "libdelrec_eval.a"
)
