# Empty compiler generated dependencies file for delrec_eval.
# This may be replaced when dependencies are built.
