file(REMOVE_RECURSE
  "libdelrec_core.a"
)
