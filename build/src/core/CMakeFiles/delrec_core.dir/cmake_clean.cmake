file(REMOVE_RECURSE
  "CMakeFiles/delrec_core.dir/checkpoint.cc.o"
  "CMakeFiles/delrec_core.dir/checkpoint.cc.o.d"
  "CMakeFiles/delrec_core.dir/delrec.cc.o"
  "CMakeFiles/delrec_core.dir/delrec.cc.o.d"
  "CMakeFiles/delrec_core.dir/workbench.cc.o"
  "CMakeFiles/delrec_core.dir/workbench.cc.o.d"
  "libdelrec_core.a"
  "libdelrec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delrec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
