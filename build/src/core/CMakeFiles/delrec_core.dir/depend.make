# Empty dependencies file for delrec_core.
# This may be replaced when dependencies are built.
