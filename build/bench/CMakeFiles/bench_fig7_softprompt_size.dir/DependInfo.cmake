
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_softprompt_size.cc" "bench/CMakeFiles/bench_fig7_softprompt_size.dir/bench_fig7_softprompt_size.cc.o" "gcc" "bench/CMakeFiles/bench_fig7_softprompt_size.dir/bench_fig7_softprompt_size.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/delrec_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/delrec_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/delrec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/delrec_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/srmodels/CMakeFiles/delrec_srmodels.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/delrec_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/delrec_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/delrec_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/delrec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
