file(REMOVE_RECURSE
  "libdelrec_bench_harness.a"
)
