file(REMOVE_RECURSE
  "CMakeFiles/delrec_bench_harness.dir/harness.cc.o"
  "CMakeFiles/delrec_bench_harness.dir/harness.cc.o.d"
  "libdelrec_bench_harness.a"
  "libdelrec_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delrec_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
