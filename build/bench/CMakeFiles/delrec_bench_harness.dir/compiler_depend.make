# Empty compiler generated dependencies file for delrec_bench_harness.
# This may be replaced when dependencies are built.
