# Empty compiler generated dependencies file for bench_fig8_rec_items.
# This may be replaced when dependencies are built.
