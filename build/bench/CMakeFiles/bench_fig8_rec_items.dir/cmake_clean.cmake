file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_rec_items.dir/bench_fig8_rec_items.cc.o"
  "CMakeFiles/bench_fig8_rec_items.dir/bench_fig8_rec_items.cc.o.d"
  "bench_fig8_rec_items"
  "bench_fig8_rec_items.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_rec_items.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
