# Empty dependencies file for bench_table3_ablation1.
# This may be replaced when dependencies are built.
