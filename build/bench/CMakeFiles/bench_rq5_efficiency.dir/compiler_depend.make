# Empty compiler generated dependencies file for bench_rq5_efficiency.
# This may be replaced when dependencies are built.
