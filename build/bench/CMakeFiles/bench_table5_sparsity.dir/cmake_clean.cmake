file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_sparsity.dir/bench_table5_sparsity.cc.o"
  "CMakeFiles/bench_table5_sparsity.dir/bench_table5_sparsity.cc.o.d"
  "bench_table5_sparsity"
  "bench_table5_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
