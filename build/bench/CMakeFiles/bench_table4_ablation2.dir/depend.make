# Empty dependencies file for bench_table4_ablation2.
# This may be replaced when dependencies are built.
