file(REMOVE_RECURSE
  "CMakeFiles/custom_catalog.dir/custom_catalog.cpp.o"
  "CMakeFiles/custom_catalog.dir/custom_catalog.cpp.o.d"
  "custom_catalog"
  "custom_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
