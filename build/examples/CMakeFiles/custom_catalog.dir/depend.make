# Empty dependencies file for custom_catalog.
# This may be replaced when dependencies are built.
