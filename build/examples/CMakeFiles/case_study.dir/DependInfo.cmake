
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/case_study.cpp" "examples/CMakeFiles/case_study.dir/case_study.cpp.o" "gcc" "examples/CMakeFiles/case_study.dir/case_study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/delrec_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/delrec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/delrec_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/srmodels/CMakeFiles/delrec_srmodels.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/delrec_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/delrec_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/delrec_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/delrec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
