// Central finite-difference gradient checks for every differentiable op.
// Each check perturbs inputs elementwise and compares the numerical gradient
// of a scalar objective with the autodiff gradient.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/ops.h"
#include "nn/tensor.h"
#include "util/rng.h"
#include "util/threadpool.h"

namespace delrec::nn {
namespace {

// Computes autodiff and numerical gradients of `objective` w.r.t. `inputs`
// and EXPECTs agreement. `objective` must rebuild the graph from current
// input values on every call.
void CheckGradients(std::vector<Tensor> inputs,
                    const std::function<Tensor()>& objective,
                    float tolerance = 2e-2f) {
  for (Tensor& t : inputs) {
    t.set_requires_grad(true);
    t.ZeroGrad();
  }
  Tensor loss = objective();
  loss.Backward();
  std::vector<std::vector<float>> autodiff;
  for (Tensor& t : inputs) autodiff.push_back(t.grad());

  const float epsilon = 1e-3f;
  for (size_t k = 0; k < inputs.size(); ++k) {
    Tensor& t = inputs[k];
    for (int64_t i = 0; i < t.size(); ++i) {
      const float saved = t.data()[i];
      t.data()[i] = saved + epsilon;
      const float up = objective().item();
      t.data()[i] = saved - epsilon;
      const float down = objective().item();
      t.data()[i] = saved;
      const float numeric = (up - down) / (2.0f * epsilon);
      const float analytic = autodiff[k][i];
      const float scale = std::max({1.0f, std::fabs(numeric),
                                    std::fabs(analytic)});
      EXPECT_NEAR(analytic / scale, numeric / scale, tolerance)
          << "input " << k << " element " << i;
    }
  }
}

class GradcheckTest : public ::testing::Test {
 protected:
  util::Rng rng_{1234};
};

TEST_F(GradcheckTest, AddMulSub) {
  Tensor a = Tensor::Randn({3, 2}, rng_, 1.0f);
  Tensor b = Tensor::Randn({3, 2}, rng_, 1.0f);
  CheckGradients({a, b}, [&] { return Sum(Mul(Add(a, b), Sub(a, b))); });
}

TEST_F(GradcheckTest, ScalarOps) {
  Tensor a = Tensor::Randn({4}, rng_, 1.0f);
  CheckGradients({a}, [&] { return Mean(AddScalar(MulScalar(a, -2.5f), 3.0f)); });
}

TEST_F(GradcheckTest, MatMulNN) {
  Tensor a = Tensor::Randn({3, 4}, rng_, 1.0f);
  Tensor b = Tensor::Randn({4, 2}, rng_, 1.0f);
  CheckGradients({a, b}, [&] { return Sum(MatMul(a, b)); });
}

TEST_F(GradcheckTest, MatMulNT) {
  Tensor a = Tensor::Randn({3, 4}, rng_, 1.0f);
  Tensor b = Tensor::Randn({2, 4}, rng_, 1.0f);
  CheckGradients({a, b}, [&] {
    return Sum(Mul(MatMul(a, b, false, true), MatMul(a, b, false, true)));
  });
}

TEST_F(GradcheckTest, MatMulTN) {
  Tensor a = Tensor::Randn({4, 3}, rng_, 1.0f);
  Tensor b = Tensor::Randn({4, 2}, rng_, 1.0f);
  CheckGradients({a, b}, [&] {
    Tensor c = MatMul(a, b, true, false);
    return Sum(Mul(c, c));
  });
}

TEST_F(GradcheckTest, AddBias) {
  Tensor x = Tensor::Randn({3, 4}, rng_, 1.0f);
  Tensor b = Tensor::Randn({4}, rng_, 1.0f);
  CheckGradients({x, b}, [&] {
    Tensor y = AddBias(x, b);
    return Sum(Mul(y, y));
  });
}

TEST_F(GradcheckTest, RowsGather) {
  Tensor table = Tensor::Randn({5, 3}, rng_, 1.0f);
  CheckGradients({table}, [&] {
    Tensor y = Rows(table, {4, 0, 4, 2});
    return Sum(Mul(y, y));
  });
}

TEST_F(GradcheckTest, SliceAndConcat) {
  Tensor x = Tensor::Randn({4, 4}, rng_, 1.0f);
  CheckGradients({x}, [&] {
    Tensor top = SliceRows(x, 0, 2);
    Tensor left = SliceCols(x, 0, 2);
    Tensor joined = ConcatRows({top, Transpose(left)});
    return Sum(Mul(joined, joined));
  });
}

TEST_F(GradcheckTest, ConcatCols) {
  Tensor a = Tensor::Randn({3, 2}, rng_, 1.0f);
  Tensor b = Tensor::Randn({3, 3}, rng_, 1.0f);
  CheckGradients({a, b}, [&] {
    Tensor j = ConcatCols({a, b});
    return Sum(Mul(j, j));
  });
}

TEST_F(GradcheckTest, ReshapeTranspose) {
  Tensor x = Tensor::Randn({2, 6}, rng_, 1.0f);
  CheckGradients({x}, [&] {
    Tensor y = Transpose(Reshape(x, {3, 4}));
    return Sum(Mul(y, y));
  });
}

TEST_F(GradcheckTest, Activations) {
  Tensor x = Tensor::Randn({2, 5}, rng_, 1.0f);
  CheckGradients({x}, [&] { return Sum(Relu(AddScalar(x, 0.1f))); });
  CheckGradients({x}, [&] { return Sum(Gelu(x)); });
  CheckGradients({x}, [&] { return Sum(Sigmoid(x)); });
  CheckGradients({x}, [&] { return Sum(Tanh(x)); });
}

TEST_F(GradcheckTest, SoftmaxAndLogSoftmax) {
  Tensor x = Tensor::Randn({3, 4}, rng_, 1.0f);
  Tensor weight = Tensor::Randn({3, 4}, rng_, 1.0f);
  weight.set_requires_grad(false);
  CheckGradients({x}, [&] { return Sum(Mul(Softmax(x), weight)); });
  CheckGradients({x}, [&] { return Sum(Mul(LogSoftmax(x), weight)); });
}

TEST_F(GradcheckTest, CrossEntropy) {
  Tensor logits = Tensor::Randn({4, 5}, rng_, 1.0f);
  CheckGradients({logits}, [&] {
    return CrossEntropyWithLogits(logits, {1, 4, -1, 0});
  });
}

TEST_F(GradcheckTest, LayerNorm) {
  Tensor x = Tensor::Randn({3, 6}, rng_, 1.0f);
  Tensor gamma = Tensor::Randn({6}, rng_, 0.3f);
  Tensor beta = Tensor::Randn({6}, rng_, 0.3f);
  Tensor weight = Tensor::Randn({3, 6}, rng_, 1.0f);
  CheckGradients({x, gamma, beta}, [&] {
    return Sum(Mul(LayerNormOp(x, gamma, beta), weight));
  });
}

TEST_F(GradcheckTest, ScaleCols) {
  Tensor x = Tensor::Randn({3, 4}, rng_, 1.0f);
  Tensor s = Tensor::Randn({4}, rng_, 1.0f);
  CheckGradients({x, s}, [&] {
    Tensor y = ScaleCols(x, s);
    return Sum(Mul(y, y));
  });
}

TEST_F(GradcheckTest, MeanRowsMaxPool) {
  Tensor x = Tensor::Randn({4, 3}, rng_, 1.0f);
  Tensor w = Tensor::Randn({1, 3}, rng_, 1.0f);
  CheckGradients({x}, [&] { return Sum(Mul(MeanRows(x), w)); });
  CheckGradients({x}, [&] { return Sum(Mul(MaxPoolRows(x), w)); });
}

TEST_F(GradcheckTest, HorizontalConv) {
  Tensor emb = Tensor::Randn({5, 3}, rng_, 1.0f);
  Tensor filters = Tensor::Randn({2, 6}, rng_, 1.0f);
  Tensor bias = Tensor::Randn({2}, rng_, 1.0f);
  CheckGradients({emb, filters, bias}, [&] {
    Tensor y = HorizontalConv(emb, filters, bias, 2);
    return Sum(Mul(y, y));
  });
}

TEST_F(GradcheckTest, AddN) {
  Tensor a = Tensor::Randn({3}, rng_, 1.0f);
  Tensor b = Tensor::Randn({3}, rng_, 1.0f);
  CheckGradients({a, b}, [&] { return Sum(Mul(AddN({a, b, a}), b)); });
}

// The same finite-difference checks against the row-partitioned GEMM paths:
// threads=4 with the dispatch floor dropped so every MatMul (forward and
// the backward GEMMs) takes the parallel kernels rather than the serial
// shortcut.
class GradcheckParallelTest : public GradcheckTest {
 protected:
  util::ScopedParallelism parallel_{4, /*min_work_per_dispatch=*/1};
};

TEST_F(GradcheckParallelTest, MatMulNN) {
  Tensor a = Tensor::Randn({3, 4}, rng_, 1.0f);
  Tensor b = Tensor::Randn({4, 2}, rng_, 1.0f);
  CheckGradients({a, b}, [&] { return Sum(MatMul(a, b)); });
}

TEST_F(GradcheckParallelTest, MatMulNT) {
  Tensor a = Tensor::Randn({3, 4}, rng_, 1.0f);
  Tensor b = Tensor::Randn({2, 4}, rng_, 1.0f);
  CheckGradients({a, b}, [&] {
    return Sum(Mul(MatMul(a, b, false, true), MatMul(a, b, false, true)));
  });
}

TEST_F(GradcheckParallelTest, MatMulTN) {
  Tensor a = Tensor::Randn({4, 3}, rng_, 1.0f);
  Tensor b = Tensor::Randn({4, 2}, rng_, 1.0f);
  CheckGradients({a, b}, [&] {
    Tensor c = MatMul(a, b, true, false);
    return Sum(Mul(c, c));
  });
}

TEST_F(GradcheckParallelTest, CompositeTransformerSlice) {
  Tensor x = Tensor::Randn({4, 6}, rng_, 0.7f);
  Tensor wq = Tensor::Randn({6, 6}, rng_, 0.4f);
  Tensor wk = Tensor::Randn({6, 6}, rng_, 0.4f);
  Tensor wv = Tensor::Randn({6, 6}, rng_, 0.4f);
  CheckGradients({x, wq, wk, wv}, [&] {
    Tensor q = SliceCols(MatMul(x, wq), 0, 3);
    Tensor k = SliceCols(MatMul(x, wk), 0, 3);
    Tensor v = SliceCols(MatMul(x, wv), 0, 3);
    Tensor att = Softmax(MulScalar(MatMul(q, k, false, true), 0.57f));
    return Sum(Mul(MatMul(att, v), MatMul(att, v)));
  });
}

TEST_F(GradcheckTest, CompositeTransformerSlice) {
  // Mimics one attention head computation end-to-end.
  Tensor x = Tensor::Randn({4, 6}, rng_, 0.7f);
  Tensor wq = Tensor::Randn({6, 6}, rng_, 0.4f);
  Tensor wk = Tensor::Randn({6, 6}, rng_, 0.4f);
  Tensor wv = Tensor::Randn({6, 6}, rng_, 0.4f);
  CheckGradients({x, wq, wk, wv}, [&] {
    Tensor q = SliceCols(MatMul(x, wq), 0, 3);
    Tensor k = SliceCols(MatMul(x, wk), 0, 3);
    Tensor v = SliceCols(MatMul(x, wv), 0, 3);
    Tensor att = Softmax(MulScalar(MatMul(q, k, false, true), 0.57f));
    return Sum(Mul(MatMul(att, v), MatMul(att, v)));
  });
}

}  // namespace
}  // namespace delrec::nn
