#include "nn/tensor.h"

#include <gtest/gtest.h>

#include "nn/ops.h"
#include "util/rng.h"

namespace delrec::nn {
namespace {

TEST(TensorTest, FactoriesAndShape) {
  Tensor z = Tensor::Zeros({2, 3});
  EXPECT_EQ(z.size(), 6);
  EXPECT_EQ(z.ndim(), 2);
  EXPECT_EQ(z.dim(0), 2);
  EXPECT_EQ(z.dim(-1), 3);
  for (float v : z.data()) EXPECT_EQ(v, 0.0f);

  Tensor f = Tensor::Full({4}, 2.5f);
  for (float v : f.data()) EXPECT_EQ(v, 2.5f);

  Tensor d = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(d.at({1, 0}), 3.0f);
  EXPECT_EQ(d.at({1, 1}), 4.0f);
}

TEST(TensorTest, RandnStatistics) {
  util::Rng rng(1);
  Tensor t = Tensor::Randn({100, 100}, rng, 0.5f);
  double sum = 0, sq = 0;
  for (float v : t.data()) {
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / t.size(), 0.0, 0.02);
  EXPECT_NEAR(sq / t.size(), 0.25, 0.02);
}

TEST(TensorTest, UndefinedHandle) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  Tensor z = Tensor::Zeros({1});
  EXPECT_TRUE(z.defined());
}

TEST(TensorTest, BackwardThroughChain) {
  // y = mean(3·x + 1); dy/dx = 3/n.
  Tensor x = Tensor::FromData({2, 2}, {1, 2, 3, 4}, /*requires_grad=*/true);
  Tensor y = Mean(AddScalar(MulScalar(x, 3.0f), 1.0f));
  EXPECT_FLOAT_EQ(y.item(), (4 + 7 + 10 + 13) / 4.0f);
  y.Backward();
  for (float g : x.grad()) EXPECT_FLOAT_EQ(g, 0.75f);
}

TEST(TensorTest, BackwardAccumulatesAcrossCalls) {
  Tensor x = Tensor::FromData({2}, {1, 1}, /*requires_grad=*/true);
  Sum(x).Backward();
  Sum(x).Backward();
  for (float g : x.grad()) EXPECT_FLOAT_EQ(g, 2.0f);
  x.ZeroGrad();
  for (float g : x.grad()) EXPECT_FLOAT_EQ(g, 0.0f);
}

TEST(TensorTest, DiamondGraphGradient) {
  // y = sum(x⊙x + x) — x reachable twice; grad = 2x + 1.
  Tensor x = Tensor::FromData({3}, {1, 2, 3}, /*requires_grad=*/true);
  Tensor y = Sum(Add(Mul(x, x), x));
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 3.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 5.0f);
  EXPECT_FLOAT_EQ(x.grad()[2], 7.0f);
}

TEST(TensorTest, NoTapeWithoutRequiresGrad) {
  Tensor x = Tensor::FromData({2}, {1, 2});
  Tensor y = MulScalar(x, 2.0f);
  EXPECT_FALSE(y.requires_grad());
  EXPECT_TRUE(y.impl()->parents.empty());
}

TEST(TensorTest, DetachCopyIsIndependent) {
  Tensor x = Tensor::FromData({2}, {1, 2}, /*requires_grad=*/true);
  Tensor d = x.DetachCopy();
  EXPECT_FALSE(d.requires_grad());
  d.data()[0] = 99.0f;
  EXPECT_FLOAT_EQ(x.data()[0], 1.0f);
}

TEST(TensorTest, BackwardReleasesInteriorTape) {
  Tensor x = Tensor::FromData({2}, {1, 2}, /*requires_grad=*/true);
  Tensor mid = MulScalar(x, 2.0f);
  Tensor loss = Sum(mid);
  loss.Backward();
  EXPECT_TRUE(loss.impl()->parents.empty());
  EXPECT_TRUE(mid.impl()->parents.empty());
}

TEST(TensorTest, ShapeString) {
  EXPECT_EQ(Tensor::Zeros({2, 5}).ShapeString(), "[2, 5]");
}

}  // namespace
}  // namespace delrec::nn
