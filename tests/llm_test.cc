#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/dataset.h"
#include "llm/corpus.h"
#include "llm/pretrain.h"
#include "llm/prompt.h"
#include "llm/tiny_lm.h"
#include "llm/verbalizer.h"
#include "llm/vocab.h"
#include "nn/ops.h"
#include "util/rng.h"

namespace delrec::llm {
namespace {

class LlmTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::GeneratorConfig config = data::KuaiRecConfig();
    config.num_users = 40;
    config.num_items = 60;
    dataset_ = new data::Dataset(data::GenerateDataset(config));
    vocab_ = new Vocab(Vocab::BuildFromCatalog(dataset_->catalog));
  }
  static void TearDownTestSuite() {
    delete vocab_;
    delete dataset_;
    vocab_ = nullptr;
    dataset_ = nullptr;
  }
  static data::Dataset* dataset_;
  static Vocab* vocab_;
};

data::Dataset* LlmTest::dataset_ = nullptr;
Vocab* LlmTest::vocab_ = nullptr;

TEST_F(LlmTest, VocabSpecialsAndWords) {
  EXPECT_EQ(vocab_->Lookup("[MASK]"), Vocab::kMask);
  EXPECT_EQ(vocab_->Lookup("zzz-not-a-word"), Vocab::kUnk);
  // Every title word must be known.
  for (const data::Item& item : dataset_->catalog.items) {
    for (int64_t id : vocab_->Encode(item.title)) {
      EXPECT_NE(id, Vocab::kUnk) << item.title;
    }
  }
  // Instruction words registered.
  EXPECT_NE(vocab_->Lookup("watched"), Vocab::kUnk);
  EXPECT_NE(vocab_->Lookup("sasrec"), Vocab::kUnk);
  // Round trip.
  const int64_t id = vocab_->Lookup("watched");
  EXPECT_EQ(vocab_->WordOf(id), "watched");
}

TEST_F(LlmTest, VocabAddIdempotent) {
  Vocab vocab;
  const int64_t a = vocab.AddWord("Hello");
  const int64_t b = vocab.AddWord("hello");
  EXPECT_EQ(a, b);
  EXPECT_EQ(vocab.size(), Vocab::kNumSpecials + 1);
}

TEST_F(LlmTest, CorpusSentencesWellFormed) {
  util::Rng rng(3);
  auto corpus = BuildWorldKnowledgeCorpus(dataset_->catalog, *vocab_, 2, rng);
  EXPECT_EQ(corpus.size(), dataset_->catalog.items.size() * 3);  // +1 sequel fact/item.
  for (const auto& sentence : corpus) {
    ASSERT_GE(sentence.size(), 4u);
    EXPECT_EQ(sentence.front(), Vocab::kCls);
    EXPECT_EQ(sentence.back(), Vocab::kSep);
    for (int64_t token : sentence) EXPECT_NE(token, Vocab::kUnk);
  }
}

TEST_F(LlmTest, TinyLmPresetsOrderedBySize) {
  const auto base = TinyLmConfig::Base(vocab_->size());
  const auto large = TinyLmConfig::Large(vocab_->size());
  const auto xl = TinyLmConfig::XL(vocab_->size());
  TinyLm base_model(base, 1), large_model(large, 1), xl_model(xl, 1);
  EXPECT_LT(base_model.ParameterCount(), large_model.ParameterCount());
  EXPECT_LT(large_model.ParameterCount(), xl_model.ParameterCount());
}

TEST_F(LlmTest, EncodeShapesAndMixedPieces) {
  TinyLm model(TinyLmConfig::Large(vocab_->size()), 5);
  model.SetTraining(false);
  util::Rng rng(1);
  nn::Tensor soft = nn::Tensor::Randn({4, model.model_dim()}, rng, 0.02f);
  std::vector<PromptPiece> pieces = {
      PromptPiece::Tokens({Vocab::kCls, 7, 8, 9}),
      PromptPiece::Embeddings(soft),
      PromptPiece::Tokens({Vocab::kMask, Vocab::kSep}),
  };
  nn::Tensor hidden = model.Encode(pieces, 0.0f, rng);
  EXPECT_EQ(hidden.dim(0), 10);
  EXPECT_EQ(hidden.dim(1), model.model_dim());
  nn::Tensor logits = model.LogitsAt(hidden, 8);
  EXPECT_EQ(logits.dim(1), vocab_->size());
}

TEST_F(LlmTest, SoftPromptGradientsFlow) {
  TinyLm model(TinyLmConfig::Base(vocab_->size()), 5);
  model.SetRequiresGrad(false);  // Frozen LLM, like stage 1.
  util::Rng rng(1);
  nn::Tensor soft = nn::Tensor::Randn({3, model.model_dim()}, rng, 0.02f,
                                      /*requires_grad=*/true);
  std::vector<PromptPiece> pieces = {
      PromptPiece::Tokens({Vocab::kCls, 7}),
      PromptPiece::Embeddings(soft),
      PromptPiece::Tokens({Vocab::kMask}),
  };
  nn::Tensor hidden = model.Encode(pieces, 0.0f, rng);
  nn::Tensor loss =
      nn::CrossEntropyWithLogits(model.LogitsAt(hidden, 5), {7});
  loss.Backward();
  float grad_norm = 0;
  for (float g : soft.grad()) grad_norm += g * g;
  EXPECT_GT(grad_norm, 0.0f);
  // Frozen LLM got no grads.
  for (const nn::Tensor& p : model.Parameters()) {
    EXPECT_FALSE(p.has_grad());
  }
  model.SetRequiresGrad(true);
}

TEST_F(LlmTest, PretrainingTeachesGenreAssociations) {
  TinyLm model(TinyLmConfig::Large(vocab_->size()), 5);
  util::Rng rng(9);
  auto corpus = BuildWorldKnowledgeCorpus(dataset_->catalog, *vocab_, 3, rng);
  PretrainConfig config;
  config.epochs = 2;
  const float initial_loss = [&] {
    util::Rng r(1);
    // Mean loss over a few sentences before training.
    float total = 0;
    for (int i = 0; i < 10; ++i) {
      nn::NoGradGuard no_grad;
      total += model.MlmLoss(corpus[i], {2}, r).item();
    }
    return total / 10;
  }();
  const float final_loss = PretrainMlm(model, corpus, config);
  EXPECT_LT(final_loss, initial_loss);

  // After pretraining, same-genre items should have more similar embeddings
  // than cross-genre items on average.
  const auto& items = dataset_->catalog.items;
  double same = 0, cross = 0;
  int same_n = 0, cross_n = 0;
  for (size_t i = 0; i < 20; ++i) {
    for (size_t j = i + 1; j < 20; ++j) {
      auto ei = model.EmbedTokens(vocab_->Encode(items[i].title));
      auto ej = model.EmbedTokens(vocab_->Encode(items[j].title));
      double dot = 0, ni = 0, nj = 0;
      for (size_t d = 0; d < ei.size(); ++d) {
        dot += ei[d] * ej[d];
        ni += ei[d] * ei[d];
        nj += ej[d] * ej[d];
      }
      const double cosine = dot / std::sqrt(ni * nj + 1e-12);
      if (items[i].genre == items[j].genre) {
        same += cosine;
        ++same_n;
      } else {
        cross += cosine;
        ++cross_n;
      }
    }
  }
  ASSERT_GT(same_n, 0);
  ASSERT_GT(cross_n, 0);
  EXPECT_GT(same / same_n, cross / cross_n);
}

TEST_F(LlmTest, AdaptersSeparateFromBaseParameters) {
  TinyLm model(TinyLmConfig::Large(vocab_->size()), 5);
  const int64_t base_count = model.ParameterCount();
  auto adapters = model.EnableAdapters(2, 1.0f);
  EXPECT_EQ(adapters.size(), 2u * 3u);  // 2 layers × (wq, wv, ffn_in).
  EXPECT_EQ(model.ParameterCount(), base_count);  // Not in the base tree.
  // Enabling twice returns the same adapters.
  auto again = model.EnableAdapters(2, 1.0f);
  EXPECT_EQ(adapters, again);
}

TEST_F(LlmTest, VerbalizerScoresFavorTitleTokens) {
  Verbalizer verbalizer(dataset_->catalog, *vocab_);
  std::vector<float> token_logits(vocab_->size(), 0.0f);
  // Boost item 3's title tokens.
  for (int64_t token : verbalizer.TitleTokens(3)) token_logits[token] = 5.0f;
  auto scores = verbalizer.Scores(token_logits, {1, 3, 7});
  EXPECT_GT(scores[1], scores[0]);
  EXPECT_GT(scores[1], scores[2]);
}

TEST_F(LlmTest, VerbalizerDifferentiableMatchesPlainScores) {
  Verbalizer verbalizer(dataset_->catalog, *vocab_);
  util::Rng rng(4);
  nn::Tensor logits = nn::Tensor::Randn({1, vocab_->size()}, rng, 1.0f);
  std::vector<int64_t> candidates = {0, 5, 9, 12};
  nn::Tensor tensor_scores = verbalizer.CandidateLogits(logits, candidates);
  auto plain = verbalizer.Scores(logits.data(), candidates);
  ASSERT_EQ(tensor_scores.size(), 4);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(tensor_scores.data()[i], plain[i], 1e-4f);
  }
}

TEST_F(LlmTest, PromptTemplatesWellFormed) {
  PromptBuilder builder(&dataset_->catalog, vocab_);
  util::Rng rng(6);
  nn::Tensor soft = nn::Tensor::Randn({4, 32}, rng, 0.02f);
  std::vector<int64_t> history = {1, 2, 3, 4, 5, 6};
  std::vector<int64_t> candidates = {7, 8, 9};

  Prompt rec = builder.BuildRecommendation(history, candidates, soft, {},
                                           nn::Tensor());
  EXPECT_GE(rec.mask_position, 0);
  EXPECT_LT(rec.mask_position, rec.length());
  // The mask position indexes an actual [MASK] token: count through pieces.
  int64_t position = 0;
  bool found = false;
  for (const PromptPiece& piece : rec.pieces) {
    if (piece.kind == PromptPiece::Kind::kTokens) {
      for (int64_t token : piece.tokens) {
        if (position == rec.mask_position) {
          EXPECT_EQ(token, Vocab::kMask);
          found = true;
        }
        ++position;
      }
    } else {
      position += piece.length();
    }
  }
  EXPECT_TRUE(found);

  Prompt ta = builder.BuildTemporalAnalysis(history, 4, candidates, soft);
  EXPECT_GE(ta.mask_position, 0);
  Prompt rps = builder.BuildPatternSimulating(history, {1, 2}, candidates,
                                              soft, "sasrec");
  EXPECT_GE(rps.mask_position, 0);

  // Without soft prompts the prompt is shorter and purely tokens.
  Prompt no_soft = builder.BuildRecommendation(history, candidates,
                                               nn::Tensor(), {}, nn::Tensor());
  EXPECT_LT(no_soft.length(), rec.length());
  for (const PromptPiece& piece : no_soft.pieces) {
    EXPECT_EQ(piece.kind, PromptPiece::Kind::kTokens);
  }
}

TEST_F(LlmTest, ManualConstructionMentionsModel) {
  PromptBuilder builder(&dataset_->catalog, vocab_);
  auto tokens = builder.ManualConstructionTokens("sasrec");
  EXPECT_FALSE(tokens.empty());
  bool has_model_name = false;
  for (int64_t token : tokens) {
    if (vocab_->WordOf(token) == "sasrec") has_model_name = true;
    EXPECT_NE(token, Vocab::kUnk);
  }
  EXPECT_TRUE(has_model_name);
}

TEST_F(LlmTest, StateDumpRoundTripPreservesOutputs) {
  TinyLm a(TinyLmConfig::Base(vocab_->size()), 5);
  TinyLm b(TinyLmConfig::Base(vocab_->size()), 99);
  b.LoadState(a.StateDump());
  a.SetTraining(false);
  b.SetTraining(false);
  auto ea = a.EmbedTokens({6, 7, 8});
  auto eb = b.EmbedTokens({6, 7, 8});
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) EXPECT_FLOAT_EQ(ea[i], eb[i]);
}

}  // namespace
}  // namespace delrec::llm
